module monotonic

go 1.22
