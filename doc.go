// Package monotonic is a reproduction of Thornley and Chandy, "Monotonic
// Counters: A New Mechanism for Thread Synchronization" (IPPS 2000).
//
// Import monotonic/counter for the public API. See README.md for the
// architecture, DESIGN.md for the system inventory and experiment index,
// and EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every experiment table; run them with
//
//	go test -bench=. -benchmem .
package monotonic
