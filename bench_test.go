// Benchmarks regenerating every experiment table of EXPERIMENTS.md as
// testing.B benchmarks (one family per table/figure; the experiment IDs
// refer to DESIGN.md's index). Run:
//
//	go test -bench=. -benchmem .
package monotonic_test

import (
	"fmt"
	"sync"
	"testing"

	"monotonic/internal/accumulate"
	"monotonic/internal/broadcast"
	"monotonic/internal/core"
	"monotonic/internal/derived"
	"monotonic/internal/explore"
	"monotonic/internal/graph"
	"monotonic/internal/linsys"
	"monotonic/internal/makespan"
	"monotonic/internal/paraffins"
	"monotonic/internal/plate"
	"monotonic/internal/ring"
	"monotonic/internal/stencil"
	"monotonic/internal/sthreads"
	"monotonic/internal/sync2"
	"monotonic/internal/wavefront"
	"monotonic/internal/workload"
)

// --- E4: APSP synchronization mechanisms -------------------------------

func apspGraph(n int) graph.Matrix { return graph.Random(n, 0.35, 20, 42) }

func BenchmarkAPSPSequential(b *testing.B) {
	for _, n := range []int{64, 128} {
		edge := apspGraph(n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graph.ShortestPaths1(edge)
			}
		})
	}
}

func benchAPSPVariant(b *testing.B, run func(graph.Matrix, int, sthreads.Mode, workload.Skew) graph.Matrix) {
	for _, n := range []int{64, 128} {
		edge := apspGraph(n)
		for _, nt := range []int{2, 4, 8} {
			for _, sk := range []workload.Skew{workload.Uniform{}, workload.OneSlow{Max: 4}} {
				b.Run(fmt.Sprintf("N=%d/threads=%d/skew=%s", n, nt, sk.Name()), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						run(edge, nt, sthreads.Concurrent, sk)
					}
				})
			}
		}
	}
}

func BenchmarkAPSPBarrier(b *testing.B)      { benchAPSPVariant(b, graph.ShortestPaths2) }
func BenchmarkAPSPCondvarArray(b *testing.B) { benchAPSPVariant(b, graph.ShortestPaths3CV) }
func BenchmarkAPSPCounter(b *testing.B)      { benchAPSPVariant(b, graph.ShortestPaths3) }

// --- E5: stencil ragged barrier ----------------------------------------

func BenchmarkStencilPerCell(b *testing.B) {
	init := stencil.InitialRod(64)
	const steps = 50
	for _, sk := range []workload.Skew{workload.Uniform{}, workload.OneSlow{Max: 8}} {
		b.Run("barrier/skew="+sk.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stencil.RunBarrier(init, steps, stencil.Heat, sk)
			}
		})
		b.Run("counter/skew="+sk.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stencil.RunCounter(init, steps, stencil.Heat, sk)
			}
		})
	}
}

func BenchmarkStencilBlocked(b *testing.B) {
	init := stencil.InitialRod(512)
	const steps = 100
	for _, nt := range []int{4, 8} {
		for _, sk := range []workload.Skew{workload.Uniform{}, workload.OneSlow{Max: 8}} {
			b.Run(fmt.Sprintf("barrier/threads=%d/skew=%s", nt, sk.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					stencil.RunBarrierBlocked(init, steps, nt, stencil.Heat, sk)
				}
			})
			b.Run(fmt.Sprintf("counter/threads=%d/skew=%s", nt, sk.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					stencil.RunCounterBlocked(init, steps, nt, stencil.Heat, sk)
				}
			})
		}
	}
}

// --- E6: ordered accumulation ------------------------------------------

func BenchmarkAccumulate(b *testing.B) {
	values := accumulate.SumValues(48, 7)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			accumulate.SumSeq(values)
		}
	})
	b.Run("lock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			accumulate.SumLock(values, 3)
		}
	})
	b.Run("counter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			accumulate.SumCounter(sthreads.Concurrent, values, 3)
		}
	})
}

// --- E7: broadcast blockSize sweep --------------------------------------

func BenchmarkBroadcastBlockSize(b *testing.B) {
	const items = 20000
	for _, bs := range []int{1, 16, 256, 1024} {
		blocks := []int{bs, bs, bs, bs}
		b.Run(fmt.Sprintf("block=%d", bs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				broadcast.Run(broadcast.Config{Items: items, WriterBlock: bs, ReaderBlocks: blocks})
			}
		})
	}
}

func BenchmarkBroadcastReaders(b *testing.B) {
	const items = 20000
	for _, readers := range []int{1, 2, 4, 8} {
		blocks := make([]int, readers)
		for i := range blocks {
			blocks[i] = 64
		}
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				broadcast.Run(broadcast.Config{Items: items, WriterBlock: 64, ReaderBlocks: blocks})
			}
		})
	}
}

// --- E8: exhaustive exploration cost ------------------------------------

func BenchmarkExploreSection6(b *testing.B) {
	programs := map[string]explore.Program{
		"lock":      explore.LockProgram(),
		"counter":   explore.CounterProgram(),
		"ordered-4": explore.OrderedAccumulateProgram(4),
		"lock-4":    explore.LockAccumulateProgram(4),
	}
	for name, p := range programs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				explore.MustExplore(p)
			}
		})
	}
}

// --- E10: cost model — distinct levels vs waiters ------------------------

// BenchmarkCheckLevels measures one release cycle: W waiters spread over
// L distinct levels, then one satisfying increment. Per the section 7
// claim, time should track L far more than W for the list design.
func BenchmarkCheckLevels(b *testing.B) {
	for _, waiters := range []int{64, 256} {
		for _, levels := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("waiters=%d/levels=%d", waiters, levels), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c := core.New()
					var wg sync.WaitGroup
					started := make(chan struct{}, waiters)
					for w := 0; w < waiters; w++ {
						lv := uint64(w%levels) + 1
						wg.Add(1)
						go func() {
							defer wg.Done()
							started <- struct{}{}
							c.Check(lv)
						}()
					}
					for w := 0; w < waiters; w++ {
						<-started
					}
					c.Increment(uint64(levels))
					wg.Wait()
				}
			})
		}
	}
}

// --- E11: implementation ablation ----------------------------------------

func BenchmarkImplSatisfiedCheck(b *testing.B) {
	for _, impl := range core.Impls {
		c := core.NewImpl(impl)
		c.Increment(1 << 40)
		b.Run(string(impl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Check(uint64(i % 1024))
			}
		})
	}
}

func BenchmarkImplUncontendedIncrement(b *testing.B) {
	for _, impl := range core.Impls {
		b.Run(string(impl), func(b *testing.B) {
			c := core.NewImpl(impl)
			for i := 0; i < b.N; i++ {
				c.Increment(1)
			}
		})
	}
}

func BenchmarkImplMixedWorkload(b *testing.B) {
	const checkers, perChecker = 4, 100
	for _, impl := range core.Impls {
		b.Run(string(impl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := core.NewImpl(impl)
				var wg sync.WaitGroup
				for t := 0; t < checkers; t++ {
					wg.Add(1)
					go func(t int) {
						defer wg.Done()
						for j := 0; j < perChecker; j++ {
							c.Check(uint64(j*checkers + t))
						}
					}(t)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < checkers*perChecker; j++ {
						c.Increment(1)
					}
				}()
				wg.Wait()
			}
		})
	}
}

// --- E12: paraffins pipeline ---------------------------------------------

func BenchmarkParaffins(b *testing.B) {
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			paraffins.GenerateRadicalsSeq(9)
		}
	})
	b.Run("counter-pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			paraffins.GenerateRadicals(9, sthreads.Concurrent, core.ImplList)
		}
	})
}

// --- S19 ablation: counter-derived barrier vs traditional barriers ----------

func BenchmarkBarrierDesigns(b *testing.B) {
	const parties = 8
	const cycles = 100
	b.Run("central-condvar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bar := sync2.NewBarrier(parties)
			runBarrierCycles(parties, cycles, func() func() { return func() { bar.Pass() } })
		}
	})
	b.Run("sense-reversing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bar := sync2.NewSenseBarrier(parties)
			runBarrierCycles(parties, cycles, func() func() {
				s := bar.Register()
				return s.Pass
			})
		}
	})
	b.Run("counter-derived", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bar := derived.NewBarrier(parties)
			runBarrierCycles(parties, cycles, func() func() {
				p := bar.Register()
				return p.Pass
			})
		}
	})
}

// runBarrierCycles spins up parties goroutines, each crossing the barrier
// `cycles` times via the per-party pass function built by mk.
func runBarrierCycles(parties, cycles int, mk func() func()) {
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		pass := mk()
		go func() {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				pass()
			}
		}()
	}
	wg.Wait()
}

// --- E13: multiprocessor makespan model ------------------------------------

func BenchmarkMakespanModel(b *testing.B) {
	w := makespan.NoisyWork(64, 1000, 10, workload.Uniform{}, 0.9, 3)
	b.Run("barrier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			makespan.Barrier(64, 1000, w)
		}
	})
	b.Run("ragged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			makespan.Ragged(64, 1000, w)
		}
	})
	b.Run("apsp-dataflow", func(b *testing.B) {
		owner := makespan.BlockOwner(1000, 64)
		for i := 0; i < b.N; i++ {
			makespan.APSPDataflow(64, 1000, w, owner)
		}
	})
}

// --- E16: 2-D plate ----------------------------------------------------------

func BenchmarkPlate(b *testing.B) {
	init := plate.HotEdges(66, 66)
	const steps = 20
	for _, tiles := range [][2]int{{2, 2}, {4, 4}} {
		b.Run(fmt.Sprintf("barrier/tiles=%dx%d", tiles[0], tiles[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plate.RunBarrier(init, steps, tiles[0], tiles[1], plate.Heat, nil)
			}
		})
		b.Run(fmt.Sprintf("counter/tiles=%dx%d", tiles[0], tiles[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plate.RunCounter(init, steps, tiles[0], tiles[1], plate.Heat, nil)
			}
		})
	}
}

// --- E17: Gaussian elimination ------------------------------------------------

func BenchmarkLinsys(b *testing.B) {
	sys := linsys.RandomDominant(96, 11)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linsys.SolveSeq(sys)
		}
	})
	for _, nt := range []int{2, 4} {
		b.Run(fmt.Sprintf("barrier/threads=%d", nt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linsys.SolveBarrier(sys, nt, nil)
			}
		})
		b.Run(fmt.Sprintf("counter/threads=%d", nt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linsys.SolveCounter(sys, nt, nil, "")
			}
		})
	}
}

// --- E14: 2-D wavefront ------------------------------------------------------

func BenchmarkWavefront(b *testing.B) {
	rng := workload.NewRNG(17)
	mk := func(n int) string {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = "acgt"[rng.Intn(4)]
		}
		return string(buf)
	}
	a, s := mk(800), mk(800)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wavefront.EditDistanceSeq(a, s, wavefront.DefaultCosts)
		}
	})
	for _, blk := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("banded/block=%d", blk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wavefront.EditDistance(a, s, wavefront.DefaultCosts, 4, blk, core.ImplList)
			}
		})
	}
}

// --- S23: bounded broadcast ring ---------------------------------------------

func BenchmarkRing(b *testing.B) {
	const items = 5000
	for _, capacity := range []int{1, 8, 64} {
		for _, readers := range []int{1, 4} {
			b.Run(fmt.Sprintf("cap=%d/readers=%d", capacity, readers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := ring.New[int](capacity, readers)
					var wg sync.WaitGroup
					for rd := 0; rd < readers; rd++ {
						wg.Add(1)
						go func(rd int) {
							defer wg.Done()
							cursor := r.Reader(rd)
							for j := 0; j < items; j++ {
								cursor.Next()
							}
						}(rd)
					}
					w := r.Writer()
					for j := 0; j < items; j++ {
						w.Publish(j)
					}
					wg.Wait()
				}
			})
		}
	}
}

// --- E3/E9 guard: agreement checked once per bench run ---------------------

func BenchmarkAPSPVerified(b *testing.B) {
	edge := graph.RandomNegative(64, 0.35, 15, 6, 3)
	want := graph.ShortestPaths1(edge)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := graph.ShortestPaths3(edge, 4, sthreads.Concurrent, nil)
		if !got.Equal(want) {
			b.Fatal("counter variant diverged")
		}
	}
}
