package counter

import (
	"context"
	"time"

	"monotonic/internal/core"
)

// coreImpl constrains the facade to pointer types that implement the
// full internal counter contract. Every implementation in the core
// registry qualifies; probes are optional (ChanCounter has no engine to
// hook) and are routed through a type assertion in SetProbe.
type coreImpl[T any] interface {
	*T
	core.Interface
	core.StatsProvider
	core.Sentineler
}

// facade is the one wrapper every public counter type embeds: it holds
// the core implementation by value (so the zero value of the outer type
// is a ready-to-use counter, with no constructor and no indirection)
// and adapts the internal contract to the public Interface. Exposing a
// new in-process implementation is a type declaration embedding this
// struct plus its godoc — about ten lines (see Counter and Sharded).
//
// Deliberately NOT exported: the public surface is the named types and
// Interface; the wrapper is how they stay in lockstep.
type facade[T any, P coreImpl[T]] struct {
	c T
}

func (f *facade[T, P]) impl() P { return P(&f.c) }

// Increment atomically increases the counter's value by amount, waking
// every goroutine suspended on a level the new value satisfies.
// Increment(0) is a no-op. Increment panics if the value would overflow
// uint64, since wrap-around would violate monotonicity.
func (f *facade[T, P]) Increment(amount uint64) { f.impl().Increment(amount) }

// Check suspends the calling goroutine until the counter's value is at
// least level. If the value already satisfies level, Check returns
// immediately. Because the value is monotonic, once Check(level) would
// pass it passes forever: there is no race to observe a transient state.
func (f *facade[T, P]) Check(level uint64) { f.impl().Check(level) }

// CheckContext is Check with cancellation: it returns nil once the value
// reaches level, or ctx.Err() if the context is cancelled first. An
// already-satisfied level wins over an already-cancelled context, and
// cancellation does not perturb the counter or spawn any goroutine; see
// the package documentation's cancellation semantics. This is an
// extension beyond the paper.
func (f *facade[T, P]) CheckContext(ctx context.Context, level uint64) error {
	return f.impl().CheckContext(ctx, level)
}

// WaitTimeout is Check bounded by a timeout, reporting whether the level
// was reached. A satisfied level beats an expired deadline: even with a
// zero or negative timeout, WaitTimeout reports true when the value
// already satisfies level. An extension beyond the paper.
func (f *facade[T, P]) WaitTimeout(level uint64, d time.Duration) bool {
	return core.WaitTimeout(f.impl(), level, d)
}

// Reset sets the value back to zero so the counter can be reused between
// phases of an algorithm. Per the paper (section 2), Reset must not be
// called concurrently with any other operation on the counter; it panics
// if goroutines are suspended on the counter. Reset is a convenience,
// not a synchronization operation.
func (f *facade[T, P]) Reset() { f.impl().Reset() }

// Stats returns the counter's cumulative cost statistics.
func (f *facade[T, P]) Stats() Stats { return statsFromCore(f.impl().Stats()) }

// Watermark returns a level the counter is known to have reached: a
// monotone lower bound on the value (for in-process counters, the exact
// current value). Unlike an instantaneous value read — which this
// package deliberately does not offer — a watermark can only be used
// the monotone way: "at least this much has happened", never "exactly
// this much is true right now". It exists for the predicate layer
// (counter/wait evaluates multi-counter predicates over watermarks) and
// for tracing.
func (f *facade[T, P]) Watermark() uint64 { return f.impl().Value() }

// Sentinel arms a one-shot hook that fires when the counter's wake path
// satisfies level, parked on the counter's own per-level waitlist like
// a suspended Check — the registration surface counter/wait builds
// predicate waits on. armed reports false when level is already
// satisfied (fn will never run); when armed, fn runs exactly once, on
// the waking goroutine, and must not block. cancel disarms the hook,
// reporting whether fn was prevented from running; an armed sentinel
// counts as a suspended waiter for Reset's misuse check. Fires may be
// spuriously early on implementations with coarse wake granularity;
// callers re-check and re-arm. Most code should use counter/wait
// rather than this directly.
func (f *facade[T, P]) Sentinel(level uint64, fn func()) (cancel func() bool, armed bool) {
	return f.impl().Sentinel(level, fn)
}

// SetProbe installs fn as the counter's event hook: it observes
// increment/suspend/wake events until replaced, and nil disables it.
// When disabled the hook costs one atomic load per operation; fn is
// never invoked while the counter's locks are held, so it may itself
// call Stats. Probes are for tracing and metrics — synchronization
// decisions must never be based on them. Implementations without an
// engine-side hook (the chan ablation) ignore probes.
func (f *facade[T, P]) SetProbe(fn func(Event)) {
	if ps, ok := any(f.impl()).(core.ProbeSetter); ok {
		ps.SetProbe(fn)
	}
}
