package counter

import (
	"context"
	"time"

	"monotonic/internal/core"
)

// coreImpl constrains the facade to pointer types that implement the
// full internal counter contract. Every implementation in the core
// registry qualifies; probes are optional (ChanCounter has no engine to
// hook) and are routed through a type assertion in SetProbe.
type coreImpl[T any] interface {
	*T
	core.Interface
	core.StatsProvider
}

// facade is the one wrapper every public counter type embeds: it holds
// the core implementation by value (so the zero value of the outer type
// is a ready-to-use counter, with no constructor and no indirection)
// and adapts the internal contract to the public Interface. Exposing a
// new in-process implementation is a type declaration embedding this
// struct plus its godoc — about ten lines (see Counter and Sharded).
//
// Deliberately NOT exported: the public surface is the named types and
// Interface; the wrapper is how they stay in lockstep.
type facade[T any, P coreImpl[T]] struct {
	c T
}

func (f *facade[T, P]) impl() P { return P(&f.c) }

// Increment atomically increases the counter's value by amount, waking
// every goroutine suspended on a level the new value satisfies.
// Increment(0) is a no-op. Increment panics if the value would overflow
// uint64, since wrap-around would violate monotonicity.
func (f *facade[T, P]) Increment(amount uint64) { f.impl().Increment(amount) }

// Check suspends the calling goroutine until the counter's value is at
// least level. If the value already satisfies level, Check returns
// immediately. Because the value is monotonic, once Check(level) would
// pass it passes forever: there is no race to observe a transient state.
func (f *facade[T, P]) Check(level uint64) { f.impl().Check(level) }

// CheckContext is Check with cancellation: it returns nil once the value
// reaches level, or ctx.Err() if the context is cancelled first. An
// already-satisfied level wins over an already-cancelled context, and
// cancellation does not perturb the counter or spawn any goroutine; see
// the package documentation's cancellation semantics. This is an
// extension beyond the paper.
func (f *facade[T, P]) CheckContext(ctx context.Context, level uint64) error {
	return f.impl().CheckContext(ctx, level)
}

// WaitTimeout is Check bounded by a timeout, reporting whether the level
// was reached. A satisfied level beats an expired deadline: even with a
// zero or negative timeout, WaitTimeout reports true when the value
// already satisfies level. An extension beyond the paper.
func (f *facade[T, P]) WaitTimeout(level uint64, d time.Duration) bool {
	return core.WaitTimeout(f.impl(), level, d)
}

// Reset sets the value back to zero so the counter can be reused between
// phases of an algorithm. Per the paper (section 2), Reset must not be
// called concurrently with any other operation on the counter; it panics
// if goroutines are suspended on the counter. Reset is a convenience,
// not a synchronization operation.
func (f *facade[T, P]) Reset() { f.impl().Reset() }

// Stats returns the counter's cumulative cost statistics.
func (f *facade[T, P]) Stats() Stats { return statsFromCore(f.impl().Stats()) }

// SetProbe installs fn as the counter's event hook: it observes
// increment/suspend/wake events until replaced, and nil disables it.
// When disabled the hook costs one atomic load per operation; fn is
// never invoked while the counter's locks are held, so it may itself
// call Stats. Probes are for tracing and metrics — synchronization
// decisions must never be based on them. Implementations without an
// engine-side hook (the chan ablation) ignore probes.
func (f *facade[T, P]) SetProbe(fn func(Event)) {
	if ps, ok := any(f.impl()).(core.ProbeSetter); ok {
		ps.SetProbe(fn)
	}
}
