// Package wait builds blocking waits on monotone predicates over
// counters: a sum crossing a target, a minimum clearing a bar, k of n
// counters reaching a threshold. It is the public face of
// internal/predicate; see docs/PATTERNS.md ("Predicate waits") for the
// design and docs.
//
// Each combinator returns a *Cond — a one-shot shared condition any
// number of goroutines can Wait on (directly or through
// counter.WaitFor). The Cond parks one sentinel hook per watched
// counter at a frontier level on that counter's own waitlist, so N
// waiters on one Cond cost O(watched counters) parked nodes, not
// O(N × counters), and an increment that cannot flip the predicate
// wakes nobody. Like a Check, predicates are monotone: once a Cond is
// satisfied it stays satisfied, and a Cond must not span a Reset of a
// watched counter.
//
// Counters that expose the native watermark/sentinel surface (every
// in-process implementation, and counter/remote's client) are watched
// at zero ongoing cost. Any other counter.Interface still works through
// a goroutine-per-sentinel fallback built on CheckContext.
package wait

import (
	"context"
	"sync/atomic"
	"time"

	"monotonic/counter"
	"monotonic/internal/predicate"
)

// Cond is a one-shot condition over one or more counters that becomes
// (and stays) satisfied once its predicate holds. Any number of
// goroutines may Wait on one Cond; all are released together. A Cond
// that is never waited on costs nothing, and one whose waiters all
// cancel leaves no trace on its counters.
type Cond struct {
	pc   *predicate.Cond
	spec Spec
}

// Spec returns the Cond's predicate descriptor — the canonical
// serializable form the combinator recorded when it built the Cond.
func (c *Cond) Spec() Spec { return c.spec }

// newCond builds a Cond for spec and pred, routing evaluation
// server-side when possible: if the spec is wire-encodable and every
// counter nominates the same SpecHost, the Cond arms one registration
// with that host instead of per-counter sentinels (falling back to
// sentinels if the host refuses or dies — see predicate.External).
// Otherwise evaluation is classic client-side sentinels.
func newCond(spec Spec, pred predicate.Pred) *Cond {
	pcs := adaptAll(spec.Counters)
	if host, ok := spec.commonHost(); ok {
		ext := func(fire func(satisfied bool)) (func() bool, bool) {
			return host.ArmSpec(spec, fire)
		}
		return &Cond{pc: predicate.NewCondExternal(pred, ext, pcs...), spec: spec}
	}
	return &Cond{pc: predicate.NewCond(pred, pcs...), spec: spec}
}

// Wait blocks until the predicate holds or ctx is cancelled, making
// *Cond a counter.Waitable. A satisfied predicate beats a cancelled
// context, exactly like CheckContext for a single level.
func (c *Cond) Wait(ctx context.Context) error { return c.pc.Wait(ctx) }

// WaitTimeout is Wait bounded by a timeout, reporting whether the
// predicate held in time. A satisfied predicate beats an expired
// deadline: with a zero or negative d, WaitTimeout still reports true
// when the predicate already holds (it polls without blocking).
func (c *Cond) WaitTimeout(d time.Duration) bool {
	if d <= 0 {
		return c.pc.Poll()
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.pc.Wait(ctx) == nil
}

// Holds reports whether the predicate holds right now, settling the
// Cond (and releasing any waiters) if it does. It never blocks and
// never arms sentinels.
func (c *Cond) Holds() bool { return c.pc.Poll() }

// Done returns a channel closed once the predicate has been observed to
// hold. Done does not itself drive evaluation — pair it with a Wait,
// Holds, or WaitTimeout somewhere; it exists for use in selects.
func (c *Cond) Done() <-chan struct{} { return c.pc.Done() }

// Stats is a snapshot of a Cond's mechanism counters — how many
// sentinel fires, registrations, and frontier re-parks the predicate
// machinery has paid. Arms scales with watched counters and frontier
// moves, never with the number of waiters.
type Stats struct {
	Fires     uint64 // sentinel/external hook fires (re-evaluation kicks)
	Arms      uint64 // sentinel + external registrations, total
	Reparks   uint64 // registrations beyond each counter's first
	Armed     int    // sentinels currently armed
	Waiters   int    // goroutines currently blocked in Wait
	External  bool   // evaluation is currently parked server-side (one registration)
	Satisfied bool
}

// Stats returns a snapshot of the Cond's mechanism counters.
func (c *Cond) Stats() Stats {
	s := c.pc.Stats()
	return Stats{
		Fires:     s.Fires,
		Arms:      s.Arms,
		Reparks:   s.Reparks,
		Armed:     s.Armed,
		Waiters:   s.Waiters,
		External:  s.External,
		Satisfied: s.Satisfied,
	}
}

// The Cond combinators satisfy counter.Waitable.
var _ counter.Waitable = (*Cond)(nil)

// SumExpr is the sum of a fixed set of counters, ready to be compared
// against a target. Built by Sum.
type SumExpr struct{ cs []counter.Interface }

// Sum begins a predicate over the sum of the given counters' values.
func Sum(cs ...counter.Interface) SumExpr { return SumExpr{cs: cs} }

// AtLeast returns the condition "the counters' values sum to at least
// target". The sum saturates rather than wrapping, so overflow can only
// make the condition hold earlier.
func (s SumExpr) AtLeast(target uint64) *Cond {
	spec := Spec{Kind: KindSum, Counters: s.cs, Target: target}
	return newCond(spec, predicate.SumAtLeast(target))
}

// MinExpr is the minimum of a fixed set of counters, ready to be
// compared against a level. Built by Min.
type MinExpr struct{ cs []counter.Interface }

// Min begins a predicate over the minimum of the given counters'
// values.
func Min(cs ...counter.Interface) MinExpr { return MinExpr{cs: cs} }

// AtLeast returns the condition "every counter's value is at least
// level" — a join: it holds once the slowest counter arrives.
func (m MinExpr) AtLeast(level uint64) *Cond {
	levels := make([]uint64, len(m.cs))
	for i := range levels {
		levels[i] = level
	}
	spec := Spec{Kind: KindThreshold, Counters: m.cs, Levels: levels, K: len(levels)}
	return newCond(spec, predicate.Thresholds(levels, len(levels)))
}

// AtLeast returns the condition "c's value is at least level" — the
// one-counter degenerate case, equivalent to a Check(level) but
// shareable, pollable, and composable via counter.WaitFor.
func AtLeast(c counter.Interface, level uint64) *Cond {
	return Min(c).AtLeast(level)
}

// KOfN returns the condition "at least k of the counters have reached
// threshold" — the quorum wait. k must be between 1 and len(cs);
// k = len(cs) is Min(...).AtLeast(threshold), k = 1 is an any-of wait.
func KOfN(cs []counter.Interface, k int, threshold uint64) *Cond {
	levels := make([]uint64, len(cs))
	for i := range levels {
		levels[i] = threshold
	}
	spec := Spec{Kind: KindThreshold, Counters: cs, Levels: levels, K: k}
	return newCond(spec, predicate.Thresholds(levels, k))
}

// sentinelCounter is the native predicate surface: the facade types,
// everything counter.Open returns, and counter/remote's client expose
// it. Watermark is a monotone lower bound on the value; Sentinel is the
// one-shot hook registration (see the counter docs).
type sentinelCounter interface {
	Watermark() uint64
	Sentinel(level uint64, fn func()) (cancel func() bool, armed bool)
}

func adaptAll(cs []counter.Interface) []predicate.Counter {
	if len(cs) == 0 {
		panic("wait: predicate over zero counters")
	}
	out := make([]predicate.Counter, len(cs))
	for i, c := range cs {
		out[i] = adapt(c)
	}
	return out
}

// adapt views one public counter as a predicate.Counter: natively when
// it exposes watermarks and sentinels, else through the goroutine-backed
// polled fallback.
func adapt(c counter.Interface) predicate.Counter {
	if sc, ok := c.(sentinelCounter); ok {
		return native{sc}
	}
	return &polled{c: c}
}

type native struct{ sc sentinelCounter }

func (n native) Value() uint64 { return n.sc.Watermark() }
func (n native) Sentinel(level uint64, fn func()) (func() bool, bool) {
	return n.sc.Sentinel(level, fn)
}

// polled adapts a counter.Interface with no native sentinel surface:
// each armed sentinel is a goroutine suspended in CheckContext at the
// frontier level — the same node-per-level cost inside the counter, plus
// one goroutine per watched counter while armed. The watermark is the
// highest level this adapter has observed satisfied; it lags the true
// value but is monotone, which is all the predicate engine requires.
// One visible consequence: Holds and zero-timeout WaitTimeout read the
// watermark without probing, so over fallback-adapted counters they can
// under-report until a Wait has driven a probe. Native counters are
// exact.
type polled struct {
	c  counter.Interface
	wm atomic.Uint64
}

func (p *polled) Value() uint64 { return p.wm.Load() }

// raise lifts the watermark to at least level.
func (p *polled) raise(level uint64) {
	for {
		cur := p.wm.Load()
		if level <= cur || p.wm.CompareAndSwap(cur, level) {
			return
		}
	}
}

func (p *polled) Sentinel(level uint64, fn func()) (func() bool, bool) {
	// A zero-timeout wait is the Interface's only non-blocking probe: a
	// satisfied level beats an expired deadline, so true here means the
	// value already covers level and no sentinel is needed.
	if level <= p.wm.Load() || p.c.WaitTimeout(level, 0) {
		p.raise(level)
		return nil, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	var state atomic.Int32 // 0 armed, 1 fired, 2 cancelled
	go func() {
		defer cancel()
		if p.c.CheckContext(ctx, level) == nil {
			// The level was reached (possibly racing a cancel — a
			// satisfied level beats a cancelled context). Either way the
			// watermark advances; fn runs only if cancel lost the race.
			p.raise(level)
			if state.CompareAndSwap(0, 1) {
				fn()
			}
		}
	}()
	return func() bool {
		if state.CompareAndSwap(0, 2) {
			cancel()
			return true
		}
		return false
	}, true
}
