package wait_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"monotonic/counter"
	"monotonic/counter/wait"
)

// bare hides the native watermark/sentinel surface, forcing the
// goroutine-backed polled fallback.
type bare struct{ c counter.Interface }

func (b bare) Increment(amount uint64) { b.c.Increment(amount) }
func (b bare) Check(level uint64)      { b.c.Check(level) }
func (b bare) Reset()                  { b.c.Reset() }
func (b bare) WaitTimeout(level uint64, d time.Duration) bool {
	return b.c.WaitTimeout(level, d)
}
func (b bare) CheckContext(ctx context.Context, level uint64) error {
	return b.c.CheckContext(ctx, level)
}

func waitNil(t *testing.T, errc <-chan error) {
	t.Helper()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Wait = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait never returned")
	}
}

func mustBlock(t *testing.T, errc <-chan error) {
	t.Helper()
	select {
	case err := <-errc:
		t.Fatalf("Wait returned early with %v", err)
	case <-time.After(20 * time.Millisecond):
	}
}

// wrap returns the counter as-is or stripped to the fallback path.
func wrap(c counter.Interface, fallback bool) counter.Interface {
	if fallback {
		return bare{c}
	}
	return c
}

func TestSumAtLeast(t *testing.T) {
	for _, fallback := range []bool{false, true} {
		name := "native"
		if fallback {
			name = "polled-fallback"
		}
		t.Run(name, func(t *testing.T) {
			a, b := counter.New(), counter.New()
			cond := wait.Sum(wrap(a, fallback), wrap(b, fallback)).AtLeast(10)
			errc := make(chan error, 1)
			go func() { errc <- counter.WaitFor(context.Background(), cond) }()
			mustBlock(t, errc)
			a.Increment(3)
			b.Increment(7) // split advance: neither counter reaches 10 alone
			waitNil(t, errc)
			if !cond.Holds() {
				t.Fatal("Holds false after release")
			}
		})
	}
}

func TestMinAtLeast(t *testing.T) {
	a, b := counter.New(), counter.New()
	cond := wait.Min(a, b).AtLeast(5)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	a.Increment(100)
	mustBlock(t, errc) // min(100, 0) = 0
	b.Increment(5)
	waitNil(t, errc)
}

func TestAtLeastSingle(t *testing.T) {
	c := counter.New()
	cond := wait.AtLeast(c, 3)
	if cond.WaitTimeout(0) {
		t.Fatal("zero-timeout WaitTimeout true on a zero counter")
	}
	c.Increment(3)
	if !cond.WaitTimeout(0) {
		t.Fatal("zero-timeout WaitTimeout false with the level reached")
	}
	if !cond.WaitTimeout(-time.Second) {
		t.Fatal("negative-timeout WaitTimeout false on a satisfied Cond")
	}
}

func TestKOfNQuorum(t *testing.T) {
	const n, k = 5, 3
	members := make([]counter.Interface, n)
	for i := range members {
		members[i] = counter.New()
	}
	cond := wait.KOfN(members, k, 2)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	members[0].Increment(2)
	members[2].Increment(1) // below threshold: must not count
	members[4].Increment(2)
	mustBlock(t, errc)
	members[2].Increment(1) // completes the quorum
	waitNil(t, errc)
}

func TestOpenImplsThroughWait(t *testing.T) {
	for _, impl := range counter.Impls() {
		t.Run(impl, func(t *testing.T) {
			a, err := counter.Open(impl)
			if err != nil {
				t.Fatal(err)
			}
			b, err := counter.Open(impl)
			if err != nil {
				t.Fatal(err)
			}
			cond := wait.Sum(a, b).AtLeast(4)
			errc := make(chan error, 1)
			go func() { errc <- cond.Wait(context.Background()) }()
			a.Increment(2)
			b.Increment(2)
			waitNil(t, errc)
		})
	}
}

func TestCancelledContext(t *testing.T) {
	a := counter.New()
	cond := wait.AtLeast(a, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cond.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait(cancelled) = %v, want Canceled", err)
	}
	// Satisfied beats cancelled.
	a.Increment(100)
	if err := cond.Wait(ctx); err != nil {
		t.Fatalf("Wait(cancelled, satisfied) = %v, want nil", err)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	cond := wait.AtLeast(counter.New(), 1)
	if cond.WaitTimeout(5 * time.Millisecond) {
		t.Fatal("WaitTimeout true with nothing incrementing")
	}
}

func TestFanOutStatsIndependentOfWaiters(t *testing.T) {
	a, b := counter.New(), counter.New()
	cond := wait.Sum(a, b).AtLeast(1000)
	const waiters = 64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cond.Wait(context.Background()); err != nil {
				t.Errorf("Wait = %v", err)
			}
		}()
	}
	a.Increment(999)
	time.Sleep(20 * time.Millisecond)
	b.Increment(1)
	wg.Wait()
	s := cond.Stats()
	if !s.Satisfied || s.Armed != 0 {
		t.Fatalf("Stats = %+v after release", s)
	}
	if s.Arms > 40 {
		t.Fatalf("Arms = %d — scaling with the %d waiters?", s.Arms, waiters)
	}
}

// TestPolledFallbackCancelLeavesNoFire pins the fallback adapter's
// cancel semantics: a cancelled sentinel goroutine never fires, and the
// counter keeps working afterwards.
func TestPolledFallbackCancelLeavesNoFire(t *testing.T) {
	a := counter.New()
	cond := wait.Sum(bare{a}).AtLeast(50)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(ctx) }()
	mustBlock(t, errc)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("Wait = %v, want Canceled", err)
	}
	a.Increment(50)
	a.Check(50)
	// A fresh Cond over the same counter sees the satisfied state once a
	// Wait drives a probe (Holds alone reads the fallback watermark,
	// which starts below the true value — see the adapter docs).
	if err := wait.Sum(bare{a}).AtLeast(50).Wait(context.Background()); err != nil {
		t.Fatalf("fresh Cond Wait over the satisfied sum = %v", err)
	}
}
