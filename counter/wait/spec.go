package wait

import (
	"fmt"
	"strings"

	"monotonic/counter"
	"monotonic/internal/wire"
)

// Kind discriminates the predicate shapes a Spec can describe. The two
// kinds cover every combinator in this package: sums compare the
// counters' total against a target; thresholds ask for k of the
// counters to reach their own levels (min is k = n, any is k = 1).
type Kind uint8

const (
	// KindSum is "the counters' values sum to at least Target".
	KindSum Kind = iota + 1
	// KindThreshold is "at least K counters have reached Levels[i]".
	KindThreshold
)

// String returns the kind's wire-stable lowercase name.
func (k Kind) String() string {
	switch k {
	case KindSum:
		return "sum"
	case KindThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Spec is the canonical, serializable descriptor of a predicate: what a
// combinator means, separated from the closure that evaluates it. Every
// combinator records its Spec on the Cond it builds (Cond.Spec), and
// the wire frame, the cluster router, and log lines all consume this
// one form instead of re-deriving structure from predicates.
//
// Counters holds the watched counters in coordinate order — the order
// Levels indexes and the order predicate evaluation sees. For
// KindThreshold, Levels has one threshold per counter and K is the
// quorum size (1 <= K <= len(Counters)); for KindSum, Target is the
// bar the values' sum must reach and Levels is nil.
type Spec struct {
	Kind     Kind
	Counters []counter.Interface
	Levels   []uint64
	K        int
	Target   uint64
}

// namer is the optional surface a counter exposes when it has a stable
// wire name (counter/remote and counter/cluster counters do; anonymous
// in-process counters do not).
type namer interface{ Name() string }

// Names returns the counters' wire names in coordinate order, and
// whether every counter has one. A Spec whose counters are not all
// named cannot leave the process.
func (s Spec) Names() ([]string, bool) {
	names := make([]string, len(s.Counters))
	for i, c := range s.Counters {
		n, ok := c.(namer)
		if !ok {
			return nil, false
		}
		names[i] = n.Name()
	}
	return names, true
}

// Encodable reports whether the Spec fits the wire's multi-counter wait
// frame: a known kind, a watch set within frame bounds, every counter
// named within name bounds, and (for thresholds) a coherent quorum
// size. Encodable says nothing about where the counters live — the
// router still has to find one host holding all of them.
func (s Spec) Encodable() bool {
	if s.Kind != KindSum && s.Kind != KindThreshold {
		return false
	}
	if len(s.Counters) == 0 || len(s.Counters) > wire.MaxWatch {
		return false
	}
	if s.Kind == KindThreshold {
		if len(s.Levels) != len(s.Counters) || s.K < 1 || s.K > len(s.Counters) {
			return false
		}
	}
	names, ok := s.Names()
	if !ok {
		return false
	}
	for _, n := range names {
		if n == "" || len(n) > wire.MaxName {
			return false
		}
	}
	return true
}

// String renders the Spec for logs: "sum(jobs, retries) >= 100",
// "3 of (q0>=7, q1>=7, q2>=9)". Unnamed counters render as "?".
func (s Spec) String() string {
	name := func(i int) string {
		if n, ok := s.Counters[i].(namer); ok {
			return n.Name()
		}
		return "?"
	}
	var b strings.Builder
	switch s.Kind {
	case KindSum:
		b.WriteString("sum(")
		for i := range s.Counters {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(name(i))
		}
		fmt.Fprintf(&b, ") >= %d", s.Target)
	case KindThreshold:
		fmt.Fprintf(&b, "%d of (", s.K)
		for i := range s.Counters {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s>=%d", name(i), s.Levels[i])
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(&b, "%s over %d counters", s.Kind, len(s.Counters))
	}
	return b.String()
}

// SpecHost evaluates whole predicates on behalf of counters it serves —
// a counterd session (counter/remote's Client) or a cluster router that
// can find one. ArmSpec registers spec for server-side evaluation and
// returns ok = false if it cannot (unsupported server, counters spread
// over several members); the caller then evaluates client-side. An
// accepted registration follows the predicate.External contract: fire
// is eventually called exactly once unless cancel prevents it,
// fire(true) means the host observed the predicate holding, and
// registration must never lose a wake. ArmSpec and the returned cancel
// are called under the Cond's internal lock: enqueue and return.
type SpecHost interface {
	ArmSpec(spec Spec, fire func(satisfied bool)) (cancel func() bool, ok bool)
}

// specHosted is the optional surface a counter exposes to nominate the
// host that can evaluate predicates over it server-side.
type specHosted interface{ SpecHost() SpecHost }

// commonHost returns the one host every counter in the Spec nominates,
// if the Spec is encodable and such a host exists. Host identity is
// interface equality: two remote counters from the same Client (or two
// cluster counters from the same cluster) compare equal, which is
// exactly the "could one server see the whole predicate" question.
func (s Spec) commonHost() (SpecHost, bool) {
	if !s.Encodable() {
		return nil, false
	}
	var host SpecHost
	for i, c := range s.Counters {
		h, ok := c.(specHosted)
		if !ok {
			return nil, false
		}
		hh := h.SpecHost()
		if hh == nil {
			return nil, false
		}
		if i == 0 {
			host = hh
		} else if hh != host {
			return nil, false
		}
	}
	return host, true
}
