package wait_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"monotonic/counter"
	"monotonic/counter/wait"
)

// hosted wraps an in-process counter with a wire name and a SpecHost
// nomination, standing in for a remote counter whose server can
// evaluate predicates.
type hosted struct {
	*counter.Counter
	name string
	host wait.SpecHost
}

func (h *hosted) Name() string            { return h.name }
func (h *hosted) SpecHost() wait.SpecHost { return h.host }

// recordingHost accepts every registration and remembers the specs.
type recordingHost struct {
	mu    sync.Mutex
	specs []wait.Spec
	fires []func(bool)
}

func (r *recordingHost) ArmSpec(spec wait.Spec, fire func(satisfied bool)) (func() bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.specs = append(r.specs, spec)
	r.fires = append(r.fires, fire)
	return func() bool { return true }, true
}

func TestSpecRecordedOnCond(t *testing.T) {
	a, b := counter.New(), counter.New()
	cond := wait.Sum(a, b).AtLeast(42)
	spec := cond.Spec()
	if spec.Kind != wait.KindSum || spec.Target != 42 || len(spec.Counters) != 2 {
		t.Fatalf("Sum spec = %+v", spec)
	}
	cond = wait.KOfN([]counter.Interface{a, b}, 1, 7)
	spec = cond.Spec()
	if spec.Kind != wait.KindThreshold || spec.K != 1 || len(spec.Levels) != 2 || spec.Levels[0] != 7 {
		t.Fatalf("KOfN spec = %+v", spec)
	}
	cond = wait.Min(a, b).AtLeast(9)
	spec = cond.Spec()
	if spec.Kind != wait.KindThreshold || spec.K != 2 || spec.Levels[1] != 9 {
		t.Fatalf("Min spec = %+v", spec)
	}
}

func TestSpecNamesAndEncodable(t *testing.T) {
	host := &recordingHost{}
	a := &hosted{Counter: counter.New(), name: "a", host: host}
	b := &hosted{Counter: counter.New(), name: "b", host: host}
	anon := counter.New()

	spec := wait.Sum(a, b).AtLeast(10).Spec()
	names, ok := spec.Names()
	if !ok || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v, %v", names, ok)
	}
	if !spec.Encodable() {
		t.Fatal("named sum spec not encodable")
	}

	spec = wait.Sum(a, anon).AtLeast(10).Spec()
	if _, ok := spec.Names(); ok {
		t.Fatal("Names() ok with an anonymous counter")
	}
	if spec.Encodable() {
		t.Fatal("spec with an anonymous counter is encodable")
	}

	if (wait.Spec{}).Encodable() {
		t.Fatal("zero spec is encodable")
	}
}

func TestSpecString(t *testing.T) {
	host := &recordingHost{}
	a := &hosted{Counter: counter.New(), name: "jobs", host: host}
	b := &hosted{Counter: counter.New(), name: "retries", host: host}
	if got := wait.Sum(a, b).AtLeast(100).Spec().String(); got != "sum(jobs, retries) >= 100" {
		t.Fatalf("sum String() = %q", got)
	}
	got := wait.KOfN([]counter.Interface{a, b}, 1, 7).Spec().String()
	if got != "1 of (jobs>=7, retries>=7)" {
		t.Fatalf("threshold String() = %q", got)
	}
	if got := wait.AtLeast(counter.New(), 3).Spec().String(); !strings.Contains(got, "?>=3") {
		t.Fatalf("anonymous String() = %q", got)
	}
}

// TestSpecRoutesToCommonHost: counters nominating one host get a single
// external registration instead of sentinels; mixed hosts (or any
// host-less counter) evaluate client-side.
func TestSpecRoutesToCommonHost(t *testing.T) {
	host := &recordingHost{}
	a := &hosted{Counter: counter.New(), name: "a", host: host}
	b := &hosted{Counter: counter.New(), name: "b", host: host}

	cond := wait.Sum(a, b).AtLeast(5)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	mustBlock(t, errc)
	st := cond.Stats()
	if !st.External || st.Armed != 0 {
		t.Fatalf("stats with common host = %+v, want external registration, zero sentinels", st)
	}
	host.mu.Lock()
	if len(host.specs) != 1 || host.specs[0].String() != "sum(a, b) >= 5" {
		t.Fatalf("host saw specs %v", host.specs)
	}
	fire := host.fires[0]
	host.mu.Unlock()
	fire(true)
	waitNil(t, errc)

	// Different hosts: no common host, classic sentinels.
	other := &recordingHost{}
	c := &hosted{Counter: counter.New(), name: "c", host: other}
	cond = wait.Sum(a, c).AtLeast(5)
	errc = make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	mustBlock(t, errc)
	if st := cond.Stats(); st.External {
		t.Fatalf("stats with split hosts = %+v, want no external registration", st)
	}
	a.Increment(3)
	c.Increment(2)
	waitNil(t, errc)
}
