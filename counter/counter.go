// Package counter provides monotonic counters, the thread-synchronization
// mechanism of Thornley and Chandy ("Monotonic Counters: A New Mechanism
// for Thread Synchronization", IPPS 2000). It is the public face of this
// repository; the implementations live in internal/core, and every
// counter in this module — including the networked one in
// counter/remote — presents the same Interface.
//
// A Counter has a nonnegative value, initially zero, that only ever
// increases. Increment(amount) atomically adds to it; Check(level) blocks
// until the value is at least level. Because the value is monotonic there
// is no way for a Check to miss an Increment, so programs that guard their
// shared data with counter operations synchronize deterministically, and
// multithreaded execution is equivalent to sequential execution whenever
// sequential execution does not deadlock (paper, section 6).
//
// One counter can stand in for an array of condition variables or a
// barrier: it maintains one suspension queue per distinct level currently
// waited on, so storage and wake cost scale with the number of distinct
// levels, not with the number of waiting goroutines (paper, section 7).
//
// Typical dataflow use — a writer publishing a sequence to any number of
// independent readers through one counter:
//
//	var ready counter.Counter
//	// writer:
//	for i := range data {
//		data[i] = produce(i)
//		ready.Increment(1)
//	}
//	// each reader:
//	for i := range data {
//		ready.Check(uint64(i) + 1)
//		consume(data[i])
//	}
//
// Deliberately, there is no Decrement and no way to read the instantaneous
// value: a decision based on a momentary value would reintroduce the
// timing races counters exist to eliminate.
//
// # Choosing an implementation
//
// Counter (the paper's reference design) and Sharded (write-optimized)
// are the two tuned implementations with their own types. Open selects
// any implementation from the internal registry by name — including the
// ablation designs used by the experiments — behind the same Interface,
// and counter/remote provides the same Interface over a counterd server
// for cross-process synchronization.
//
// # Cancellation semantics
//
// CheckContext and WaitTimeout extend the paper with a way to stop
// waiting. Three rules make them safe to use anywhere a Check is:
//
//   - A satisfied level beats a cancelled context. If the value already
//     satisfies level, CheckContext returns nil even when ctx expired
//     long ago (and WaitTimeout(level, 0) reports true). Monotonicity is
//     preserved: once Check(level) would pass, it passes forever.
//   - Cancellation never perturbs the counter. A cancelled waiter
//     deregisters completely — the value is untouched, other waiters are
//     undisturbed, and the last cancelled waiter on a level reclaims the
//     level's bookkeeping, so abandoned levels cost nothing.
//   - No goroutine is spawned per call. Waiters suspend by selecting on
//     a per-level channel that Increment closes, so a blocked
//     CheckContext costs one parked goroutine — the caller's — and a
//     cancelled one leaves nothing behind.
//
// # Memory model
//
// In the terminology of the Go memory model, the n-th call to Increment
// on a counter is synchronized before the return of any Check(level) with
// level reached by that increment. Data written before an Increment is
// therefore visible to every goroutine whose Check that increment (or any
// later one) satisfies, with no additional synchronization — the counter
// is the memory fence for the data it gates, which is what makes the
// paper's publish-then-increment patterns sound.
package counter

import (
	"monotonic/internal/core"
)

// Counter is a monotonic counter. The zero value is ready to use with
// value zero. A Counter must not be copied after first use.
//
// Counter embeds the reference implementation from the paper's section 7:
// a mutex plus an ordered list of per-level waiter nodes, each with its
// own condition variable. Its full method set — Increment, Check,
// CheckContext, WaitTimeout, Reset, Stats, SetProbe — is the shared
// facade; see Interface for the contract.
type Counter struct {
	facade[core.Counter, *core.Counter]
}

// New returns a new counter with value zero. Equivalent to new(Counter).
func New() *Counter { return new(Counter) }
