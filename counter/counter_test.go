package counter_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"monotonic/counter"
)

func TestZeroValueReady(t *testing.T) {
	var c counter.Counter
	c.Check(0) // must not block
	c.Increment(3)
	c.Check(3)
}

func TestNewEquivalentToZeroValue(t *testing.T) {
	c := counter.New()
	done := make(chan struct{})
	go func() {
		c.Check(2)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	c.Increment(2)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Check never released")
	}
}

func TestCheckContext(t *testing.T) {
	var c counter.Counter
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.CheckContext(ctx, 1) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
}

func TestWaitTimeout(t *testing.T) {
	var c counter.Counter
	if c.WaitTimeout(1, 20*time.Millisecond) {
		t.Fatal("timeout reported success")
	}
	c.Increment(1)
	if !c.WaitTimeout(1, 5*time.Second) {
		t.Fatal("satisfied wait reported failure")
	}
}

// TestSatisfiedBeatsCancelled pins the documented cancellation rule at
// the public surface: an already-satisfied level wins over an
// already-expired context or a zero timeout.
func TestSatisfiedBeatsCancelled(t *testing.T) {
	var c counter.Counter
	c.Increment(4)
	if !c.WaitTimeout(4, 0) {
		t.Fatal("WaitTimeout(4, 0) = false with value 4")
	}
	if c.WaitTimeout(5, 0) {
		t.Fatal("WaitTimeout(5, 0) = true with value 4")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.CheckContext(ctx, 4); err != nil {
		t.Fatalf("CheckContext(cancelled, satisfied) = %v, want nil", err)
	}
	if err := c.CheckContext(ctx, 5); err != context.Canceled {
		t.Fatalf("CheckContext(cancelled, unsatisfied) = %v, want Canceled", err)
	}
}

func TestReset(t *testing.T) {
	var c counter.Counter
	c.Increment(10)
	c.Reset()
	if c.WaitTimeout(1, 10*time.Millisecond) {
		t.Fatal("value nonzero after Reset")
	}
}

// ExampleCounter demonstrates the writer/readers broadcast from the
// package documentation.
func ExampleCounter() {
	const n = 5
	data := make([]int, n)
	var ready counter.Counter
	var wg sync.WaitGroup

	// Two independent readers, each seeing the whole sequence.
	results := make([][]int, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ready.Check(uint64(i) + 1)
				results[r] = append(results[r], data[i])
			}
		}(r)
	}

	// One writer publishing items in order.
	for i := 0; i < n; i++ {
		data[i] = i * i
		ready.Increment(1)
	}
	wg.Wait()
	fmt.Println(results[0])
	fmt.Println(results[1])
	// Output:
	// [0 1 4 9 16]
	// [0 1 4 9 16]
}

// ExampleCounter_ordering demonstrates mutual exclusion with sequential
// ordering (paper section 5.2): the counter forces index order.
func ExampleCounter_ordering() {
	var order []int
	var c counter.Counter
	var wg sync.WaitGroup
	for i := 4; i >= 0; i-- { // start in reverse to show reordering
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Check(uint64(i))
			order = append(order, i)
			c.Increment(1)
		}(i)
	}
	wg.Wait()
	fmt.Println(order)
	// Output: [0 1 2 3 4]
}
