package counter

import "context"

// Waitable is anything that can be waited on until a monotone condition
// holds: the predicate conditions built by counter/wait satisfy it, and
// so does any user type whose Wait has the same one-shot monotone
// semantics — once Wait returns nil it returns nil forever.
type Waitable interface {
	// Wait blocks until the condition holds or ctx is cancelled. A
	// satisfied condition beats a cancelled context, mirroring
	// CheckContext's rule for a single level.
	Wait(ctx context.Context) error
}

// WaitFor blocks until w's monotone predicate holds or ctx is
// cancelled. It is Check generalized from "this counter reached level
// L" to any monotone predicate over any number of counters — a sum
// crossing a target, a minimum clearing a bar, k of n members reaching
// a threshold — built with the combinators in counter/wait:
//
//	a, b := counter.New(), counter.New()
//	err := counter.WaitFor(ctx, wait.Sum(a, b).AtLeast(100))
//
// The same safety argument that makes Check race-free carries over:
// monotone predicates never flip back, so there is no transient state
// to observe and no lost-wakeup window. N goroutines waiting on one
// Waitable cost one parked node per watched counter, not per waiter.
func WaitFor(ctx context.Context, w Waitable) error {
	return w.Wait(ctx)
}
