package counter_test

import (
	"strings"
	"testing"

	"monotonic/counter"
	"monotonic/counter/countertest"
)

// TestOpenConformance drives the full black-box conformance battery
// through Open for every registered implementation name: anything
// reachable by name must be interchangeable behind the Interface.
func TestOpenConformance(t *testing.T) {
	for _, name := range counter.Impls() {
		name := name
		t.Run(name, func(t *testing.T) {
			countertest.Run(t, func(t *testing.T) counter.Interface {
				c, err := counter.Open(name)
				if err != nil {
					t.Fatalf("Open(%q): %v", name, err)
				}
				return c
			})
		})
	}
}

// TestOpenPredicates drives the predicate-wait battery (counter/wait
// over the sentinel surface) through Open for every registered
// implementation name.
func TestOpenPredicates(t *testing.T) {
	for _, name := range counter.Impls() {
		name := name
		t.Run(name, func(t *testing.T) {
			countertest.RunPredicates(t, func(t *testing.T) counter.Interface {
				c, err := counter.Open(name)
				if err != nil {
					t.Fatalf("Open(%q): %v", name, err)
				}
				return c
			})
		})
	}
}

// TestOpenStatsProvider pins the facade guarantee that every opened
// counter also reports stats (so counter.Publish works on any of them).
func TestOpenStatsProvider(t *testing.T) {
	for _, name := range counter.Impls() {
		c, err := counter.Open(name)
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		sp, ok := c.(counter.StatsProvider)
		if !ok {
			t.Fatalf("Open(%q) counter does not implement StatsProvider", name)
		}
		c.Increment(3)
		c.Check(3)
		st := sp.Stats()
		if st.Increments != 1 {
			t.Errorf("Open(%q): Stats().Increments = %d after one increment, want 1", name, st.Increments)
		}
		if st.RemoteRoundTrips != 0 || st.RemoteWaitNanos != 0 {
			t.Errorf("Open(%q): Remote* stats nonzero for an in-process counter: %+v", name, st)
		}
	}
}

// TestOpenUnknown pins the error contract: unknown names fail with a
// message listing what would have worked.
func TestOpenUnknown(t *testing.T) {
	_, err := counter.Open("nonesuch")
	if err == nil {
		t.Fatal("Open(nonesuch) succeeded")
	}
	for _, name := range counter.Impls() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("Open error %q does not list implementation %q", err, name)
		}
	}
}

// TestImplsIncludesTunedDesigns guards the registry wiring: the two
// designs with dedicated public types must be reachable by name too.
func TestImplsIncludesTunedDesigns(t *testing.T) {
	have := make(map[string]bool)
	for _, name := range counter.Impls() {
		have[name] = true
	}
	for _, want := range []string{"list", "sharded"} {
		if !have[want] {
			t.Errorf("Impls() = %v: missing %q", counter.Impls(), want)
		}
	}
}
