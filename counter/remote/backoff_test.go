package remote

import (
	"testing"
	"time"
)

// TestBackoffWindowDoublesToCap pins the deterministic skeleton under
// the jitter: windows double from base and clamp at cap. The injected
// rnd returns n-1, the maximum draw, so the observed sleep is exactly
// window-1 and the window sequence is visible through it.
func TestBackoffWindowDoublesToCap(t *testing.T) {
	b := backoff{base: 5 * time.Millisecond, cap: 40 * time.Millisecond,
		rnd: func(n int64) int64 { return n - 1 }}
	want := []time.Duration{5, 10, 20, 40, 40, 40}
	for i, w := range want {
		w *= time.Millisecond
		if got := b.next(); got != w-1 {
			t.Fatalf("attempt %d: sleep = %v, want window %v - 1ns", i+1, got, w)
		}
	}
}

// TestBackoffFullJitterSpansWindow pins that the draw is over the FULL
// window [0, w) — not a narrow band around the deterministic schedule —
// by checking the bounds for every attempt and that the low end of the
// window is actually reachable.
func TestBackoffFullJitterSpansWindow(t *testing.T) {
	b := backoff{base: 4 * time.Millisecond, cap: 64 * time.Millisecond,
		rnd: func(n int64) int64 { return 0 }}
	for i := 0; i < 8; i++ {
		if got := b.next(); got != 0 {
			t.Fatalf("attempt %d: minimum draw = %v, want 0 (full jitter reaches the window floor)", i+1, got)
		}
	}

	windows := []time.Duration{4, 8, 16, 32, 64, 64}
	b = backoff{base: 4 * time.Millisecond, cap: 64 * time.Millisecond} // real randomness
	for i, w := range windows {
		w *= time.Millisecond
		got := b.next()
		if got < 0 || got >= w {
			t.Fatalf("attempt %d: sleep = %v, outside [0, %v)", i+1, got, w)
		}
	}
}

// TestBackoffSchedulesDecorrelate is the lockstep regression: two
// clients severed by the same node restart must not retry on identical
// schedules. Two independently drawn schedules with the same base/cap
// collide with probability ~(1/5e6)^8 per pair of attempts; any
// identical sequence means the jitter is gone.
func TestBackoffSchedulesDecorrelate(t *testing.T) {
	a := backoff{base: 5 * time.Millisecond, cap: 500 * time.Millisecond}
	b := backoff{base: 5 * time.Millisecond, cap: 500 * time.Millisecond}
	identical := true
	for i := 0; i < 8; i++ {
		if a.next() != b.next() {
			identical = false
		}
	}
	if identical {
		t.Fatal("two clients drew identical 8-attempt retry schedules: backoff is not jittered")
	}
}

// TestBackoffClampsBadConfig pins the WithBackoff clamping: a
// non-positive base falls back to the default, a cap below base is
// raised to base.
func TestBackoffClampsBadConfig(t *testing.T) {
	b := backoff{base: 0, cap: 0, rnd: func(n int64) int64 { return n - 1 }}
	if got := b.next(); got != defaultBackoffBase-1 {
		t.Fatalf("zero-config first sleep = %v, want default window %v - 1ns", got, defaultBackoffBase)
	}
	b = backoff{base: 20 * time.Millisecond, cap: time.Millisecond,
		rnd: func(n int64) int64 { return n - 1 }}
	for i := 0; i < 3; i++ {
		if got := b.next(); got != 20*time.Millisecond-1 {
			t.Fatalf("attempt %d with cap<base: sleep = %v, want clamped window 20ms - 1ns", i+1, got)
		}
	}
}
