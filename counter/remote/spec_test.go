package remote_test

import (
	"context"
	"net"
	"testing"
	"time"

	"monotonic/counter"
	"monotonic/counter/countertest"
	"monotonic/counter/remote"
	"monotonic/counter/wait"
	"monotonic/internal/server"
	"monotonic/internal/wire"
)

// startServerS is startServer returning the server too, for tests that
// assert on PredicateWaits.
func startServerS(t *testing.T) (*server.Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New()
	go s.Serve(lis)
	t.Cleanup(func() { s.Close() })
	return s, lis.Addr().String()
}

func waitPredWaits(t *testing.T, s *server.Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.PredicateWaits() != want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.PredicateWaits(); n != want {
		t.Fatalf("PredicateWaits = %d, want %d", n, want)
	}
}

// TestWirePredicates runs the exported wire v3 predicate battery: one
// parked entry per session quorum, zero waiter frames per non-flipping
// increment, and a v2 client passing the full battery against this
// server.
func TestWirePredicates(t *testing.T) {
	countertest.RunWirePredicates(t)
}

func TestServerFeatures(t *testing.T) {
	addr := startServer(t)

	v3 := dialClient(t, addr)
	v3.Counter(countertest.FreshName("feat")).Increment(1) // force a handshake
	if f := v3.ServerFeatures(); f&wire.FeatureWaitFor == 0 {
		t.Fatalf("v3 ServerFeatures = %#x, want FeatureWaitFor set", f)
	}

	v2, err := remote.Dial(addr, remote.WithProtocol(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v2.Close() })
	v2.Counter(countertest.FreshName("feat")).Increment(1)
	if f := v2.ServerFeatures(); f != 0 {
		t.Fatalf("v2 ServerFeatures = %#x, want 0", f)
	}
}

// TestSpecWaitRoutesServerSide pins the tentpole: a predicate over two
// counters of one client parks ONE server-side entry, non-flipping
// increments cost the waiting client zero frames in either direction,
// and the flip delivers exactly one wake.
func TestSpecWaitRoutesServerSide(t *testing.T) {
	s, addr := startServerS(t)
	waiter := dialClient(t, addr)
	inc := dialClient(t, addr)

	na, nb := countertest.FreshName("sr"), countertest.FreshName("sr")
	cond := wait.Sum(waiter.Counter(na), waiter.Counter(nb)).AtLeast(100)

	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	waitPredWaits(t, s, 1)
	if st := cond.Stats(); !st.External || st.Armed != 0 {
		t.Fatalf("stats = %+v, want External with zero local sentinels", st)
	}

	// Non-flipping increments from another client: the waiter's link
	// stays silent. (Frame counts are quiescent once IncAcks drain on
	// the incrementer side; the waiter sends and receives nothing.)
	sent0, recv0 := waiter.WireStats()
	for i := 0; i < 99; i++ {
		inc.Counter(na).Increment(1)
	}
	inc.Counter(na).Check(99) // fence: the server has applied all 99
	if sent, recv := waiter.WireStats(); sent != sent0 || recv != recv0 {
		t.Fatalf("waiter frames moved during non-flipping increments: sent %d→%d recv %d→%d",
			sent0, sent, recv0, recv)
	}

	// The flip: exactly one wake releases the waiter.
	inc.Counter(nb).Increment(1)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server-side predicate wait never released")
	}
	waitPredWaits(t, s, 0)
	if sent, recv := waiter.WireStats(); recv != recv0+1 {
		t.Fatalf("waiter received %d frames for the flip (sent %d→%d), want exactly 1 wake",
			recv-recv0, sent0, sent)
	}
}

// TestSpecWaitV2FallsBack dials WithProtocol(2): the same combinator
// must still work, evaluated client-side over per-counter waits.
func TestSpecWaitV2FallsBack(t *testing.T) {
	s, addr := startServerS(t)
	cl, err := remote.Dial(addr, remote.WithProtocol(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	other := dialClient(t, addr)

	na, nb := countertest.FreshName("v2"), countertest.FreshName("v2")
	cond := wait.KOfN([]counter.Interface{cl.Counter(na), cl.Counter(nb)}, 2, 3)

	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	time.Sleep(30 * time.Millisecond)
	if st := cond.Stats(); st.External {
		t.Fatalf("stats = %+v: v2 session must not route server-side", st)
	}
	if n := s.PredicateWaits(); n != 0 {
		t.Fatalf("PredicateWaits = %d, want 0 for a v2 session", n)
	}
	other.Counter(na).Increment(3)
	other.Counter(nb).Increment(3)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("v2 fallback predicate wait never released")
	}
}

// TestSpecWaitCancel abandons a parked spec wait via context: the
// server entry must drain and the counters stay resettable.
func TestSpecWaitCancel(t *testing.T) {
	s, addr := startServerS(t)
	cl := dialClient(t, addr)

	na, nb := countertest.FreshName("sc"), countertest.FreshName("sc")
	ca, cb := cl.Counter(na), cl.Counter(nb)
	cond := wait.Sum(ca, cb).AtLeast(1000)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(ctx) }()
	waitPredWaits(t, s, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	waitPredWaits(t, s, 0)
	ca.Reset() // panics if the abandoned wait left anything parked server-side
	_ = cb
}

// TestSpecWaitSurvivesReconnect severs the link while a spec wait is
// parked: the reconnect must replay the OpWaitFor registration, and a
// post-reconnect flip still releases the waiter.
func TestSpecWaitSurvivesReconnect(t *testing.T) {
	s, addr := startServerS(t)
	p := startProxy(t, addr)
	cl, err := remote.Dial(p.lis.Addr().String(), remote.WithBackoff(time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	other := dialClient(t, addr)

	na, nb := countertest.FreshName("rr"), countertest.FreshName("rr")
	cond := wait.Sum(cl.Counter(na), cl.Counter(nb)).AtLeast(10)

	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	waitPredWaits(t, s, 1)

	p.kill() // sever; the dead conn's entry drains, the replay re-parks it
	waitPredWaits(t, s, 1)

	other.Counter(na).Increment(4)
	other.Counter(nb).Increment(6)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("spec wait never released after reconnect replay")
	}
}

// TestSpecWaitDegradesOnClose pins the fire(false) path: closing the
// client while a spec wait is parked degrades the Cond to per-counter
// evaluation (External drops) without deadlocking, and the waiter stays
// cancellable through its context.
func TestSpecWaitDegradesOnClose(t *testing.T) {
	addr := startServer(t)
	cl, err := remote.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cond := wait.Sum(cl.Counter(countertest.FreshName("dg")), cl.Counter(countertest.FreshName("dg"))).AtLeast(10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for !cond.Stats().External && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !cond.Stats().External {
		t.Fatal("spec wait never routed server-side")
	}
	cl.Close()
	for cond.Stats().External && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := cond.Stats(); st.External {
		t.Fatalf("stats = %+v: Close must degrade the external registration", st)
	}
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait stranded after Close degraded the spec wait")
	}
}
