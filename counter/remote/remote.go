// Package remote provides monotonic counters that live in a counterd
// server (cmd/counterd, internal/server), so goroutines in different
// processes — or on different machines — synchronize on the same levels.
// A remote Counter implements exactly the counter.Interface contract;
// code written against it cannot tell local from remote, and
// counter.Publish exports a remote counter's stats unchanged.
//
// The paper's monotonicity argument is what makes this safe to put on a
// wire: a counter's value only grows, so a Check can be re-sent after a
// reconnect without risk (it cannot observe a smaller value), and the
// only retry hazard is applying an Increment twice. Increments therefore
// carry per-session sequence numbers and the server deduplicates, so the
// client's resend-after-reconnect discipline preserves exactly-once
// application. See docs/PATTERNS.md, "Counters across processes".
//
// One Client multiplexes any number of named counters and outstanding
// waits over a single TCP connection with two goroutines total (a reader
// and a write flusher) — never a goroutine per blocked wait, mirroring
// the in-process engine's discipline. Increments pipeline: they are
// fire-and-forget frames batched into the next flush, and a following
// Check observes them in order because the server applies frames in
// arrival order.
package remote

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"monotonic/counter"
	"monotonic/internal/wire"
)

// ErrClosed is reported by operations on a Client that has been Closed:
// CheckContext returns it (in place of blocking forever on a connection
// that will never come back); operations that cannot report an error
// panic with it.
var ErrClosed = errors.New("remote: client closed")

// Option configures Dial.
type Option func(*Client)

// WithDialer replaces the transport dialer (default: TCP with a 5s
// timeout). Tests use it to interpose failing links; production can use
// it for TLS or unix sockets.
func WithDialer(d func(addr string) (net.Conn, error)) Option {
	return func(cl *Client) { cl.dial = d }
}

// WithProtocol pins the wire protocol version the client speaks, for
// interop testing and conservative rollouts: WithProtocol(2) makes the
// client indistinguishable from a pre-v3 build (no feature bits
// requested, predicate waits evaluated client-side) even against a v3
// server. v must be within [wire.MinVersion, wire.Version]; the default
// is wire.Version.
func WithProtocol(v uint64) Option {
	if v < wire.MinVersion || v > wire.Version {
		panic(fmt.Sprintf("remote: protocol version %d outside %d..%d", v, wire.MinVersion, wire.Version))
	}
	return func(cl *Client) { cl.proto = v }
}

// WithBackoff configures the reconnect schedule: the first retry after
// a failed attempt sleeps a uniformly random duration below base, and
// the window doubles per consecutive failure up to cap (full jitter —
// see backoff). The defaults are 5ms growing to 500ms. Non-positive or
// inverted values are clamped sensibly (base defaults, cap raised to
// base).
func WithBackoff(base, cap time.Duration) Option {
	return func(cl *Client) { cl.boff = backoff{base: base, cap: cap} }
}

// WithRetryNotify installs fn to observe the reconnect loop: after
// every failed attempt it is called with the count of consecutive
// failures in this outage (1, 2, …) and the attempt's error, and after
// a successful reconnect with (0, nil). fn runs on the client's reader
// goroutine — it must not block and must not call methods that wait on
// the client (Close, round trips). The cluster layer uses it to declare
// a node dead after a failure budget.
func WithRetryNotify(fn func(failures int, err error)) Option {
	return func(cl *Client) { cl.retryNotify = fn }
}

// WithRestartNotify installs fn to observe node restarts: when a
// reconnect's Welcome carries a different boot epoch than the previous
// connection's, the server is a different instance — every increment it
// had acknowledged, and the counter values they built, are gone, and
// the ordinary resume (re-send the unacked tail) cannot restore them.
// fn receives both epochs plus this client's still-unacknowledged
// amount per counter name (the portion the resume machinery is already
// re-sending), so a supervisor can top the counters back up with
// exactly its acknowledged contribution: ledger[name] − unacked[name].
// fn runs on the reader goroutine after the session is replayed; it may
// call TryIncrement but must not block on the client.
func WithRestartNotify(fn func(oldEpoch, newEpoch uint64, unacked map[string]uint64)) Option {
	return func(cl *Client) { cl.restartNotify = fn }
}

// Client is one session with a counterd server. It is safe for
// concurrent use by any number of goroutines; all counters obtained
// from it share its connection. On connection failure the client
// reconnects with exponential backoff and resumes: it re-sends its
// unacknowledged increments (the server deduplicates by sequence
// number) and re-registers its outstanding waits (idempotent by
// monotonicity), so callers just block across the outage.
type Client struct {
	addr          string
	dial          func(addr string) (net.Conn, error)
	proto         uint64  // wire version spoken at Hello (WithProtocol; default wire.Version)
	boff          backoff // per-outage schedule template (copied by reconnect)
	retryNotify   func(failures int, err error)
	restartNotify func(oldEpoch, newEpoch uint64, unacked map[string]uint64)
	closeCh       chan struct{} // closed by Close; unblocks backoff sleeps

	mu        sync.Mutex
	flushCond *sync.Cond
	nc        net.Conn
	bw        *bufio.Writer
	br        *bufio.Reader
	scratch   []byte
	dirty     bool
	closed    bool
	fatal     error  // latched increment-overflow error; poisons the client
	epoch     uint64 // boot epoch of the server instance last welcomed by
	features  uint64 // feature bits from the last Welcome (zero on v2 sessions)

	session   uint64
	nextSeq   uint64
	nextID    uint64
	pending   []pendingInc // increments sent but not yet acknowledged, ascending by seq
	waits     map[uint64]*wait
	specWaits map[uint64]*specWait // outstanding OpWaitFor predicate registrations
	calls     map[uint64]*call
	counters  map[string]*Counter

	// Lifetime frame tallies (see WireStats): enqueued to and received
	// from the server, across reconnects.
	framesSent atomic.Uint64
	framesRecv atomic.Uint64

	wg sync.WaitGroup
}

type pendingInc struct {
	seq    uint64
	name   string
	amount uint64
}

// wait is one outstanding Check/CheckContext/CheckChan registration.
type wait struct {
	id    uint64
	level uint64
	ctr   *Counter
	start time.Time
	// ch resolves the wait: nil for a wake, the recorded context error
	// for a cancellation, ErrClosed if the client closes. Buffered so
	// the reader never blocks delivering.
	ch chan error
	// cancelled records that the waiter asked to cancel; ctxErr is what
	// to resolve with if the server confirms (or the connection dies).
	cancelled bool
	ctxErr    error
}

// call is one outstanding request/reply exchange (Reset, Stats). The
// frame is kept for resend across reconnects; both are idempotent.
type call struct {
	id    uint64
	frame wire.Frame
	ch    chan callResult
}

type callResult struct {
	f   wire.Frame
	err error
}

// Dial connects to a counterd server and performs the session
// handshake. The returned client holds one connection and two
// goroutines regardless of how many counters and waits it multiplexes.
func Dial(addr string, opts ...Option) (*Client, error) {
	cl := &Client{
		addr: addr,
		dial: func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		},
		proto:     wire.Version,
		boff:      backoff{base: defaultBackoffBase, cap: defaultBackoffCap},
		closeCh:   make(chan struct{}),
		waits:     make(map[uint64]*wait),
		specWaits: make(map[uint64]*specWait),
		calls:     make(map[uint64]*call),
		counters:  make(map[string]*Counter),
	}
	cl.flushCond = sync.NewCond(&cl.mu)
	for _, o := range opts {
		o(cl)
	}
	if err := cl.connect(); err != nil {
		return nil, err
	}
	cl.wg.Add(2)
	go cl.readLoop()
	go cl.flushLoop()
	return cl, nil
}

// connect dials, handshakes, installs the new connection, and replays
// session state (unacknowledged increments, outstanding waits and
// calls). Called from Dial and from the reader's reconnect loop.
func (cl *Client) connect() error {
	cl.mu.Lock()
	sess := cl.session
	cl.mu.Unlock()

	nc, err := cl.dial(cl.addr)
	if err != nil {
		return err
	}
	hello := wire.Append(nil, &wire.Frame{Op: wire.OpHello, Session: sess, Seq: cl.proto})
	if _, err := nc.Write(hello); err != nil {
		nc.Close()
		return err
	}
	br := bufio.NewReader(nc)
	welcome, err := wire.Read(br)
	if err != nil {
		nc.Close()
		return err
	}
	if welcome.Op != wire.OpWelcome {
		nc.Close()
		return fmt.Errorf("remote: handshake reply %s, want welcome", welcome.Op)
	}

	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		nc.Close()
		return ErrClosed
	}
	cl.nc, cl.br, cl.bw = nc, br, bufio.NewWriter(nc)
	cl.session = welcome.Session
	// A changed boot epoch means this is a different server instance:
	// the old one's acknowledged state is gone. The resume below still
	// does the right mechanical thing — a fresh instance has lastSeq 0,
	// so the whole pending tail survives the trim and is re-sent — but
	// acknowledged increments cannot be recovered here; that is the
	// restart notification's job (the cluster layer replays its ledger).
	oldEpoch := cl.epoch
	cl.epoch = welcome.Epoch
	cl.features = welcome.Features
	restarted := oldEpoch != 0 && welcome.Epoch != oldEpoch

	// Everything the server already applied can be forgotten; the rest
	// is re-sent in order and deduplicated server-side by sequence.
	trimmed := cl.pending[:0]
	for _, p := range cl.pending {
		if p.seq > welcome.Seq {
			trimmed = append(trimmed, p)
		}
	}
	cl.pending = trimmed
	var unacked map[string]uint64
	if restarted && cl.restartNotify != nil {
		unacked = make(map[string]uint64)
		for _, p := range cl.pending {
			unacked[p.name] += p.amount
		}
	}
	for _, p := range cl.pending {
		cl.enqueueLocked(&wire.Frame{Op: wire.OpIncrement, Name: p.name, Seq: p.seq, Amount: p.amount})
	}
	// Waits whose cancellation was requested while the link was down
	// resolve now as cancelled; live waits re-register (re-sending the
	// requested level is harmless: the value is monotonic).
	for id, w := range cl.waits {
		if w.cancelled {
			delete(cl.waits, id)
			w.ctr.rtts.Add(1)
			w.ch <- w.ctxErr
			continue
		}
		cl.enqueueLocked(&wire.Frame{Op: wire.OpCheck, Name: w.ctr.name, ID: w.id, Level: w.level})
	}
	// Predicate registrations replay like waits — the re-sent OpWaitFor
	// is idempotent by monotonicity. If the reconnect landed on a server
	// without the feature (downgrade across a failover), the
	// registrations cannot be honoured: they degrade — fire(false) tells
	// each predicate Cond to fall back to per-counter sentinels.
	var degraded []*specWait
	for id, sw := range cl.specWaits {
		if cl.features&wire.FeatureWaitFor == 0 {
			delete(cl.specWaits, id)
			degraded = append(degraded, sw)
			continue
		}
		cl.enqueueLocked(&sw.frame)
	}
	cl.mu.Unlock()
	for _, sw := range degraded {
		sw.fire(false)
	}
	if restarted && cl.restartNotify != nil {
		// Out of the lock: the callback may call back into the client
		// (TryIncrement to top counters up).
		cl.restartNotify(oldEpoch, welcome.Epoch, unacked)
	}
	return nil
}

// Epoch returns the boot epoch of the server instance the client last
// completed a handshake with (zero before the first). It changes only
// when a reconnect lands on a restarted server; see WithRestartNotify.
func (cl *Client) Epoch() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.epoch
}

// Close tears the session down: the connection is closed, both client
// goroutines retire, and every outstanding wait and call resolves with
// ErrClosed. Increments not yet acknowledged by the server may or may
// not have been applied — Close abandons the session's exactly-once
// tracking.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	close(cl.closeCh) // unblocks a reconnect backoff sleep immediately
	if cl.nc != nil {
		cl.nc.Close()
	}
	for id, w := range cl.waits {
		delete(cl.waits, id)
		w.ch <- ErrClosed
	}
	var orphaned []*specWait
	for id, sw := range cl.specWaits {
		delete(cl.specWaits, id)
		orphaned = append(orphaned, sw)
	}
	for id, rc := range cl.calls {
		delete(cl.calls, id)
		rc.ch <- callResult{err: ErrClosed}
	}
	cl.flushCond.Broadcast()
	cl.mu.Unlock()
	// Outside cl.mu: degrade-fire each orphaned predicate registration so
	// its Cond stops counting on a server answer that will never come.
	for _, sw := range orphaned {
		sw.fire(false)
	}
	cl.wg.Wait()
	return nil
}

// Counter returns the named counter hosted by the server, creating it
// server-side on first use. Counters with the same name from any client
// are the same counter. The name must be 1..wire.MaxName bytes.
func (cl *Client) Counter(name string) *Counter {
	if name == "" || len(name) > wire.MaxName {
		panic(fmt.Sprintf("remote: bad counter name %q", name))
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	c, ok := cl.counters[name]
	if !ok {
		c = &Counter{cl: cl, name: name}
		cl.counters[name] = c
	}
	return c
}

// enqueueLocked appends f to the connection's write buffer and nudges
// the flusher. With the link down it is a no-op: state replay at
// reconnect is the source of truth, not the buffer. Callers hold cl.mu.
func (cl *Client) enqueueLocked(f *wire.Frame) {
	if cl.nc == nil {
		return
	}
	cl.framesSent.Add(1)
	cl.scratch = wire.Append(cl.scratch[:0], f)
	cl.bw.Write(cl.scratch) // errors latch in bw; the reader notices the dead link
	cl.dirty = true
	cl.flushCond.Signal()
}

// flushLoop coalesces queued frames: every signal flushes whatever has
// accumulated, so a burst of increments or cancels becomes one write.
func (cl *Client) flushLoop() {
	defer cl.wg.Done()
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for {
		for !cl.dirty && !cl.closed {
			cl.flushCond.Wait()
		}
		if cl.closed {
			return
		}
		cl.dirty = false
		if cl.bw != nil {
			cl.bw.Flush() // errors latch; the reader notices and reconnects
		}
	}
}

// readLoop dispatches server frames and drives reconnection.
func (cl *Client) readLoop() {
	defer cl.wg.Done()
	for {
		cl.mu.Lock()
		br := cl.br
		closed := cl.closed
		cl.mu.Unlock()
		if closed {
			return
		}
		f, err := wire.Read(br)
		if err != nil {
			if !cl.reconnect() {
				return
			}
			continue
		}
		cl.framesRecv.Add(1)
		cl.dispatch(&f)
	}
}

// reconnect re-establishes the session, sleeping a jittered exponential
// backoff (see backoff) between attempts, and reports false once the
// client is closed. The sleep selects against the close channel, so a
// Close issued mid-backoff returns promptly instead of waiting the
// window out.
func (cl *Client) reconnect() bool {
	cl.mu.Lock()
	if cl.nc != nil {
		cl.nc.Close()
		cl.nc, cl.bw, cl.br = nil, nil, nil
	}
	cl.mu.Unlock()
	b := cl.boff // fresh window per outage
	failures := 0
	for {
		cl.mu.Lock()
		closed := cl.closed
		cl.mu.Unlock()
		if closed {
			return false
		}
		err := cl.connect()
		if err == nil {
			if cl.retryNotify != nil {
				cl.retryNotify(0, nil)
			}
			return true
		}
		if errors.Is(err, ErrClosed) {
			return false
		}
		failures++
		if cl.retryNotify != nil {
			cl.retryNotify(failures, err)
		}
		select {
		case <-time.After(b.next()):
		case <-cl.closeCh:
			return false
		}
	}
}

// dispatch routes one server frame to the wait or call it resolves.
func (cl *Client) dispatch(f *wire.Frame) {
	switch f.Op {
	case wire.OpWake:
		cl.mu.Lock()
		w := cl.waits[f.ID]
		delete(cl.waits, f.ID)
		var sw *specWait
		if w == nil {
			sw = cl.specWaits[f.ID]
			delete(cl.specWaits, f.ID)
		}
		cl.mu.Unlock()
		if w != nil {
			w.ctr.noteSatisfied(f.Level)
			w.ctr.rtts.Add(1)
			w.ctr.waitNanos.Add(uint64(time.Since(w.start)))
			w.ctr.emit(counter.EventWake, f.Level)
			w.ch <- nil
		}
		if sw != nil {
			// The server observed the predicate holding: authoritative.
			sw.fire(true)
		}
	case wire.OpCancelled:
		cl.mu.Lock()
		w := cl.waits[f.ID]
		delete(cl.waits, f.ID)
		cl.mu.Unlock()
		if w != nil {
			w.ctr.rtts.Add(1)
			w.ch <- w.ctxErr
		}
		// A cancelled predicate registration was already forgotten when
		// the cancel was sent; its confirmation needs no action here.
	case wire.OpIncAck:
		cl.mu.Lock()
		acked := map[*Counter]bool{}
		trimmed := cl.pending[:0]
		for _, p := range cl.pending {
			if p.seq <= f.Seq {
				acked[cl.counters[p.name]] = true
			} else {
				trimmed = append(trimmed, p)
			}
		}
		cl.pending = trimmed
		cl.mu.Unlock()
		for c := range acked {
			if c != nil {
				c.rtts.Add(1)
			}
		}
	case wire.OpResetOK, wire.OpStatsReply:
		cl.resolveCall(f.ID, callResult{f: *f})
	case wire.OpError:
		cl.mu.Lock()
		rc := cl.calls[f.ID]
		delete(cl.calls, f.ID)
		if rc == nil {
			// Not a call reply: the server rejected an increment (the
			// only fire-and-forget op that can fail — overflow). That is
			// a caller bug exactly like the in-process panic, but it
			// surfaces asynchronously, so latch it and panic the next
			// operation.
			if cl.fatal == nil {
				cl.fatal = errors.New("remote: " + f.Msg)
			}
		}
		cl.mu.Unlock()
		if rc != nil {
			rc.ch <- callResult{f: *f}
		}
	}
}

func (cl *Client) resolveCall(id uint64, r callResult) {
	cl.mu.Lock()
	rc := cl.calls[id]
	delete(cl.calls, id)
	cl.mu.Unlock()
	if rc != nil {
		rc.ch <- r
	}
}

// roundTrip performs one request/reply exchange, blocking until the
// server answers (re-sent across reconnects), the timeout lapses (zero
// means none), or the client closes.
func (cl *Client) roundTrip(f wire.Frame, timeout time.Duration) (wire.Frame, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return wire.Frame{}, ErrClosed
	}
	cl.nextID++
	f.ID = cl.nextID
	rc := &call{id: f.ID, frame: f, ch: make(chan callResult, 1)}
	cl.calls[f.ID] = rc
	cl.enqueueLocked(&f)
	cl.mu.Unlock()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case r := <-rc.ch:
		return r.f, r.err
	case <-timer:
		cl.mu.Lock()
		delete(cl.calls, rc.id)
		cl.mu.Unlock()
		select {
		case r := <-rc.ch: // resolution raced the timeout; take it
			return r.f, r.err
		default:
		}
		return wire.Frame{}, fmt.Errorf("remote: %s timed out after %v", f.Op, timeout)
	}
}

// checkFatal panics if a previous pipelined operation was rejected by
// the server (increment overflow) or the client is closed — the remote
// analogue of the in-process programming-error panics.
func (cl *Client) checkFatal() {
	cl.mu.Lock()
	fatal, closed := cl.fatal, cl.closed
	cl.mu.Unlock()
	if fatal != nil {
		panic(fatal.Error())
	}
	if closed {
		panic(ErrClosed.Error())
	}
}
