package remote_test

import (
	"context"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"monotonic/counter"
	"monotonic/counter/countertest"
	"monotonic/counter/remote"
	"monotonic/counter/wait"
	"monotonic/internal/server"
)

func startServer(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New()
	go s.Serve(lis)
	t.Cleanup(func() { s.Close() })
	return lis.Addr().String()
}

func dialClient(t *testing.T, addr string) *remote.Client {
	t.Helper()
	cl, err := remote.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestConformance runs the exact black-box battery the in-process
// implementations pass — including cancellation semantics and the
// goroutine-leak check — against remote counters on a loopback counterd.
// Server and client run in this process, so the goroutine accounting
// covers both sides of the wire.
func TestConformance(t *testing.T) {
	addr := startServer(t)
	cl := dialClient(t, addr)
	countertest.Run(t, func(t *testing.T) counter.Interface {
		return cl.Counter(countertest.FreshName("conf"))
	})
}

// TestPredicateConformance runs the predicate-wait battery against
// remote counters on a loopback counterd: the wait combinators must
// behave identically whether the counters are in-process or hosted.
func TestPredicateConformance(t *testing.T) {
	addr := startServer(t)
	cl := dialClient(t, addr)
	countertest.RunPredicates(t, func(t *testing.T) counter.Interface {
		return cl.Counter(countertest.FreshName("pred"))
	})
}

// TestCountersAreShared pins the point of the whole subsystem: two
// clients, same name, one counter.
func TestCountersAreShared(t *testing.T) {
	addr := startServer(t)
	a := dialClient(t, addr)
	b := dialClient(t, addr)
	name := countertest.FreshName("shared")
	done := make(chan struct{})
	go func() {
		b.Counter(name).Check(3)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	a.Counter(name).Increment(3)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("b never observed a's increments")
	}
}

// proxy is a TCP relay with a kill switch, so tests can sever the
// client-server link mid-stream without either endpoint cooperating.
type proxy struct {
	lis    net.Listener
	target string

	mu    sync.Mutex
	conns []net.Conn
	down  bool
}

func startProxy(t *testing.T, target string) *proxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &proxy{lis: lis, target: target}
	t.Cleanup(func() { lis.Close(); p.kill() })
	go p.run()
	return p
}

func (p *proxy) run() {
	for {
		in, err := p.lis.Accept()
		if err != nil {
			return
		}
		out, err := net.Dial("tcp", p.target)
		if err != nil {
			in.Close()
			continue
		}
		p.mu.Lock()
		if p.down {
			p.mu.Unlock()
			in.Close()
			out.Close()
			continue
		}
		p.conns = append(p.conns, in, out)
		p.mu.Unlock()
		go func() { io.Copy(out, in); in.Close(); out.Close() }()
		go func() { io.Copy(in, out); in.Close(); out.Close() }()
	}
}

// setDown controls whether new relays are accepted: after
// setDown(true), reconnect attempts land on a proxy that immediately
// closes them, so kill() becomes a permanent severance.
func (p *proxy) setDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

// kill severs every live relay; new dials keep working (reconnects land
// on fresh pipes) unless setDown(true) was called first.
func (p *proxy) kill() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// TestReconnectExactlyOnce is the acceptance test for retry-safe resume:
// a writer pushes N increments while the link is killed repeatedly, a
// reader Checks every level; the final value must be exactly N — every
// increment applied, none applied twice.
func TestReconnectExactlyOnce(t *testing.T) {
	addr := startServer(t)
	p := startProxy(t, addr)
	cl := dialClient(t, p.lis.Addr().String())
	name := countertest.FreshName("exact")
	c := cl.Counter(name)

	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: blocked Checks must survive the kills too
		defer wg.Done()
		for lv := uint64(50); lv <= n; lv += 50 {
			c.Check(lv)
		}
	}()
	for i := 1; i <= n; i++ {
		c.Increment(1)
		if i%100 == 0 {
			p.kill() // sever mid-pipeline; unacked tail must be re-sent
			time.Sleep(time.Millisecond)
		}
	}
	c.Check(n) // every increment eventually applies (none lost)
	wg.Wait()

	// None applied twice: a fresh client straight to the server (no
	// proxy, no shared session) must see the value still below n+1.
	direct := dialClient(t, addr)
	if direct.Counter(name).WaitTimeout(n+1, 300*time.Millisecond) {
		t.Fatalf("value exceeded %d: some increment was applied twice across reconnects", n)
	}
}

// TestBlockedCheckSurvivesReconnect kills the link while a Check is the
// only outstanding operation; the re-registered wait must still resolve.
func TestBlockedCheckSurvivesReconnect(t *testing.T) {
	addr := startServer(t)
	p := startProxy(t, addr)
	cl := dialClient(t, p.lis.Addr().String())
	c := cl.Counter(countertest.FreshName("surv"))

	done := make(chan struct{})
	go func() { c.Check(10); close(done) }()
	time.Sleep(30 * time.Millisecond) // wait reaches the server
	p.kill()
	time.Sleep(30 * time.Millisecond) // client notices, reconnects, re-registers

	other := dialClient(t, addr) // satisfy through the back door
	other.Counter("surv-none").Increment(0)
	c.Increment(10)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Check lost across reconnect")
	}
}

// TestCancelAcrossDeadLink cancels a wait while the link is down: the
// reconnect path must resolve it with the context error, not strand it.
func TestCancelAcrossDeadLink(t *testing.T) {
	addr := startServer(t)
	p := startProxy(t, addr)
	cl := dialClient(t, p.lis.Addr().String())
	c := cl.Counter(countertest.FreshName("cdl"))

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.CheckContext(ctx, 99) }()
	time.Sleep(30 * time.Millisecond)
	p.kill()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("CheckContext across dead link = %v, want Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled CheckContext never resolved across the dead link")
	}
}

// TestFanOutNoGoroutinePerWait registers thousands of waits through the
// async CheckChan API — client and server in one process — and asserts
// the total goroutine count stays flat: no goroutine per wait on either
// side of the wire. This is the in-test twin of experiment E22's bound.
func TestFanOutNoGoroutinePerWait(t *testing.T) {
	addr := startServer(t)
	cl := dialClient(t, addr)
	c := cl.Counter(countertest.FreshName("fan"))
	c.Increment(1)
	c.Check(1) // settle both sides' machinery into the baseline

	const waits = 2000
	baseline := runtime.NumGoroutine()
	chans := make([]<-chan error, waits)
	for i := range chans {
		chans[i] = c.CheckChan(uint64(i + 2))
	}
	// Fence: a round trip through the same pipeline proves the server has
	// registered everything sent before it.
	c.Increment(1)
	c.Check(2)
	if n := runtime.NumGoroutine(); n > baseline+4 {
		t.Fatalf("goroutines = %d with %d outstanding remote waits (baseline %d)", n, waits, baseline)
	}
	c.Increment(waits)
	for i, ch := range chans {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("wait %d resolved with %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("wait %d (level %d) never woke", i, i+2)
		}
	}
}

// TestStats pins the split schema: shared fields come from the hosted
// engine (all sessions aggregated), Remote* fields are client-local.
func TestStats(t *testing.T) {
	addr := startServer(t)
	cl := dialClient(t, addr)
	c := cl.Counter(countertest.FreshName("stats"))
	c.Increment(4)
	c.Check(4)
	done := make(chan struct{})
	go func() { c.Check(9); close(done) }()
	time.Sleep(30 * time.Millisecond)
	c.Increment(5)
	<-done

	s := c.Stats()
	if s.Increments != 2 {
		t.Errorf("Stats.Increments = %d, want 2 (server-side engine count)", s.Increments)
	}
	if s.RemoteRoundTrips == 0 {
		t.Error("Stats.RemoteRoundTrips = 0 after resolved waits and acks")
	}
	if s.RemoteWaitNanos == 0 {
		t.Error("Stats.RemoteWaitNanos = 0 after a genuinely blocked Check")
	}
	if s.Broadcasts > s.SatisfiedLevels {
		t.Errorf("invariant violated: Broadcasts %d > SatisfiedLevels %d", s.Broadcasts, s.SatisfiedLevels)
	}

	// counter.Publish works unchanged on a remote counter.
	counter.Publish(countertest.FreshName("expvar"), c)
}

// TestIncrementOverflowPoisonsClient pins the remote analogue of the
// in-process overflow panic: the rejection arrives asynchronously, so
// the *next* operation panics.
func TestIncrementOverflowPoisonsClient(t *testing.T) {
	addr := startServer(t)
	cl := dialClient(t, addr)
	c := cl.Counter(countertest.FreshName("ovf"))
	c.Increment(^uint64(0) - 1)
	c.Check(^uint64(0) - 1) // the poison frame, if any, is ordered before this wake
	c.Increment(5)          // overflows server-side
	deadline := time.Now().Add(5 * time.Second)
	for {
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			c.Increment(1)
			return
		}()
		if panicked {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("client never poisoned after server rejected an overflowing increment")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseResolvesWaiters pins ErrClosed delivery: Close must unblock
// outstanding CheckContext calls with ErrClosed rather than strand them.
func TestCloseResolvesWaiters(t *testing.T) {
	addr := startServer(t)
	cl, err := remote.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := cl.Counter("close-wait")
	errc := make(chan error, 1)
	go func() { errc <- c.CheckContext(context.Background(), 100) }()
	time.Sleep(30 * time.Millisecond)
	cl.Close()
	select {
	case err := <-errc:
		if err != remote.ErrClosed {
			t.Fatalf("CheckContext after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CheckContext never unblocked on Close")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestWaitTimeoutSatisfiedBeatsDeadline pins the cancellation rule over
// the wire: a level covered by the client's satisfied watermark beats an
// expired (zero or negative) deadline with NO round trip — proven by
// severing the link first. This is the remote twin of the in-process
// "WaitTimeout(level, 0) reports true on a satisfied level" contract.
func TestWaitTimeoutSatisfiedBeatsDeadline(t *testing.T) {
	addr := startServer(t)
	p := startProxy(t, addr)
	cl := dialClient(t, p.lis.Addr().String())
	c := cl.Counter(countertest.FreshName("wtz"))
	c.Increment(7)
	c.Check(7) // a real round trip raises the watermark to 7

	// Sever the link permanently: any path needing wire traffic hangs.
	p.setDown(true)
	p.kill()

	for _, d := range []time.Duration{0, -time.Second, time.Nanosecond} {
		done := make(chan bool, 1)
		go func() { done <- c.WaitTimeout(7, d) }()
		select {
		case ok := <-done:
			if !ok {
				t.Fatalf("WaitTimeout(7, %v) = false with watermark 7", d)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("WaitTimeout(7, %v) went to a dead link despite a covering watermark", d)
		}
	}
	done := make(chan bool, 1)
	go func() { done <- c.WaitTimeout(3, 0) }()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitTimeout(3, 0) = false with watermark 7")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("below-watermark WaitTimeout went to a dead link")
	}
}

// TestWaitTimeoutZeroResolvesOnServer pins the harder half of the same
// rule: a level satisfied on the SERVER but not yet in the client's
// watermark must still beat a zero deadline — the client registers the
// wait and races a cancel, and the server resolves in favor of the wake.
func TestWaitTimeoutZeroResolvesOnServer(t *testing.T) {
	addr := startServer(t)
	cl := dialClient(t, addr)
	c := cl.Counter(countertest.FreshName("wtsrv"))
	if c.WaitTimeout(5, 0) {
		t.Fatal("WaitTimeout(5, 0) = true on a zero counter")
	}
	c.Increment(5) // pipelined: applied before the wait frame below
	if !c.WaitTimeout(5, 0) {
		t.Fatal("WaitTimeout(5, 0) = false for a level satisfied on the server")
	}
	if c.WaitTimeout(6, -time.Second) {
		t.Fatal("WaitTimeout(6, -1s) = true with the value at 5")
	}
}

// TestRemoteSentinel exercises the sentinel surface on a remote counter:
// arm, fire on a cross-client increment, cancel cleanly.
func TestRemoteSentinel(t *testing.T) {
	addr := startServer(t)
	cl := dialClient(t, addr)
	other := dialClient(t, addr)
	name := countertest.FreshName("sent")
	c := cl.Counter(name)

	fired := make(chan struct{})
	cancel, armed := c.Sentinel(3, func() { close(fired) })
	if !armed {
		t.Fatal("Sentinel(3) on a zero counter reported not-armed")
	}
	other.Counter(name).Increment(3) // a different client satisfies it
	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatal("sentinel never fired on a cross-client increment")
	}
	if cancel() {
		t.Fatal("cancel after fire reported true")
	}
	if c.Watermark() < 3 {
		t.Fatalf("watermark = %d after the sentinel fired, want >= 3", c.Watermark())
	}
	if _, armed := c.Sentinel(2, nil); armed {
		t.Fatal("Sentinel(2) armed with watermark >= 3")
	}

	cancel2, armed2 := c.Sentinel(100, func() { t.Error("cancelled sentinel fired") })
	if !armed2 {
		t.Fatal("second sentinel not armed")
	}
	if !cancel2() {
		t.Fatal("cancel of an armed sentinel reported false")
	}
	time.Sleep(20 * time.Millisecond) // any stray fire would t.Error above
}

// TestRemotePredicateWait drives counter/wait's predicate machinery over
// remote counters: a sum across two hosted counters, incremented from a
// second client, releases a WaitFor on the first.
func TestRemotePredicateWait(t *testing.T) {
	addr := startServer(t)
	cl := dialClient(t, addr)
	other := dialClient(t, addr)
	na, nb := countertest.FreshName("pa"), countertest.FreshName("pb")
	cond := wait.Sum(cl.Counter(na), cl.Counter(nb)).AtLeast(10)

	errc := make(chan error, 1)
	go func() { errc <- counter.WaitFor(context.Background(), cond) }()
	select {
	case err := <-errc:
		t.Fatalf("WaitFor returned early with %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	other.Counter(na).Increment(4)
	other.Counter(nb).Increment(6)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("WaitFor = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("predicate wait over remote counters never released")
	}
}

// TestCloseDuringBackoffReturnsPromptly is the regression for the
// unconditional backoff sleep: with a 30-second backoff window and the
// server permanently gone, Close issued mid-backoff must return in
// milliseconds (the reader's sleep selects against the close channel),
// not after the window expires.
func TestCloseDuringBackoffReturnsPromptly(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New()
	go s.Serve(lis)
	failed := make(chan struct{}, 1)
	cl, err := remote.Dial(lis.Addr().String(),
		remote.WithBackoff(30*time.Second, 30*time.Second),
		remote.WithRetryNotify(func(n int, err error) {
			if n > 0 {
				select {
				case failed <- struct{}{}:
				default:
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	s.Close() // server gone for good: the client reconnects forever
	select {
	case <-failed: // at least one attempt failed; the client is in (or entering) a 30s sleep
	case <-time.After(10 * time.Second):
		t.Fatal("client never attempted to reconnect")
	}
	start := time.Now()
	if err := cl.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("Close during a 30s backoff window took %v, want <10ms", d)
	}
}

// TestRetryNotifyCountsAndResets pins the WithRetryNotify contract: a
// dead link produces calls with consecutive failure counts 1, 2, …, and
// a successful reconnect produces (0, nil).
func TestRetryNotifyCountsAndResets(t *testing.T) {
	addr := startServer(t)
	p := startProxy(t, addr)
	type event struct {
		n   int
		err error
	}
	events := make(chan event, 128)
	cl, err := remote.Dial(p.lis.Addr().String(),
		remote.WithBackoff(time.Millisecond, 10*time.Millisecond),
		remote.WithRetryNotify(func(n int, err error) {
			select {
			case events <- event{n, err}:
			default:
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	p.setDown(true)
	p.kill()
	want := 1
	deadline := time.After(10 * time.Second)
	for want <= 3 {
		select {
		case ev := <-events:
			if ev.err == nil {
				t.Fatalf("reconnect reported success with the proxy down (n=%d)", ev.n)
			}
			if ev.n != want {
				t.Fatalf("failure count = %d, want %d (consecutive failures must count up)", ev.n, want)
			}
			want++
		case <-deadline:
			t.Fatalf("saw %d failure notifications, want 3", want-1)
		}
	}
	p.setDown(false)
	for {
		select {
		case ev := <-events:
			if ev.err == nil {
				if ev.n != 0 {
					t.Fatalf("success notification carried failures=%d, want 0", ev.n)
				}
				return
			}
		case <-deadline:
			t.Fatal("reconnect never succeeded after the proxy came back")
		}
	}
}

// TestServerRestartDetected pins the epoch handshake end to end: a
// client that reconnects to a *restarted* server (same address, fresh
// instance) must observe the epoch change via WithRestartNotify, keep
// working against the new instance, and report the new epoch.
func TestServerRestartDetected(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	s1 := server.New()
	go s1.Serve(lis)

	restarts := make(chan [2]uint64, 1)
	cl, err := remote.Dial(addr,
		remote.WithBackoff(time.Millisecond, 20*time.Millisecond),
		remote.WithRestartNotify(func(oldE, newE uint64, unacked map[string]uint64) {
			select {
			case restarts <- [2]uint64{oldE, newE}:
			default:
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if got := cl.Epoch(); got != s1.Epoch() {
		t.Fatalf("Epoch after dial = %d, want the server's %d", got, s1.Epoch())
	}
	c := cl.Counter(countertest.FreshName("restart"))
	c.Increment(3)
	c.Check(3)

	s1.Close()
	var lis2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		lis2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s2 := server.New()
	go s2.Serve(lis2)
	t.Cleanup(func() { s2.Close() })

	select {
	case ep := <-restarts:
		if ep[0] != s1.Epoch() || ep[1] != s2.Epoch() {
			t.Fatalf("restart notify epochs = %v, want [%d %d]", ep, s1.Epoch(), s2.Epoch())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reconnect to a restarted server never fired the restart notification")
	}
	if got := cl.Epoch(); got != s2.Epoch() {
		t.Fatalf("Epoch after restart = %d, want the new instance's %d", got, s2.Epoch())
	}
	// The session works against the fresh instance.
	c2 := cl.Counter(countertest.FreshName("restart2"))
	c2.Increment(1)
	c2.Check(1)
}
