package remote

import (
	"math/rand/v2"
	"time"
)

// Reconnect backoff defaults; override with WithBackoff.
const (
	defaultBackoffBase = 5 * time.Millisecond
	defaultBackoffCap  = 500 * time.Millisecond
)

// backoff produces the reconnect retry schedule: an exponentially
// growing window with full jitter. The window starts at base and
// doubles per attempt up to cap; each attempt sleeps a uniformly random
// duration inside the current window. Full jitter (rather than jitter
// around the deterministic schedule) is what decorrelates a fleet: when
// a node restart severs every client at the same instant, deterministic
// doubling has them all knocking again in lockstep at 5ms, 10ms, 20ms…
// — a synchronized reconnect storm — whereas uniform draws spread each
// wave across the whole window from the very first attempt.
//
// A Client copies its configured backoff per outage, so every outage
// starts a fresh window and the schedule state needs no locking.
type backoff struct {
	base, cap time.Duration
	window    time.Duration // current window; 0 means "not started"
	// rnd returns a uniform int64 in [0, n); tests replace it to pin
	// the schedule. nil selects the process-wide math/rand/v2 source.
	rnd func(n int64) int64
}

// next returns the duration to sleep before the upcoming attempt and
// advances the window.
func (b *backoff) next() time.Duration {
	if b.base <= 0 {
		b.base = defaultBackoffBase
	}
	if b.cap < b.base {
		b.cap = b.base
	}
	if b.window <= 0 {
		b.window = b.base
	}
	w := b.window
	if b.window < b.cap {
		b.window *= 2
		if b.window > b.cap {
			b.window = b.cap
		}
	}
	rnd := b.rnd
	if rnd == nil {
		rnd = rand.Int64N
	}
	return time.Duration(rnd(int64(w)))
}
