package remote

import (
	cwait "monotonic/counter/wait"
	"monotonic/internal/wire"
)

// Server-side predicate waits (wire v3). A Client is a wait.SpecHost:
// counter/wait's combinators, seeing every watched counter nominate the
// same Client, arm ONE OpWaitFor registration here instead of one
// sentinel (one wire-level wait, re-sent per frontier move) per watched
// counter. The server parks one predicate entry per registration and
// answers with a single OpWake when the predicate flips — increments
// that cannot flip it cost this client zero frames in either direction.
// Against a v2 server (no FeatureWaitFor) ArmSpec refuses and the
// predicate engine falls back to the per-counter watermark path
// unchanged.

// specWait is one outstanding OpWaitFor registration.
type specWait struct {
	id    uint64
	frame wire.Frame // the encoded OpWaitFor, kept for reconnect replay
	fire  func(satisfied bool)
}

// specFrame encodes a wait.Spec into an OpWaitFor frame, reporting
// false for specs the wire cannot carry.
func specFrame(spec cwait.Spec) (wire.Frame, bool) {
	if !spec.Encodable() {
		return wire.Frame{}, false
	}
	names, ok := spec.Names()
	if !ok {
		return wire.Frame{}, false
	}
	f := wire.Frame{Op: wire.OpWaitFor, Watch: make([]wire.Watch, len(names))}
	switch spec.Kind {
	case cwait.KindSum:
		f.Pred = wire.PredSum
		f.Target = spec.Target
		for i, n := range names {
			f.Watch[i] = wire.Watch{Name: n}
		}
	case cwait.KindThreshold:
		f.Pred = wire.PredThreshold
		f.K = uint64(spec.K)
		for i, n := range names {
			f.Watch[i] = wire.Watch{Name: n, Level: spec.Levels[i]}
		}
	default:
		return wire.Frame{}, false
	}
	return f, true
}

// ArmSpec registers spec for server-side evaluation, making the Client
// a wait.SpecHost. It refuses (ok = false) when the spec is not
// wire-encodable, the negotiated session lacks FeatureWaitFor (v2
// server, or the client was dialed WithProtocol(2)), or the client is
// closed/poisoned — the caller then evaluates client-side. An accepted
// registration survives reconnects: the frame is re-sent with the rest
// of the session state, and monotonicity makes the re-send idempotent.
// fire(true) arrives when the server observes the predicate holding;
// fire(false) when the registration can no longer be honoured (client
// closed, or a reconnect landed on a server without the feature).
//
// ArmSpec and the returned cancel are called under the predicate
// engine's lock; both only take cl.mu and enqueue — no round trips.
func (cl *Client) ArmSpec(spec cwait.Spec, fire func(satisfied bool)) (cancel func() bool, ok bool) {
	f, ok := specFrame(spec)
	if !ok {
		return nil, false
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed || cl.fatal != nil || cl.features&wire.FeatureWaitFor == 0 {
		return nil, false
	}
	cl.nextID++
	f.ID = cl.nextID
	sw := &specWait{id: f.ID, frame: f, fire: fire}
	cl.specWaits[f.ID] = sw
	cl.enqueueLocked(&f)
	return func() bool {
		cl.mu.Lock()
		defer cl.mu.Unlock()
		if _, live := cl.specWaits[sw.id]; !live {
			return false // fire already delivered (or on its way through dispatch)
		}
		delete(cl.specWaits, sw.id)
		// Fire-and-forget: the server answers OpCancelled (or OpWake if
		// satisfaction won the race); both find no entry and are dropped.
		cl.enqueueLocked(&wire.Frame{Op: wire.OpWaitForCancel, ID: sw.id})
		return true
	}, true
}

// ServerFeatures returns the feature bits the server advertised in the
// last completed handshake — callers can observe whether predicate
// waits run server-side (wire.FeatureWaitFor) or fall back to the
// per-counter client path. Zero against a v2 server, with
// WithProtocol(2), or before the first handshake.
func (cl *Client) ServerFeatures() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.features
}

// WireStats reports the total frames this client has enqueued to and
// received from the server over its lifetime, across reconnects. Tests
// and experiments use the deltas to assert wire-cost bounds — e.g. E27
// pins "zero frames in either direction on the waiting client per
// non-flipping increment".
func (cl *Client) WireStats() (sent, received uint64) {
	return cl.framesSent.Load(), cl.framesRecv.Load()
}
