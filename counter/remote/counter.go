package remote

import (
	"context"
	"sync/atomic"
	"time"

	"monotonic/counter"
	cwait "monotonic/counter/wait"
	"monotonic/internal/wire"
)

// Counter is a named monotonic counter hosted by a counterd server,
// obtained from Client.Counter. It implements the same counter.Interface
// as the in-process types, with the same semantics: monotone value,
// satisfied-beats-cancelled, cancellation never perturbs the counter,
// Reset panics under suspended waiters (the server refuses and the
// client relays the refusal as a panic). Counters with the same name
// across clients are one counter.
//
// Cost model on the wire: Increment is fire-and-forget (pipelined and
// batched, no per-call round trip); a Check whose level the client has
// already observed satisfied returns immediately with no wire traffic
// at all — monotonicity means a level seen satisfied once is satisfied
// forever, so the client keeps a local watermark. Only a genuinely
// blocking wait costs a round trip, and any number of outstanding waits
// share the client's two goroutines.
type Counter struct {
	cl   *Client
	name string

	// known is the client-local satisfied watermark: the highest level
	// this client has proof the hosted value reached (via wakes and
	// stats replies). Safe precisely because the value is monotonic.
	known atomic.Uint64

	immediate atomic.Uint64 // checks satisfied by the watermark
	suspends  atomic.Uint64 // checks that went to the wire
	rtts      atomic.Uint64 // completed wire exchanges
	waitNanos atomic.Uint64 // wall-clock nanoseconds blocked on the wire

	probe      atomic.Pointer[func(counter.Event)]
	lastStatsP atomic.Pointer[lastStats]
}

// The remote counter is interchangeable with the in-process ones.
var (
	_ counter.Interface     = (*Counter)(nil)
	_ counter.StatsProvider = (*Counter)(nil)
)

// noteSatisfied raises the satisfied watermark to level (never lowers
// it — concurrent observations may arrive out of order).
func (c *Counter) noteSatisfied(level uint64) {
	for {
		cur := c.known.Load()
		if level <= cur || c.known.CompareAndSwap(cur, level) {
			return
		}
	}
}

func (c *Counter) emit(kind counter.EventKind, level uint64) {
	if p := c.probe.Load(); p != nil {
		(*p)(counter.Event{Kind: kind, Level: level})
	}
}

// Increment atomically increases the hosted counter's value by amount,
// waking every waiter — in any process — whose level the new value
// satisfies. The frame is pipelined: Increment returns as soon as it is
// queued, and a later Check on the same client observes it because the
// server applies a session's frames in order. The increment survives
// reconnects exactly once (sequence-numbered, deduplicated
// server-side). If the server rejects an increment (uint64 overflow,
// the same programming error that panics in-process), the client
// latches the error and the next operation panics.
func (c *Counter) Increment(amount uint64) {
	if err := c.TryIncrement(amount); err != nil {
		panic(err.Error())
	}
}

// TryIncrement is Increment for supervisors that own the client's
// lifecycle (the cluster layer, counter/cluster): instead of panicking
// it reports ErrClosed on a closed client and the latched rejection on
// a poisoned one. A failover path that races a client teardown needs
// the error, not the panic: ErrClosed there means "this client's node
// was retired and the amount is the replay machinery's problem now".
func (c *Counter) TryIncrement(amount uint64) error {
	cl := c.cl
	cl.mu.Lock()
	if cl.fatal != nil {
		fatal := cl.fatal
		cl.mu.Unlock()
		return fatal
	}
	if cl.closed {
		cl.mu.Unlock()
		return ErrClosed
	}
	if amount == 0 {
		cl.mu.Unlock()
		return nil
	}
	cl.nextSeq++
	cl.pending = append(cl.pending, pendingInc{seq: cl.nextSeq, name: c.name, amount: amount})
	cl.enqueueLocked(&wire.Frame{Op: wire.OpIncrement, Name: c.name, Seq: cl.nextSeq, Amount: amount})
	cl.mu.Unlock()
	c.emit(counter.EventIncrement, amount)
	return nil
}

// Check suspends the caller until the hosted value is at least level.
// A level this client has already seen satisfied returns immediately
// without touching the network.
func (c *Counter) Check(level uint64) {
	if err := <-c.CheckChan(level); err != nil {
		panic(err.Error()) // only ErrClosed: the client was torn down under us
	}
}

// CheckContext is Check with cancellation: nil once the value reaches
// level, ctx.Err() if the context wins. A satisfied level beats a
// cancelled context — even when the wake and the cancellation race on
// the wire, the server resolves the race and the client honors its
// answer. Cancellation deregisters the server-side waiter, so an
// abandoned level costs nothing in any process. It returns ErrClosed if
// the client is closed while waiting.
func (c *Counter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.known.Load() {
		c.immediate.Add(1)
		return nil
	}
	if err := ctx.Err(); err != nil {
		// Cheap pre-check only: a satisfied level must beat a cancelled
		// context, and satisfied state lives on the server, so ask.
		return c.checkCancelled(level, err)
	}
	ch, w := c.checkChan(level)
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return c.cancelWait(w, ctx.Err())
	}
}

// WaitTimeout is Check bounded by a timeout, reporting whether the
// level was reached; a satisfied level beats an expired deadline.
func (c *Counter) WaitTimeout(level uint64, d time.Duration) bool {
	if level <= c.known.Load() {
		c.immediate.Add(1)
		return true
	}
	if d <= 0 {
		return c.checkCancelled(level, context.DeadlineExceeded) == nil
	}
	ch, w := c.checkChan(level)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-ch:
		if err != nil {
			panic(err.Error()) // only ErrClosed
		}
		return true
	case <-t.C:
		return c.cancelWait(w, context.DeadlineExceeded) == nil
	}
}

// CheckChan is the asynchronous form of Check: it registers the wait
// and returns a channel that receives exactly one value — nil once the
// hosted value reaches level, or ErrClosed if the client is closed
// first. It exists so one goroutine can hold any number of outstanding
// waits (the fan-out experiment E22 parks thousands of waits from a
// handful of goroutines); Check and CheckContext are built on it.
func (c *Counter) CheckChan(level uint64) <-chan error {
	if level <= c.known.Load() {
		c.immediate.Add(1)
		ch := make(chan error, 1)
		ch <- nil
		return ch
	}
	ch, _ := c.checkChan(level)
	return ch
}

// checkChan registers a wire-level wait and returns its resolution
// channel plus the wait record (for cancellation).
func (c *Counter) checkChan(level uint64) (chan error, *wait) {
	cl := c.cl
	cl.mu.Lock()
	if cl.fatal != nil {
		fatal := cl.fatal
		cl.mu.Unlock()
		panic(fatal.Error())
	}
	if cl.closed {
		cl.mu.Unlock()
		ch := make(chan error, 1)
		ch <- ErrClosed
		return ch, nil
	}
	cl.nextID++
	w := &wait{id: cl.nextID, level: level, ctr: c, start: time.Now(), ch: make(chan error, 1)}
	cl.waits[w.id] = w
	cl.enqueueLocked(&wire.Frame{Op: wire.OpCheck, Name: c.name, ID: w.id, Level: level})
	cl.mu.Unlock()
	c.suspends.Add(1)
	c.emit(counter.EventSuspend, level)
	return w.ch, w
}

// cancelWait asks the server to deregister w, then blocks until the
// server resolves the race: OpCancelled (the wait was still pending →
// ctxErr) or OpWake (satisfaction was already in flight → nil). If the
// link is down, reconnect resolves pending-cancelled waits locally. The
// caller's context error is recorded first so every path agrees on it.
func (c *Counter) cancelWait(w *wait, ctxErr error) error {
	if w == nil { // registration hit a closed client; ch already resolved
		return ErrClosed
	}
	cl := c.cl
	cl.mu.Lock()
	if _, live := cl.waits[w.id]; !live {
		// Resolution already delivered (or in the channel buffer).
		cl.mu.Unlock()
		return <-w.ch
	}
	w.cancelled = true
	w.ctxErr = ctxErr
	cl.enqueueLocked(&wire.Frame{Op: wire.OpCancel, ID: w.id})
	cl.mu.Unlock()
	return <-w.ch
}

// checkCancelled serves the "context already cancelled" path: satisfied
// must still beat cancelled, so it registers the wait and immediately
// races a cancel against it, returning nil only if the server wakes it.
func (c *Counter) checkCancelled(level uint64, ctxErr error) error {
	_, w := c.checkChan(level)
	return c.cancelWait(w, ctxErr)
}

// Name returns the counter's hosted name — its identity on the server
// and across clients, and the name predicate descriptors (wait.Spec)
// carry over the wire.
func (c *Counter) Name() string { return c.name }

// SpecHost nominates this counter's Client as the evaluator for whole
// predicates over it: counter/wait routes a predicate server-side when
// every watched counter nominates the same host. See Client.ArmSpec.
func (c *Counter) SpecHost() cwait.SpecHost { return c.cl }

// Watermark returns the client's satisfied watermark: the highest level
// this client has proof the hosted value reached. It is a monotone
// lower bound on the hosted value — it lags by however much other
// clients have incremented since this client last heard a wake — which
// is exactly the view the predicate layer (counter/wait) needs, and it
// never touches the network.
func (c *Counter) Watermark() uint64 { return c.known.Load() }

// Sentinel arms a one-shot hook that fires when the hosted value
// reaches level, making remote counters watchable by counter/wait's
// predicate conditions alongside in-process ones. An armed sentinel
// costs one wire-level wait (the same price as a blocked CheckContext,
// sharing the client's two goroutines) plus one goroutine client-side;
// it fires on the server's wake, counts as a suspended waiter for
// Reset's refusal, and cancel deregisters the server-side wait. armed
// reports false only when the client's watermark already covers level —
// a level satisfied on the server but not yet observed here arms and
// then fires within a round trip, which the Sentineler contract
// permits.
func (c *Counter) Sentinel(level uint64, fn func()) (cancel func() bool, armed bool) {
	if level <= c.known.Load() {
		c.immediate.Add(1)
		return nil, false
	}
	ctx, cancelCtx := context.WithCancel(context.Background())
	var state atomic.Int32 // 0 armed, 1 fired, 2 cancelled
	go func() {
		defer cancelCtx()
		if c.CheckContext(ctx, level) == nil {
			// nil even under a racing cancel means the server resolved
			// the race in favor of satisfaction — satisfied beats
			// cancelled on the wire too, so fire unless cancel won the
			// local CAS first.
			if state.CompareAndSwap(0, 1) {
				fn()
			}
		}
	}()
	return func() bool {
		if state.CompareAndSwap(0, 2) {
			cancelCtx()
			return true
		}
		return false
	}, true
}

// Reset sets the hosted value back to zero for reuse between phases. As
// in-process, it must not run concurrently with other operations on the
// counter — from any client — and panics if waiters are suspended on it
// (the server refuses the reset and the panic relays its reason).
func (c *Counter) Reset() {
	c.cl.checkFatal()
	f, err := c.cl.roundTrip(wire.Frame{Op: wire.OpReset, Name: c.name}, 0)
	if err != nil {
		panic("remote: reset: " + err.Error())
	}
	c.rtts.Add(1)
	if f.Op == wire.OpError {
		panic("remote: reset: " + f.Msg)
	}
	// The hosted value is zero again; this client's satisfied watermark
	// must restart with it or stale immediate Checks would lie.
	c.known.Store(0)
}

// statsTimeout bounds the Stats round trip so expvar scrapes degrade to
// a cached snapshot instead of hanging when the server is unreachable.
const statsTimeout = 2 * time.Second

// lastStats caches the most recent server snapshot for the timeout path.
type lastStats struct {
	s wire.Stats
}

// Stats reports the hosted counter's engine measurements — the shared
// schema fields describe the server-side counter that every client
// session contributes to — plus this client's Remote* wire
// measurements. If the server cannot answer within two seconds the last
// snapshot it did give is reused (zeroes before the first), so an
// expvar scrape never wedges on a dead link.
func (c *Counter) Stats() counter.Stats {
	var ws wire.Stats
	f, err := c.cl.roundTrip(wire.Frame{Op: wire.OpStats, Name: c.name}, statsTimeout)
	if err == nil && f.Op == wire.OpStatsReply {
		ws = f.Stats
		c.rtts.Add(1)
		c.lastStatsP.Store(&lastStats{s: ws})
	} else if last := c.lastStatsP.Load(); last != nil {
		ws = last.s
	}
	return counter.Stats{
		PeakLevels:         int(ws.PeakLevels),
		SatisfiedLevels:    ws.SatisfiedLevels,
		Broadcasts:         ws.Broadcasts,
		ChannelCloses:      ws.ChannelCloses,
		Suspends:           ws.Suspends,
		ImmediateChecks:    ws.ImmediateChecks,
		Increments:         ws.Increments,
		FastPathIncrements: ws.FastPathIncrements,
		Flushes:            ws.Flushes,
		RemoteRoundTrips:   c.rtts.Load(),
		RemoteWaitNanos:    c.waitNanos.Load(),
	}
}

// SetProbe installs fn to observe this client's operations on the
// counter: EventIncrement per local Increment call, EventSuspend per
// wait that goes to the wire, EventWake per wake received. Events are
// client-local (the server aggregates all sessions; see Stats for that
// view). fn must be fast and must not call back into the counter;
// SetProbe(nil) removes the probe.
func (c *Counter) SetProbe(fn func(counter.Event)) {
	if fn == nil {
		c.probe.Store(nil)
		return
	}
	c.probe.Store(&fn)
}
