package counter_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"monotonic/counter"
)

// TestShardedZeroValueReady: the facade's zero value must work on every
// path, like Counter's.
func TestShardedZeroValueReady(t *testing.T) {
	var c counter.Sharded
	c.Check(0)
	c.Increment(3)
	c.Check(3)
	if err := c.CheckContext(context.Background(), 2); err != nil {
		t.Fatalf("CheckContext = %v", err)
	}
	if !c.WaitTimeout(3, 0) {
		t.Fatal("WaitTimeout(3, 0) = false on a satisfied level")
	}
	c.Reset()
	c.Check(0)
}

// TestShardedPublishSubscribe drives the canonical dataflow pattern
// through the write-optimized counter: many incrementers publish, a
// reader paces itself, and cancellation behaves like Counter's.
func TestShardedPublishSubscribe(t *testing.T) {
	c := counter.NewSharded()
	const (
		writers   = 8
		perWriter = 500
	)
	total := uint64(writers * perWriter)
	done := make(chan struct{})
	go func() {
		c.Check(total)
		close(done)
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Increment(1)
			}
		}()
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reader never released at the total")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.CheckContext(ctx, total); err != nil {
		t.Fatalf("satisfied level lost to a cancelled context: %v", err)
	}
	if err := c.CheckContext(ctx, total+1); err != context.Canceled {
		t.Fatalf("CheckContext(unsatisfied, cancelled) = %v, want Canceled", err)
	}
}
