package counter

import (
	"context"
	"fmt"
	"strings"
	"time"

	"monotonic/internal/core"
)

// Interface is the one contract every counter in this module satisfies:
// the in-process implementations behind this package (*Counter,
// *Sharded, and everything Open returns) and the networked client in
// counter/remote. Code written against Interface works unchanged whether
// the counter lives in the same process or behind a counterd server —
// the monotonicity rules below are exactly what makes the remote case
// retry-safe, so the contract does not weaken over the wire.
type Interface interface {
	// Increment atomically increases the counter's value by amount,
	// waking every waiter whose level the new value satisfies.
	// Increment(0) is a no-op. Increment panics if the value would
	// overflow uint64, since wrap-around would violate monotonicity.
	Increment(amount uint64)

	// Check suspends the caller until the value is at least level;
	// a satisfied level returns immediately, forever.
	Check(level uint64)

	// CheckContext is Check with cancellation: nil once the value
	// reaches level, ctx.Err() if the context wins. A satisfied level
	// beats a cancelled context, cancellation never perturbs the
	// counter, and no goroutine is spawned per call.
	CheckContext(ctx context.Context, level uint64) error

	// WaitTimeout is Check bounded by a timeout, reporting whether the
	// level was reached; a satisfied level beats an expired deadline.
	WaitTimeout(level uint64, d time.Duration) bool

	// Reset sets the value back to zero for reuse between phases. It
	// must not run concurrently with any other operation and panics if
	// waiters are suspended on the counter.
	Reset()
}

// The public types implement Interface and StatsProvider (compile-time
// checks; the remote client asserts the same in its own package).
var (
	_ Interface     = (*Counter)(nil)
	_ Interface     = (*Sharded)(nil)
	_ StatsProvider = (*Counter)(nil)
	_ StatsProvider = (*Sharded)(nil)
)

// Impls lists the in-process implementation names Open accepts, in
// registry order (reference design first). The set is the internal
// registry that the conformance, fuzz, and stress suites iterate, so an
// implementation reachable here is covered by the whole battery.
func Impls() []string {
	impls := core.Registry()
	names := make([]string, len(impls))
	for i, impl := range impls {
		names[i] = string(impl)
	}
	return names
}

// Open returns a fresh counter of the named in-process implementation —
// "list" and "sharded" are the tuned designs also available as Counter
// and Sharded, "fc" adds a flat-combining path for increment-contended
// use; the rest are the ablation designs the experiments compare. Every returned counter also implements StatsProvider (so
// Publish works on it) and accepts SetProbe where the implementation
// has an engine-side hook. Unknown names return an error listing the
// valid ones.
func Open(impl string) (Interface, error) {
	switch core.Impl(impl) {
	case core.ImplList:
		return new(Counter), nil
	case core.ImplSharded:
		return new(Sharded), nil
	case core.ImplHeap:
		return new(facade[core.HeapCounter, *core.HeapCounter]), nil
	case core.ImplChan:
		return new(facade[core.ChanCounter, *core.ChanCounter]), nil
	case core.ImplBroadcast:
		return new(facade[core.BroadcastCounter, *core.BroadcastCounter]), nil
	case core.ImplAtomic:
		return new(facade[core.AtomicCounter, *core.AtomicCounter]), nil
	case core.ImplSpin:
		return new(facade[core.SpinCounter, *core.SpinCounter]), nil
	case core.ImplFC:
		return new(facade[core.FCCounter, *core.FCCounter]), nil
	}
	return nil, fmt.Errorf("counter: unknown implementation %q (have %s)",
		impl, strings.Join(Impls(), ", "))
}
