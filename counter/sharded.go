package counter

import (
	"monotonic/internal/core"
)

// Sharded is a monotonic counter for write-heavy use: while no goroutine
// is waiting, Increment is a single atomic update on one of
// GOMAXPROCS-striped, cache-padded cells, so heavily concurrent
// incrementers scale with cores instead of serializing on a mutex. The
// moment a Check or CheckContext has to wait, the counter flips to the
// exact locked wake path of Counter and keeps every semantic guarantee —
// wake-ups by level, satisfied-beats-cancelled, no goroutine per
// cancellable wait — then resumes the striped fast path when the last
// waiter leaves. An overflow assembled across stripes is detected no
// later than the next flush or waiting Check; the counter never silently
// wraps.
//
// Prefer Counter when waits are frequent relative to increments (the
// classic dataflow patterns); prefer Sharded when increments dominate —
// high-rate progress publication, fan-in completion counting, metrics
// that occasionally gate a consumer. See docs/PATTERNS.md ("Write-heavy
// counters") for the protocol. Its method set is the shared facade; see
// Interface for the contract.
//
// The zero value is ready to use with value zero. A Sharded must not be
// copied after first use.
type Sharded struct {
	facade[core.ShardedCounter, *core.ShardedCounter]
}

// NewSharded returns a new write-optimized counter with value zero.
// Equivalent to new(Sharded).
func NewSharded() *Sharded { return new(Sharded) }
