package counter

import (
	"context"
	"time"

	"monotonic/internal/core"
)

// Sharded is a monotonic counter for write-heavy use: while no goroutine
// is waiting, Increment is a single atomic update on one of
// GOMAXPROCS-striped, cache-padded cells, so heavily concurrent
// incrementers scale with cores instead of serializing on a mutex. The
// moment a Check or CheckContext has to wait, the counter flips to the
// exact locked wake path of Counter and keeps every semantic guarantee —
// wake-ups by level, satisfied-beats-cancelled, no goroutine per
// cancellable wait — then resumes the striped fast path when the last
// waiter leaves.
//
// Prefer Counter when waits are frequent relative to increments (the
// classic dataflow patterns); prefer Sharded when increments dominate —
// high-rate progress publication, fan-in completion counting, metrics
// that occasionally gate a consumer. See docs/PATTERNS.md ("Write-heavy
// counters") for the protocol.
//
// The zero value is ready to use with value zero. A Sharded must not be
// copied after first use.
type Sharded struct {
	c core.ShardedCounter
}

// NewSharded returns a new write-optimized counter with value zero.
// Equivalent to new(Sharded).
func NewSharded() *Sharded { return new(Sharded) }

// Increment atomically increases the counter's value by amount, waking
// every goroutine suspended on a level the new value satisfies.
// Increment(0) is a no-op. Increment panics if the value would overflow
// uint64, since wrap-around would violate monotonicity; an overflow
// assembled across stripes is detected no later than the next flush or
// waiting Check.
func (c *Sharded) Increment(amount uint64) { c.c.Increment(amount) }

// Check suspends the calling goroutine until the counter's value is at
// least level. If the value already satisfies level, Check returns
// immediately without taking any lock.
func (c *Sharded) Check(level uint64) { c.c.Check(level) }

// CheckContext is Check with cancellation; it follows the same
// cancellation semantics as Counter.CheckContext (see the package
// documentation).
func (c *Sharded) CheckContext(ctx context.Context, level uint64) error {
	return c.c.CheckContext(ctx, level)
}

// WaitTimeout is Check bounded by a timeout, reporting whether the level
// was reached. A satisfied level beats an expired deadline.
func (c *Sharded) WaitTimeout(level uint64, d time.Duration) bool {
	return core.WaitTimeout(&c.c, level, d)
}

// Reset sets the value back to zero so the counter can be reused between
// phases. Reset must not be called concurrently with any other operation
// on the counter; it panics if goroutines are suspended on the counter.
func (c *Sharded) Reset() { c.c.Reset() }
