package countertest

import (
	"context"
	"net"
	"testing"
	"time"

	"monotonic/counter"
	"monotonic/counter/remote"
	"monotonic/counter/wait"
	"monotonic/internal/server"
	"monotonic/internal/wire"
)

// RunWirePredicates executes the wire v3 predicate-wait conformance
// battery: everything the protocol extension promises, measured at run
// time against a loopback counterd started inside the test —
//
//   - a k-of-n quorum parks exactly ONE wait entry on the server for
//     the whole session predicate, not one per watched counter;
//   - increments that cannot flip the predicate cost the waiting client
//     ZERO frames in either direction (10^4 of them, counted);
//   - a v2 client runs the full countertest battery against the same v3
//     server unchanged — negotiation keeps old clients whole.
//
// The battery is exported so every transport arrangement (single node,
// cluster member) can assert the same bounds.
func RunWirePredicates(t *testing.T) {
	t.Helper()
	t.Run("QuorumParksOneEntryZeroRTT", testQuorumParksOneEntryZeroRTT)
	t.Run("V2ClientFullBattery", testV2ClientFullBattery)
}

// startLoopback boots a counterd on a loopback listener for the battery.
func startLoopback(t *testing.T) (*server.Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New()
	go s.Serve(lis)
	t.Cleanup(func() { s.Close() })
	return s, lis.Addr().String()
}

func dialLoopback(t *testing.T, addr string, opts ...remote.Option) *remote.Client {
	t.Helper()
	cl, err := remote.Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func testQuorumParksOneEntryZeroRTT(t *testing.T) {
	const (
		quorum      = 8
		nonFlipping = 10_000
	)
	s, addr := startLoopback(t)
	waiter := dialLoopback(t, addr)
	inc := dialLoopback(t, addr)

	names := make([]string, quorum)
	cs := make([]counter.Interface, quorum)
	for i := range cs {
		names[i] = FreshName("wirequorum")
		cs[i] = waiter.Counter(names[i])
	}
	// All 8 members must reach 1: any increment to an already-satisfied
	// member cannot flip it.
	cond := wait.KOfN(cs, quorum, 1)

	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()

	deadline := time.Now().Add(5 * time.Second)
	for s.PredicateWaits() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.PredicateWaits(); n != 1 {
		t.Fatalf("PredicateWaits = %d for an %d-counter quorum, want exactly 1 session entry", n, quorum)
	}
	if st := cond.Stats(); !st.External || st.Armed != 0 {
		t.Fatalf("stats = %+v, want External with zero client-side sentinels", st)
	}

	// 10^4 increments on one member: satisfied-member churn that can
	// never flip a full quorum. The waiter's link must stay silent.
	sent0, recv0 := waiter.WireStats()
	c0 := inc.Counter(names[0])
	for i := 0; i < nonFlipping; i++ {
		c0.Increment(1)
	}
	c0.Check(nonFlipping) // fence: the server has applied every one
	if sent, recv := waiter.WireStats(); sent != sent0 || recv != recv0 {
		t.Fatalf("waiter paid frames for non-flipping increments: sent %d→%d, recv %d→%d",
			sent0, sent, recv0, recv)
	}
	if n := s.PredicateWaits(); n != 1 {
		t.Fatalf("PredicateWaits = %d after non-flipping churn, want still 1", n)
	}

	// Complete the quorum: one wake, entry gone, waiter released.
	for _, name := range names[1:] {
		inc.Counter(name).Increment(1)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("quorum predicate never released")
	}
	for s.PredicateWaits() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.PredicateWaits(); n != 0 {
		t.Fatalf("PredicateWaits = %d after the flip, want 0", n)
	}
	if _, recv := waiter.WireStats(); recv != recv0+1 {
		t.Fatalf("waiter received %d frames for the flip, want exactly 1 wake", recv-recv0)
	}
}

func testV2ClientFullBattery(t *testing.T) {
	_, addr := startLoopback(t)
	v2 := dialLoopback(t, addr, remote.WithProtocol(2))
	v2.Counter(FreshName("v2probe")).Increment(1) // force the handshake
	if f := v2.ServerFeatures(); f != 0 {
		t.Fatalf("v2 session negotiated features %#x, want none", f)
	}
	open := func(t *testing.T) counter.Interface {
		return v2.Counter(FreshName("v2batt"))
	}
	t.Run("Conformance", func(t *testing.T) { Run(t, open) })
	t.Run("Predicates", func(t *testing.T) { RunPredicates(t, open) })
	if f := v2.ServerFeatures(); f&wire.FeatureWaitFor != 0 {
		t.Fatal("v2 session grew FeatureWaitFor mid-battery")
	}
}
