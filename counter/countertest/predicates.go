package countertest

import (
	"context"
	"sync"
	"testing"
	"time"

	"monotonic/counter"
	"monotonic/counter/wait"
)

// RunPredicates executes the predicate-wait conformance battery as
// subtests of t: every behavior counter/wait documents — sum, min, and
// k-of-n predicates releasing exactly at their thresholds, shared-Cond
// fan-out, satisfied-beats-cancelled, and cancellation leaving no trace
// on the watched counters — expressed purely through counter.Interface
// and the wait combinators, so the same battery runs against every
// in-process implementation and against remote counters on a loopback
// counterd. open must return a fresh counter with value zero on every
// call.
func RunPredicates(t *testing.T, open func(t *testing.T) counter.Interface) {
	t.Helper()
	t.Run("SumJoin", func(t *testing.T) { testSumJoin(t, open(t), open(t)) })
	t.Run("SumSplitBelowNaiveFrontier", func(t *testing.T) { testSumSplit(t, open(t), open(t)) })
	t.Run("MinBoth", func(t *testing.T) { testMinBoth(t, open(t), open(t)) })
	t.Run("KOfN", func(t *testing.T) {
		cs := make([]counter.Interface, 5)
		for i := range cs {
			cs[i] = open(t)
		}
		testKOfN(t, cs)
	})
	t.Run("ImmediateAndCancelled", func(t *testing.T) { testImmediateAndCancelled(t, open(t), open(t)) })
	t.Run("FanOutSharedCond", func(t *testing.T) { testFanOutSharedCond(t, open(t), open(t)) })
	t.Run("DisarmOnCancel", func(t *testing.T) { testDisarmOnCancel(t, open(t), open(t)) })
	t.Run("SpecRecorded", func(t *testing.T) { testSpecRecorded(t, open(t), open(t)) })
}

// testSpecRecorded pins the serializable descriptor every combinator
// must now carry: whatever the counter implementation, the built Cond
// reports a wait.Spec faithful to the expression — the contract hosts
// (remote clients, clusters) route on.
func testSpecRecorded(t *testing.T, a, b counter.Interface) {
	sum := wait.Sum(a, b).AtLeast(10)
	if s := sum.Spec(); s.Kind != wait.KindSum || s.Target != 10 || len(s.Counters) != 2 {
		t.Fatalf("Sum(a, b).AtLeast(10) spec = %+v", s)
	}
	kofn := wait.KOfN([]counter.Interface{a, b}, 2, 3)
	ks := kofn.Spec()
	if ks.Kind != wait.KindThreshold || ks.K != 2 || len(ks.Levels) != 2 || ks.Levels[0] != 3 || ks.Levels[1] != 3 {
		t.Fatalf("KOfN spec = %+v", ks)
	}
	if kofn.Spec().String() == "" {
		t.Fatal("spec String empty")
	}
}

func predicateWaitNil(t *testing.T, errc <-chan error, what string) {
	t.Helper()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("%s = %v, want nil", what, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s never returned", what)
	}
}

func predicateMustBlock(t *testing.T, errc <-chan error, what string) {
	t.Helper()
	select {
	case err := <-errc:
		t.Fatalf("%s returned early with %v", what, err)
	case <-time.After(20 * time.Millisecond):
	}
}

func testSumJoin(t *testing.T, a, b counter.Interface) {
	cond := wait.Sum(a, b).AtLeast(10)
	errc := make(chan error, 1)
	go func() { errc <- counter.WaitFor(context.Background(), cond) }()
	predicateMustBlock(t, errc, "WaitFor(sum >= 10)")
	a.Increment(4)
	b.Increment(5)
	predicateMustBlock(t, errc, "WaitFor(sum >= 10) at 9")
	a.Increment(1)
	predicateWaitNil(t, errc, "WaitFor(sum >= 10)")
}

// testSumSplit is the frontier regression at the interface surface:
// neither counter ever reaches the target alone, yet the sum flips —
// naive "target minus the other" sentinels would sleep forever.
func testSumSplit(t *testing.T, a, b counter.Interface) {
	cond := wait.Sum(a, b).AtLeast(10)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	predicateMustBlock(t, errc, "Wait(sum >= 10)")
	a.Increment(3)
	b.Increment(7)
	predicateWaitNil(t, errc, "Wait(sum >= 10) after a split advance")
}

func testMinBoth(t *testing.T, a, b counter.Interface) {
	cond := wait.Min(a, b).AtLeast(5)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	a.Increment(100)
	predicateMustBlock(t, errc, "Wait(min >= 5) with one counter at 100")
	b.Increment(5)
	predicateWaitNil(t, errc, "Wait(min >= 5)")
}

func testKOfN(t *testing.T, cs []counter.Interface) {
	const k, threshold = 3, 2
	cond := wait.KOfN(cs, k, threshold)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	cs[0].Increment(threshold)
	cs[1].Increment(threshold - 1) // below threshold: must not count
	cs[3].Increment(threshold)
	predicateMustBlock(t, errc, "Wait(3 of 5) with 2 members at threshold")
	cs[4].Increment(threshold)
	predicateWaitNil(t, errc, "Wait(3 of 5)")
}

func testImmediateAndCancelled(t *testing.T, a, b counter.Interface) {
	a.Increment(6)
	b.Increment(6)
	// Drive the counters' own view first so even a lagging (remote)
	// watermark covers the increments.
	a.Check(6)
	b.Check(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := wait.Sum(a, b).AtLeast(10).Wait(ctx); err != nil {
		t.Fatalf("Wait(cancelled ctx) on a satisfied sum = %v, want nil", err)
	}
	if err := wait.Sum(a, b).AtLeast(100).Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait(cancelled ctx) on an unsatisfied sum = %v, want Canceled", err)
	}
	if !wait.Min(a, b).AtLeast(6).WaitTimeout(0) {
		t.Fatal("zero-timeout predicate WaitTimeout false on a satisfied min")
	}
	if wait.Min(a, b).AtLeast(7).WaitTimeout(-time.Second) {
		t.Fatal("negative-timeout predicate WaitTimeout true on an unsatisfied min")
	}
}

// testFanOutSharedCond releases many waiters from one condition and
// checks the mechanism bill scales with counters, not waiters.
func testFanOutSharedCond(t *testing.T, a, b counter.Interface) {
	const waiters = 50
	cond := wait.Sum(a, b).AtLeast(100)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cond.Wait(context.Background()); err != nil {
				t.Errorf("Wait = %v", err)
			}
		}()
	}
	a.Increment(99)
	time.Sleep(20 * time.Millisecond)
	b.Increment(1)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fan-out predicate waiters still blocked")
	}
	s := cond.Stats()
	if !s.Satisfied || s.Armed != 0 {
		t.Fatalf("Stats = %+v after release", s)
	}
	if s.Arms > 40 {
		t.Fatalf("Arms = %d for 2 counters — scaling with the %d waiters?", s.Arms, waiters)
	}
}

// testDisarmOnCancel pins the no-trace property through the public
// surface: after every predicate waiter cancels, the watched counters
// carry no sentinel, so Reset succeeds (retried, since goroutine-backed
// sentinels deregister asynchronously).
func testDisarmOnCancel(t *testing.T, a, b counter.Interface) {
	cond := wait.Sum(a, b).AtLeast(50)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 2)
	go func() { errc <- cond.Wait(ctx) }()
	go func() { errc <- cond.Wait(ctx) }()
	time.Sleep(20 * time.Millisecond) // let them arm and park
	cancel()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != context.Canceled {
			t.Fatalf("Wait = %v, want Canceled", err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		if ok := func() (ok bool) {
			defer func() { ok = recover() == nil }()
			a.Reset()
			b.Reset()
			return
		}(); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("Reset still panics after all predicate waiters cancelled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	a.Increment(1)
	a.Check(1)
}
