// Package countertest is the black-box conformance suite for
// counter.Interface: every behavior the interface documents — monotone
// waiting, satisfied-beats-cancelled, cancellation leaving no trace (no
// goroutine, no registration), Reset's misuse panic — expressed purely
// through the interface, so the same battery runs against every
// in-process implementation (via counter.Open) and against a remote
// counter talking to a counterd server. An implementation that passes
// Run is interchangeable with the others behind the facade.
package countertest

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"monotonic/counter"
)

// Run executes the full conformance battery as subtests of t. open must
// return a fresh counter with value zero on every call; each subtest
// opens its own so failures do not cascade.
func Run(t *testing.T, open func(t *testing.T) counter.Interface) {
	t.Helper()
	t.Run("DataflowOrdering", func(t *testing.T) { testDataflowOrdering(t, open(t)) })
	t.Run("ImmediateCheck", func(t *testing.T) { testImmediateCheck(t, open(t)) })
	t.Run("SatisfiedBeatsCancelled", func(t *testing.T) { testSatisfiedBeatsCancelled(t, open(t)) })
	t.Run("CancelDelivery", func(t *testing.T) { testCancelDelivery(t, open(t)) })
	t.Run("WaitTimeout", func(t *testing.T) { testWaitTimeout(t, open(t)) })
	t.Run("WaitTimeoutZeroNegative", func(t *testing.T) { testWaitTimeoutZeroNegative(t, open(t)) })
	t.Run("ResetPanicsUnderWaitTimeoutWaiter", func(t *testing.T) { testResetPanicsUnderWaitTimeout(t, open(t)) })
	t.Run("FanOutOneIncrementManyLevels", func(t *testing.T) { testFanOut(t, open(t)) })
	t.Run("Reset", func(t *testing.T) { testReset(t, open(t)) })
	t.Run("ResetPanicsUnderWaiters", func(t *testing.T) { testResetPanics(t, open(t)) })
	t.Run("CancelStorm", func(t *testing.T) { testCancelStorm(t, open(t)) })
	t.Run("NoGoroutinePerWait", func(t *testing.T) { testNoGoroutinePerWait(t, open(t)) })
}

// testDataflowOrdering is the paper's core use: a writer publishing a
// sequence through the counter to concurrent readers, each of which must
// observe every prefix it checked for.
func testDataflowOrdering(t *testing.T, c counter.Interface) {
	const (
		items   = 200
		readers = 8
	)
	data := make([]uint64, items)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < items; i++ {
				c.Check(uint64(i) + 1)
				if got := data[i]; got != uint64(i)*3 {
					t.Errorf("reader passed Check(%d) but data[%d] = %d, want %d", i+1, i, got, i*3)
					return
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		data[i] = uint64(i) * 3
		c.Increment(1)
	}
	wg.Wait()
}

func testImmediateCheck(t *testing.T, c counter.Interface) {
	c.Check(0) // level zero is always satisfied
	c.Increment(7)
	c.Check(7)
	c.Check(3)
	if err := c.CheckContext(context.Background(), 7); err != nil {
		t.Fatalf("CheckContext(satisfied) = %v, want nil", err)
	}
}

// testSatisfiedBeatsCancelled pins the first cancellation rule: an
// already-satisfied level wins over an already-dead context, at both the
// CheckContext and WaitTimeout surfaces.
func testSatisfiedBeatsCancelled(t *testing.T, c counter.Interface) {
	c.Increment(7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, level := range []uint64{0, 1, 7} {
		if err := c.CheckContext(ctx, level); err != nil {
			t.Errorf("CheckContext(cancelled, level=%d) = %v with value 7, want nil", level, err)
		}
		if !c.WaitTimeout(level, 0) {
			t.Errorf("WaitTimeout(level=%d, 0) = false with value 7", level)
		}
	}
	if err := c.CheckContext(ctx, 8); err != context.Canceled {
		t.Errorf("CheckContext(cancelled, level=8) = %v with value 7, want Canceled", err)
	}
	if c.WaitTimeout(8, 0) {
		t.Error("WaitTimeout(level=8, 0) = true with value 7")
	}
}

// testCancelDelivery parks a real waiter, cancels it, and requires the
// context error back; the counter must stay fully usable afterwards and
// a later increment must not try to wake the departed waiter.
func testCancelDelivery(t *testing.T, c counter.Interface) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.CheckContext(ctx, 50) }()
	time.Sleep(20 * time.Millisecond) // let it park
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("CheckContext = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled CheckContext never returned")
	}
	c.Increment(60)
	c.Check(50)
}

func testWaitTimeout(t *testing.T, c counter.Interface) {
	if c.WaitTimeout(1, 10*time.Millisecond) {
		t.Fatal("WaitTimeout(1) = true on a zero counter")
	}
	done := make(chan bool, 1)
	go func() { done <- c.WaitTimeout(5, 10*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	c.Increment(5)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitTimeout(5, 10s) = false after Increment(5)")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitTimeout never returned after satisfaction")
	}
}

// testWaitTimeoutZeroNegative pins the degenerate durations: zero and
// negative timeouts are instant polls — true exactly when the level is
// already satisfied — and must return promptly either way, never block.
func testWaitTimeoutZeroNegative(t *testing.T, c counter.Interface) {
	for _, d := range []time.Duration{0, -time.Nanosecond, -time.Hour} {
		done := make(chan bool, 1)
		go func() { done <- c.WaitTimeout(1, d) }()
		select {
		case ok := <-done:
			if ok {
				t.Fatalf("WaitTimeout(1, %v) = true on a zero counter", d)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("WaitTimeout(1, %v) blocked on a zero counter", d)
		}
	}
	c.Increment(3)
	c.Check(3) // ensure the satisfaction is visible to this handle
	for _, d := range []time.Duration{0, -time.Nanosecond, -time.Hour} {
		for _, level := range []uint64{0, 1, 3} {
			if !c.WaitTimeout(level, d) {
				t.Fatalf("WaitTimeout(%d, %v) = false with value 3: satisfied must beat an expired deadline", level, d)
			}
		}
		if c.WaitTimeout(4, d) {
			t.Fatalf("WaitTimeout(4, %v) = true with value 3", d)
		}
	}
}

// testResetPanicsUnderWaitTimeout is testResetPanics with the waiter
// suspended via WaitTimeout rather than CheckContext: the misuse check
// must see timed waiters too.
func testResetPanicsUnderWaitTimeout(t *testing.T, c counter.Interface) {
	release := make(chan bool, 1)
	go func() { release <- c.WaitTimeout(77, 10*time.Second) }()
	time.Sleep(50 * time.Millisecond) // let it suspend
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset with a WaitTimeout waiter suspended did not panic")
			}
		}()
		c.Reset()
	}()
	c.Increment(77) // release the waiter the legitimate way
	select {
	case ok := <-release:
		if !ok {
			t.Fatal("WaitTimeout(77, 10s) = false after Increment(77)")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitTimeout waiter never released")
	}
	// With the waiter gone, Reset must eventually succeed (remote
	// counters settle the deregistration asynchronously).
	deadline := time.After(5 * time.Second)
	for {
		if ok := func() (ok bool) {
			defer func() { ok = recover() == nil }()
			c.Reset()
			return
		}(); ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("Reset still panics after the WaitTimeout waiter released")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// testFanOut satisfies many distinct levels with one increment — the
// wake path must deliver every entitled waiter, whatever batching it
// does internally.
func testFanOut(t *testing.T, c counter.Interface) {
	const waiters = 100
	var wg sync.WaitGroup
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(lv uint64) {
			defer wg.Done()
			c.Check(lv)
		}(uint64(i))
	}
	time.Sleep(50 * time.Millisecond) // let most of them park
	c.Increment(waiters)
	donec := make(chan struct{})
	go func() { wg.Wait(); close(donec) }()
	select {
	case <-donec:
	case <-time.After(10 * time.Second):
		t.Fatal("fan-out waiters still blocked after a satisfying increment")
	}
}

func testReset(t *testing.T, c counter.Interface) {
	c.Increment(9)
	c.Check(9)
	c.Reset()
	if c.WaitTimeout(1, 10*time.Millisecond) {
		t.Fatal("WaitTimeout(1) = true right after Reset: value not zeroed")
	}
	c.Increment(2)
	c.Check(2)
}

// testResetPanics pins the misuse contract: Reset with a waiter
// suspended must panic rather than strand the waiter below a rolled-back
// value. The waiter is then cancelled and Reset retried until the
// deregistration settles (remote counters resolve it asynchronously).
func testResetPanics(t *testing.T, c counter.Interface) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.CheckContext(ctx, 77) }()
	time.Sleep(50 * time.Millisecond) // let it suspend
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset with a suspended waiter did not panic")
			}
		}()
		c.Reset()
	}()
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("CheckContext = %v, want Canceled", err)
	}
	// After the sole waiter cancels, Reset must eventually succeed.
	deadline := time.After(5 * time.Second)
	for {
		if ok := func() (ok bool) {
			defer func() { ok = recover() == nil }()
			c.Reset()
			return
		}(); ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("Reset still panics after the only waiter cancelled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// testCancelStorm interleaves timed-out waits with real increments: no
// entitled waiter may be lost in the churn.
func testCancelStorm(t *testing.T, c counter.Interface) {
	const (
		increments = 200
		cancellers = 8
	)
	var wg sync.WaitGroup
	for i := 0; i < cancellers; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				lv := uint64((seed*53+j*17)%(2*increments)) + 1
				c.WaitTimeout(lv, time.Duration(j%5)*100*time.Microsecond)
			}
		}(i)
	}
	survivor := make(chan error, 1)
	go func() { survivor <- c.CheckContext(context.Background(), increments) }()
	for i := 0; i < increments; i++ {
		c.Increment(1)
	}
	wg.Wait()
	select {
	case err := <-survivor:
		if err != nil {
			t.Fatalf("survivor CheckContext = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("survivor still blocked after all increments")
	}
}

// testNoGoroutinePerWait is the engine's structural guarantee at the
// interface surface: a storm of cancelled and timed-out waits must
// settle the process back to its pre-storm goroutine count — no watcher
// goroutine per call, nothing left behind by cancellation. (Remote
// counters additionally keep the *server* flat; the remote package's
// fan-out test and experiment E22 assert that side.)
func testNoGoroutinePerWait(t *testing.T, c counter.Interface) {
	c.Increment(1) // settle any lazily-started machinery into the baseline
	c.Check(1)
	baseline := runtime.NumGoroutine()
	const waiters = 64
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				_ = c.CheckContext(ctx, uint64(1_000_000+i))
			case 1:
				c.WaitTimeout(uint64(1_000_000+i), 0)
			default:
				c.WaitTimeout(uint64(1_000_000+i), time.Microsecond)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	wg.Wait()
	c.Increment(1) // the counter must still work after the storm
	c.Check(2)
	deadline := time.After(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

var freshMu sync.Mutex
var freshN int

// FreshName returns a process-unique counter name with the given prefix,
// for suites whose counters are named (remote counters share a server;
// every open must get a counter nothing else has touched).
func FreshName(prefix string) string {
	freshMu.Lock()
	defer freshMu.Unlock()
	freshN++
	return fmt.Sprintf("%s-%d", prefix, freshN)
}
