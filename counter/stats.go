package counter

import (
	"expvar"
	"sync"
	"sync/atomic"

	"monotonic/internal/core"
)

// Stats are a counter's cumulative cost-model measurements — the paper's
// section 7 claims ("storage and time proportional to distinct waited-on
// levels, not waiters") made observable in production. Counters only
// ever grow; Reset does not clear them, so they can be exported as
// monotone metrics.
//
// In any snapshot, Broadcasts <= SatisfiedLevels and ChannelCloses <=
// SatisfiedLevels: the wake tallies lag the satisfied-level count during
// a wake storm and catch up once the storm's wake-ups finish. See
// docs/PATTERNS.md ("Observing a counter in production") for how to read
// each field against the cost model.
//
// A remote counter (counter/remote) reports the server-side engine's
// values for the shared fields — they describe the hosted counter, which
// every client session contributes to — plus the Remote* fields, which
// are client-local wall-clock measurements of the wire itself.
type Stats struct {
	// PeakLevels is the maximum number of distinct not-yet-satisfied
	// levels ever waited on at once — the paper's storage bound.
	PeakLevels int
	// SatisfiedLevels counts levels satisfied by increments — the
	// paper's "one wake-up per satisfied level" cost unit.
	SatisfiedLevels uint64
	// Broadcasts counts condition-variable broadcasts issued by the wake
	// path (levels whose waiters all parked cancellably need none).
	Broadcasts uint64
	// ChannelCloses counts ready-channel closes issued by the wake path —
	// the cancellable-wait counterpart of Broadcasts.
	ChannelCloses uint64
	// Suspends counts Check/CheckContext calls that actually blocked.
	Suspends uint64
	// ImmediateChecks counts Check/CheckContext calls satisfied without
	// blocking.
	ImmediateChecks uint64
	// Increments counts value-changing Increment calls (Increment(0) is
	// a no-op and is not counted).
	Increments uint64
	// FastPathIncrements counts increments absorbed by Sharded's
	// lock-free striped fast path; always included in Increments. Zero
	// for Counter.
	FastPathIncrements uint64
	// Flushes counts Sharded's stripe-flush passes. Zero for Counter.
	Flushes uint64
	// RemoteRoundTrips counts completed wire exchanges a remote counter
	// performed on the caller's behalf: resolved waits (wakes and
	// cancel acknowledgements), increment acknowledgements, and
	// stats/reset replies. Zero for in-process counters.
	RemoteRoundTrips uint64
	// RemoteWaitNanos accumulates wall-clock nanoseconds remote
	// Check/CheckContext calls spent blocked on the wire — the
	// client-side latency counterpart of Suspends. Zero for in-process
	// counters.
	RemoteWaitNanos uint64
}

func statsFromCore(s core.Stats) Stats {
	return Stats{
		PeakLevels:         s.PeakLevels,
		SatisfiedLevels:    s.SatisfiedLevels,
		Broadcasts:         s.Broadcasts,
		ChannelCloses:      s.ChannelCloses,
		Suspends:           s.Suspends,
		ImmediateChecks:    s.ImmediateChecks,
		Increments:         s.Increments,
		FastPathIncrements: s.FastPathIncrements,
		Flushes:            s.Flushes,
	}
}

// StatsProvider is satisfied by every counter in this module (and
// anything else that reports counter stats); Publish exports any
// provider.
type StatsProvider interface {
	Stats() Stats
}

// Event is one probe observation; see SetProbe on any counter type.
type Event = core.Event

// EventKind discriminates probe events.
type EventKind = core.EventKind

// The probe event kinds.
const (
	// EventIncrement fires once per value-changing Increment, after the
	// counter's locks are released; Event.Level carries the amount.
	EventIncrement = core.EventIncrement
	// EventSuspend fires when a waiter is about to park; Event.Level is
	// the level waited on.
	EventSuspend = core.EventSuspend
	// EventWake fires once per satisfied level as its waiters are woken;
	// Event.Level is the level.
	EventWake = core.EventWake
)

// published tracks the expvar names this package owns, each holding a
// swappable provider, so Publish can replace a counter under a name it
// registered before instead of inheriting expvar.Publish's panic.
var published struct {
	sync.Mutex
	m map[string]*atomic.Pointer[StatsProvider]
}

// Publish registers p's stats with package expvar under the given name,
// so they appear (live, as a JSON object) on the standard /debug/vars
// endpoint. Each read of the variable takes a fresh snapshot.
//
// Calling Publish again with a name it has already registered replaces
// the provider atomically — the expvar variable starts reporting the
// new counter — so re-wiring a counter at runtime (or re-running setup
// in tests) is safe. Publish panics only if the name is already taken
// by a different package's expvar.Publish, which this package cannot
// replace; use PublishOnce to make any duplicate a hard error instead.
func Publish(name string, p StatsProvider) {
	published.Lock()
	defer published.Unlock()
	if h, ok := published.m[name]; ok {
		h.Store(&p)
		return
	}
	h := new(atomic.Pointer[StatsProvider])
	h.Store(&p)
	if published.m == nil {
		published.m = make(map[string]*atomic.Pointer[StatsProvider])
	}
	published.m[name] = h
	expvar.Publish(name, expvar.Func(func() any { return (*h.Load()).Stats() }))
}

// PublishOnce is Publish with the strict expvar contract: it panics if
// name was ever published before (by this package or any other), for
// callers that want accidental reuse of a metric name to fail loudly at
// setup.
func PublishOnce(name string, p StatsProvider) {
	published.Lock()
	_, dup := published.m[name]
	published.Unlock()
	if dup {
		panic("counter: PublishOnce of duplicate name " + name)
	}
	Publish(name, p)
}
