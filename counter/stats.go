package counter

import (
	"expvar"

	"monotonic/internal/core"
)

// Stats are a counter's cumulative cost-model measurements — the paper's
// section 7 claims ("storage and time proportional to distinct waited-on
// levels, not waiters") made observable in production. Counters only
// ever grow; Reset does not clear them, so they can be exported as
// monotone metrics.
//
// In any snapshot, Broadcasts <= SatisfiedLevels and ChannelCloses <=
// SatisfiedLevels: the wake tallies lag the satisfied-level count during
// a wake storm and catch up once the storm's wake-ups finish. See
// docs/PATTERNS.md ("Observing a counter in production") for how to read
// each field against the cost model.
type Stats struct {
	// PeakLevels is the maximum number of distinct not-yet-satisfied
	// levels ever waited on at once — the paper's storage bound.
	PeakLevels int
	// SatisfiedLevels counts levels satisfied by increments — the
	// paper's "one wake-up per satisfied level" cost unit.
	SatisfiedLevels uint64
	// Broadcasts counts condition-variable broadcasts issued by the wake
	// path (levels whose waiters all parked cancellably need none).
	Broadcasts uint64
	// ChannelCloses counts ready-channel closes issued by the wake path —
	// the cancellable-wait counterpart of Broadcasts.
	ChannelCloses uint64
	// Suspends counts Check/CheckContext calls that actually blocked.
	Suspends uint64
	// ImmediateChecks counts Check/CheckContext calls satisfied without
	// blocking.
	ImmediateChecks uint64
	// Increments counts value-changing Increment calls (Increment(0) is
	// a no-op and is not counted).
	Increments uint64
	// FastPathIncrements counts increments absorbed by Sharded's
	// lock-free striped fast path; always included in Increments. Zero
	// for Counter.
	FastPathIncrements uint64
	// Flushes counts Sharded's stripe-flush passes. Zero for Counter.
	Flushes uint64
}

func statsFromCore(s core.Stats) Stats {
	return Stats{
		PeakLevels:         s.PeakLevels,
		SatisfiedLevels:    s.SatisfiedLevels,
		Broadcasts:         s.Broadcasts,
		ChannelCloses:      s.ChannelCloses,
		Suspends:           s.Suspends,
		ImmediateChecks:    s.ImmediateChecks,
		Increments:         s.Increments,
		FastPathIncrements: s.FastPathIncrements,
		Flushes:            s.Flushes,
	}
}

// StatsProvider is satisfied by both counter types (and anything else
// that reports counter stats); Publish exports any provider.
type StatsProvider interface {
	Stats() Stats
}

// Stats returns the counter's cumulative cost statistics.
func (c *Counter) Stats() Stats { return statsFromCore(c.c.Stats()) }

// Stats returns the counter's cumulative cost statistics.
func (c *Sharded) Stats() Stats { return statsFromCore(c.c.Stats()) }

// Event is one probe observation; see SetProbe.
type Event = core.Event

// EventKind discriminates probe events.
type EventKind = core.EventKind

// The probe event kinds.
const (
	// EventIncrement fires once per value-changing Increment, after the
	// counter's locks are released; Event.Level carries the amount.
	EventIncrement = core.EventIncrement
	// EventSuspend fires when a waiter is about to park; Event.Level is
	// the level waited on.
	EventSuspend = core.EventSuspend
	// EventWake fires once per satisfied level as its waiters are woken;
	// Event.Level is the level.
	EventWake = core.EventWake
)

// SetProbe installs f as the counter's event hook: it observes
// increment/suspend/wake events until replaced, and nil disables it.
// When disabled the hook costs one atomic load per operation; f is never
// invoked while the counter's locks are held, so it may itself call
// Stats. Probes are for tracing and metrics — synchronization decisions
// must never be based on them.
func (c *Counter) SetProbe(f func(Event)) { c.c.SetProbe(f) }

// SetProbe installs f as the counter's event hook; see Counter.SetProbe.
func (c *Sharded) SetProbe(f func(Event)) { c.c.SetProbe(f) }

// Publish registers p's stats with package expvar under the given name,
// so they appear (live, as a JSON object) on the standard /debug/vars
// endpoint. Each read of the variable takes a fresh snapshot. Like
// expvar.Publish, it panics if name is already registered; call it once
// per counter, at setup.
func Publish(name string, p StatsProvider) {
	expvar.Publish(name, expvar.Func(func() any { return p.Stats() }))
}
