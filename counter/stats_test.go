package counter_test

import (
	"encoding/json"
	"expvar"
	"fmt"
	"sync"
	"testing"
	"time"

	"monotonic/counter"
)

func waitForSuspends(t *testing.T, p counter.StatsProvider, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().Suspends < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d suspends; stats %+v", want, p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCounterStats(t *testing.T) {
	var c counter.Counter
	c.Increment(5)
	c.Check(3)
	done := make(chan struct{})
	go func() { c.Check(9); close(done) }()
	waitForSuspends(t, &c, 1)
	c.Increment(4)
	<-done

	s := c.Stats()
	if s.Increments != 2 || s.ImmediateChecks != 1 || s.Suspends != 1 {
		t.Fatalf("stats = %+v, want Increments=2 ImmediateChecks=1 Suspends=1", s)
	}
	if s.SatisfiedLevels != 1 || s.PeakLevels != 1 {
		t.Fatalf("stats = %+v, want SatisfiedLevels=1 PeakLevels=1", s)
	}
	if s.Broadcasts > s.SatisfiedLevels || s.ChannelCloses > s.SatisfiedLevels {
		t.Fatalf("wake tallies exceed satisfied levels: %+v", s)
	}

	c.Reset()
	if got := c.Stats(); got != s {
		t.Fatalf("Reset changed stats: before %+v, after %+v", s, got)
	}
}

func TestShardedStats(t *testing.T) {
	var c counter.Sharded
	for i := 0; i < 10; i++ {
		c.Increment(1)
	}
	s := c.Stats()
	if s.Increments != 10 || s.FastPathIncrements != 10 {
		t.Fatalf("stats = %+v, want Increments=10 FastPathIncrements=10", s)
	}
	done := make(chan struct{})
	go func() { c.Check(11); close(done) }()
	waitForSuspends(t, &c, 1)
	c.Increment(1)
	<-done
	s = c.Stats()
	if s.Increments != 11 || s.Flushes == 0 || s.Suspends != 1 {
		t.Fatalf("stats = %+v, want Increments=11 Flushes>0 Suspends=1", s)
	}
}

func TestSetProbe(t *testing.T) {
	var c counter.Counter
	var mu sync.Mutex
	var got []counter.Event
	c.SetProbe(func(e counter.Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	c.Increment(2)
	c.SetProbe(nil)
	c.Increment(3)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != (counter.Event{Kind: counter.EventIncrement, Level: 2}) {
		t.Fatalf("probe events = %+v, want one EventIncrement with level 2", got)
	}
}

func TestPublishExpvar(t *testing.T) {
	var c counter.Counter
	c.Increment(7)
	counter.Publish("test_counter_stats", &c)
	v := expvar.Get("test_counter_stats")
	if v == nil {
		t.Fatal("Publish did not register the variable")
	}
	var s counter.Stats
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("exported stats are not JSON: %v\n%s", err, v.String())
	}
	if s.Increments != 1 {
		t.Fatalf("exported Increments = %d, want 1", s.Increments)
	}
	// The export is live: a later read reflects later operations.
	c.Increment(1)
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Increments != 2 {
		t.Fatalf("exported Increments after second read = %d, want 2", s.Increments)
	}
}

// TestPublishReplace pins the redesigned Publish contract: publishing a
// second provider under a name this package registered before swaps the
// provider instead of inheriting expvar.Publish's duplicate panic, and
// the expvar variable immediately reports the new counter.
func TestPublishReplace(t *testing.T) {
	a, b := counter.New(), counter.New()
	a.Increment(1)
	b.Increment(5)
	counter.Publish("test_publish_replace", a)
	counter.Publish("test_publish_replace", b) // must not panic

	var s counter.Stats
	if err := json.Unmarshal([]byte(expvar.Get("test_publish_replace").String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Increments != 1 {
		t.Fatalf("exported Increments = %d after replace, want 1 (b's single increment)", s.Increments)
	}
	// The replacement is live, not a snapshot.
	b.Increment(2)
	if err := json.Unmarshal([]byte(expvar.Get("test_publish_replace").String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Increments != 2 {
		t.Fatalf("exported Increments = %d after b incremented again, want 2", s.Increments)
	}
}

// TestPublishOnce pins the strict variant: first use registers, any
// reuse of the name panics.
func TestPublishOnce(t *testing.T) {
	// The registry is process-global; a unique name keeps the test
	// correct under -count=N.
	name := fmt.Sprintf("test_publish_once_%d", time.Now().UnixNano())
	c := counter.New()
	counter.PublishOnce(name, c)
	defer func() {
		if recover() == nil {
			t.Fatal("PublishOnce of a duplicate name did not panic")
		}
	}()
	counter.PublishOnce(name, c)
}
