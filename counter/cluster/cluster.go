// Package cluster scales the counterd service horizontally: a static
// member list of counterd nodes, consistent-hash placement of counter
// names over the live members, and client-side failover that rides over
// a node death without losing or double-applying an increment.
//
// All placement and routing live in the client — a node never proxies
// or even knows about another node's counters, in the spirit of keeping
// work off the synchronizing hot path. Every client derives the same
// placement from the same member list (the ring is a pure function of
// the addresses), so clients agree on where a name lives without any
// coordination service.
//
// # Why monotonicity makes failover cheap
//
// The paper's core invariant — a counter only grows — is exactly what
// makes distributed failover inexpensive:
//
//   - A re-sent Check cannot observe a smaller value, so a blocked wait
//     can simply be re-issued against whatever node now hosts the name.
//   - Increments commute, so a counter's value is nothing more than the
//     sum of each writer's total contribution — and each cluster client
//     knows its own total per name (its *ledger*).
//
// When a node dies, its hosted values die with it. The cluster client
// re-routes each of the dead node's names to the next live node on the
// ring and replays its full ledger for those names there. Every writer
// of a name does the same (they all lost the same node), so the
// reconstructed value is again the sum of all contributions: exactly
// the increments that were issued, each applied once. In-flight
// increments are not double-counted: an increment enters the ledger and
// is routed under one lock, so the failover snapshot either already
// includes it (and the send to the dying node is dropped) or the ring
// change happened first (and it routes to the successor directly).
//
// A node that restarts *quickly* — the TCP reconnect succeeds before
// the client's failure budget is spent — is detected through the boot
// epoch in the handshake (wire.OpWelcome) and treated exactly like a
// death: the fresh instance's counters are zero and the per-session
// resume restores only the unacknowledged tail, so the cluster retires
// the member and replays its full ledger to the successor. Retiring is
// deliberately chosen over topping the new instance back up: a top-up
// snapshot cannot be taken atomically with the session resume (they
// live under different locks), so an increment racing the restart could
// land both in the new session and in the top-up. Replay-to-successor
// has no such window — the ledger snapshot and the re-route happen
// under one lock, and nothing about the retired instance's state
// matters afterwards.
//
// # Scope
//
// Failover is client-local and assumes fail-stop nodes: a node declared
// dead must not serve other writers afterwards, or clients that kept it
// would disagree with clients that failed over. The member list is
// static for the life of the Cluster; a dead member is never re-added.
// See docs/PATTERNS.md, "Scaling to a cluster".
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"monotonic/counter/remote"
	"monotonic/internal/wire"
)

// ErrNoNodes is reported (or panicked, by operations that cannot return
// an error) once every member of the cluster has been declared dead.
var ErrNoNodes = errors.New("cluster: no live nodes")

// vnodesPerNode is the number of ring points each member contributes.
// More points smooth the per-node share of names and shrink the slice
// of names that moves on a failover (only the dead node's arcs move).
const vnodesPerNode = 64

// Option configures DialCluster.
type Option func(*config)

type config struct {
	poolSize  int
	failAfter int
	base, cap time.Duration
	dialer    func(addr string) (net.Conn, error)
}

// WithPoolSize sets how many remote.Client connections the cluster
// holds per node (default 1). Counter names hash over the pool, so a
// large population of counters spreads its frames — and its sessions'
// sequence spaces — over the pool instead of serializing on one
// connection's writer.
func WithPoolSize(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithFailAfter sets the failure budget: a node is declared dead after
// this many consecutive failed reconnect attempts by any of its pooled
// clients (default 10). With the default backoff that is on the order
// of a few seconds of unreachability.
func WithFailAfter(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.failAfter = n
		}
	}
}

// WithBackoff forwards a reconnect backoff window (base doubling to
// cap, full jitter) to every pooled client; see remote.WithBackoff.
func WithBackoff(base, cap time.Duration) Option {
	return func(c *config) { c.base, c.cap = base, cap }
}

// WithDialer forwards a transport dialer to every pooled client; see
// remote.WithDialer. The dialer receives the node's address.
func WithDialer(d func(addr string) (net.Conn, error)) Option {
	return func(c *config) { c.dialer = d }
}

// Cluster is a client for a set of counterd nodes. It is safe for
// concurrent use; all counters obtained from it share its pooled
// connections. Obtain one with DialCluster and release it with Close.
type Cluster struct {
	cfg config

	mu       sync.Mutex
	nodes    []*node
	ring     []point // points of live nodes, sorted by hash
	counters map[string]*Counter
	closed   bool
}

// node is one member: its address and its pooled clients. down is
// guarded by Cluster.mu and latches — a dead member never comes back.
type node struct {
	addr    string
	clients []*remote.Client
	down    bool
}

// counterFor resolves the pooled remote counter hosting name on this
// node; the pool index is derived from the name's hash so every call
// (and every replay) for a name uses the same session.
func (n *node) counterFor(name string, hash uint64) *remote.Counter {
	return n.clients[hash%uint64(len(n.clients))].Counter(name)
}

// point is one ring position owned by a node.
type point struct {
	hash uint64
	n    *node
}

// DialCluster connects to every member of the static address list and
// returns a cluster client. Every address must be dialable at start —
// a cluster that begins degraded would silently mis-place names.
func DialCluster(addrs []string, opts ...Option) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: empty member list")
	}
	cfg := config{poolSize: 1, failAfter: 10, base: defaultsBase, cap: defaultsCap}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Cluster{cfg: cfg, counters: make(map[string]*Counter)}
	for _, addr := range addrs {
		n := &node{addr: addr}
		c.nodes = append(c.nodes, n) // registered before dialing so closeAll sees a partial pool
		for i := 0; i < cfg.poolSize; i++ {
			ropts := []remote.Option{
				remote.WithBackoff(cfg.base, cfg.cap),
				remote.WithRetryNotify(c.retryWatcher(n)),
				remote.WithRestartNotify(c.restartWatcher(n)),
			}
			if cfg.dialer != nil {
				ropts = append(ropts, remote.WithDialer(cfg.dialer))
			}
			cl, err := remote.Dial(addr, ropts...)
			if err != nil {
				c.closeAll()
				return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
			}
			n.clients = append(n.clients, cl)
		}
	}
	c.rebuildRingLocked() // no lock needed yet: c unpublished
	return c, nil
}

// Mirror remote's defaults without exporting them.
const (
	defaultsBase = 5 * time.Millisecond
	defaultsCap  = 500 * time.Millisecond
)

// closeAll tears down every client dialed so far (partial-dial cleanup).
func (c *Cluster) closeAll() {
	for _, n := range c.nodes {
		for _, cl := range n.clients {
			if cl != nil {
				cl.Close()
			}
		}
	}
}

// Close tears the cluster down: every pooled client closes, and every
// outstanding wait resolves with remote.ErrClosed. The ledger is
// abandoned with the cluster.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var clients []*remote.Client
	for _, n := range c.nodes {
		clients = append(clients, n.clients...)
	}
	c.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
	return nil
}

// Counter returns the named cluster counter, hosted by whichever live
// node the name hashes to. Names must be 1..wire.MaxName bytes (the
// same contract as remote.Client.Counter).
func (c *Cluster) Counter(name string) *Counter {
	if name == "" || len(name) > wire.MaxName {
		panic(fmt.Sprintf("cluster: bad counter name %q", name))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr, ok := c.counters[name]
	if !ok {
		ctr = &Counter{cl: c, name: name, hash: fnv64a(name)}
		c.counters[name] = ctr
	}
	return ctr
}

// NodeFor reports the address of the live node currently hosting name;
// ok is false once no members are live. Placement is a pure function of
// the member list and the set of dead nodes, so every cluster client
// with the same view reports the same address.
func (c *Cluster) NodeFor(name string) (addr string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.routeLocked(fnv64a(name))
	if n == nil {
		return "", false
	}
	return n.addr, true
}

// Live reports the addresses of the members not declared dead.
func (c *Cluster) Live() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, n := range c.nodes {
		if !n.down {
			out = append(out, n.addr)
		}
	}
	return out
}

// retryWatcher is the per-node failure budget: any pooled client of n
// exceeding cfg.failAfter consecutive failed reconnects declares the
// node dead. It runs on the client's reader goroutine, so failNode must
// never wait on that client (it closes the pool asynchronously).
func (c *Cluster) retryWatcher(n *node) func(failures int, err error) {
	return func(failures int, err error) {
		if failures >= c.cfg.failAfter {
			c.failNode(n)
		}
	}
}

// restartWatcher handles the quick-restart case: the node came back as
// a fresh instance before the failure budget was spent, detected by the
// boot epoch changing across a reconnect. The old instance's hosted
// values are gone, so the member is retired like any other death and
// the ledger replays to the successor (see the package comment for why
// retiring beats topping the new instance up).
func (c *Cluster) restartWatcher(n *node) func(oldE, newE uint64, unacked map[string]uint64) {
	return func(_, _ uint64, _ map[string]uint64) {
		c.failNode(n)
	}
}

// failNode declares n dead: its ring points are removed (re-homing its
// names on the next live node), this client's ledger for every moved
// name is replayed through the successor, and the dead pool is closed —
// resolving its parked waits with remote.ErrClosed, which sends cluster
// waiters back through routing. Exactly-once holds because the dead
// node's applied state is gone with it and the ledger is the client's
// complete contribution: replaying it recreates exactly what was lost
// (the session seq-dedup covers any reconnect during the replay
// itself). Callers may be a dead client's own reader goroutine, so the
// pool is closed asynchronously.
func (c *Cluster) failNode(n *node) {
	type replay struct {
		rc  *remote.Counter
		amt uint64
	}
	var replays []replay
	c.mu.Lock()
	if c.closed || n.down {
		c.mu.Unlock()
		return
	}
	var moved []*Counter
	for _, ctr := range c.counters {
		if ctr.contrib > 0 && c.routeLocked(ctr.hash) == n {
			moved = append(moved, ctr)
		}
	}
	n.down = true
	c.rebuildRingLocked()
	for _, ctr := range moved {
		succ := c.routeLocked(ctr.hash)
		if succ == nil {
			break // last node died; nothing to replay into
		}
		replays = append(replays, replay{succ.counterFor(ctr.name, ctr.hash), ctr.contrib})
	}
	clients := n.clients
	c.mu.Unlock()
	for _, r := range replays {
		// ErrClosed: the successor died concurrently; its own failover
		// replays the full ledger to the next live node.
		_ = r.rc.TryIncrement(r.amt)
	}
	for _, cl := range clients {
		go cl.Close()
	}
}

// rebuildRingLocked recomputes the ring from the live members. Callers
// hold c.mu (or own c exclusively).
func (c *Cluster) rebuildRingLocked() {
	ring := c.ring[:0]
	for _, n := range c.nodes {
		if n.down {
			continue
		}
		for i := 0; i < vnodesPerNode; i++ {
			ring = append(ring, point{fnv64a(fmt.Sprintf("%s#%d", n.addr, i)), n})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].n.addr < ring[j].n.addr
	})
	c.ring = ring
}

// routeLocked resolves a name hash to its live home: the first ring
// point at or after the hash, wrapping at the top. Callers hold c.mu.
func (c *Cluster) routeLocked(hash uint64) *node {
	if len(c.ring) == 0 {
		return nil
	}
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= hash })
	if i == len(c.ring) {
		i = 0
	}
	return c.ring[i].n
}

// homeCounter routes name to the remote counter currently hosting it.
func (c *Cluster) homeCounter(ctr *Counter) (*remote.Counter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, remote.ErrClosed
	}
	n := c.routeLocked(ctr.hash)
	if n == nil {
		return nil, ErrNoNodes
	}
	return n.counterFor(ctr.name, ctr.hash), nil
}

// fnv64a is FNV-1a over s run through a 64-bit avalanche finalizer —
// allocation-free (hash/fnv's Hash64 would escape per route), stable
// across processes, and the single hash placement and pool selection
// both derive from. The finalizer (murmur3's fmix64) matters: raw
// FNV-1a of short, similar strings — counter names, host:port#vnode —
// leaves the high bits poorly mixed, and ring position orders by the
// FULL 64-bit value, so without it whole swaths of names crowd onto one
// arc of the circle.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
