package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"monotonic/counter"
	"monotonic/counter/remote"
)

// Counter is a named monotonic counter hosted by whichever cluster node
// its name hashes to, obtained from Cluster.Counter. It implements the
// same counter.Interface as the in-process and single-node remote
// types; code written against the interface cannot tell where the
// counter lives. Counters with the same name through any Cluster over
// the same member list are one counter.
//
// On top of the remote semantics, a cluster counter rides over node
// death: a blocked wait whose home node is retired is transparently
// re-issued against the name's new home (monotonicity makes the
// re-issue safe — it cannot observe a smaller value), and the increments
// this Cluster contributed are replayed there from its ledger.
type Counter struct {
	cl   *Cluster
	name string
	hash uint64

	// contrib is this Cluster's ledger entry for the name: the total
	// amount it has ever contributed (less resets). Failover replays it
	// to the name's new home. Guarded by cl.mu — the ledger update and
	// the route decision must be atomic, or an increment could slip
	// between a failover's snapshot and its re-route and be lost or
	// doubled.
	contrib uint64

	// known is the cluster-client-local satisfied watermark, the same
	// monotone lower bound the single-node client keeps. Across a
	// failover it remains a bound on the reconstructed value once every
	// contributing Cluster has replayed its ledger (fail-stop members;
	// a closed Cluster's unreplayed tail died unobserved with it).
	known atomic.Uint64

	immediate atomic.Uint64 // checks satisfied by the cluster-local watermark
	reroutes  atomic.Uint64 // waits re-issued because their home was retired
}

// The cluster counter is interchangeable with the in-process and
// single-node remote ones.
var (
	_ counter.Interface     = (*Counter)(nil)
	_ counter.StatsProvider = (*Counter)(nil)
)

// noteSatisfied raises the satisfied watermark to level (never lowers
// it — concurrent observations may arrive out of order).
func (ctr *Counter) noteSatisfied(level uint64) {
	for {
		cur := ctr.known.Load()
		if level <= cur || ctr.known.CompareAndSwap(cur, level) {
			return
		}
	}
}

// Increment atomically increases the counter's value by amount, waking
// every waiter — in any process, against any node — whose level the new
// value satisfies. The amount enters this Cluster's ledger and is
// pipelined to the name's home node; if that node is being retired
// concurrently, the failover replay delivers it to the successor
// instead, still exactly once.
func (ctr *Counter) Increment(amount uint64) {
	if err := ctr.TryIncrement(amount); err != nil {
		panic(err.Error())
	}
}

// TryIncrement is Increment reporting errors instead of panicking:
// remote.ErrClosed on a closed Cluster, ErrNoNodes once every member is
// dead, or the latched server rejection (overflow) relayed by the home
// client.
func (ctr *Counter) TryIncrement(amount uint64) error {
	c := ctr.cl
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return remote.ErrClosed
	}
	n := c.routeLocked(ctr.hash)
	if n == nil {
		c.mu.Unlock()
		return ErrNoNodes
	}
	if amount == 0 {
		c.mu.Unlock()
		return nil
	}
	ctr.contrib += amount
	rc := n.counterFor(ctr.name, ctr.hash)
	c.mu.Unlock()
	if err := rc.TryIncrement(amount); err != nil {
		if errors.Is(err, remote.ErrClosed) {
			// The home's client was retired between the route and the
			// send. The retirement's ledger snapshot was taken under the
			// same lock as our ledger update, so it included this amount
			// and the replay delivers it to the successor — dropping the
			// direct send here is what keeps it exactly-once.
			return nil
		}
		return err
	}
	return nil
}

// Name reports the name the counter was opened under — the key both
// placement (Cluster.NodeFor) and identity across clients derive from.
func (ctr *Counter) Name() string { return ctr.name }

// Contribution reports this Cluster's ledger entry for the counter: the
// total amount it has contributed since the last Reset. The cluster-wide
// value is the sum of every contributing Cluster's entry.
func (ctr *Counter) Contribution() uint64 {
	ctr.cl.mu.Lock()
	defer ctr.cl.mu.Unlock()
	return ctr.contrib
}

// Check suspends the caller until the value is at least level, riding
// over reconnects and node failovers. It panics only if the Cluster is
// closed (or the last member dies) while waiting — the cluster analogue
// of the single-node client's ErrClosed panic.
func (ctr *Counter) Check(level uint64) {
	if err := ctr.CheckContext(context.Background(), level); err != nil {
		panic(err.Error())
	}
}

// CheckContext is Check with cancellation: nil once the value reaches
// level, ctx.Err() if the context wins, with satisfied-beats-cancelled
// resolved by the home server. If the home node is retired mid-wait the
// wait is re-issued against the name's new home: the value is monotone,
// so re-asking can never observe less, and the failover replay has
// already been queued on the same session — a wait that was entitled
// before the failover becomes entitled again once the contributing
// ledgers land. Returns remote.ErrClosed if the Cluster is closed while
// waiting, ErrNoNodes once every member is dead.
func (ctr *Counter) CheckContext(ctx context.Context, level uint64) error {
	if level <= ctr.known.Load() {
		ctr.immediate.Add(1)
		return nil
	}
	for {
		rc, err := ctr.cl.homeCounter(ctr)
		if err != nil {
			return err
		}
		switch err := rc.CheckContext(ctx, level); {
		case err == nil:
			ctr.noteSatisfied(level)
			return nil
		case errors.Is(err, remote.ErrClosed):
			// The home's client closed under the wait — a failover (or
			// Cluster close; the next route answers which). Re-route.
			ctr.reroutes.Add(1)
		default:
			return err // the context won
		}
	}
}

// WaitTimeout is Check bounded by a timeout, reporting whether the
// level was reached; a satisfied level beats an expired deadline, and
// the deadline spans failovers (a retired home does not restart the
// clock).
func (ctr *Counter) WaitTimeout(level uint64, d time.Duration) bool {
	if level <= ctr.known.Load() {
		ctr.immediate.Add(1)
		return true
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	switch err := ctr.CheckContext(ctx, level); {
	case err == nil:
		return true
	case errors.Is(err, context.DeadlineExceeded):
		return false
	default:
		panic(err.Error()) // Cluster closed or last member dead mid-wait
	}
}

// Sentinel arms a one-shot hook that fires when the value reaches
// level, making cluster counters watchable by counter/wait's predicate
// conditions alongside in-process and single-node remote ones. The
// armed sentinel survives failovers the same way CheckContext does.
func (ctr *Counter) Sentinel(level uint64, fn func()) (cancel func() bool, armed bool) {
	if level <= ctr.known.Load() {
		ctr.immediate.Add(1)
		return nil, false
	}
	ctx, cancelCtx := context.WithCancel(context.Background())
	var state atomic.Int32 // 0 armed, 1 fired, 2 cancelled
	go func() {
		defer cancelCtx()
		if ctr.CheckContext(ctx, level) == nil {
			if state.CompareAndSwap(0, 1) {
				fn()
			}
		}
	}()
	return func() bool {
		if state.CompareAndSwap(0, 2) {
			cancelCtx()
			return true
		}
		return false
	}, true
}

// Watermark returns the satisfied watermark this Cluster has observed
// for the counter — a monotone lower bound on the cluster-wide value,
// which is the view the predicate layer (counter/wait) needs. It never
// touches the network.
func (ctr *Counter) Watermark() uint64 { return ctr.known.Load() }

// Reset sets the value back to zero for reuse between phases and zeroes
// this Cluster's ledger entry, so a later failover does not resurrect
// pre-reset contributions. As everywhere else, Reset must not run
// concurrently with any other operation on the counter and panics if
// waiters are suspended on it. In a cluster the exclusivity is
// cluster-wide and extends to the ledgers: every OTHER Cluster that has
// written the name still holds its pre-reset contribution, which a
// failover would faithfully replay — so phase reuse across failures is
// exact only when each name has a single writing Cluster per phase (the
// usual sharded-writer deployment), or when writers re-open the name
// (fresh ledger) after the reset.
func (ctr *Counter) Reset() {
	rc, err := ctr.cl.homeCounter(ctr)
	if err != nil {
		panic("cluster: reset: " + err.Error())
	}
	rc.Reset() // relays the server's refusal as a panic if waiters are suspended
	ctr.cl.mu.Lock()
	ctr.contrib = 0
	ctr.cl.mu.Unlock()
	// The hosted value is zero again; the watermark must restart with it
	// or stale immediate Checks would lie.
	ctr.known.Store(0)
}

// Stats reports the home node's engine measurements for the counter
// (the shared schema every client session contributes to), folding in
// this Cluster's local fast-path accounting: checks satisfied by the
// cluster-side watermark never reach a node, so the home undercounts
// them. After a failover the numbers describe the new home, whose
// engine history starts at the replay.
func (ctr *Counter) Stats() counter.Stats {
	rc, err := ctr.cl.homeCounter(ctr)
	if err != nil {
		return counter.Stats{ImmediateChecks: ctr.immediate.Load()}
	}
	s := rc.Stats()
	s.ImmediateChecks += ctr.immediate.Load()
	return s
}
