package cluster_test

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"monotonic/counter"
	"monotonic/counter/cluster"
	"monotonic/counter/countertest"
	"monotonic/counter/remote"
	"monotonic/internal/server"
)

// startNode starts one loopback counterd and returns its address plus a
// kill function (idempotent) that severs it for good: listener and
// server close, so established connections die and reconnects are
// refused.
func startNode(t *testing.T) (addr string, kill func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New()
	go s.Serve(lis)
	var once sync.Once
	kill = func() {
		once.Do(func() {
			lis.Close()
			s.Close()
		})
	}
	t.Cleanup(kill)
	return lis.Addr().String(), kill
}

func startNodes(t *testing.T, n int) (addrs []string, kills []func()) {
	t.Helper()
	for i := 0; i < n; i++ {
		a, k := startNode(t)
		addrs = append(addrs, a)
		kills = append(kills, k)
	}
	return addrs, kills
}

func dialCluster(t *testing.T, addrs []string, opts ...cluster.Option) *cluster.Cluster {
	t.Helper()
	c, err := cluster.DialCluster(addrs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// nameOn burns fresh names until one hashes to the wanted node, so a
// test can aim traffic at a specific member.
func nameOn(t *testing.T, c *cluster.Cluster, addr, prefix string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		name := countertest.FreshName(prefix)
		if a, ok := c.NodeFor(name); ok && a == addr {
			return name
		}
	}
	t.Fatalf("no name found hashing to %s", addr)
	return ""
}

// TestConformance runs the exact black-box battery the in-process and
// single-node remote counters pass — cancellation semantics, Reset
// misuse, the goroutine-leak check — against cluster counters sharded
// over three loopback nodes. All three servers and the client run in
// this process, so the goroutine accounting covers every side.
func TestConformance(t *testing.T) {
	addrs, _ := startNodes(t, 3)
	c := dialCluster(t, addrs)
	countertest.Run(t, func(t *testing.T) counter.Interface {
		return c.Counter(countertest.FreshName("cconf"))
	})
}

// TestPredicateConformance runs the predicate-wait battery over the
// cluster: wait.Sum/Min/KOfN combinators must behave identically when
// their member counters live on different nodes.
func TestPredicateConformance(t *testing.T) {
	addrs, _ := startNodes(t, 3)
	c := dialCluster(t, addrs)
	countertest.RunPredicates(t, func(t *testing.T) counter.Interface {
		return c.Counter(countertest.FreshName("cpred"))
	})
}

// TestPlacementDeterministic pins what makes coordination-free routing
// sound: placement is a pure function of the member list — two clusters
// agree name by name even when one was dialed with the list reversed —
// and the vnode smoothing spreads names over every member.
func TestPlacementDeterministic(t *testing.T) {
	addrs, _ := startNodes(t, 3)
	c1 := dialCluster(t, addrs)
	rev := []string{addrs[2], addrs[1], addrs[0]}
	c2 := dialCluster(t, rev)

	perNode := map[string]int{}
	for i := 0; i < 256; i++ {
		name := fmt.Sprintf("placement-%d", i)
		a1, ok1 := c1.NodeFor(name)
		a2, ok2 := c2.NodeFor(name)
		if !ok1 || !ok2 {
			t.Fatal("NodeFor reported no live nodes on a healthy cluster")
		}
		if a1 != a2 {
			t.Fatalf("placement disagrees for %q: %s (list order) vs %s (reversed list)", name, a1, a2)
		}
		perNode[a1]++
	}
	if len(perNode) != 3 {
		t.Fatalf("256 names landed on %d of 3 nodes: %v", len(perNode), perNode)
	}
}

// TestCountersShardAndShare pins both halves of the tentpole's routing:
// different names really land on different nodes (checked above), and
// the same name through two independent cluster clients is one counter.
func TestCountersShardAndShare(t *testing.T) {
	addrs, _ := startNodes(t, 3)
	a := dialCluster(t, addrs)
	b := dialCluster(t, addrs)
	name := countertest.FreshName("cshared")
	done := make(chan struct{})
	go func() {
		b.Counter(name).Check(3)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	a.Counter(name).Increment(3)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("b never observed a's increments through the cluster")
	}
}

// TestKillNodeExactlyOnce is the acceptance test for failover: three
// loopback nodes, eight writers hammering 40 names (>= 10^4 increments
// total), one node killed mid-stream. Every name must end at exactly
// the number of increments issued to it — nothing lost with the dead
// node's connections, nothing doubled by the ledger replay — verified
// through fresh single-node clients against each surviving home. The
// client process must also shed every goroutine the dead node's pool
// and the cluster held.
func TestKillNodeExactlyOnce(t *testing.T) {
	const (
		names     = 40
		writers   = 8
		perWriter = 1500 // 12000 increments total
		killAfter = perWriter / 4
		poolSize  = 2
	)
	addrs, kills := startNodes(t, 3)

	baseline := runtime.NumGoroutine()
	c := dialCluster(t, addrs,
		cluster.WithPoolSize(poolSize),
		cluster.WithFailAfter(3),
		cluster.WithBackoff(time.Millisecond, 5*time.Millisecond))

	ctrs := make([]*cluster.Counter, names)
	for i := range ctrs {
		ctrs[i] = c.Counter(countertest.FreshName("kill"))
	}
	victim := 1
	victimAddr := addrs[victim]

	var wg sync.WaitGroup
	totals := make([][names]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				if w == 0 && k == killAfter {
					kills[victim]()
				}
				i := (w + k) % names
				ctrs[i].Increment(1)
				totals[w][i]++
			}
		}(w)
	}
	wg.Wait()

	// The writers are pipelined and may outrun the failure budget; the
	// detection itself must land within the reconnect schedule.
	for end := time.Now().Add(10 * time.Second); ; {
		if live := c.Live(); len(live) == 2 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("Live() = %v after killing %s, want the 2 survivors", c.Live(), victimAddr)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Verify finals through fresh, independent single-node clients: the
	// cluster's own view must match what the surviving servers actually
	// hold.
	verifiers := map[string]*remote.Client{}
	defer func() {
		for _, vc := range verifiers {
			vc.Close()
		}
	}()
	for i, ctr := range ctrs {
		var want uint64
		for w := 0; w < writers; w++ {
			want += totals[w][i]
		}
		name := fmt.Sprintf("kill counter %d (%s)", i, ctr.Name())
		if got := ctr.Contribution(); got != want {
			t.Fatalf("%s: ledger = %d, want %d", name, got, want)
		}
		home, ok := c.NodeFor(ctr.Name())
		if !ok {
			t.Fatalf("%s: no live home", name)
		}
		if home == victimAddr {
			t.Fatalf("%s: still routed to the killed node %s", name, victimAddr)
		}
		vc := verifiers[home]
		if vc == nil {
			var err error
			vc, err = remote.Dial(home)
			if err != nil {
				t.Fatal(err)
			}
			verifiers[home] = vc
		}
		rc := vc.Counter(ctr.Name())
		if !rc.WaitTimeout(want, 10*time.Second) {
			t.Fatalf("%s: value below %d on %s — increments lost in the failover", name, want, home)
		}
		if rc.WaitTimeout(want+1, 20*time.Millisecond) {
			t.Fatalf("%s: value above %d on %s — increments double-applied by the replay", name, want, home)
		}
	}
	for _, vc := range verifiers {
		vc.Close()
	}
	verifiers = map[string]*remote.Client{}

	c.Close()
	deadline := time.After(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestParkedWaitSurvivesFailover parks a waiter on a name homed on the
// node about to die: the wait must ride the failover — re-issued
// against the successor after the ledger replay — and release when the
// remaining increments arrive there.
func TestParkedWaitSurvivesFailover(t *testing.T) {
	addrs, kills := startNodes(t, 2)
	c := dialCluster(t, addrs,
		cluster.WithFailAfter(3),
		cluster.WithBackoff(time.Millisecond, 5*time.Millisecond))

	name := nameOn(t, c, addrs[0], "parked")
	ctr := c.Counter(name)
	ctr.Increment(60)
	ctr.Check(60) // applied on the doomed node before it dies

	released := make(chan struct{})
	go func() {
		ctr.Check(100)
		close(released)
	}()
	time.Sleep(50 * time.Millisecond) // let it park on node 0
	kills[0]()

	// Wait for the failover to land, then supply the missing 40: the
	// parked waiter needs the replayed 60 plus these on the successor.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if live := c.Live(); len(live) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node death never detected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctr.Increment(40)
	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("parked Check(100) never released after failover + remaining increments")
	}
	if home, _ := c.NodeFor(name); home != addrs[1] {
		t.Fatalf("NodeFor(%q) = %s after failover, want successor %s", name, home, addrs[1])
	}
}

// TestRestartedNodeIsRetired pins the boot-epoch path: a node that dies
// and comes straight back on the same address — before the failure
// budget trips — is a fresh instance with empty counters. The cluster
// must detect the epoch change, retire the member, and replay the
// ledger to the successor, exactly as if the node had stayed dark.
func TestRestartedNodeIsRetired(t *testing.T) {
	addrs, kills := startNodes(t, 2)
	c := dialCluster(t, addrs,
		cluster.WithFailAfter(1<<30), // never trip the budget: only the epoch may retire it
		cluster.WithBackoff(time.Millisecond, 10*time.Millisecond))

	name := nameOn(t, c, addrs[0], "restart")
	ctr := c.Counter(name)
	ctr.Increment(500)
	ctr.Check(500) // acknowledged state that a plain session resume cannot restore

	kills[0]()
	// Rebind the same address with a fresh server: same node identity to
	// TCP, different boot epoch to the protocol.
	var lis net.Listener
	var err error
	for end := time.Now().Add(5 * time.Second); ; {
		lis, err = net.Listen("tcp", addrs[0])
		if err == nil {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("rebinding %s: %v", addrs[0], err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s2 := server.New()
	go s2.Serve(lis)
	t.Cleanup(func() { lis.Close(); s2.Close() })

	deadline := time.Now().Add(10 * time.Second)
	for {
		if home, ok := c.NodeFor(name); ok && home == addrs[1] {
			break
		}
		if time.Now().After(deadline) {
			home, _ := c.NodeFor(name)
			t.Fatalf("restarted node never retired: NodeFor(%q) = %s, want %s", name, home, addrs[1])
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The successor must hold exactly the replayed 500 — and keep
	// counting from there.
	vc, err := remote.Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	rc := vc.Counter(name)
	if !rc.WaitTimeout(500, 10*time.Second) {
		t.Fatal("ledger not replayed to the successor after the restart was detected")
	}
	if rc.WaitTimeout(501, 20*time.Millisecond) {
		t.Fatal("successor above the ledger: restart replay double-applied")
	}
	ctr.Increment(1)
	if !rc.WaitTimeout(501, 10*time.Second) {
		t.Fatal("post-failover increment did not reach the successor")
	}
}

// TestLastNodeDeathSurfacesErrNoNodes pins the end of the line: when
// every member is dead, TryIncrement reports ErrNoNodes rather than
// silently growing a ledger nothing will ever replay.
func TestLastNodeDeathSurfacesErrNoNodes(t *testing.T) {
	addrs, kills := startNodes(t, 1)
	c := dialCluster(t, addrs,
		cluster.WithFailAfter(2),
		cluster.WithBackoff(time.Millisecond, 5*time.Millisecond))
	ctr := c.Counter(countertest.FreshName("lastnode"))
	ctr.Increment(1)
	kills[0]()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := ctr.TryIncrement(1); err == cluster.ErrNoNodes {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("TryIncrement never surfaced ErrNoNodes after the last node died")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
