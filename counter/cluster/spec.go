package cluster

import (
	"sync"

	cwait "monotonic/counter/wait"
	"monotonic/counter/remote"
)

// Server-side predicate waits through the cluster. A Cluster is a
// wait.SpecHost: when every counter a predicate watches hashes to the
// SAME live member, the whole predicate is shipped there as one wire v3
// OpWaitFor registration — one parked entry on that node, zero client
// frames per increment that cannot flip it. Counters that shard across
// members refuse the route and the predicate engine falls back to
// per-counter sentinels, each of which already rides failover on its
// own.
//
// A routed predicate survives failover too: when its home is retired,
// the underlying client's fire(false) lands in a supervisor that
// re-resolves the placement and re-arms the same spec against the ring
// successor — monotonicity makes the re-send idempotent, and the truth
// the successor accumulates (every writer replays its ledger there) is
// the same monotone truth, so a wake from the new home is as
// authoritative as one from the old. Only when the counters no longer
// colocate (or the cluster is closed, or every member is dead) does the
// supervisor pass the fire(false) through and let the predicate engine
// degrade to sentinels.

// SpecHost nominates the owning Cluster to host multi-counter
// predicates over this counter; see Cluster.ArmSpec.
func (ctr *Counter) SpecHost() cwait.SpecHost { return ctr.cl }

var _ cwait.SpecHost = (*Cluster)(nil)

// specClient resolves the pooled client of the single live member
// hosting every counter in spec — nil when the counters split across
// members, belong to another Cluster, or no route exists. The pool slot
// is the first counter's, so re-arms after a failover stay on one
// session per spec.
func (c *Cluster) specClient(spec cwait.Spec) *remote.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(spec.Counters) == 0 {
		return nil
	}
	var home *node
	var first *Counter
	for _, ci := range spec.Counters {
		ctr, ok := ci.(*Counter)
		if !ok || ctr.cl != c {
			return nil
		}
		n := c.routeLocked(ctr.hash)
		if n == nil {
			return nil
		}
		if home == nil {
			home, first = n, ctr
		} else if n != home {
			return nil
		}
	}
	return home.clients[first.hash%uint64(len(home.clients))]
}

// ArmSpec registers spec for server-side evaluation on the member
// hosting all of its counters, making the Cluster a wait.SpecHost. It
// refuses (ok = false) when the counters do not colocate on one live
// member — the caller then evaluates client-side over per-counter
// sentinels. An accepted registration is supervised across failovers:
// retiring the home re-routes it to the successor transparently.
//
// ArmSpec and the returned cancel are called under the predicate
// engine's lock; neither blocks on the network.
func (c *Cluster) ArmSpec(spec cwait.Spec, fire func(satisfied bool)) (cancel func() bool, ok bool) {
	s := &specSupervisor{c: c, spec: spec, fire: fire}
	if !s.arm() {
		return nil, false
	}
	return s.cancel, true
}

// specSupervisor owns one routed predicate registration across its
// lifetime of homes. done latches on cancel or on the first forwarded
// fire; inner is the current home client's cancel, nil while a re-route
// is in flight.
type specSupervisor struct {
	c    *Cluster
	spec cwait.Spec
	fire func(satisfied bool)

	mu    sync.Mutex
	inner func() bool
	done  bool
}

// arm routes the spec and registers it with the home's client,
// reporting false when no single live member hosts every counter (or
// the home refuses — closed pool, feature lost).
func (s *specSupervisor) arm() bool {
	cl := s.c.specClient(s.spec)
	if cl == nil {
		return false
	}
	inner, ok := cl.ArmSpec(s.spec, s.onFire)
	if !ok {
		return false
	}
	s.mu.Lock()
	if s.done {
		// A cancel (or a forwarded fire) won while we were re-arming:
		// unwind the registration we just made.
		s.mu.Unlock()
		inner()
		return true // done is settled; the caller must not degrade
	}
	s.inner = inner
	s.mu.Unlock()
	return true
}

// onFire receives the current home client's verdicts. Satisfaction is
// forwarded — monotone truth from any home is final. An unsatisfied
// fire means the home is gone (retired member, closed pool): re-route
// before letting the predicate engine degrade.
func (s *specSupervisor) onFire(satisfied bool) {
	if satisfied {
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			return
		}
		s.done = true
		s.inner = nil
		s.mu.Unlock()
		s.fire(true)
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.inner = nil // the old home's registration died with its client
	s.mu.Unlock()
	if s.arm() {
		return // re-routed to the successor (or settled by a racing cancel)
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.mu.Unlock()
	s.fire(false)
}

// cancel tears the registration down, reporting whether the fire was
// prevented. done latches first, so a racing onFire — even one whose
// inner wake is already in flight — is swallowed here and never reaches
// the predicate engine.
func (s *specSupervisor) cancel() bool {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return false
	}
	s.done = true
	inner := s.inner
	s.inner = nil
	s.mu.Unlock()
	if inner != nil {
		inner()
	}
	return true
}
