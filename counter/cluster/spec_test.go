package cluster_test

import (
	"context"
	"testing"
	"time"

	"monotonic/counter"
	"monotonic/counter/cluster"
	"monotonic/counter/wait"
)

// TestSpecWaitColocatedRoutesServerSide: a predicate whose counters all
// hash to one member ships to that member as a single registration —
// External with zero local sentinels — and a flip from another cluster
// client releases it.
func TestSpecWaitColocatedRoutesServerSide(t *testing.T) {
	addrs, _ := startNodes(t, 2)
	c := dialCluster(t, addrs)
	other := dialCluster(t, addrs)

	na := nameOn(t, c, addrs[0], "co")
	nb := nameOn(t, c, addrs[0], "co")
	cond := wait.Sum(c.Counter(na), c.Counter(nb)).AtLeast(10)

	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !cond.Stats().External && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := cond.Stats(); !st.External || st.Armed != 0 {
		t.Fatalf("stats = %+v, want External with zero local sentinels", st)
	}
	other.Counter(na).Increment(4)
	other.Counter(nb).Increment(6)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("colocated spec wait never released")
	}
}

// TestSpecWaitShardedFallsBack: counters on different members cannot
// ship as one registration; the combinator must fall back to
// per-counter sentinels and still work.
func TestSpecWaitShardedFallsBack(t *testing.T) {
	addrs, _ := startNodes(t, 2)
	c := dialCluster(t, addrs)
	other := dialCluster(t, addrs)

	na := nameOn(t, c, addrs[0], "sh")
	nb := nameOn(t, c, addrs[1], "sh")
	cond := wait.Sum(c.Counter(na), c.Counter(nb)).AtLeast(10)

	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	time.Sleep(30 * time.Millisecond)
	if st := cond.Stats(); st.External {
		t.Fatalf("stats = %+v: sharded counters must not route as one spec", st)
	}
	other.Counter(na).Increment(4)
	other.Counter(nb).Increment(6)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sharded predicate wait never released")
	}
}

// TestParkedWaitForSurvivesFailover is the regression for predicate
// waits racing failover: a spec parked on the member about to die must
// be re-encoded and re-routed to the ring successor — still ONE
// server-side registration, not a degradation to per-counter sentinels
// — and release once the ledger replay plus the remaining increments
// land there.
func TestParkedWaitForSurvivesFailover(t *testing.T) {
	addrs, kills := startNodes(t, 2)
	c := dialCluster(t, addrs,
		cluster.WithFailAfter(3),
		cluster.WithBackoff(time.Millisecond, 5*time.Millisecond))

	na := nameOn(t, c, addrs[0], "pfo")
	nb := nameOn(t, c, addrs[0], "pfo")
	ca, cb := c.Counter(na), c.Counter(nb)

	// Ledger state the failover must carry to the successor.
	ca.Increment(30)
	cb.Increment(30)
	ca.Check(30)
	cb.Check(30) // applied on the doomed node before it dies

	cond := wait.Sum(ca, cb).AtLeast(100)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !cond.Stats().External && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !cond.Stats().External {
		t.Fatal("spec wait never routed server-side before the failover")
	}

	kills[0]()
	for {
		if live := c.Live(); len(live) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node death never detected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Both names now home on the survivor; the supervisor must have
	// re-armed there rather than degrading to sentinels.
	rearm := time.Now().Add(5 * time.Second)
	for !cond.Stats().External && time.Now().Before(rearm) {
		time.Sleep(time.Millisecond)
	}
	if st := cond.Stats(); !st.External {
		t.Fatalf("stats = %+v after failover: spec not re-routed to the successor", st)
	}

	// The replayed 60 plus these 40 flip the predicate on the successor.
	ca.Increment(40)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked WaitFor never released after failover re-route")
	}
}

// TestSpecWaitClusterCloseDegrades: closing the cluster under a routed
// predicate must not strand the waiter — the supervisor finds no route,
// degrades, and the waiter stays cancellable.
func TestSpecWaitClusterCloseDegrades(t *testing.T) {
	addrs, _ := startNodes(t, 2)
	c := dialCluster(t, addrs)
	na := nameOn(t, c, addrs[0], "ccd")
	nb := nameOn(t, c, addrs[0], "ccd")
	cond := wait.Sum(c.Counter(na), c.Counter(nb)).AtLeast(10)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for !cond.Stats().External && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	for cond.Stats().External && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := cond.Stats(); st.External {
		t.Fatalf("stats = %+v: Close must degrade the routed spec", st)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

// The cluster counter keeps satisfying the predicate layer's optional
// interfaces.
var _ interface {
	counter.Interface
	Name() string
	Watermark() uint64
} = (*cluster.Counter)(nil)
