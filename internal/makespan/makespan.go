// Package makespan is a discrete-event model of multiprocessor execution,
// substituting for the shared-memory multiprocessor the paper ran on (and
// this reproduction environment lacks — the host has a single CPU, on
// which barrier and ragged programs serialize to the same total work and
// wall-clock comparisons cannot show overlap).
//
// The model is the standard one for time-stepped computations: thread t's
// work in step s takes Work(t, s) time units on its own processor, and a
// task starts as soon as its synchronization predecessors finish:
//
//   - Under an N-way barrier, every step-s task waits for ALL step-(s-1)
//     tasks, so the makespan is sum over steps of the per-step maximum.
//   - Under a ragged barrier (the paper's counter array, section 5.1),
//     a task waits only for its own and its neighbours' previous-step
//     tasks, so the makespan is the longest path through the local
//     dependency DAG.
//   - Under the APSP dataflow (section 4.5), a thread's iteration-k task
//     waits for its own iteration k-1 and for the publication of row k.
//
// The ragged makespan can never exceed the barrier makespan (its
// dependency set is a subset), and under per-step work variation it is
// strictly smaller: a barrier charges the per-step maximum every step,
// while local dependencies let delays average out — Lubachevsky's
// classical observation, and exactly the paper's claimed advantage. The
// E13 experiment measures the ratio for the paper's workloads.
package makespan

import (
	"monotonic/internal/workload"
)

// WorkFunc gives the duration (in abstract time units) of thread t's task
// in step s. Durations must be nonnegative.
type WorkFunc func(t, s int) float64

// Barrier returns the makespan of `threads` threads over `steps` steps
// when every step ends in a full barrier: sum of per-step maxima.
func Barrier(threads, steps int, work WorkFunc) float64 {
	total := 0.0
	for s := 0; s < steps; s++ {
		max := 0.0
		for t := 0; t < threads; t++ {
			if w := work(t, s); w > max {
				max = w
			}
		}
		total += max
	}
	return total
}

// Ragged returns the makespan when thread t's step-s task depends only on
// the step-(s-1) tasks of threads t-1, t, t+1 (the counter-array stencil
// protocol): the longest path through the local DAG.
func Ragged(threads, steps int, work WorkFunc) float64 {
	if threads <= 0 || steps <= 0 {
		return 0
	}
	finish := make([]float64, threads)
	prev := make([]float64, threads)
	for t := 0; t < threads; t++ {
		finish[t] = work(t, 0)
	}
	for s := 1; s < steps; s++ {
		prev, finish = finish, prev
		for t := 0; t < threads; t++ {
			ready := prev[t]
			if t > 0 && prev[t-1] > ready {
				ready = prev[t-1]
			}
			if t < threads-1 && prev[t+1] > ready {
				ready = prev[t+1]
			}
			finish[t] = ready + work(t, s)
		}
	}
	max := 0.0
	for _, f := range finish {
		if f > max {
			max = f
		}
	}
	return max
}

// APSPDataflow returns the makespan of the section 4.5 counter program's
// dependency structure: thread t's iteration-k task starts when its own
// iteration k-1 task is done AND row k is published; the owner of row k+1
// publishes it at the end of its iteration-k task. owner(k) maps a row to
// the thread holding it (the paper's block rule).
func APSPDataflow(threads, steps int, work WorkFunc, owner func(k int) int) float64 {
	if threads <= 0 || steps <= 0 {
		return 0
	}
	finish := make([]float64, threads) // finish of the previous iteration per thread
	published := 0.0                   // time row k becomes available
	for k := 0; k < steps; k++ {
		nextPublished := 0.0
		for t := 0; t < threads; t++ {
			ready := finish[t]
			if published > ready {
				ready = published
			}
			finish[t] = ready + work(t, k)
			if k+1 < steps && owner(k+1) == t {
				// Row k+1 is published at the end of its owner's
				// iteration-k task (a slight over-approximation: the
				// real program publishes partway through the task).
				nextPublished = finish[t]
			}
		}
		published = nextPublished
	}
	max := 0.0
	for _, f := range finish {
		if f > max {
			max = f
		}
	}
	return max
}

// APSPBarrier is the section 4.3 structure under the same work model:
// every iteration ends in a full barrier.
func APSPBarrier(threads, steps int, work WorkFunc) float64 {
	return Barrier(threads, steps, work)
}

// BlockOwner returns the paper's block-partition owner function for n
// rows over `threads` threads.
func BlockOwner(n, threads int) func(k int) int {
	return func(k int) int {
		if k >= n {
			k = n - 1
		}
		// Thread t owns rows [t*n/threads, (t+1)*n/threads).
		for t := 0; t < threads; t++ {
			if k < (t+1)*n/threads {
				return t
			}
		}
		return threads - 1
	}
}

// NoisyWork builds a WorkFunc with mean duration `mean`, multiplied by a
// static per-thread skew factor, plus uniform per-task noise in
// [-noise, +noise] fraction of the mean. Deterministic from the seed.
func NoisyWork(threads, steps int, mean float64, skew workload.Skew, noise float64, seed uint64) WorkFunc {
	rng := workload.NewRNG(seed)
	durations := make([]float64, threads*steps)
	for t := 0; t < threads; t++ {
		factor := skew.Factor(t, threads)
		for s := 0; s < steps; s++ {
			jitter := 1 + noise*(2*rng.Float64()-1)
			durations[t*steps+s] = mean * factor * jitter
		}
	}
	return func(t, s int) float64 { return durations[t*steps+s] }
}

// ConstantWork is the degenerate model where every task costs `mean`.
func ConstantWork(mean float64) WorkFunc {
	return func(t, s int) float64 { return mean }
}
