package makespan

import (
	"math"
	"testing"
	"testing/quick"

	"monotonic/internal/workload"
)

func TestConstantWorkEqualMakespans(t *testing.T) {
	// With identical task durations there is nothing for raggedness to
	// exploit: both disciplines take steps*mean.
	w := ConstantWork(2)
	const threads, steps = 8, 50
	want := 2.0 * steps
	if got := Barrier(threads, steps, w); got != want {
		t.Fatalf("barrier = %v, want %v", got, want)
	}
	if got := Ragged(threads, steps, w); got != want {
		t.Fatalf("ragged = %v, want %v", got, want)
	}
}

func TestRaggedNeverExceedsBarrier(t *testing.T) {
	f := func(seed uint64, th8, st8, noise8 uint8) bool {
		threads := int(th8%16) + 1
		steps := int(st8%40) + 1
		noise := float64(noise8%100) / 100
		w := NoisyWork(threads, steps, 10, workload.Uniform{}, noise, seed)
		b := Barrier(threads, steps, w)
		r := Ragged(threads, steps, w)
		return r <= b+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRaggedStrictlyBetterUnderNoise(t *testing.T) {
	// With substantial per-task variation the barrier pays the per-step
	// maximum of all threads every step; local sync pays roughly the
	// mean plus a boundary term. The advantage must be clearly visible.
	w := NoisyWork(16, 400, 10, workload.Uniform{}, 0.9, 11)
	b := Barrier(16, 400, w)
	r := Ragged(16, 400, w)
	if r >= b*0.95 {
		t.Fatalf("ragged %v not clearly better than barrier %v under noise", r, b)
	}
}

func TestBarrierIsSumOfMaxima(t *testing.T) {
	w := func(t, s int) float64 { return float64(t + s) }
	// threads=3: per-step max = 2+s; steps=4: sum = 2+3+4+5 = 14.
	if got := Barrier(3, 4, w); got != 14 {
		t.Fatalf("barrier = %v, want 14", got)
	}
}

func TestRaggedLongestPathSmallCase(t *testing.T) {
	// 2 threads, 2 steps. Work: t0 = [10, 1], t1 = [1, 1].
	// Ragged: t1's step-1 task depends on both step-0 tasks (neighbour
	// t0), so finish(t1,1) = max(10,1)+1 = 11; finish(t0,1) = 10+1 = 11.
	w := func(t, s int) float64 {
		if t == 0 && s == 0 {
			return 10
		}
		return 1
	}
	if got := Ragged(2, 2, w); got != 11 {
		t.Fatalf("ragged = %v, want 11", got)
	}
	// Barrier: max(10,1) + max(1,1) = 11 here too (2 threads are all
	// neighbours of each other).
	if got := Barrier(2, 2, w); got != 11 {
		t.Fatalf("barrier = %v, want 11", got)
	}
}

func TestRaggedLocalityDelaysPropagateSlowly(t *testing.T) {
	// One huge task at thread 0, step 0; everything else costs 1. With
	// 8 threads the delay reaches thread 7 only after 7 steps, so with
	// few steps the far threads are unaffected and the makespan is set
	// by thread 0's chain: 100 + steps-1.
	w := func(t, s int) float64 {
		if t == 0 && s == 0 {
			return 100
		}
		return 1
	}
	const threads, steps = 8, 5
	if got := Ragged(threads, steps, w); got != 104 {
		t.Fatalf("ragged = %v, want 104", got)
	}
	// The barrier charges the delay to everyone immediately:
	// 100 + 4*1 = 104 as well for the MAKESPAN, but the difference is
	// in total waiting: compare with a second spike elsewhere.
	w2 := func(t, s int) float64 {
		if (t == 0 && s == 0) || (t == 7 && s == 2) {
			return 100
		}
		return 1
	}
	// Barrier: steps 0 and 2 cost 100 each, steps 1,3,4 cost 1: 203.
	if got := Barrier(threads, steps, w2); got != 203 {
		t.Fatalf("barrier two-spike = %v, want 203", got)
	}
	// Ragged: the two spikes are far apart, so their delays overlap in
	// time instead of adding: chain t0: 100+1+1+1+1 = 104; chain t7:
	// 1+1+100+1+1 = 104. Neighbour mixing cannot add the spikes within
	// 5 steps (distance 7), so makespan stays ~104.
	if got := Ragged(threads, steps, w2); got != 104 {
		t.Fatalf("ragged two-spike = %v, want 104", got)
	}
}

func TestAPSPDataflowBeatsBarrierUnderNoise(t *testing.T) {
	const threads, steps = 8, 200
	owner := BlockOwner(steps, threads)
	w := NoisyWork(threads, steps, 10, workload.Uniform{}, 0.9, 5)
	b := APSPBarrier(threads, steps, w)
	d := APSPDataflow(threads, steps, w, owner)
	if d >= b {
		t.Fatalf("dataflow %v not better than barrier %v", d, b)
	}
}

func TestAPSPDataflowNeverExceedsBarrierPlusPublication(t *testing.T) {
	f := func(seed uint64, th8, st8 uint8) bool {
		threads := int(th8%8) + 1
		steps := int(st8%40) + 2
		w := NoisyWork(threads, steps, 10, workload.Linear{Max: 3}, 0.5, seed)
		b := APSPBarrier(threads, steps, w)
		d := APSPDataflow(threads, steps, w, BlockOwner(steps, threads))
		// The dataflow's publication over-approximation can cost at
		// most one task per iteration beyond the barrier bound; in
		// practice it is far below. Just require <= barrier here.
		return d <= b+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateSizes(t *testing.T) {
	w := ConstantWork(1)
	if Ragged(0, 10, w) != 0 || Ragged(10, 0, w) != 0 {
		t.Fatal("empty ragged nonzero")
	}
	if APSPDataflow(0, 10, w, func(int) int { return 0 }) != 0 {
		t.Fatal("empty dataflow nonzero")
	}
	if Barrier(1, 3, w) != 3 || Ragged(1, 3, w) != 3 {
		t.Fatal("single-thread disciplines differ")
	}
}

func TestBlockOwner(t *testing.T) {
	owner := BlockOwner(8, 4)
	wantOwners := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for k, want := range wantOwners {
		if got := owner(k); got != want {
			t.Errorf("owner(%d) = %d, want %d", k, got, want)
		}
	}
	if owner(100) != 3 { // clamped
		t.Error("owner beyond range not clamped")
	}
}

func TestNoisyWorkDeterministicAndSkewed(t *testing.T) {
	a := NoisyWork(4, 10, 10, workload.OneSlow{Max: 5}, 0.2, 9)
	b := NoisyWork(4, 10, 10, workload.OneSlow{Max: 5}, 0.2, 9)
	sumFast, sumSlow := 0.0, 0.0
	for s := 0; s < 10; s++ {
		if a(2, s) != b(2, s) {
			t.Fatal("NoisyWork not deterministic")
		}
		sumFast += a(0, s)
		sumSlow += a(3, s)
	}
	if sumSlow < 3*sumFast {
		t.Fatalf("skew not applied: fast %v slow %v", sumFast, sumSlow)
	}
	for s := 0; s < 10; s++ {
		if a(0, s) < 0 || math.IsNaN(a(0, s)) {
			t.Fatal("invalid duration")
		}
	}
}
