// Package trace wraps any counter implementation with operation counting
// and wait-time measurement, for the section 7 cost-model experiments:
// how many Checks suspend, how long they wait, and how the counter's live
// structure evolves.
package trace

import (
	"context"
	"sync"
	"time"

	"monotonic/internal/core"
)

// Counter wraps a core.Interface and records operation statistics. All
// counter semantics are delegated unchanged.
type Counter struct {
	inner core.Interface

	mu            sync.Mutex
	increments    uint64
	checks        uint64
	suspended     uint64
	totalWait     time.Duration
	maxWait       time.Duration
	maxConcurrent int
	waitingNow    int
}

// New wraps inner with tracing.
func New(inner core.Interface) *Counter { return &Counter{inner: inner} }

// Stats is a snapshot of a traced counter's activity.
type Stats struct {
	Increments    uint64        // Increment calls
	Checks        uint64        // Check/CheckContext calls
	Suspended     uint64        // checks that blocked
	TotalWait     time.Duration // summed blocking time
	MaxWait       time.Duration // longest single block
	MaxConcurrent int           // peak simultaneously blocked goroutines
}

// MeanWait returns the average blocking time per suspended check.
func (s Stats) MeanWait() time.Duration {
	if s.Suspended == 0 {
		return 0
	}
	return s.TotalWait / time.Duration(s.Suspended)
}

// Increment implements core.Interface.
func (c *Counter) Increment(amount uint64) {
	c.mu.Lock()
	c.increments++
	c.mu.Unlock()
	c.inner.Increment(amount)
}

// Check implements core.Interface, timing any suspension. A check counts
// as suspended when the level was not yet satisfied on arrival (the
// paper's notion), determined by reading the value first — monotonicity
// makes that read conservative: a satisfied pre-read can never block.
func (c *Counter) Check(level uint64) {
	immediate := c.inner.Value() >= level
	c.mu.Lock()
	c.checks++
	c.waitingNow++
	if c.waitingNow > c.maxConcurrent {
		c.maxConcurrent = c.waitingNow
	}
	c.mu.Unlock()
	start := time.Now()
	c.inner.Check(level)
	wait := time.Since(start)
	c.mu.Lock()
	c.waitingNow--
	if !immediate {
		c.suspended++
		c.totalWait += wait
		if wait > c.maxWait {
			c.maxWait = wait
		}
	}
	c.mu.Unlock()
}

// CheckContext implements core.Interface.
func (c *Counter) CheckContext(ctx context.Context, level uint64) error {
	immediate := c.inner.Value() >= level
	c.mu.Lock()
	c.checks++
	c.waitingNow++
	if c.waitingNow > c.maxConcurrent {
		c.maxConcurrent = c.waitingNow
	}
	c.mu.Unlock()
	start := time.Now()
	err := c.inner.CheckContext(ctx, level)
	wait := time.Since(start)
	c.mu.Lock()
	c.waitingNow--
	if !immediate {
		c.suspended++
		c.totalWait += wait
		if wait > c.maxWait {
			c.maxWait = wait
		}
	}
	c.mu.Unlock()
	return err
}

// Reset implements core.Interface; statistics are preserved.
func (c *Counter) Reset() { c.inner.Reset() }

// Value implements core.Interface.
func (c *Counter) Value() uint64 { return c.inner.Value() }

// Engine returns the wrapped implementation's own cost-model stats (the
// unified core.Stats schema) when it provides them, pairing the
// wrapper's wall-clock view (wait times, concurrency) with the
// engine-level event counts for the same run. ok is false for
// implementations outside the registry that report no stats.
func (c *Counter) Engine() (s core.Stats, ok bool) {
	if p, isProvider := c.inner.(core.StatsProvider); isProvider {
		return p.Stats(), true
	}
	return core.Stats{}, false
}

// Stats returns a snapshot of the recorded activity.
func (c *Counter) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Increments:    c.increments,
		Checks:        c.checks,
		Suspended:     c.suspended,
		TotalWait:     c.totalWait,
		MaxWait:       c.maxWait,
		MaxConcurrent: c.maxConcurrent,
	}
}

var _ core.Interface = (*Counter)(nil)
