package trace

import (
	"context"
	"sync"
	"testing"
	"time"

	"monotonic/internal/core"
)

func TestDelegation(t *testing.T) {
	c := New(core.New())
	c.Increment(5)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
	c.Check(3) // immediate
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset not delegated")
	}
	st := c.Stats()
	if st.Increments != 1 || st.Checks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSuspensionMeasured(t *testing.T) {
	c := New(core.New())
	var wg sync.WaitGroup
	const waiters = 3
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Check(1)
		}()
	}
	time.Sleep(30 * time.Millisecond)
	c.Increment(1)
	wg.Wait()
	st := c.Stats()
	if st.Suspended != waiters {
		t.Fatalf("Suspended = %d, want %d", st.Suspended, waiters)
	}
	if st.TotalWait < 3*20*time.Millisecond {
		t.Fatalf("TotalWait = %v, want >= 60ms", st.TotalWait)
	}
	if st.MaxWait < 20*time.Millisecond {
		t.Fatalf("MaxWait = %v", st.MaxWait)
	}
	if st.MaxConcurrent != waiters {
		t.Fatalf("MaxConcurrent = %d, want %d", st.MaxConcurrent, waiters)
	}
	if st.MeanWait() < 20*time.Millisecond {
		t.Fatalf("MeanWait = %v", st.MeanWait())
	}
}

func TestImmediateChecksNotCountedAsSuspended(t *testing.T) {
	c := New(core.New())
	c.Increment(100)
	for i := 0; i < 50; i++ {
		c.Check(uint64(i))
	}
	if st := c.Stats(); st.Suspended != 0 {
		t.Fatalf("Suspended = %d for immediate checks", st.Suspended)
	}
}

func TestCheckContextTraced(t *testing.T) {
	c := New(core.New())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := c.CheckContext(ctx, 10); err == nil {
		t.Fatal("expected timeout error")
	}
	st := c.Stats()
	if st.Checks != 1 || st.Suspended != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMeanWaitEmpty(t *testing.T) {
	if (Stats{}).MeanWait() != 0 {
		t.Fatal("MeanWait on empty stats")
	}
}

// engineless is a minimal counter with no Stats, for the Engine ok=false path.
type engineless struct{ core.Interface }

func TestEngineStatsExposed(t *testing.T) {
	c := New(core.New())
	c.Increment(3)
	c.Check(2)
	es, ok := c.Engine()
	if !ok {
		t.Fatal("Engine() ok = false for a registry implementation")
	}
	if es.Increments != 1 || es.ImmediateChecks != 1 {
		t.Fatalf("engine stats = %+v, want Increments=1 ImmediateChecks=1", es)
	}
	if _, ok := New(engineless{core.New()}).Engine(); ok {
		t.Fatal("Engine() ok = true for a wrapper that hides Stats")
	}
}
