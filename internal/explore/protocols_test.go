package explore

import "testing"

// TestStencilProtocolDeterministic verifies, over every schedule, that
// the section 5.1 ragged-barrier protocol is deterministic and
// deadlock-free at model scale.
func TestStencilProtocolDeterministic(t *testing.T) {
	cases := []struct{ cells, steps int }{
		{3, 1}, {3, 3}, {4, 1}, {4, 2}, {5, 1}, {5, 2},
	}
	for _, c := range cases {
		res, err := Explore(StencilProgram(c.cells, c.steps), 1<<22)
		if err != nil {
			t.Fatalf("cells=%d steps=%d: %v", c.cells, c.steps, err)
		}
		if res.Deadlock {
			t.Errorf("cells=%d steps=%d: protocol deadlocked (trace %v)", c.cells, c.steps, res.DeadlockTrace)
		}
		if len(res.Outcomes) != 1 {
			t.Errorf("cells=%d steps=%d: %d outcomes %v, want 1",
				c.cells, c.steps, len(res.Outcomes), res.OutcomeList())
		}
	}
}

// TestStencilProtocolMatchesCascade pins the deterministic outcome: with
// update state[i] = state[i-1]+1 the values cascade from the left
// boundary.
func TestStencilProtocolMatchesCascade(t *testing.T) {
	res := MustExplore(StencilProgram(4, 2))
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes %v", res.OutcomeList())
	}
	for _, vars := range res.Outcomes {
		// cells: 0,10,20,30 initially; boundary cells stay 0 and 30.
		// step1: s1 = s0+1 = 1; s2 = s1(old)+1 = 11.
		// step2: s1 = s0+1 = 1; s2 = s1(step1)+1 = 2.
		// trace1 folds reads of s0 (0, 0): 0*100+0, then 0*100+0 = 0.
		// trace2 folds reads of s1 (10, then 1): 10*100+1 = 1001.
		want := []int64{0, 1, 2, 30, 0, 1001}
		for i, w := range want {
			if vars[i] != w {
				t.Fatalf("vars = %v, want %v", vars, want)
			}
		}
	}
}

// TestBrokenStencilNondeterministic: removing the write-side gate makes
// the protocol racy — exploration finds multiple outcomes.
func TestBrokenStencilNondeterministic(t *testing.T) {
	res, err := Explore(BrokenStencilProgram(4, 2), 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("broken protocol deadlocked (it should only race)")
	}
	if len(res.Outcomes) <= 1 {
		t.Fatalf("broken protocol outcomes %v, expected nondeterminism", res.OutcomeList())
	}
}

// TestAPSPSkeletonDeterministic: the section 4.5 skeleton is
// deterministic and deadlock-free over all schedules for several
// thread/iteration shapes.
func TestAPSPSkeletonDeterministic(t *testing.T) {
	cases := []struct{ threads, iters int }{
		{1, 3}, {2, 2}, {2, 3}, {3, 3}, {2, 4},
	}
	for _, c := range cases {
		res, err := Explore(APSPSkeletonProgram(c.threads, c.iters), 1<<22)
		if err != nil {
			t.Fatalf("threads=%d iters=%d: %v", c.threads, c.iters, err)
		}
		if res.Deadlock {
			t.Errorf("threads=%d iters=%d: deadlock (trace %v)", c.threads, c.iters, res.DeadlockTrace)
		}
		if len(res.Outcomes) != 1 {
			t.Errorf("threads=%d iters=%d: outcomes %v, want 1",
				c.threads, c.iters, res.OutcomeList())
		}
	}
}

// TestAPSPSkeletonAccumulators pins the final state: every worker's
// accumulator holds last row + 1000, and every row was published.
func TestAPSPSkeletonAccumulators(t *testing.T) {
	const threads, iters = 2, 3
	res := MustExplore(APSPSkeletonProgram(threads, iters))
	for _, vars := range res.Outcomes {
		// rows: var0 = 1, var1 = 7, var2 = 14.
		if vars[0] != 1 || vars[1] != 7 || vars[2] != 14 {
			t.Fatalf("rows = %v", vars[:iters])
		}
		// accumulators: last row (14) + 1000.
		for tID := 0; tID < threads; tID++ {
			if vars[iters+tID] != 1014 {
				t.Fatalf("acc[%d] = %d, want 1014", tID, vars[iters+tID])
			}
		}
	}
}

// TestSequentialExecutionOfProtocols: both protocol models also succeed
// under the sequential schedule... for the stencil this is only true
// because the boundary threads come first in thread order; the APSP
// skeleton matches the real algorithm's property that thread 0 can run
// to completion only if it owns every row it needs — with round-robin
// ownership it deadlocks sequentially (documented section 6 limits).
func TestSequentialExecutionOfProtocols(t *testing.T) {
	if _, deadlock := SequentialOutcome(StencilProgram(4, 2)); !deadlock {
		t.Log("stencil sequential schedule completed (boundary threads first)")
	}
	_, deadlock := SequentialOutcome(APSPSkeletonProgram(2, 3))
	if !deadlock {
		t.Fatal("APSP skeleton with 2 threads should deadlock sequentially (thread 0 needs rows thread 1 owns)")
	}
	// Single-threaded ownership is sequentially executable.
	if _, deadlock := SequentialOutcome(APSPSkeletonProgram(1, 3)); deadlock {
		t.Fatal("single-thread APSP skeleton deadlocked sequentially")
	}
}
