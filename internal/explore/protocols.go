package explore

// Model programs for the paper's full synchronization protocols, small
// enough to verify exhaustively: the ragged-barrier stencil (section 5.1)
// and the counter APSP skeleton (section 4.5). These complement the
// hand-sized section 6 programs: here the explorer proves the *protocols*
// deadlock-free and deterministic over every schedule, which no amount of
// concrete-execution testing can.

// StencilProgram models the section 5.1 per-cell protocol with `cells`
// total cells (two fixed boundaries) over `steps` time steps.
//
// Variables: var i  = state of cell i (initialized to 10*i).
// Counters: counter i = progress of cell i.
// Each interior cell thread, per step t (1-based):
//
//	Check(c[i-1], 2t-2); read state[i-1]
//	Check(c[i+1], 2t-2); read state[i+1]
//	Inc(c[i], 1)
//	Check(c[i-1], 2t-1); Check(c[i+1], 2t-1)
//	write state[i] = reg + 1   (stand-in for f(l, s, r))
//	Inc(c[i], 1)
//
// The model's "update" reads the left neighbour into the register, folds
// the observed value into a per-cell trace variable (var cells+(i-1)), and
// writes reg+1 as the new state. The fold makes every read's value — and
// therefore any mis-ordered read — visible in the final state even when
// the state cascade itself would mask it.
func StencilProgram(cells, steps int) Program {
	return stencilProgram(cells, steps, false)
}

func stencilProgram(cells, steps int, broken bool) Program {
	if cells < 3 {
		panic("explore: stencil model requires >= 3 cells")
	}
	interior := cells - 2
	p := Program{InitVars: make([]int64, cells+interior)}
	for i := 0; i < cells; i++ {
		p.InitVars[i] = int64(10 * i)
	}
	horizon := int64(2 * steps)
	// Boundary counters are pre-satisfied by a dedicated one-op thread
	// each (the model has no pre-incremented state, and an extra
	// enabled-first op only multiplies schedules the memoizer absorbs).
	p.Threads = append(p.Threads,
		[]Op{Inc(0, horizon)},
		[]Op{Inc(cells-1, horizon)},
	)
	for i := 1; i < cells-1; i++ {
		trace := cells + (i - 1)
		var ops []Op
		for t := 1; t <= steps; t++ {
			tt := int64(t)
			ops = append(ops,
				Check(i-1, 2*tt-2),
				Read(i-1),        // lState into the register
				Fold(trace, 100), // record what was observed
				Check(i+1, 2*tt-2),
				Inc(i, 1),
			)
			if !broken {
				ops = append(ops,
					Check(i-1, 2*tt-1),
					Check(i+1, 2*tt-1),
				)
			}
			ops = append(ops,
				Write(i, Add, 1), // state[i] = lState + 1
				Inc(i, 1),
			)
		}
		p.Threads = append(p.Threads, ops)
	}
	return p
}

// BrokenStencilProgram is StencilProgram with the write-side
// synchronization removed (no Check(2t-1) before writing): a cell can
// overwrite its state before the neighbour has read the previous step's
// value, so exploration must find more than one outcome in the trace
// variables.
func BrokenStencilProgram(cells, steps int) Program {
	return stencilProgram(cells, steps, true)
}

// APSPSkeletonProgram models the section 4.5 dataflow skeleton: `threads`
// workers run `iters` iterations; iteration k is gated by Check(k) on a
// single counter (counter 0). Each published row is its own variable
// (vars 0..iters-1, mirroring the kRow array — a single shared row
// variable would race exactly the way the paper's kRow staging exists to
// prevent); var iters+t is worker t's accumulator. The owner of iteration
// k+1 (thread (k+1) mod threads) publishes row k+1 during iteration k,
// then increments the counter.
func APSPSkeletonProgram(threads, iters int) Program {
	p := Program{InitVars: make([]int64, iters+threads)}
	p.InitVars[0] = 1 // row 0 is published at start
	for t := 0; t < threads; t++ {
		var ops []Op
		for k := 0; k < iters; k++ {
			ops = append(ops,
				Check(0, int64(k)),
				Read(k),                   // read row k
				Write(iters+t, Add, 1000), // acc = row + 1000
			)
			if k+1 < iters && (k+1)%threads == t {
				ops = append(ops,
					Modify(k+1, Set, int64(7*(k+1))), // publish row k+1
					Inc(0, 1),
				)
			}
		}
		p.Threads = append(p.Threads, ops)
	}
	return p
}
