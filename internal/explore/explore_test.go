package explore

import (
	"testing"
)

// TestSection6LockNondeterministic (E8): exhaustive exploration of the
// lock program finds exactly the two outcomes 7 and 8 and no deadlock.
func TestSection6LockNondeterministic(t *testing.T) {
	res := MustExplore(LockProgram())
	if res.Deadlock {
		t.Fatal("lock program deadlocked")
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("lock program outcomes = %v, want 2", res.OutcomeList())
	}
	if _, ok := res.Outcomes["x0=7"]; !ok {
		t.Error("missing outcome x=7 (x*2 then x+1)")
	}
	if _, ok := res.Outcomes["x0=8"]; !ok {
		t.Error("missing outcome x=8 (x+1 then x*2)")
	}
}

// TestSection6CounterDeterministic (E8): the counter program has exactly
// one outcome, 8, on every schedule, and never deadlocks.
func TestSection6CounterDeterministic(t *testing.T) {
	res := MustExplore(CounterProgram())
	if res.Deadlock {
		t.Fatal("counter program deadlocked")
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("counter program outcomes = %v, want exactly one", res.OutcomeList())
	}
	if _, ok := res.Outcomes["x0=8"]; !ok {
		t.Fatalf("counter program outcome %v, want x0=8", res.OutcomeList())
	}
}

// TestSection6UnguardedNondeterministic (E8): removing the guard makes
// the program nondeterministic even with atomic statements, and the
// split-access version additionally loses updates.
func TestSection6UnguardedNondeterministic(t *testing.T) {
	res := MustExplore(UnguardedProgram())
	if len(res.Outcomes) != 2 {
		t.Fatalf("unguarded atomic outcomes = %v, want 2", res.OutcomeList())
	}
	split := MustExplore(UnguardedSplitProgram())
	if len(split.Outcomes) <= 2 {
		t.Fatalf("split outcomes = %v, want > 2 (lost updates)", split.OutcomeList())
	}
	// Lost-update outcomes: both threads read 3; final is 4 (write of
	// x+1 last) or 6 (write of x*2 last).
	if _, ok := split.Outcomes["x0=4"]; !ok {
		t.Error("missing lost-update outcome x0=4")
	}
	if _, ok := split.Outcomes["x0=6"]; !ok {
		t.Error("missing lost-update outcome x0=6")
	}
}

// TestSequentialEquivalenceTheorem (E9): for each counter-only guarded
// program, if the sequential schedule succeeds, the multithreaded
// outcome set is exactly {sequential outcome} and there is no deadlock;
// if the sequential schedule deadlocks, nothing is claimed (DeadlockProgram
// shows multithreaded execution deadlocks too).
func TestSequentialEquivalenceTheorem(t *testing.T) {
	programs := map[string]Program{
		"counter":   CounterProgram(),
		"ordered-3": OrderedAccumulateProgram(3),
		"ordered-4": OrderedAccumulateProgram(4),
		"broadcast": BroadcastProgram(),
	}
	for name, p := range programs {
		seqVars, seqDeadlock := SequentialOutcome(p)
		if seqDeadlock {
			t.Fatalf("%s: sequential execution deadlocked unexpectedly", name)
		}
		res := MustExplore(p)
		if res.Deadlock {
			t.Errorf("%s: multithreaded deadlock despite sequential success (trace %v)", name, res.DeadlockTrace)
		}
		if len(res.Outcomes) != 1 {
			t.Errorf("%s: outcomes %v, want exactly the sequential one", name, res.OutcomeList())
			continue
		}
		if _, ok := res.Outcomes[renderVars(seqVars)]; !ok {
			t.Errorf("%s: multithreaded outcome differs from sequential %v", name, seqVars)
		}
	}
}

// TestDeadlockDetection: the cyclic-wait counter program deadlocks both
// sequentially and multithreaded, and the explorer reports a trace.
func TestDeadlockDetection(t *testing.T) {
	p := DeadlockProgram()
	if _, seqDeadlock := SequentialOutcome(p); !seqDeadlock {
		t.Fatal("sequential execution did not deadlock")
	}
	res := MustExplore(p)
	if !res.Deadlock {
		t.Fatal("multithreaded deadlock not found")
	}
	if len(res.Outcomes) != 0 {
		t.Fatalf("deadlocking program reported outcomes %v", res.OutcomeList())
	}
}

// TestLockAccumulateOutcomeGrowth: the lock fold reaches every arrival
// order — n! outcomes when the fold distinguishes all orders — while the
// counter fold reaches exactly one.
func TestLockAccumulateOutcomeGrowth(t *testing.T) {
	for _, n := range []int{2, 3} {
		lock := MustExplore(LockAccumulateProgram(n))
		ordered := MustExplore(OrderedAccumulateProgram(n))
		fact := 1
		for i := 2; i <= n; i++ {
			fact *= i
		}
		if len(lock.Outcomes) != fact {
			t.Errorf("n=%d: lock outcomes %d, want %d", n, len(lock.Outcomes), fact)
		}
		if len(ordered.Outcomes) != 1 {
			t.Errorf("n=%d: ordered outcomes %v, want 1", n, ordered.OutcomeList())
		}
	}
}

// TestSemaphoreModel: a binary semaphore provides mutual exclusion in the
// model: the split-access program guarded by P/V loses no updates, but
// remains order-nondeterministic.
func TestSemaphoreModel(t *testing.T) {
	p := Program{
		InitVars: []int64{InitialX},
		InitSems: []int{1},
		Threads: [][]Op{
			{P(0), Read(0), Write(0, Add, 1), V(0)},
			{P(0), Read(0), Write(0, Mul, 2), V(0)},
		},
	}
	res := MustExplore(p)
	if res.Deadlock {
		t.Fatal("semaphore program deadlocked")
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes %v, want the two orders only", res.OutcomeList())
	}
}

// TestMonotonicityInModel: once a Check's level is reached it stays
// enabled — a thread that checks the same level twice cannot block the
// second time. (Regression guard on the model's counter semantics.)
func TestMonotonicityInModel(t *testing.T) {
	p := Program{
		Threads: [][]Op{
			{Inc(0, 2)},
			{Check(0, 1), Check(0, 1), Check(0, 2), Modify(0, Set, 1)},
		},
	}
	res := MustExplore(p)
	if res.Deadlock {
		t.Fatal("monotonic rechecks deadlocked")
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes %v", res.OutcomeList())
	}
}

// TestStateLimit: the explorer reports ErrTooManyStates rather than
// hanging on programs past the limit.
func TestStateLimit(t *testing.T) {
	p := LockAccumulateProgram(5)
	_, err := Explore(p, 10)
	if err != ErrTooManyStates {
		t.Fatalf("err = %v, want ErrTooManyStates", err)
	}
}

// TestMemoizationSharesStates: exploring a wide program is feasible
// because states, not schedules, bound the work. 8 incrementing threads
// have 8! = 40320 schedules but only 2^8 pc-combinations.
func TestMemoizationSharesStates(t *testing.T) {
	threads := make([][]Op, 8)
	for i := range threads {
		threads[i] = []Op{Inc(0, 1)}
	}
	res := MustExplore(Program{Threads: threads})
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes %v", res.OutcomeList())
	}
	if res.States > 300 {
		t.Fatalf("states = %d, memoization not effective", res.States)
	}
}

// TestWitnessesReplay: every recorded witness schedule replays to exactly
// its outcome, for several programs.
func TestWitnessesReplay(t *testing.T) {
	programs := []Program{
		LockProgram(),
		CounterProgram(),
		UnguardedSplitProgram(),
		OrderedAccumulateProgram(3),
		LockAccumulateProgram(3),
	}
	for pi, p := range programs {
		res := MustExplore(p)
		if len(res.Witnesses) != len(res.Outcomes) {
			t.Fatalf("program %d: %d witnesses for %d outcomes", pi, len(res.Witnesses), len(res.Outcomes))
		}
		for key, schedule := range res.Witnesses {
			vars, ok := Replay(p, schedule)
			if !ok {
				t.Fatalf("program %d: witness for %q is not a valid schedule", pi, key)
			}
			if renderVars(vars) != key {
				t.Fatalf("program %d: witness replays to %q, recorded as %q", pi, renderVars(vars), key)
			}
		}
	}
}

func TestReplayRejectsBadSchedules(t *testing.T) {
	p := CounterProgram()
	if _, ok := Replay(p, []int{5}); ok {
		t.Fatal("out-of-range thread accepted")
	}
	if _, ok := Replay(p, []int{1}); ok {
		t.Fatal("blocked thread accepted (thread 1 starts with Check(1))")
	}
	if _, ok := Replay(p, []int{0, 0, 0}); ok {
		t.Fatal("incomplete schedule accepted")
	}
}

func TestSequentialOutcomeRunsInProgramOrder(t *testing.T) {
	p := LockProgram()
	vars, deadlock := SequentialOutcome(p)
	if deadlock {
		t.Fatal("lock program sequentially deadlocked")
	}
	if vars[0] != 8 { // (3+1)*2
		t.Fatalf("sequential x = %d, want 8", vars[0])
	}
}
