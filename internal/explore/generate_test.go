package explore

import (
	"testing"
	"testing/quick"
)

// TestQuickGuardedProgramsDeterministic: every randomly generated program
// that satisfies the guard condition by construction has exactly one
// outcome — the sequential one — and no reachable deadlock, over every
// schedule. This is the section 6 theorem property-tested across program
// space, not just the paper's examples.
func TestQuickGuardedProgramsDeterministic(t *testing.T) {
	f := func(seed uint64, tasks8, threads8 uint8) bool {
		tasks := int(tasks8%6) + 1
		threads := int(threads8%3) + 1
		p := RandomGuardedProgram(seed, tasks, threads)
		seqVars, seqDeadlock := SequentialOutcome(p)
		if seqDeadlock {
			t.Logf("seed %d: sequential schedule deadlocked (generator bug)", seed)
			return false
		}
		res, err := Explore(p, 1<<21)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Deadlock || len(res.Outcomes) != 1 {
			t.Logf("seed %d: deadlock=%v outcomes=%v", seed, res.Deadlock, res.OutcomeList())
			return false
		}
		_, ok := res.Outcomes[renderVars(seqVars)]
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestUnguardedProgramsOftenNondeterministic: stripping the Checks makes
// a healthy fraction of the generated programs nondeterministic.
func TestUnguardedProgramsOftenNondeterministic(t *testing.T) {
	nondet := 0
	const trials = 60
	for seed := uint64(0); seed < trials; seed++ {
		p := RandomUnguardedProgram(seed, 5, 2)
		res, err := Explore(p, 1<<21)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Outcomes) > 1 {
			nondet++
		}
	}
	if nondet < trials/10 {
		t.Fatalf("only %d/%d unguarded programs nondeterministic; generator too tame", nondet, trials)
	}
}

// TestGeneratorDeterministicFromSeed: the same seed yields the same
// program.
func TestGeneratorDeterministicFromSeed(t *testing.T) {
	a := RandomGuardedProgram(42, 5, 2)
	b := RandomGuardedProgram(42, 5, 2)
	if len(a.Threads) != len(b.Threads) {
		t.Fatal("thread counts differ")
	}
	for t2 := range a.Threads {
		if len(a.Threads[t2]) != len(b.Threads[t2]) {
			t.Fatal("op counts differ")
		}
		for i := range a.Threads[t2] {
			if a.Threads[t2][i] != b.Threads[t2][i] {
				t.Fatal("ops differ")
			}
		}
	}
}

// TestGeneratorDegenerateParams: silly sizes are clamped, not crashed.
func TestGeneratorDegenerateParams(t *testing.T) {
	p := RandomGuardedProgram(1, 0, 0)
	res := MustExplore(p)
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes %v", res.OutcomeList())
	}
}
