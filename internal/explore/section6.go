package explore

// Canonical programs from the paper, expressed in the abstract op
// language. Variable 0 is x with initial value 3 (so the two outcomes of
// the lock program, (3+1)*2=8 and 3*2+1=7, are distinguishable).

// InitialX is the initial value of x in the section 6 programs.
const InitialX = 3

// LockProgram is section 6's first example:
//
//	multithreaded {
//	  { xLock.Lock();  x = x+1;  xLock.Unlock(); }
//	  { xLock.Lock();  x = x*2;  xLock.Unlock(); }
//	}
func LockProgram() Program {
	return Program{
		InitVars: []int64{InitialX},
		Threads: [][]Op{
			{Lock(0), Modify(0, Add, 1), Unlock(0)},
			{Lock(0), Modify(0, Mul, 2), Unlock(0)},
		},
	}
}

// CounterProgram is section 6's deterministic counter example:
//
//	multithreaded {
//	  { xCount.Check(0);  x = x+1;  xCount.Increment(1); }
//	  { xCount.Check(1);  x = x*2;  xCount.Increment(1); }
//	}
func CounterProgram() Program {
	return Program{
		InitVars: []int64{InitialX},
		Threads: [][]Op{
			{Check(0, 0), Modify(0, Add, 1), Inc(0, 1)},
			{Check(0, 1), Modify(0, Mul, 2), Inc(0, 1)},
		},
	}
}

// UnguardedProgram is section 6's erroneous example: both threads check
// level 0, so the operations on x are concurrent.
func UnguardedProgram() Program {
	return Program{
		InitVars: []int64{InitialX},
		Threads: [][]Op{
			{Check(0, 0), Modify(0, Add, 1), Inc(0, 1)},
			{Check(0, 0), Modify(0, Mul, 2), Inc(0, 1)},
		},
	}
}

// UnguardedSplitProgram is UnguardedProgram with the read-modify-write
// split into a load and a store, exposing lost updates in addition to
// order nondeterminism.
func UnguardedSplitProgram() Program {
	return Program{
		InitVars: []int64{InitialX},
		Threads: [][]Op{
			{Check(0, 0), Read(0), Write(0, Add, 1), Inc(0, 1)},
			{Check(0, 0), Read(0), Write(0, Mul, 2), Inc(0, 1)},
		},
	}
}

// DeadlockProgram is a counter program whose sequential execution
// deadlocks (thread 0 checks a level only thread 1 provides, and thread 1
// checks a level only thread 0 provides, each before incrementing):
// multithreaded execution must expose the deadlock too.
func DeadlockProgram() Program {
	return Program{
		Threads: [][]Op{
			{Check(0, 1), Inc(1, 1)},
			{Check(1, 1), Inc(0, 1)},
		},
	}
}

// OrderedAccumulateProgram is the section 5.2 pattern for n threads:
// thread i does Check(i); x = x*2+i; Increment(1). The fold is
// non-commutative, so any order change would change the outcome.
func OrderedAccumulateProgram(n int) Program {
	threads := make([][]Op, n)
	for i := range threads {
		threads[i] = []Op{
			Check(0, int64(i)),
			Modify(0, Mul, 2),
			Modify(0, Add, int64(i)),
			Inc(0, 1),
		}
	}
	return Program{Threads: threads}
}

// LockAccumulateProgram is the same fold guarded by a lock instead: every
// arrival order is reachable, so the outcome set grows with n!.
func LockAccumulateProgram(n int) Program {
	threads := make([][]Op, n)
	for i := range threads {
		threads[i] = []Op{
			Lock(0),
			Modify(0, Mul, 2),
			Modify(0, Add, int64(i)),
			Unlock(0),
		}
	}
	return Program{Threads: threads}
}

// BroadcastProgram is a one-writer two-reader section 5.3 skeleton over
// an "array" of two variables: the writer sets x0 then x1, incrementing
// after each; readers check before reading into their registers and store
// the sum into their own result variables. Deterministic by construction.
func BroadcastProgram() Program {
	return Program{
		Threads: [][]Op{
			{Modify(0, Set, 10), Inc(0, 1), Modify(1, Set, 20), Inc(0, 1)},
			{Check(0, 1), Read(0), Write(2, Add, 0), Check(0, 2), Read(1), Write(3, Add, 0)},
			{Check(0, 2), Read(1), Write(4, Add, 0), Read(0), Write(5, Add, 0)},
		},
	}
}

// SequentialOutcome runs the program on the single schedule that executes
// thread 0 to completion, then thread 1, and so on — "execution ignoring
// the multithreaded keyword" (section 6). It reports the final variables
// and whether that schedule deadlocks (a blocked Check with no one left
// to provide it).
func SequentialOutcome(p Program) (vars []int64, deadlock bool) {
	nv, nc, nl, ns := p.sizes()
	s := &state{
		pcs:      make([]int, len(p.Threads)),
		regs:     make([]int64, len(p.Threads)),
		vars:     make([]int64, nv),
		counters: make([]uint64, nc),
		locks:    make([]bool, nl),
		sems:     make([]int, ns),
	}
	copy(s.vars, p.InitVars)
	for i, v := range p.InitSems {
		s.sems[i] = v
	}
	for t := range p.Threads {
		for s.pcs[t] < len(p.Threads[t]) {
			if !p.enabled(s, t) {
				return s.vars, true
			}
			s = p.step(s, t)
		}
	}
	return s.vars, false
}
