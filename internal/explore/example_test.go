package explore_test

import (
	"fmt"

	"monotonic/internal/explore"
)

// Exhaustively exploring the paper's section 6 lock program shows its two
// outcomes; the counter program has one.
func ExampleExplore() {
	lock := explore.MustExplore(explore.LockProgram())
	counter := explore.MustExplore(explore.CounterProgram())
	fmt.Println("lock:", lock.OutcomeList())
	fmt.Println("counter:", counter.OutcomeList())
	// Output:
	// lock: [x0=7 x0=8]
	// counter: [x0=8]
}

// Programs are written in a tiny op language; deadlocks are found with a
// witness schedule.
func ExampleProgram() {
	p := explore.Program{
		Threads: [][]explore.Op{
			{explore.Check(0, 1), explore.Inc(1, 1)},
			{explore.Check(1, 1), explore.Inc(0, 1)},
		},
	}
	res := explore.MustExplore(p)
	fmt.Println("deadlock:", res.Deadlock)
	// Output:
	// deadlock: true
}
