// Package explore is an exhaustive interleaving explorer for small
// multithreaded programs over shared state: it enumerates every schedule
// of a program written in a tiny abstract operation language (variable
// reads/writes, monotonic-counter Increment/Check, lock Lock/Unlock,
// semaphore P/V) and reports the set of distinct final outcomes and
// whether any schedule deadlocks.
//
// It exists to *prove*, rather than merely observe, the paper's section 6
// claims on the programs given there:
//
//   - the lock program {x=x+1} || {x=x*2} has two outcomes (7 and 8);
//   - the counter program Check(0);x=x+1;Inc(1) || Check(1);x=x*2;Inc(1)
//     has exactly one outcome (8) and no deadlocks on any schedule;
//   - the unguarded counter program (both threads Check(0)) is
//     nondeterministic, and with non-atomic read/modify/write it also
//     exhibits lost updates;
//   - a counter program whose sequential execution deadlocks can deadlock
//     multithreaded, while one whose sequential execution succeeds never
//     deadlocks (checked per program by exploring all schedules).
//
// States are memoized, so exploration cost is the size of the state
// graph, not the number of schedules.
package explore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OpKind enumerates the abstract operations.
type OpKind int

// The operation kinds.
const (
	OpModify OpKind = iota // atomic read-modify-write of a variable
	OpRead                 // load variable into the thread's register
	OpWrite                // store f(register) to a variable
	OpFold                 // var = var*A + register (order-sensitive accumulation)
	OpInc                  // counter Increment(A)
	OpCheck                // counter Check(A): enabled iff value >= A
	OpLock                 // acquire lock: enabled iff free
	OpUnlock               // release lock
	OpSemP                 // semaphore P: enabled iff value > 0
	OpSemV                 // semaphore V
)

// ArithKind enumerates the arithmetic applied by OpModify / OpWrite.
type ArithKind int

// The arithmetic kinds: f(v) = v+K, v*K, or K.
const (
	Add ArithKind = iota
	Mul
	Set
)

func (a ArithKind) apply(v, k int64) int64 {
	switch a {
	case Add:
		return v + k
	case Mul:
		return v * k
	default:
		return k
	}
}

// Op is one abstract operation. Target indexes the variable, counter,
// lock, or semaphore the kind addresses; A is the amount, level, or
// arithmetic operand; F is the arithmetic for OpModify and OpWrite.
type Op struct {
	Kind   OpKind
	Target int
	F      ArithKind
	A      int64
}

// Convenience constructors, so programs read like the paper's listings.

// Modify returns an atomic x = f(x) operation.
func Modify(v int, f ArithKind, k int64) Op { return Op{Kind: OpModify, Target: v, F: f, A: k} }

// Read returns reg = x.
func Read(v int) Op { return Op{Kind: OpRead, Target: v} }

// Write returns x = f(reg).
func Write(v int, f ArithKind, k int64) Op { return Op{Kind: OpWrite, Target: v, F: f, A: k} }

// Fold returns x = x*base + reg, an order-sensitive accumulation that
// makes the history of values a thread observed visible in the final
// state (useful to expose races the final data values would mask).
func Fold(v int, base int64) Op { return Op{Kind: OpFold, Target: v, A: base} }

// Inc returns counter.Increment(amount).
func Inc(c int, amount int64) Op { return Op{Kind: OpInc, Target: c, A: amount} }

// Check returns counter.Check(level).
func Check(c int, level int64) Op { return Op{Kind: OpCheck, Target: c, A: level} }

// Lock returns lock.Lock().
func Lock(l int) Op { return Op{Kind: OpLock, Target: l} }

// Unlock returns lock.Unlock().
func Unlock(l int) Op { return Op{Kind: OpUnlock, Target: l} }

// P returns semaphore.P().
func P(s int) Op { return Op{Kind: OpSemP, Target: s} }

// V returns semaphore.V().
func V(s int) Op { return Op{Kind: OpSemV, Target: s} }

// Program is a set of threads over shared variables, counters, locks, and
// semaphores. Sizes are inferred from the operations; InitVars and
// InitSems may be shorter than the inferred counts (missing entries are
// zero).
type Program struct {
	Threads  [][]Op
	InitVars []int64
	InitSems []int
}

// state is one node of the interleaving graph.
type state struct {
	pcs      []int
	regs     []int64
	vars     []int64
	counters []uint64
	locks    []bool
	sems     []int
}

func (s *state) clone() *state {
	return &state{
		pcs:      append([]int(nil), s.pcs...),
		regs:     append([]int64(nil), s.regs...),
		vars:     append([]int64(nil), s.vars...),
		counters: append([]uint64(nil), s.counters...),
		locks:    append([]bool(nil), s.locks...),
		sems:     append([]int(nil), s.sems...),
	}
}

func (s *state) key() string {
	var b strings.Builder
	for _, p := range s.pcs {
		b.WriteString(strconv.Itoa(p))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, r := range s.regs {
		b.WriteString(strconv.FormatInt(r, 10))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, v := range s.vars {
		b.WriteString(strconv.FormatInt(v, 10))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, c := range s.counters {
		b.WriteString(strconv.FormatUint(c, 10))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, l := range s.locks {
		if l {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte('|')
	for _, v := range s.sems {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	return b.String()
}

// Result summarizes an exhaustive exploration.
type Result struct {
	// Outcomes maps the canonical rendering of each reachable final
	// variable assignment to its values.
	Outcomes map[string][]int64
	// Witnesses maps each outcome to one schedule (thread index per
	// step) that produces it. Because memoization prunes revisited
	// states, a witness is the prefix actually walked when the outcome
	// was first reached; it is always a valid complete schedule for
	// that outcome.
	Witnesses map[string][]int
	// Deadlock reports whether any schedule reaches a state where no
	// thread can step but some thread is unfinished.
	Deadlock bool
	// DeadlockTrace is one schedule (thread index per step) reaching a
	// deadlock, when Deadlock is true.
	DeadlockTrace []int
	// States is the number of distinct states visited.
	States int
}

// OutcomeList returns the distinct outcomes sorted by rendering, for
// stable reporting.
func (r Result) OutcomeList() []string {
	out := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ErrTooManyStates is returned when exploration exceeds the state limit.
var ErrTooManyStates = errors.New("explore: state limit exceeded")

// sizes scans the program for the number of variables, counters, locks,
// and semaphores.
func (p *Program) sizes() (vars, counters, locks, sems int) {
	need := func(cur *int, idx int) {
		if idx+1 > *cur {
			*cur = idx + 1
		}
	}
	vars = len(p.InitVars)
	sems = len(p.InitSems)
	for _, th := range p.Threads {
		for _, op := range th {
			switch op.Kind {
			case OpModify, OpRead, OpWrite, OpFold:
				need(&vars, op.Target)
			case OpInc, OpCheck:
				need(&counters, op.Target)
			case OpLock, OpUnlock:
				need(&locks, op.Target)
			case OpSemP, OpSemV:
				need(&sems, op.Target)
			}
		}
	}
	return
}

// enabled reports whether thread t can take its next step in s.
func (p *Program) enabled(s *state, t int) bool {
	pc := s.pcs[t]
	if pc >= len(p.Threads[t]) {
		return false
	}
	op := p.Threads[t][pc]
	switch op.Kind {
	case OpCheck:
		return s.counters[op.Target] >= uint64(op.A)
	case OpLock:
		return !s.locks[op.Target]
	case OpSemP:
		return s.sems[op.Target] > 0
	default:
		return true
	}
}

// step applies thread t's next op to a copy of s.
func (p *Program) step(s *state, t int) *state {
	n := s.clone()
	op := p.Threads[t][n.pcs[t]]
	switch op.Kind {
	case OpModify:
		n.vars[op.Target] = op.F.apply(n.vars[op.Target], op.A)
	case OpRead:
		n.regs[t] = n.vars[op.Target]
	case OpWrite:
		n.vars[op.Target] = op.F.apply(n.regs[t], op.A)
	case OpFold:
		n.vars[op.Target] = n.vars[op.Target]*op.A + n.regs[t]
	case OpInc:
		n.counters[op.Target] += uint64(op.A)
	case OpCheck:
		// enabledness already verified; no state change
	case OpLock:
		n.locks[op.Target] = true
	case OpUnlock:
		n.locks[op.Target] = false
	case OpSemP:
		n.sems[op.Target]--
	case OpSemV:
		n.sems[op.Target]++
	}
	n.pcs[t]++
	return n
}

// Explore enumerates every schedule of p, with memoization, up to
// maxStates distinct states (0 means a default of 1<<20).
func Explore(p Program, maxStates int) (Result, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	nv, nc, nl, ns := p.sizes()
	init := &state{
		pcs:      make([]int, len(p.Threads)),
		regs:     make([]int64, len(p.Threads)),
		vars:     make([]int64, nv),
		counters: make([]uint64, nc),
		locks:    make([]bool, nl),
		sems:     make([]int, ns),
	}
	copy(init.vars, p.InitVars)
	for i, v := range p.InitSems {
		init.sems[i] = v
	}

	res := Result{
		Outcomes:  make(map[string][]int64),
		Witnesses: make(map[string][]int),
	}
	visited := make(map[string]bool)
	var trace []int
	var limitErr error

	var dfs func(s *state)
	dfs = func(s *state) {
		if limitErr != nil {
			return
		}
		k := s.key()
		if visited[k] {
			return
		}
		visited[k] = true
		res.States++
		if res.States > maxStates {
			limitErr = ErrTooManyStates
			return
		}
		anyEnabled := false
		allDone := true
		for t := range p.Threads {
			if s.pcs[t] < len(p.Threads[t]) {
				allDone = false
			}
			if p.enabled(s, t) {
				anyEnabled = true
			}
		}
		if allDone {
			key := renderVars(s.vars)
			if _, seen := res.Outcomes[key]; !seen {
				res.Outcomes[key] = append([]int64(nil), s.vars...)
				res.Witnesses[key] = append([]int(nil), trace...)
			}
			return
		}
		if !anyEnabled {
			if !res.Deadlock {
				res.Deadlock = true
				res.DeadlockTrace = append([]int(nil), trace...)
			}
			return
		}
		for t := range p.Threads {
			if p.enabled(s, t) {
				trace = append(trace, t)
				dfs(p.step(s, t))
				trace = trace[:len(trace)-1]
			}
		}
	}
	dfs(init)
	if limitErr != nil {
		return res, limitErr
	}
	return res, nil
}

// Replay executes p under a fixed schedule (thread index per step) and
// returns the final variables. ok is false if the schedule is invalid —
// it names a finished/blocked thread or leaves the program unfinished.
func Replay(p Program, schedule []int) (vars []int64, ok bool) {
	nv, nc, nl, ns := p.sizes()
	s := &state{
		pcs:      make([]int, len(p.Threads)),
		regs:     make([]int64, len(p.Threads)),
		vars:     make([]int64, nv),
		counters: make([]uint64, nc),
		locks:    make([]bool, nl),
		sems:     make([]int, ns),
	}
	copy(s.vars, p.InitVars)
	for i, v := range p.InitSems {
		s.sems[i] = v
	}
	for _, t := range schedule {
		if t < 0 || t >= len(p.Threads) || !p.enabled(s, t) {
			return nil, false
		}
		s = p.step(s, t)
	}
	for t := range p.Threads {
		if s.pcs[t] < len(p.Threads[t]) {
			return nil, false
		}
	}
	return s.vars, true
}

func renderVars(vars []int64) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = fmt.Sprintf("x%d=%d", i, v)
	}
	return strings.Join(parts, " ")
}

// MustExplore is Explore with a panic on error, for tests and examples
// whose programs are known to be small.
func MustExplore(p Program) Result {
	res, err := Explore(p, 0)
	if err != nil {
		panic(err)
	}
	return res
}
