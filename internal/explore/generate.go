package explore

import "monotonic/internal/workload"

// RandomGuardedProgram generates a random program that satisfies the
// section 6 guard condition by construction, so exhaustive exploration
// must find exactly one outcome and no deadlock. The construction builds
// a random dependency DAG over "tasks" and realizes it with counters:
//
//   - Each task i has its own counter i and writes its own variable i.
//   - Task i first Checks, for every dependency j < i, counter j at
//     level 1; then reads one dependency's variable (folding it into its
//     own), writes its variable, and finally Increments its counter.
//   - Tasks are dealt onto `threads` threads in contiguous index blocks,
//     so dependencies always point to the same or an earlier thread and
//     the sequential schedule (thread 0 to completion, then thread 1, ...)
//     respects the DAG and never deadlocks — by the section 6 theorem,
//     every schedule then produces the sequential outcome.
//
// Returned programs are small (tasks <= 6, threads <= 3 recommended) so
// exploration stays cheap.
func RandomGuardedProgram(seed uint64, tasks, threads int) Program {
	if tasks < 1 {
		tasks = 1
	}
	if threads < 1 {
		threads = 1
	}
	rng := workload.NewRNG(seed)
	p := Program{InitVars: make([]int64, tasks)}
	for i := range p.InitVars {
		p.InitVars[i] = int64(i + 1)
	}
	threadOps := make([][]Op, threads)
	for i := 0; i < tasks; i++ {
		t := i * threads / tasks
		var deps []int
		for j := 0; j < i; j++ {
			if rng.Intn(3) == 0 {
				deps = append(deps, j)
			}
		}
		for _, j := range deps {
			threadOps[t] = append(threadOps[t], Check(j, 1))
		}
		if len(deps) > 0 {
			src := deps[rng.Intn(len(deps))]
			threadOps[t] = append(threadOps[t],
				Read(src),
				Fold(i, 10),
			)
		} else {
			threadOps[t] = append(threadOps[t], Modify(i, Mul, 3))
		}
		threadOps[t] = append(threadOps[t], Inc(i, 1))
	}
	p.Threads = threadOps
	return p
}

// RandomUnguardedProgram is RandomGuardedProgram with every Check
// stripped out: tasks on different threads race freely on their shared
// reads, so many seeds produce multiple outcomes (though some DAGs are
// insensitive by luck — callers should aggregate over seeds).
func RandomUnguardedProgram(seed uint64, tasks, threads int) Program {
	p := RandomGuardedProgram(seed, tasks, threads)
	for t, ops := range p.Threads {
		var kept []Op
		for _, op := range ops {
			if op.Kind != OpCheck {
				kept = append(kept, op)
			}
		}
		p.Threads[t] = kept
	}
	return p
}
