package vclock

import (
	"testing"
	"testing/quick"
)

func TestTickAndGet(t *testing.T) {
	v := New(3)
	v.Tick(1)
	v.Tick(1)
	v.Tick(2)
	if v.Get(0) != 0 || v.Get(1) != 2 || v.Get(2) != 1 {
		t.Fatalf("v = %v", v)
	}
	if v.Get(99) != 0 {
		t.Fatal("out-of-range component not zero")
	}
}

func TestJoin(t *testing.T) {
	a := VC{3, 0, 5}
	b := VC{1, 4}
	a.Join(b)
	if !a.Equal(VC{3, 4, 5}) {
		t.Fatalf("join = %v", a)
	}
	// Join growing the receiver.
	c := VC{1}
	c.Join(VC{0, 0, 7})
	if !c.Equal(VC{1, 0, 7}) {
		t.Fatalf("grown join = %v", c)
	}
}

func TestHappensBefore(t *testing.T) {
	a := VC{1, 2}
	b := VC{1, 3}
	if !a.HappensBefore(b) || b.HappensBefore(a) {
		t.Fatal("ordering wrong for comparable clocks")
	}
	if a.HappensBefore(a) {
		t.Fatal("HappensBefore must be irreflexive")
	}
	c := VC{2, 1}
	if a.HappensBefore(c) || c.HappensBefore(a) {
		t.Fatal("incomparable clocks reported ordered")
	}
	if !a.Concurrent(c) {
		t.Fatal("incomparable clocks not concurrent")
	}
	if a.Concurrent(b) {
		t.Fatal("ordered clocks reported concurrent")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if !(VC{1, 0}).Equal(VC{1}) {
		t.Fatal("trailing zeros must not affect equality")
	}
	if (VC{1, 2}).Equal(VC{1}) {
		t.Fatal("distinct clocks equal")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := VC{1, 2}
	b := a.Clone()
	b.Tick(0)
	if a[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 0, 2}).String(); got != "<1,0,2>" {
		t.Fatalf("String = %q", got)
	}
}

// TestQuickPartialOrder: HappensBefore is transitive and antisymmetric,
// and exactly one of {a<b, b<a, a=b, concurrent} holds.
func TestQuickPartialOrder(t *testing.T) {
	mk := func(x, y, z uint8) VC { return VC{uint64(x % 4), uint64(y % 4), uint64(z % 4)} }
	f := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 uint8) bool {
		a, b, c := mk(a1, a2, a3), mk(b1, b2, b3), mk(c1, c2, c3)
		// Antisymmetry.
		if a.HappensBefore(b) && b.HappensBefore(a) {
			return false
		}
		// Transitivity.
		if a.HappensBefore(b) && b.HappensBefore(c) && !a.HappensBefore(c) {
			return false
		}
		// Trichotomy-with-concurrency.
		states := 0
		if a.HappensBefore(b) {
			states++
		}
		if b.HappensBefore(a) {
			states++
		}
		if a.Equal(b) {
			states++
		}
		if a.Concurrent(b) {
			states++
		}
		return states == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJoinIsLUB: the join is an upper bound of both operands and is
// monotone.
func TestQuickJoinIsLUB(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		a := VC{uint64(a1 % 8), uint64(a2 % 8)}
		b := VC{uint64(b1 % 8), uint64(b2 % 8)}
		j := a.Clone()
		j.Join(b)
		// Upper bound: a <= j and b <= j (as "not strictly after").
		for i := 0; i < 2; i++ {
			if a.Get(i) > j.Get(i) || b.Get(i) > j.Get(i) {
				return false
			}
		}
		// Least: each component is exactly the max.
		for i := 0; i < 2; i++ {
			max := a.Get(i)
			if b.Get(i) > max {
				max = b.Get(i)
			}
			if j.Get(i) != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
