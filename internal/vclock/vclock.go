// Package vclock implements vector clocks, the happens-before substrate
// for the determinacy checker of internal/detect (the paper's section 6
// condition that every pair of conflicting shared-variable accesses be
// separated by a transitive chain of counter operations).
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock: VC[t] is the number of events thread t has
// performed that are known to the clock's owner. The zero value is a
// usable all-zeros clock.
type VC []uint64

// New returns a clock for n threads, all components zero.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy.
func (v VC) Clone() VC { return append(VC(nil), v...) }

// Tick advances thread t's own component.
func (v VC) Tick(t int) { v[t]++ }

// Get returns component t, treating missing components as zero.
func (v VC) Get(t int) uint64 {
	if t < len(v) {
		return v[t]
	}
	return 0
}

// Join folds other into v: v = pointwise max(v, other). Clocks may have
// different lengths; v grows as needed.
func (v *VC) Join(other VC) {
	for len(*v) < len(other) {
		*v = append(*v, 0)
	}
	for i, x := range other {
		if x > (*v)[i] {
			(*v)[i] = x
		}
	}
}

// HappensBefore reports whether v <= other pointwise with v != other:
// every event known to v is known to other, and other knows more. The
// relation is a strict partial order.
func (v VC) HappensBefore(other VC) bool {
	le := true
	lt := false
	n := len(v)
	if len(other) > n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		a, b := v.Get(i), other.Get(i)
		if a > b {
			le = false
			break
		}
		if a < b {
			lt = true
		}
	}
	return le && lt
}

// Concurrent reports whether neither clock happens-before the other and
// they are not equal — the two events race.
func (v VC) Concurrent(other VC) bool {
	return !v.HappensBefore(other) && !other.HappensBefore(v) && !v.Equal(other)
}

// Equal reports pointwise equality (missing components are zero).
func (v VC) Equal(other VC) bool {
	n := len(v)
	if len(other) > n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if v.Get(i) != other.Get(i) {
			return false
		}
	}
	return true
}

// String renders the clock as "<a,b,c>".
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "<" + strings.Join(parts, ",") + ">"
}
