package core

import (
	"sync"
	"testing"
	"time"
)

// Regression tests for the Increment hot-path fixes: ChanCounter must
// not scan its gate map when the value cannot have satisfied anything,
// and SpinCounter's probe budget must be tunable while checks are in
// flight (a data race before it became atomic).

// chanSweeps reads the gate-scan instrumentation counter.
func chanSweeps(c *ChanCounter) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweeps
}

// TestChanIncrementZeroSkipsGates pins the fast-outs: Increment(0)
// leaves the value unchanged so it must not visit gates at all, and a
// real increment with no live gates must not start a scan either.
func TestChanIncrementZeroSkipsGates(t *testing.T) {
	c := NewChan()
	c.Increment(4) // no gates yet: no scan
	if got := chanSweeps(c); got != 0 {
		t.Fatalf("sweeps = %d after increment with empty gate map, want 0", got)
	}

	released := make(chan struct{})
	go func() {
		c.Check(10)
		close(released)
	}()
	deadline := time.After(5 * time.Second)
	for c.LiveLevels() != 1 {
		select {
		case <-deadline:
			t.Fatal("waiter never parked")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	c.Increment(0) // value unchanged: must not visit the live gate
	if got := chanSweeps(c); got != 0 {
		t.Fatalf("sweeps = %d after Increment(0) with a live gate, want 0 (gates visited)", got)
	}
	c.Increment(3) // value moves with a gate live: scan expected
	if got := chanSweeps(c); got != 1 {
		t.Fatalf("sweeps = %d after real increment with a live gate, want 1", got)
	}
	c.Increment(3) // reaches 10, closes the gate
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never released")
	}
	sweepsBefore := chanSweeps(c)
	c.Increment(5) // map empty again: no scan
	if got := chanSweeps(c); got != sweepsBefore {
		t.Fatalf("sweeps went %d -> %d on an increment with an empty gate map", sweepsBefore, got)
	}
	if got := c.Value(); got != 15 {
		t.Fatalf("Value() = %d, want 15", got)
	}
}

// TestSpinSetSpinsDuringChecks tunes the spin budget while checks run on
// other goroutines. Before the budget became atomic this was a data race
// on the Spins field (caught only under -race, which CI runs on this
// package); the test also pins that a tiny budget still falls through to
// the blocking slow path correctly.
func TestSpinSetSpinsDuringChecks(t *testing.T) {
	c := NewSpin()
	var wg sync.WaitGroup
	const checkers = 4
	for i := 0; i < checkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for lv := uint64(1); lv <= 200; lv++ {
				c.Check(lv)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.SetSpins(i%7 - 1) // sweeps -1 (restore default) through 5
			c.Increment(1)
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("checkers hung while the spin budget was being tuned")
	}
	if got := c.Value(); got != 200 {
		t.Fatalf("Value() = %d, want 200", got)
	}
}
