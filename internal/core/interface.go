package core

import (
	"context"
	"time"
)

// Interface is the behaviour shared by every counter implementation in this
// package. The two fundamental operations are those defined in section 2 of
// the paper; the remaining methods are practical extensions that preserve
// the monotonicity guarantees.
type Interface interface {
	// Increment atomically increases the counter's value by amount and
	// wakes every goroutine suspended on a level less than or equal to
	// the new value. Increment(0) is a no-op. Increment panics if the
	// addition would overflow the counter's uint64 value, since a
	// wrapped value would violate monotonicity.
	Increment(amount uint64)

	// Check suspends the calling goroutine until the counter's value is
	// greater than or equal to level. If the value already satisfies
	// level, Check returns immediately.
	Check(level uint64)

	// CheckContext behaves like Check but additionally returns early
	// with ctx.Err() if the context is cancelled first. This is an
	// extension beyond the paper (which targets systems without
	// cancellation); a cancelled CheckContext has no effect on the
	// counter.
	//
	// A satisfied level beats a cancelled context: if value >= level
	// when the call is made — even with an already-expired context —
	// CheckContext returns nil, preserving "once Check(level) would
	// pass, it passes forever". Implementations suspend by selecting
	// on a per-level channel and never spawn a goroutine on behalf of
	// the call.
	CheckContext(ctx context.Context, level uint64) error

	// Reset sets the value back to zero so the counter can be reused
	// between algorithm phases (paper, section 2). Reset must not be
	// called concurrently with any other operation on the counter;
	// implementations panic if goroutines are still waiting.
	Reset()

	// Value returns the current value. It exists for inspection,
	// tracing, and testing only: per section 2 of the paper, programs
	// must not base synchronization decisions on an instantaneous value,
	// which is why the public counter package does not re-export it.
	Value() uint64
}

// WaitTimeout suspends until c's value reaches level or the timeout
// elapses, reporting whether the level was reached. It is a convenience
// wrapper over CheckContext and shares its caveats; in particular a
// satisfied level beats an expired deadline, so WaitTimeout(c, level, 0)
// reports true whenever the value already satisfies level.
func WaitTimeout(c Interface, level uint64, d time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.CheckContext(ctx, level) == nil
}

// checkedAdd returns v+amount, panicking on uint64 overflow. Overflow would
// wrap the value downward and silently break monotonicity, so it is treated
// as a programming error.
func checkedAdd(v, amount uint64) uint64 {
	s := v + amount
	if s < v {
		panic("core: counter value overflow")
	}
	return s
}
