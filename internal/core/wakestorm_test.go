package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWakeStormExactResumes is the out-of-lock wake path's selectivity
// guard: with a large crowd parked on one level and a second crowd on
// strictly higher levels, a single big Increment must resume exactly the
// first crowd — every one of them, none of the others — and the storm
// must leave no goroutine behind. Half the waiters park through Check
// (condvar path) and half through CheckContext with a live context
// (ready-channel path), so one batched broadcast exercises both wake
// mechanisms at once. Runs against every registered implementation;
// under -race this doubles as the happens-before proof for the
// release-then-wake protocol. runWakeStormExactResumes is the body so
// the GOMAXPROCS=4 wrapper (gomaxprocs_test.go) can rerun it with true
// preemption among the Ps.
func TestWakeStormExactResumes(t *testing.T) { runWakeStormExactResumes(t) }

func runWakeStormExactResumes(t *testing.T) {
	const (
		low      = 96 // waiters at the satisfied level
		high     = 48 // waiters spread across higher levels
		lowLevel = 100
	)
	baseline := runtime.NumGoroutine()
	for _, impl := range Registry() {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			c := NewImpl(impl)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			var resumedLow, resumedHigh atomic.Int64
			var wgLow, wgHigh sync.WaitGroup
			started := make(chan struct{}, low+high)

			park := func(level uint64, useCtx bool, resumed *atomic.Int64) {
				started <- struct{}{}
				if useCtx {
					if err := c.CheckContext(ctx, level); err != nil {
						t.Errorf("CheckContext(%d) = %v, want nil", level, err)
					}
				} else {
					c.Check(level)
				}
				resumed.Add(1)
			}
			for i := 0; i < low; i++ {
				i := i
				wgLow.Add(1)
				go func() { defer wgLow.Done(); park(lowLevel, i%2 == 0, &resumedLow) }()
			}
			for i := 0; i < high; i++ {
				i := i
				wgHigh.Add(1)
				level := uint64(lowLevel + 1 + i%7) // a few distinct higher levels
				go func() { defer wgHigh.Done(); park(level, i%2 == 0, &resumedHigh) }()
			}
			for i := 0; i < low+high; i++ {
				<-started
			}
			time.Sleep(20 * time.Millisecond) // let the crowd actually suspend

			c.Increment(lowLevel) // one increment; satisfies the low level exactly
			wgLow.Wait()
			if got := resumedLow.Load(); got != low {
				t.Fatalf("low-level resumes = %d, want %d", got, low)
			}
			// The higher levels must still be parked: none of their levels
			// is satisfied, no matter how the implementation broadcast.
			time.Sleep(20 * time.Millisecond)
			if got := resumedHigh.Load(); got != 0 {
				t.Fatalf("%d higher-level waiters resumed below their level", got)
			}
			c.Increment(8) // covers lowLevel+1..lowLevel+7
			wgHigh.Wait()
			if got := resumedHigh.Load(); got != high {
				t.Fatalf("high-level resumes = %d, want %d", got, high)
			}
			if got, want := c.Value(), uint64(lowLevel+8); got != want {
				t.Fatalf("Value() = %d, want %d", got, want)
			}
		})
	}
	// The storms spawned low+high goroutines per implementation; all of
	// them must be gone (no watcher goroutines, no stuck waiters).
	deadline := time.After(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestInspectShowsDrainingSatisfiedNodes pins the Figure 2 (e)-(g)
// shape on the reference counter after the out-of-lock wake refactor:
// a satisfied node leaves the index immediately, but it must stay
// visible in snapshots — set, with its live count — until the last of
// its waiters has resumed. The simulator holds woken threads between
// Increment and Resume, which is exactly the window in which the
// draining record is observable.
func TestInspectShowsDrainingSatisfiedNodes(t *testing.T) {
	s := NewSim()
	s.Check(5)
	s.Check(5)
	s.Check(9)

	s.Increment(7)
	// (e) Level 5 is satisfied and unlinked from the live list, but both
	// of its waiters are still draining: the snapshot must show it set
	// with count=2, ahead of the still-live level-9 node.
	if got, want := s.Snapshot().String(),
		"value=7 waiting=[{level=5 count=2 set} {level=9 count=1 not-set}]"; got != want {
		t.Fatalf("after Increment:\n got %s\nwant %s", got, want)
	}

	if !s.Resume(5) {
		t.Fatal("Resume(5) found no draining waiter")
	}
	// (f) One waiter resumed; the node drains with count=1, still visible.
	if got, want := s.Snapshot().String(),
		"value=7 waiting=[{level=5 count=1 set} {level=9 count=1 not-set}]"; got != want {
		t.Fatalf("after first Resume:\n got %s\nwant %s", got, want)
	}

	if !s.Resume(5) {
		t.Fatal("second Resume(5) found no draining waiter")
	}
	// (g) The last waiter retired the node: it vanishes from snapshots.
	if got, want := s.Snapshot().String(),
		"value=7 waiting=[{level=9 count=1 not-set}]"; got != want {
		t.Fatalf("after last Resume:\n got %s\nwant %s", got, want)
	}
	if s.Resume(5) {
		t.Fatal("Resume(5) succeeded with no waiters left at level 5")
	}

	// No thread ever waits at a level twice in this trace, so the level-9
	// waiter drains the same way once satisfied.
	s.Increment(2)
	if got, want := s.Snapshot().String(),
		"value=9 waiting=[{level=9 count=1 set}]"; got != want {
		t.Fatalf("after second Increment:\n got %s\nwant %s", got, want)
	}
	if !s.Resume(9) {
		t.Fatal("Resume(9) found no draining waiter")
	}
	if got, want := s.Snapshot().String(), "value=9 waiting=[]"; got != want {
		t.Fatalf("after final Resume:\n got %s\nwant %s", got, want)
	}
}
