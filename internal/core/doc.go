// Package core implements monotonic counters, the thread-synchronization
// mechanism introduced by Thornley and Chandy ("Monotonic Counters: A New
// Mechanism for Thread Synchronization", IPPS 2000).
//
// A monotonic counter is an object with a nonnegative integer value that
// starts at zero and only ever increases. It supports two fundamental
// operations:
//
//   - Increment(amount): atomically add amount to the value, waking every
//     goroutine suspended on a level that the new value now satisfies.
//   - Check(level): suspend the calling goroutine until value >= level.
//
// There is deliberately no Decrement and no non-blocking probe of the
// value: because the value is monotonically increasing, a Check can never
// miss an Increment, so counter synchronization is free of the races that
// condition variables and semaphores admit. Programs whose shared variables
// are guarded by counter operations are deterministic, and (if their
// sequential execution does not deadlock) their multithreaded execution is
// deadlock-free and equivalent to sequential execution (paper, section 6).
//
// The package provides several interchangeable implementations of the
// Interface:
//
//   - Counter: the paper's reference design (section 7) — a mutex plus an
//     ordered list of per-level waiter nodes, each node holding its own
//     condition variable. Storage and wake time are proportional to the
//     number of *distinct levels* with waiters, not to the number of
//     waiting goroutines.
//   - HeapCounter: the same waiter-node design with a binary min-heap in
//     place of the sorted linked list (O(log L) insertion).
//   - ChanCounter: per-level nodes whose broadcast is a close(chan), the
//     idiomatic Go translation; supports context cancellation.
//   - BroadcastCounter: a deliberately naive baseline with a single
//     condition variable and a full broadcast on every increment (the
//     thundering-herd design the paper's cost analysis argues against).
//   - AtomicCounter: the list design with a lock-free fast path for Check
//     calls whose level is already satisfied.
//
// All implementations share identical blocking semantics; the test suite
// checks them against a single sequential model. The condition-variable
// based implementations are built on one shared waitlist engine whose
// per-level nodes pair a condition variable with a close-on-satisfy
// channel, so context cancellation (CheckContext, WaitTimeout — both
// extensions beyond the paper) is a channel select: no implementation
// spawns a goroutine on behalf of a caller, a satisfied level always
// beats a cancelled context, and the last cancelled waiter on a level
// reclaims the level's node.
package core
