package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file is the shared blocking engine behind the condition-variable
// based implementations (Counter, AtomicCounter, HeapCounter,
// BroadcastCounter, and ShardedCounter's slow path). Each of them used
// to carry its own copy of the join/wait/leave slow path, and each copy
// turned context cancellation into a wake-up by spawning a watcher
// goroutine per CheckContext call. The engine removes both: the slow
// path lives here once, and every per-level node carries a
// close-on-satisfy channel alongside its condition variable, so
// CheckContext can select on cancellation directly — no goroutine is
// ever spawned on behalf of a caller.
//
// Division of labour: the engine owns the waiter accounting and the
// suspend/wake protocol; the implementation owns the value and the index
// that organizes live nodes by level (sorted list, min-heap, or the
// degenerate wake-everyone node of the naive baseline). That split is
// what lets the implementations keep their distinguishing
// data-structure behaviour while sharing one cancellation-correct slow
// path.
//
// Locking: two tiers, never nested.
//
//   - The engine mutex (waitlist.mu) guards the implementation's value,
//     the index, node creation/linking, and the drain-side record of
//     satisfied nodes. It is held only for pointer surgery — never
//     across a broadcast or a channel close.
//   - Each node's wake lock (waitNode.mu) guards that level's condition
//     variable, its sleeper count, and its ready channel. Waiters on
//     level L contend only with each other — and, since the satisfied
//     drain is an atomic decrement, usually not at all — never with
//     incrementers, joiners, or waiters on other levels.
//
// An Increment therefore does its wake-ups out of lock: it unlinks the
// satisfied levels from the index and records them as draining under
// the engine mutex, releases it, and only then closes ready channels
// and broadcasts (wakeBatch). N woken waiters resume without a single
// engine-mutex handoff; exactly one of them (the last to drain) takes
// the engine mutex once to retire the node.

// waitNode is one suspension queue: all goroutines waiting for the same
// level. It extends the four-field structure of the paper's Figure 2
// (level, waiter count, condition with its "set" flag, link) with a
// ready channel that the wake path closes, giving CheckContext a
// selectable wake-up. Check waiters sleep on cond; CheckContext waiters
// sleep in a select on ready; wakeBatch wakes both.
type waitNode struct {
	level uint64
	// count is the number of registered waiters. It rises only under
	// the engine mutex (join) and falls atomically (drain), so the
	// engine mutex sees a stable zero: once zero with no index link,
	// the node is retired.
	count atomic.Int64
	// set flips false→true exactly once, under the engine mutex, at the
	// moment the node leaves the index for the draining record. Readers
	// check it lock-free (Load synchronizes with the Store).
	set atomic.Bool
	// drained marks the node's cleanup as done; guarded by the engine
	// mutex. It makes the last-waiter retirement idempotent when a
	// level is abandoned, re-joined, and abandoned again concurrently.
	drained bool
	// drainIdx is the node's slot in the waitlist's draining record,
	// valid while set; guarded by the engine mutex. It makes retiring a
	// draining node O(1) even when one increment satisfied thousands of
	// levels.
	drainIdx int

	// mu is the per-level wake lock: it guards cond, sleepers, and
	// ready, and is the lock condvar sleepers park on (cond.L == &mu).
	// It is never acquired with the engine mutex held.
	mu       sync.Mutex
	cond     sync.Cond
	sleepers int // goroutines inside cond.Wait, so wakeBatch broadcasts only when someone listens
	// ready is closed by wakeBatch and selected on by waitCtx. It is
	// allocated lazily by the first cancellable waiter, so nodes used
	// only by plain Check stay close to the paper's four fields.
	ready chan struct{}

	// hooks is the chain of armed sentinel hooks (sentinel.go) watching
	// this level, guarded by mu like the rest of the wake-side state.
	// wakeBatch detaches the chain under mu and invokes the hooks only
	// after releasing it, so hooks — like wake-ups — never run under the
	// engine mutex or a wake lock, and the two-tier "never nested"
	// locking invariant above is unchanged by their existence.
	hooks *sentinelHook

	// home is the stripe that owns this node when it was created by a
	// striped level index (stripes.go), nil for engine-indexed nodes.
	// Immutable after creation; drain dispatches on it so stripe-owned
	// nodes retire under their stripe's mutex, not the engine mutex.
	home *stripe

	next *waitNode // used by list-shaped indexes only
}

// levelIndex is the per-implementation structure organizing waitNodes by
// level. All methods are called with the engine mutex held.
type levelIndex interface {
	// acquire returns the live (not-yet-satisfied) node for level and
	// whether this call created it, creating and indexing a new node
	// with newWaitNode if none exists. A single operation rather than
	// lookup-then-add so list-shaped indexes find-or-splice in one
	// walk.
	acquire(w *waitlist, level uint64) (n *waitNode, created bool)
	// drop is called when a never-satisfied node's last waiter leaves;
	// the index removes whatever references to n it still holds. This
	// is the cancellation path reclaiming an abandoned level
	// (satisfied nodes leave the index through the wake path instead).
	drop(n *waitNode)
}

// newWaitNode returns a node whose condition variable sleeps on its own
// wake lock, for levelIndex implementations to use inside acquire.
func newWaitNode(level uint64) *waitNode {
	n := &waitNode{level: level}
	n.cond.L = &n.mu
	return n
}

// waitlist is the engine. The zero value is ready to use; the index is
// passed into each call rather than stored so that zero-value counters
// need no constructor.
type waitlist struct {
	mu sync.Mutex
	// draining holds satisfied nodes whose waiters have not all resumed
	// yet, ascending by level (satisfied levels only grow). Guarded by
	// mu. This is what keeps a mid-drain Figure 2 snapshot accurate
	// after the node has left the index. Retired nodes leave nil slots
	// (drainLive counts the rest) so retirement never shifts the slice;
	// the record resets to empty when the last drainer leaves.
	draining  []*waitNode
	drainLive int

	// stats is the unified cost-model collector shared by every
	// engine-based implementation (see Stats in stats.go).
	stats engineStats
	// probe is the pluggable event hook; nil means disabled. Stored as
	// a pointer so enable/disable is one atomic store and the disabled
	// check is one atomic load. Never invoked under w.mu or a node's
	// wake lock.
	probe atomic.Pointer[func(Event)]

	// lockAcquires counts engine-mutex acquisitions while
	// SetLockCounting is enabled (stats.go) — the probe behind E25's
	// assertion that a satisfied check takes zero mutex acquisitions.
	// Acquisitions made while counting is disabled cost one predictable
	// branch on an unshared load and are not recorded.
	lockAcquires atomic.Uint64
}

// lock takes the engine mutex through the counting probe. Every
// implementation hot path acquires w.mu through lock/tryLock so the E25
// zero-lock assertion measures all of them; unlock exists for symmetry.
func (w *waitlist) lock() {
	w.mu.Lock()
	if lockCounting.Load() {
		w.lockAcquires.Add(1)
	}
}

func (w *waitlist) unlock() { w.mu.Unlock() }

func (w *waitlist) tryLock() bool {
	if !w.mu.TryLock() {
		return false
	}
	if lockCounting.Load() {
		w.lockAcquires.Add(1)
	}
	return true
}

// engineStats is the collector behind the unified Stats schema. The
// locked fields change only under the engine mutex, where the events
// they count happen anyway, so counting them is free of extra
// synchronization; the wake-side tallies are bumped by the incrementer
// after it releases the mutex (re-locking just to count would put the
// engine mutex back on the wake path), so they are atomics.
type engineStats struct {
	// Guarded by the engine mutex.
	liveLevels      int // not-yet-satisfied nodes currently indexed
	peakLevels      int
	satisfiedLevels uint64
	suspends        uint64
	immediateChecks uint64
	increments      uint64

	// Wake-side tallies, updated out of lock by wakeBatch.
	broadcasts    atomic.Uint64
	channelCloses atomic.Uint64
}

// readStats assembles a consistent snapshot. The wake-side atomics are
// loaded BEFORE the mutex-guarded fields: a wake is issued only after
// its level's satisfy was recorded under the mutex, so reading wakes
// first guarantees every counted wake's satisfy is included in the
// locked read that follows — the documented Broadcasts <=
// SatisfiedLevels / ChannelCloses <= SatisfiedLevels invariant. (Read
// the other way round, a wake landing between the two reads could be
// counted while its satisfy was not.)
func (w *waitlist) readStats() Stats {
	b := w.stats.broadcasts.Load()
	cl := w.stats.channelCloses.Load()
	w.lock()
	s := w.lockedStats()
	w.unlock()
	s.Broadcasts, s.ChannelCloses = b, cl
	return s
}

// lockedStats copies the mutex-guarded portion of the collector. Called
// with w.mu held; the caller fills the wake-side tallies (loaded before
// locking — see readStats) and any implementation-specific fields.
func (w *waitlist) lockedStats() Stats {
	return Stats{
		PeakLevels:      w.stats.peakLevels,
		SatisfiedLevels: w.stats.satisfiedLevels,
		Suspends:        w.stats.suspends,
		ImmediateChecks: w.stats.immediateChecks,
		Increments:      w.stats.increments,
	}
}

// SetProbe installs (or, with nil, removes) the event hook.
func (w *waitlist) SetProbe(f func(Event)) {
	if f == nil {
		w.probe.Store(nil)
		return
	}
	w.probe.Store(&f)
}

// emit invokes the probe if one is installed. Never called with w.mu or
// a node wake lock held; when no probe is set this is one atomic load.
func (w *waitlist) emit(kind EventKind, level uint64) {
	if p := w.probe.Load(); p != nil {
		(*p)(Event{Kind: kind, Level: level})
	}
}

// join registers the caller as a waiter on the node for level, creating
// and indexing a new node if none is live. Called with w.mu held; the
// caller must already have established level > value. Every join is a
// suspend in the cost model (the caller is committed to blocking), and
// a created node is a new live level, so both tallies live here — the
// mutex is already held for the registration itself.
func (w *waitlist) join(idx levelIndex, level uint64) *waitNode {
	n, created := idx.acquire(w, level)
	n.count.Add(1)
	w.stats.suspends++
	if created {
		w.stats.liveLevels++
		if w.stats.liveLevels > w.stats.peakLevels {
			w.stats.peakLevels = w.stats.liveLevels
		}
	}
	return n
}

// satisfyLocked marks n satisfied and records it as draining. Called
// with w.mu held by the implementation's Increment, which must already
// have unlinked n from its index; the actual wake-up is wakeBatch,
// after w.mu is released. Each call is one satisfied level — the
// paper's cost unit — and one fewer live waited-on level.
func (w *waitlist) satisfyLocked(n *waitNode) {
	n.set.Store(true)
	n.drainIdx = len(w.draining)
	w.draining = append(w.draining, n)
	w.drainLive++
	w.stats.satisfiedLevels++
	w.stats.liveLevels--
}

// wakeBatch wakes every waiter parked on the batch — a chain of
// satisfied nodes linked through their next pointers, which the caller
// owns exclusively now that the nodes have left the index. Channel
// selecters wake by closing ready, condvar sleepers by broadcasting;
// the closes/broadcasts tallies go straight into the collector's
// atomics (the corresponding satisfies were already recorded under the
// mutex, so snapshots see wakes only after their satisfies — the Stats
// invariant). Called WITHOUT w.mu: this is the point of the design. The
// caller (one incrementer) holds only each node's wake lock, briefly,
// one node at a time, so a slow scheduler dispatching thousands of
// wake-ups never stalls joiners, other incrementers, or waiters on
// other levels. The chain links are severed on the way through, and the
// probe sees one EventWake per level, after that level's wake lock is
// released.
func (w *waitlist) wakeBatch(head *waitNode) {
	for n := head; n != nil; {
		next := n.next
		n.next = nil
		n.mu.Lock()
		closed := n.ready != nil
		if closed {
			close(n.ready)
		}
		bcast := n.sleepers > 0
		if bcast {
			n.cond.Broadcast()
		}
		hooks := n.hooks
		n.hooks = nil
		for h := hooks; h != nil; h = h.next {
			h.fired = true
		}
		n.mu.Unlock()
		if closed {
			w.stats.channelCloses.Add(1)
		}
		if bcast {
			w.stats.broadcasts.Add(1)
		}
		w.emit(EventWake, n.level)
		// Fire the detached sentinel hooks, each exactly once, with no
		// lock held — a hook is a re-evaluation kick for the predicate
		// layer and must never run inside the engine. The hook's waiter
		// count is drained first so the node's accounting is settled by
		// the time fn observes the wake (fn may arm a fresh sentinel).
		for h := hooks; h != nil; {
			hn := h.next
			h.next = nil
			w.drainSatisfied(n)
			h.fn()
			h = hn
		}
		n = next
	}
}

// wait blocks on the node's condition variable until it is satisfied —
// the plain Check slow path. Called without any lock held (the caller
// released w.mu after join); returns with no lock held.
func (w *waitlist) wait(n *waitNode) {
	w.emit(EventSuspend, n.level)
	n.mu.Lock()
	for !n.set.Load() {
		n.sleepers++
		n.cond.Wait()
		n.sleepers--
	}
	n.mu.Unlock()
}

// waitCtx blocks until n is satisfied or ctx is cancelled, whichever
// comes first, by selecting on the node's ready channel — no watcher
// goroutine. Called without any lock held; returns with no lock held.
// If the node is satisfied by the time the cancellation is observed,
// waitCtx reports nil: a satisfied level beats a cancelled context.
func (w *waitlist) waitCtx(ctx context.Context, n *waitNode) error {
	w.emit(EventSuspend, n.level)
	n.mu.Lock()
	if n.set.Load() {
		n.mu.Unlock()
		return nil
	}
	ready := n.ready
	if ready == nil {
		ready = make(chan struct{})
		n.ready = ready
	}
	n.mu.Unlock()
	select {
	case <-ready:
		return nil
	case <-ctx.Done():
		if n.set.Load() {
			return nil
		}
		return ctx.Err()
	}
}

// drain deregisters the caller from n after wait/waitCtx returned. The
// common case is one atomic decrement and no lock at all; only the
// goroutine that drops the count to zero takes a mutex, once, to retire
// the node (the paper's "deallocates the node" — here the garbage
// collector reclaims it once unreferenced). A stripe-owned node (home
// non-nil) retires under its stripe's mutex and never consults idx, so
// striped callers pass nil; an engine-indexed node retires under the
// engine mutex through idx.drop. Called with no lock held.
func (w *waitlist) drain(idx levelIndex, n *waitNode) {
	if n.count.Add(-1) != 0 {
		return
	}
	if s := n.home; s != nil {
		s.owner.retire(s, n)
		return
	}
	w.lock()
	w.cleanupLocked(idx, n)
	w.unlock()
}

// leaveLocked is drain for callers already holding w.mu — the
// single-threaded simulator and its benchmarks.
func (w *waitlist) leaveLocked(idx levelIndex, n *waitNode) {
	if n.count.Add(-1) == 0 {
		w.cleanupLocked(idx, n)
	}
}

// cleanupLocked retires a node whose count reached zero: a satisfied
// node leaves the draining record, an abandoned one leaves the index.
// Called with w.mu held. The count is re-checked under the mutex —
// joins also happen under it, so a concurrent re-join of the level
// cancels the retirement (that joiner's own drain will retire it), and
// the drained flag makes the retirement idempotent.
func (w *waitlist) cleanupLocked(idx levelIndex, n *waitNode) {
	if n.drained || n.count.Load() != 0 {
		return
	}
	n.drained = true
	if n.set.Load() {
		w.removeDraining(n)
	} else {
		idx.drop(n)
		w.stats.liveLevels--
	}
}

// removeDraining deletes n from the draining record in O(1): its slot
// goes nil so the other nodes keep their recorded positions, and the
// slice resets once every node has retired. (An ordered splice here
// would turn one increment satisfying k levels into O(k^2) memmoves
// as the levels retire.) Called with w.mu held.
func (w *waitlist) removeDraining(n *waitNode) {
	w.draining[n.drainIdx] = nil
	w.drainLive--
	if w.drainLive == 0 {
		w.draining = w.draining[:0]
	}
}

// busyLocked reports whether any satisfied node is still draining
// waiters — the engine half of every implementation's Reset misuse
// check. A registered waiter is always represented by a node with a
// nonzero count in either the index or the draining record, so pairing
// this with the implementation's own index-emptiness check covers all
// waiters without a dedicated counter on the drain fast path. Called
// with w.mu held.
func (w *waitlist) busyLocked() bool {
	return w.drainLive != 0
}

// --- Flat combining -------------------------------------------------
//
// fcSlots is a flat-combining publication array for the engine mutex:
// an Increment that loses the race for the lock claims a slot, publishes
// its delta there, and the current lock holder — the combiner — folds
// every published delta into the value before it releases, doing the
// rivals' work while it already owns the cache lines. The rivals never
// enter the mutex's sleep queue, so a contended burst costs one lock
// handoff instead of one scheduler round trip per increment. This is the
// ActiveMonitor idea applied to the one operation of ours that is
// commutative enough to delegate: increments of a monotonic value fold
// in any order.
//
// The array is engine-level machinery but strictly opt-in: only an
// implementation that routes its Increment through claim and the
// collect/release fold (FCCounter, constructor NewFC) pays anything;
// every other counter's paths are untouched.
//
// Claim protocol: a slot is free while zero. A publisher claims one with
// a single CAS of the packed word amount<<fcTagBits|tag (tag: a nonzero
// cycling disambiguator) and then spins — yielding, never blocking —
// until either (a) the slot no longer holds its token, which means a
// combiner swapped it to zero and folded the delta (slots are claimed
// exclusively, so the first transition away from the token is that
// swap), or (b) it wins TryLock and becomes a combiner itself, folding
// whatever is still pending, its own delta included. The tag keeps two
// claims of the same amount distinguishable; in the astronomically rare
// cycle collision the publisher merely spins until it combines — safety
// never depends on the tag.
//
// A publisher returns only after its delta is folded (by itself or a
// combiner), so Increment keeps its synchronous contract: once it
// returns, Value() and every satisfied waiter reflect the delta. That
// contract is why the fold is two-phase: the combiner first reads every
// claimed slot (collectLocked), stores the combined value, and only then
// frees the slots (releaseLocked). Freeing a slot is the publisher's
// signal to return, so it must happen strictly after the value store —
// a single-pass swap-then-store fold would let a publisher return, read
// Value(), and miss its own delta.
type fcSlots struct {
	// slots is allocated once, sized by the stripe count captured at
	// first use (same capture discipline as ShardedCounter's cells).
	slots atomic.Pointer[[]fcSlot]
	// drained records, per slot, the token collectLocked read there (zero
	// for a free slot), telling releaseLocked which slots the in-flight
	// fold owns. Guarded by the engine mutex, like the fold itself.
	drained []uint64
}

// fcSlot is one publication record, padded like a shard cell so
// publishers on different slots never false-share.
type fcSlot struct {
	v atomic.Uint64 // amount<<fcTagBits|tag while claimed; 0 while free
	_ [120]byte
}

const (
	// fcTagBits is the width of the claim tag in a slot's packed word.
	fcTagBits = 16
	fcTagMask = 1<<fcTagBits - 1
	// fcAmountCap bounds a publishable amount so the packed word cannot
	// collide with the tag; larger amounts take the blocking locked path.
	fcAmountCap = uint64(1) << 47
)

// fcTagSeq cycles claim tags process-wide; fcTag never returns zero, so
// a claimed slot's word is never zero.
var fcTagSeq atomic.Uint32

func fcTag() uint64 {
	for {
		if t := uint64(fcTagSeq.Add(1)) & fcTagMask; t != 0 {
			return t
		}
	}
}

// ensure returns the slot array, allocating it on first use. Called with
// the engine mutex held (mirrors ShardedCounter.cells: the count is
// captured exactly once per array, under the lock).
func (f *fcSlots) ensureLocked(stripes int) *[]fcSlot {
	if p := f.slots.Load(); p != nil {
		return p
	}
	f.drained = make([]uint64, stripes)
	s := make([]fcSlot, stripes)
	f.slots.Store(&s)
	return &s
}

// claim publishes amount into a free slot and returns the slot and its
// token, or (nil, 0) when every probed slot is taken, the array is not
// allocated yet, or the amount exceeds the packed cap — the caller then
// falls back to the blocking locked path. Lock-free.
func (f *fcSlots) claim(amount uint64) (*fcSlot, uint64) {
	if amount >= fcAmountCap {
		return nil, 0
	}
	p := f.slots.Load()
	if p == nil {
		return nil, 0
	}
	slots := *p
	mask := uint64(len(slots) - 1)
	token := amount<<fcTagBits | fcTag()
	idx := stripeIndex(mask)
	for probe := 0; probe < len(slots); probe++ {
		s := &slots[(idx+uint64(probe))&mask]
		if s.v.Load() == 0 && s.v.CompareAndSwap(0, token) {
			return s, token
		}
	}
	return nil, 0
}

// collectLocked is phase one of the two-phase fold: it reads every
// claimed slot's token WITHOUT freeing it and returns the summed deltas
// plus how many publications it collected, recording per slot what it
// read so releaseLocked can free exactly those slots. The snapshot is
// stable: a publisher writes a claimed slot exactly once (the free→token
// CAS) and only a lock holder ever clears one, so while the engine mutex
// is held every token read here stays put until phase two. A claim
// published after its slot is read simply waits for the next lock holder
// (or its publisher's own TryLock), which the claim protocol allows.
//
// The caller must store the combined value — and take any
// overflow panic — BEFORE calling releaseLocked: freeing a slot is what
// lets its spinning publisher return from Increment, so it must
// happen-after the value store or a publisher could return while Value()
// is still stale. Called with the engine mutex held. The sum cannot
// wrap: each delta is below fcAmountCap (2^47) and the array holds at
// most a few dozen slots.
func (f *fcSlots) collectLocked() (sum uint64, count uint64) {
	p := f.slots.Load()
	if p == nil {
		return 0, 0
	}
	for i := range *p {
		// A plain load, no RMW: an empty slot stays a shared cache-line
		// read, so the uncontended pass costs k loads, not k bus locks.
		tok := (*p)[i].v.Load()
		f.drained[i] = tok
		if tok != 0 {
			sum += tok >> fcTagBits
			count++
		}
	}
	return sum, count
}

// releaseLocked is phase two: it frees every slot collectLocked
// recorded, publishing the fold to the spinning publishers. Called with
// the engine mutex still held, after the combined value is stored. On an
// overflow panic the caller skips this call, leaving the collected slots
// claimed: the deltas are neither lost nor falsely acknowledged — each
// publisher keeps spinning, eventually takes the lock itself, and hits
// the same overflow panic instead of returning success for an increment
// that never landed.
func (f *fcSlots) releaseLocked() {
	p := f.slots.Load()
	if p == nil {
		return
	}
	for i := range *p {
		if f.drained[i] != 0 {
			f.drained[i] = 0
			(*p)[i].v.Store(0)
		}
	}
}

// listIndex is the sorted singly-linked list of the paper's section 7,
// shared by Counter, AtomicCounter, and ShardedCounter: ascending by
// level, never-satisfied nodes only — an increment moves its satisfied
// prefix to the engine's draining record via popSatisfied, so the list
// is exactly the set of live waited-on levels.
type listIndex struct {
	head *waitNode
}

// acquire finds or splices in the node for level with a single walk.
func (l *listIndex) acquire(w *waitlist, level uint64) (*waitNode, bool) {
	p := &l.head
	for *p != nil && (*p).level < level {
		p = &(*p).next
	}
	if n := *p; n != nil && n.level == level {
		return n, false
	}
	n := newWaitNode(level)
	n.next = *p
	*p = n
	return n, true
}

func (l *listIndex) drop(n *waitNode) {
	for p := &l.head; *p != nil; p = &(*p).next {
		if *p == n {
			*p = n.next
			n.next = nil
			return
		}
	}
}

// popSatisfied unlinks the prefix of nodes whose level the new value
// covers — the increment's satisfied batch — and returns it as a chain
// still linked in ascending level order, plus its length. No allocation:
// the prefix is cut off the list in place and handed to the caller
// (ultimately wakeBatch) as-is. Called with the engine mutex held.
func (l *listIndex) popSatisfied(value uint64) (head *waitNode, k int) {
	if l.head == nil || l.head.level > value {
		return nil, 0
	}
	head = l.head
	last := head
	k = 1
	for last.next != nil && last.next.level <= value {
		last = last.next
		k++
	}
	l.head = last.next
	last.next = nil
	return head, k
}

var _ levelIndex = (*listIndex)(nil)
