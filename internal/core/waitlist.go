package core

import (
	"context"
	"sync"
)

// This file is the shared blocking engine behind the condition-variable
// based implementations (Counter, AtomicCounter, HeapCounter,
// BroadcastCounter). Each of them used to carry its own copy of the
// join/wait/leave slow path, and each copy turned context cancellation
// into a wake-up by spawning a watcher goroutine per CheckContext call.
// The engine removes both: the slow path lives here once, and every
// per-level node carries a close-on-satisfy channel alongside its
// condition variable, so CheckContext can select on cancellation
// directly — no goroutine is ever spawned on behalf of a caller.
//
// Division of labour: the engine owns the mutex, the waiter accounting,
// and the suspend/wake protocol; the implementation owns the value and
// the index that organizes live nodes by level (sorted list, min-heap,
// or the degenerate wake-everyone node of the naive baseline). That
// split is what lets the implementations keep their distinguishing
// data-structure behaviour while sharing one cancellation-correct
// slow path.

// waitNode is one suspension queue: all goroutines waiting for the same
// level. It extends the four-field structure of the paper's Figure 2
// (level, waiter count, condition with its "set" flag, link) with a
// ready channel that satisfy closes, giving CheckContext a selectable
// wake-up. Check waiters sleep on cond; CheckContext waiters sleep in a
// select on ready; satisfy wakes both.
type waitNode struct {
	level uint64
	count int
	set   bool
	cond  sync.Cond
	// ready is closed by satisfy and selected on by waitCtx. It is
	// allocated lazily by the first cancellable waiter, so nodes used
	// only by plain Check cost exactly the paper's four fields.
	ready chan struct{}
	next  *waitNode // used by list-shaped indexes only
}

// levelIndex is the per-implementation structure organizing waitNodes by
// level. All methods are called with the engine mutex held.
type levelIndex interface {
	// acquire returns the live (not-yet-satisfied) node for level,
	// creating one with newWaitNode and indexing it if none exists. A
	// single operation rather than lookup-then-add so list-shaped
	// indexes find-or-splice in one walk. A returned node with count
	// zero was created by this call (drained nodes leave the index
	// immediately, so none other can have a zero count).
	acquire(w *waitlist, level uint64) *waitNode
	// drop is called when a node's last waiter leaves; the index removes
	// whatever references to n it still holds. For a never-satisfied node
	// this is the cancellation path reclaiming an abandoned level.
	drop(n *waitNode)
}

// newWaitNode returns a node wired to the engine's mutex, for levelIndex
// implementations to use inside acquire.
func newWaitNode(w *waitlist, level uint64) *waitNode {
	n := &waitNode{level: level}
	n.cond.L = &w.mu
	return n
}

// waitlist is the engine. The zero value is ready to use; the index is
// passed into each call rather than stored so that zero-value counters
// need no constructor.
type waitlist struct {
	mu      sync.Mutex
	waiters int // total suspended goroutines, for Reset misuse detection
}

// join registers the caller as a waiter on the node for level, creating
// and indexing a new node if none is live. Called with w.mu held; the
// caller must already have established level > value.
func (w *waitlist) join(idx levelIndex, level uint64) *waitNode {
	n := idx.acquire(w, level)
	n.count++
	w.waiters++
	return n
}

// leave deregisters the caller from n; the goroutine that drops a node's
// count to zero hands it back to the index (the paper's "deallocates the
// node" — here the garbage collector reclaims it once unindexed). Called
// with w.mu held.
func (w *waitlist) leave(idx levelIndex, n *waitNode) {
	n.count--
	w.waiters--
	if n.count == 0 {
		idx.drop(n)
	}
}

// satisfy marks n satisfied and wakes every waiter parked on it, both
// condvar sleepers and channel selecters. Idempotent. Called with w.mu
// held by the implementation's Increment.
func (w *waitlist) satisfy(n *waitNode) {
	if n.set {
		return
	}
	n.set = true
	if n.ready != nil {
		close(n.ready)
	}
	n.cond.Broadcast()
}

// wait blocks on the condition variable until n is satisfied — the plain
// Check slow path. Called with w.mu held; returns with w.mu held.
func (w *waitlist) wait(n *waitNode) {
	for !n.set {
		n.cond.Wait()
	}
}

// waitCtx blocks until n is satisfied or ctx is cancelled, whichever
// comes first, by selecting on the node's ready channel — no watcher
// goroutine. Called with w.mu held; returns with w.mu held. If the node
// was satisfied by the time the lock is reacquired, waitCtx reports nil
// even when the select woke on cancellation: a satisfied level beats a
// cancelled context.
func (w *waitlist) waitCtx(ctx context.Context, n *waitNode) error {
	ready := n.ready
	if ready == nil {
		ready = make(chan struct{})
		n.ready = ready
	}
	w.mu.Unlock()
	var err error
	select {
	case <-ready:
	case <-ctx.Done():
		err = ctx.Err()
	}
	w.mu.Lock()
	if n.set {
		return nil
	}
	return err
}

// listIndex is the sorted singly-linked list of the paper's section 7,
// shared by Counter and AtomicCounter: ascending by level, with a
// satisfied ("set") prefix that lingers while its waiters drain.
type listIndex struct {
	head *waitNode
}

// acquire finds or splices in the node for level with a single walk. A
// satisfied prefix may be present, but its levels are at most the value,
// which is below any level being joined, so ordering is preserved.
func (l *listIndex) acquire(w *waitlist, level uint64) *waitNode {
	p := &l.head
	for *p != nil && (*p).level < level {
		p = &(*p).next
	}
	if n := *p; n != nil && n.level == level && !n.set {
		return n
	}
	n := newWaitNode(w, level)
	n.next = *p
	*p = n
	return n
}

func (l *listIndex) drop(n *waitNode) {
	for p := &l.head; *p != nil; p = &(*p).next {
		if *p == n {
			*p = n.next
			n.next = nil
			return
		}
	}
}

// liveLen counts the not-yet-satisfied nodes — the "distinct waited-on
// levels" of the section 7 cost model. The draining satisfied prefix is
// excluded: those levels are no longer being waited on.
func (l *listIndex) liveLen() int {
	live := 0
	for n := l.head; n != nil; n = n.next {
		if !n.set {
			live++
		}
	}
	return live
}

var _ levelIndex = (*listIndex)(nil)
