package core

import (
	"context"
	"runtime"
	"sync/atomic"
)

// defaultSpins is the number of yield-spin probes SpinCounter makes
// before suspending. Chosen so a check that will be satisfied within a
// few scheduler quanta never touches the mutex or a condition variable.
const defaultSpins = 64

// SpinCounter is a spin-then-block hybrid: Check first polls the value
// with atomic loads (yielding the processor between probes), and only
// suspends on the blocking slow path if the level is still unsatisfied
// after the spin budget. This is the classical HPC waiting strategy for
// synchronization with short expected waits; under long waits it degrades
// gracefully to the reference design (and inherits its out-of-lock wake
// path: a parked SpinCounter waiter drains with an atomic count like any
// other engine waiter). Part of the E11 ablation.
//
// The zero value is a valid counter with value zero.
type SpinCounter struct {
	a AtomicCounter
	// spins holds the probe budget plus one, so that the zero value
	// still means "default" while an explicit budget of zero (suspend
	// immediately — the right tuning for long expected waits) remains
	// expressible: 0 = default, b+1 = budget b.
	spins atomic.Int64
	// rounds counts yield-spin probes actually made (Stats.SpinRounds).
	rounds stripedUint64
}

// NewSpin returns a SpinCounter with the default spin budget.
func NewSpin() *SpinCounter { return new(SpinCounter) }

// SetSpins sets the probe budget: n probes before suspending. n == 0
// means no spinning at all — an unsatisfied check suspends immediately —
// and a negative n restores the default budget. It is safe to call
// concurrently with Check/CheckContext on other goroutines: the budget
// is stored atomically and each Check snapshots it once on entry to its
// spin phase, so a mid-flight tune affects only subsequent checks.
func (c *SpinCounter) SetSpins(n int) {
	if n < 0 {
		c.spins.Store(0) // default sentinel
		return
	}
	c.spins.Store(int64(n) + 1)
}

// budget snapshots the current probe budget.
func (c *SpinCounter) budget() int {
	if v := c.spins.Load(); v > 0 {
		return int(v - 1)
	}
	return defaultSpins
}

// Increment implements Interface.
func (c *SpinCounter) Increment(amount uint64) { c.a.Increment(amount) }

// Check implements Interface.
func (c *SpinCounter) Check(level uint64) {
	if level <= c.a.value.Load() {
		c.a.fastChecks.Add(1)
		return
	}
	budget := c.budget()
	for i := 0; i < budget; i++ {
		runtime.Gosched()
		if level <= c.a.value.Load() {
			c.rounds.Add(uint64(i + 1))
			c.a.fastChecks.Add(1)
			return
		}
	}
	if budget > 0 {
		c.rounds.Add(uint64(budget))
	}
	c.a.Check(level)
}

// CheckContext implements Interface. The spin phase polls the context
// between probes, always consulting the value first so that an
// already-satisfied level wins over an already-cancelled context.
func (c *SpinCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.a.value.Load() {
		c.a.fastChecks.Add(1)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	budget := c.budget()
	for i := 0; i < budget; i++ {
		runtime.Gosched()
		if level <= c.a.value.Load() {
			c.rounds.Add(uint64(i + 1))
			c.a.fastChecks.Add(1)
			return nil
		}
		if err := ctx.Err(); err != nil {
			c.rounds.Add(uint64(i + 1))
			return err
		}
	}
	if budget > 0 {
		c.rounds.Add(uint64(budget))
	}
	return c.a.CheckContext(ctx, level)
}

// Reset implements Interface.
func (c *SpinCounter) Reset() { c.a.Reset() }

// Value implements Interface. For inspection and testing only.
func (c *SpinCounter) Value() uint64 { return c.a.Value() }

// Stats implements StatsProvider: the underlying atomic counter's
// collector plus the spin-probe tally.
func (c *SpinCounter) Stats() Stats {
	s := c.a.Stats()
	s.SpinRounds = c.rounds.Load()
	return s
}

// SetProbe implements ProbeSetter; events are observed through the
// underlying engine (spin probes emit no event).
func (c *SpinCounter) SetProbe(f func(Event)) { c.a.SetProbe(f) }

// LockAcquires implements LockCounter via the underlying atomic counter
// (spin probes take no locks).
func (c *SpinCounter) LockAcquires() uint64 { return c.a.LockAcquires() }

var _ Interface = (*SpinCounter)(nil)
var _ StatsProvider = (*SpinCounter)(nil)
var _ ProbeSetter = (*SpinCounter)(nil)
var _ LockCounter = (*SpinCounter)(nil)
