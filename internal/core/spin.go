package core

import (
	"context"
	"runtime"
	"sync/atomic"
)

// defaultSpins is the number of yield-spin probes SpinCounter makes
// before suspending. Chosen so a check that will be satisfied within a
// few scheduler quanta never touches the mutex or a condition variable.
const defaultSpins = 64

// SpinCounter is a spin-then-block hybrid: Check first polls the value
// with atomic loads (yielding the processor between probes), and only
// suspends on the blocking slow path if the level is still unsatisfied
// after the spin budget. This is the classical HPC waiting strategy for
// synchronization with short expected waits; under long waits it degrades
// gracefully to the reference design (and inherits its out-of-lock wake
// path: a parked SpinCounter waiter drains with an atomic count like any
// other engine waiter). Part of the E11 ablation.
//
// The zero value is a valid counter with value zero.
type SpinCounter struct {
	a     AtomicCounter
	spins atomic.Int64 // probe budget; 0 means defaultSpins
}

// NewSpin returns a SpinCounter with the default spin budget.
func NewSpin() *SpinCounter { return new(SpinCounter) }

// SetSpins sets the probe budget; n <= 0 restores the default. It is
// safe to call concurrently with Check/CheckContext on other goroutines:
// the budget is stored atomically and each Check snapshots it once on
// entry to its spin phase, so a mid-flight tune affects only subsequent
// checks.
func (c *SpinCounter) SetSpins(n int) {
	if n < 0 {
		n = 0
	}
	c.spins.Store(int64(n))
}

// budget snapshots the current probe budget.
func (c *SpinCounter) budget() int {
	if n := c.spins.Load(); n > 0 {
		return int(n)
	}
	return defaultSpins
}

// Increment implements Interface.
func (c *SpinCounter) Increment(amount uint64) { c.a.Increment(amount) }

// Check implements Interface.
func (c *SpinCounter) Check(level uint64) {
	if level <= c.a.value.Load() {
		return
	}
	budget := c.budget()
	for i := 0; i < budget; i++ {
		runtime.Gosched()
		if level <= c.a.value.Load() {
			return
		}
	}
	c.a.Check(level)
}

// CheckContext implements Interface. The spin phase polls the context
// between probes, always consulting the value first so that an
// already-satisfied level wins over an already-cancelled context.
func (c *SpinCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.a.value.Load() {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	budget := c.budget()
	for i := 0; i < budget; i++ {
		runtime.Gosched()
		if level <= c.a.value.Load() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return c.a.CheckContext(ctx, level)
}

// Reset implements Interface.
func (c *SpinCounter) Reset() { c.a.Reset() }

// Value implements Interface. For inspection and testing only.
func (c *SpinCounter) Value() uint64 { return c.a.Value() }

var _ Interface = (*SpinCounter)(nil)
