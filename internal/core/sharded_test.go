package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests of the ShardedCounter waiter-gate protocol: where increments
// accumulate with and without waiters, that registration flushes the
// stripes exactly once, and that the striped sum stays monotone and
// overflow-checked. The full conformance/fuzz/cancellation battery also
// covers "sharded" via Registry().

// TestShardedFastPathLeavesValueUnpublished pins the division of labour:
// with no waiters, increments land in shards (published stays zero) but
// Value sees them; the first waiter registration flushes them into the
// published value.
func TestShardedFastPathLeavesValueUnpublished(t *testing.T) {
	c := NewSharded()
	for i := 0; i < 100; i++ {
		c.Increment(3)
	}
	if got := c.published.Load(); got != 0 {
		t.Fatalf("published = %d before any waiter, want 0 (increments must stay striped)", got)
	}
	if got := c.Value(); got != 300 {
		t.Fatalf("Value() = %d, want 300", got)
	}
	c.Check(300) // satisfied, but the lock-free sum path must answer it
	if got := c.published.Load(); got != 0 {
		t.Fatalf("published = %d after satisfied Check, want 0 (no registration, no flush)", got)
	}
	// An unsatisfied Check registers, which must flush the stripes.
	done := make(chan struct{})
	go func() {
		c.Check(301)
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for c.published.Load() != 300 {
		select {
		case <-deadline:
			t.Fatalf("published = %d while a waiter registers, want 300 (flush missing)", c.published.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	c.Increment(1) // gate is up: exact locked path, wakes the waiter
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after a gated increment")
	}
	if got := c.Value(); got != 301 {
		t.Fatalf("Value() = %d, want 301", got)
	}
}

// TestShardedGateDivertsIncrements pins the gate protocol: while a
// waiter is parked, every increment goes through the locked path and is
// visible in published immediately; once the last waiter leaves, the
// fast path resumes and residue accumulates in the stripes again.
func TestShardedGateDivertsIncrements(t *testing.T) {
	c := NewSharded()
	released := make(chan struct{})
	go func() {
		c.Check(50)
		close(released)
	}()
	deadline := time.After(5 * time.Second)
	for c.gate.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never raised the gate")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 49; i++ {
		c.Increment(1)
	}
	if got := c.published.Load(); got != 49 {
		t.Fatalf("published = %d with gate up, want 49 (gated increments must take the locked path)", got)
	}
	c.Increment(1)
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released at level 50")
	}
	// The waiter's departure drops the gate; fast-path increments stripe
	// again. Poll: the leave happens after the waiter's Check returns
	// only once it reacquires the engine mutex, so give it a moment.
	for c.gate.Load() != 0 {
		select {
		case <-deadline:
			t.Fatal("gate never dropped after the last waiter left")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	before := c.published.Load()
	c.Increment(7)
	if got := c.published.Load(); got != before {
		t.Fatalf("published moved %d -> %d on a gate-down increment, want striped fast path", before, got)
	}
	if got := c.Value(); got != 57 {
		t.Fatalf("Value() = %d, want 57", got)
	}
}

// TestShardedValueMonotoneAcrossFlushes races lock-free Value readers
// against the flush machinery (waiters registering and cancelling, which
// flush the stripes) and concurrent increments: no reader may ever
// observe the value decrease. Exercises the seqlock under -race.
func TestShardedValueMonotoneAcrossFlushes(t *testing.T) {
	c := NewSharded()
	stop := make(chan struct{})
	var bad atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := c.Value()
				if v < last {
					bad.Store(true)
					return
				}
				last = v
			}
		}()
	}
	// Flush churn: short-lived waiters at unreachable levels register
	// (flush) and cancel.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			WaitTimeout(c, 1<<40, 50*time.Microsecond)
		}
	}()
	for i := 0; i < 5000; i++ {
		c.Increment(2)
	}
	close(stop)
	wg.Wait()
	if bad.Load() {
		t.Fatal("a reader observed the sharded value decrease across a flush")
	}
	if got := c.Value(); got != 10000 {
		t.Fatalf("final value %d, want 10000", got)
	}
}

// TestShardedIncrementRacingRegistration hammers the Dekker-style
// recheck: increments that satisfy a waiter's level race against the
// waiter's registration. Whatever the interleaving, the waiter must wake
// — an increment may never be stranded in a stripe the flush missed.
func TestShardedIncrementRacingRegistration(t *testing.T) {
	for round := 0; round < 200; round++ {
		c := NewSharded()
		done := make(chan struct{})
		go func() {
			c.Check(1)
			close(done)
		}()
		c.Increment(1)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: waiter stranded — increment lost between stripe and flush", round)
		}
	}
}

// TestShardedCrossShardOverflowCaughtAtFlush pins the documented
// overflow story: a same-goroutine wrap panics on the fast path (the
// conformance TestIncrementOverflowPanics covers that via the registry);
// a wrap assembled across published value and stripe residue is caught
// by checkedAdd at the next flush or sum.
func TestShardedCrossShardOverflowCaughtAtFlush(t *testing.T) {
	const nearMax = ^uint64(0) - 10
	c := NewSharded()
	c.Increment(nearMax) // nearly fills one stripe
	c.Check(1)           // satisfied via the striped sum, no flush
	// Force a flush: a waiter on a still-unsatisfied level registers
	// (raising the gate and folding the stripes) and then cancels.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.CheckContext(ctx, ^uint64(0)); err == nil {
		t.Fatal("cancelled CheckContext on an unsatisfied level returned nil")
	}
	if got := c.published.Load(); got != nearMax {
		t.Fatalf("published = %d after flush, want %d", got, nearMax)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("summing past the uint64 brim did not panic")
		}
	}()
	c.Increment(20) // fits the (now empty) stripe: the wrap must still be
	c.Value()       // caught no later than the next sum
}

// TestShardedZeroValueReady: the zero value (no constructor, stripes
// unallocated) must behave like a fresh counter on every path.
func TestShardedZeroValueReady(t *testing.T) {
	var c ShardedCounter
	c.Check(0)
	if got := c.Value(); got != 0 {
		t.Fatalf("zero value Value() = %d", got)
	}
	c.Increment(5)
	c.Check(5)
	if err := c.CheckContext(context.Background(), 3); err != nil {
		t.Fatalf("CheckContext = %v", err)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("Value() after Reset = %d", got)
	}
}
