package core

import (
	"sync"
	"testing"
	"time"
)

// These tests verify the section 7 cost claims (experiment E10): storage
// and wake work are proportional to the number of *distinct levels* with
// waiters, not to the total number of waiting goroutines.

// spawnWaiters suspends `waiters` goroutines spread evenly over `levels`
// distinct levels (1..levels) and returns after they are all suspended,
// along with a release function.
func spawnWaiters(t *testing.T, c Interface, waiters, levels int) (release func(), wait func()) {
	t.Helper()
	var wg sync.WaitGroup
	started := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		lv := uint64(i%levels) + 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			c.Check(lv)
		}()
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	// Suspension happens just after the started signal; give the
	// scheduler a moment so the structure is quiescent.
	time.Sleep(50 * time.Millisecond)
	return func() { c.Increment(uint64(levels)) }, wg.Wait
}

func TestPeakNodesProportionalToLevels(t *testing.T) {
	const waiters = 256
	for _, levels := range []int{1, 4, 16, 64} {
		c := New()
		release, wait := spawnWaiters(t, c, waiters, levels)
		snap := c.Inspect()
		if got := len(snap.Nodes); got != levels {
			t.Errorf("levels=%d: %d live nodes with %d waiters, want exactly %d",
				levels, got, waiters, levels)
		}
		release()
		wait()
		if st := c.Stats(); st.PeakLevels != levels {
			t.Errorf("levels=%d: PeakLevels=%d, want %d", levels, st.PeakLevels, levels)
		}
	}
}

func TestBroadcastsProportionalToSatisfiedLevels(t *testing.T) {
	const waiters = 128
	for _, levels := range []int{1, 8, 32} {
		c := New()
		release, wait := spawnWaiters(t, c, waiters, levels)
		release()
		wait()
		if st := c.Stats(); st.Broadcasts != uint64(levels) {
			t.Errorf("levels=%d: Broadcasts=%d, want %d (one per satisfied level)",
				levels, st.Broadcasts, levels)
		}
	}
}

// TestNaiveBaselineWakesProportionalToWaiters documents the contrast: the
// naive single-condvar design wakes every waiter on every increment, so
// with W waiters and I increments before satisfaction its wake count is
// Ω(W), growing with waiters even when only one level is in play.
func TestNaiveBaselineWakesProportionalToWaiters(t *testing.T) {
	const waiters = 64
	c := NewBroadcast()
	var wg sync.WaitGroup
	started := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			c.Check(10)
		}()
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	time.Sleep(50 * time.Millisecond)
	// Nine unsatisfying increments, then the satisfying one. The pause
	// between increments lets the woken waiters actually run their
	// re-check before the next broadcast (back-to-back increments would
	// coalesce into a single wake per waiter).
	for i := 0; i < 10; i++ {
		c.Increment(1)
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	// Every increment broadcast to all waiters; even discounting
	// scheduling slop the wake count must be much larger than the
	// number of waiters (the per-level designs would do 64 wakes total).
	if w := c.Wakes(); w < uint64(waiters)*2 {
		t.Errorf("naive baseline wakes=%d; expected thundering herd >> %d", w, waiters)
	}
}

// TestHeapPeakLevels confirms the heap ablation tracks distinct levels the
// same way the reference design does.
func TestHeapPeakLevels(t *testing.T) {
	const waiters = 128
	const levels = 16
	c := NewHeap()
	release, wait := spawnWaiters(t, c, waiters, levels)
	if got := c.PeakLevels(); got != levels {
		t.Errorf("PeakLevels=%d, want %d", got, levels)
	}
	release()
	wait()
}

// TestChanLiveLevels confirms the channel implementation allocates one
// gate per distinct level.
func TestChanLiveLevels(t *testing.T) {
	const waiters = 128
	const levels = 16
	c := NewChan()
	release, wait := spawnWaiters(t, c, waiters, levels)
	if got := c.LiveLevels(); got != levels {
		t.Errorf("LiveLevels=%d, want %d", got, levels)
	}
	release()
	wait()
	if got := c.LiveLevels(); got != 0 {
		t.Errorf("LiveLevels after release=%d, want 0", got)
	}
}

// TestStatsImmediateVsSuspend verifies the stats split between fast-path
// and suspending checks.
func TestStatsImmediateVsSuspend(t *testing.T) {
	c := New()
	c.Increment(5)
	c.Check(3)
	c.Check(5)
	done := make(chan struct{})
	go func() {
		c.Check(6)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	c.Increment(1)
	<-done
	st := c.Stats()
	if st.ImmediateChecks != 2 {
		t.Errorf("ImmediateChecks=%d, want 2", st.ImmediateChecks)
	}
	if st.Suspends != 1 {
		t.Errorf("Suspends=%d, want 1", st.Suspends)
	}
	if st.Increments != 2 {
		t.Errorf("Increments=%d, want 2", st.Increments)
	}
}
