package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickValueIsSumOfIncrements: for any slice of increment amounts
// (bounded to avoid overflow), applying them concurrently to any
// implementation yields a final value equal to their sum.
func TestQuickValueIsSumOfIncrements(t *testing.T) {
	for _, impl := range Registry() {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			f := func(raw []uint16) bool {
				c := NewImpl(impl)
				var want uint64
				var wg sync.WaitGroup
				for _, a := range raw {
					want += uint64(a)
					wg.Add(1)
					go func(a uint64) {
						defer wg.Done()
						c.Increment(a)
					}(uint64(a))
				}
				wg.Wait()
				return c.Value() == want
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickSequentialCheckNeverBlocks: in single-threaded use, a Check
// whose level is at most the running sum of prior increments returns
// (the sequential-equivalence property of section 6 relies on this).
func TestQuickSequentialCheckNeverBlocks(t *testing.T) {
	for _, impl := range Registry() {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			f := func(raw []uint8) bool {
				c := NewImpl(impl)
				var sum uint64
				done := make(chan bool, 1)
				go func() {
					for _, a := range raw {
						amount := uint64(a % 8)
						c.Increment(amount)
						sum += amount
						// Check at, below, and far below the current value.
						c.Check(sum)
						c.Check(sum / 2)
						c.Check(0)
					}
					done <- true
				}()
				select {
				case <-done:
					return c.Value() == sum
				case <-time.After(10 * time.Second):
					return false
				}
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickAllSatisfiedWaitersRelease: for any multiset of levels within
// the eventual total, concurrent checkers at those levels all release once
// the increments complete.
func TestQuickAllSatisfiedWaitersRelease(t *testing.T) {
	for _, impl := range Registry() {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			f := func(levels []uint8, chunks []uint8) bool {
				if len(levels) == 0 {
					return true
				}
				c := NewImpl(impl)
				var total uint64 = 256 // >= any uint8 level
				var wg sync.WaitGroup
				for _, lv := range levels {
					wg.Add(1)
					go func(lv uint64) {
						defer wg.Done()
						c.Check(lv)
					}(uint64(lv))
				}
				// Apply increments in arbitrary chunk sizes summing to total.
				go func() {
					remaining := total
					for _, ch := range chunks {
						step := uint64(ch)
						if step > remaining {
							step = remaining
						}
						c.Increment(step)
						remaining -= step
					}
					c.Increment(remaining)
				}()
				released := make(chan struct{})
				go func() { wg.Wait(); close(released) }()
				select {
				case <-released:
					return true
				case <-time.After(10 * time.Second):
					return false
				}
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickSnapshotOrdered: the reference implementation's waiting list is
// always sorted strictly ascending by level, whatever the arrival order of
// simulated checks.
func TestQuickSnapshotOrdered(t *testing.T) {
	f := func(levels []uint16) bool {
		s := NewSim()
		for _, lv := range levels {
			s.Check(uint64(lv) + 1) // +1: level 0 never suspends
		}
		snap := s.Snapshot()
		for i := 1; i < len(snap.Nodes); i++ {
			if snap.Nodes[i-1].Level >= snap.Nodes[i].Level {
				return false
			}
		}
		// Node counts must total the number of suspended checks.
		total := 0
		for _, n := range snap.Nodes {
			total += n.Count
		}
		return total == len(levels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimDrainsClean: after incrementing past every level and
// resuming every waiter, the waiting list is empty — no leaked nodes.
func TestQuickSimDrainsClean(t *testing.T) {
	f := func(levels []uint8) bool {
		s := NewSim()
		suspended := 0
		for _, lv := range levels {
			if s.Check(uint64(lv) + 1) {
				suspended++
			}
		}
		s.Increment(257) // satisfies every uint8-derived level
		for i := 0; i < suspended; i++ {
			resumedAny := false
			for _, n := range s.Snapshot().Nodes {
				if s.Resume(n.Level) {
					resumedAny = true
					break
				}
			}
			if !resumedAny {
				return false
			}
		}
		return len(s.Snapshot().Nodes) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
