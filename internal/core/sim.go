package core

// Sim drives the reference counter's waiting-list machinery one step at a
// time, with simulated threads instead of goroutines. It exists to
// reproduce the paper's Figure 2 exactly: each operation in the figure
// ((a) construction through (g) a thread resuming) maps to one Sim call,
// and Snapshot exposes the resulting structure deterministically.
//
// Sim manipulates the same join/satisfy/drain bookkeeping the concurrent
// Counter uses (via the shared waitlist engine), so the trace it produces
// is the trace of the production data structure, not of a parallel model.
type Sim struct {
	c Counter
}

// NewSim returns a simulator over a fresh counter (Figure 2 state (a)).
func NewSim() *Sim { return new(Sim) }

// Check simulates a thread calling Check(level). It reports whether the
// thread suspended (level > value) or passed straight through.
func (s *Sim) Check(level uint64) bool {
	s.c.wl.mu.Lock()
	defer s.c.wl.mu.Unlock()
	if level <= s.c.value.Load() {
		s.c.wl.stats.immediateChecks++
		return false
	}
	s.c.join(level)
	return true
}

// Increment simulates Increment(amount): the value rises and every node at
// a satisfied level is marked set and moved to the draining record.
// Suspended simulated threads do not resume until Resume is called for
// their level, which is exactly the window in which Figure 2 states (e)
// and (f) are observable. Simulated threads count as condition-variable
// sleepers, so the stats record one broadcast per satisfied level — the
// paper's cost unit — even though no real goroutine is parked.
func (s *Sim) Increment(amount uint64) {
	s.c.wl.mu.Lock()
	defer s.c.wl.mu.Unlock()
	s.c.value.Store(checkedAdd(s.c.value.Load(), amount))
	s.c.wl.stats.increments++
	head, _ := s.c.list.popSatisfied(s.c.value.Load())
	for n := head; n != nil; {
		next := n.next
		n.next = nil            // no wakeBatch walks this chain; sever it here
		s.c.wl.satisfyLocked(n) // bumps SatisfiedLevels, one per node
		s.c.wl.stats.broadcasts.Add(1)
		n = next
	}
}

// Resume simulates one woken thread at the given level finishing its Check
// call: the node's count drops and the thread that drops it to zero
// retires the node from the draining record. It reports whether a thread
// was resumable (a satisfied node with waiters exists at level).
func (s *Sim) Resume(level uint64) bool {
	s.c.wl.mu.Lock()
	defer s.c.wl.mu.Unlock()
	for _, n := range s.c.wl.draining {
		if n != nil && n.level == level && n.count.Load() > 0 {
			s.c.leave(n)
			return true
		}
	}
	return false
}

// Snapshot returns the current structure in Figure 2 form.
func (s *Sim) Snapshot() Snapshot { return s.c.Inspect() }
