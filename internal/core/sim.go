package core

// Sim drives the reference counter's waiting-list machinery one step at a
// time, with simulated threads instead of goroutines. It exists to
// reproduce the paper's Figure 2 exactly: each operation in the figure
// ((a) construction through (g) a thread resuming) maps to one Sim call,
// and Snapshot exposes the resulting structure deterministically.
//
// Sim manipulates the same join/satisfy/leave bookkeeping the concurrent
// Counter uses (via the shared waitlist engine), so the trace it produces
// is the trace of the production data structure, not of a parallel model.
type Sim struct {
	c Counter
}

// NewSim returns a simulator over a fresh counter (Figure 2 state (a)).
func NewSim() *Sim { return new(Sim) }

// Check simulates a thread calling Check(level). It reports whether the
// thread suspended (level > value) or passed straight through.
func (s *Sim) Check(level uint64) bool {
	s.c.wl.mu.Lock()
	defer s.c.wl.mu.Unlock()
	if level <= s.c.value {
		s.c.stats.ImmediateChecks++
		return false
	}
	s.c.join(level)
	return true
}

// Increment simulates Increment(amount): the value rises and every node at
// a satisfied level has its condition set. Suspended simulated threads do
// not resume until Resume is called for their level, which is exactly the
// window in which Figure 2 states (e) and (f) are observable. (Broadcasting
// to simulated threads is harmless: none of them sleeps on the condvar.)
func (s *Sim) Increment(amount uint64) {
	s.c.wl.mu.Lock()
	defer s.c.wl.mu.Unlock()
	s.c.value = checkedAdd(s.c.value, amount)
	s.c.stats.Increments++
	for n := s.c.list.head; n != nil && n.level <= s.c.value; n = n.next {
		if !n.set {
			s.c.wl.satisfy(n)
			s.c.stats.Broadcasts++
		}
	}
}

// Resume simulates one woken thread at the given level finishing its Check
// call: the node's count drops and the thread that drops it to zero
// unlinks the node. It reports whether a thread was resumable (a set node
// with waiters exists at level).
func (s *Sim) Resume(level uint64) bool {
	s.c.wl.mu.Lock()
	defer s.c.wl.mu.Unlock()
	for n := s.c.list.head; n != nil; n = n.next {
		if n.level == level && n.set && n.count > 0 {
			s.c.leave(n)
			return true
		}
	}
	return false
}

// Snapshot returns the current structure in Figure 2 form.
func (s *Sim) Snapshot() Snapshot { return s.c.Inspect() }
