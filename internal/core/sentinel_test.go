package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFired waits for a sentinel fire delivered on ch, failing t after
// a generous deadline (the chan implementation fires from a goroutine,
// so fires are not synchronous with Increment everywhere).
func waitFired(t *testing.T, ch <-chan struct{}) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("sentinel never fired")
	}
}

// retryReset retries Reset until the implementation's bookkeeping for a
// cancelled sentinel settles (the chan design releases its gate from a
// goroutine, so the panic can outlive cancel by a moment).
func retryReset(t *testing.T, c Interface) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if ok := func() (ok bool) {
			defer func() { ok = recover() == nil }()
			c.Reset()
			return
		}(); ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("Reset still panics after the sentinel was cancelled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSentinelFires(t *testing.T) {
	for _, impl := range Registry() {
		t.Run(string(impl), func(t *testing.T) {
			c := NewImpl(impl)
			s := c.(Sentineler)
			fired := make(chan struct{})
			cancel, armed := s.Sentinel(5, func() { close(fired) })
			if !armed {
				t.Fatal("Sentinel(5) on a zero counter reported not-armed")
			}
			c.Increment(4)
			if impl != ImplBroadcast { // broadcast fires spuriously per increment
				select {
				case <-fired:
					t.Fatal("sentinel fired below its level")
				case <-time.After(20 * time.Millisecond):
				}
				c.Increment(1)
			}
			waitFired(t, fired)
			if cancel() {
				t.Error("cancel after fire reported true")
			}
		})
	}
}

func TestSentinelAlreadySatisfied(t *testing.T) {
	for _, impl := range Registry() {
		t.Run(string(impl), func(t *testing.T) {
			c := NewImpl(impl)
			c.Increment(5)
			_, armed := c.(Sentineler).Sentinel(3, func() { t.Error("fn ran for a satisfied level") })
			if armed {
				t.Fatal("Sentinel(3) with value 5 reported armed")
			}
			time.Sleep(10 * time.Millisecond)
		})
	}
}

func TestSentinelCancel(t *testing.T) {
	for _, impl := range Registry() {
		t.Run(string(impl), func(t *testing.T) {
			c := NewImpl(impl)
			var fired atomic.Bool
			cancel, armed := c.(Sentineler).Sentinel(10, func() { fired.Store(true) })
			if !armed {
				t.Fatal("not armed")
			}
			if !cancel() {
				t.Fatal("cancel of an armed sentinel reported false")
			}
			if cancel() {
				t.Fatal("second cancel reported true")
			}
			c.Increment(10) // past the level: the cancelled hook must stay silent
			time.Sleep(10 * time.Millisecond)
			if fired.Load() {
				t.Fatal("cancelled sentinel fired")
			}
			retryReset(t, c)
			c.Increment(1)
			c.Check(1)
		})
	}
}

// TestSentinelBlocksReset pins the Reset misuse contract: an armed
// sentinel is a registered waiter, so Reset must refuse to roll the
// value out from under it.
func TestSentinelBlocksReset(t *testing.T) {
	for _, impl := range Registry() {
		t.Run(string(impl), func(t *testing.T) {
			c := NewImpl(impl)
			cancel, armed := c.(Sentineler).Sentinel(7, func() {})
			if !armed {
				t.Fatal("not armed")
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Reset with an armed sentinel did not panic")
					}
				}()
				c.Reset()
			}()
			cancel()
			retryReset(t, c)
		})
	}
}

// TestSentinelShardedGate pins the sharded-specific invariant: the
// waiter gate rises for the sentinel's armed lifetime and falls exactly
// once on fire or cancel, so the striped fast path resumes afterwards.
func TestSentinelShardedGate(t *testing.T) {
	c := NewSharded()
	fired := make(chan struct{})
	cancel, armed := c.Sentinel(3, func() { close(fired) })
	if !armed {
		t.Fatal("not armed")
	}
	if g := c.gate.Load(); g != 1 {
		t.Fatalf("gate = %d while a sentinel is armed, want 1", g)
	}
	c.Increment(3)
	waitFired(t, fired)
	if g := c.gate.Load(); g != 0 {
		t.Fatalf("gate = %d after the sentinel fired, want 0", g)
	}
	if cancel() {
		t.Fatal("cancel after fire reported true")
	}
	if g := c.gate.Load(); g != 0 {
		t.Fatalf("gate = %d after a late cancel, want 0", g)
	}

	cancel2, armed2 := c.Sentinel(10, func() {})
	if !armed2 {
		t.Fatal("second sentinel not armed")
	}
	if !cancel2() {
		t.Fatal("cancel reported false")
	}
	if g := c.gate.Load(); g != 0 {
		t.Fatalf("gate = %d after cancel, want 0", g)
	}
}

// TestSentinelBroadcastSpurious pins the spurious-fire semantics the
// Sentineler contract allows: the broadcast ablation kicks its hooks on
// every increment, satisfied level or not.
func TestSentinelBroadcastSpurious(t *testing.T) {
	c := NewBroadcast()
	fired := make(chan struct{})
	_, armed := c.Sentinel(100, func() { close(fired) })
	if !armed {
		t.Fatal("not armed")
	}
	c.Increment(1) // far below 100, but the round node wakes everyone
	waitFired(t, fired)
	if got := c.Value(); got != 1 {
		t.Fatalf("value = %d, want 1", got)
	}
}

// TestSentinelRegistrationRace hammers the arm/increment race: arming a
// sentinel concurrently with the satisfying increment must either fire
// exactly once or report not-armed — never lose the hook.
func TestSentinelRegistrationRace(t *testing.T) {
	for _, impl := range Registry() {
		t.Run(string(impl), func(t *testing.T) {
			const rounds = 200
			for r := 0; r < rounds; r++ {
				c := NewImpl(impl)
				s := c.(Sentineler)
				fired := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					c.Increment(1)
				}()
				cancel, armed := s.Sentinel(1, func() { close(fired) })
				wg.Wait()
				if armed {
					waitFired(t, fired)
					if cancel() {
						t.Fatal("cancel after a mandatory fire reported true")
					}
				}
			}
		})
	}
}

// TestSentinelStress arms, fires, and cancels sentinels from many
// goroutines against a running incrementer — the -race leg's coverage
// of the hook chain's locking.
func TestSentinelStress(t *testing.T) {
	for _, impl := range Registry() {
		t.Run(string(impl), func(t *testing.T) {
			c := NewImpl(impl)
			s := c.(Sentineler)
			const (
				arms   = 64
				target = 1000
			)
			var fires atomic.Uint64
			var wg sync.WaitGroup
			for i := 0; i < arms; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					level := uint64(i%target + 1)
					cancel, armed := s.Sentinel(level, func() { fires.Add(1) })
					if armed && i%3 == 0 {
						cancel()
					}
				}(i)
			}
			var iwg sync.WaitGroup
			iwg.Add(1)
			go func() {
				defer iwg.Done()
				for v := 0; v < target; v++ {
					c.Increment(1)
				}
			}()
			wg.Wait()
			iwg.Wait()
			c.Check(target)
		})
	}
}
