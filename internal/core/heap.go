package core

import (
	"context"
	"sync/atomic"
)

// HeapCounter is a monotonic counter whose waiter nodes are organized as a
// binary min-heap keyed on level, instead of the sorted linked list of the
// reference design. Check inserts in O(log L) rather than O(L) (L = number
// of distinct waited-on levels); Increment pops satisfied levels in
// O(k log L) for k satisfied levels. It is an ablation of the section 7
// design for the E11 experiment; the blocking machinery is the shared
// waitlist engine, so popped levels are woken after the engine mutex is
// released.
//
// The value doubles as the watermark fast path shared by every impl:
// Check/CheckContext on an already-satisfied level return after one
// atomic load, no mutex (safe because the value is monotonic — a stale
// read only under-estimates).
//
// The zero value is a valid counter with value zero.
type HeapCounter struct {
	wl    waitlist
	value atomic.Uint64 // mutated only under wl.mu; read lock-free as the watermark
	index heapIndex
	// fastChecks counts satisfied lock-free checks; folded into
	// Stats.ImmediateChecks alongside the engine's locked tally.
	fastChecks stripedUint64
}

// heapIndex organizes live waitNodes as a min-heap by level plus a map
// for waiter coalescing. Satisfied nodes are popped eagerly by
// Increment, so it never holds set nodes.
type heapIndex struct {
	heap    []*waitNode
	byLevel map[uint64]*waitNode // level -> live node, for coalescing waiters
}

func (h *heapIndex) acquire(w *waitlist, level uint64) (*waitNode, bool) {
	if n := h.byLevel[level]; n != nil {
		return n, false
	}
	if h.byLevel == nil {
		h.byLevel = make(map[uint64]*waitNode)
	}
	n := newWaitNode(level)
	h.byLevel[level] = n
	h.push(n)
	return n, true
}

// drop removes a node whose last waiter cancelled before satisfaction,
// so an abandoned level does not accumulate. The byLevel entry is
// removed only if it still points at n (a fresh node for the same level
// may have been created since).
func (h *heapIndex) drop(n *waitNode) {
	h.removeNode(n)
	if h.byLevel[n.level] == n {
		delete(h.byLevel, n.level)
	}
}

func (h *heapIndex) push(n *waitNode) {
	h.heap = append(h.heap, n)
	h.siftUp(len(h.heap) - 1)
}

func (h *heapIndex) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.heap[parent].level <= h.heap[i].level {
			break
		}
		h.heap[parent], h.heap[i] = h.heap[i], h.heap[parent]
		i = parent
	}
}

func (h *heapIndex) popMin() *waitNode {
	n := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.heap[last] = nil
	h.heap = h.heap[:last]
	h.siftDown(0)
	return n
}

func (h *heapIndex) siftDown(i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(h.heap) && h.heap[l].level < h.heap[min].level {
			min = l
		}
		if r < len(h.heap) && h.heap[r].level < h.heap[min].level {
			min = r
		}
		if min == i {
			return
		}
		h.heap[i], h.heap[min] = h.heap[min], h.heap[i]
		i = min
	}
}

// removeNode deletes n from an arbitrary heap position (cancellation path).
func (h *heapIndex) removeNode(n *waitNode) {
	for i, hn := range h.heap {
		if hn == n {
			last := len(h.heap) - 1
			h.heap[i] = h.heap[last]
			h.heap[last] = nil
			h.heap = h.heap[:last]
			if i < last {
				// The swapped-in element may belong above or below i.
				if i > 0 && h.heap[i].level < h.heap[(i-1)/2].level {
					h.siftUp(i)
				} else {
					h.siftDown(i)
				}
			}
			return
		}
	}
}

var _ levelIndex = (*heapIndex)(nil)

// NewHeap returns a HeapCounter with value zero.
func NewHeap() *HeapCounter { return new(HeapCounter) }

// Increment implements Interface. Increment(0) is a no-op and returns
// before touching the lock.
func (c *HeapCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	c.wl.lock()
	v := checkedAdd(c.value.Load(), amount)
	// Publish the watermark before any wake so a fast-path reader that
	// raced past the mutex observes the new value no later than woken
	// waiters do.
	c.value.Store(v)
	c.wl.stats.increments++
	// Chain the popped nodes through their (otherwise unused) next
	// pointers, ascending, so the out-of-lock wake needs no allocation.
	var head, tail *waitNode
	for len(c.index.heap) > 0 && c.index.heap[0].level <= v {
		n := c.index.popMin()
		delete(c.index.byLevel, n.level)
		c.wl.satisfyLocked(n)
		if tail == nil {
			head = n
		} else {
			tail.next = n
		}
		tail = n
	}
	c.wl.unlock()
	c.wl.emit(EventIncrement, amount)
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// Check implements Interface. The satisfied case is one atomic
// watermark load — no mutex.
func (c *HeapCounter) Check(level uint64) {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return
	}
	c.wl.lock()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.unlock()
		return
	}
	n := c.wl.join(&c.index, level)
	c.wl.unlock()
	c.wl.wait(n)
	c.wl.drain(&c.index, n)
}

// CheckContext implements Interface. The value is consulted before the
// context so an already-satisfied level wins over an already-cancelled
// context; cancellation is a select on the node's ready channel, with no
// watcher goroutine, and the last cancelled waiter removes the level
// from the heap.
func (c *HeapCounter) CheckContext(ctx context.Context, level uint64) error {
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	// Satisfied beats cancelled: the watermark is consulted first, and
	// the satisfied case takes no mutex.
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return nil
	}
	c.wl.lock()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		c.wl.unlock()
		return err
	}
	n := c.wl.join(&c.index, level)
	c.wl.unlock()
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(&c.index, n)
	return err
}

// Reset implements Interface. Stats are cumulative and survive the
// reset.
func (c *HeapCounter) Reset() {
	c.wl.lock()
	defer c.wl.unlock()
	if c.wl.busyLocked() || len(c.index.heap) != 0 {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. Lock-free: the watermark is the value.
func (c *HeapCounter) Value() uint64 {
	return c.value.Load()
}

// PeakLevels reports the maximum number of distinct levels simultaneously
// waited on over the counter's lifetime (Stats().PeakLevels, kept as a
// named accessor for the E10 experiment).
func (c *HeapCounter) PeakLevels() int {
	c.wl.lock()
	defer c.wl.unlock()
	return c.wl.stats.peakLevels
}

// Stats implements StatsProvider with the engine's collector, folding in
// the lock-free fast-path checks.
func (c *HeapCounter) Stats() Stats {
	s := c.wl.readStats()
	s.ImmediateChecks += c.fastChecks.Load()
	return s
}

// LockAcquires implements LockCounter.
func (c *HeapCounter) LockAcquires() uint64 {
	return c.wl.lockAcquires.Load()
}

// SetProbe implements ProbeSetter.
func (c *HeapCounter) SetProbe(f func(Event)) { c.wl.SetProbe(f) }

var _ Interface = (*HeapCounter)(nil)
var _ StatsProvider = (*HeapCounter)(nil)
var _ ProbeSetter = (*HeapCounter)(nil)
var _ LockCounter = (*HeapCounter)(nil)
