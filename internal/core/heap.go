package core

import (
	"context"
	"sync"
)

// HeapCounter is a monotonic counter whose waiter nodes are organized as a
// binary min-heap keyed on level, instead of the sorted linked list of the
// reference design. Check inserts in O(log L) rather than O(L) (L = number
// of distinct waited-on levels); Increment pops satisfied levels in
// O(k log L) for k satisfied levels. It is an ablation of the section 7
// design for the E11 experiment.
//
// The zero value is a valid counter with value zero.
type HeapCounter struct {
	mu      sync.Mutex
	value   uint64
	heap    []*heapNode          // min-heap by level
	byLevel map[uint64]*heapNode // level -> live node, for coalescing waiters
	waiters int
	peak    int
}

type heapNode struct {
	level uint64
	count int
	set   bool
	cond  sync.Cond
}

// NewHeap returns a HeapCounter with value zero.
func NewHeap() *HeapCounter { return new(HeapCounter) }

// Increment implements Interface.
func (c *HeapCounter) Increment(amount uint64) {
	c.mu.Lock()
	c.value = checkedAdd(c.value, amount)
	for len(c.heap) > 0 && c.heap[0].level <= c.value {
		n := c.popMin()
		delete(c.byLevel, n.level)
		n.set = true
		n.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Check implements Interface.
func (c *HeapCounter) Check(level uint64) {
	c.mu.Lock()
	if level <= c.value {
		c.mu.Unlock()
		return
	}
	n := c.join(level)
	for !n.set {
		n.cond.Wait()
	}
	n.count--
	c.waiters--
	c.mu.Unlock()
}

// CheckContext implements Interface.
func (c *HeapCounter) CheckContext(ctx context.Context, level uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.mu.Lock()
	if level <= c.value {
		c.mu.Unlock()
		return nil
	}
	n := c.join(level)
	stop := make(chan struct{})
	go func() {
		select {
		case <-done:
			c.mu.Lock()
			n.cond.Broadcast()
			c.mu.Unlock()
		case <-stop:
		}
	}()
	for !n.set && ctx.Err() == nil {
		n.cond.Wait()
	}
	close(stop)
	var err error
	if !n.set {
		err = ctx.Err()
	}
	n.count--
	c.waiters--
	if n.count == 0 && !n.set {
		// Cancelled node with no remaining waiters: remove it from the
		// heap so an abandoned level does not accumulate.
		c.removeNode(n)
		delete(c.byLevel, n.level)
	}
	c.mu.Unlock()
	return err
}

// join registers the caller on the node for level, creating it if needed.
// Called with c.mu held and level > c.value.
func (c *HeapCounter) join(level uint64) *heapNode {
	if c.byLevel == nil {
		c.byLevel = make(map[uint64]*heapNode)
	}
	n := c.byLevel[level]
	if n == nil {
		n = &heapNode{level: level}
		n.cond.L = &c.mu
		c.byLevel[level] = n
		c.push(n)
		if len(c.heap) > c.peak {
			c.peak = len(c.heap)
		}
	}
	n.count++
	c.waiters++
	return n
}

func (c *HeapCounter) push(n *heapNode) {
	c.heap = append(c.heap, n)
	c.siftUp(len(c.heap) - 1)
}

func (c *HeapCounter) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if c.heap[parent].level <= c.heap[i].level {
			break
		}
		c.heap[parent], c.heap[i] = c.heap[i], c.heap[parent]
		i = parent
	}
}

func (c *HeapCounter) popMin() *heapNode {
	n := c.heap[0]
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap[last] = nil
	c.heap = c.heap[:last]
	c.siftDown(0)
	return n
}

func (c *HeapCounter) siftDown(i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(c.heap) && c.heap[l].level < c.heap[min].level {
			min = l
		}
		if r < len(c.heap) && c.heap[r].level < c.heap[min].level {
			min = r
		}
		if min == i {
			return
		}
		c.heap[i], c.heap[min] = c.heap[min], c.heap[i]
		i = min
	}
}

// removeNode deletes n from an arbitrary heap position (cancellation path).
// Called with c.mu held.
func (c *HeapCounter) removeNode(n *heapNode) {
	for i, h := range c.heap {
		if h == n {
			last := len(c.heap) - 1
			c.heap[i] = c.heap[last]
			c.heap[last] = nil
			c.heap = c.heap[:last]
			if i < last {
				// The swapped-in element may belong above or below i.
				if i > 0 && c.heap[i].level < c.heap[(i-1)/2].level {
					c.siftUp(i)
				} else {
					c.siftDown(i)
				}
			}
			return
		}
	}
}

// Reset implements Interface.
func (c *HeapCounter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.waiters != 0 || len(c.heap) != 0 {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value = 0
}

// Value implements Interface. For inspection and testing only.
func (c *HeapCounter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value
}

// PeakLevels reports the maximum number of distinct levels simultaneously
// waited on over the counter's lifetime.
func (c *HeapCounter) PeakLevels() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

var _ Interface = (*HeapCounter)(nil)
