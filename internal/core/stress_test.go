package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monotonic/internal/workload"
)

// Stress tests: long randomized runs across all implementations. Skipped
// under -short.

// TestStressRandomizedOps drives each implementation with a randomized
// mix of increments, satisfied checks, future checks, and cancellations,
// and verifies global invariants: the final value is the sum of all
// increments, and every non-cancelled check at a level within that sum
// returns.
func TestStressRandomizedOps(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	runStressRandomizedOps(t)
}

// runStressRandomizedOps is the body of TestStressRandomizedOps, shared
// with the GOMAXPROCS=4 wrapper in gomaxprocs_test.go.
func runStressRandomizedOps(t *testing.T) {
	for _, impl := range Registry() {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			t.Parallel()
			const (
				incrementers = 3
				perIncr      = 2000
				checkers     = 6
				cancellers   = 2
			)
			total := uint64(incrementers * perIncr) // each increments 1
			c := NewImpl(impl)
			var wg sync.WaitGroup
			var completedChecks atomic.Int64

			for w := 0; w < checkers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := workload.NewRNG(seed + 1)
					for i := 0; i < 300; i++ {
						lv := uint64(rng.Intn(int(total + 1)))
						c.Check(lv)
						completedChecks.Add(1)
					}
				}(uint64(w))
			}
			for w := 0; w < cancellers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := workload.NewRNG(seed + 100)
					for i := 0; i < 100; i++ {
						// Sometimes beyond the horizon (guaranteed
						// cancel), sometimes within it.
						lv := uint64(rng.Intn(int(2 * total)))
						ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(200))*time.Microsecond)
						_ = c.CheckContext(ctx, lv)
						cancel()
					}
				}(uint64(w))
			}
			for w := 0; w < incrementers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perIncr; i++ {
						c.Increment(1)
					}
				}()
			}

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				t.Fatal("stress run hung")
			}
			if got := c.Value(); got != total {
				t.Fatalf("final value %d, want %d", got, total)
			}
			if got := completedChecks.Load(); got != checkers*300 {
				t.Fatalf("completed checks %d, want %d", got, checkers*300)
			}
		})
	}
}

// TestStressListStaysConsistent hammers the reference implementation and
// asserts the waiting list is empty and ordered at the end.
func TestStressListStaysConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	c := New()
	const rounds = 50
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		base := uint64(r * 100)
		for w := 0; w < 40; w++ {
			wg.Add(1)
			go func(lv uint64) {
				defer wg.Done()
				c.Check(lv)
			}(base + uint64(w%10)*10)
		}
		for i := 0; i < 100; i++ {
			c.Increment(1)
		}
		wg.Wait()
		snap := c.Inspect()
		if len(snap.Nodes) != 0 {
			t.Fatalf("round %d: %d nodes leaked: %v", r, len(snap.Nodes), snap)
		}
		if snap.Value != base+100 {
			t.Fatalf("round %d: value %d, want %d", r, snap.Value, base+100)
		}
	}
}

// TestStressResetCycles alternates full drain + Reset cycles, checking
// reuse stays sound.
func TestStressResetCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, impl := range Registry() {
		c := NewImpl(impl)
		for cycle := 0; cycle < 200; cycle++ {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(lv uint64) {
					defer wg.Done()
					c.Check(lv)
				}(uint64(w) + 1)
			}
			c.Increment(8)
			wg.Wait()
			c.Reset()
			if c.Value() != 0 {
				t.Fatalf("impl %s cycle %d: nonzero after reset", impl, cycle)
			}
		}
	}
}
