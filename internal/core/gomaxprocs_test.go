package core

import (
	"runtime"
	"testing"
)

// Every trajectory point through BENCH_5 was recorded at GOMAXPROCS=1,
// and on a single-CPU host the default test run never exercises the
// per-node wake locks or the sharded gate with more than one P. These
// wrappers rerun the scheduling-sensitive suites at GOMAXPROCS=4 —
// oversubscribed on a small host, which is exactly what forces
// preemption inside critical sections — so the race detector sees the
// wake and combining protocols under real interleaving. CI runs the
// whole core package again with GOMAXPROCS=4 in the environment; these
// wrappers keep the coverage on any host, whatever the environment says.

// withGOMAXPROCS pins the proc count for the duration of the test,
// restoring the previous value after every subtest (parallel ones
// included) has finished.
func withGOMAXPROCS(t *testing.T, n int) {
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestWakeStormExactResumesGOMAXPROCS4 reruns the wake-storm selectivity
// guard with four Ps: the out-of-lock wake batches and per-node wake
// locks finally run with incrementer, joiners, and drainers truly
// interleaved.
func TestWakeStormExactResumesGOMAXPROCS4(t *testing.T) {
	withGOMAXPROCS(t, 4)
	runWakeStormExactResumes(t)
}

// TestStressRandomizedOpsGOMAXPROCS4 reruns the randomized conformance
// stress mix with four Ps, which is what makes the sharded gate's
// raise/flush/divert dance and the flat-combining claim/fold protocol
// actually race.
func TestStressRandomizedOpsGOMAXPROCS4(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	withGOMAXPROCS(t, 4)
	runStressRandomizedOps(t)
}
