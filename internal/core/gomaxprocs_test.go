package core

import (
	"runtime"
	"testing"
)

// Every trajectory point through BENCH_5 was recorded at GOMAXPROCS=1,
// and on a single-CPU host the default test run never exercises the
// per-node wake locks or the sharded gate with more than one P. These
// wrappers rerun the scheduling-sensitive suites at GOMAXPROCS=4 —
// oversubscribed on a small host, which is exactly what forces
// preemption inside critical sections — so the race detector sees the
// wake and combining protocols under real interleaving. CI runs the
// whole core package again with GOMAXPROCS=4 in the environment; these
// wrappers keep the coverage on any host, whatever the environment says.

// withGOMAXPROCS pins the proc count for the duration of the test,
// restoring the previous value after every subtest (parallel ones
// included) has finished.
func withGOMAXPROCS(t *testing.T, n int) {
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestWakeStormExactResumesGOMAXPROCS4 reruns the wake-storm selectivity
// guard with four Ps: the out-of-lock wake batches and per-node wake
// locks finally run with incrementer, joiners, and drainers truly
// interleaved.
func TestWakeStormExactResumesGOMAXPROCS4(t *testing.T) {
	withGOMAXPROCS(t, 4)
	runWakeStormExactResumes(t)
}

// TestStressRandomizedOpsGOMAXPROCS4 reruns the randomized conformance
// stress mix with four Ps, which is what makes the sharded gate's
// raise/flush/divert dance and the flat-combining claim/fold protocol
// actually race.
func TestStressRandomizedOpsGOMAXPROCS4(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	withGOMAXPROCS(t, 4)
	runStressRandomizedOps(t)
}

// TestNoLostWakeupsGOMAXPROCS4 reruns the registry-wide lost-wake
// conformance check with four Ps. With the striped level index this is
// the run where registrations and the increment-side stripe sweeps truly
// overlap — at one P the Dekker handshake in stripes.go is never
// actually raced.
func TestNoLostWakeupsGOMAXPROCS4(t *testing.T) {
	withGOMAXPROCS(t, 4)
	runNoLostWakeups(t)
}

// TestCancelStormGOMAXPROCS4 reruns the cancellation storm with four Ps,
// interleaving stripe-side drains (cancelled waiters retiring through
// waitNode.home) with live registrations and wakes.
func TestCancelStormGOMAXPROCS4(t *testing.T) {
	withGOMAXPROCS(t, 4)
	runCancelStormKeepsCounterCorrect(t)
}

// TestStatsConformanceGOMAXPROCS4 reruns the Stats schema conformance
// suite with four Ps: the immediate-check tallies now live partly in
// lock-free striped cells, and exactness must survive real parallelism.
func TestStatsConformanceGOMAXPROCS4(t *testing.T) {
	withGOMAXPROCS(t, 4)
	runStatsConformance(t)
}

// TestStatsConsistentDuringWakeStormGOMAXPROCS4 reruns the snapshot
// hammer — including its satisfied-check exactness assertion — with
// four Ps.
func TestStatsConsistentDuringWakeStormGOMAXPROCS4(t *testing.T) {
	withGOMAXPROCS(t, 4)
	runStatsConsistentDuringWakeStorm(t)
}

// TestCheckIncrementRaceAcrossStripesGOMAXPROCS4 reruns the cross-stripe
// lost-wake regression with four Ps, the configuration where the
// register-vs-collect race actually spans cores.
func TestCheckIncrementRaceAcrossStripesGOMAXPROCS4(t *testing.T) {
	withGOMAXPROCS(t, 4)
	runCheckIncrementRaceAcrossStripes(t)
}
