package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// forEachImpl runs a subtest against every registered implementation, so
// a new entry in the registry is covered by the whole conformance
// battery automatically.
func forEachImpl(t *testing.T, f func(t *testing.T, c Interface)) {
	t.Helper()
	for _, impl := range Registry() {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			t.Parallel()
			f(t, NewImpl(impl))
		})
	}
}

func TestZeroValueSatisfiesCheckZero(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		done := make(chan struct{})
		go func() {
			c.Check(0)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Check(0) blocked on a fresh counter")
		}
		if got := c.Value(); got != 0 {
			t.Fatalf("Value() = %d, want 0", got)
		}
	})
}

func TestIncrementAccumulates(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		c.Increment(3)
		c.Increment(0)
		c.Increment(4)
		if got := c.Value(); got != 7 {
			t.Fatalf("Value() = %d, want 7", got)
		}
	})
}

func TestCheckSatisfiedReturnsImmediately(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		c.Increment(10)
		for level := uint64(0); level <= 10; level++ {
			done := make(chan struct{})
			go func() {
				c.Check(level)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatalf("Check(%d) blocked with value 10", level)
			}
		}
	})
}

func TestCheckBlocksUntilLevelReached(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		var passed atomic.Bool
		released := make(chan struct{})
		go func() {
			c.Check(5)
			passed.Store(true)
			close(released)
		}()
		// The checker must not pass while value < level.
		c.Increment(4)
		time.Sleep(20 * time.Millisecond)
		if passed.Load() {
			t.Fatal("Check(5) passed with value 4")
		}
		c.Increment(1)
		select {
		case <-released:
		case <-time.After(5 * time.Second):
			t.Fatal("Check(5) still blocked with value 5")
		}
	})
}

func TestIncrementWakesAllSatisfiedLevels(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		const waiters = 8
		var wg sync.WaitGroup
		var passedLow, passedHigh atomic.Int32
		for i := 0; i < waiters; i++ {
			wg.Add(2)
			go func(lv uint64) {
				defer wg.Done()
				c.Check(lv) // levels 1..8
				passedLow.Add(1)
			}(uint64(i + 1))
			go func(lv uint64) {
				defer wg.Done()
				c.Check(lv) // levels 101..108
				passedHigh.Add(1)
			}(uint64(i + 101))
		}
		time.Sleep(20 * time.Millisecond)
		c.Increment(50) // satisfies all low levels, none of the high
		deadline := time.After(5 * time.Second)
		for passedLow.Load() != waiters {
			select {
			case <-deadline:
				t.Fatalf("only %d/%d low waiters passed", passedLow.Load(), waiters)
			default:
				time.Sleep(time.Millisecond)
			}
		}
		if n := passedHigh.Load(); n != 0 {
			t.Fatalf("%d high waiters passed with value 50", n)
		}
		c.Increment(60)
		wg.Wait()
		if n := passedHigh.Load(); n != waiters {
			t.Fatalf("high waiters passed = %d, want %d", n, waiters)
		}
	})
}

func TestManyWaitersSameLevel(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		const waiters = 64
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.Check(1)
			}()
		}
		time.Sleep(10 * time.Millisecond)
		c.Increment(1)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("not all same-level waiters released")
		}
	})
}

func TestIncrementOverflowPanics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		c.Increment(^uint64(0))
		defer func() {
			if recover() == nil {
				t.Fatal("overflowing Increment did not panic")
			}
		}()
		c.Increment(1)
	})
}

func TestResetAllowsReuse(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		c.Increment(42)
		c.Reset()
		if got := c.Value(); got != 0 {
			t.Fatalf("Value() after Reset = %d, want 0", got)
		}
		// The counter must be fully functional after Reset.
		released := make(chan struct{})
		go func() {
			c.Check(3)
			close(released)
		}()
		time.Sleep(10 * time.Millisecond)
		c.Increment(3)
		select {
		case <-released:
		case <-time.After(5 * time.Second):
			t.Fatal("Check blocked after Reset+Increment")
		}
	})
}

func TestResetWithWaitersPanics(t *testing.T) {
	// ChanCounter waiters leave no registration we can flush from this
	// test without an increment, so give each impl a waiter and expect
	// the documented panic.
	forEachImpl(t, func(t *testing.T, c Interface) {
		started := make(chan struct{})
		release := make(chan struct{})
		go func() {
			close(started)
			c.Check(100)
			close(release)
		}()
		<-started
		time.Sleep(20 * time.Millisecond) // let the waiter suspend
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Reset with a suspended waiter did not panic")
				}
			}()
			c.Reset()
		}()
		c.Increment(100) // release the waiter so the test can finish
		select {
		case <-release:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never released")
		}
	})
}

func TestCheckContextCancellation(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() { errc <- c.CheckContext(ctx, 10) }()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-errc:
			if err != context.Canceled {
				t.Fatalf("CheckContext = %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("CheckContext did not return after cancel")
		}
		// Cancellation must not perturb the counter: a later increment
		// still satisfies new checks.
		c.Increment(10)
		if err := c.CheckContext(context.Background(), 10); err != nil {
			t.Fatalf("CheckContext after increment = %v", err)
		}
	})
}

func TestCheckContextSatisfiedIgnoresLiveContext(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		c.Increment(5)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if err := c.CheckContext(ctx, 5); err != nil {
			t.Fatalf("CheckContext on satisfied level = %v", err)
		}
	})
}

func TestCheckContextAlreadyCancelled(t *testing.T) {
	// A satisfied level beats a cancelled context: the pre-cancelled
	// context only matters for levels the value does not yet satisfy.
	forEachImpl(t, func(t *testing.T, c Interface) {
		c.Increment(5)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := c.CheckContext(ctx, 5); err != nil {
			t.Fatalf("CheckContext on satisfied level with pre-cancelled ctx = %v, want nil", err)
		}
		if err := c.CheckContext(ctx, 6); err != context.Canceled {
			t.Fatalf("CheckContext on unsatisfied level with pre-cancelled ctx = %v, want Canceled", err)
		}
	})
}

func TestCheckContextBackgroundBehavesLikeCheck(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		errc := make(chan error, 1)
		go func() { errc <- c.CheckContext(context.Background(), 2) }()
		time.Sleep(10 * time.Millisecond)
		c.Increment(2)
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("CheckContext(Background) = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("CheckContext(Background) never returned")
		}
	})
}

func TestCancelOneWaiterLeavesOthersSuspended(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		ctx, cancel := context.WithCancel(context.Background())
		cancelled := make(chan error, 1)
		var passed atomic.Bool
		stayed := make(chan struct{})
		go func() { cancelled <- c.CheckContext(ctx, 7) }()
		go func() {
			c.Check(7)
			passed.Store(true)
			close(stayed)
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		if err := <-cancelled; err != context.Canceled {
			t.Fatalf("cancelled waiter got %v", err)
		}
		time.Sleep(20 * time.Millisecond)
		if passed.Load() {
			t.Fatal("uncancelled waiter passed at value 0")
		}
		c.Increment(7)
		select {
		case <-stayed:
		case <-time.After(5 * time.Second):
			t.Fatal("surviving waiter never released")
		}
	})
}

func TestWaitTimeout(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		if core := c; core.Value() != 0 {
			t.Fatal("fresh counter nonzero")
		}
		if WaitTimeout(c, 1, 30*time.Millisecond) {
			t.Fatal("WaitTimeout reported success at value 0")
		}
		c.Increment(1)
		if !WaitTimeout(c, 1, 5*time.Second) {
			t.Fatal("WaitTimeout failed on satisfied level")
		}
	})
}

// TestNoLostWakeups hammers a counter with concurrent incrementers and
// checkers; every Check(level) with level <= total increments must
// eventually return.
func TestNoLostWakeups(t *testing.T) { runNoLostWakeups(t) }

func runNoLostWakeups(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		const (
			incrementers = 4
			perIncr      = 500
			checkers     = 8
		)
		total := uint64(incrementers * perIncr)
		var wg sync.WaitGroup
		for i := 0; i < checkers; i++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				// Each checker sweeps a stride of levels up to total.
				for lv := seed % 17; lv <= total; lv += 13 {
					c.Check(lv)
				}
				c.Check(total)
			}(uint64(i))
		}
		for i := 0; i < incrementers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perIncr; j++ {
					c.Increment(1)
				}
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("lost wakeup: goroutines still blocked")
		}
		if got := c.Value(); got != total {
			t.Fatalf("final value %d, want %d", got, total)
		}
	})
}

// TestMonotonicValueObservations verifies that Value() never appears to
// decrease while increments race.
func TestMonotonicValueObservations(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		stop := make(chan struct{})
		var bad atomic.Bool
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var last uint64
				for {
					select {
					case <-stop:
						return
					default:
					}
					v := c.Value()
					if v < last {
						bad.Store(true)
						return
					}
					last = v
				}
			}()
		}
		for i := 0; i < 2000; i++ {
			c.Increment(1)
		}
		close(stop)
		wg.Wait()
		if bad.Load() {
			t.Fatal("observed a decreasing value")
		}
	})
}
