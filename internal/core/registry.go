package core

// Impl identifies one counter implementation for tests, benchmarks, and
// command-line selection.
type Impl string

// The implementations available in this package.
const (
	ImplList      Impl = "list"      // reference design, paper section 7
	ImplHeap      Impl = "heap"      // min-heap waiter index
	ImplChan      Impl = "chan"      // close-channel broadcast
	ImplBroadcast Impl = "broadcast" // naive single-condvar baseline
	ImplAtomic    Impl = "atomic"    // list design + lock-free fast path
	ImplSpin      Impl = "spin"      // spin-then-block hybrid over the atomic design
	ImplSharded   Impl = "sharded"   // waiter-gated striped increment fast path
	ImplFC        Impl = "fc"        // flat-combining contended increment path
)

// Impls lists every implementation, reference design first.
var Impls = []Impl{ImplList, ImplHeap, ImplChan, ImplBroadcast, ImplAtomic, ImplSpin, ImplSharded, ImplFC}

// Registry returns the implementations every conformance, fuzz,
// cancellation, and stress suite must cover. Test code iterates this
// (rather than hard-coding names) so a newly registered implementation
// is picked up by the whole battery automatically. The returned slice is
// a copy; callers may reorder or filter it.
func Registry() []Impl {
	return append([]Impl(nil), Impls...)
}

// NewImpl constructs a fresh counter of the named implementation. It
// panics on an unknown name, which is always a programming error.
func NewImpl(impl Impl) Interface {
	switch impl {
	case ImplList:
		return New()
	case ImplHeap:
		return NewHeap()
	case ImplChan:
		return NewChan()
	case ImplBroadcast:
		return NewBroadcast()
	case ImplAtomic:
		return NewAtomic()
	case ImplSpin:
		return NewSpin()
	case ImplSharded:
		return NewSharded()
	case ImplFC:
		return NewFC()
	}
	panic("core: unknown counter implementation " + string(impl))
}

// Every registry implementation reports the unified Stats schema; the
// engine-based ones (all but ChanCounter, which has no engine) also
// accept a probe. The conformance suite relies on both.
var (
	_ StatsProvider = (*Counter)(nil)
	_ StatsProvider = (*HeapCounter)(nil)
	_ StatsProvider = (*ChanCounter)(nil)
	_ StatsProvider = (*BroadcastCounter)(nil)
	_ StatsProvider = (*AtomicCounter)(nil)
	_ StatsProvider = (*SpinCounter)(nil)
	_ StatsProvider = (*ShardedCounter)(nil)
	_ StatsProvider = (*FCCounter)(nil)

	_ ProbeSetter = (*Counter)(nil)
	_ ProbeSetter = (*HeapCounter)(nil)
	_ ProbeSetter = (*BroadcastCounter)(nil)
	_ ProbeSetter = (*AtomicCounter)(nil)
	_ ProbeSetter = (*SpinCounter)(nil)
	_ ProbeSetter = (*ShardedCounter)(nil)
	_ ProbeSetter = (*FCCounter)(nil)

	// Every registry implementation supports sentinel hooks (the
	// predicate layer's registration surface; see sentinel.go).
	_ Sentineler = (*Counter)(nil)
	_ Sentineler = (*HeapCounter)(nil)
	_ Sentineler = (*ChanCounter)(nil)
	_ Sentineler = (*BroadcastCounter)(nil)
	_ Sentineler = (*AtomicCounter)(nil)
	_ Sentineler = (*SpinCounter)(nil)
	_ Sentineler = (*ShardedCounter)(nil)
	_ Sentineler = (*FCCounter)(nil)

	// Every registry implementation reports mutex acquisitions for the
	// E25 zero-lock assertion (see LockCounter in stats.go).
	_ LockCounter = (*Counter)(nil)
	_ LockCounter = (*HeapCounter)(nil)
	_ LockCounter = (*ChanCounter)(nil)
	_ LockCounter = (*BroadcastCounter)(nil)
	_ LockCounter = (*AtomicCounter)(nil)
	_ LockCounter = (*SpinCounter)(nil)
	_ LockCounter = (*ShardedCounter)(nil)
	_ LockCounter = (*FCCounter)(nil)
)
