package core

import (
	"context"
	"sync"
	"testing"
	"time"
	"unsafe"
)

// Tests for the striped level index (stripes.go) and the lock-free
// satisfied fast path: the cache-line audit behind the padding comments,
// the zero-mutex guarantee E25 runtime-asserts, and the cross-stripe
// register-vs-increment race the Dekker handshake exists to win.

// TestCacheLinePadding is the audit the padding comments point at: every
// striped structure's element must be a whole number of cache lines so
// array neighbours never share one, and two lines (128 bytes) wherever a
// comment promises clearance from the adjacent-line prefetcher. Checked
// with unsafe arithmetic rather than trusted, because adding a field to
// any of these structs silently re-couples the stripes.
func TestCacheLinePadding(t *testing.T) {
	const line = 64
	if s := unsafe.Sizeof(shardCell{}); s != 2*line {
		t.Errorf("shardCell size = %d, want %d (two cache lines)", s, 2*line)
	}
	if s := unsafe.Sizeof(fcSlot{}); s != 2*line {
		t.Errorf("fcSlot size = %d, want %d (two cache lines)", s, 2*line)
	}
	if s := unsafe.Sizeof(paddedUint64{}); s != 2*line {
		t.Errorf("paddedUint64 size = %d, want %d (two cache lines)", s, 2*line)
	}

	// The stripe header: total size a multiple of the line (so the array
	// stride preserves separation), and at least one full line of
	// trailing pad after min — the last hot field — so one stripe's
	// mutex/minimum traffic never lands on the next stripe's line.
	var st stripe
	ss := unsafe.Sizeof(st)
	if ss%line != 0 {
		t.Errorf("stripe size = %d, want a multiple of %d", ss, line)
	}
	hotEnd := unsafe.Offsetof(st.min) + unsafe.Sizeof(st.min)
	if ss-hotEnd < line {
		t.Errorf("stripe trailing pad = %d bytes after min, want >= %d", ss-hotEnd, line)
	}
	// The fields the lock-free paths load atomically must be 8-aligned
	// (true on every 64-bit layout, but the audit is cheap).
	for name, off := range map[string]uintptr{
		"stripe.min":  unsafe.Offsetof(st.min),
		"shardCell.v": unsafe.Offsetof(shardCell{}.v),
		"fcSlot.v":    unsafe.Offsetof(fcSlot{}.v),
		"padded.v":    unsafe.Offsetof(paddedUint64{}.v),
	} {
		if off%8 != 0 {
			t.Errorf("%s offset = %d, want 8-byte aligned", name, off)
		}
	}
}

// TestNewAtomicStripesSizing pins the constructor's rounding contract:
// the requested stripe count is rounded up to a power of two, and n=1
// really is a single stripe — the single-index engine E25 measures the
// striped default against.
func TestNewAtomicStripesSizing(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16},
	} {
		c := NewAtomicStripes(tc.n)
		if got := len(*c.idx.stripes.Load()); got != tc.want {
			t.Errorf("NewAtomicStripes(%d): %d stripes, want %d", tc.n, got, tc.want)
		}
	}
	// And it is still a working counter.
	c := NewAtomicStripes(1)
	done := make(chan struct{})
	go func() { c.Check(3); close(done) }()
	c.Increment(3)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("single-stripe counter lost a wake")
	}
}

// TestSatisfiedCheckZeroLocks is the in-suite version of E25's headline
// assertion: once a level is satisfied, Check, CheckContext (live or
// expired context), zero-timeout WaitTimeout, and Value acquire zero
// mutexes — engine or stripe — on every registry implementation. The
// subtests deliberately do not run in parallel: the lock-counting probe
// is global, and a sibling disabling it early would hollow the assertion
// out.
func TestSatisfiedCheckZeroLocks(t *testing.T) {
	for _, impl := range Registry() {
		t.Run(string(impl), func(t *testing.T) {
			c := NewImpl(impl)
			lc := c.(LockCounter)
			c.Increment(5)
			expired, cancel := context.WithCancel(context.Background())
			cancel()
			SetLockCounting(true)
			defer SetLockCounting(false)
			base := lc.LockAcquires()
			for i := 0; i < 200; i++ {
				c.Check(3)
				if err := c.CheckContext(context.Background(), 5); err != nil {
					t.Fatalf("satisfied CheckContext = %v", err)
				}
				if err := c.CheckContext(expired, 4); err != nil {
					t.Fatalf("satisfied level lost to expired context: %v", err)
				}
				if !WaitTimeout(c, 1, 0) {
					t.Fatal("zero-timeout WaitTimeout false on a satisfied level")
				}
				if v := c.Value(); v != 5 {
					t.Fatalf("Value = %d, want 5", v)
				}
			}
			if got := lc.LockAcquires(); got != base {
				t.Fatalf("satisfied checks acquired %d mutexes, want 0", got-base)
			}
		})
	}
}

// TestCheckIncrementRaceAcrossStripes is the lost-wake regression test
// for the striped index: a Check registering concurrently with the very
// Increment that satisfies it must never be stranded, whichever stripe
// the level hashes to. Each iteration races a fresh registration against
// its satisfying increment at a level that cycles through more stripes
// than any GOMAXPROCS on this host allocates, so every stripe boundary
// (and the watermark/minimum handshake on it) gets hit.
func TestCheckIncrementRaceAcrossStripes(t *testing.T) { runCheckIncrementRaceAcrossStripes(t) }

func runCheckIncrementRaceAcrossStripes(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	for _, impl := range []Impl{ImplAtomic, ImplSpin, ImplSharded, ImplFC} {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < iters; i++ {
				c := NewImpl(impl)
				level := uint64(i%128) + 1
				var wg sync.WaitGroup
				wg.Add(2)
				go func() { defer wg.Done(); c.Check(level) }()
				go func() { defer wg.Done(); c.Increment(level) }()
				raceDone := make(chan struct{})
				go func() { wg.Wait(); close(raceDone) }()
				select {
				case <-raceDone:
				case <-time.After(30 * time.Second):
					t.Fatalf("iteration %d: Check(%d) lost its registration/increment race", i, level)
				}
				if got := c.Value(); got != level {
					t.Fatalf("iteration %d: value = %d, want %d", i, got, level)
				}
			}
		})
	}
}

// TestStripeMinTracksHead is a white-box check that each stripe's atomic
// minimum is exact: armed sentinels at scattered levels must leave every
// stripe's min equal to its list head, and cancelling them all must
// return every stripe to minArmedNone — the state a non-waking increment
// relies on to take zero stripe locks.
func TestStripeMinTracksHead(t *testing.T) {
	c := NewAtomic()
	var cancels []func() bool
	for lv := uint64(1); lv <= 64; lv++ {
		cancel, armed := c.Sentinel(lv*977+5, func() {})
		if !armed {
			t.Fatalf("sentinel at %d not armed on a zero counter", lv*977+5)
		}
		cancels = append(cancels, cancel)
	}
	stripes := *c.idx.stripes.Load()
	for i := range stripes {
		s := &stripes[i]
		s.mu.Lock()
		head := s.list.head
		min := s.min.Load()
		s.mu.Unlock()
		switch {
		case head == nil && min != minArmedNone:
			t.Errorf("stripe %d: empty but min = %d, want minArmedNone", i, min)
		case head != nil && min != head.level:
			t.Errorf("stripe %d: min = %d, head level = %d", i, min, head.level)
		}
	}
	for _, cancel := range cancels {
		if !cancel() {
			t.Error("cancel reported already-fired on a never-satisfied level")
		}
	}
	for i := range stripes {
		s := &stripes[i]
		s.mu.Lock()
		head, min := s.list.head, s.min.Load()
		s.mu.Unlock()
		if head != nil || min != minArmedNone {
			t.Errorf("stripe %d after cancel-all: head=%v min=%d, want empty/minArmedNone", i, head, min)
		}
	}
	if c.idx.busy() {
		t.Error("index busy after every sentinel cancelled")
	}
	c.Reset() // must not panic: nothing armed
}
