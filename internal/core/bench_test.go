package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Microbenchmarks of the data-structure costs behind the section 7
// complexity claims, at finer grain than the root-level tables.

// BenchmarkIncrement measures raw concurrent increment throughput with
// no waiters — the write-heavy regime the sharded fast path targets.
// Every registered implementation runs under RunParallel so the mutex
// designs pay their real contention cost; the sharded design's stripes
// are what the ≥ 5x-at-8-cores acceptance number in BENCH_2.json refers
// to (on a single-CPU host the gap is contention avoidance only).
func BenchmarkIncrement(b *testing.B) {
	for _, impl := range Registry() {
		b.Run(string(impl), func(b *testing.B) {
			c := NewImpl(impl)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					c.Increment(1)
				}
			})
		})
	}
}

// BenchmarkIncrementWithWaiter is the same storm with one parked waiter,
// which holds the sharded counter's gate up for the whole run: every
// implementation, sharded included, must pay the exact locked wake path.
// The interesting comparison is against BenchmarkIncrement — the cost of
// the gate being raised.
func BenchmarkIncrementWithWaiter(b *testing.B) {
	for _, impl := range Registry() {
		b.Run(string(impl), func(b *testing.B) {
			c := NewImpl(impl)
			ctx, cancel := context.WithCancel(context.Background())
			parked := make(chan struct{})
			done := make(chan struct{})
			go func() {
				close(parked)
				c.CheckContext(ctx, 1<<62)
				close(done)
			}()
			<-parked
			time.Sleep(time.Millisecond) // let the waiter suspend
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					c.Increment(1)
				}
			})
			b.StopTimer()
			cancel()
			<-done
		})
	}
}

// parkWaiters suspends n goroutines on c at the given level via f
// (Check or CheckContext) and returns a wait function that blocks until
// all have resumed. It returns once every waiter is believed parked.
func parkWaiters(n int, f func()) (wait func()) {
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			f()
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	time.Sleep(2 * time.Millisecond) // started fires on the way into f; let everyone suspend
	return wg.Wait
}

// BenchmarkWakeFanout times one Increment releasing n parked Check
// waiters on a single level — the wake-path scalability number (E20 is
// the experiment-shaped version). Only the Increment-to-last-resumed
// span is timed; spawning and parking the waiters is not.
func BenchmarkWakeFanout(b *testing.B) {
	for _, impl := range Registry() {
		for _, n := range []int{100, 1000, 10000} {
			b.Run(fmt.Sprintf("%s/waiters=%d", impl, n), func(b *testing.B) {
				c := NewImpl(impl)
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					level := c.Value() + 1
					wait := parkWaiters(n, func() { c.Check(level) })
					b.StartTimer()
					c.Increment(1)
					wait()
				}
			})
		}
	}
}

// BenchmarkBroadcastLatency is BenchmarkWakeFanout's cancellable twin:
// the waiters park in CheckContext, so they sleep in a select on the
// node's ready channel rather than on the condition variable, and the
// wake is a single channel close instead of a broadcast.
func BenchmarkBroadcastLatency(b *testing.B) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // keep ctx.Done() non-nil so the select path is exercised
	for _, impl := range Registry() {
		b.Run(string(impl), func(b *testing.B) {
			c := NewImpl(impl)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				level := c.Value() + 1
				wait := parkWaiters(n, func() { _ = c.CheckContext(ctx, level) })
				b.StartTimer()
				c.Increment(1)
				wait()
			}
		})
	}
}

// BenchmarkCheckSatisfied measures Check on an already-satisfied level —
// the watermark fast path. Every implementation should resolve this with
// one atomic load and no mutex, so the sub-benchmarks should be nearly
// indistinguishable and flat in the number of parallel callers.
func BenchmarkCheckSatisfied(b *testing.B) {
	for _, impl := range Registry() {
		b.Run(string(impl), func(b *testing.B) {
			c := NewImpl(impl)
			c.Increment(1)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					c.Check(1)
				}
			})
		})
	}
}

// BenchmarkCheckStorm measures registration pressure on the level index:
// every worker repeatedly arms and immediately cancels a sentinel at its
// own distinct never-satisfied level — Check's slow-path registration
// and cancellation drain without the park. On the single-index designs
// all workers serialize on the engine mutex; on the striped index
// distinct levels hash to distinct stripes, so this is the benchmark the
// E25 scaling claim is about.
func BenchmarkCheckStorm(b *testing.B) {
	for _, impl := range Registry() {
		b.Run(string(impl), func(b *testing.B) {
			c := NewImpl(impl).(Sentineler)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				// Worker-unique level far above anything Increment could
				// reach, so registration never self-satisfies.
				level := uint64(1)<<40 + worker.Add(1)<<20
				for pb.Next() {
					cancel, armed := c.Sentinel(level, func() {})
					if armed {
						cancel()
					}
				}
			})
		})
	}
}

// BenchmarkSimInsert measures pure waiter-registration cost on the
// reference list via the single-threaded simulator: inserting a new
// highest level into a list already holding `levels` distinct levels is
// the list design's O(L) worst case.
func BenchmarkSimInsert(b *testing.B) {
	for _, levels := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("levels=%d", levels), func(b *testing.B) {
			s := NewSim()
			for l := 1; l <= levels; l++ {
				s.Check(uint64(l))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Register at the far end, then undo: resume is O(1)
				// after satisfying, so drive a satisfy/drain cycle
				// on a private throwaway level far above the rest.
				lv := uint64(levels + 1)
				s.Check(lv)
				n := s.c.list.head
				for n != nil && n.level != lv {
					n = n.next
				}
				if n != nil {
					s.c.wl.mu.Lock()
					s.c.leave(n) // unregister without satisfying
					s.c.wl.mu.Unlock()
				}
			}
		})
	}
}

// BenchmarkReleaseCycle measures a full park-and-release round trip:
// `levels` goroutines suspend on distinct levels, one increment frees
// them all. The whole cycle is timed (goroutine spawn included), so
// compare sub-benchmarks against each other, not in absolute terms.
func BenchmarkReleaseCycle(b *testing.B) {
	for _, levels := range []int{8, 64} {
		for _, impl := range []Impl{ImplList, ImplHeap, ImplBroadcast} {
			b.Run(fmt.Sprintf("%s/levels=%d", impl, levels), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c := NewImpl(impl)
					var wg sync.WaitGroup
					started := make(chan struct{}, levels)
					for l := 0; l < levels; l++ {
						wg.Add(1)
						go func(lv uint64) {
							defer wg.Done()
							started <- struct{}{}
							c.Check(lv)
						}(uint64(l) + 1)
					}
					for l := 0; l < levels; l++ {
						<-started
					}
					c.Increment(uint64(levels))
					wg.Wait()
				}
			})
		}
	}
}

// BenchmarkSnapshot measures Inspect on a populated structure.
func BenchmarkSnapshot(b *testing.B) {
	c := New()
	var wg sync.WaitGroup
	const levels = 64
	started := make(chan struct{}, levels)
	for l := 0; l < levels; l++ {
		wg.Add(1)
		go func(lv uint64) {
			defer wg.Done()
			started <- struct{}{}
			c.Check(lv)
		}(uint64(l) + 1)
	}
	for l := 0; l < levels; l++ {
		<-started
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inspect()
	}
	b.StopTimer()
	c.Increment(levels)
	wg.Wait()
}
