package core

import (
	"sync"
	"sync/atomic"
)

// This file is the striped level index: the waitlist's registration side
// split into stripeCount() hash-striped sub-engines so concurrent
// Check/Sentinel registrations at different levels never contend on one
// mutex. It is the read-side counterpart of the write-side striping
// already in ShardedCounter — and the follow-up the PR 6 scaling matrix
// called for: with the watermark fast path handling satisfied checks
// lock-free, the registration slow path was the last place readers
// serialized on the engine mutex.
//
// Division of labour against waitlist.go: the engine keeps everything
// wake-side (per-node wake locks, wakeBatch, sentinel hook firing, the
// drain protocol) byte-for-byte unchanged — a stripe-owned node wakes
// and drains exactly like an engine-owned one. What moves here is the
// registration side: each stripe owns a mutex, a sorted listIndex, a
// draining record, and an atomic minimum armed level. A node created by
// a stripe carries a home pointer, which is how the shared drain path
// (waitlist.drain) routes its retirement back to the stripe instead of
// the engine mutex.
//
// The lost-wake argument, striped. The single-index engine prevents the
// register-vs-satisfy race by doing both under one mutex. Here the two
// sides never share a lock; the protocol is a Dekker handshake through
// two seq-cst atomics, the value watermark and the per-stripe minimum:
//
//   - register (under the stripe mutex): link the node, publish the
//     stripe minimum (min.Store, if the new level lowers it), THEN load
//     the watermark. If the watermark already covers the level, the
//     registrant satisfies its own node and wakes it — it does not park.
//   - increment (after publishing the new value): store the watermark,
//     THEN load each stripe's minimum, locking and sweeping only the
//     stripes whose minimum the new value covers.
//
// Both sides store before they load, and sync/atomic operations are
// sequentially consistent, so at least one side observes the other: if
// the incrementer's min load misses the registration, the registrant's
// watermark load sees the new value (and self-satisfies); if the
// registrant's watermark load misses the increment, the incrementer's
// min load sees the armed stripe (and sweeps it, finding the node under
// the stripe mutex). A non-waking increment therefore touches zero
// stripe locks — it pays one atomic min load per stripe — and a parked
// waiter can never be stranded across a stripe boundary.
//
// The stripe minimum is exact under the stripe mutex (it always equals
// the head of the sorted per-stripe list, or minArmedNone when the list
// is empty) and is re-derived after every list mutation, so it can go
// stale only in the harmless direction: an incrementer acting on a
// just-lowered value sweeps a stripe that turns out empty.

// minArmedNone is the stripe minimum while no node is armed. A real
// level can equal it (^0), in which case an increment at ^0 sweeps the
// stripe whether or not it is armed — a spurious lock at the overflow
// boundary, never a missed one.
const minArmedNone = ^uint64(0)

// stripe is one registration sub-engine. The header is padded to two
// cache lines (see stripes_test.go's audit) so neighbouring stripes'
// mutexes and minimums never false-share — the entire point is that
// registrations on different stripes proceed without touching a common
// line.
type stripe struct {
	owner *stripedList
	mu    sync.Mutex
	list  listIndex
	// draining and drainLive mirror waitlist.draining for nodes
	// satisfied out of this stripe; guarded by mu. Retired slots go nil
	// so drainIdx stays valid (see waitlist.removeDraining).
	draining  []*waitNode
	drainLive int
	// min is the lowest armed level in this stripe, minArmedNone when
	// empty. Mutated only under mu; loaded lock-free by increments
	// deciding whether to sweep. The register side stores it BEFORE
	// loading the watermark — that ordering is the lost-wake handshake.
	min atomic.Uint64

	_ [64]byte // pad the header to 128 bytes, clear of the next stripe
}

// stripedList is the striped level index used by the scaling
// implementations (AtomicCounter, ShardedCounter, FCCounter). The
// reference Counter and the index ablations (heap, broadcast) keep
// their single engine-mutex index: they are the baselines the striping
// is measured against, and the Figure 2 machinery (Inspect, Sim)
// depends on the reference counter's exact single-list structure.
type stripedList struct {
	stripes atomic.Pointer[[]stripe]

	// Registration-side tallies. They live here, as atomics, because
	// registration no longer happens under the engine mutex where
	// engineStats' locked fields are maintained; the owning counter's
	// Stats() folds them into the same schema. satisfied is bumped
	// under a stripe mutex BEFORE the node is woken, so loading the
	// wake-side atomics first (readStats' discipline) still yields
	// Broadcasts <= SatisfiedLevels in every snapshot.
	suspends  atomic.Uint64 // registrations that went on to park
	immediate atomic.Uint64 // registrations satisfied during the re-check
	satisfied atomic.Uint64 // nodes satisfied out of stripe lists
	live      atomic.Int64  // armed nodes across all stripes
	peak      atomic.Int64  // high-water mark of live
	// locks counts stripe-mutex acquisitions while SetLockCounting is
	// enabled; folded into LockAcquires next to the engine mutex's own
	// count so E25's zero-lock assertion covers both tiers.
	locks atomic.Uint64
}

// ensure allocates the stripe array with the given size (a power of
// two) if none exists yet, so the owning counter can size all its
// striped structures from one stripeCount capture (the
// TestStripeCountCapturedOnce discipline). First allocation wins.
func (sl *stripedList) ensure(size int) {
	if sl.stripes.Load() != nil {
		return
	}
	fresh := make([]stripe, size)
	for i := range fresh {
		fresh[i].owner = sl
		fresh[i].min.Store(minArmedNone)
	}
	sl.stripes.CompareAndSwap(nil, &fresh)
}

// arr returns the stripe array, allocating it on first use for owners
// (AtomicCounter) that have no earlier capture point.
func (sl *stripedList) arr() []stripe {
	if p := sl.stripes.Load(); p != nil {
		return *p
	}
	sl.ensure(stripeCount())
	return *sl.stripes.Load()
}

// stripeFor hashes a level to its stripe. The mapping must be
// deterministic per level — waiters on one level must coalesce onto one
// node — so it hashes the level itself, unlike stripeIndex's
// per-goroutine spreading.
func (sl *stripedList) stripeFor(level uint64) *stripe {
	s := sl.arr()
	h := level * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return &s[h&uint64(len(s)-1)]
}

// lock takes the stripe mutex, counting the acquisition while lock
// counting is enabled (the probe behind E25's zero-lock assertion).
func (s *stripe) lock() {
	s.mu.Lock()
	if lockCounting.Load() {
		s.owner.locks.Add(1)
	}
}

// syncMinLocked re-derives the stripe minimum from the sorted list
// head. Called with s.mu held after every list mutation.
func (s *stripe) syncMinLocked() {
	if h := s.list.head; h != nil {
		s.min.Store(h.level)
	} else {
		s.min.Store(minArmedNone)
	}
}

// register is the striped Check/Sentinel slow path: the caller observed
// level > watermark on the lock-free fast path and now registers on
// level's stripe. v is the owning counter's published watermark (its
// atomic value), re-loaded under the stripe mutex after the node is
// linked and the stripe minimum stored — the register half of the
// Dekker handshake in the file comment.
//
// If the re-load shows the level satisfied, register satisfies the
// stripe's whole covered prefix itself (doing the racing increment's
// sweep early), wakes it, and returns (nil, true): the caller does not
// park, and — when suspend is set — the call is an immediate check in
// the cost model. Otherwise the caller parks on the returned node (a
// suspend when suspend is set; sentinel registrations pass false and
// count neither way, like joinSentinel).
func (sl *stripedList) register(w *waitlist, level uint64, v *atomic.Uint64, suspend bool) (*waitNode, bool) {
	s := sl.stripeFor(level)
	s.lock()
	n, created := s.list.acquire(w, level)
	if created {
		n.home = s
		if level < s.min.Load() {
			s.min.Store(level)
		}
		l := sl.live.Add(1)
		for {
			p := sl.peak.Load()
			if l <= p || sl.peak.CompareAndSwap(p, l) {
				break
			}
		}
	}
	n.count.Add(1)
	if value := v.Load(); level <= value {
		// Satisfied in the registration window: sweep the covered
		// prefix (our node included — level <= value) and wake it, so
		// waiters that parked on these nodes earlier are released even
		// if the racing increment's own sweep missed them.
		head, _ := s.list.popSatisfied(value)
		for sn := head; sn != nil; sn = sn.next {
			sl.satisfyLocked(s, sn)
		}
		s.syncMinLocked()
		s.mu.Unlock()
		if suspend {
			sl.immediate.Add(1)
		}
		w.wakeBatch(head)
		w.drain(nil, n) // our own registration; home routes it to the stripe
		return nil, true
	}
	if suspend {
		sl.suspends.Add(1)
	}
	s.mu.Unlock()
	return n, false
}

// satisfyLocked is satisfyLocked for a stripe-owned node: marks it set
// and moves it to the stripe's draining record. Called with s.mu held,
// after the node left the stripe list.
func (sl *stripedList) satisfyLocked(s *stripe, n *waitNode) {
	n.set.Store(true)
	n.drainIdx = len(s.draining)
	s.draining = append(s.draining, n)
	s.drainLive++
	sl.satisfied.Add(1)
	sl.live.Add(-1)
}

// collect is the increment-side sweep: having published the new value v
// as the watermark, the incrementer walks the stripe minimums and locks
// only the stripes the value covers, unlinking each one's satisfied
// prefix. The chains are concatenated and returned for the caller to
// hand to wakeBatch with no stripe lock held — the same out-of-lock
// wake discipline as the single-index engine. A non-waking increment
// pays one atomic load per stripe and takes zero locks.
func (sl *stripedList) collect(v uint64) *waitNode {
	p := sl.stripes.Load()
	if p == nil {
		return nil
	}
	var head, tail *waitNode
	for i := range *p {
		s := &(*p)[i]
		if s.min.Load() > v {
			continue
		}
		s.lock()
		h, _ := s.list.popSatisfied(v)
		for n := h; n != nil; n = n.next {
			sl.satisfyLocked(s, n)
		}
		s.syncMinLocked()
		s.mu.Unlock()
		if h != nil {
			if tail == nil {
				head = h
			} else {
				tail.next = h
			}
			for tail = h; tail.next != nil; tail = tail.next {
			}
		}
	}
	return head
}

// retire is cleanupLocked for a stripe-owned node: the last drainer
// routes here (via waitNode.home) instead of the engine mutex. The
// count re-check under the stripe mutex plus the drained flag keep
// retirement idempotent against concurrent re-joins, exactly like the
// engine path.
func (sl *stripedList) retire(s *stripe, n *waitNode) {
	s.lock()
	if n.drained || n.count.Load() != 0 {
		s.mu.Unlock()
		return
	}
	n.drained = true
	if n.set.Load() {
		s.draining[n.drainIdx] = nil
		s.drainLive--
		if s.drainLive == 0 {
			s.draining = s.draining[:0]
		}
	} else {
		s.list.drop(n)
		sl.live.Add(-1)
		s.syncMinLocked()
	}
	s.mu.Unlock()
}

// busy reports whether any stripe still holds an armed node or a
// draining waiter — the striped half of Reset's misuse check.
func (sl *stripedList) busy() bool {
	p := sl.stripes.Load()
	if p == nil {
		return false
	}
	for i := range *p {
		s := &(*p)[i]
		s.lock()
		b := s.drainLive != 0 || s.list.head != nil
		s.mu.Unlock()
		if b {
			return true
		}
	}
	return false
}

// foldStats merges the registration-side tallies into an engine
// snapshot. The caller must have loaded the wake-side atomics before
// calling (readStats' ordering), so satisfied — bumped before any wake
// — still dominates the wake tallies in the merged snapshot.
func (sl *stripedList) foldStats(s *Stats) {
	s.Suspends += sl.suspends.Load()
	s.ImmediateChecks += sl.immediate.Load()
	s.SatisfiedLevels += sl.satisfied.Load()
	if peak := int(sl.peak.Load()); peak > s.PeakLevels {
		s.PeakLevels = peak
	}
}
