package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Regression tests for the cancellation path: the satisfied-beats-
// cancelled ordering, reclamation of abandoned levels, and the
// no-goroutine-per-call guarantee of the shared waitlist engine.

// TestSatisfiedBeatsExpiredTimeout pins the ordering rule at the
// WaitTimeout surface: a zero timeout hands CheckContext an already-
// expired context, and the already-satisfied level must still win.
func TestSatisfiedBeatsExpiredTimeout(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		c.Increment(7)
		for _, level := range []uint64{0, 1, 7} {
			if !WaitTimeout(c, level, 0) {
				t.Errorf("WaitTimeout(level=%d, 0) = false with value 7", level)
			}
		}
		if WaitTimeout(c, 8, 0) {
			t.Error("WaitTimeout(level=8, 0) = true with value 7")
		}
	})
}

// TestSatisfiedBeatsExpiredDeadline exercises the same rule through a
// deadline context that expired long ago.
func TestSatisfiedBeatsExpiredDeadline(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
		defer cancel()
		c.Increment(3)
		if err := c.CheckContext(ctx, 3); err != nil {
			t.Errorf("CheckContext(expired, satisfied) = %v, want nil", err)
		}
		if err := c.CheckContext(ctx, 4); err != context.DeadlineExceeded {
			t.Errorf("CheckContext(expired, unsatisfied) = %v, want DeadlineExceeded", err)
		}
	})
}

// TestChanAbandonedLevelsReclaimed cancels N waiters spread across K
// never-satisfied levels and asserts no residual map entries: the last
// cancelled waiter on each level must reclaim its gate.
func TestChanAbandonedLevelsReclaimed(t *testing.T) {
	const (
		levels          = 8
		waitersPerLevel = 4
	)
	c := NewChan()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	started := make(chan struct{}, levels*waitersPerLevel)
	for l := 0; l < levels; l++ {
		for w := 0; w < waitersPerLevel; w++ {
			wg.Add(1)
			go func(lv uint64) {
				defer wg.Done()
				started <- struct{}{}
				if err := c.CheckContext(ctx, lv); err != context.Canceled {
					t.Errorf("CheckContext(level=%d) = %v, want Canceled", lv, err)
				}
			}(uint64(1000 + l))
		}
	}
	for i := 0; i < levels*waitersPerLevel; i++ {
		<-started
	}
	// Wait for every waiter to be parked on its gate before cancelling.
	deadline := time.After(5 * time.Second)
	for c.LiveLevels() != levels {
		select {
		case <-deadline:
			t.Fatalf("LiveLevels = %d before cancel, want %d", c.LiveLevels(), levels)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	wg.Wait()
	if got := c.LiveLevels(); got != 0 {
		t.Fatalf("LiveLevels after all waiters cancelled = %d, want 0 (abandoned levels leaked)", got)
	}
	// The counter must be fully reusable: Reset must not see ghosts and a
	// later increment must satisfy fresh checks.
	c.Reset()
	c.Increment(2000)
	c.Check(1500)
}

// TestCancelledWaitersLeaveNoTrace cancels the sole waiter on a level in
// every implementation and asserts the counter is structurally clean:
// Reset (which panics on any residual registration) must succeed.
func TestCancelledWaitersLeaveNoTrace(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() { errc <- c.CheckContext(ctx, 42) }()
		time.Sleep(20 * time.Millisecond)
		cancel()
		if err := <-errc; err != context.Canceled {
			t.Fatalf("CheckContext = %v, want Canceled", err)
		}
		// Give the cancelled waiter's deregistration a moment to finish
		// (the error is delivered before the final bookkeeping only in
		// implementations that report from inside the lock, so poll).
		deadline := time.After(5 * time.Second)
		for {
			if ok := func() (ok bool) {
				defer func() { ok = recover() == nil }()
				c.Reset()
				return
			}(); ok {
				break
			}
			select {
			case <-deadline:
				t.Fatal("Reset still panics after the only waiter cancelled: abandoned registration leaked")
			default:
				time.Sleep(time.Millisecond)
			}
		}
	})
}

// TestReferenceCancelUnlinksNode looks inside the reference list: a
// cancelled sole waiter must unlink its node, leaving the Figure 2
// structure empty.
func TestReferenceCancelUnlinksNode(t *testing.T) {
	c := New()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.CheckContext(ctx, 9) }()
	deadline := time.After(5 * time.Second)
	for len(c.Inspect().Nodes) == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never registered")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("CheckContext = %v", err)
	}
	if snap := c.Inspect(); len(snap.Nodes) != 0 {
		t.Fatalf("node leaked after cancellation: %v", snap)
	}
}

// TestPeakLevelsIgnoresDrainingPrefix pins the Stats.PeakLevels fix: a
// satisfied node still draining its waiters is not a waited-on level, so
// inserting a new level while the prefix drains must not inflate the
// peak. (Experiment E10's cost model counts distinct *waited-on* levels.)
func TestPeakLevelsIgnoresDrainingPrefix(t *testing.T) {
	s := NewSim()
	s.Check(5)
	s.Check(5)
	s.Check(9) // two live levels; peak = 2
	s.Increment(7)
	// Level 5 is satisfied but both its waiters still drain; the list
	// holds {5 set, 9 not-set}. A new level arrives mid-drain:
	s.Check(12)
	if st := s.c.Stats(); st.PeakLevels != 2 {
		t.Fatalf("PeakLevels = %d, want 2 (draining satisfied prefix must not count)", st.PeakLevels)
	}
	s.Resume(5)
	s.Resume(5)
	s.Check(15) // three live levels now: 9, 12, 15
	if st := s.c.Stats(); st.PeakLevels != 3 {
		t.Fatalf("PeakLevels = %d, want 3", st.PeakLevels)
	}
}

// TestNoGoroutinePerCheckContext is the tentpole's regression guard: a
// storm of cancelled and timed-out CheckContext/WaitTimeout calls against
// every implementation must leave the goroutine count at its baseline —
// the engine never spawns a watcher goroutine per call.
func TestNoGoroutinePerCheckContext(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, impl := range Registry() {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			c := NewImpl(impl)
			const waiters = 64
			var wg sync.WaitGroup
			ctx, cancel := context.WithCancel(context.Background())
			for i := 0; i < waiters; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// Mix of cancellation shapes: explicit cancel,
					// instant timeout, satisfied-under-expiry.
					switch i % 3 {
					case 0:
						_ = c.CheckContext(ctx, uint64(1_000_000+i))
					case 1:
						WaitTimeout(c, uint64(1_000_000+i), 0)
					default:
						WaitTimeout(c, uint64(1_000_000+i), time.Microsecond)
					}
				}(i)
			}
			time.Sleep(20 * time.Millisecond)
			cancel()
			wg.Wait()
			c.Increment(1) // prove the counter still works after the storm
			c.Check(1)
		})
	}
	// All implementation storms done; the process must settle back to the
	// pre-storm goroutine count (small slack for runtime helpers).
	deadline := time.After(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestCancelStormKeepsCounterCorrect interleaves a cancellation storm
// with real increments and asserts no waiter entitled to pass is lost
// and the structure stays clean, for every implementation.
func TestCancelStormKeepsCounterCorrect(t *testing.T) { runCancelStormKeepsCounterCorrect(t) }

func runCancelStormKeepsCounterCorrect(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		const (
			increments = 200
			cancellers = 8
		)
		var wg sync.WaitGroup
		for i := 0; i < cancellers; i++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					lv := uint64((seed*53+j*17)%(2*increments)) + 1
					WaitTimeout(c, lv, time.Duration(j%5)*100*time.Microsecond)
				}
			}(i)
		}
		survivor := make(chan error, 1)
		go func() { survivor <- c.CheckContext(context.Background(), increments) }()
		for i := 0; i < increments; i++ {
			c.Increment(1)
		}
		select {
		case err := <-survivor:
			if err != nil {
				t.Fatalf("surviving waiter got %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("surviving waiter lost its wakeup during the cancel storm")
		}
		wg.Wait()
		if got := c.Value(); got != increments {
			t.Fatalf("value = %d, want %d", got, increments)
		}
	})
}

// BenchmarkCheckContext measures the two no-block shapes of the
// cancellation path across implementations: a satisfied level under a
// live context, and an unsatisfied level under an expired context.
// ReportAllocs pins the no-goroutine, near-zero-allocation property.
func BenchmarkCheckContext(b *testing.B) {
	for _, impl := range Registry() {
		c := NewImpl(impl)
		c.Increment(1)
		live, cancelLive := context.WithCancel(context.Background())
		expired, cancelExpired := context.WithCancel(context.Background())
		cancelExpired()
		b.Run(fmt.Sprintf("%s/satisfied", impl), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.CheckContext(live, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/expired", impl), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.CheckContext(expired, 1<<40); err == nil {
					b.Fatal("expired context passed an unsatisfied level")
				}
			}
		})
		cancelLive()
	}
}

// BenchmarkCheckContextParkCancel measures the full park-then-cancel
// round trip: the waiter suspends on an unreachable level and a
// cancellation releases it. The interesting number is allocations —
// the engine parks with a channel select, not a watcher goroutine.
func BenchmarkCheckContextParkCancel(b *testing.B) {
	for _, impl := range Registry() {
		b.Run(string(impl), func(b *testing.B) {
			c := NewImpl(impl)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan struct{})
				go func() {
					c.CheckContext(ctx, 1<<40)
					close(done)
				}()
				cancel()
				<-done
			}
		})
	}
}
