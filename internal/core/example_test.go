package core_test

import (
	"fmt"
	"sync"

	"monotonic/internal/core"
)

// The fundamental pattern: a writer publishes through the counter, any
// number of readers pace themselves against it.
func ExampleCounter() {
	data := make([]int, 5)
	c := core.New()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range data {
			c.Check(uint64(i) + 1)
			fmt.Println("read", data[i])
		}
	}()
	for i := range data {
		data[i] = i * i
		c.Increment(1)
	}
	wg.Wait()
	// Output:
	// read 0
	// read 1
	// read 4
	// read 9
	// read 16
}

// Sim replays the paper's Figure 2 deterministically.
func ExampleSim() {
	s := core.NewSim()
	s.Check(5)     // T1
	s.Check(9)     // T2
	s.Check(5)     // T3
	s.Increment(7) // T0
	fmt.Println(s.Snapshot())
	s.Resume(5) // T1 resumes
	s.Resume(5) // T3 resumes
	fmt.Println(s.Snapshot())
	// Output:
	// value=7 waiting=[{level=5 count=2 set} {level=9 count=1 not-set}]
	// value=7 waiting=[{level=9 count=1 not-set}]
}

// Every implementation is constructed through the registry.
func ExampleNewImpl() {
	for _, impl := range core.Registry() {
		c := core.NewImpl(impl)
		c.Increment(3)
		c.Check(3)
		fmt.Println(impl, c.Value())
	}
	// Output:
	// list 3
	// heap 3
	// chan 3
	// broadcast 3
	// atomic 3
	// spin 3
	// sharded 3
	// fc 3
}
