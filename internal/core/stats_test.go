package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pollStats spins until cond holds of the provider's snapshot — the
// stats themselves are how these tests learn that waiters have actually
// parked, so no test below needs a timing-based sleep.
func pollStats(t *testing.T, p StatsProvider, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(p.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats now %+v", what, p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStatsConformance holds every registry implementation to the same
// Stats schema semantics: fresh counters report zero, Increment(0) is
// uncounted, satisfied checks count as immediate, parked waiters count
// as suspends, a wake storm's satisfied levels and peak match the
// scenario, wake tallies never exceed satisfied levels, and Reset
// preserves the cumulative totals.
func TestStatsConformance(t *testing.T) { runStatsConformance(t) }

func runStatsConformance(t *testing.T) {
	const (
		levels   = 4
		perLevel = 3 // 2 Check + 1 CheckContext per level
		waiters  = levels * perLevel
		base     = uint64(100)
	)
	forEachImpl(t, func(t *testing.T, c Interface) {
		p, ok := c.(StatsProvider)
		if !ok {
			t.Fatal("implementation does not satisfy StatsProvider")
		}
		if s := p.Stats(); s != (Stats{}) {
			t.Fatalf("fresh counter stats = %+v, want all zero", s)
		}

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()

		c.Increment(0) // documented no-op: must not be counted
		c.Increment(10)
		// Five satisfied checks, none of which may block or park.
		c.Check(5)
		c.Check(10)
		if err := c.CheckContext(context.Background(), 7); err != nil {
			t.Fatalf("satisfied CheckContext = %v", err)
		}
		if err := c.CheckContext(ctx, 1); err != nil {
			t.Fatalf("satisfied CheckContext = %v", err)
		}
		c.Check(2)
		if s := p.Stats(); s.ImmediateChecks != 5 || s.Suspends != 0 || s.Increments != 1 {
			t.Fatalf("after 1 increment + 5 satisfied checks: %+v, want ImmediateChecks=5 Suspends=0 Increments=1", s)
		}

		// The wake storm: perLevel waiters on each of `levels` distinct
		// levels, one increment satisfying them all.
		var wg sync.WaitGroup
		for l := 0; l < levels; l++ {
			level := base + uint64(l)
			for k := 0; k < perLevel; k++ {
				useCtx := k == 0
				wg.Add(1)
				go func() {
					defer wg.Done()
					if useCtx {
						if err := c.CheckContext(ctx, level); err != nil {
							t.Errorf("CheckContext(%d) = %v, want nil", level, err)
						}
					} else {
						c.Check(level)
					}
				}()
			}
		}
		pollStats(t, p, "all storm waiters suspended", func(s Stats) bool { return s.Suspends >= waiters })
		c.Increment(base) // 10+100 covers every storm level
		wg.Wait()

		s := p.Stats()
		wantSatisfied, wantPeak := uint64(levels), levels
		if _, isBroadcast := c.(*BroadcastCounter); isBroadcast {
			// The naive baseline flattens all levels onto one round node:
			// one satisfied wake round, at most one live node. That
			// contrast IS the ablation the schema makes visible.
			wantSatisfied, wantPeak = 1, 1
		}
		if s.Suspends != waiters {
			t.Errorf("Suspends = %d, want %d (one per parked waiter)", s.Suspends, waiters)
		}
		if s.ImmediateChecks != 5 {
			t.Errorf("ImmediateChecks = %d, want 5 (storm checks all suspended)", s.ImmediateChecks)
		}
		if s.Increments != 2 {
			t.Errorf("Increments = %d, want 2 (Increment(0) is uncounted)", s.Increments)
		}
		if s.SatisfiedLevels != wantSatisfied {
			t.Errorf("SatisfiedLevels = %d, want %d", s.SatisfiedLevels, wantSatisfied)
		}
		if s.PeakLevels != wantPeak {
			t.Errorf("PeakLevels = %d, want %d", s.PeakLevels, wantPeak)
		}
		if s.Broadcasts > s.SatisfiedLevels {
			t.Errorf("Broadcasts = %d > SatisfiedLevels = %d: invariant violated", s.Broadcasts, s.SatisfiedLevels)
		}
		if s.ChannelCloses > s.SatisfiedLevels {
			t.Errorf("ChannelCloses = %d > SatisfiedLevels = %d: invariant violated", s.ChannelCloses, s.SatisfiedLevels)
		}
		if _, isChan := c.(*ChanCounter); isChan {
			if s.ChannelCloses != s.SatisfiedLevels {
				t.Errorf("ChanCounter ChannelCloses = %d, want SatisfiedLevels = %d (one close per level)", s.ChannelCloses, s.SatisfiedLevels)
			}
			if s.Broadcasts != 0 {
				t.Errorf("ChanCounter Broadcasts = %d, want 0", s.Broadcasts)
			}
		}

		// Stats are cumulative: Reset clears the value, never the totals.
		c.Reset()
		if got := p.Stats(); got != s {
			t.Fatalf("Reset changed stats:\nbefore %+v\nafter  %+v", s, got)
		}
	})
}

// TestStatsConsistentDuringWakeStorm hammers Stats() concurrently with
// waiters parking and increments waking them (run under -race in CI).
// Every snapshot must satisfy the documented invariants — wake tallies
// never exceed the satisfied-level count — and successive snapshots must
// be monotone, since the counters are cumulative. This is the
// regression test for the inconsistent-snapshot bug where satisfies
// were published under the mutex but the wake tallies were read
// un-ordered against them.
func TestStatsConsistentDuringWakeStorm(t *testing.T) { runStatsConsistentDuringWakeStorm(t) }

func runStatsConsistentDuringWakeStorm(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		p := c.(StatsProvider)
		const (
			waiters    = 60
			increments = 300
		)
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			level := uint64(1 + i*(increments/waiters)) // spread across the increment range
			useCtx := i%2 == 1
			wg.Add(1)
			go func() {
				defer wg.Done()
				if useCtx {
					if err := c.CheckContext(context.Background(), level); err != nil {
						t.Errorf("CheckContext(%d) = %v, want nil", level, err)
					}
				} else {
					c.Check(level)
				}
			}()
		}

		// Let the whole crowd park before the increments start, so the
		// wake storm (the interesting window for snapshots) actually
		// overlaps the Stats hammering below.
		pollStats(t, p, "storm waiters suspended", func(s Stats) bool { return s.Suspends >= waiters })

		// Hammer the lock-free satisfied path concurrently with the
		// storm: level 0 is satisfied from birth, so every one of these
		// checks must land on ImmediateChecks — the exactness half of the
		// fast-path stats contract, under the same interleavings that
		// used to lose locked tallies.
		stop := make(chan struct{})
		var satChecks atomic.Uint64
		var satWG sync.WaitGroup
		satWG.Add(1)
		go func() {
			defer satWG.Done()
			for {
				c.Check(0)
				if err := c.CheckContext(context.Background(), 0); err != nil {
					t.Errorf("satisfied CheckContext = %v", err)
					return
				}
				satChecks.Add(2)
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}()

		var snapErr atomic.Pointer[string]
		fail := func(format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			snapErr.CompareAndSwap(nil, &msg)
		}
		var snapWG sync.WaitGroup
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			var prev Stats
			for {
				s := p.Stats()
				if s.Broadcasts > s.SatisfiedLevels {
					fail("snapshot has Broadcasts %d > SatisfiedLevels %d: %+v", s.Broadcasts, s.SatisfiedLevels, s)
					return
				}
				if s.ChannelCloses > s.SatisfiedLevels {
					fail("snapshot has ChannelCloses %d > SatisfiedLevels %d: %+v", s.ChannelCloses, s.SatisfiedLevels, s)
					return
				}
				if s.PeakLevels < prev.PeakLevels || s.SatisfiedLevels < prev.SatisfiedLevels ||
					s.Broadcasts < prev.Broadcasts || s.ChannelCloses < prev.ChannelCloses ||
					s.Suspends < prev.Suspends || s.ImmediateChecks < prev.ImmediateChecks ||
					s.Increments < prev.Increments || s.SpinRounds < prev.SpinRounds ||
					s.FastPathIncrements < prev.FastPathIncrements || s.Flushes < prev.Flushes {
					fail("cumulative stats went backwards:\nprev %+v\nnow  %+v", prev, s)
					return
				}
				prev = s
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}()

		for i := 0; i < increments; i++ {
			c.Increment(1)
		}
		wg.Wait()
		close(stop)
		snapWG.Wait()
		satWG.Wait()
		if msg := snapErr.Load(); msg != nil {
			t.Fatal(*msg)
		}

		// With the storm fully drained the wake tallies have caught up:
		// every waiter resumed, so the final snapshot accounts for every
		// wake the satisfied levels required.
		final := p.Stats()
		if final.Suspends < waiters {
			t.Errorf("final Suspends = %d, want >= %d", final.Suspends, waiters)
		}
		if final.Increments != increments {
			t.Errorf("final Increments = %d, want %d", final.Increments, increments)
		}
		// Exactness: the storm waiters all parked (the poll above waited
		// for that), so the satisfied-checker's calls are the only
		// immediate checks — each counted once, none dropped.
		if final.ImmediateChecks != satChecks.Load() {
			t.Errorf("final ImmediateChecks = %d, want exactly %d (one per satisfied check)",
				final.ImmediateChecks, satChecks.Load())
		}
	})
}

// TestProbeObservesEvents installs a probe on every engine-based
// implementation and checks the three event kinds fire with the right
// levels, in order, outside every counter lock (the probe calls Stats
// itself — a deadlock here would hang the test), and that SetProbe(nil)
// disables the hook.
func TestProbeObservesEvents(t *testing.T) {
	for _, impl := range Registry() {
		t.Run(string(impl), func(t *testing.T) {
			c := NewImpl(impl)
			ps, ok := c.(ProbeSetter)
			if !ok {
				if impl == ImplChan {
					t.Skip("ChanCounter is stats-only: no engine to hang a probe on")
				}
				t.Fatalf("%s does not satisfy ProbeSetter", impl)
			}
			p := c.(StatsProvider)
			var mu sync.Mutex
			events := map[EventKind][]uint64{}
			ps.SetProbe(func(e Event) {
				_ = p.Stats() // probes run outside all counter locks; this must not deadlock
				mu.Lock()
				events[e.Kind] = append(events[e.Kind], e.Level)
				mu.Unlock()
			})

			c.Increment(3)
			done := make(chan struct{})
			go func() { c.Check(10); close(done) }()
			pollStats(t, p, "probe-test waiter suspended", func(s Stats) bool { return s.Suspends == 1 })
			c.Increment(7)
			<-done

			mu.Lock()
			incs := append([]uint64(nil), events[EventIncrement]...)
			suspends := append([]uint64(nil), events[EventSuspend]...)
			wakes := append([]uint64(nil), events[EventWake]...)
			mu.Unlock()
			if len(incs) != 2 || incs[0] != 3 || incs[1] != 7 {
				t.Fatalf("EventIncrement amounts = %v, want [3 7]", incs)
			}
			if len(suspends) != 1 || suspends[0] != 10 {
				t.Fatalf("EventSuspend levels = %v, want [10]", suspends)
			}
			if len(wakes) != 1 || wakes[0] != 10 {
				t.Fatalf("EventWake levels = %v, want [10]", wakes)
			}

			ps.SetProbe(nil)
			c.Increment(1)
			mu.Lock()
			n := len(events[EventIncrement])
			mu.Unlock()
			if n != 2 {
				t.Fatalf("probe fired after SetProbe(nil): %d increment events, want 2", n)
			}
		})
	}
}

// TestSpinSetSpinsEncoding pins the SetSpins contract: zero means no
// spinning (it used to silently mean "restore default", making a zero
// budget unexpressible), negative restores the default, and the zero
// value still defaults.
func TestSpinSetSpinsEncoding(t *testing.T) {
	c := NewSpin()
	if got := c.budget(); got != defaultSpins {
		t.Fatalf("zero-value budget = %d, want default %d", got, defaultSpins)
	}
	c.SetSpins(0)
	if got := c.budget(); got != 0 {
		t.Fatalf("budget after SetSpins(0) = %d, want 0", got)
	}
	c.SetSpins(-1)
	if got := c.budget(); got != defaultSpins {
		t.Fatalf("budget after SetSpins(-1) = %d, want default %d", got, defaultSpins)
	}
	c.SetSpins(3)
	if got := c.budget(); got != 3 {
		t.Fatalf("budget after SetSpins(3) = %d, want 3", got)
	}
}

// TestSpinZeroBudgetSuspendsWithoutSpinning is the regression test for
// the SetSpins(0) fix: a zero-budget Check must take the blocking path
// directly, with no Gosched probe loop — observable as SpinRounds
// staying zero while the waiter is parked. The second half pins the
// SpinRounds tally itself: a budget-3 spin phase records exactly 3
// probes before parking.
func TestSpinZeroBudgetSuspendsWithoutSpinning(t *testing.T) {
	c := NewSpin()
	c.SetSpins(0)
	done := make(chan struct{})
	go func() { c.Check(5); close(done) }()
	pollStats(t, c, "zero-budget waiter parked", func(s Stats) bool { return s.Suspends == 1 })
	if s := c.Stats(); s.SpinRounds != 0 {
		t.Fatalf("SpinRounds = %d with a zero spin budget, want 0", s.SpinRounds)
	}
	c.Increment(5)
	<-done

	c.SetSpins(3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- c.CheckContext(ctx, 99) }()
	pollStats(t, c, "budget-3 waiter parked", func(s Stats) bool { return s.Suspends == 2 })
	if s := c.Stats(); s.SpinRounds != 3 {
		t.Fatalf("SpinRounds = %d after a budget-3 spin phase, want 3", s.SpinRounds)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("CheckContext after cancel = %v, want context.Canceled", err)
	}
}

// TestShardedNeverSilentlyWraps is the regression test for the corrected
// overflow story: shard stripes are not stable per goroutine (stacks
// move), so the guarantee is that overflow is caught at a fold point —
// either an increment that diverts through the locked path, or the
// checkedAdd in the next flush or sum. Concurrent incrementers on
// different stacks spread across cells; whichever way their residues
// assemble, the counter must panic rather than wrap.
func TestShardedNeverSilentlyWraps(t *testing.T) {
	c := NewSharded()
	c.Increment(^uint64(0) - 100) // locked path: amount exceeds a cell's residue cap

	var incPanics atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 11; i++ { // 11 * 10 = 110 > the 100 of headroom left
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					incPanics.Add(1)
				}
			}()
			c.Increment(10)
		}()
	}
	wg.Wait()
	if incPanics.Load() > 0 {
		return // overflow caught at an increment's locked fold
	}
	// Every increment landed in a cell: the residues now assemble past
	// uint64 range, and the next sum must catch it.
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing sum did not panic")
		}
	}()
	t.Fatalf("Value() = %d: counter silently wrapped", c.Value())
}

// TestShardedFastPathStats pins the packed-cell tallies: gate-free
// increments are counted exactly (even before any flush), a waiter's
// flush folds them without loss, and Flushes counts the fold passes.
func TestShardedFastPathStats(t *testing.T) {
	c := NewSharded()
	for i := 0; i < 100; i++ {
		c.Increment(1)
	}
	s := c.Stats()
	if s.Increments != 100 || s.FastPathIncrements != 100 {
		t.Fatalf("after 100 gate-free increments: Increments=%d FastPathIncrements=%d, want 100/100", s.Increments, s.FastPathIncrements)
	}
	if s.Flushes != 0 {
		t.Fatalf("Flushes = %d with no waiter ever registered, want 0", s.Flushes)
	}

	done := make(chan struct{})
	go func() { c.Check(150); close(done) }()
	pollStats(t, c, "sharded waiter parked", func(st Stats) bool { return st.Suspends == 1 })
	c.Increment(50) // gate is up: exact locked path
	<-done
	s = c.Stats()
	if s.Flushes == 0 {
		t.Fatal("Flushes = 0 after a waiter registered, want > 0")
	}
	if s.Increments != 101 || s.FastPathIncrements != 100 {
		t.Fatalf("after locked increment: Increments=%d FastPathIncrements=%d, want 101/100", s.Increments, s.FastPathIncrements)
	}
	if v := c.Value(); v != 150 {
		t.Fatalf("Value() = %d, want 150", v)
	}
}

// TestShardedCellCountCap drives one cell past its 16-bit increment
// count: the capped cell must divert to the locked path (a flush) and
// the totals must stay exact — the packed encoding never drops counts.
func TestShardedCellCountCap(t *testing.T) {
	c := NewSharded()
	const n = cellCountMask + 2000 // forces at least one count-cap divert
	for i := 0; i < n; i++ {
		c.Increment(1)
	}
	if v := c.Value(); v != n {
		t.Fatalf("Value() = %d, want %d", v, n)
	}
	s := c.Stats()
	if s.Increments != n {
		t.Fatalf("Increments = %d, want %d", s.Increments, n)
	}
	if s.FastPathIncrements > s.Increments {
		t.Fatalf("FastPathIncrements = %d > Increments = %d", s.FastPathIncrements, s.Increments)
	}
	if s.Flushes == 0 {
		t.Fatal("Flushes = 0: the count cap never folded the cell")
	}
}
