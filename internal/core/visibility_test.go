package core

import (
	"sync"
	"testing"
)

// Memory-model battery: data written before an Increment must be visible
// after the Check that increment satisfies, for every implementation and
// several shapes of publication. Run under -race these tests also prove
// the claims to the race detector, not just to assertions.

func TestVisibilityPublishThenIncrement(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c Interface) {
		const items = 200
		data := make([]int, items)
		var wg sync.WaitGroup
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < items; i++ {
					c.Check(uint64(i) + 1)
					if data[i] != i*3+1 {
						t.Errorf("read %d at %d before publication", data[i], i)
						return
					}
				}
			}()
		}
		for i := 0; i < items; i++ {
			data[i] = i*3 + 1
			c.Increment(1)
		}
		wg.Wait()
	})
}

func TestVisibilityThroughChainedCounters(t *testing.T) {
	// T0 writes x, increments c1. T1 checks c1, writes y, increments
	// c2. T2 checks c2 and must see both writes (transitive chain).
	forEachImpl(t, func(t *testing.T, c Interface) {
		c2 := NewImpl(ImplList)
		var x, y int
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			x = 41
			c.Increment(1)
		}()
		go func() {
			defer wg.Done()
			c.Check(1)
			y = x + 1
			c2.Increment(1)
		}()
		go func() {
			defer wg.Done()
			c2.Check(1)
			if x != 41 || y != 42 {
				t.Errorf("chain lost writes: x=%d y=%d", x, y)
			}
		}()
		wg.Wait()
	})
}

func TestVisibilityBulkIncrement(t *testing.T) {
	// A single Increment(k) publishes k items at once; a reader checking
	// any level within the batch must see everything up to that level.
	forEachImpl(t, func(t *testing.T, c Interface) {
		const batch = 64
		data := make([]int, batch)
		done := make(chan struct{})
		go func() {
			defer close(done)
			c.Check(batch / 2)
			for i := 0; i < batch/2; i++ {
				if data[i] != i+1 {
					t.Errorf("batch item %d not visible", i)
					return
				}
			}
			c.Check(batch)
			for i := 0; i < batch; i++ {
				if data[i] != i+1 {
					t.Errorf("batch item %d not visible after full check", i)
					return
				}
			}
		}()
		for i := 0; i < batch; i++ {
			data[i] = i + 1
		}
		c.Increment(batch)
		<-done
	})
}

func TestVisibilityAfterReset(t *testing.T) {
	// Reuse across phases: writes of phase 2 are visible through phase
	// 2's increments after a Reset between phases.
	forEachImpl(t, func(t *testing.T, c Interface) {
		var payload int
		payload = 1
		c.Increment(1)
		c.Check(1)
		c.Reset()
		done := make(chan struct{})
		go func() {
			defer close(done)
			c.Check(1)
			if payload != 2 {
				t.Errorf("phase-2 payload %d", payload)
			}
		}()
		payload = 2
		c.Increment(1)
		<-done
	})
}
