package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// AtomicCounter is the reference list design augmented with a lock-free
// fast path: Check loads the value with a single atomic read and returns
// without taking the mutex when the level is already satisfied. Because the
// value is monotonic, a stale read can only under-estimate it, so a
// satisfied fast-path read is always safe; an unsatisfied read falls
// through to the locked slow path, which re-checks under the mutex before
// suspending. This is the ablation quantifying how much of counter overhead
// is the mutex on the already-satisfied path (experiment E11).
//
// The zero value is a valid counter with value zero.
type AtomicCounter struct {
	value atomic.Uint64 // published after the list update; monotonic

	mu      sync.Mutex
	head    *node
	waiters int
}

// NewAtomic returns an AtomicCounter with value zero.
func NewAtomic() *AtomicCounter { return new(AtomicCounter) }

// Increment implements Interface.
func (c *AtomicCounter) Increment(amount uint64) {
	c.mu.Lock()
	v := checkedAdd(c.value.Load(), amount)
	// Publish before broadcasting so a fast-path reader that raced past
	// the mutex observes the new value no later than woken waiters do.
	c.value.Store(v)
	for n := c.head; n != nil && n.level <= v; n = n.next {
		if !n.set {
			n.set = true
			n.cond.Broadcast()
		}
	}
	c.mu.Unlock()
}

// Check implements Interface.
func (c *AtomicCounter) Check(level uint64) {
	if level <= c.value.Load() {
		return // fast path: already satisfied, no lock
	}
	c.mu.Lock()
	if level <= c.value.Load() {
		c.mu.Unlock()
		return
	}
	n := c.join(level)
	for !n.set {
		n.cond.Wait()
	}
	c.leave(n)
	c.mu.Unlock()
}

// CheckContext implements Interface.
func (c *AtomicCounter) CheckContext(ctx context.Context, level uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if level <= c.value.Load() {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.mu.Lock()
	if level <= c.value.Load() {
		c.mu.Unlock()
		return nil
	}
	n := c.join(level)
	stop := make(chan struct{})
	go func() {
		select {
		case <-done:
			c.mu.Lock()
			n.cond.Broadcast()
			c.mu.Unlock()
		case <-stop:
		}
	}()
	for !n.set && ctx.Err() == nil {
		n.cond.Wait()
	}
	close(stop)
	var err error
	if !n.set {
		err = ctx.Err()
	}
	c.leave(n)
	c.mu.Unlock()
	return err
}

// join and leave mirror Counter's list bookkeeping. Called with c.mu held.
func (c *AtomicCounter) join(level uint64) *node {
	p := &c.head
	for *p != nil && (*p).level < level {
		p = &(*p).next
	}
	var n *node
	if *p != nil && (*p).level == level && !(*p).set {
		n = *p
	} else {
		n = &node{level: level, next: *p}
		n.cond.L = &c.mu
		*p = n
	}
	n.count++
	c.waiters++
	return n
}

func (c *AtomicCounter) leave(n *node) {
	n.count--
	c.waiters--
	if n.count == 0 {
		for p := &c.head; *p != nil; p = &(*p).next {
			if *p == n {
				*p = n.next
				n.next = nil
				break
			}
		}
	}
}

// Reset implements Interface.
func (c *AtomicCounter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.waiters != 0 || c.head != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. For inspection and testing only.
func (c *AtomicCounter) Value() uint64 { return c.value.Load() }

var _ Interface = (*AtomicCounter)(nil)
