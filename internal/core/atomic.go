package core

import (
	"context"
	"sync/atomic"
)

// AtomicCounter is the scaling list design: the lock-free watermark fast
// path of the reference counter plus a striped level index (stripes.go),
// so the slow path — Check registration on a not-yet-satisfied level —
// no longer serializes on the engine mutex either. Because the value is
// monotonic, a stale watermark read can only under-estimate it, so a
// satisfied fast-path read is always safe; an unsatisfied read falls
// through to the level's stripe, which re-checks the watermark under the
// stripe mutex before suspending (the Dekker handshake documented in
// stripes.go). This is the ablation quantifying the read side's mutex
// cost (experiments E11 and E25).
//
// The engine mutex survives only on the write side: Increment serializes
// the value update under it, publishes the watermark, and then sweeps
// the stripes out of lock. Wake-ups are issued with no lock held, as
// everywhere in the engine.
//
// The zero value is a valid counter with value zero.
type AtomicCounter struct {
	value atomic.Uint64 // published before any stripe sweep; monotonic

	wl  waitlist
	idx stripedList
	// fastChecks counts satisfied lock-free checks; folded into
	// Stats.ImmediateChecks alongside the striped and locked tallies.
	fastChecks stripedUint64
}

// NewAtomic returns an AtomicCounter with value zero.
func NewAtomic() *AtomicCounter { return new(AtomicCounter) }

// NewAtomicStripes returns an AtomicCounter whose level index has
// exactly n stripes (rounded up to a power of two) instead of the
// stripeCount() default. NewAtomicStripes(1) is the single-index engine
// — one stripe holding one sorted list behind one mutex — which is what
// E25 measures the striped default against.
func NewAtomicStripes(n int) *AtomicCounter {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	c := new(AtomicCounter)
	c.idx.ensure(size)
	return c
}

// Increment implements Interface. Increment(0) is a no-op and returns
// before touching the lock. A non-waking increment takes the engine
// mutex for the value update and then pays one atomic load per stripe —
// zero stripe locks (the per-stripe minimum gate).
func (c *AtomicCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	c.wl.lock()
	v := checkedAdd(c.value.Load(), amount)
	// Publish before sweeping: the watermark store must precede the
	// stripe-minimum loads (collect) for the lost-wake handshake, and
	// must precede any wake so a fast-path reader that raced past the
	// mutex observes the new value no later than woken waiters do.
	c.value.Store(v)
	c.wl.stats.increments++
	c.wl.unlock()
	head := c.idx.collect(v)
	c.wl.emit(EventIncrement, amount)
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// Check implements Interface. The satisfied case is one atomic load and
// no mutex; the unsatisfied case registers on the level's stripe and
// never touches the engine mutex at all.
func (c *AtomicCounter) Check(level uint64) {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return // fast path: already satisfied, no lock
	}
	n, done := c.idx.register(&c.wl, level, &c.value, true)
	if done {
		return
	}
	c.wl.wait(n)
	c.wl.drain(nil, n)
}

// CheckContext implements Interface. The satisfied fast path is checked
// before the context so that an already-satisfied level wins over an
// already-cancelled context; the blocking path selects on the node's
// ready channel, spawning no goroutine.
func (c *AtomicCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	if err := ctx.Err(); err != nil {
		// Re-check the watermark after the context: a satisfied level
		// beats a cancelled context even when both raced this call.
		if level <= c.value.Load() {
			c.fastChecks.Add(1)
			return nil
		}
		return err
	}
	n, ok := c.idx.register(&c.wl, level, &c.value, true)
	if ok {
		return nil
	}
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(nil, n)
	return err
}

// Reset implements Interface. Stats are cumulative and survive the
// reset.
func (c *AtomicCounter) Reset() {
	c.wl.lock()
	defer c.wl.unlock()
	if c.wl.busyLocked() || c.idx.busy() {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. Lock-free: the watermark is the value.
func (c *AtomicCounter) Value() uint64 { return c.value.Load() }

// Stats implements StatsProvider: the engine's collector plus the
// striped registration tallies and the lock-free satisfied-check tally.
// readStats loads the wake-side atomics first, so folding the striped
// satisfied count afterwards keeps Broadcasts <= SatisfiedLevels.
func (c *AtomicCounter) Stats() Stats {
	s := c.wl.readStats()
	c.idx.foldStats(&s)
	s.ImmediateChecks += c.fastChecks.Load()
	return s
}

// LockAcquires implements LockCounter: engine-mutex plus stripe-mutex
// acquisitions recorded while SetLockCounting was enabled.
func (c *AtomicCounter) LockAcquires() uint64 {
	return c.wl.lockAcquires.Load() + c.idx.locks.Load()
}

// SetProbe implements ProbeSetter. Fast-path satisfied checks emit no
// event (that path exists to touch nothing shared); increments,
// suspends, and wakes are observed through the engine.
func (c *AtomicCounter) SetProbe(f func(Event)) {
	c.wl.SetProbe(f)
}

var _ Interface = (*AtomicCounter)(nil)
var _ StatsProvider = (*AtomicCounter)(nil)
var _ ProbeSetter = (*AtomicCounter)(nil)
var _ LockCounter = (*AtomicCounter)(nil)
