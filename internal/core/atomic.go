package core

import (
	"context"
	"sync/atomic"
)

// AtomicCounter is the reference list design augmented with a lock-free
// fast path: Check loads the value with a single atomic read and returns
// without taking the mutex when the level is already satisfied. Because the
// value is monotonic, a stale read can only under-estimate it, so a
// satisfied fast-path read is always safe; an unsatisfied read falls
// through to the locked slow path, which re-checks under the mutex before
// suspending. This is the ablation quantifying how much of counter overhead
// is the mutex on the already-satisfied path (experiment E11).
//
// The slow path is the shared waitlist engine over the plain sorted-list
// index — the reference design minus the instrumentation. Wake-ups are
// issued after the engine mutex is released, so a large fan-out never
// serializes behind the incrementer.
//
// The zero value is a valid counter with value zero.
type AtomicCounter struct {
	value atomic.Uint64 // published after the list update; monotonic

	wl   waitlist
	list listIndex
}

// NewAtomic returns an AtomicCounter with value zero.
func NewAtomic() *AtomicCounter { return new(AtomicCounter) }

// Increment implements Interface.
func (c *AtomicCounter) Increment(amount uint64) {
	c.wl.mu.Lock()
	v := checkedAdd(c.value.Load(), amount)
	// Publish before waking so a fast-path reader that raced past the
	// mutex observes the new value no later than woken waiters do.
	c.value.Store(v)
	head, _ := c.list.popSatisfied(v)
	for n := head; n != nil; n = n.next {
		c.wl.satisfyLocked(n)
	}
	c.wl.mu.Unlock()
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// Check implements Interface.
func (c *AtomicCounter) Check(level uint64) {
	if level <= c.value.Load() {
		return // fast path: already satisfied, no lock
	}
	c.wl.mu.Lock()
	if level <= c.value.Load() {
		c.wl.mu.Unlock()
		return
	}
	n := c.wl.join(&c.list, level)
	c.wl.mu.Unlock()
	c.wl.wait(n)
	c.wl.drain(&c.list, n)
}

// CheckContext implements Interface. The satisfied fast path is checked
// before the context so that an already-satisfied level wins over an
// already-cancelled context; the blocking path selects on the node's
// ready channel, spawning no goroutine.
func (c *AtomicCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.value.Load() {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.wl.mu.Lock()
	if level <= c.value.Load() {
		c.wl.mu.Unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		c.wl.mu.Unlock()
		return err
	}
	n := c.wl.join(&c.list, level)
	c.wl.mu.Unlock()
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(&c.list, n)
	return err
}

// Reset implements Interface.
func (c *AtomicCounter) Reset() {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	if c.wl.busyLocked() || c.list.head != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. For inspection and testing only.
func (c *AtomicCounter) Value() uint64 { return c.value.Load() }

var _ Interface = (*AtomicCounter)(nil)
