package core

import (
	"context"
	"sync/atomic"
)

// AtomicCounter is the reference list design augmented with a lock-free
// fast path: Check loads the value with a single atomic read and returns
// without taking the mutex when the level is already satisfied. Because the
// value is monotonic, a stale read can only under-estimate it, so a
// satisfied fast-path read is always safe; an unsatisfied read falls
// through to the locked slow path, which re-checks under the mutex before
// suspending. This is the ablation quantifying how much of counter overhead
// is the mutex on the already-satisfied path (experiment E11).
//
// The slow path is the shared waitlist engine over the plain sorted-list
// index. Wake-ups are issued after the engine mutex is released, so a
// large fan-out never serializes behind the incrementer. Fast-path
// satisfied checks are tallied on a striped counter (stripedUint64) so
// concurrent readers do not serialize on one stats cache line.
//
// The zero value is a valid counter with value zero.
type AtomicCounter struct {
	value atomic.Uint64 // published after the list update; monotonic

	wl   waitlist
	list listIndex
	// fastChecks counts satisfied lock-free checks; folded into
	// Stats.ImmediateChecks alongside the engine's locked tally.
	fastChecks stripedUint64
}

// NewAtomic returns an AtomicCounter with value zero.
func NewAtomic() *AtomicCounter { return new(AtomicCounter) }

// Increment implements Interface. Increment(0) is a no-op and returns
// before touching the lock.
func (c *AtomicCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	c.wl.mu.Lock()
	v := checkedAdd(c.value.Load(), amount)
	// Publish before waking so a fast-path reader that raced past the
	// mutex observes the new value no later than woken waiters do.
	c.value.Store(v)
	c.wl.stats.increments++
	head, _ := c.list.popSatisfied(v)
	for n := head; n != nil; n = n.next {
		c.wl.satisfyLocked(n)
	}
	c.wl.mu.Unlock()
	c.wl.emit(EventIncrement, amount)
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// Check implements Interface.
func (c *AtomicCounter) Check(level uint64) {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return // fast path: already satisfied, no lock
	}
	c.wl.mu.Lock()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.mu.Unlock()
		return
	}
	n := c.wl.join(&c.list, level)
	c.wl.mu.Unlock()
	c.wl.wait(n)
	c.wl.drain(&c.list, n)
}

// CheckContext implements Interface. The satisfied fast path is checked
// before the context so that an already-satisfied level wins over an
// already-cancelled context; the blocking path selects on the node's
// ready channel, spawning no goroutine.
func (c *AtomicCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.wl.mu.Lock()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.mu.Unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		c.wl.mu.Unlock()
		return err
	}
	n := c.wl.join(&c.list, level)
	c.wl.mu.Unlock()
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(&c.list, n)
	return err
}

// Reset implements Interface. Stats are cumulative and survive the
// reset.
func (c *AtomicCounter) Reset() {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	if c.wl.busyLocked() || c.list.head != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. For inspection and testing only.
func (c *AtomicCounter) Value() uint64 { return c.value.Load() }

// Stats implements StatsProvider: the engine's collector plus the
// lock-free satisfied-check tally.
func (c *AtomicCounter) Stats() Stats {
	s := c.wl.readStats()
	s.ImmediateChecks += c.fastChecks.Load()
	return s
}

// SetProbe implements ProbeSetter. Fast-path satisfied checks emit no
// event (that path exists to touch nothing shared); increments,
// suspends, and wakes are observed through the engine.
func (c *AtomicCounter) SetProbe(f func(Event)) {
	c.wl.SetProbe(f)
}

var _ Interface = (*AtomicCounter)(nil)
var _ StatsProvider = (*AtomicCounter)(nil)
var _ ProbeSetter = (*AtomicCounter)(nil)
