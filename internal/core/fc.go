package core

import (
	"context"
	"runtime"
	"sync/atomic"
)

// FCCounter is the reference list design with a flat-combining increment
// path for the contended regime: an Increment that finds the engine
// mutex taken does not queue on it — it publishes its delta into a
// flat-combining slot (fcSlots in waitlist.go) and the current lock
// holder folds every published delta into the value before releasing,
// waking whatever the combined total satisfies. Rivals therefore stop
// round-tripping through the scheduler's mutex queue: a burst of k
// contended increments costs one critical section instead of k lock
// handoffs.
//
// This attacks a different regime than ShardedCounter. Sharding wins
// while NOBODY waits (increments bypass the lock entirely) but drops to
// the plain locked path the moment a waiter registers; flat combining
// is indifferent to waiters — the combiner wakes them as part of its
// fold — so it keeps helping exactly where sharding stops, on the
// contended increment/Check-registration path. See docs/PATTERNS.md.
//
// The switch is at the constructor level: only counters built as
// FCCounter route increments through the slots; the other
// implementations' paths are byte-for-byte unchanged, and even here the
// uncontended path is the plain locked path (TryLock succeeds, fold
// finds no pending deltas) plus one empty-array check.
//
// The zero value is a valid counter with value zero.
type FCCounter struct {
	value atomic.Uint64 // the watermark: stored under wl.mu, before any stripe sweep; monotonic

	wl waitlist
	// idx is the striped level index (stripes.go): waiter registration
	// happens on the level's stripe, not under wl.mu, so Check
	// registrations no longer queue behind combining folds. A fold
	// stores the combined value first and sweeps the stripes after
	// releasing wl.mu — the fold-then-read ordering the stripe Dekker
	// handshake requires.
	idx   stripedList
	slots fcSlots

	// spin holds the publisher spin budgets packed as
	// (active<<16|yields)+1, so the zero value still means "default"
	// while explicit zero budgets stay expressible — the same sentinel
	// encoding as SpinCounter.SetSpins. Tuned by SetSpin.
	spin atomic.Int64

	// combinedIncs counts increments folded from the slots by a lock
	// holder (Stats.FastPathIncrements — the increments that skipped the
	// mutex queue); combines counts drain passes that folded at least
	// one (Stats.Flushes). Both change only under wl.mu.
	combinedIncs uint64
	combines     uint64
	// fastChecks counts satisfied lock-free checks; folded into
	// Stats.ImmediateChecks alongside the engine's locked tally.
	fastChecks stripedUint64
}

// NewFC returns a flat-combining counter with value zero. This is the
// constructor-level switch: New() and the other constructors never
// touch the combining machinery.
func NewFC() *FCCounter { return new(FCCounter) }

// SetSpin sets the publisher spin budgets: active busy reloads, then
// yields Gosched rounds, before a publisher parks on the engine mutex
// (see Increment). Negative values restore the defaults. Safe to call
// concurrently with Increment on other goroutines: the budgets are
// stored atomically and each publisher snapshots them once per claim,
// so a mid-flight tune affects only subsequent increments. Mirrors
// SpinCounter.SetSpins.
func (c *FCCounter) SetSpin(active, yields int) {
	if active < 0 || yields < 0 {
		c.spin.Store(0) // default sentinel
		return
	}
	if active > 1<<30 {
		active = 1 << 30
	}
	if yields > 1<<15 {
		yields = 1 << 15
	}
	c.spin.Store((int64(active)<<16 | int64(yields)) + 1)
}

// spinBudget snapshots the current (active, yields) budgets.
func (c *FCCounter) spinBudget() (active, yields int) {
	if v := c.spin.Load(); v > 0 {
		v--
		return int(v >> 16), int(v & (1<<16 - 1))
	}
	return fcSpinActive, fcSpinYields
}

// Increment implements Interface. Uncontended it is exactly the locked
// list path (TryLock in place of Lock); contended it publishes the delta
// and briefly spins until a combiner folds it or the caller wins the
// lock and combines itself, parking on the mutex only once the spin
// budget shows the combiner is not running. Increment(0) is a no-op.
func (c *FCCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	if c.wl.tryLock() {
		c.addLocked(amount)
		c.wl.emit(EventIncrement, amount)
		return
	}
	s, token := c.slots.claim(amount)
	if s == nil {
		// Slots exhausted (or amount too large to pack, or first-ever
		// contention before the array exists): the plain blocking path.
		c.wl.lock()
		c.ensureSlotsLocked()
		c.addLocked(amount)
		c.wl.emit(EventIncrement, amount)
		return
	}
	active, yields := c.spinBudget()
	for i := 0; ; i++ {
		if s.v.Load() != token {
			// A combiner freed our exclusive claim — and it does that only
			// AFTER storing the folded value (the two-phase fold), so from
			// here Value() reflects our delta; the combiner's stripe sweep
			// covers any level it satisfied.
			c.wl.emit(EventIncrement, amount)
			return
		}
		if c.wl.tryLock() {
			// We became the combiner: fold everything still pending —
			// our own delta included, unless a previous combiner already
			// took it (then the fold is the rivals' work, which is the
			// whole point).
			c.addLocked(0)
			c.wl.emit(EventIncrement, amount)
			return
		}
		switch {
		case i < active:
			// Busy reload: on a multiprocessor the combiner is running
			// right now and the fold lands within a few loads.
		case i < active+yields:
			// Give the combiner the processor — it may share ours.
			runtime.Gosched()
		default:
			// The combiner is not progressing (oversubscribed host,
			// preempted holder). Spinning any longer burns whole
			// timeslices while keeping every rival runnable; parking on
			// the mutex lets the scheduler serialize the storm, and when
			// the lock finally arrives addLocked(0) folds our own slot
			// if no combiner beat us to it.
			c.wl.lock()
			c.addLocked(0)
			c.wl.emit(EventIncrement, amount)
			return
		}
	}
}

const (
	// fcSpinActive bounds the busy reloads a publisher spends waiting for
	// a running combiner; fcSpinYields bounds the Gosched rounds after
	// that. Past both, the publisher parks on the engine mutex — see the
	// comment at the fallback. These are the SetSpin defaults, re-tuned
	// against the PR 8 -procs 1,2,4 sweep (EXPERIMENTS.md E23 notes):
	// small on purpose — a running combiner folds within a few loads,
	// and anything slower means the combiner lost its processor, which
	// spinning cannot fix; on a single-proc host the active phase never
	// helps, so the yield budget does the work there.
	fcSpinActive = 32
	fcSpinYields = 4
)

// ensureSlotsLocked allocates the combining array on first need. The
// stripe count is captured exactly once, here, and sizes BOTH of the
// counter's striped structures — the combining slots and the fast-check
// stats cells — mirroring ShardedCounter.cells, so a GOMAXPROCS change
// mid-run can never leave the two disagreeing about the stripe space.
// Called with wl.mu held. The nil check comes first so the steady state
// never evaluates stripeCount() — runtime.GOMAXPROCS(0) takes the
// scheduler lock, which would double the cost of every locked increment.
func (c *FCCounter) ensureSlotsLocked() {
	if c.slots.slots.Load() == nil {
		size := stripeCount()
		c.fastChecks.ensure(size)
		c.idx.ensure(size)
		c.slots.ensureLocked(size)
	}
}

// addLocked is the combiner: with wl.mu held it folds every published
// delta plus the caller's own amount into the value, frees the
// collected slots, releases the mutex, and then sweeps the stripes and
// wakes whatever the combined total satisfied. The fold is two-phase
// (see fcSlots): the slots are freed only after the value store, so a
// publisher that observes its slot freed — its signal to return from
// Increment — is guaranteed Value() already reflects its delta; the
// satisfied waiters are covered by the stripe sweep, whose
// store-watermark-then-load-minima ordering (the value store happens
// under the mutex, the minima loads after) is the increment half of the
// stripes.go handshake. The overflow check releases the mutex before
// panicking, like ShardedCounter, so a host that recovers the panic is
// left with a usable counter — and it fires before the slots are freed,
// so collected rival deltas stay published rather than being discarded
// while their publishers report success.
func (c *FCCounter) addLocked(amount uint64) {
	c.ensureSlotsLocked()
	folded, count := c.slots.collectLocked()
	v := c.value.Load()
	nv := v + amount
	if nv < v || nv+folded < nv {
		c.wl.unlock()
		panic("core: counter value overflow")
	}
	nv += folded
	if nv != v {
		c.value.Store(nv)
	}
	if amount > 0 {
		c.wl.stats.increments++
	}
	if count > 0 {
		c.wl.stats.increments += count
		c.combinedIncs += count
		c.combines++
		c.slots.releaseLocked()
	}
	c.wl.unlock()
	if nv != v {
		c.wake(c.idx.collect(nv))
	}
}

// foldLocked drains pending deltas on a non-increment lock holder's way
// through the critical section — "the current lock holder folds before
// releasing" — and reports whether the value moved. Called with wl.mu
// held; keeps it held. The caller must sweep the stripes (idx.collect)
// and wake AFTER it releases wl.mu when the value moved.
func (c *FCCounter) foldLocked() bool {
	folded, count := c.slots.collectLocked()
	if count == 0 {
		return false
	}
	v := c.value.Load()
	nv := v + folded
	if nv < v {
		// Panic with the collected slots still claimed (releaseLocked not
		// reached): the publishers' deltas are neither lost nor falsely
		// acknowledged — see releaseLocked.
		c.wl.unlock()
		panic("core: counter value overflow")
	}
	c.value.Store(nv)
	c.wl.stats.increments += count
	c.combinedIncs += count
	c.combines++
	c.slots.releaseLocked()
	return true
}

// wake releases a sweep's satisfied chain; a no-op for the common nil.
func (c *FCCounter) wake(head *waitNode) {
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// foldPending opportunistically combines pending deltas — the helping
// fold Check performs on its way to registering. TryLock, not Lock: if
// the mutex is taken, a combiner is (or will be) folding already, and
// queueing behind it would put registration back on the engine mutex.
func (c *FCCounter) foldPending() {
	if c.slots.slots.Load() == nil || !c.wl.tryLock() {
		return
	}
	moved := c.foldLocked()
	nv := c.value.Load()
	c.wl.unlock()
	if moved {
		c.wake(c.idx.collect(nv))
	}
}

// Check implements Interface. The fast path is AtomicCounter's: a stale
// read can only under-estimate the monotone value, so a satisfied read
// is safe without the lock. The slow path folds pending rival deltas
// first (fold-then-read: the re-load below happens after any fold we
// performed) — they may already satisfy the level, and a lock holder
// that combines is what keeps publishers' spins short — then registers
// on the level's stripe, never queueing on the engine mutex.
func (c *FCCounter) Check(level uint64) {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return
	}
	c.foldPending()
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return
	}
	n, done := c.idx.register(&c.wl, level, &c.value, true)
	if done {
		return
	}
	c.wl.wait(n)
	c.wl.drain(nil, n)
}

// CheckContext implements Interface. The satisfied fast path is checked
// before the context so an already-satisfied level wins over an
// already-cancelled context; the blocking path selects on the node's
// ready channel, spawning no goroutine.
func (c *FCCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.foldPending()
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return nil
	}
	if err := ctx.Err(); err != nil {
		// Satisfied beats cancelled: one last watermark look before
		// reporting the cancellation.
		if level <= c.value.Load() {
			c.fastChecks.Add(1)
			return nil
		}
		return err
	}
	n, ok := c.idx.register(&c.wl, level, &c.value, true)
	if ok {
		return nil
	}
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(nil, n)
	return err
}

// Reset implements Interface. Reset must not run concurrently with any
// other operation, so no delta can be pending in a slot (a pending delta
// belongs to an Increment still in flight); only the value resets.
// Stats are cumulative and survive the reset.
func (c *FCCounter) Reset() {
	c.wl.lock()
	defer c.wl.unlock()
	if c.wl.busyLocked() || c.idx.busy() {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. For inspection and testing only. Deltas
// still published in slots belong to Increment calls that have not
// returned, so excluding them preserves linearizability.
func (c *FCCounter) Value() uint64 { return c.value.Load() }

// Stats implements StatsProvider: the engine's collector plus the
// combining tallies. FastPathIncrements counts increments folded from
// the slots (they skipped the mutex queue — the combining analogue of
// the sharded fast path) and Flushes counts drain passes that folded
// at least one.
func (c *FCCounter) Stats() Stats {
	// Wake-side atomics first — see waitlist.readStats for the ordering
	// argument behind the Broadcasts <= SatisfiedLevels invariant.
	b := c.wl.stats.broadcasts.Load()
	cl := c.wl.stats.channelCloses.Load()
	c.wl.lock()
	s := c.wl.lockedStats()
	s.FastPathIncrements = c.combinedIncs
	s.Flushes = c.combines
	c.wl.unlock()
	s.Broadcasts, s.ChannelCloses = b, cl
	c.idx.foldStats(&s)
	s.ImmediateChecks += c.fastChecks.Load()
	return s
}

// LockAcquires implements LockCounter: engine-mutex plus stripe-mutex
// acquisitions recorded while SetLockCounting was enabled.
func (c *FCCounter) LockAcquires() uint64 {
	return c.wl.lockAcquires.Load() + c.idx.locks.Load()
}

// SetProbe implements ProbeSetter. Every Increment emits its own
// EventIncrement when it returns — a folded delta's event fires from
// the publisher once it observes the fold, so event counts match call
// counts whichever path an increment took.
func (c *FCCounter) SetProbe(f func(Event)) {
	c.wl.SetProbe(f)
}

var _ Interface = (*FCCounter)(nil)
var _ StatsProvider = (*FCCounter)(nil)
var _ ProbeSetter = (*FCCounter)(nil)
var _ LockCounter = (*FCCounter)(nil)
