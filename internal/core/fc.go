package core

import (
	"context"
	"runtime"
	"sync/atomic"
)

// FCCounter is the reference list design with a flat-combining increment
// path for the contended regime: an Increment that finds the engine
// mutex taken does not queue on it — it publishes its delta into a
// flat-combining slot (fcSlots in waitlist.go) and the current lock
// holder folds every published delta into the value before releasing,
// waking whatever the combined total satisfies. Rivals therefore stop
// round-tripping through the scheduler's mutex queue: a burst of k
// contended increments costs one critical section instead of k lock
// handoffs.
//
// This attacks a different regime than ShardedCounter. Sharding wins
// while NOBODY waits (increments bypass the lock entirely) but drops to
// the plain locked path the moment a waiter registers; flat combining
// is indifferent to waiters — the combiner wakes them as part of its
// fold — so it keeps helping exactly where sharding stops, on the
// contended increment/Check-registration path. See docs/PATTERNS.md.
//
// The switch is at the constructor level: only counters built as
// FCCounter route increments through the slots; the other
// implementations' paths are byte-for-byte unchanged, and even here the
// uncontended path is the plain locked path (TryLock succeeds, fold
// finds no pending deltas) plus one empty-array check.
//
// The zero value is a valid counter with value zero.
type FCCounter struct {
	value atomic.Uint64 // published after the list update; monotonic

	wl    waitlist
	list  listIndex
	slots fcSlots

	// combinedIncs counts increments folded from the slots by a lock
	// holder (Stats.FastPathIncrements — the increments that skipped the
	// mutex queue); combines counts drain passes that folded at least
	// one (Stats.Flushes). Both change only under wl.mu.
	combinedIncs uint64
	combines     uint64
	// fastChecks counts satisfied lock-free checks; folded into
	// Stats.ImmediateChecks alongside the engine's locked tally.
	fastChecks stripedUint64
}

// NewFC returns a flat-combining counter with value zero. This is the
// constructor-level switch: New() and the other constructors never
// touch the combining machinery.
func NewFC() *FCCounter { return new(FCCounter) }

// Increment implements Interface. Uncontended it is exactly the locked
// list path (TryLock in place of Lock); contended it publishes the delta
// and briefly spins until a combiner folds it or the caller wins the
// lock and combines itself, parking on the mutex only once the spin
// budget shows the combiner is not running. Increment(0) is a no-op.
func (c *FCCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	if c.wl.mu.TryLock() {
		c.addLocked(amount)
		c.wl.emit(EventIncrement, amount)
		return
	}
	s, token := c.slots.claim(amount)
	if s == nil {
		// Slots exhausted (or amount too large to pack, or first-ever
		// contention before the array exists): the plain blocking path.
		c.wl.mu.Lock()
		c.ensureSlotsLocked()
		c.addLocked(amount)
		c.wl.emit(EventIncrement, amount)
		return
	}
	for i := 0; ; i++ {
		if s.v.Load() != token {
			// A combiner freed our exclusive claim — and it does that only
			// AFTER storing the folded value and marking the satisfied
			// levels (the two-phase fold), so from here Value() reflects
			// our delta and the wake-ups cover any level it satisfied.
			c.wl.emit(EventIncrement, amount)
			return
		}
		if c.wl.mu.TryLock() {
			// We became the combiner: fold everything still pending —
			// our own delta included, unless a previous combiner already
			// took it (then the fold is the rivals' work, which is the
			// whole point).
			c.addLocked(0)
			c.wl.emit(EventIncrement, amount)
			return
		}
		switch {
		case i < fcSpinActive:
			// Busy reload: on a multiprocessor the combiner is running
			// right now and the fold lands within a few loads.
		case i < fcSpinActive+fcSpinYields:
			// Give the combiner the processor — it may share ours.
			runtime.Gosched()
		default:
			// The combiner is not progressing (oversubscribed host,
			// preempted holder). Spinning any longer burns whole
			// timeslices while keeping every rival runnable; parking on
			// the mutex lets the scheduler serialize the storm, and when
			// the lock finally arrives addLocked(0) folds our own slot
			// if no combiner beat us to it.
			c.wl.mu.Lock()
			c.addLocked(0)
			c.wl.emit(EventIncrement, amount)
			return
		}
	}
}

const (
	// fcSpinActive bounds the busy reloads a publisher spends waiting for
	// a running combiner; fcSpinYields bounds the Gosched rounds after
	// that. Past both, the publisher parks on the engine mutex — see the
	// comment at the fallback. The numbers are small on purpose: a
	// running combiner folds within a few loads, and anything slower
	// means the combiner lost its processor, which spinning cannot fix.
	fcSpinActive = 32
	fcSpinYields = 4
)

// ensureSlotsLocked allocates the combining array on first need. The
// stripe count is captured exactly once, here, and sizes BOTH of the
// counter's striped structures — the combining slots and the fast-check
// stats cells — mirroring ShardedCounter.cells, so a GOMAXPROCS change
// mid-run can never leave the two disagreeing about the stripe space.
// Called with wl.mu held. The nil check comes first so the steady state
// never evaluates stripeCount() — runtime.GOMAXPROCS(0) takes the
// scheduler lock, which would double the cost of every locked increment.
func (c *FCCounter) ensureSlotsLocked() {
	if c.slots.slots.Load() == nil {
		size := stripeCount()
		c.fastChecks.ensure(size)
		c.slots.ensureLocked(size)
	}
}

// addLocked is the combiner: with wl.mu held it folds every published
// delta plus the caller's own amount into the value, marks the newly
// satisfied levels draining, frees the collected slots, releases the
// mutex, and wakes the satisfied levels. The fold is two-phase (see
// fcSlots): the slots are freed only after the value store and
// satisfyLocked, so a publisher that observes its slot freed — its
// signal to return from Increment — is guaranteed Value() and the
// waiter states already reflect its delta. The overflow check releases
// the mutex before panicking, like ShardedCounter, so a host that
// recovers the panic is left with a usable counter — and it fires
// before the slots are freed, so collected rival deltas stay published
// rather than being discarded while their publishers report success.
func (c *FCCounter) addLocked(amount uint64) {
	c.ensureSlotsLocked()
	folded, count := c.slots.collectLocked()
	v := c.value.Load()
	nv := v + amount
	if nv < v || nv+folded < nv {
		c.wl.mu.Unlock()
		panic("core: counter value overflow")
	}
	nv += folded
	if nv != v {
		c.value.Store(nv)
	}
	if amount > 0 {
		c.wl.stats.increments++
	}
	if count > 0 {
		c.wl.stats.increments += count
		c.combinedIncs += count
		c.combines++
	}
	head, _ := c.list.popSatisfied(nv)
	for n := head; n != nil; n = n.next {
		c.wl.satisfyLocked(n)
	}
	if count > 0 {
		c.slots.releaseLocked()
	}
	c.wl.mu.Unlock()
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// foldLocked drains pending deltas on a non-increment lock holder's way
// through the critical section — "the current lock holder folds before
// releasing" — and returns the satisfied chain for the caller to wake
// AFTER it releases wl.mu. Called with wl.mu held; keeps it held.
func (c *FCCounter) foldLocked() *waitNode {
	folded, count := c.slots.collectLocked()
	if count == 0 {
		return nil
	}
	v := c.value.Load()
	nv := v + folded
	if nv < v {
		// Panic with the collected slots still claimed (releaseLocked not
		// reached): the publishers' deltas are neither lost nor falsely
		// acknowledged — see releaseLocked.
		c.wl.mu.Unlock()
		panic("core: counter value overflow")
	}
	c.value.Store(nv)
	c.wl.stats.increments += count
	c.combinedIncs += count
	c.combines++
	head, _ := c.list.popSatisfied(nv)
	for n := head; n != nil; n = n.next {
		c.wl.satisfyLocked(n)
	}
	c.slots.releaseLocked()
	return head
}

// wake releases a fold's satisfied chain; a no-op for the common nil.
func (c *FCCounter) wake(head *waitNode) {
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// Check implements Interface. The fast path is AtomicCounter's: a stale
// read can only under-estimate the monotone value, so a satisfied read
// is safe without the lock. The locked slow path folds pending rival
// deltas first — they may already satisfy the level, and a lock holder
// that combines is what keeps publishers' spins short.
func (c *FCCounter) Check(level uint64) {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return
	}
	c.wl.mu.Lock()
	head := c.foldLocked()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.mu.Unlock()
		c.wake(head)
		return
	}
	n := c.wl.join(&c.list, level)
	c.wl.mu.Unlock()
	c.wake(head)
	c.wl.wait(n)
	c.wl.drain(&c.list, n)
}

// CheckContext implements Interface. The satisfied fast path is checked
// before the context so an already-satisfied level wins over an
// already-cancelled context; the blocking path selects on the node's
// ready channel, spawning no goroutine.
func (c *FCCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.wl.mu.Lock()
	head := c.foldLocked()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.mu.Unlock()
		c.wake(head)
		return nil
	}
	if err := ctx.Err(); err != nil {
		c.wl.mu.Unlock()
		c.wake(head)
		return err
	}
	n := c.wl.join(&c.list, level)
	c.wl.mu.Unlock()
	c.wake(head)
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(&c.list, n)
	return err
}

// Reset implements Interface. Reset must not run concurrently with any
// other operation, so no delta can be pending in a slot (a pending delta
// belongs to an Increment still in flight); only the value resets.
// Stats are cumulative and survive the reset.
func (c *FCCounter) Reset() {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	if c.wl.busyLocked() || c.list.head != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. For inspection and testing only. Deltas
// still published in slots belong to Increment calls that have not
// returned, so excluding them preserves linearizability.
func (c *FCCounter) Value() uint64 { return c.value.Load() }

// Stats implements StatsProvider: the engine's collector plus the
// combining tallies. FastPathIncrements counts increments folded from
// the slots (they skipped the mutex queue — the combining analogue of
// the sharded fast path) and Flushes counts drain passes that folded
// at least one.
func (c *FCCounter) Stats() Stats {
	// Wake-side atomics first — see waitlist.readStats for the ordering
	// argument behind the Broadcasts <= SatisfiedLevels invariant.
	b := c.wl.stats.broadcasts.Load()
	cl := c.wl.stats.channelCloses.Load()
	c.wl.mu.Lock()
	s := c.wl.lockedStats()
	s.FastPathIncrements = c.combinedIncs
	s.Flushes = c.combines
	c.wl.mu.Unlock()
	s.Broadcasts, s.ChannelCloses = b, cl
	s.ImmediateChecks += c.fastChecks.Load()
	return s
}

// SetProbe implements ProbeSetter. Every Increment emits its own
// EventIncrement when it returns — a folded delta's event fires from
// the publisher once it observes the fold, so event counts match call
// counts whichever path an increment took.
func (c *FCCounter) SetProbe(f func(Event)) {
	c.wl.SetProbe(f)
}

var _ Interface = (*FCCounter)(nil)
var _ StatsProvider = (*FCCounter)(nil)
var _ ProbeSetter = (*FCCounter)(nil)
