package core

import (
	"context"
	"runtime"
	"sync/atomic"
)

// ShardedCounter makes the write path scale with cores: while nobody is
// waiting, an Increment is a single compare-and-swap on one of
// GOMAXPROCS cache-padded shard cells, so concurrent incrementers touch
// disjoint cache lines instead of serializing on a mutex. The moment a
// Check/CheckContext caller registers as a waiter, an atomic waiter gate
// flips, the shard residues are flushed into the published value under
// the engine mutex, and every subsequent Increment takes the exact
// locked path through the shared waitlist engine — so wake-ups are
// race-free and all cancellation semantics (satisfied beats cancelled,
// no watcher goroutines, abandoned levels reclaimed) are inherited from
// the engine unchanged. When the last waiter leaves, the gate drops and
// the lock-free fast path resumes.
//
// This is the SNZI/LongAdder-style answer to the write-heavy regime: the
// paper's section 7 cost model prices operations by distinct waited-on
// levels, but a single-mutex Increment still pays full serialization per
// update even when nobody is waiting at all. Gating the striped fast
// path on "are there waiters?" keeps the exact semantics only while they
// are needed.
//
// Reads (Value, the Check fast path) sum the published value plus the
// shard residues. A stale sum can only under-estimate the true value —
// shards and the published value are monotone between flushes — so a
// satisfied fast-path read is always safe, the same argument as
// AtomicCounter's. A seqlock version around flushes keeps concurrent
// sums from ever observing a residue twice or a mid-flush tear.
//
// Each cell packs an increment count (low 16 bits) next to its residue
// (high 48), so the same CAS that absorbs a fast-path increment also
// counts it — Stats.FastPathIncrements is exact with no second atomic
// on the hot path. A cell whose count or residue reaches its cap
// diverts that increment through the locked path, which folds every
// cell into the published value first.
//
// Overflow: shard stripes are chosen by a stack-address hash, and Go
// moves goroutine stacks when they grow, so a goroutine's stripe can
// change over its lifetime — no per-shard check can bound any one
// goroutine's contribution. The guarantee is instead at the fold points:
// a cell's residue is capped well below wrapping (overflowing increments
// divert to the locked path), and every fold of residues into the
// published value — flush, Value, the Check fast path — goes through
// checkedAdd, which panics if the true value would exceed the uint64
// range. Once the published value itself comes within one cell's reach
// of that range, the gate's overflow bit closes the fast path for good
// (until a Reset), so the overflowing Increment is the one that panics.
// Either way the counter never silently wraps.
//
// The zero value is a valid counter with value zero; the shard array is
// allocated on first use.
type ShardedCounter struct {
	// published is the flushed portion of the value: everything the
	// locked path has ever folded in. True value = published + shard
	// residues. Mutated only with wl.mu held.
	published atomic.Uint64
	// flushSeq is a seqlock version: odd while a flush (or Reset) is
	// moving residue between shards and published. Readers retry across
	// it so sums never tear or double-count.
	flushSeq atomic.Uint64
	// gate counts registered waiters in its low bits and carries the
	// overflow-guard flag in gateOverflowBit. Nonzero diverts Increment
	// onto the exact locked path. The waiter count is raised under wl.mu
	// (before the registering waiter's flush) and lowered atomically by
	// departing waiters, so the wake fan-out never funnels through wl.mu
	// just to drop the gate; the overflow bit tracks the published value
	// and only changes under wl.mu.
	gate atomic.Int32

	shards atomic.Pointer[[]shardCell] // lazily allocated, power-of-two length

	wl waitlist
	// idx is the striped level index (stripes.go): waiter registration
	// happens on the level's stripe, not under wl.mu, so concurrent
	// Check registrations at different levels never contend. The engine
	// mutex keeps the write side — gate raising, residue flushes, the
	// published-value store.
	idx stripedList

	// fastIncs and flushes extend the engine's collector with the
	// sharded-specific schema fields; both change only at fold points,
	// which all hold wl.mu. Counts still sitting in cells are added at
	// snapshot time, so FastPathIncrements never lags the fast path.
	fastIncs uint64 // flushed cell counts (Stats.FastPathIncrements)
	flushes  uint64 // flush passes (Stats.Flushes)
	// fastChecks counts satisfied lock-free checks (Stats.ImmediateChecks).
	fastChecks stripedUint64
}

// Cell layout: residue<<cellCountBits | count. The count saturating at
// 16 bits and the residue capped at 2^47 both divert to the locked
// path, so the packed CAS can never wrap either half.
const (
	cellCountBits  = 16
	cellCountMask  = 1<<cellCountBits - 1
	cellResidueCap = uint64(1) << 47
	// cellPackedCap is cellResidueCap in packed form: a cell whose word
	// would reach it holds a residue at the cap. Fits uint64 (2^63).
	cellPackedCap = cellResidueCap << cellCountBits
)

const (
	// gateOverflowBit is set in gate while the published value is above
	// overflowWatermark, closing the fast path so checkedAdd on the
	// locked path can panic on the exact overflowing Increment. Far above
	// any plausible waiter count, so the two halves never interfere.
	gateOverflowBit = 1 << 30
	// overflowWatermark leaves room for one cell's worth of residue plus
	// one fast-path amount (each < cellResidueCap): while published is at
	// or below it, a single cell cannot carry the true value past the
	// uint64 range, so the fast path needs no per-increment check.
	overflowWatermark = ^uint64(0) - (uint64(2) << 47)
)

// shardCell is one stripe of pending increments (packed residue+count).
// Padded to two cache lines so neighbouring cells never false-share (and
// the adjacent-line prefetcher does not couple them).
type shardCell struct {
	v atomic.Uint64
	_ [120]byte
}

// NewSharded returns a ShardedCounter with value zero.
func NewSharded() *ShardedCounter { return new(ShardedCounter) }

// cells returns the shard array, allocating it under the engine mutex on
// first use so the zero value needs no constructor. The stripe count is
// captured exactly once, here, and sizes BOTH of the counter's striped
// arrays — the shard cells and the fast-check stats cells — so a
// GOMAXPROCS change mid-run can never leave the two disagreeing about
// the stripe space (they used to size themselves at whichever moment
// each was first touched). Indexing is clamped to the allocated length
// by construction: every lookup masks by len-1 of the array it loaded.
func (c *ShardedCounter) cells() []shardCell {
	if p := c.shards.Load(); p != nil {
		return *p
	}
	c.wl.lock()
	if c.shards.Load() == nil {
		size := stripeCount()
		c.fastChecks.ensure(size)
		c.idx.ensure(size)
		s := make([]shardCell, size)
		c.shards.Store(&s)
	}
	c.wl.unlock()
	return *c.shards.Load()
}

// Increment implements Interface. With no waiters registered it is one
// CAS on a private cache line; with waiters (or a full cell, or an
// amount too large for a cell) it is exactly the AtomicCounter locked
// path plus a residue flush. Increment(0) is a no-op.
func (c *ShardedCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	if c.gate.Load() == 0 && amount < cellResidueCap {
		cells := c.cells()
		s := &cells[stripeIndex(uint64(len(cells)-1))].v
		// One packed add bumps residue and count together: with the count
		// below its mask there is no carry between the halves, and keeping
		// the word under cellPackedCap-add keeps the residue under its cap.
		add := amount<<cellCountBits | 1
		for {
			old := s.Load()
			if old&cellCountMask == cellCountMask || old >= cellPackedCap-add {
				break // cell full: fold through the locked path
			}
			if !s.CompareAndSwap(old, old+add) {
				continue
			}
			// Dekker-style recheck. A waiter orders gate.Add(1) before its
			// flush reads the shards; we order the shard CAS before this
			// load. Both are sequentially consistent atomics, so either the
			// waiter's flush saw our residue, or this load sees the gate up
			// and we fold and wake under the lock ourselves. No increment
			// can land in a shard and leave a satisfied waiter sleeping.
			if c.gate.Load() != 0 {
				c.wl.lock()
				c.flushLocked()
				v := c.published.Load()
				c.wl.unlock()
				if head := c.idx.collect(v); head != nil {
					c.wl.wakeBatch(head)
				}
			}
			c.wl.emit(EventIncrement, amount)
			return
		}
	}
	c.wl.lock()
	c.flushLocked()
	v := c.published.Load()
	if v+amount < v {
		// Release the engine before the programming-error panic: a host
		// that recovers it (internal/server turns overflow into a wire
		// error) must be left with a usable counter, not a held mutex.
		c.wl.unlock()
		panic("core: counter value overflow")
	}
	v += amount
	// The published store (inside storePublishedLocked) is the watermark
	// half of the stripe handshake: it precedes the stripe-minimum loads
	// in collect, so a registration the sweep misses is guaranteed to see
	// the new value on its own re-load.
	c.storePublishedLocked(v)
	c.wl.stats.increments++
	c.wl.unlock()
	head := c.idx.collect(v)
	c.wl.emit(EventIncrement, amount)
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// storePublishedLocked stores v as the published value and keeps the
// gate's overflow bit in sync: once v is within one cell's reach of the
// uint64 range, every Increment must take the locked path so checkedAdd
// can panic on the exact overflowing call; Reset lowers the bit again.
// Called with wl.mu held.
func (c *ShardedCounter) storePublishedLocked(v uint64) {
	c.published.Store(v)
	guarded := c.gate.Load()&gateOverflowBit != 0
	if v > overflowWatermark && !guarded {
		c.gate.Add(gateOverflowBit)
	} else if v <= overflowWatermark && guarded {
		c.gate.Add(-gateOverflowBit)
	}
}

// flushLocked folds every shard residue into the published value and
// every cell count into the fast-path tally. Called with wl.mu held.
// The seqlock goes odd while residue is in flight between a shard and
// published, so lock-free sums retry instead of missing (or
// double-counting) the moving portion.
func (c *ShardedCounter) flushLocked() {
	p := c.shards.Load()
	if p == nil {
		return
	}
	c.flushes++
	c.flushSeq.Add(1)
	v := c.published.Load()
	for i := range *p {
		s := &(*p)[i].v
		for {
			old := s.Load()
			if old == 0 {
				break
			}
			if s.CompareAndSwap(old, 0) {
				v = checkedAdd(v, old>>cellCountBits)
				c.fastIncs += old & cellCountMask
				break
			}
		}
	}
	c.storePublishedLocked(v)
	c.flushSeq.Add(1)
}

// sum returns published + shard residues, retrying across flushes. A
// completed sum is at least the true value at its start and at most the
// true value at its end, so values returned to any single observer are
// monotone.
func (c *ShardedCounter) sum() uint64 {
	for {
		s1 := c.flushSeq.Load()
		if s1&1 == 1 {
			runtime.Gosched()
			continue
		}
		v := c.published.Load()
		if p := c.shards.Load(); p != nil {
			for i := range *p {
				v = checkedAdd(v, (*p)[i].v.Load()>>cellCountBits)
			}
		}
		if c.flushSeq.Load() == s1 {
			return v
		}
		runtime.Gosched()
	}
}

// Check implements Interface. The fast path is entirely lock-free: a
// stale sum only under-estimates the monotone value, so a satisfied read
// is safe, and an unsatisfied one re-checks under the mutex after
// raising the gate.
func (c *ShardedCounter) Check(level uint64) {
	if level <= c.published.Load() || level <= c.sum() {
		c.fastChecks.Add(1)
		return
	}
	c.wl.lock()
	c.gate.Add(1)
	// From here every Increment either lands under this mutex or — if it
	// raced past the gate into a shard — re-flushes under the mutex
	// itself, so the flush below plus the stripe handshake cannot miss a
	// satisfying update: any residue already parked in a cell is folded
	// here, and any later flush's published store precedes its stripe
	// sweep, which the registration below arms itself against.
	c.flushLocked()
	pub := c.published.Load()
	c.wl.unlock()
	if level <= pub {
		c.fastChecks.Add(1)
		c.gate.Add(-1)
		return
	}
	n, done := c.idx.register(&c.wl, level, &c.published, true)
	if done {
		c.gate.Add(-1)
		return
	}
	c.wl.wait(n)
	c.wl.drain(nil, n)
	c.gate.Add(-1)
}

// CheckContext implements Interface. The value is consulted before the
// context at every stage, so an already-satisfied level wins over an
// already-cancelled context; the blocking path selects on the node's
// ready channel, spawning no goroutine.
func (c *ShardedCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.published.Load() || level <= c.sum() {
		c.fastChecks.Add(1)
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.wl.lock()
	c.gate.Add(1)
	c.flushLocked()
	pub := c.published.Load()
	c.wl.unlock()
	if level <= pub {
		c.fastChecks.Add(1)
		c.gate.Add(-1)
		return nil
	}
	if err := ctx.Err(); err != nil {
		// Satisfied beats cancelled: one last watermark look before
		// reporting the cancellation.
		if level <= c.published.Load() {
			c.fastChecks.Add(1)
			c.gate.Add(-1)
			return nil
		}
		c.gate.Add(-1)
		return err
	}
	n, ok := c.idx.register(&c.wl, level, &c.published, true)
	if ok {
		c.gate.Add(-1)
		return nil
	}
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(nil, n)
	c.gate.Add(-1)
	return err
}

// Reset implements Interface. Stats are cumulative and survive the
// reset: cell counts are folded into the fast-path tally before the
// residues are discarded.
func (c *ShardedCounter) Reset() {
	c.wl.lock()
	defer c.wl.unlock()
	if c.wl.busyLocked() || c.idx.busy() {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.flushSeq.Add(1)
	if p := c.shards.Load(); p != nil {
		for i := range *p {
			c.fastIncs += (*p)[i].v.Load() & cellCountMask
			(*p)[i].v.Store(0)
		}
	}
	c.storePublishedLocked(0)
	c.flushSeq.Add(1)
}

// Value implements Interface. For inspection and testing only.
func (c *ShardedCounter) Value() uint64 { return c.sum() }

// Stats implements StatsProvider. Counts still packed in shard cells are
// added to the flushed tally while holding the engine mutex (the only
// place cells are emptied), so FastPathIncrements is exact even before
// any flush; Increments reports locked plus fast-path increments.
func (c *ShardedCounter) Stats() Stats {
	// Wake-side atomics first — see waitlist.readStats for the ordering
	// argument behind the Broadcasts <= SatisfiedLevels invariant.
	b := c.wl.stats.broadcasts.Load()
	cl := c.wl.stats.channelCloses.Load()
	c.wl.lock()
	s := c.wl.lockedStats()
	fp := c.fastIncs
	if p := c.shards.Load(); p != nil {
		for i := range *p {
			fp += (*p)[i].v.Load() & cellCountMask
		}
	}
	s.FastPathIncrements = fp
	s.Flushes = c.flushes
	c.wl.unlock()
	s.Broadcasts, s.ChannelCloses = b, cl
	c.idx.foldStats(&s)
	s.Increments += fp
	s.ImmediateChecks += c.fastChecks.Load()
	return s
}

// LockAcquires implements LockCounter: engine-mutex plus stripe-mutex
// acquisitions recorded while SetLockCounting was enabled.
func (c *ShardedCounter) LockAcquires() uint64 {
	return c.wl.lockAcquires.Load() + c.idx.locks.Load()
}

// SetProbe implements ProbeSetter. Fast-path increments emit
// EventIncrement like locked ones; satisfied fast-path checks emit no
// event.
func (c *ShardedCounter) SetProbe(f func(Event)) {
	c.wl.SetProbe(f)
}

var _ Interface = (*ShardedCounter)(nil)
var _ StatsProvider = (*ShardedCounter)(nil)
var _ ProbeSetter = (*ShardedCounter)(nil)
var _ LockCounter = (*ShardedCounter)(nil)
