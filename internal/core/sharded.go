package core

import (
	"context"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// ShardedCounter makes the write path scale with cores: while nobody is
// waiting, an Increment is a single compare-and-swap on one of
// GOMAXPROCS cache-padded shard cells, so concurrent incrementers touch
// disjoint cache lines instead of serializing on a mutex. The moment a
// Check/CheckContext caller registers as a waiter, an atomic waiter gate
// flips, the shard residues are flushed into the published value under
// the engine mutex, and every subsequent Increment takes the exact
// locked path through the shared waitlist engine — so wake-ups are
// race-free and all cancellation semantics (satisfied beats cancelled,
// no watcher goroutines, abandoned levels reclaimed) are inherited from
// the engine unchanged. When the last waiter leaves, the gate drops and
// the lock-free fast path resumes.
//
// This is the SNZI/LongAdder-style answer to the write-heavy regime: the
// paper's section 7 cost model prices operations by distinct waited-on
// levels, but a single-mutex Increment still pays full serialization per
// update even when nobody is waiting at all. Gating the striped fast
// path on "are there waiters?" keeps the exact semantics only while they
// are needed.
//
// Reads (Value, the Check fast path) sum the published value plus the
// shard residues. A stale sum can only under-estimate the true value —
// shards and the published value are monotone between flushes — so a
// satisfied fast-path read is always safe, the same argument as
// AtomicCounter's. A seqlock version around flushes keeps concurrent
// sums from ever observing a residue twice or a mid-flush tear.
//
// Overflow: the fast path panics when a single shard's residue would
// wrap (which covers any single-goroutine overflow, since a goroutine
// hashes to a stable shard); an overflow assembled across shards is
// caught by checkedAdd at the next flush or Value/Check sum. Either way
// the counter never silently wraps.
//
// The zero value is a valid counter with value zero; the shard array is
// allocated on first use.
type ShardedCounter struct {
	// published is the flushed portion of the value: everything the
	// locked path has ever folded in. True value = published + shard
	// residues. Mutated only with wl.mu held.
	published atomic.Uint64
	// flushSeq is a seqlock version: odd while a flush (or Reset) is
	// moving residue between shards and published. Readers retry across
	// it so sums never tear or double-count.
	flushSeq atomic.Uint64
	// gate counts registered waiters. Nonzero diverts Increment onto the
	// exact locked path. Raised under wl.mu (before the registering
	// waiter's flush); lowered atomically by departing waiters, so the
	// wake fan-out never funnels through wl.mu just to drop the gate.
	gate atomic.Int32

	shards atomic.Pointer[[]shardCell] // lazily allocated, power-of-two length

	wl   waitlist
	list listIndex
}

// shardCell is one stripe of pending increments. Padded to two cache
// lines so neighbouring cells never false-share (and the adjacent-line
// prefetcher does not couple them).
type shardCell struct {
	v atomic.Uint64
	_ [120]byte
}

// NewSharded returns a ShardedCounter with value zero.
func NewSharded() *ShardedCounter { return new(ShardedCounter) }

// cells returns the shard array, allocating it under the engine mutex on
// first use so the zero value needs no constructor.
func (c *ShardedCounter) cells() []shardCell {
	if p := c.shards.Load(); p != nil {
		return *p
	}
	c.wl.mu.Lock()
	if c.shards.Load() == nil {
		n := runtime.GOMAXPROCS(0)
		size := 1
		for size < n {
			size <<= 1
		}
		s := make([]shardCell, size)
		c.shards.Store(&s)
	}
	c.wl.mu.Unlock()
	return *c.shards.Load()
}

// shardIndex picks a stripe from the address of a stack variable: stacks
// are per-goroutine, so concurrent incrementers spread across cells,
// while one goroutine keeps hashing to the same cell (which is what lets
// the fast path detect a single-goroutine overflow exactly). mask is
// len(cells)-1, a power of two minus one.
func shardIndex(mask uint64) uint64 {
	var marker byte
	h := uint64(uintptr(unsafe.Pointer(&marker)))
	h ^= h >> 33
	h *= 0x9e3779b97f4a7c15
	return (h >> 24) & mask
}

// Increment implements Interface. With no waiters registered it is one
// CAS on a private cache line; with waiters it is exactly the
// AtomicCounter locked path plus a residue flush.
func (c *ShardedCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	if c.gate.Load() == 0 {
		cells := c.cells()
		s := &cells[shardIndex(uint64(len(cells)-1))].v
		for {
			old := s.Load()
			if s.CompareAndSwap(old, checkedAdd(old, amount)) {
				break
			}
		}
		// Dekker-style recheck. A waiter orders gate.Add(1) before its
		// flush reads the shards; we order the shard CAS before this
		// load. Both are sequentially consistent atomics, so either the
		// waiter's flush saw our residue, or this load sees the gate up
		// and we fold and wake under the lock ourselves. No increment
		// can land in a shard and leave a satisfied waiter sleeping.
		if c.gate.Load() != 0 {
			c.wl.mu.Lock()
			c.flushLocked()
			head := c.collectSatisfiedLocked()
			c.wl.mu.Unlock()
			if head != nil {
				c.wl.wakeBatch(head)
			}
		}
		return
	}
	c.wl.mu.Lock()
	c.flushLocked()
	c.published.Store(checkedAdd(c.published.Load(), amount))
	head := c.collectSatisfiedLocked()
	c.wl.mu.Unlock()
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// flushLocked folds every shard residue into the published value. Called
// with wl.mu held. The seqlock goes odd while residue is in flight
// between a shard and published, so lock-free sums retry instead of
// missing (or double-counting) the moving portion.
func (c *ShardedCounter) flushLocked() {
	p := c.shards.Load()
	if p == nil {
		return
	}
	c.flushSeq.Add(1)
	v := c.published.Load()
	for i := range *p {
		s := &(*p)[i].v
		for {
			r := s.Load()
			if r == 0 {
				break
			}
			if s.CompareAndSwap(r, 0) {
				v = checkedAdd(v, r)
				break
			}
		}
	}
	c.published.Store(v)
	c.flushSeq.Add(1)
}

// collectSatisfiedLocked unlinks every list node the published value now
// covers and marks it draining; the caller wakes the returned chain
// after releasing wl.mu. Called with wl.mu held.
func (c *ShardedCounter) collectSatisfiedLocked() *waitNode {
	head, _ := c.list.popSatisfied(c.published.Load())
	for n := head; n != nil; n = n.next {
		c.wl.satisfyLocked(n)
	}
	return head
}

// sum returns published + shard residues, retrying across flushes. A
// completed sum is at least the true value at its start and at most the
// true value at its end, so values returned to any single observer are
// monotone.
func (c *ShardedCounter) sum() uint64 {
	for {
		s1 := c.flushSeq.Load()
		if s1&1 == 1 {
			runtime.Gosched()
			continue
		}
		v := c.published.Load()
		if p := c.shards.Load(); p != nil {
			for i := range *p {
				v = checkedAdd(v, (*p)[i].v.Load())
			}
		}
		if c.flushSeq.Load() == s1 {
			return v
		}
		runtime.Gosched()
	}
}

// Check implements Interface. The fast path is entirely lock-free: a
// stale sum only under-estimates the monotone value, so a satisfied read
// is safe, and an unsatisfied one re-checks under the mutex after
// raising the gate.
func (c *ShardedCounter) Check(level uint64) {
	if level <= c.published.Load() || level <= c.sum() {
		return
	}
	c.wl.mu.Lock()
	c.gate.Add(1)
	// From here every Increment either lands under this mutex or — if it
	// raced past the gate into a shard — re-flushes under the mutex
	// itself, so the flush below plus the engine's wake protocol cannot
	// miss a satisfying update.
	c.flushLocked()
	if level <= c.published.Load() {
		c.gate.Add(-1)
		c.wl.mu.Unlock()
		return
	}
	n := c.wl.join(&c.list, level)
	c.wl.mu.Unlock()
	c.wl.wait(n)
	c.wl.drain(&c.list, n)
	c.gate.Add(-1)
}

// CheckContext implements Interface. The value is consulted before the
// context at every stage, so an already-satisfied level wins over an
// already-cancelled context; the blocking path selects on the node's
// ready channel, spawning no goroutine.
func (c *ShardedCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.published.Load() || level <= c.sum() {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.wl.mu.Lock()
	c.gate.Add(1)
	c.flushLocked()
	if level <= c.published.Load() {
		c.gate.Add(-1)
		c.wl.mu.Unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		c.gate.Add(-1)
		c.wl.mu.Unlock()
		return err
	}
	n := c.wl.join(&c.list, level)
	c.wl.mu.Unlock()
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(&c.list, n)
	c.gate.Add(-1)
	return err
}

// Reset implements Interface.
func (c *ShardedCounter) Reset() {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	if c.wl.busyLocked() || c.list.head != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.flushSeq.Add(1)
	if p := c.shards.Load(); p != nil {
		for i := range *p {
			(*p)[i].v.Store(0)
		}
	}
	c.published.Store(0)
	c.flushSeq.Add(1)
}

// Value implements Interface. For inspection and testing only.
func (c *ShardedCounter) Value() uint64 { return c.sum() }

var _ Interface = (*ShardedCounter)(nil)
