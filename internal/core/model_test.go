package core

import (
	"testing"
	"testing/quick"

	"monotonic/internal/workload"
)

// TestQuickImplsAgreeWithModel runs random single-threaded op scripts
// (Increment, satisfiable Check, Reset) against every implementation and
// a plain uint64 model simultaneously; after every operation all values
// must agree and no Check may block.
func TestQuickImplsAgreeWithModel(t *testing.T) {
	type step struct {
		op    int // 0 = increment, 1 = check, 2 = reset
		value uint64
	}
	f := func(seed uint64, n8 uint8) bool {
		rng := workload.NewRNG(seed)
		impls := Registry()
		counters := make([]Interface, len(impls))
		for i, impl := range impls {
			counters[i] = NewImpl(impl)
		}
		var model uint64
		steps := int(n8%60) + 5
		for s := 0; s < steps; s++ {
			var st step
			switch rng.Intn(10) {
			case 0:
				st = step{op: 2}
			case 1, 2, 3:
				st = step{op: 1, value: rng.Uint64() % (model + 1)}
			default:
				st = step{op: 0, value: uint64(rng.Intn(100))}
			}
			switch st.op {
			case 0:
				model += st.value
				for _, c := range counters {
					c.Increment(st.value)
				}
			case 1:
				// st.value <= model, so this must not block on any
				// implementation (the test would hang, caught by the
				// package timeout).
				for _, c := range counters {
					c.Check(st.value)
				}
			case 2:
				model = 0
				for _, c := range counters {
					c.Reset()
				}
			}
			for i, c := range counters {
				if c.Value() != model {
					t.Logf("impl %s: value %d, model %d after step %d",
						impls[i], c.Value(), model, s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcurrentImplsConverge: the same random increment workload
// applied concurrently to every implementation converges to the same
// final value, and a full-level Check on each returns.
func TestQuickConcurrentImplsConverge(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		rng := workload.NewRNG(seed)
		amounts := make([]uint64, int(n8%40)+1)
		var total uint64
		for i := range amounts {
			amounts[i] = uint64(rng.Intn(50))
			total += amounts[i]
		}
		for _, impl := range Registry() {
			c := NewImpl(impl)
			done := make(chan struct{})
			go func() {
				c.Check(total)
				close(done)
			}()
			for _, a := range amounts {
				go c.Increment(a)
			}
			<-done
			// All increments have happened (Check(total) returned and
			// value never exceeds total), so Value is exact.
			if c.Value() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
