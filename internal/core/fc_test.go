package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFCCombinesUnderContention drives concurrent incrementers hard
// enough that some lose the TryLock race and publish through the slots,
// then checks nothing was lost or double-counted: the final value is
// exact, every folded increment is in both Increments and
// FastPathIncrements, and the two tallies agree.
func TestFCCombinesUnderContention(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // make the TryLock race actually contested
	defer runtime.GOMAXPROCS(prev)

	c := NewFC()
	const (
		workers   = 8
		perWorker = 20000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Increment(1)
			}
		}()
	}
	wg.Wait()

	total := uint64(workers * perWorker)
	if got := c.Value(); got != total {
		t.Fatalf("Value() = %d, want %d", got, total)
	}
	s := c.Stats()
	if s.Increments != total {
		t.Fatalf("Increments = %d, want %d (combined increments must still count)", s.Increments, total)
	}
	if s.FastPathIncrements > s.Increments {
		t.Fatalf("FastPathIncrements = %d > Increments = %d", s.FastPathIncrements, s.Increments)
	}
	if s.FastPathIncrements > 0 && s.Flushes == 0 {
		t.Fatalf("FastPathIncrements = %d with Flushes = 0: folded deltas must count drain passes", s.FastPathIncrements)
	}
	t.Logf("combined %d of %d increments in %d drains", s.FastPathIncrements, s.Increments, s.Flushes)
}

// TestFCCombinedIncrementWakesWaiter pins the lost-wakeup hazard of the
// delegation protocol: when an increment is folded by a rival lock
// holder rather than applied by its caller, the fold must still wake
// the waiters the combined total satisfies. A slot is claimed directly
// (simulating a publisher mid-protocol) while a waiter is parked; the
// next lock holder must fold it and release the waiter.
func TestFCCombinedIncrementWakesWaiter(t *testing.T) {
	c := NewFC()
	c.Increment(1) // allocate the slot array (first locked increment)

	released := make(chan struct{})
	go func() {
		c.Check(10)
		close(released)
	}()
	pollStats(t, c, "fc waiter parked", func(s Stats) bool { return s.Suspends == 1 })

	// Publish a delta the way a contended Increment would, without
	// taking the lock ourselves.
	s, token := c.slots.claim(9)
	if s == nil || token == 0 {
		t.Fatal("claim failed with an allocated, empty slot array")
	}
	// Any subsequent lock holder must fold the pending delta before
	// releasing. Check(2) cannot pass the lock-free fast path (value is
	// still 1), so it takes the mutex — and must come back satisfied by
	// the delta it just folded, without ever suspending.
	c.Check(2)
	if st := c.Stats(); st.Suspends != 1 {
		t.Fatalf("Suspends = %d, want 1: the folding Check must not park", st.Suspends)
	}

	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter not released: pending delta was not folded by the next lock holder")
	}
	if got := c.Value(); got != 10 {
		t.Fatalf("Value() = %d, want 10", got)
	}
	if st := c.Stats(); st.FastPathIncrements != 1 {
		t.Fatalf("FastPathIncrements = %d, want 1 (the folded delta)", st.FastPathIncrements)
	}
}

// TestFCIncrementVisibleOnReturn pins the two-phase fold ordering:
// Increment's synchronous contract says that once it returns, Value()
// reflects the caller's delta. A single-pass fold that freed a
// publisher's slot before storing the combined value would let the
// publisher return — and read Value() — while its own delta was still
// in flight. Each worker therefore asserts, immediately after every
// Increment(1), that Value() covers at least its own running total (the
// value is monotonic, so rivals' deltas can only push it higher).
func TestFCIncrementVisibleOnReturn(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	c := NewFC()
	const (
		workers   = 8
		perWorker = 20000
	)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for mine := uint64(1); mine <= perWorker; mine++ {
				c.Increment(1)
				if got := c.Value(); got < mine {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		t.Fatal("Increment returned before its delta was visible in Value()")
	}
	if got, want := c.Value(), uint64(workers*perWorker); got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
}

// TestFCOverflowKeepsPendingSlots: when a fold would overflow, the
// combiner must panic with the collected slots still claimed. Freeing
// them first would tell each spinning publisher its increment succeeded
// while the delta was discarded — a silent loss after a recovered
// panic. The pending publisher instead stays unacknowledged and folds
// (and panics) itself when it eventually takes the lock.
func TestFCOverflowKeepsPendingSlots(t *testing.T) {
	c := NewFC()
	c.Increment(^uint64(0) - 10) // near the top; also allocates the slots
	s, token := c.slots.claim(100)
	if s == nil {
		t.Fatal("claim failed with an allocated, empty slot array")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("overflowing fold did not panic")
			}
		}()
		c.Check(^uint64(0)) // locked slow path: folds the pending delta
	}()
	if got := s.v.Load(); got != token {
		t.Fatalf("slot = %#x after overflow panic, want the claim token %#x still published", got, token)
	}
	if got := c.Value(); got != ^uint64(0)-10 {
		t.Fatalf("Value() after recovered overflow = %d, want %d", got, ^uint64(0)-10)
	}
	// Clean up the manual claim so the counter is quiescent again.
	s.v.Store(0)
}

// TestFCLargeAmountFallsBack checks that amounts too large for the
// packed slot word take the blocking locked path and still apply
// exactly, even under contention.
func TestFCLargeAmountFallsBack(t *testing.T) {
	c := NewFC()
	const big = fcAmountCap + 5
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Increment(big)
			for j := 0; j < 1000; j++ {
				c.Increment(1)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), 4*big+4000; got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
}

// TestFCOverflowPanics: the combining path must never silently wrap,
// whether the overflowing delta arrives through the caller's own locked
// add or a fold of published slots.
func TestFCOverflowPanics(t *testing.T) {
	c := NewFC()
	c.Increment(^uint64(0) - 10)
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing increment did not panic")
		}
		// The panic must have released the engine mutex (the server
		// recovers overflow into a wire error and keeps the counter).
		if got := c.Value(); got != ^uint64(0)-10 {
			t.Fatalf("Value() after recovered overflow = %d, want %d", got, ^uint64(0)-10)
		}
	}()
	c.Increment(100)
}

// TestStripeCountCapturedOnce is the regression test for the
// stripe-count capture bug: the shard cells and the striped stats cells
// used to size themselves from runtime.GOMAXPROCS(0) at whichever
// moment each was first touched, so a GOMAXPROCS change between those
// moments produced arrays that disagreed about the stripe space. The
// count must now be captured once per counter; raising and lowering
// GOMAXPROCS mid-run must neither index out of range nor lose counts.
func TestStripeCountCapturedOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, impl := range []Impl{ImplSharded, ImplFC, ImplAtomic} {
		t.Run(string(impl), func(t *testing.T) {
			runtime.GOMAXPROCS(2)
			c := NewImpl(impl)
			var total atomic.Uint64
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						c.Increment(1)
						total.Add(1)
						c.Check(1) // exercise the striped fast-check cells too
					}
				}()
			}
			// Thrash the proc count while the stripes are in use: any
			// array sized from a fresh GOMAXPROCS read instead of the
			// captured count would change length under the workers.
			for _, n := range []int{8, 1, 4, 2, 16, 1} {
				runtime.GOMAXPROCS(n)
				time.Sleep(2 * time.Millisecond)
			}
			close(stop)
			wg.Wait()
			if got, want := c.Value(), total.Load(); got != want {
				t.Fatalf("Value() = %d, want %d: counts lost across GOMAXPROCS changes", got, want)
			}
			sp := c.(StatsProvider)
			if s := sp.Stats(); s.Increments != total.Load() {
				t.Fatalf("Increments = %d, want %d", s.Increments, total.Load())
			}
		})
	}
}

// TestFCStatsCellsSizedWithSlots pins FCCounter's capture point the same
// way: allocating the combining slots must co-allocate the fast-check
// stats cells from the one captured stripe count, so the counter's two
// striped structures can never disagree about the stripe space.
func TestFCStatsCellsSizedWithSlots(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(4)
	c := NewFC()
	c.Increment(1) // allocates the combining slots, and with them the stats cells
	runtime.GOMAXPROCS(1)

	slots := c.slots.slots.Load()
	stats := c.fastChecks.cells.Load()
	if slots == nil || stats == nil {
		t.Fatalf("arrays not co-allocated: slots=%v statsCells=%v", slots != nil, stats != nil)
	}
	if len(*slots) != len(*stats) {
		t.Fatalf("combining slots (%d) and stats cells (%d) disagree about the stripe count", len(*slots), len(*stats))
	}
	if len(*slots) != 4 {
		t.Fatalf("stripe count = %d, want the captured 4, not the current GOMAXPROCS", len(*slots))
	}
}

// TestShardedStatsCellsSizedWithShards pins the capture point: after the
// shard array exists, the fast-check stats cells must exist with the
// same length, whatever GOMAXPROCS says now.
func TestShardedStatsCellsSizedWithShards(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(4)
	c := NewSharded()
	c.Increment(1) // allocates the shard cells, and with them the stats cells
	runtime.GOMAXPROCS(1)

	shards := c.shards.Load()
	stats := c.fastChecks.cells.Load()
	if shards == nil || stats == nil {
		t.Fatalf("arrays not co-allocated: shards=%v statsCells=%v", shards != nil, stats != nil)
	}
	if len(*shards) != len(*stats) {
		t.Fatalf("shard cells (%d) and stats cells (%d) disagree about the stripe count", len(*shards), len(*stats))
	}
	if len(*shards) != 4 {
		t.Fatalf("stripe count = %d, want the captured 4, not the current GOMAXPROCS", len(*shards))
	}
}

// TestFCSetSpinEncoding pins SetSpin's packed encoding, mirroring
// TestSpinSetSpinsEncoding: the zero value means the tuned defaults, any
// negative argument restores them, explicit zeros are honored (park
// immediately), and out-of-range budgets are capped rather than allowed
// to corrupt the packing.
func TestFCSetSpinEncoding(t *testing.T) {
	c := NewFC()
	if a, y := c.spinBudget(); a != fcSpinActive || y != fcSpinYields {
		t.Fatalf("zero-value budget = (%d,%d), want defaults (%d,%d)", a, y, fcSpinActive, fcSpinYields)
	}
	c.SetSpin(0, 0)
	if a, y := c.spinBudget(); a != 0 || y != 0 {
		t.Fatalf("budget after SetSpin(0,0) = (%d,%d), want (0,0)", a, y)
	}
	c.SetSpin(-1, 5)
	if a, y := c.spinBudget(); a != fcSpinActive || y != fcSpinYields {
		t.Fatalf("budget after SetSpin(-1,5) = (%d,%d), want defaults (%d,%d)", a, y, fcSpinActive, fcSpinYields)
	}
	c.SetSpin(7, 3)
	if a, y := c.spinBudget(); a != 7 || y != 3 {
		t.Fatalf("budget after SetSpin(7,3) = (%d,%d), want (7,3)", a, y)
	}
	c.SetSpin(1<<31, 1<<20)
	if a, y := c.spinBudget(); a != 1<<30 || y != 1<<15 {
		t.Fatalf("budget after oversized SetSpin = (%d,%d), want caps (%d,%d)", a, y, 1<<30, 1<<15)
	}
	// A zero budget must still be correct, just eager to park.
	c.SetSpin(0, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Increment(1) }()
	}
	wg.Wait()
	if got := c.Value(); got != 8 {
		t.Fatalf("value with zero spin budget = %d, want 8", got)
	}
}

// BenchmarkFCSpinTune is the sweep behind the fcSpinActive/fcSpinYields
// defaults: contended increments under a range of publisher spin
// budgets, meant to be run with -cpu 1,2,4 (the E23 notes record the
// numbers). It is not part of the recorded BENCH suites.
func BenchmarkFCSpinTune(b *testing.B) {
	for _, cfg := range []struct{ active, yields int }{
		{0, 0}, {8, 2}, {32, 4}, {128, 8}, {512, 16},
	} {
		b.Run(fmt.Sprintf("active=%d,yields=%d", cfg.active, cfg.yields), func(b *testing.B) {
			c := NewFC()
			c.SetSpin(cfg.active, cfg.yields)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					c.Increment(1)
				}
			})
		})
	}
}
