package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Counter is the reference monotonic-counter implementation, following
// section 7 of the paper: a mutex protects a nonnegative value and an
// ordered singly-linked list of waiter nodes. Each node represents one
// distinct level on which goroutines are suspended and carries its own
// condition variable, so an Increment wakes exactly the levels it
// satisfies. Storage and the time complexity of Increment and Check are
// proportional to the number of distinct levels with waiters, not to the
// total number of waiting goroutines.
//
// The zero value is a valid counter with value zero.
type Counter struct {
	mu      sync.Mutex
	value   uint64
	head    *node // ascending by level; a satisfied ("set") prefix may linger while draining
	waiters int   // total suspended goroutines, for Reset misuse detection

	// Cost-model instrumentation (section 7 claims). Updated under mu.
	stats Stats
}

// node is one suspension queue: all goroutines waiting for the same level.
// It mirrors the four-field structure of the paper's Figure 2: a level, a
// count of waiting threads, a condition variable with its "set" flag, and a
// link to the next node.
type node struct {
	level uint64
	count int
	set   bool
	cond  sync.Cond
	next  *node
}

// Stats are cumulative cost-model measurements for one counter.
type Stats struct {
	// PeakLevels is the maximum number of list nodes (distinct waited-on
	// levels) ever present at once.
	PeakLevels int
	// Broadcasts counts condition-variable broadcasts issued by
	// Increment; the paper's design issues one per satisfied level.
	Broadcasts uint64
	// Suspends counts Check calls that actually blocked.
	Suspends uint64
	// ImmediateChecks counts Check calls satisfied without blocking.
	ImmediateChecks uint64
	// Increments counts Increment calls (including Increment(0)).
	Increments uint64
}

// New returns a counter with value zero. Equivalent to new(Counter); it
// exists for symmetry with the other implementations' constructors.
func New() *Counter { return new(Counter) }

// Increment implements Interface.
func (c *Counter) Increment(amount uint64) {
	c.mu.Lock()
	c.value = checkedAdd(c.value, amount)
	c.stats.Increments++
	// Mark the satisfied prefix. Nodes stay linked until their last
	// waiter drains (matching the structure shown in Figure 2 (e)-(g));
	// already-set nodes from a previous increment are skipped.
	for n := c.head; n != nil && n.level <= c.value; n = n.next {
		if !n.set {
			n.set = true
			n.cond.Broadcast()
			c.stats.Broadcasts++
		}
	}
	c.mu.Unlock()
}

// Check implements Interface.
func (c *Counter) Check(level uint64) {
	c.mu.Lock()
	if level <= c.value {
		c.stats.ImmediateChecks++
		c.mu.Unlock()
		return
	}
	n := c.join(level)
	for !n.set {
		n.cond.Wait()
	}
	c.leave(n)
	c.mu.Unlock()
}

// CheckContext implements Interface.
func (c *Counter) CheckContext(ctx context.Context, level uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.mu.Lock()
	if level <= c.value {
		c.stats.ImmediateChecks++
		c.mu.Unlock()
		return nil
	}
	n := c.join(level)
	// sync.Cond cannot select on a channel, so a watcher goroutine turns
	// context cancellation into a broadcast. The stop channel bounds the
	// watcher's lifetime to this call.
	stop := make(chan struct{})
	go func() {
		select {
		case <-done:
			c.mu.Lock()
			n.cond.Broadcast()
			c.mu.Unlock()
		case <-stop:
		}
	}()
	for !n.set && ctx.Err() == nil {
		n.cond.Wait()
	}
	close(stop)
	var err error
	if !n.set {
		err = ctx.Err()
	}
	c.leave(n)
	c.mu.Unlock()
	return err
}

// join finds or inserts the node for level (which must exceed c.value) and
// registers the caller as a waiter. Called with c.mu held.
func (c *Counter) join(level uint64) *node {
	n := c.insert(level)
	n.count++
	c.waiters++
	c.stats.Suspends++
	return n
}

// leave deregisters the caller from n; the goroutine that drops a node's
// count to zero unlinks it (the paper's "deallocates the node" — here the
// garbage collector reclaims it once unlinked). Called with c.mu held.
func (c *Counter) leave(n *node) {
	n.count--
	c.waiters--
	if n.count == 0 {
		c.unlink(n)
	}
}

// insert returns the list node for level, creating and splicing in a new
// one if none exists. The list is ordered ascending by level; a satisfied
// prefix may be present but its levels are <= c.value < level, so ordering
// is preserved. Called with c.mu held.
func (c *Counter) insert(level uint64) *node {
	p := &c.head
	for *p != nil && (*p).level < level {
		p = &(*p).next
	}
	if *p != nil && (*p).level == level && !(*p).set {
		return *p
	}
	n := &node{level: level, next: *p}
	n.cond.L = &c.mu
	*p = n
	if l := c.listLen(); l > c.stats.PeakLevels {
		c.stats.PeakLevels = l
	}
	return n
}

// unlink removes n from the waiting list if still present. Called with
// c.mu held.
func (c *Counter) unlink(n *node) {
	for p := &c.head; *p != nil; p = &(*p).next {
		if *p == n {
			*p = n.next
			n.next = nil
			return
		}
	}
}

func (c *Counter) listLen() int {
	l := 0
	for n := c.head; n != nil; n = n.next {
		l++
	}
	return l
}

// Reset implements Interface. It panics if any goroutine is suspended on
// the counter, since the paper forbids Reset concurrent with other
// operations.
func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.waiters != 0 || c.head != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value = 0
}

// Value implements Interface. For inspection and testing only.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value
}

// Stats returns a copy of the counter's cumulative cost statistics.
func (c *Counter) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Snapshot is a consistent picture of a counter's internal structure, in
// the exact shape of the paper's Figure 2: the value plus the ordered
// waiting list of (level, count, set) nodes.
type Snapshot struct {
	Value uint64
	Nodes []NodeSnapshot
}

// NodeSnapshot describes one waiter node.
type NodeSnapshot struct {
	Level uint64
	Count int
	Set   bool
}

// String renders the snapshot in the style of Figure 2, e.g.
// "value=7 waiting=[{level=5 count=1 set} {level=9 count=1 not-set}]".
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "value=%d waiting=[", s.Value)
	for i, n := range s.Nodes {
		if i > 0 {
			b.WriteByte(' ')
		}
		flag := "not-set"
		if n.Set {
			flag = "set"
		}
		fmt.Fprintf(&b, "{level=%d count=%d %s}", n.Level, n.Count, flag)
	}
	b.WriteByte(']')
	return b.String()
}

// Inspect returns a snapshot of the counter's structure. For tracing and
// testing only (it is how the Figure 2 trace is reproduced); synchronization
// decisions must never be based on it.
func (c *Counter) Inspect() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{Value: c.value}
	for n := c.head; n != nil; n = n.next {
		s.Nodes = append(s.Nodes, NodeSnapshot{Level: n.level, Count: n.count, Set: n.set})
	}
	return s
}

var _ Interface = (*Counter)(nil)
