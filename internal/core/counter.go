package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
)

// Counter is the reference monotonic-counter implementation, following
// section 7 of the paper: a mutex protects a nonnegative value and an
// ordered singly-linked list of waiter nodes. Each node represents one
// distinct level on which goroutines are suspended and carries its own
// condition variable, so an Increment wakes exactly the levels it
// satisfies. Storage and the time complexity of Increment and Check are
// proportional to the number of distinct levels with waiters, not to the
// total number of waiting goroutines.
//
// The blocking machinery (suspension, wake-up, cancellation) is the
// shared waitlist engine, which keeps the wake fan-out off the engine
// mutex: Increment unlinks the satisfied levels and broadcasts after
// releasing the lock, and woken waiters drain with an atomic count.
// Counter contributes the sorted-list index and the cost-model
// instrumentation.
//
// The zero value is a valid counter with value zero.
type Counter struct {
	wl    waitlist
	value uint64
	list  listIndex // ascending by level; satisfied nodes move to the engine's draining record

	// Cost-model instrumentation (section 7 claims). Updated under wl.mu,
	// except the wake-side tallies below, which the incrementer bumps
	// after releasing the mutex (re-locking just to count would put the
	// engine mutex back on the wake path).
	stats          Stats
	wakeBroadcasts atomic.Uint64
	wakeCloses     atomic.Uint64
}

// Stats are cumulative cost-model measurements for one counter.
type Stats struct {
	// PeakLevels is the maximum number of distinct not-yet-satisfied
	// levels (live list nodes) ever waited on at once. Satisfied nodes
	// still draining their waiters are not counted: they no longer
	// represent a waited-on level.
	PeakLevels int
	// SatisfiedLevels counts levels satisfied by increments — the
	// paper's "one wake-up per satisfied level" cost unit.
	SatisfiedLevels uint64
	// Broadcasts counts condition-variable broadcasts actually issued
	// by the wake path: a satisfied level whose waiters all sleep on
	// ready channels (CheckContext) needs no broadcast, so Broadcasts
	// can be less than SatisfiedLevels.
	Broadcasts uint64
	// ChannelCloses counts ready-channel closes issued by the wake
	// path — the CheckContext counterpart of Broadcasts. A level with
	// both kinds of sleeper costs one of each.
	ChannelCloses uint64
	// Suspends counts Check calls that actually blocked.
	Suspends uint64
	// ImmediateChecks counts Check calls satisfied without blocking.
	ImmediateChecks uint64
	// Increments counts Increment calls (including Increment(0)).
	Increments uint64
}

// New returns a counter with value zero. Equivalent to new(Counter); it
// exists for symmetry with the other implementations' constructors.
func New() *Counter { return new(Counter) }

// Counter is its own levelIndex: it delegates to the sorted list and
// layers the PeakLevels measurement onto node creation.

func (c *Counter) acquire(w *waitlist, level uint64) (*waitNode, bool) {
	n, created := c.list.acquire(w, level)
	if created && c.list.live > c.stats.PeakLevels {
		c.stats.PeakLevels = c.list.live
	}
	return n, created
}

func (c *Counter) drop(n *waitNode) { c.list.drop(n) }

// Increment implements Interface. The satisfied prefix is unlinked into
// the engine's draining record under the mutex (still snapshot-visible,
// matching Figure 2 (e)-(g)), but the wake-ups themselves — channel
// closes and broadcasts — happen after the mutex is released, so a
// large fan-out never stalls other operations on the counter.
func (c *Counter) Increment(amount uint64) {
	c.wl.mu.Lock()
	c.value = checkedAdd(c.value, amount)
	c.stats.Increments++
	head, k := c.list.popSatisfied(c.value)
	for n := head; n != nil; n = n.next {
		c.wl.satisfyLocked(n)
	}
	c.stats.SatisfiedLevels += uint64(k)
	c.wl.mu.Unlock()
	if head == nil {
		return
	}
	closes, broadcasts := c.wl.wakeBatch(head)
	c.wakeCloses.Add(uint64(closes))
	c.wakeBroadcasts.Add(uint64(broadcasts))
}

// Check implements Interface.
func (c *Counter) Check(level uint64) {
	c.wl.mu.Lock()
	if level <= c.value {
		c.stats.ImmediateChecks++
		c.wl.mu.Unlock()
		return
	}
	n := c.join(level)
	c.wl.mu.Unlock()
	c.wl.wait(n)
	c.wl.drain(c, n)
}

// CheckContext implements Interface. An already-satisfied level wins
// over an already-cancelled context, and no goroutine is spawned on
// behalf of the call: cancellation is observed by selecting on the
// node's ready channel.
func (c *Counter) CheckContext(ctx context.Context, level uint64) error {
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.wl.mu.Lock()
	if level <= c.value {
		c.stats.ImmediateChecks++
		c.wl.mu.Unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		c.wl.mu.Unlock()
		return err
	}
	n := c.join(level)
	c.wl.mu.Unlock()
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(c, n)
	return err
}

// join registers the caller as a waiter on the node for level (which must
// exceed c.value). Called with wl.mu held.
func (c *Counter) join(level uint64) *waitNode {
	n := c.wl.join(c, level)
	c.stats.Suspends++
	return n
}

// leave deregisters the caller from n with wl.mu already held — the
// simulator's single-threaded counterpart of the engine's drain.
func (c *Counter) leave(n *waitNode) {
	c.wl.leaveLocked(c, n)
}

// Reset implements Interface. It panics if any goroutine is suspended on
// the counter, since the paper forbids Reset concurrent with other
// operations.
func (c *Counter) Reset() {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	if c.wl.busyLocked() || c.list.head != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value = 0
}

// Value implements Interface. For inspection and testing only.
func (c *Counter) Value() uint64 {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	return c.value
}

// Stats returns a copy of the counter's cumulative cost statistics.
func (c *Counter) Stats() Stats {
	c.wl.mu.Lock()
	s := c.stats
	c.wl.mu.Unlock()
	s.Broadcasts += c.wakeBroadcasts.Load()
	s.ChannelCloses += c.wakeCloses.Load()
	return s
}

// Snapshot is a consistent picture of a counter's internal structure, in
// the exact shape of the paper's Figure 2: the value plus the ordered
// waiting list of (level, count, set) nodes.
type Snapshot struct {
	Value uint64
	Nodes []NodeSnapshot
}

// NodeSnapshot describes one waiter node.
type NodeSnapshot struct {
	Level uint64
	Count int
	Set   bool
}

// String renders the snapshot in the style of Figure 2, e.g.
// "value=7 waiting=[{level=5 count=1 set} {level=9 count=1 not-set}]".
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "value=%d waiting=[", s.Value)
	for i, n := range s.Nodes {
		if i > 0 {
			b.WriteByte(' ')
		}
		flag := "not-set"
		if n.Set {
			flag = "set"
		}
		fmt.Fprintf(&b, "{level=%d count=%d %s}", n.Level, n.Count, flag)
	}
	b.WriteByte(']')
	return b.String()
}

// Inspect returns a snapshot of the counter's structure. For tracing and
// testing only (it is how the Figure 2 trace is reproduced); synchronization
// decisions must never be based on it.
//
// Satisfied nodes still draining their waiters come from the engine's
// draining record; their levels are at most the value, so prepending
// them to the live list preserves the figure's ascending order.
func (c *Counter) Inspect() Snapshot {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	s := Snapshot{Value: c.value}
	for _, n := range c.wl.draining {
		if n == nil { // already-retired slot
			continue
		}
		s.Nodes = append(s.Nodes, NodeSnapshot{Level: n.level, Count: int(n.count.Load()), Set: true})
	}
	for n := c.list.head; n != nil; n = n.next {
		s.Nodes = append(s.Nodes, NodeSnapshot{Level: n.level, Count: int(n.count.Load()), Set: false})
	}
	return s
}

var _ Interface = (*Counter)(nil)
var _ levelIndex = (*Counter)(nil)
