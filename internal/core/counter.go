package core

import (
	"context"
	"fmt"
	"strings"
)

// Counter is the reference monotonic-counter implementation, following
// section 7 of the paper: a mutex protects a nonnegative value and an
// ordered singly-linked list of waiter nodes. Each node represents one
// distinct level on which goroutines are suspended and carries its own
// condition variable, so an Increment wakes exactly the levels it
// satisfies. Storage and the time complexity of Increment and Check are
// proportional to the number of distinct levels with waiters, not to the
// total number of waiting goroutines.
//
// The blocking machinery (suspension, wake-up, cancellation) is the
// shared waitlist engine; Counter contributes the sorted-list index and
// the cost-model instrumentation.
//
// The zero value is a valid counter with value zero.
type Counter struct {
	wl    waitlist
	value uint64
	list  listIndex // ascending by level; a satisfied ("set") prefix may linger while draining

	// Cost-model instrumentation (section 7 claims). Updated under wl.mu.
	stats Stats
}

// Stats are cumulative cost-model measurements for one counter.
type Stats struct {
	// PeakLevels is the maximum number of distinct not-yet-satisfied
	// levels (live list nodes) ever waited on at once. Satisfied nodes
	// still draining their waiters are not counted: they no longer
	// represent a waited-on level.
	PeakLevels int
	// Broadcasts counts condition-variable broadcasts issued by
	// Increment; the paper's design issues one per satisfied level.
	Broadcasts uint64
	// Suspends counts Check calls that actually blocked.
	Suspends uint64
	// ImmediateChecks counts Check calls satisfied without blocking.
	ImmediateChecks uint64
	// Increments counts Increment calls (including Increment(0)).
	Increments uint64
}

// New returns a counter with value zero. Equivalent to new(Counter); it
// exists for symmetry with the other implementations' constructors.
func New() *Counter { return new(Counter) }

// Counter is its own levelIndex: it delegates to the sorted list and
// layers the PeakLevels measurement onto node creation (a zero count
// marks a node acquire just created).

func (c *Counter) acquire(w *waitlist, level uint64) *waitNode {
	n := c.list.acquire(w, level)
	if n.count == 0 {
		if l := c.list.liveLen(); l > c.stats.PeakLevels {
			c.stats.PeakLevels = l
		}
	}
	return n
}

func (c *Counter) drop(n *waitNode) { c.list.drop(n) }

// Increment implements Interface.
func (c *Counter) Increment(amount uint64) {
	c.wl.mu.Lock()
	c.value = checkedAdd(c.value, amount)
	c.stats.Increments++
	// Mark the satisfied prefix. Nodes stay linked until their last
	// waiter drains (matching the structure shown in Figure 2 (e)-(g));
	// already-set nodes from a previous increment are skipped.
	for n := c.list.head; n != nil && n.level <= c.value; n = n.next {
		if !n.set {
			c.wl.satisfy(n)
			c.stats.Broadcasts++
		}
	}
	c.wl.mu.Unlock()
}

// Check implements Interface.
func (c *Counter) Check(level uint64) {
	c.wl.mu.Lock()
	if level <= c.value {
		c.stats.ImmediateChecks++
		c.wl.mu.Unlock()
		return
	}
	n := c.join(level)
	c.wl.wait(n)
	c.leave(n)
	c.wl.mu.Unlock()
}

// CheckContext implements Interface. An already-satisfied level wins
// over an already-cancelled context, and no goroutine is spawned on
// behalf of the call: cancellation is observed by selecting on the
// node's ready channel.
func (c *Counter) CheckContext(ctx context.Context, level uint64) error {
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.wl.mu.Lock()
	if level <= c.value {
		c.stats.ImmediateChecks++
		c.wl.mu.Unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		c.wl.mu.Unlock()
		return err
	}
	n := c.join(level)
	err := c.wl.waitCtx(ctx, n)
	c.leave(n)
	c.wl.mu.Unlock()
	return err
}

// join registers the caller as a waiter on the node for level (which must
// exceed c.value). Called with wl.mu held.
func (c *Counter) join(level uint64) *waitNode {
	n := c.wl.join(c, level)
	c.stats.Suspends++
	return n
}

// leave deregisters the caller from n; the goroutine that drops a node's
// count to zero unlinks it. Called with wl.mu held.
func (c *Counter) leave(n *waitNode) {
	c.wl.leave(c, n)
}

// Reset implements Interface. It panics if any goroutine is suspended on
// the counter, since the paper forbids Reset concurrent with other
// operations.
func (c *Counter) Reset() {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	if c.wl.waiters != 0 || c.list.head != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value = 0
}

// Value implements Interface. For inspection and testing only.
func (c *Counter) Value() uint64 {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	return c.value
}

// Stats returns a copy of the counter's cumulative cost statistics.
func (c *Counter) Stats() Stats {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	return c.stats
}

// Snapshot is a consistent picture of a counter's internal structure, in
// the exact shape of the paper's Figure 2: the value plus the ordered
// waiting list of (level, count, set) nodes.
type Snapshot struct {
	Value uint64
	Nodes []NodeSnapshot
}

// NodeSnapshot describes one waiter node.
type NodeSnapshot struct {
	Level uint64
	Count int
	Set   bool
}

// String renders the snapshot in the style of Figure 2, e.g.
// "value=7 waiting=[{level=5 count=1 set} {level=9 count=1 not-set}]".
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "value=%d waiting=[", s.Value)
	for i, n := range s.Nodes {
		if i > 0 {
			b.WriteByte(' ')
		}
		flag := "not-set"
		if n.Set {
			flag = "set"
		}
		fmt.Fprintf(&b, "{level=%d count=%d %s}", n.Level, n.Count, flag)
	}
	b.WriteByte(']')
	return b.String()
}

// Inspect returns a snapshot of the counter's structure. For tracing and
// testing only (it is how the Figure 2 trace is reproduced); synchronization
// decisions must never be based on it.
func (c *Counter) Inspect() Snapshot {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	s := Snapshot{Value: c.value}
	for n := c.list.head; n != nil; n = n.next {
		s.Nodes = append(s.Nodes, NodeSnapshot{Level: n.level, Count: n.count, Set: n.set})
	}
	return s
}

var _ Interface = (*Counter)(nil)
var _ levelIndex = (*Counter)(nil)
