package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
)

// Counter is the reference monotonic-counter implementation, following
// section 7 of the paper: a mutex protects a nonnegative value and an
// ordered singly-linked list of waiter nodes. Each node represents one
// distinct level on which goroutines are suspended and carries its own
// condition variable, so an Increment wakes exactly the levels it
// satisfies. Storage and the time complexity of Increment and Check are
// proportional to the number of distinct levels with waiters, not to the
// total number of waiting goroutines.
//
// The blocking machinery (suspension, wake-up, cancellation) is the
// shared waitlist engine, which keeps the wake fan-out off the engine
// mutex — Increment unlinks the satisfied levels and broadcasts after
// releasing the lock, and woken waiters drain with an atomic count —
// and also owns the cost-model instrumentation (Stats, stats.go).
// Counter contributes the sorted-list index.
//
// The value doubles as a watermark: it is stored atomically (still only
// under the engine mutex, and before any wake) so Check, CheckContext,
// and WaitTimeout on an already-satisfied level return after one atomic
// load with no mutex at all. Monotonicity makes that safe — a stale
// read can only under-estimate — and the seq-cst store/load pair keeps
// the happens-before edge from the publishing Increment.
//
// The zero value is a valid counter with value zero.
type Counter struct {
	wl    waitlist
	value atomic.Uint64 // mutated only under wl.mu; read lock-free as the watermark
	list  listIndex     // ascending by level; satisfied nodes move to the engine's draining record
	// fastChecks counts satisfied lock-free checks; folded into
	// Stats.ImmediateChecks alongside the engine's locked tally.
	fastChecks stripedUint64
}

// New returns a counter with value zero. Equivalent to new(Counter); it
// exists for symmetry with the other implementations' constructors.
func New() *Counter { return new(Counter) }

// Increment implements Interface. The satisfied prefix is unlinked into
// the engine's draining record under the mutex (still snapshot-visible,
// matching Figure 2 (e)-(g)), but the wake-ups themselves — channel
// closes and broadcasts — happen after the mutex is released, so a
// large fan-out never stalls other operations on the counter.
// Increment(0) is a no-op and returns before touching the lock.
func (c *Counter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	c.wl.lock()
	v := checkedAdd(c.value.Load(), amount)
	// Publish the watermark before any wake so a fast-path reader that
	// raced past the mutex observes the new value no later than woken
	// waiters do.
	c.value.Store(v)
	c.wl.stats.increments++
	head, _ := c.list.popSatisfied(v)
	for n := head; n != nil; n = n.next {
		c.wl.satisfyLocked(n)
	}
	c.wl.unlock()
	c.wl.emit(EventIncrement, amount)
	if head != nil {
		c.wl.wakeBatch(head)
	}
}

// Check implements Interface. The satisfied case is one atomic
// watermark load — no mutex; only an unsatisfied level falls through to
// the locked registration.
func (c *Counter) Check(level uint64) {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return
	}
	c.wl.lock()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.unlock()
		return
	}
	n := c.join(level)
	c.wl.unlock()
	c.wl.wait(n)
	c.wl.drain(&c.list, n)
}

// CheckContext implements Interface. An already-satisfied level wins
// over an already-cancelled context, and no goroutine is spawned on
// behalf of the call: cancellation is observed by selecting on the
// node's ready channel.
func (c *Counter) CheckContext(ctx context.Context, level uint64) error {
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	// Satisfied beats cancelled, and the satisfied case is lock-free:
	// the watermark is consulted before the context, same as the locked
	// ordering below.
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return nil
	}
	c.wl.lock()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		c.wl.unlock()
		return err
	}
	n := c.join(level)
	c.wl.unlock()
	err := c.wl.waitCtx(ctx, n)
	c.wl.drain(&c.list, n)
	return err
}

// join registers the caller as a waiter on the node for level (which must
// exceed c.value). Called with wl.mu held.
func (c *Counter) join(level uint64) *waitNode {
	return c.wl.join(&c.list, level)
}

// leave deregisters the caller from n with wl.mu already held — the
// simulator's single-threaded counterpart of the engine's drain.
func (c *Counter) leave(n *waitNode) {
	c.wl.leaveLocked(&c.list, n)
}

// Reset implements Interface. It panics if any goroutine is suspended on
// the counter, since the paper forbids Reset concurrent with other
// operations. Stats are cumulative and survive the reset.
func (c *Counter) Reset() {
	c.wl.lock()
	defer c.wl.unlock()
	if c.wl.busyLocked() || c.list.head != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. Lock-free: the watermark is the value.
func (c *Counter) Value() uint64 {
	return c.value.Load()
}

// Stats implements StatsProvider with the engine's collector, folding in
// the lock-free fast-path checks.
func (c *Counter) Stats() Stats {
	s := c.wl.readStats()
	s.ImmediateChecks += c.fastChecks.Load()
	return s
}

// LockAcquires implements LockCounter: engine-mutex acquisitions
// recorded while SetLockCounting was enabled.
func (c *Counter) LockAcquires() uint64 {
	return c.wl.lockAcquires.Load()
}

// SetProbe implements ProbeSetter: f observes increment/suspend/wake
// events until replaced; nil disables the hook.
func (c *Counter) SetProbe(f func(Event)) {
	c.wl.SetProbe(f)
}

// Snapshot is a consistent picture of a counter's internal structure, in
// the exact shape of the paper's Figure 2: the value plus the ordered
// waiting list of (level, count, set) nodes.
type Snapshot struct {
	Value uint64
	Nodes []NodeSnapshot
}

// NodeSnapshot describes one waiter node.
type NodeSnapshot struct {
	Level uint64
	Count int
	Set   bool
}

// String renders the snapshot in the style of Figure 2, e.g.
// "value=7 waiting=[{level=5 count=1 set} {level=9 count=1 not-set}]".
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "value=%d waiting=[", s.Value)
	for i, n := range s.Nodes {
		if i > 0 {
			b.WriteByte(' ')
		}
		flag := "not-set"
		if n.Set {
			flag = "set"
		}
		fmt.Fprintf(&b, "{level=%d count=%d %s}", n.Level, n.Count, flag)
	}
	b.WriteByte(']')
	return b.String()
}

// Inspect returns a snapshot of the counter's structure. For tracing and
// testing only (it is how the Figure 2 trace is reproduced); synchronization
// decisions must never be based on it.
//
// Satisfied nodes still draining their waiters come from the engine's
// draining record; their levels are at most the value, so prepending
// them to the live list preserves the figure's ascending order.
func (c *Counter) Inspect() Snapshot {
	c.wl.lock()
	defer c.wl.unlock()
	s := Snapshot{Value: c.value.Load()}
	for _, n := range c.wl.draining {
		if n == nil { // already-retired slot
			continue
		}
		s.Nodes = append(s.Nodes, NodeSnapshot{Level: n.level, Count: int(n.count.Load()), Set: true})
	}
	for n := c.list.head; n != nil; n = n.next {
		s.Nodes = append(s.Nodes, NodeSnapshot{Level: n.level, Count: int(n.count.Load()), Set: false})
	}
	return s
}

var _ Interface = (*Counter)(nil)
var _ StatsProvider = (*Counter)(nil)
var _ ProbeSetter = (*Counter)(nil)
