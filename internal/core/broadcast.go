package core

import (
	"context"
)

// BroadcastCounter is the naive baseline the paper's cost analysis argues
// against: every increment wakes every waiter, and every waiter re-checks
// its own level after every wake. Wake cost is proportional to the total
// number of waiting goroutines (the thundering herd), not to the number of
// satisfied levels. It exists as the comparison point for the E10/E11 cost
// experiments.
//
// On the shared waitlist engine the herd is expressed as a degenerate
// index: a single "round" node that every waiter joins regardless of
// level, satisfied by every increment. A waiter whose level is still
// unsatisfied after a wake joins the next round node and sleeps again.
// The broadcast itself happens out of lock like every other wake, but
// that does not rescue the design: every waiter still wakes and relocks
// the engine mutex to re-check its level, which is the O(waiters) cost
// the per-level designs avoid.
//
// The zero value is a valid counter with value zero.
type BroadcastCounter struct {
	wl    waitlist
	value uint64
	round *waitNode // node all current waiters sleep on; nil when none joined since the last increment
	wakes uint64    // cumulative waiter wake-ups (each re-check after a broadcast)
}

// NewBroadcast returns a BroadcastCounter with value zero.
func NewBroadcast() *BroadcastCounter { return new(BroadcastCounter) }

// BroadcastCounter's levelIndex ignores the level entirely: every
// acquire lands on the shared round node — that is the ablation.

func (c *BroadcastCounter) acquire(w *waitlist, level uint64) (*waitNode, bool) {
	if c.round == nil {
		c.round = newWaitNode(level)
		return c.round, true
	}
	return c.round, false
}

func (c *BroadcastCounter) drop(n *waitNode) {
	if c.round == n {
		c.round = nil
	}
}

// Increment implements Interface. Every increment broadcasts to every
// waiter, satisfied level or not: in Stats terms each increment with
// waiters satisfies the one round node, so SatisfiedLevels counts wake
// rounds rather than distinct levels — that flattening is the ablation.
// Increment(0) is a no-op and returns before touching the lock.
func (c *BroadcastCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	c.wl.mu.Lock()
	c.value = checkedAdd(c.value, amount)
	c.wl.stats.increments++
	n := c.round
	if n != nil {
		c.round = nil
		c.wl.satisfyLocked(n)
	}
	c.wl.mu.Unlock()
	c.wl.emit(EventIncrement, amount)
	if n != nil {
		c.wl.wakeBatch(n)
	}
}

// Check implements Interface. A waiter woken below its level re-joins
// the next round, so Suspends counts every park — the thundering-herd
// cost made visible in the unified schema.
func (c *BroadcastCounter) Check(level uint64) {
	c.wl.mu.Lock()
	if level <= c.value {
		c.wl.stats.immediateChecks++
		c.wl.mu.Unlock()
		return
	}
	for level > c.value {
		n := c.wl.join(c, level)
		c.wl.mu.Unlock()
		c.wl.wait(n)
		c.wl.drain(c, n)
		c.wl.mu.Lock()
		c.wakes++
	}
	c.wl.mu.Unlock()
}

// CheckContext implements Interface. The value is consulted before the
// context, so an already-satisfied level wins over an already-cancelled
// context; cancellation is observed by selecting on the round node's
// ready channel — no watcher goroutine.
func (c *BroadcastCounter) CheckContext(ctx context.Context, level uint64) error {
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.wl.mu.Lock()
	if level <= c.value {
		c.wl.stats.immediateChecks++
		c.wl.mu.Unlock()
		return nil
	}
	for level > c.value {
		if err := ctx.Err(); err != nil {
			c.wl.mu.Unlock()
			return err
		}
		n := c.wl.join(c, level)
		c.wl.mu.Unlock()
		err := c.wl.waitCtx(ctx, n)
		c.wl.drain(c, n)
		c.wl.mu.Lock()
		if n.set.Load() {
			c.wakes++
		}
		if err != nil && level > c.value {
			c.wl.mu.Unlock()
			return err
		}
	}
	c.wl.mu.Unlock()
	return nil
}

// Reset implements Interface. Stats are cumulative and survive the
// reset.
func (c *BroadcastCounter) Reset() {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	if c.wl.busyLocked() || c.round != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value = 0
}

// Value implements Interface. For inspection and testing only.
func (c *BroadcastCounter) Value() uint64 {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	return c.value
}

// Wakes reports the cumulative number of waiter wake-ups; with W waiters
// and I increments this grows as O(W*I), the cost the per-level designs
// avoid.
func (c *BroadcastCounter) Wakes() uint64 {
	c.wl.mu.Lock()
	defer c.wl.mu.Unlock()
	return c.wakes
}

// Stats implements StatsProvider with the engine's collector. For this
// baseline PeakLevels is the peak number of live round nodes (at most
// 1) and SatisfiedLevels counts satisfied wake rounds; see Increment.
func (c *BroadcastCounter) Stats() Stats { return c.wl.readStats() }

// SetProbe implements ProbeSetter. EventSuspend fires per park, so a
// probe sees the herd re-park after every under-level wake.
func (c *BroadcastCounter) SetProbe(f func(Event)) { c.wl.SetProbe(f) }

var _ Interface = (*BroadcastCounter)(nil)
var _ levelIndex = (*BroadcastCounter)(nil)
var _ StatsProvider = (*BroadcastCounter)(nil)
var _ ProbeSetter = (*BroadcastCounter)(nil)
