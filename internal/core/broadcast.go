package core

import (
	"context"
	"sync/atomic"
)

// BroadcastCounter is the naive baseline the paper's cost analysis argues
// against: every increment wakes every waiter, and every waiter re-checks
// its own level after every wake. Wake cost is proportional to the total
// number of waiting goroutines (the thundering herd), not to the number of
// satisfied levels. It exists as the comparison point for the E10/E11 cost
// experiments.
//
// On the shared waitlist engine the herd is expressed as a degenerate
// index: a single "round" node that every waiter joins regardless of
// level, satisfied by every increment. A waiter whose level is still
// unsatisfied after a wake joins the next round node and sleeps again.
// The broadcast itself happens out of lock like every other wake, but
// that does not rescue the design: every waiter still wakes and relocks
// the engine mutex to re-check its level, which is the O(waiters) cost
// the per-level designs avoid.
//
// Even the naive baseline gets the watermark fast path shared by every
// impl — an already-satisfied Check is one atomic load, no mutex — so
// E25's zero-lock assertion holds uniformly and the ablation isolates
// the wake policy, not the read path.
//
// The zero value is a valid counter with value zero.
type BroadcastCounter struct {
	wl    waitlist
	value atomic.Uint64 // mutated only under wl.mu; read lock-free as the watermark
	round *waitNode     // node all current waiters sleep on; nil when none joined since the last increment
	wakes uint64        // cumulative waiter wake-ups (each re-check after a broadcast)
	// fastChecks counts satisfied lock-free checks; folded into
	// Stats.ImmediateChecks alongside the engine's locked tally.
	fastChecks stripedUint64
}

// NewBroadcast returns a BroadcastCounter with value zero.
func NewBroadcast() *BroadcastCounter { return new(BroadcastCounter) }

// BroadcastCounter's levelIndex ignores the level entirely: every
// acquire lands on the shared round node — that is the ablation.

func (c *BroadcastCounter) acquire(w *waitlist, level uint64) (*waitNode, bool) {
	if c.round == nil {
		c.round = newWaitNode(level)
		return c.round, true
	}
	return c.round, false
}

func (c *BroadcastCounter) drop(n *waitNode) {
	if c.round == n {
		c.round = nil
	}
}

// Increment implements Interface. Every increment broadcasts to every
// waiter, satisfied level or not: in Stats terms each increment with
// waiters satisfies the one round node, so SatisfiedLevels counts wake
// rounds rather than distinct levels — that flattening is the ablation.
// Increment(0) is a no-op and returns before touching the lock.
func (c *BroadcastCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	c.wl.lock()
	// Publish the watermark before any wake so a fast-path reader that
	// raced past the mutex observes the new value no later than woken
	// waiters do.
	c.value.Store(checkedAdd(c.value.Load(), amount))
	c.wl.stats.increments++
	n := c.round
	if n != nil {
		c.round = nil
		c.wl.satisfyLocked(n)
	}
	c.wl.unlock()
	c.wl.emit(EventIncrement, amount)
	if n != nil {
		c.wl.wakeBatch(n)
	}
}

// Check implements Interface. A waiter woken below its level re-joins
// the next round, so Suspends counts every park — the thundering-herd
// cost made visible in the unified schema.
func (c *BroadcastCounter) Check(level uint64) {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return
	}
	c.wl.lock()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.unlock()
		return
	}
	for level > c.value.Load() {
		n := c.wl.join(c, level)
		c.wl.unlock()
		c.wl.wait(n)
		c.wl.drain(c, n)
		c.wl.lock()
		c.wakes++
	}
	c.wl.unlock()
}

// CheckContext implements Interface. The value is consulted before the
// context, so an already-satisfied level wins over an already-cancelled
// context; cancellation is observed by selecting on the round node's
// ready channel — no watcher goroutine.
func (c *BroadcastCounter) CheckContext(ctx context.Context, level uint64) error {
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	// Satisfied beats cancelled: the watermark is consulted first, and
	// the satisfied case takes no mutex.
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return nil
	}
	c.wl.lock()
	if level <= c.value.Load() {
		c.wl.stats.immediateChecks++
		c.wl.unlock()
		return nil
	}
	for level > c.value.Load() {
		if err := ctx.Err(); err != nil {
			c.wl.unlock()
			return err
		}
		n := c.wl.join(c, level)
		c.wl.unlock()
		err := c.wl.waitCtx(ctx, n)
		c.wl.drain(c, n)
		c.wl.lock()
		if n.set.Load() {
			c.wakes++
		}
		if err != nil && level > c.value.Load() {
			c.wl.unlock()
			return err
		}
	}
	c.wl.unlock()
	return nil
}

// Reset implements Interface. Stats are cumulative and survive the
// reset.
func (c *BroadcastCounter) Reset() {
	c.wl.lock()
	defer c.wl.unlock()
	if c.wl.busyLocked() || c.round != nil {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. Lock-free: the watermark is the value.
func (c *BroadcastCounter) Value() uint64 {
	return c.value.Load()
}

// Wakes reports the cumulative number of waiter wake-ups; with W waiters
// and I increments this grows as O(W*I), the cost the per-level designs
// avoid.
func (c *BroadcastCounter) Wakes() uint64 {
	c.wl.lock()
	defer c.wl.unlock()
	return c.wakes
}

// Stats implements StatsProvider with the engine's collector plus the
// lock-free fast-path checks. For this baseline PeakLevels is the peak
// number of live round nodes (at most 1) and SatisfiedLevels counts
// satisfied wake rounds; see Increment.
func (c *BroadcastCounter) Stats() Stats {
	s := c.wl.readStats()
	s.ImmediateChecks += c.fastChecks.Load()
	return s
}

// LockAcquires implements LockCounter.
func (c *BroadcastCounter) LockAcquires() uint64 {
	return c.wl.lockAcquires.Load()
}

// SetProbe implements ProbeSetter. EventSuspend fires per park, so a
// probe sees the herd re-park after every under-level wake.
func (c *BroadcastCounter) SetProbe(f func(Event)) { c.wl.SetProbe(f) }

var _ Interface = (*BroadcastCounter)(nil)
var _ levelIndex = (*BroadcastCounter)(nil)
var _ StatsProvider = (*BroadcastCounter)(nil)
var _ ProbeSetter = (*BroadcastCounter)(nil)
var _ LockCounter = (*BroadcastCounter)(nil)
