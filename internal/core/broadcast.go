package core

import (
	"context"
	"sync"
)

// BroadcastCounter is the naive baseline the paper's cost analysis argues
// against: one condition variable for the whole counter, a full broadcast
// on every increment, and every waiter re-checking its own level after
// every wake. Wake cost is proportional to the total number of waiting
// goroutines (the thundering herd), not to the number of satisfied levels.
// It exists as the comparison point for the E10/E11 cost experiments.
//
// The zero value is a valid counter with value zero.
type BroadcastCounter struct {
	mu      sync.Mutex
	cond    sync.Cond
	once    sync.Once
	value   uint64
	waiters int
	wakes   uint64 // cumulative waiter wake-ups (each re-check after a broadcast)
}

// NewBroadcast returns a BroadcastCounter with value zero.
func NewBroadcast() *BroadcastCounter { return new(BroadcastCounter) }

func (c *BroadcastCounter) init() {
	c.once.Do(func() { c.cond.L = &c.mu })
}

// Increment implements Interface.
func (c *BroadcastCounter) Increment(amount uint64) {
	c.init()
	c.mu.Lock()
	c.value = checkedAdd(c.value, amount)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Check implements Interface.
func (c *BroadcastCounter) Check(level uint64) {
	c.init()
	c.mu.Lock()
	if level > c.value {
		c.waiters++
		for level > c.value {
			c.cond.Wait()
			c.wakes++
		}
		c.waiters--
	}
	c.mu.Unlock()
}

// CheckContext implements Interface.
func (c *BroadcastCounter) CheckContext(ctx context.Context, level uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := ctx.Done()
	if done == nil {
		c.Check(level)
		return nil
	}
	c.init()
	c.mu.Lock()
	defer c.mu.Unlock()
	if level <= c.value {
		return nil
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-done:
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		case <-stop:
		}
	}()
	c.waiters++
	for level > c.value && ctx.Err() == nil {
		c.cond.Wait()
		c.wakes++
	}
	c.waiters--
	close(stop)
	if level > c.value {
		return ctx.Err()
	}
	return nil
}

// Reset implements Interface.
func (c *BroadcastCounter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.waiters != 0 {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value = 0
}

// Value implements Interface. For inspection and testing only.
func (c *BroadcastCounter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value
}

// Wakes reports the cumulative number of waiter wake-ups; with W waiters
// and I increments this grows as O(W*I), the cost the per-level designs
// avoid.
func (c *BroadcastCounter) Wakes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wakes
}

var _ Interface = (*BroadcastCounter)(nil)
