package core

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// This file is the engine-level observability layer: one Stats schema
// reported by every implementation in the registry, a StatsProvider
// interface that tests, the counter facade, and production exporters
// (expvar) consume, and a zero-cost-when-disabled probe hook for
// event-level instrumentation. The collector itself lives on the shared
// waitlist engine (waitlist.go), so the condition-variable designs share
// one implementation; ChanCounter, which has no engine, keeps equivalent
// tallies under its own mutex and reports them through the same schema.

// Stats are cumulative cost-model measurements for one counter — the
// section 7 claims ("storage and time proportional to distinct waited-on
// levels, not waiters") made observable, in one schema for every
// registered implementation. Counters only ever grow; Reset does NOT clear them
// (a reused counter keeps its lifetime totals, so long-running
// deployments can export them as monotone metrics).
//
// Snapshot consistency invariant: in any Stats value returned by a
// StatsProvider, Broadcasts <= SatisfiedLevels and ChannelCloses <=
// SatisfiedLevels. The wake-side tallies are bumped by the incrementer
// after it releases the engine mutex, so they lag the satisfied-level
// count during a wake storm and catch up once the batch finishes; a
// snapshot can never observe a wake whose satisfy it has not observed.
type Stats struct {
	// PeakLevels is the maximum number of distinct not-yet-satisfied
	// levels ever waited on at once. Satisfied nodes still draining
	// their waiters are not counted: they no longer represent a
	// waited-on level. For BroadcastCounter — whose single round node
	// deliberately ignores levels — this is the peak number of live
	// round nodes (at most 1): that flattening is the ablation.
	PeakLevels int
	// SatisfiedLevels counts levels satisfied by increments — the
	// paper's "one wake-up per satisfied level" cost unit. For
	// BroadcastCounter it counts satisfied wake rounds (every increment
	// with waiters satisfies the one round node, whatever its levels).
	SatisfiedLevels uint64
	// Broadcasts counts condition-variable broadcasts actually issued
	// by the wake path: a satisfied level whose waiters all sleep on
	// ready channels (CheckContext) needs no broadcast, so Broadcasts
	// can be less than SatisfiedLevels.
	Broadcasts uint64
	// ChannelCloses counts ready-channel closes issued by the wake
	// path — the CheckContext counterpart of Broadcasts. A level with
	// both kinds of sleeper costs one of each. For ChanCounter every
	// satisfied level is exactly one channel close.
	ChannelCloses uint64
	// Suspends counts Check/CheckContext calls that registered as a
	// waiter (actually blocked). BroadcastCounter waiters woken below
	// their level re-register, so its Suspends counts every park.
	Suspends uint64
	// ImmediateChecks counts Check/CheckContext calls satisfied without
	// blocking, whether on a locked re-check or a lock-free fast path.
	ImmediateChecks uint64
	// Increments counts value-changing Increment calls. Increment(0) is
	// a documented no-op and is not counted: the fast-path
	// implementations return before touching any shared state.
	Increments uint64
	// SpinRounds counts yield-spin probes made before suspending
	// (SpinCounter only; zero elsewhere).
	SpinRounds uint64
	// FastPathIncrements counts increments that never queued on the
	// engine mutex: absorbed by the lock-free striped fast path
	// (ShardedCounter) or folded from flat-combining slots by a lock
	// holder (FCCounter). Zero elsewhere; always included in Increments.
	FastPathIncrements uint64
	// Flushes counts fold passes bringing out-of-lock increments into
	// the published value: residue flushes (ShardedCounter) or
	// combining drains that folded at least one delta (FCCounter).
	Flushes uint64
}

// StatsProvider is implemented by every implementation in the registry.
// The conformance suite (stats_test.go) holds each of them to the same
// schema semantics.
type StatsProvider interface {
	Stats() Stats
}

// EventKind discriminates probe events.
type EventKind uint8

const (
	// EventIncrement fires once per value-changing Increment call, after
	// the counter's locks are released; Event.Level carries the amount.
	EventIncrement EventKind = iota
	// EventSuspend fires when a waiter is about to park; Event.Level is
	// the level waited on.
	EventSuspend
	// EventWake fires once per satisfied level as its waiters are woken
	// (the paper's cost unit, observed live); Event.Level is the level.
	EventWake
)

// String returns the kind's name for logs and traces.
func (k EventKind) String() string {
	switch k {
	case EventIncrement:
		return "increment"
	case EventSuspend:
		return "suspend"
	case EventWake:
		return "wake"
	}
	return "unknown"
}

// Event is one probe observation.
type Event struct {
	Kind  EventKind
	Level uint64
}

// ProbeSetter is implemented by the engine-based implementations (all of
// the registry except ChanCounter, which has no engine): SetProbe(nil)
// disables the hook. The probe is a nil-checked function pointer — when
// disabled, the only cost on any path is one atomic pointer load — and
// it is never invoked with the engine mutex (or any per-level wake lock)
// held, so a probe may itself inspect the counter.
type ProbeSetter interface {
	SetProbe(func(Event))
}

// lockCounting gates the mutex-acquisition probe: while enabled, every
// engine-mutex and stripe-mutex acquisition made through the lock
// helpers is counted into the owning structure's tally. Disabled (the
// default) the probe is one atomic load of a never-written word next to
// a mutex operation — unmeasurable against the lock itself.
var lockCounting atomic.Bool

// SetLockCounting enables or disables mutex-acquisition counting
// process-wide. It exists for the E25 experiment and tests that assert
// lock-freedom of the satisfied fast path; production code has no
// reason to enable it.
func SetLockCounting(on bool) { lockCounting.Store(on) }

// LockCounter is implemented by every registry implementation: it
// reports the number of counter-mutex acquisitions (engine mutex plus
// any stripe mutexes — ChanCounter counts its one mutex) recorded while
// SetLockCounting was enabled. E25 asserts the delta across a batch of
// already-satisfied checks is zero for every implementation.
type LockCounter interface {
	LockAcquires() uint64
}

// stripeCount returns the number of cells a striped structure should
// allocate: GOMAXPROCS at the moment of the call, rounded up to a power
// of two. Callers must capture the result ONCE per structure — at
// construction or first use — and size/index off that capture forever:
// GOMAXPROCS can be raised or lowered mid-run, and two arrays belonging
// to one counter that sized themselves at different moments would
// disagree about the stripe space (the bug behind the
// TestStripeCountCapturedOnce regression test). Indexing stays in range
// regardless because stripeIndex masks by the actual array length.
func stripeCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return size
}

// stripeIndex picks a stripe from the address of a stack variable:
// stacks are per-goroutine, so concurrent callers spread across cells.
// The mapping is only statistical — Go moves goroutine stacks when they
// grow, so a goroutine's stripe can change over its lifetime — which is
// fine for contention spreading but must never be relied on for
// correctness (see ShardedCounter's overflow notes). mask is a
// power-of-two length minus one.
func stripeIndex(mask uint64) uint64 {
	var marker byte
	h := uint64(uintptr(unsafe.Pointer(&marker)))
	h ^= h >> 33
	h *= 0x9e3779b97f4a7c15
	return (h >> 24) & mask
}

// stripedUint64 is a contention-spread counter for lock-free fast paths:
// Add lands on one of stripeCount cache-padded cells chosen by
// stripeIndex, so concurrent fast-path callers do not serialize on one
// cache line; Load sums the cells (a momentary snapshot, like any
// concurrent counter read). The zero value is ready to use; cells are
// allocated on first Add, or — for counters that own other striped
// arrays — by ensure, so every array of one counter captures the same
// stripe count at the same moment.
type stripedUint64 struct {
	cells atomic.Pointer[[]paddedUint64]
}

// ensure allocates the cell array with the given size if none exists
// yet, letting the owning counter size all its striped structures from
// one stripeCount capture. Concurrency-safe; the first allocation wins.
func (s *stripedUint64) ensure(size int) {
	if s.cells.Load() != nil {
		return
	}
	fresh := make([]paddedUint64, size)
	s.cells.CompareAndSwap(nil, &fresh)
}

type paddedUint64 struct {
	v atomic.Uint64
	_ [120]byte // two cache lines, clear of the adjacent-line prefetcher
}

func (s *stripedUint64) Add(n uint64) {
	p := s.cells.Load()
	if p == nil {
		p = s.initCells()
	}
	(*p)[stripeIndex(uint64(len(*p)-1))].v.Add(n)
}

// initCells allocates the cell array once; racing initializers agree on
// the winner via CompareAndSwap, so no counts are ever lost. The stripe
// count is captured exactly once — whatever GOMAXPROCS says later, the
// array and the masks derived from its length never change.
func (s *stripedUint64) initCells() *[]paddedUint64 {
	s.ensure(stripeCount())
	return s.cells.Load()
}

func (s *stripedUint64) Load() uint64 {
	p := s.cells.Load()
	if p == nil {
		return 0
	}
	var sum uint64
	for i := range *p {
		sum += (*p)[i].v.Load()
	}
	return sum
}
