package core

import (
	"context"
	"sync"
)

// ChanCounter is the idiomatic-Go translation of the monotonic counter:
// each distinct waited-on level owns a channel, Check blocks receiving from
// it, and Increment broadcasts by closing the channels of the levels it
// satisfies. Closing a channel releases every receiver at once, so — like
// the reference design — wake cost is proportional to the number of
// distinct satisfied levels, not to the number of waiting goroutines.
// Context cancellation falls out naturally from select, with no watcher
// goroutine.
//
// The zero value is a valid counter with value zero.
type ChanCounter struct {
	mu     sync.Mutex
	value  uint64
	levels map[uint64]chan struct{} // level -> close-on-satisfy channel
}

// NewChan returns a ChanCounter with value zero.
func NewChan() *ChanCounter { return new(ChanCounter) }

// Increment implements Interface.
func (c *ChanCounter) Increment(amount uint64) {
	c.mu.Lock()
	old := c.value
	c.value = checkedAdd(c.value, amount)
	if c.levels != nil {
		for level, ch := range c.levels {
			if level > old && level <= c.value {
				close(ch)
				delete(c.levels, level)
			}
		}
	}
	c.mu.Unlock()
}

// Check implements Interface.
func (c *ChanCounter) Check(level uint64) {
	if ch := c.gate(level); ch != nil {
		<-ch
	}
}

// CheckContext implements Interface.
func (c *ChanCounter) CheckContext(ctx context.Context, level uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ch := c.gate(level)
	if ch == nil {
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// gate returns the channel to wait on for level, or nil if the level is
// already satisfied. Note that abandoned levels (all waiters cancelled)
// keep their map entry until satisfied; entries are O(distinct levels) and
// are reclaimed by the increment that passes them, which keeps gate
// allocation-free on the satisfied path.
func (c *ChanCounter) gate(level uint64) chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if level <= c.value {
		return nil
	}
	if c.levels == nil {
		c.levels = make(map[uint64]chan struct{})
	}
	ch, ok := c.levels[level]
	if !ok {
		ch = make(chan struct{})
		c.levels[level] = ch
	}
	return ch
}

// Reset implements Interface. Because waiters hold no registration beyond
// the level channel, Reset panics if any level channel is still live.
func (c *ChanCounter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.levels) != 0 {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value = 0
}

// Value implements Interface. For inspection and testing only.
func (c *ChanCounter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value
}

// LiveLevels reports the number of distinct levels currently waited on
// (including abandoned ones not yet passed). For tests of the cost model.
func (c *ChanCounter) LiveLevels() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.levels)
}

var _ Interface = (*ChanCounter)(nil)
