package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// ChanCounter is the idiomatic-Go translation of the monotonic counter:
// each distinct waited-on level owns a channel, Check blocks receiving from
// it, and Increment broadcasts by closing the channels of the levels it
// satisfies. Closing a channel releases every receiver at once, so — like
// the reference design — wake cost is proportional to the number of
// distinct satisfied levels, not to the number of waiting goroutines.
// Context cancellation falls out naturally from select, with no watcher
// goroutine.
//
// Each gate carries a waiter refcount so the last cancelled waiter on a
// never-satisfied level reclaims the level's map entry: abandoned levels
// do not leak.
//
// ChanCounter has no waitlist engine, so it keeps the unified Stats
// tallies natively under its own mutex — every counted event already
// happens there. Each satisfied level is exactly one channel close, so
// its snapshots always report ChannelCloses == SatisfiedLevels and
// Broadcasts == 0. It is the one registry implementation without a
// probe hook (no engine to hang it on); it is stats-only.
//
// Like every registry implementation, ChanCounter publishes its value as
// an atomic watermark (stored under mu, before any gate close) so an
// already-satisfied Check/CheckContext is one atomic load with no mutex.
//
// The zero value is a valid counter with value zero.
type ChanCounter struct {
	mu     sync.Mutex
	value  atomic.Uint64    // mutated only under mu; read lock-free as the watermark
	levels map[uint64]*gate // level -> close-on-satisfy gate
	sweeps uint64           // gate-map scans by Increment, for regression tests
	stats  chanStats
	// fastChecks counts satisfied lock-free checks; folded into
	// Stats.ImmediateChecks alongside the locked tally.
	fastChecks stripedUint64
	// lockAcquires counts mu acquisitions while SetLockCounting is
	// enabled (the E25 probe — ChanCounter's one mutex plays the role of
	// the engine mutex).
	lockAcquires atomic.Uint64
}

// lock takes the counter mutex through the counting probe.
func (c *ChanCounter) lock() {
	c.mu.Lock()
	if lockCounting.Load() {
		c.lockAcquires.Add(1)
	}
}

// chanStats mirrors the engine collector's mutex-guarded half for the
// engineless implementation; all fields are guarded by ChanCounter.mu.
type chanStats struct {
	peakLevels      int
	satisfiedLevels uint64 // == channel closes: one close per satisfied level
	suspends        uint64
	immediateChecks uint64
	increments      uint64
}

// gate is one level's close-on-satisfy channel plus the number of
// goroutines currently parked on it.
type gate struct {
	ch   chan struct{}
	refs int
}

// NewChan returns a ChanCounter with value zero.
func NewChan() *ChanCounter { return new(ChanCounter) }

// Increment implements Interface. Increment(0) leaves the value — and
// therefore every gate — untouched, so it returns without even taking
// the lock; a real increment scans the gate map only when it is
// non-empty, since no gate can be satisfied when none exists.
func (c *ChanCounter) Increment(amount uint64) {
	if amount == 0 {
		return
	}
	c.lock()
	old := c.value.Load()
	v := checkedAdd(old, amount)
	// Publish the watermark before closing any gate so a fast-path
	// reader that raced past the mutex observes the new value no later
	// than woken waiters do.
	c.value.Store(v)
	c.stats.increments++
	if len(c.levels) != 0 {
		c.sweeps++
		for level, g := range c.levels {
			if level > old && level <= v {
				close(g.ch)
				delete(c.levels, level)
				c.stats.satisfiedLevels++
			}
		}
	}
	c.mu.Unlock()
}

// Check implements Interface. The satisfied case is one atomic
// watermark load — no mutex.
func (c *ChanCounter) Check(level uint64) {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return
	}
	g := c.acquire(level)
	if g == nil {
		return
	}
	<-g.ch
	c.release(level, g)
}

// CheckContext implements Interface. The gate is consulted before the
// context, so an already-satisfied level wins over an already-cancelled
// context — including the race where satisfaction and cancellation
// arrive together.
func (c *ChanCounter) CheckContext(ctx context.Context, level uint64) error {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return nil
	}
	if err := ctx.Err(); err != nil {
		// No waiter will park, so don't build a gate; the value is
		// still consulted first — satisfied beats cancelled.
		if c.satisfied(level) {
			return nil
		}
		return err
	}
	g := c.acquire(level)
	if g == nil {
		return nil
	}
	defer c.release(level, g)
	select {
	case <-g.ch:
		return nil
	case <-ctx.Done():
		select {
		case <-g.ch:
			return nil // satisfied concurrently with cancellation: satisfied wins
		default:
			return ctx.Err()
		}
	}
}

func (c *ChanCounter) satisfied(level uint64) bool {
	if level <= c.value.Load() {
		c.fastChecks.Add(1)
		return true
	}
	return false
}

// acquire returns the gate to wait on for level with the caller counted
// as a waiter, or nil if the level is already satisfied. Every acquire
// must be paired with a release.
func (c *ChanCounter) acquire(level uint64) *gate {
	c.lock()
	defer c.mu.Unlock()
	if level <= c.value.Load() {
		c.stats.immediateChecks++
		return nil
	}
	if c.levels == nil {
		c.levels = make(map[uint64]*gate)
	}
	g, ok := c.levels[level]
	if !ok {
		g = &gate{ch: make(chan struct{})}
		c.levels[level] = g
		if len(c.levels) > c.stats.peakLevels {
			c.stats.peakLevels = len(c.levels)
		}
	}
	g.refs++
	c.stats.suspends++
	return g
}

// acquireSentinel is acquire for sentinel registration: identical gate
// bookkeeping, but neither a suspend nor an immediate check in the cost
// model — no goroutine blocks on a sentinel and no Check was issued.
// Every non-nil return must be paired with a release.
func (c *ChanCounter) acquireSentinel(level uint64) *gate {
	if level <= c.value.Load() {
		return nil
	}
	c.lock()
	defer c.mu.Unlock()
	if level <= c.value.Load() {
		return nil
	}
	if c.levels == nil {
		c.levels = make(map[uint64]*gate)
	}
	g, ok := c.levels[level]
	if !ok {
		g = &gate{ch: make(chan struct{})}
		c.levels[level] = g
		if len(c.levels) > c.stats.peakLevels {
			c.stats.peakLevels = len(c.levels)
		}
	}
	g.refs++
	return g
}

// release drops the caller's claim on g. The last waiter to leave a gate
// that was never satisfied (its map entry still points at g) reclaims the
// entry, so a level abandoned by cancellation costs nothing once its
// waiters are gone. Satisfied gates were already removed by Increment.
func (c *ChanCounter) release(level uint64, g *gate) {
	c.mu.Lock()
	g.refs--
	if g.refs == 0 && c.levels[level] == g {
		delete(c.levels, level)
	}
	c.mu.Unlock()
}

// Reset implements Interface. A live gate means goroutines are still
// parked on the counter, which the paper forbids during Reset. Stats
// are cumulative and survive the reset.
func (c *ChanCounter) Reset() {
	c.lock()
	defer c.mu.Unlock()
	if len(c.levels) != 0 {
		panic("core: Reset called with goroutines waiting on the counter")
	}
	c.value.Store(0)
}

// Value implements Interface. Lock-free: the watermark is the value.
func (c *ChanCounter) Value() uint64 {
	return c.value.Load()
}

// LiveLevels reports the number of distinct levels currently waited on.
// Cancelled-and-abandoned levels are reclaimed by their last departing
// waiter, so this returns to zero once no goroutine is waiting. For
// tests of the cost model.
func (c *ChanCounter) LiveLevels() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.levels)
}

// Stats implements StatsProvider in the unified schema: one channel
// close per satisfied level, never a broadcast.
func (c *ChanCounter) Stats() Stats {
	c.lock()
	s := Stats{
		PeakLevels:      c.stats.peakLevels,
		SatisfiedLevels: c.stats.satisfiedLevels,
		ChannelCloses:   c.stats.satisfiedLevels,
		Suspends:        c.stats.suspends,
		ImmediateChecks: c.stats.immediateChecks,
		Increments:      c.stats.increments,
	}
	c.mu.Unlock()
	s.ImmediateChecks += c.fastChecks.Load()
	return s
}

// LockAcquires implements LockCounter: mutex acquisitions recorded while
// SetLockCounting was enabled.
func (c *ChanCounter) LockAcquires() uint64 {
	return c.lockAcquires.Load()
}

var _ Interface = (*ChanCounter)(nil)
var _ StatsProvider = (*ChanCounter)(nil)
var _ LockCounter = (*ChanCounter)(nil)
