package core

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestFigure2Trace reproduces the paper's Figure 2 exactly: the structure
// of counter c after (a) construction, (b) Check(5) by T1, (c) Check(9) by
// T2, (d) Check(5) by T3, (e) Increment(7) by T0, (f) T1 resuming, and
// (g) T3 resuming. This is experiment E2.
func TestFigure2Trace(t *testing.T) {
	s := NewSim()
	steps := []struct {
		name string
		op   func()
		want Snapshot
	}{
		{
			name: "(a) construction",
			op:   func() {},
			want: Snapshot{Value: 0},
		},
		{
			name: "(b) Check(5) by T1",
			op: func() {
				if !s.Check(5) {
					t.Fatal("T1 Check(5) did not suspend")
				}
			},
			want: Snapshot{Value: 0, Nodes: []NodeSnapshot{
				{Level: 5, Count: 1, Set: false},
			}},
		},
		{
			name: "(c) Check(9) by T2",
			op: func() {
				if !s.Check(9) {
					t.Fatal("T2 Check(9) did not suspend")
				}
			},
			want: Snapshot{Value: 0, Nodes: []NodeSnapshot{
				{Level: 5, Count: 1, Set: false},
				{Level: 9, Count: 1, Set: false},
			}},
		},
		{
			name: "(d) Check(5) by T3",
			op: func() {
				if !s.Check(5) {
					t.Fatal("T3 Check(5) did not suspend")
				}
			},
			want: Snapshot{Value: 0, Nodes: []NodeSnapshot{
				{Level: 5, Count: 2, Set: false},
				{Level: 9, Count: 1, Set: false},
			}},
		},
		{
			name: "(e) Increment(7) by T0",
			op:   func() { s.Increment(7) },
			want: Snapshot{Value: 7, Nodes: []NodeSnapshot{
				{Level: 5, Count: 2, Set: true},
				{Level: 9, Count: 1, Set: false},
			}},
		},
		{
			name: "(f) T1 resumes execution",
			op: func() {
				if !s.Resume(5) {
					t.Fatal("no resumable thread at level 5")
				}
			},
			want: Snapshot{Value: 7, Nodes: []NodeSnapshot{
				{Level: 5, Count: 1, Set: true},
				{Level: 9, Count: 1, Set: false},
			}},
		},
		{
			name: "(g) T3 resumes execution",
			op: func() {
				if !s.Resume(5) {
					t.Fatal("no resumable thread at level 5")
				}
			},
			want: Snapshot{Value: 7, Nodes: []NodeSnapshot{
				{Level: 9, Count: 1, Set: false},
			}},
		},
	}
	for _, step := range steps {
		step.op()
		got := s.Snapshot()
		if !reflect.DeepEqual(got, step.want) {
			t.Fatalf("%s:\n got  %v\n want %v", step.name, got, step.want)
		}
	}
}

// TestFigure2Concurrent replays the Figure 2 scenario with real goroutines
// and asserts the deterministic waypoints: the structure before the
// increment (state (d)), and the stable structure after both level-5
// waiters have drained (state (g)).
func TestFigure2Concurrent(t *testing.T) {
	c := New()
	var wgLow sync.WaitGroup
	suspended := func(want Snapshot) bool {
		return reflect.DeepEqual(c.Inspect(), want)
	}
	waitFor := func(desc string, want Snapshot) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for !suspended(want) {
			select {
			case <-deadline:
				t.Fatalf("%s: got %v, want %v", desc, c.Inspect(), want)
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}

	wgLow.Add(2)
	go func() { defer wgLow.Done(); c.Check(5) }() // T1
	go func() { c.Check(9) }()                     // T2 (released at the end)
	go func() { defer wgLow.Done(); c.Check(5) }() // T3

	waitFor("state (d)", Snapshot{Value: 0, Nodes: []NodeSnapshot{
		{Level: 5, Count: 2, Set: false},
		{Level: 9, Count: 1, Set: false},
	}})

	c.Increment(7) // state (e); T1 and T3 drain concurrently
	wgLow.Wait()
	waitFor("state (g)", Snapshot{Value: 7, Nodes: []NodeSnapshot{
		{Level: 9, Count: 1, Set: false},
	}})

	c.Increment(2) // release T2 and leave the counter clean
	waitFor("final", Snapshot{Value: 9})
}

// TestSimMatchesCounterStats checks the simulator exercises the same
// bookkeeping paths as the concurrent counter.
func TestSimMatchesCounterStats(t *testing.T) {
	s := NewSim()
	s.Check(5)
	s.Check(9)
	s.Check(5)
	s.Increment(7)
	s.Resume(5)
	s.Resume(5)
	st := s.c.Stats()
	if st.Suspends != 3 {
		t.Errorf("Suspends = %d, want 3", st.Suspends)
	}
	if st.Broadcasts != 1 {
		t.Errorf("Broadcasts = %d, want 1 (one satisfied level)", st.Broadcasts)
	}
	if st.Increments != 1 {
		t.Errorf("Increments = %d, want 1", st.Increments)
	}
	if st.PeakLevels != 2 {
		t.Errorf("PeakLevels = %d, want 2", st.PeakLevels)
	}
	if s.Resume(5) {
		t.Error("Resume(5) succeeded on an empty level")
	}
	if s.Check(7) {
		t.Error("Check(7) suspended with value 7")
	}
}
