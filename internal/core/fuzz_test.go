package core

import (
	"testing"
)

// FuzzOpsAgainstModel interprets fuzz input as a single-threaded script
// of counter operations and cross-checks every implementation against a
// plain uint64 model. Byte pairs decode as (op, operand): op%4 == 0..1
// increments by operand, 2 checks a level clamped to the current value
// (so it must not block), 3 resets. Run with `go test -fuzz=FuzzOps` for
// coverage-guided exploration; the seed corpus runs in normal tests.
func FuzzOpsAgainstModel(f *testing.F) {
	f.Add([]byte{0, 5, 2, 3, 0, 10, 2, 200, 3, 0})
	f.Add([]byte{})
	f.Add([]byte{3, 0, 3, 0, 0, 255, 2, 255})
	f.Fuzz(func(t *testing.T, script []byte) {
		impls := Registry()
		counters := make([]Interface, len(impls))
		for i, impl := range impls {
			counters[i] = NewImpl(impl)
		}
		var model uint64
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i]%4, uint64(script[i+1])
			switch op {
			case 0, 1:
				model += arg
				for _, c := range counters {
					c.Increment(arg)
				}
			case 2:
				level := arg
				if level > model {
					level = model // keep the script non-blocking
				}
				for _, c := range counters {
					c.Check(level)
				}
			case 3:
				model = 0
				for _, c := range counters {
					c.Reset()
				}
			}
			for j, c := range counters {
				if got := c.Value(); got != model {
					t.Fatalf("impl %s diverged: value %d, model %d (step %d)",
						impls[j], got, model, i/2)
				}
			}
		}
	})
}

// FuzzSimStructure interprets fuzz input as a script against the
// simulator and checks structural invariants after every step: the
// waiting list is strictly ascending, unsatisfied nodes lie strictly
// above the value, counts are positive, and total waiters equal
// suspends minus resumes.
func FuzzSimStructure(f *testing.F) {
	f.Add([]byte{1, 5, 1, 9, 1, 5, 0, 7, 2, 5, 2, 5})
	f.Add([]byte{1, 1, 0, 1, 2, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		s := NewSim()
		waiting := 0
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i]%3, uint64(script[i+1])
			switch op {
			case 0:
				s.Increment(arg)
			case 1:
				if s.Check(arg) {
					waiting++
				}
			case 2:
				if s.Resume(arg) {
					waiting--
				}
			}
			snap := s.Snapshot()
			total := 0
			for j, n := range snap.Nodes {
				if n.Count <= 0 {
					t.Fatalf("node %d count %d", j, n.Count)
				}
				if j > 0 && snap.Nodes[j-1].Level >= n.Level {
					t.Fatalf("list not ascending: %v", snap)
				}
				if !n.Set && n.Level <= snap.Value {
					t.Fatalf("unsatisfied node at level %d <= value %d", n.Level, snap.Value)
				}
				if n.Set && n.Level > snap.Value {
					t.Fatalf("satisfied node at level %d > value %d", n.Level, snap.Value)
				}
				total += n.Count
			}
			if total != waiting {
				t.Fatalf("node counts total %d, tracked waiters %d", total, waiting)
			}
		}
	})
}
