package core

import (
	"sync/atomic"
)

// This file is the narrow sentinel-registration surface the predicate
// layer (internal/predicate) builds on. A sentinel is a one-shot
// callback parked on a level's waitNode exactly like a waiter: it holds
// one count on the node, so its storage cost is the paper's cost unit —
// one node per distinct watched level — and the wake path that already
// exists delivers it. No machinery is added to the hot paths: a counter
// with no sentinels armed executes byte-for-byte the same code as
// before, except for one nil check of the hooks chain inside wakeBatch,
// which runs only for already-satisfied nodes.
//
// The engine-mutex invariants from the waitlist header are unchanged:
//
//   - registration takes the engine mutex only for the join (node
//     creation/linking and value re-check), exactly like Check's slow
//     path, and attaches the hook under the node's wake lock only AFTER
//     the engine mutex is released — the two locks are never nested;
//   - hooks are invoked by wakeBatch after every lock is released, in
//     the same out-of-lock position as the broadcasts and channel
//     closes;
//   - cancellation drains through the same atomic-count drain as a
//     cancelled waiter, so an abandoned sentinel reclaims its level's
//     node with the existing cleanup path.

// Sentineler is implemented by every registry counter: Sentinel arms a
// one-shot hook that fires when the counter's wake path satisfies the
// node for level.
//
// Contract:
//
//   - armed == false means level was already satisfied at registration;
//     fn will never run and there is nothing to cancel (cancel is nil).
//   - When armed, fn runs exactly once, on the waking goroutine, after
//     all engine locks are released. fn must be fast and must not
//     block; anything slow must be handed to another goroutine.
//   - A fire is a re-evaluation kick, NOT a guarantee that the value
//     reached level: implementations with coarser wake granularity
//     (the broadcast ablation wakes its single round node on every
//     increment) fire sentinels spuriously early. Callers re-check and
//     re-arm.
//   - cancel disarms the hook: it reports true if fn had not fired and
//     never will, false if fn has already run or is about to. An armed
//     sentinel counts as a suspended waiter for Reset's misuse check,
//     so callers must cancel their sentinels before resetting.
type Sentineler interface {
	Sentinel(level uint64, fn func()) (cancel func() bool, armed bool)
}

// sentinelHook is one armed callback in a waitNode's hooks chain. All
// fields are guarded by the node's wake lock except fn, which is
// immutable after creation.
type sentinelHook struct {
	fn        func()
	fired     bool // set by wakeBatch while detaching the chain
	cancelled bool // set by cancel while unlinking the hook
	next      *sentinelHook
}

// joinSentinel registers a sentinel's count on the node for level,
// creating and indexing the node if none is live. Identical to join
// except it is not a suspend in the cost model (no goroutine blocks on
// a sentinel). Called with w.mu held; the caller must already have
// established level > value.
func (w *waitlist) joinSentinel(idx levelIndex, level uint64) *waitNode {
	n, created := idx.acquire(w, level)
	n.count.Add(1)
	if created {
		w.stats.liveLevels++
		if w.stats.liveLevels > w.stats.peakLevels {
			w.stats.peakLevels = w.stats.liveLevels
		}
	}
	return n
}

// satisfiedOnly is the levelIndex stand-in for drains that can only
// ever see a satisfied node; reaching drop on it is a bug.
type satisfiedOnly struct{}

func (satisfiedOnly) acquire(*waitlist, uint64) (*waitNode, bool) {
	panic("core: satisfiedOnly.acquire")
}
func (satisfiedOnly) drop(*waitNode) {
	panic("core: sentinel drain reached drop on a satisfied node")
}

// drainSatisfied drops one count from a node that is known to be
// satisfied (wakeBatch is draining the hooks it detached from it).
// Retirement of a satisfied node never touches the index — the node
// already left it for the draining record — so no index is needed.
func (w *waitlist) drainSatisfied(n *waitNode) {
	w.drain(satisfiedOnly{}, n)
}

// armSentinel attaches fn to n as a one-shot hook, with the engine
// mutex NOT held (the caller released it after joinSentinel). The
// node's set flag is re-checked under the wake lock: if the level was
// satisfied in the window between the join and the attach, wakeBatch
// has already detached whatever hooks it found, so the hook would never
// fire — armSentinel drains the count and reports not-armed instead,
// and the caller re-reads the value.
func (w *waitlist) armSentinel(idx levelIndex, n *waitNode, fn func()) (func() bool, bool) {
	h := &sentinelHook{fn: fn}
	n.mu.Lock()
	if n.set.Load() {
		n.mu.Unlock()
		w.drain(idx, n)
		return nil, false
	}
	h.next = n.hooks
	n.hooks = h
	n.mu.Unlock()
	cancel := func() bool {
		n.mu.Lock()
		if h.fired || h.cancelled {
			n.mu.Unlock()
			return false
		}
		h.cancelled = true
		for p := &n.hooks; *p != nil; p = &(*p).next {
			if *p == h {
				*p = h.next
				h.next = nil
				break
			}
		}
		n.mu.Unlock()
		w.drain(idx, n)
		return true
	}
	return cancel, true
}

// Sentinel implements Sentineler on the reference design: the join is
// exactly Check's slow-path registration, minus the suspend.
func (c *Counter) Sentinel(level uint64, fn func()) (func() bool, bool) {
	c.wl.lock()
	if level <= c.value.Load() {
		c.wl.unlock()
		return nil, false
	}
	n := c.wl.joinSentinel(&c.list, level)
	c.wl.unlock()
	return c.wl.armSentinel(&c.list, n, fn)
}

// Sentinel implements Sentineler. The registration is Check's striped
// slow path minus the suspend: the value is re-read under the stripe
// mutex (register), so a not-armed result is accurate at registration
// time, and the engine mutex is never touched.
func (c *AtomicCounter) Sentinel(level uint64, fn func()) (func() bool, bool) {
	if level <= c.value.Load() {
		return nil, false
	}
	n, done := c.idx.register(&c.wl, level, &c.value, false)
	if done {
		return nil, false
	}
	return c.wl.armSentinel(nil, n, fn)
}

// Sentinel implements Sentineler by delegating to the underlying atomic
// counter; a sentinel never spins (there is no caller to burn time on).
func (c *SpinCounter) Sentinel(level uint64, fn func()) (func() bool, bool) {
	return c.a.Sentinel(level, fn)
}

// Sentinel implements Sentineler on the heap index.
func (c *HeapCounter) Sentinel(level uint64, fn func()) (func() bool, bool) {
	c.wl.lock()
	if level <= c.value.Load() {
		c.wl.unlock()
		return nil, false
	}
	n := c.wl.joinSentinel(&c.index, level)
	c.wl.unlock()
	return c.wl.armSentinel(&c.index, n, fn)
}

// Sentinel implements Sentineler on the broadcast ablation. The hook
// lands on the shared round node, which every increment satisfies, so
// it fires on the FIRST increment after arming whether or not the value
// reached level — the spurious-fire case the Sentineler contract
// allows. The predicate layer re-checks and re-arms, which reproduces
// at the predicate tier exactly the thundering re-check this baseline
// exists to measure.
func (c *BroadcastCounter) Sentinel(level uint64, fn func()) (func() bool, bool) {
	c.wl.lock()
	if level <= c.value.Load() {
		c.wl.unlock()
		return nil, false
	}
	n := c.wl.joinSentinel(c, level)
	c.wl.unlock()
	return c.wl.armSentinel(c, n, fn)
}

// Sentinel implements Sentineler on the sharded design. An armed
// sentinel holds the waiter gate up — like a parked Check — so every
// increment takes the exact locked path and the sentinel cannot be
// missed by a fast-path CAS; the gate drops when the hook fires, is
// cancelled, or turns out not to be needed. The fire wrapper lowers the
// gate before kicking fn so a re-arm from fn observes gate state
// consistent with its own registration.
func (c *ShardedCounter) Sentinel(level uint64, fn func()) (func() bool, bool) {
	c.wl.lock()
	c.gate.Add(1)
	c.flushLocked()
	pub := c.published.Load()
	c.wl.unlock()
	if level <= pub {
		c.gate.Add(-1)
		return nil, false
	}
	n, done := c.idx.register(&c.wl, level, &c.published, false)
	if done {
		c.gate.Add(-1)
		return nil, false
	}
	cancel, armed := c.wl.armSentinel(nil, n, func() {
		c.gate.Add(-1)
		fn()
	})
	if !armed {
		c.gate.Add(-1)
		return nil, false
	}
	return func() bool {
		if cancel() {
			c.gate.Add(-1)
			return true
		}
		return false
	}, true
}

// Sentinel implements Sentineler on the flat-combining design. Like
// Check's slow path it opportunistically folds pending rival deltas
// first — they may already satisfy the level — then registers on the
// level's stripe; the stripe re-read keeps the not-armed result
// accurate at registration time.
func (c *FCCounter) Sentinel(level uint64, fn func()) (func() bool, bool) {
	if level <= c.value.Load() {
		return nil, false
	}
	c.foldPending()
	if level <= c.value.Load() {
		return nil, false
	}
	n, done := c.idx.register(&c.wl, level, &c.value, false)
	if done {
		return nil, false
	}
	return c.wl.armSentinel(nil, n, fn)
}

// Sentinel implements Sentineler on the engineless chan design: the
// hook parks a goroutine on the level's gate, the one implementation
// where a sentinel costs a goroutine rather than a list node — the same
// trade this ablation makes for waiters' cancellation machinery. The
// gate refcount keeps Reset's misuse check and abandoned-level
// reclamation working unchanged.
func (c *ChanCounter) Sentinel(level uint64, fn func()) (func() bool, bool) {
	g := c.acquireSentinel(level)
	if g == nil {
		return nil, false
	}
	done := make(chan struct{})
	var state atomic.Int32 // 0 armed, 1 fired, 2 cancelled
	go func() {
		select {
		case <-g.ch:
			if state.CompareAndSwap(0, 1) {
				c.release(level, g)
				fn()
				return
			}
			c.release(level, g)
		case <-done:
			c.release(level, g)
		}
	}()
	cancel := func() bool {
		if state.CompareAndSwap(0, 2) {
			close(done)
			return true
		}
		return false
	}
	return cancel, true
}

// The compile-time checks that every registry implementation provides
// Sentinel are in registry.go next to the StatsProvider/ProbeSetter
// ones; the goroutine-backed fallback for counters outside the registry
// lives in counter/wait, next to the public combinators that need it.
