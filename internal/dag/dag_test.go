package dag

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"monotonic/internal/workload"
)

func constTask(v any) func(map[string]any) (any, error) {
	return func(map[string]any) (any, error) { return v, nil }
}

func TestLinearChain(t *testing.T) {
	g := New()
	g.MustTask("a", nil, constTask(1))
	g.MustTask("b", []string{"a"}, func(d map[string]any) (any, error) {
		return d["a"].(int) + 1, nil
	})
	g.MustTask("c", []string{"b"}, func(d map[string]any) (any, error) {
		return d["b"].(int) * 10, nil
	})
	for _, workers := range []int{0, 1, 2, 8} {
		res, err := g.Run(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res["c"] != 20 {
			t.Fatalf("workers=%d: c = %v", workers, res["c"])
		}
	}
}

func TestDiamond(t *testing.T) {
	g := New()
	g.MustTask("src", nil, constTask(3))
	g.MustTask("left", []string{"src"}, func(d map[string]any) (any, error) {
		return d["src"].(int) + 10, nil
	})
	g.MustTask("right", []string{"src"}, func(d map[string]any) (any, error) {
		return d["src"].(int) * 10, nil
	})
	g.MustTask("sink", []string{"left", "right"}, func(d map[string]any) (any, error) {
		return d["left"].(int) + d["right"].(int), nil
	})
	res, err := g.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if res["sink"] != 43 {
		t.Fatalf("sink = %v", res["sink"])
	}
}

func TestDeclarationOrderIrrelevant(t *testing.T) {
	g := New()
	// Dependent declared before its dependency.
	g.MustTask("b", []string{"a"}, func(d map[string]any) (any, error) {
		return d["a"].(string) + "!", nil
	})
	g.MustTask("a", nil, constTask("hi"))
	res, err := g.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res["b"] != "hi!" {
		t.Fatalf("b = %v", res["b"])
	}
}

func TestDuplicateTask(t *testing.T) {
	g := New()
	g.MustTask("x", nil, constTask(1))
	if err := g.Task("x", nil, constTask(2)); err == nil {
		t.Fatal("duplicate task accepted")
	}
}

func TestUnknownDependency(t *testing.T) {
	g := New()
	g.MustTask("x", []string{"ghost"}, constTask(1))
	if _, err := g.Run(0); err == nil || !strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("err = %v", err)
	}
}

func TestCycleDetected(t *testing.T) {
	g := New()
	g.MustTask("a", []string{"c"}, constTask(1))
	g.MustTask("b", []string{"a"}, constTask(1))
	g.MustTask("c", []string{"b"}, constTask(1))
	_, err := g.Run(0)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestSelfDependency(t *testing.T) {
	g := New()
	g.MustTask("a", []string{"a"}, constTask(1))
	if _, err := g.Run(0); err == nil {
		t.Fatal("self-dependency accepted")
	}
}

func TestErrorPropagatesAndSkipsDependents(t *testing.T) {
	boom := errors.New("boom")
	g := New()
	g.MustTask("ok", nil, constTask(1))
	g.MustTask("bad", nil, func(map[string]any) (any, error) { return nil, boom })
	ran := atomic.Bool{}
	g.MustTask("child", []string{"bad", "ok"}, func(map[string]any) (any, error) {
		ran.Store(true)
		return 2, nil
	})
	res, err := g.Run(4)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if ran.Load() {
		t.Fatal("dependent of failed task executed")
	}
	if res["ok"] != 1 {
		t.Fatal("independent task result lost")
	}
}

// TestBoundedWorkersDeepGraph: a long chain with one worker must not
// deadlock (blocked tasks don't hold execution slots).
func TestBoundedWorkersDeepGraph(t *testing.T) {
	g := New()
	const depth = 200
	g.MustTask("t0", nil, constTask(0))
	for i := 1; i < depth; i++ {
		dep := fmt.Sprintf("t%d", i-1)
		g.MustTask(fmt.Sprintf("t%d", i), []string{dep}, func(d map[string]any) (any, error) {
			return d[dep].(int) + 1, nil
		})
	}
	res, err := g.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res[fmt.Sprintf("t%d", depth-1)] != depth-1 {
		t.Fatalf("chain result %v", res[fmt.Sprintf("t%d", depth-1)])
	}
}

// TestWorkerLimitRespected: peak concurrent executions never exceed the
// limit even with a wide graph.
func TestWorkerLimitRespected(t *testing.T) {
	const width = 40
	const limit = 3
	g := New()
	var inside, peak atomic.Int64
	for i := 0; i < width; i++ {
		g.MustTask(fmt.Sprintf("w%d", i), nil, func(map[string]any) (any, error) {
			cur := inside.Add(1)
			for {
				m := peak.Load()
				if cur <= m || peak.CompareAndSwap(m, cur) {
					break
				}
			}
			workload.Yield(3)
			inside.Add(-1)
			return nil, nil
		})
	}
	if _, err := g.Run(limit); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("peak executions %d > limit %d", p, limit)
	}
}

// TestQuickRandomDAGsDeterministic: random DAGs of pure tasks give the
// same results at every worker count.
func TestQuickRandomDAGsDeterministic(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%10) + 1
		rng := workload.NewRNG(seed)
		build := func() *Graph {
			g := New()
			for i := 0; i < n; i++ {
				var deps []string
				for j := 0; j < i; j++ {
					if rng.Intn(3) == 0 {
						deps = append(deps, fmt.Sprintf("n%d", j))
					}
				}
				i := i
				myDeps := deps
				g.MustTask(fmt.Sprintf("n%d", i), myDeps, func(d map[string]any) (any, error) {
					acc := int64(i + 1)
					for _, dep := range myDeps {
						acc = acc*31 + d[dep].(int64)
					}
					return acc, nil
				})
			}
			return g
		}
		g1 := build()
		// Rebuild with a fresh identical RNG stream so both graphs
		// have the same shape.
		rng = workload.NewRNG(seed)
		g2 := build()
		r1, err1 := g1.Run(1)
		r2, err2 := g2.Run(4)
		if err1 != nil || err2 != nil {
			return false
		}
		for k, v := range r1 {
			if r2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	g := New()
	g.MustTask("x", nil, constTask(1))
	g.MustTask("y", nil, constTask(1))
	names := g.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("Names = %v", names)
	}
}

// TestGraphReusable: a graph can be Run multiple times; state resets.
func TestGraphReusable(t *testing.T) {
	g := New()
	calls := atomic.Int64{}
	g.MustTask("a", nil, func(map[string]any) (any, error) {
		return calls.Add(1), nil
	})
	for i := int64(1); i <= 3; i++ {
		res, err := g.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if res["a"] != i {
			t.Fatalf("run %d: a = %v", i, res["a"])
		}
	}
}
