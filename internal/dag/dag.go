// Package dag is a dataflow task-graph executor built entirely on
// monotonic counters: each task owns a counter that its completion
// increments, and a task starts when a Check against each dependency's
// counter passes. It packages the paper's dataflow style (sections 4-5)
// as a reusable component: declare tasks and edges, run with bounded
// workers, get deterministic completion of an arbitrary DAG.
//
// Graphs are validated (unknown dependencies, duplicate names, cycles)
// before anything runs. Task functions receive the results of their
// dependencies and return a value visible to their dependents; because a
// dependent's Check happens-after the dependency's Increment, result
// publication needs no further synchronization — the counter is the
// memory fence, exactly as in the paper's broadcast pattern.
package dag

import (
	"fmt"
	"sort"

	"monotonic/internal/core"
	"monotonic/internal/sthreads"
)

// Graph is a set of named tasks with dependencies. Build with Task, then
// Run. A Graph is not safe for concurrent mutation.
type Graph struct {
	tasks []*task
	index map[string]int
}

type task struct {
	name string
	deps []string
	fn   func(deps map[string]any) (any, error)

	done   *core.Counter // reaches 1 when the task completes
	result any
	err    error
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[string]int)}
}

// Task adds a named task depending on deps. fn receives the dependency
// results keyed by name. Task returns an error on a duplicate name; the
// dependencies themselves are validated by Run (so tasks may be declared
// in any order).
func (g *Graph) Task(name string, deps []string, fn func(deps map[string]any) (any, error)) error {
	if _, dup := g.index[name]; dup {
		return fmt.Errorf("dag: duplicate task %q", name)
	}
	g.index[name] = len(g.tasks)
	g.tasks = append(g.tasks, &task{
		name: name,
		deps: append([]string(nil), deps...),
		fn:   fn,
	})
	return nil
}

// MustTask is Task, panicking on error — for statically known graphs.
func (g *Graph) MustTask(name string, deps []string, fn func(deps map[string]any) (any, error)) {
	if err := g.Task(name, deps, fn); err != nil {
		panic(err)
	}
}

// validate checks that every dependency exists and that the graph is
// acyclic, returning a topological order of task indices.
func (g *Graph) validate() ([]int, error) {
	adj := make([][]int, len(g.tasks)) // dep -> dependents
	indeg := make([]int, len(g.tasks))
	for i, t := range g.tasks {
		for _, d := range t.deps {
			j, ok := g.index[d]
			if !ok {
				return nil, fmt.Errorf("dag: task %q depends on unknown task %q", t.name, d)
			}
			if j == i {
				return nil, fmt.Errorf("dag: task %q depends on itself", t.name)
			}
			adj[j] = append(adj[j], i)
			indeg[i]++
		}
	}
	// Kahn's algorithm; deterministic order via sorted ready set.
	var order []int
	ready := []int{}
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		next := []int{}
		for _, j := range adj[i] {
			indeg[j]--
			if indeg[j] == 0 {
				next = append(next, j)
			}
		}
		sort.Ints(next)
		ready = append(ready, next...)
	}
	if len(order) != len(g.tasks) {
		var stuck []string
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, g.tasks[i].name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("dag: dependency cycle involving %v", stuck)
	}
	return order, nil
}

// Results maps task names to their returned values.
type Results map[string]any

// Run executes the graph with at most maxWorkers concurrent tasks
// (maxWorkers < 1 means one goroutine per task) and returns every task's
// result. If any task returns an error, Run still drives the graph to
// quiescence (dependents of a failed task are skipped, reporting a
// dependency error) and returns the first failure by task-name order.
func (g *Graph) Run(maxWorkers int) (Results, error) {
	order, err := g.validate()
	if err != nil {
		return nil, err
	}
	for _, t := range g.tasks {
		t.done = core.New()
		t.result, t.err = nil, nil
	}
	if maxWorkers < 1 {
		maxWorkers = len(order)
	}
	// One lightweight goroutine per task blocks on its dependency
	// Checks; the bounded resource is task *execution*, gated by the
	// slots channel. A slot is acquired only after every dependency has
	// completed, so blocked tasks can never starve the workers (holding
	// a slot while waiting would deadlock bounded runs of deep graphs).
	slots := make(chan struct{}, maxWorkers)
	sthreads.ForN(sthreads.Concurrent, len(order), func(k int) {
		t := g.tasks[order[k]]
		deps := make(map[string]any, len(t.deps))
		var depErr error
		for _, d := range t.deps {
			dt := g.tasks[g.index[d]]
			dt.done.Check(1) // dataflow gate; also the memory fence
			if dt.err != nil && depErr == nil {
				depErr = fmt.Errorf("dag: task %q skipped: dependency %q failed: %w", t.name, d, dt.err)
			}
			deps[d] = dt.result
		}
		if depErr != nil {
			t.err = depErr
		} else {
			slots <- struct{}{}
			t.result, t.err = t.fn(deps)
			<-slots
		}
		t.done.Increment(1)
	})

	results := make(Results, len(g.tasks))
	var firstErr error
	names := make([]string, 0, len(g.tasks))
	for _, t := range g.tasks {
		names = append(names, t.name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := g.tasks[g.index[name]]
		results[t.name] = t.result
		if t.err != nil && firstErr == nil {
			firstErr = t.err
		}
	}
	return results, firstErr
}

// Names returns the task names in insertion order.
func (g *Graph) Names() []string {
	out := make([]string, len(g.tasks))
	for i, t := range g.tasks {
		out[i] = t.name
	}
	return out
}
