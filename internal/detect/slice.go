package detect

import "fmt"

// Slice is an instrumented shared array: each element is tracked
// independently (concurrent accesses to *different* elements are fine;
// the paper's broadcast and stencil programs rely on exactly that), with
// the same vector-clock race detection as Var.
type Slice[T any] struct {
	name  string
	elems []*Var[T]
}

// NewSlice returns an instrumented slice of length n named for reports as
// name[i]. Element initialization counts as writes by the creating
// thread.
func NewSlice[T any](t *Thread, name string, n int) *Slice[T] {
	s := &Slice[T]{name: name, elems: make([]*Var[T], n)}
	var zero T
	for i := range s.elems {
		s.elems[i] = NewVar(t, fmt.Sprintf("%s[%d]", name, i), zero)
	}
	return s
}

// Len returns the slice length.
func (s *Slice[T]) Len() int { return len(s.elems) }

// Read returns element i, recording the access.
func (s *Slice[T]) Read(t *Thread, i int) T { return s.elems[i].Read(t) }

// Write stores element i, recording the access.
func (s *Slice[T]) Write(t *Thread, i int, v T) { s.elems[i].Write(t, v) }

// Fill writes every element (e.g. to initialize from a parent thread).
func (s *Slice[T]) Fill(t *Thread, f func(i int) T) {
	for i := range s.elems {
		s.elems[i].Write(t, f(i))
	}
}

// Snapshot reads every element from the given thread, recording the
// accesses, and returns the values.
func (s *Slice[T]) Snapshot(t *Thread) []T {
	out := make([]T, len(s.elems))
	for i := range s.elems {
		out[i] = s.elems[i].Read(t)
	}
	return out
}
