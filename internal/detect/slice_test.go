package detect

import (
	"testing"
)

// TestSliceDisjointElementsClean: threads writing different elements of
// one slice with no synchronization do not race — per-element tracking,
// which the paper's row-partitioned programs depend on.
func TestSliceDisjointElementsClean(t *testing.T) {
	reg := NewRegistry()
	root := reg.Root()
	s := NewSlice[int](root, "row", 8)
	bodies := make([]func(*Thread), 8)
	for i := range bodies {
		i := i
		bodies[i] = func(th *Thread) {
			s.Write(th, i, i*i)
		}
	}
	root.Go(bodies...)
	if v := reg.Violations(); len(v) != 0 {
		t.Fatalf("disjoint writes flagged: %v", v)
	}
	got := s.Snapshot(root)
	for i, v := range got {
		if v != i*i {
			t.Fatalf("element %d = %d", i, v)
		}
	}
}

// TestSliceSameElementRaces: two threads writing the same element race.
func TestSliceSameElementRaces(t *testing.T) {
	reg := NewRegistry()
	root := reg.Root()
	s := NewSlice[int](root, "x", 4)
	root.Go(
		func(th *Thread) { s.Write(th, 2, 1) },
		func(th *Thread) { s.Write(th, 2, 2) },
	)
	vs := reg.Violations()
	if len(vs) == 0 {
		t.Fatal("same-element write race not flagged")
	}
	if vs[0].Var != "x[2]" {
		t.Fatalf("violation names %q, want x[2]", vs[0].Var)
	}
}

// TestSliceBroadcastProtocol: the section 5.3 broadcast over a Slice with
// a counter is clean; dropping the Check is flagged.
func TestSliceBroadcastProtocol(t *testing.T) {
	run := func(withCheck bool) []Violation {
		const n = 8
		reg := NewRegistry()
		root := reg.Root()
		data := NewSlice[int](root, "data", n)
		c := NewCounter(root)
		root.Go(
			func(th *Thread) {
				for i := 0; i < n; i++ {
					data.Write(th, i, i)
					c.Increment(th, 1)
				}
			},
			func(th *Thread) {
				for i := 0; i < n; i++ {
					if withCheck {
						c.Check(th, uint64(i)+1)
					}
					data.Read(th, i)
				}
			},
		)
		return reg.Violations()
	}
	if v := run(true); len(v) != 0 {
		t.Fatalf("guarded broadcast flagged: %v", v)
	}
	if v := run(false); len(v) == 0 {
		t.Fatal("unguarded broadcast not flagged")
	}
}

func TestSliceFillAndLen(t *testing.T) {
	reg := NewRegistry()
	root := reg.Root()
	s := NewSlice[string](root, "s", 3)
	s.Fill(root, func(i int) string { return string(rune('a' + i)) })
	if s.Len() != 3 {
		t.Fatal("Len wrong")
	}
	got := s.Snapshot(root)
	if got[0] != "a" || got[2] != "c" {
		t.Fatalf("snapshot %v", got)
	}
	if v := reg.Violations(); len(v) != 0 {
		t.Fatalf("single-thread fill flagged: %v", v)
	}
}
