// Package detect is a dynamic determinacy checker for counter-synchronized
// programs: it verifies the paper's section 6 condition that every pair of
// conflicting operations on a shared variable is separated by a transitive
// chain of counter operations (or other synchronization), using vector
// clocks to track happens-before.
//
// Programs are written against instrumented objects — Var for shared
// variables, Counter for monotonic counters, Mutex for locks — and run on
// instrumented Threads created by Fork/Join. Every unguarded pair of
// conflicting accesses is recorded as a Violation. A program with no
// violations satisfies the section 6 condition; if it synchronizes only
// through counters, its results are therefore deterministic, and the
// condition holding on one execution implies it holds on all (which is why
// checking a single run is meaningful — the property the paper cites from
// Thornley's thesis [21]).
//
// Note the distinction the section 6 examples draw: a lock-guarded program
// can be violation-free yet still nondeterministic, because locks order
// accesses without fixing *which* order; counters fix the order itself.
// This package checks the guard condition; internal/explore proves the
// determinacy half by exhaustive interleaving.
package detect

import (
	"fmt"
	"sort"
	"sync"

	"monotonic/internal/core"
	"monotonic/internal/vclock"
)

// Registry owns the threads and violation log of one checked program run.
type Registry struct {
	mu         sync.Mutex
	nextThread int
	violations []Violation
}

// Violation is one detected pair of conflicting, unordered accesses.
type Violation struct {
	Var    string // variable name
	Kind   string // "write-write", "read-write", or "write-read"
	First  int    // thread id of the earlier-recorded access
	Second int    // thread id of the access that exposed the race
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s race on %s between thread %d and thread %d", v.Kind, v.Var, v.First, v.Second)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Violations returns the violations recorded so far, sorted for stable
// reporting.
func (r *Registry) Violations() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Violation(nil), r.violations...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.First != b.First {
			return a.First < b.First
		}
		return a.Second < b.Second
	})
	return out
}

func (r *Registry) record(v Violation) {
	r.mu.Lock()
	r.violations = append(r.violations, v)
	r.mu.Unlock()
}

// Thread is an instrumented thread. Each Thread must be used by exactly
// one goroutine at a time; Fork and Join transfer the happens-before
// edges of thread creation and termination.
type Thread struct {
	reg *Registry
	id  int
	vc  vclock.VC
}

// Root returns the program's initial thread. Call once per registry.
func (r *Registry) Root() *Thread {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Thread{reg: r, id: r.nextThread}
	r.nextThread++
	t.vc = vclock.New(t.id + 1)
	t.vc.Tick(t.id)
	return t
}

// ID returns the thread's identifier.
func (t *Thread) ID() int { return t.id }

// Fork creates n child threads; each child's clock inherits everything
// the parent has seen (the fork edge).
func (t *Thread) Fork(n int) []*Thread {
	t.reg.mu.Lock()
	children := make([]*Thread, n)
	for i := range children {
		c := &Thread{reg: t.reg, id: t.reg.nextThread}
		t.reg.nextThread++
		c.vc = t.vc.Clone()
		c.vc.Join(vclock.New(c.id + 1)) // ensure capacity
		c.vc.Tick(c.id)
		children[i] = c
	}
	t.reg.mu.Unlock()
	t.vc.Tick(t.id)
	return children
}

// Join absorbs terminated children: everything each child saw, the parent
// now sees (the join edge). The children must not be used afterwards.
func (t *Thread) Join(children ...*Thread) {
	for _, c := range children {
		t.vc.Join(c.vc)
	}
	t.vc.Tick(t.id)
}

// Go runs each body on its own goroutine with a freshly forked Thread and
// joins them all before returning — the `multithreaded` block of the
// paper's notation, instrumented.
func (t *Thread) Go(bodies ...func(th *Thread)) {
	children := t.Fork(len(bodies))
	var wg sync.WaitGroup
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body func(th *Thread)) {
			defer wg.Done()
			body(children[i])
		}(i, body)
	}
	wg.Wait()
	t.Join(children...)
}

// access is one recorded variable access.
type access struct {
	vc     vclock.VC
	thread int
}

// Var is an instrumented shared variable of any type.
type Var[T any] struct {
	reg   *Registry
	name  string
	mu    sync.Mutex
	value T
	write access            // most recent write
	reads map[int]vclock.VC // most recent read per thread
}

// NewVar returns an instrumented variable with the given debug name and
// initial value. The initial value counts as a write by the creating
// thread.
func NewVar[T any](t *Thread, name string, initial T) *Var[T] {
	v := &Var[T]{reg: t.reg, name: name, value: initial, reads: make(map[int]vclock.VC)}
	v.write = access{vc: t.vc.Clone(), thread: t.id}
	t.vc.Tick(t.id)
	return v
}

// Read returns the value, recording a read-write race if the most recent
// write is concurrent with this read.
func (v *Var[T]) Read(t *Thread) T {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.write.thread != t.id && !v.write.vc.HappensBefore(t.vc) && !v.write.vc.Equal(t.vc) {
		v.reg.record(Violation{Var: v.name, Kind: "write-read", First: v.write.thread, Second: t.id})
	}
	v.reads[t.id] = t.vc.Clone()
	t.vc.Tick(t.id)
	return v.value
}

// Write stores a value, recording a write-write race if the previous
// write is concurrent, and a read-write race for every concurrent
// earlier read.
func (v *Var[T]) Write(t *Thread, value T) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.write.thread != t.id && !v.write.vc.HappensBefore(t.vc) && !v.write.vc.Equal(t.vc) {
		v.reg.record(Violation{Var: v.name, Kind: "write-write", First: v.write.thread, Second: t.id})
	}
	for tid, rvc := range v.reads {
		if tid != t.id && !rvc.HappensBefore(t.vc) && !rvc.Equal(t.vc) {
			v.reg.record(Violation{Var: v.name, Kind: "read-write", First: tid, Second: t.id})
		}
	}
	v.value = value
	v.write = access{vc: t.vc.Clone(), thread: t.id}
	// A write that is ordered after all reads supersedes them.
	v.reads = make(map[int]vclock.VC)
	t.vc.Tick(t.id)
}

// Counter is an instrumented monotonic counter: the real blocking
// behaviour of core.Counter, plus happens-before transfer — a Check that
// waited for level L acquires the joined clocks of every Increment up to
// the first that reached L.
type Counter struct {
	core core.Counter
	mu   sync.Mutex
	cum  []uint64    // cumulative value after each increment
	vcs  []vclock.VC // prefix-joined clocks: vcs[i] = join of increments 0..i
}

// NewCounter returns an instrumented counter with value zero.
func NewCounter(t *Thread) *Counter {
	_ = t
	return &Counter{}
}

// Increment adds amount, releasing the calling thread's clock to future
// Checks that this increment (or a later one) satisfies.
func (c *Counter) Increment(t *Thread, amount uint64) {
	c.mu.Lock()
	var cum uint64
	var joined vclock.VC
	if n := len(c.cum); n > 0 {
		cum = c.cum[n-1]
		joined = c.vcs[n-1].Clone()
	} else {
		joined = vclock.New(0)
	}
	cum += amount
	joined.Join(t.vc)
	c.cum = append(c.cum, cum)
	c.vcs = append(c.vcs, joined)
	c.mu.Unlock()
	t.vc.Tick(t.id)
	c.core.Increment(amount)
}

// Check suspends until the counter reaches level, then acquires the
// clocks of the increments it waited for.
func (c *Counter) Check(t *Thread, level uint64) {
	c.core.Check(level)
	if level == 0 {
		t.vc.Tick(t.id)
		return
	}
	c.mu.Lock()
	// First increment whose cumulative value reaches level; it and all
	// earlier increments happen-before this Check's return.
	i := sort.Search(len(c.cum), func(i int) bool { return c.cum[i] >= level })
	if i < len(c.vcs) {
		t.vc.Join(c.vcs[i])
	}
	c.mu.Unlock()
	t.vc.Tick(t.id)
}

// Mutex is an instrumented lock: release-to-acquire edges are recorded,
// so lock-guarded accesses are never flagged as races (even though, as
// section 6 shows, they may still be nondeterministic).
type Mutex struct {
	mu sync.Mutex
	vc vclock.VC // clock released by the last Unlock
}

// Lock acquires the mutex and the clock of the previous holder.
func (m *Mutex) Lock(t *Thread) {
	m.mu.Lock()
	t.vc.Join(m.vc)
	t.vc.Tick(t.id)
}

// Unlock releases the mutex, publishing the holder's clock.
func (m *Mutex) Unlock(t *Thread) {
	m.vc = t.vc.Clone()
	t.vc.Tick(t.id)
	m.mu.Unlock()
}
