package detect

import (
	"testing"
)

// TestSection6CounterProgramClean: the deterministic program of section 6
// — Check(0); x=x+1; Increment(1) || Check(1); x=x*2; Increment(1) — has
// no violations: the counter chain orders the two access pairs.
func TestSection6CounterProgramClean(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		reg := NewRegistry()
		root := reg.Root()
		x := NewVar(root, "x", 3)
		c := NewCounter(root)
		root.Go(
			func(th *Thread) {
				c.Check(th, 0)
				x.Write(th, x.Read(th)+1)
				c.Increment(th, 1)
			},
			func(th *Thread) {
				c.Check(th, 1)
				x.Write(th, x.Read(th)*2)
				c.Increment(th, 1)
			},
		)
		if v := reg.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: unexpected violations %v", trial, v)
		}
		if got := x.Read(root); got != 8 {
			t.Fatalf("trial %d: x = %d, want 8", trial, got)
		}
	}
}

// TestSection6UnguardedProgramFlagged: the erroneous variant where both
// threads Check(0) — concurrent access to x — is detected.
func TestSection6UnguardedProgramFlagged(t *testing.T) {
	flagged := false
	for trial := 0; trial < 50 && !flagged; trial++ {
		reg := NewRegistry()
		root := reg.Root()
		x := NewVar(root, "x", 3)
		c := NewCounter(root)
		root.Go(
			func(th *Thread) {
				c.Check(th, 0)
				x.Write(th, x.Read(th)+1)
				c.Increment(th, 1)
			},
			func(th *Thread) {
				c.Check(th, 0)
				x.Write(th, x.Read(th)*2)
				c.Increment(th, 1)
			},
		)
		flagged = len(reg.Violations()) > 0
	}
	if !flagged {
		t.Fatal("unguarded concurrent accesses never flagged")
	}
}

// TestLockGuardedProgramCleanButOrderFree: the lock program of section 6
// is violation-free — the mutex orders the accesses — which is exactly
// the paper's point: freedom from races does not imply determinacy.
func TestLockGuardedProgramCleanButOrderFree(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		reg := NewRegistry()
		root := reg.Root()
		x := NewVar(root, "x", 3)
		var m Mutex
		root.Go(
			func(th *Thread) {
				m.Lock(th)
				x.Write(th, x.Read(th)+1)
				m.Unlock(th)
			},
			func(th *Thread) {
				m.Lock(th)
				x.Write(th, x.Read(th)*2)
				m.Unlock(th)
			},
		)
		if v := reg.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: lock-guarded program flagged: %v", trial, v)
		}
		got := x.Read(root)
		if got != 8 && got != 7 {
			t.Fatalf("trial %d: x = %d, want 7 or 8", trial, got)
		}
	}
}

// TestForkJoinEdges: a child's writes are visible (ordered) to the parent
// after Join, and sibling writes to different vars don't interfere.
func TestForkJoinEdges(t *testing.T) {
	reg := NewRegistry()
	root := reg.Root()
	a := NewVar(root, "a", 0)
	b := NewVar(root, "b", 0)
	root.Go(
		func(th *Thread) { a.Write(th, 1) },
		func(th *Thread) { b.Write(th, 2) },
	)
	if got := a.Read(root); got != 1 {
		t.Fatalf("a = %d", got)
	}
	if got := b.Read(root); got != 2 {
		t.Fatalf("b = %d", got)
	}
	if v := reg.Violations(); len(v) != 0 {
		t.Fatalf("fork/join program flagged: %v", v)
	}
}

// TestSiblingWriteWriteRace: two children writing the same variable with
// no synchronization is a write-write violation.
func TestSiblingWriteWriteRace(t *testing.T) {
	reg := NewRegistry()
	root := reg.Root()
	x := NewVar(root, "x", 0)
	root.Go(
		func(th *Thread) { x.Write(th, 1) },
		func(th *Thread) { x.Write(th, 2) },
	)
	vs := reg.Violations()
	if len(vs) == 0 {
		t.Fatal("sibling write-write race not flagged")
	}
	if vs[0].Var != "x" {
		t.Fatalf("violation names %q", vs[0].Var)
	}
}

// TestReadersDontRace: many concurrent readers of a parent-written value
// are fine.
func TestReadersDontRace(t *testing.T) {
	reg := NewRegistry()
	root := reg.Root()
	x := NewVar(root, "x", 42)
	bodies := make([]func(th *Thread), 8)
	for i := range bodies {
		bodies[i] = func(th *Thread) {
			if got := x.Read(th); got != 42 {
				t.Errorf("reader saw %d", got)
			}
		}
	}
	root.Go(bodies...)
	if v := reg.Violations(); len(v) != 0 {
		t.Fatalf("read-only sharing flagged: %v", v)
	}
}

// TestWriterVsReaderRace: one unsynchronized writer among readers is
// flagged.
func TestWriterVsReaderRace(t *testing.T) {
	flagged := false
	for trial := 0; trial < 50 && !flagged; trial++ {
		reg := NewRegistry()
		root := reg.Root()
		x := NewVar(root, "x", 0)
		root.Go(
			func(th *Thread) { x.Write(th, 1) },
			func(th *Thread) { _ = x.Read(th) },
		)
		flagged = len(reg.Violations()) > 0
	}
	if !flagged {
		t.Fatal("writer/reader race never flagged")
	}
}

// TestCounterChainTransitive: a chain T0 -> T1 -> T2 through two
// different counters orders T0's write with T2's read (the "transitive
// chain of counter operations" of section 6).
func TestCounterChainTransitive(t *testing.T) {
	reg := NewRegistry()
	root := reg.Root()
	x := NewVar(root, "x", 0)
	c1 := NewCounter(root)
	c2 := NewCounter(root)
	root.Go(
		func(th *Thread) {
			x.Write(th, 10)
			c1.Increment(th, 1)
		},
		func(th *Thread) {
			c1.Check(th, 1)
			c2.Increment(th, 1)
		},
		func(th *Thread) {
			c2.Check(th, 1)
			if got := x.Read(th); got != 10 {
				t.Errorf("x = %d through chain", got)
			}
		},
	)
	if v := reg.Violations(); len(v) != 0 {
		t.Fatalf("transitive chain flagged: %v", v)
	}
}

// TestBroadcastPatternClean: the single-writer multiple-reader pattern
// of section 5.3, instrumented, has no violations.
func TestBroadcastPatternClean(t *testing.T) {
	const n = 20
	reg := NewRegistry()
	root := reg.Root()
	data := make([]*Var[int], n)
	for i := range data {
		data[i] = NewVar(root, "data", 0)
	}
	c := NewCounter(root)
	writer := func(th *Thread) {
		for i := 0; i < n; i++ {
			data[i].Write(th, i*i)
			c.Increment(th, 1)
		}
	}
	reader := func(th *Thread) {
		for i := 0; i < n; i++ {
			c.Check(th, uint64(i)+1)
			if got := data[i].Read(th); got != i*i {
				t.Errorf("reader saw data[%d] = %d", i, got)
			}
		}
	}
	root.Go(writer, reader, reader, reader)
	if v := reg.Violations(); len(v) != 0 {
		t.Fatalf("broadcast pattern flagged: %v", v)
	}
}

// TestOrderedAccumulationClean: the section 5.2 counter accumulation has
// no violations and a deterministic result.
func TestOrderedAccumulationClean(t *testing.T) {
	const n = 10
	reg := NewRegistry()
	root := reg.Root()
	result := NewVar(root, "result", 0)
	c := NewCounter(root)
	bodies := make([]func(th *Thread), n)
	for i := range bodies {
		i := i
		bodies[i] = func(th *Thread) {
			sub := i + 1
			c.Check(th, uint64(i))
			result.Write(th, result.Read(th)+sub)
			c.Increment(th, 1)
		}
	}
	root.Go(bodies...)
	if v := reg.Violations(); len(v) != 0 {
		t.Fatalf("ordered accumulation flagged: %v", v)
	}
	if got := result.Read(root); got != n*(n+1)/2 {
		t.Fatalf("result = %d", got)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Var: "x", Kind: "write-write", First: 1, Second: 2}
	want := "write-write race on x between thread 1 and thread 2"
	if v.String() != want {
		t.Fatalf("String = %q", v.String())
	}
}
