package experiments

import (
	"strings"
	"testing"

	"monotonic/internal/core"
)

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 27 {
		t.Fatalf("registered %d experiments, want 27", len(all))
	}
	for i, e := range all {
		want := "E" + itoa(i+1)
		if e.ID != want {
			t.Errorf("position %d holds %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestGet(t *testing.T) {
	if _, ok := Get("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("E99 present")
	}
}

// TestEveryExperimentRunsQuickWithoutMismatch runs the whole suite in
// quick mode and asserts no table cell reports MISMATCH — the "shape
// holds" criterion is machine-checked.
func TestEveryExperimentRunsQuickWithoutMismatch(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(Config{Quick: true})
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q empty", e.ID, tb.Title)
				}
				md := tb.Markdown()
				if strings.Contains(md, "MISMATCH") {
					t.Errorf("%s: table %q contains MISMATCH:\n%s", e.ID, tb.Title, md)
				}
			}
		})
	}
}

// TestE2TraceMatchesFigure2 pins the exact rendered structures of the
// Figure 2 trace table.
func TestE2TraceMatchesFigure2(t *testing.T) {
	e, _ := Get("E2")
	tb := e.Run(Config{Quick: true})[0]
	wantStructures := []string{
		"value=0 waiting=[]",
		"value=0 waiting=[{level=5 count=1 not-set}]",
		"value=0 waiting=[{level=5 count=1 not-set} {level=9 count=1 not-set}]",
		"value=0 waiting=[{level=5 count=2 not-set} {level=9 count=1 not-set}]",
		"value=7 waiting=[{level=5 count=2 set} {level=9 count=1 not-set}]",
		"value=7 waiting=[{level=5 count=1 set} {level=9 count=1 not-set}]",
		"value=7 waiting=[{level=9 count=1 not-set}]",
	}
	if len(tb.Rows) != len(wantStructures) {
		t.Fatalf("trace rows = %d, want %d", len(tb.Rows), len(wantStructures))
	}
	for i, row := range tb.Rows {
		if row[2] != wantStructures[i] {
			t.Errorf("step %s: %q, want %q", row[0], row[2], wantStructures[i])
		}
	}
}

// TestE8OutcomeCounts pins the headline determinacy numbers.
func TestE8OutcomeCounts(t *testing.T) {
	e, _ := Get("E8")
	tb := e.Run(Config{Quick: true})[0]
	wantOutcomes := map[string]string{
		"lock: {x=x+1} || {x=x*2}":                          "2",
		"counter: Check(0);x=x+1;Inc || Check(1);x=x*2;Inc": "1",
		"unguarded: both Check(0), atomic stmts":            "2",
		"cyclic Check/Inc (deadlocks sequentially)":         "0",
	}
	for _, row := range tb.Rows {
		if want, ok := wantOutcomes[row[0]]; ok && row[1] != want {
			t.Errorf("%s: outcomes = %s, want %s", row[0], row[1], want)
		}
	}
}

// TestE24BoundsHold pins the predicate-wait bounds at test time: the
// quorum table must report parked nodes equal to the watched-counter
// count for every waiter row, and the non-flipping table must report
// zero sentinel fires. (E24 additionally panics inside Run if either
// bound is violated, so a regression fails fast in reported runs too.)
func TestE24BoundsHold(t *testing.T) {
	e, ok := Get("E24")
	if !ok {
		t.Fatal("E24 missing")
	}
	tables := e.Run(Config{Quick: true})
	if len(tables) != 3 {
		t.Fatalf("E24 produced %d tables, want 3", len(tables))
	}
	quorum := tables[0]
	for _, row := range quorum.Rows {
		if row[2] != row[1] {
			t.Errorf("quorum row %s waiters: %s parked nodes for %s watched counters", row[0], row[2], row[1])
		}
	}
	flips := tables[1]
	if got := flips.Rows[0][1]; got != "0" {
		t.Errorf("non-flipping increments produced %s sentinel fires, want 0", got)
	}
}

// TestE25BoundsHold pins the read-side bounds at test time: every
// implementation row must report zero mutex acquisitions with the
// immediate-check tally equal to the issued satisfied checks, and the
// registration table must carry the 4-P bound verdict. (E25 additionally
// panics inside Run on violation, so reported runs fail fast too.)
func TestE25BoundsHold(t *testing.T) {
	e, ok := Get("E25")
	if !ok {
		t.Fatal("E25 missing")
	}
	tables := e.Run(Config{Quick: true})
	if len(tables) != 2 {
		t.Fatalf("E25 produced %d tables, want 2", len(tables))
	}
	zero := tables[0]
	if len(zero.Rows) != len(core.Registry()) {
		t.Fatalf("zero-lock table has %d rows, want one per implementation (%d)", len(zero.Rows), len(core.Registry()))
	}
	for _, row := range zero.Rows {
		if row[2] != "0" {
			t.Errorf("%s: %s mutex acquisitions for satisfied checks, want 0", row[0], row[2])
		}
		if row[3] != row[1] {
			t.Errorf("%s: %s immediate checks counted for %s issued", row[0], row[3], row[1])
		}
	}
	reg := tables[1]
	if len(reg.Rows) != 3 {
		t.Fatalf("registration table has %d rows, want 3 (procs 1,2,4)", len(reg.Rows))
	}
	if got := reg.Rows[2][4]; got != "match" {
		t.Errorf("4-P registration bound verdict = %q, want \"match\"", got)
	}
}
