package experiments

import (
	"fmt"
	"sync"
	"time"

	"monotonic/internal/core"
	"monotonic/internal/harness"
)

// wakeFanout parks n Check waiters on c — all on one level, or spread
// over n distinct levels — then times the wake fan-out: from just before
// the single satisfying Increment until the last waiter has resumed.
// Spawn and park costs are excluded from the timed section.
func wakeFanout(impl core.Impl, n int, spread bool) time.Duration {
	c := core.NewImpl(impl)
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		lv := uint64(1)
		if spread {
			lv = uint64(i + 1)
		}
		wg.Add(1)
		go func(lv uint64) {
			defer wg.Done()
			started <- struct{}{}
			c.Check(lv)
		}(lv)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	settle(n)
	amount := uint64(1)
	if spread {
		amount = uint64(n)
	}
	start := time.Now()
	c.Increment(amount)
	wg.Wait()
	return time.Since(start)
}

// settle sleeps long enough for n just-started waiters to actually
// suspend ("started" fires on the way into Check), so the timed section
// measures wake-up, not arrival.
func settle(n int) {
	d := 20*time.Millisecond + time.Duration(n/100)*time.Millisecond
	if d > 300*time.Millisecond {
		d = 300 * time.Millisecond
	}
	time.Sleep(d)
}

// measureFanout repeats wakeFanout after one discarded warm-up run.
func measureFanout(impl core.Impl, n, reps int, spread bool) harness.Timing {
	wakeFanout(impl, n, spread)
	t := harness.Timing{Durations: make([]time.Duration, 0, reps)}
	for i := 0; i < reps; i++ {
		t.Durations = append(t.Durations, wakeFanout(impl, n, spread))
	}
	return t
}

// E20: wake fan-out latency — the read side of the scalability story.
// E19 made the increment cheap while nobody waits; E20 measures the
// moment everybody is waiting: one Increment must resume N suspended
// goroutines, and the question is whether the time to the last wake-up
// scales with N alone or convoys on the engine mutex.
func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Wake fan-out: time from Increment to last-of-N waiters resumed",
		Paper: "Section 7 prices an Increment at one wake per satisfied level, independent of how " +
			"many goroutines wait on it. The claim is about signalling work inside the critical " +
			"section; it says nothing about the resume convoy afterwards. This experiment measures " +
			"the full fan-out — Increment to last-of-N resumed — for N waiters on a single level " +
			"and for N waiters spread over N distinct levels.",
		Notes: "Out-of-lock batched wake-ups with per-level wake locks keep the engine mutex out " +
			"of the resume path: the incrementer unlinks the satisfied levels and releases the " +
			"mutex before broadcasting, and woken waiters drain with an atomic count instead of " +
			"reacquiring the engine lock, so time-to-last-woken grows with scheduler dispatch " +
			"cost, not with N serialized mutex handoffs. Spread-level rows stop at 10^4: " +
			"registering 10^5 distinct levels costs O(N^2) list insertion on the list-index " +
			"designs, which is E11's story, not this one.",
		Run: func(cfg Config) []*harness.Table {
			singleNs := []int{1, 100, 1000, 10000, 100000}
			spreadNs := []int{1, 100, 1000, 10000}
			reps := 5
			if cfg.Quick {
				singleNs = []int{1, 100, 1000}
				spreadNs = []int{1, 100, 1000}
				reps = 3
			}

			headers := func(ns []int) []string {
				h := []string{"implementation"}
				for _, n := range ns {
					h = append(h, fmt.Sprintf("N=%d", n))
				}
				return h
			}

			single := harness.NewTable(
				"Single level: N waiters on one level, one Increment, median time to last resume",
				headers(singleNs)...)
			for _, impl := range core.Registry() {
				row := []string{string(impl)}
				for _, n := range singleNs {
					row = append(row, harness.Dur(measureFanout(impl, n, reps, false).Median()))
				}
				single.Add(row...)
			}

			spread := harness.NewTable(
				"Spread levels: N waiters on N distinct levels, one Increment(N), median time to last resume",
				headers(spreadNs)...)
			for _, impl := range core.Registry() {
				row := []string{string(impl)}
				for _, n := range spreadNs {
					row = append(row, harness.Dur(measureFanout(impl, n, reps, true).Median()))
				}
				spread.Add(row...)
			}
			return []*harness.Table{single, spread}
		},
	})
}
