package experiments

import (
	"fmt"

	"monotonic/internal/detect"
	"monotonic/internal/harness"
)

// E15: the section 6 guard condition, checked dynamically with vector
// clocks on real executions (the scalable counterpart of E8's exhaustive
// exploration; also available as cmd/racecheck).
func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Section 6: dynamic guard-condition checking (vector clocks)",
		Paper: "Section 6 (citing Thornley's thesis): every pair of operations on a shared " +
			"variable must be separated by a transitive chain of counter operations; if the " +
			"condition holds in one execution it holds in all, so checking one run suffices. " +
			"Programs meeting it are free of access races (though locks alone, which also " +
			"order accesses, still leave the order nondeterministic).",
		Notes: "The checker passes every correctly guarded program (counter chain, lock region, " +
			"fork/join, broadcast, ordered accumulation) and flags each seeded bug (unguarded " +
			"update, missing reader Check) within the trial budget. Lock programs are " +
			"violation-free yet nondeterministic — exactly the paper's distinction between " +
			"race-freedom and determinacy.",
		Run: func(cfg Config) []*harness.Table {
			trials := 30
			if cfg.Quick {
				trials = 10
			}
			t := harness.NewTable(fmt.Sprintf("Vector-clock checking over up to %d schedules per program", trials),
				"program", "expected", "result", "verdict")
			for _, p := range checkPrograms() {
				var seen []detect.Violation
				for i := 0; i < trials && len(seen) == 0; i++ {
					seen = p.run()
				}
				result := "clean"
				if len(seen) > 0 {
					result = "race: " + seen[0].String()
				}
				ok := (p.expects == "clean") == (len(seen) == 0)
				t.Add(p.name, p.expects, result, verdict(ok))
			}
			return []*harness.Table{t}
		},
	})
}

type checkProgram struct {
	name    string
	expects string
	run     func() []detect.Violation
}

func checkPrograms() []checkProgram {
	return []checkProgram{
		{"counter chain (section 6)", "clean", func() []detect.Violation {
			reg := detect.NewRegistry()
			root := reg.Root()
			x := detect.NewVar(root, "x", 3)
			c := detect.NewCounter(root)
			root.Go(
				func(th *detect.Thread) { c.Check(th, 0); x.Write(th, x.Read(th)+1); c.Increment(th, 1) },
				func(th *detect.Thread) { c.Check(th, 1); x.Write(th, x.Read(th)*2); c.Increment(th, 1) },
			)
			return reg.Violations()
		}},
		{"lock region (section 6)", "clean", func() []detect.Violation {
			reg := detect.NewRegistry()
			root := reg.Root()
			x := detect.NewVar(root, "x", 3)
			var m detect.Mutex
			root.Go(
				func(th *detect.Thread) { m.Lock(th); x.Write(th, x.Read(th)+1); m.Unlock(th) },
				func(th *detect.Thread) { m.Lock(th); x.Write(th, x.Read(th)*2); m.Unlock(th) },
			)
			return reg.Violations()
		}},
		{"unguarded update (section 6)", "racy", func() []detect.Violation {
			reg := detect.NewRegistry()
			root := reg.Root()
			x := detect.NewVar(root, "x", 3)
			c := detect.NewCounter(root)
			root.Go(
				func(th *detect.Thread) { c.Check(th, 0); x.Write(th, x.Read(th)+1); c.Increment(th, 1) },
				func(th *detect.Thread) { c.Check(th, 0); x.Write(th, x.Read(th)*2); c.Increment(th, 1) },
			)
			return reg.Violations()
		}},
		{"broadcast, all Checks present", "clean", func() []detect.Violation {
			return broadcastCheck(false)
		}},
		{"broadcast, reader Check removed", "racy", func() []detect.Violation {
			return broadcastCheck(true)
		}},
	}
}

func broadcastCheck(dropCheck bool) []detect.Violation {
	const n = 10
	reg := detect.NewRegistry()
	root := reg.Root()
	data := make([]*detect.Var[int], n)
	for i := range data {
		data[i] = detect.NewVar(root, fmt.Sprintf("data[%d]", i), 0)
	}
	c := detect.NewCounter(root)
	writer := func(th *detect.Thread) {
		for i := 0; i < n; i++ {
			data[i].Write(th, i)
			c.Increment(th, 1)
		}
	}
	reader := func(th *detect.Thread) {
		for i := 0; i < n; i++ {
			if !dropCheck {
				c.Check(th, uint64(i)+1)
			}
			data[i].Read(th)
		}
	}
	root.Go(writer, reader, reader)
	return reg.Violations()
}
