package experiments

import (
	"monotonic/internal/harness"
	"monotonic/internal/linsys"
	"monotonic/internal/workload"
)

// E17: Gaussian elimination in the section 4.5 dataflow shape —
// demonstrating that the counter pipeline transfers unchanged to a
// different dense kernel, and that determinacy shows up as bit-exact
// numerical reproducibility.
func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Extension: counter-pipelined Gaussian elimination",
		Paper: "Not a paper experiment: the ShortestPaths3 structure (Check(k) gates iteration k; " +
			"the owner of row k+1 publishes it and increments) applied verbatim to dense " +
			"Gaussian elimination on diagonally dominant systems.",
		Notes: "Both parallel eliminations return bit-for-bit the sequential solution — not " +
			"within tolerance, identical — because counter ordering fixes the floating-point " +
			"operation order (section 6 determinacy as numerical reproducibility). Residuals " +
			"confirm the solutions are correct, and the counter variant tracks the barrier " +
			"variant's cost while synchronizing pairwise.",
		Run: func(cfg Config) []*harness.Table {
			n, reps := 192, 5
			if cfg.Quick {
				n, reps = 48, 2
			}
			sys := linsys.RandomDominant(n, 11)
			want := linsys.SolveSeq(sys)

			t := harness.NewTable("Solve A x = b, n="+harness.I(n)+" (diagonally dominant)",
				"threads", "skew", "sequential", "barrier", "counter", "bit-identical", "residual")
			for _, nt := range []int{2, 4, 8} {
				for _, sk := range []workload.Skew{workload.Uniform{}, workload.OneSlow{Max: 4}} {
					nt, sk := nt, sk
					seqT := harness.Measure(reps, func() { linsys.SolveSeq(sys) })
					barT := harness.Measure(reps, func() { linsys.SolveBarrier(sys, nt, sk) })
					var got []float64
					cntT := harness.Measure(reps, func() { got = linsys.SolveCounter(sys, nt, sk, "") })
					ok := linsys.EqualExact(got, want)
					t.Add(harness.I(nt), sk.Name(),
						harness.Dur(seqT.Median()), harness.Dur(barT.Median()), harness.Dur(cntT.Median()),
						verdict(ok), harness.F(linsys.Residual(sys, got), 12))
				}
			}
			return []*harness.Table{t}
		},
	})
}
