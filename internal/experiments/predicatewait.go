package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"monotonic/internal/core"
	"monotonic/internal/harness"
	"monotonic/internal/predicate"
)

// quorumStorage parks N waiters on one k-of-m quorum condition, reads
// the total parked nodes across the member counters (the sum of their
// PeakLevels — every sentinel is one per-level node, and nothing else
// touches the members), then completes the quorum and times the release
// fan-out from the k-th arrival to the last waiter resumed.
//
// The storage bound is asserted at run time, not just reported: more
// than one node per watched counter means the predicate tier is paying
// per waiter, which is exactly the regression E24 exists to catch.
func quorumStorage(m, k, waiters int) (nodes int, release time.Duration) {
	members := make([]*core.Counter, m)
	cs := make([]predicate.Counter, m)
	levels := make([]uint64, m)
	for i := range members {
		members[i] = core.New()
		cs[i] = members[i]
		levels[i] = 1
	}
	cond := predicate.NewCond(predicate.Thresholds(levels, k), cs...)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cond.Wait(context.Background()) // background ctx: never errs
		}()
	}
	settle(waiters)
	for _, mem := range members {
		nodes += mem.Stats().PeakLevels
	}
	if nodes > m {
		panic(fmt.Sprintf("experiments: E24 storage bound violated: %d parked nodes across %d watched counters with %d waiters (want <= %d)",
			nodes, m, waiters, m))
	}
	for i := 0; i < k-1; i++ {
		members[i].Increment(1)
	}
	settle(1) // let the k-1 fires re-evaluate before the timed arrival
	start := time.Now()
	members[k-1].Increment(1)
	wg.Wait()
	return nodes, time.Since(start)
}

// nonFlipping parks one predicate waiter far from its target, drives
// sub-frontier increments at it, and returns the sentinel fire count —
// asserted to be zero at run time: an increment that cannot flip the
// predicate must wake no predicate machinery at all.
func nonFlipping(increments int) (fires uint64) {
	a, b := core.New(), core.New()
	const target = 1_000_000 // frontiers sit at 500_000 each
	cond := predicate.NewCond(predicate.SumAtLeast(target), a, b)
	done := make(chan struct{})
	go func() {
		_ = cond.Wait(context.Background())
		close(done)
	}()
	settle(1)
	for i := 0; i < increments; i++ {
		a.Increment(1)
	}
	fires = cond.Stats().Fires
	if fires != 0 {
		panic(fmt.Sprintf("experiments: E24 zero-wake bound violated: %d sentinel fires from %d sub-frontier increments (want 0)",
			fires, increments))
	}
	a.Increment(target) // release the waiter before returning
	<-done
	return fires
}

// joinFanout parks N waiters on a two-counter sum join, advances one
// counter to just below the target, and times the flip: from the other
// counter's one-unit increment to the last waiter resumed. Returns the
// release latency and the total sentinel registrations (which must
// track frontier moves, not N).
func joinFanout(waiters int) (release time.Duration, arms uint64) {
	a, b := core.New(), core.New()
	const target = 1000
	cond := predicate.NewCond(predicate.SumAtLeast(target), a, b)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cond.Wait(context.Background())
		}()
	}
	settle(waiters)
	a.Increment(target - 1)
	settle(1) // let the fire re-park sentinels at the new frontiers
	start := time.Now()
	b.Increment(1)
	wg.Wait()
	return time.Since(start), cond.Stats().Arms
}

// E24: predicate waits — the storage and no-wake bounds one tier up.
// The paper's section 7 argument is that N waiters on one level share
// one node; the predicate layer lifts it: N waiters on one monotone
// predicate over m counters share one *sentinel* node per counter.
func init() {
	register(Experiment{
		ID:    "E24",
		Title: "Predicate waits: k-of-n quorum storage and two-counter join fan-out",
		Paper: "Section 7's storage argument prices N waiters on one level at one node; section 8 " +
			"derives composite mechanisms from counters. A predicate wait (counter/wait) extends " +
			"both: N goroutines waiting on one monotone predicate over m counters — a quorum, a " +
			"sum join — should cost O(m) parked sentinel nodes shared by all N, and an increment " +
			"that cannot flip the predicate should wake no predicate machinery at all.",
		Notes: "Both bounds are asserted at run time (the experiment panics on violation, and the " +
			"quick suite runs it in CI). Parked nodes are measured as the sum of the members' " +
			"PeakLevels — a sentinel is an ordinary per-level waitlist node — and stay at m for " +
			"every waiter count up to 10^4, three orders of magnitude below per-waiter parking. " +
			"Sentinel fires stay at zero across 10^4 sub-frontier increments: the frontier math " +
			"(gap-sharing by pigeonhole for sums, exact thresholds for quorums) arms sentinels " +
			"only where a flip is reachable. Join release latency tracks the E20 fan-out cost — " +
			"one channel close releasing N parked goroutines — plus one predicate evaluation.",
		Run: func(cfg Config) []*harness.Table {
			waiterNs := []int{10, 100, 1000, 10000}
			incs := 10000
			if cfg.Quick {
				waiterNs = []int{10, 100, 1000}
				incs = 1000
			}

			const m, k = 8, 5
			t1 := harness.NewTable(
				fmt.Sprintf("Quorum wait (%d of %d members at threshold): parked nodes vs waiters", k, m),
				"waiters", "watched counters", "parked nodes", "bound <= m", "release (k-th arrival -> last resumed)")
			for _, n := range waiterNs {
				nodes, release := quorumStorage(m, k, n)
				verdict := "MATCH"
				if nodes > m {
					verdict = "MISMATCH" // unreachable: quorumStorage panics first
				}
				t1.Add(harness.I(n), harness.I(m), harness.I(nodes), verdict, harness.Dur(release))
			}

			t2 := harness.NewTable("Non-flipping increments wake nothing",
				"sub-frontier increments", "sentinel fires", "verdict")
			fires := nonFlipping(incs)
			verdict := "MATCH"
			if fires != 0 {
				verdict = "MISMATCH" // unreachable: nonFlipping panics first
			}
			t2.Add(harness.I(incs), harness.U(fires), verdict)

			t3 := harness.NewTable("Two-counter sum join: release fan-out",
				"waiters", "sentinel arms", "release (flip increment -> last resumed)")
			for _, n := range waiterNs {
				release, arms := joinFanout(n)
				t3.Add(harness.I(n), harness.U(arms), harness.Dur(release))
			}

			return []*harness.Table{t1, t2, t3}
		},
	})
}
