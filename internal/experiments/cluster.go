package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"monotonic/counter/cluster"
	"monotonic/internal/harness"
	"monotonic/internal/server"
)

// startClusterNodes boots n loopback counterd servers and returns their
// addresses plus a teardown.
func startClusterNodes(n int) (addrs []string, stop func()) {
	var closers []func()
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic("E26: " + err.Error())
		}
		srv := server.New()
		go srv.Serve(lis)
		addrs = append(addrs, lis.Addr().String())
		closers = append(closers, func() { srv.Close() })
	}
	return addrs, func() {
		for _, c := range closers {
			c()
		}
	}
}

// clusterThroughput hammers a cluster of the given nodes with writers
// incrementing round-robin over names, then waits until every increment
// is applied at its home (a Check per name at the exact expected final),
// so the clock covers delivery, not just enqueueing. Returns the wall
// time for the whole batch.
func clusterThroughput(addrs []string, names, writers, perWriter int) time.Duration {
	c, err := cluster.DialCluster(addrs, cluster.WithPoolSize(2))
	if err != nil {
		panic("E26: " + err.Error())
	}
	defer c.Close()
	ctrs := make([]*cluster.Counter, names)
	finals := make([]uint64, names)
	for i := range ctrs {
		ctrs[i] = c.Counter(fmt.Sprintf("e26-thr-%d-%d", time.Now().UnixNano(), i))
	}
	for w := 0; w < writers; w++ {
		for k := 0; k < perWriter; k++ {
			finals[(w+k)%names]++
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				ctrs[(w+k)%names].Increment(1)
			}
		}(w)
	}
	wg.Wait()
	for i, ctr := range ctrs {
		ctr.Check(finals[i])
	}
	return time.Since(start)
}

// clusterFanout parks waiters spread over names (and so over nodes,
// through placement), then satisfies every name with one increment per
// name and times the interval from the first satisfying increment to
// the last wake delivered — the cluster-wide analogue of E22's 1→N
// fan-out, with the wake load sharded over the member servers.
func clusterFanout(addrs []string, names, waiters int) time.Duration {
	c, err := cluster.DialCluster(addrs, cluster.WithPoolSize(2))
	if err != nil {
		panic("E26: " + err.Error())
	}
	defer c.Close()
	ctrs := make([]*cluster.Counter, names)
	for i := range ctrs {
		ctrs[i] = c.Counter(fmt.Sprintf("e26-fan-%d-%d", time.Now().UnixNano(), i))
		ctrs[i].Increment(1)
		ctrs[i].Check(1) // settle sessions into a steady state
	}

	var parked, released sync.WaitGroup
	for i := 0; i < waiters; i++ {
		parked.Add(1)
		released.Add(1)
		go func(i int) {
			defer released.Done()
			ctr := ctrs[i%names]
			parked.Done()
			ctr.Check(2)
		}(i)
	}
	parked.Wait()
	// The waiters have issued their Checks; a Stats round trip per name
	// rides the same pipeline, so its reply proves registration reached
	// the home server.
	for _, ctr := range ctrs {
		ctr.Stats()
	}

	start := time.Now()
	for _, ctr := range ctrs {
		ctr.Increment(1) // value 2: releases every waiter on this name
	}
	released.Wait()
	return time.Since(start)
}

// E26: the counter service scaled out — consistent-hash sharded names
// over N counterd nodes, measured as aggregate increment throughput and
// cluster-wide wake fan-out at 1, 2, and 4 in-process nodes.
func init() {
	register(Experiment{
		ID:    "E26",
		Title: "Cluster counters: aggregate increment throughput and wake fan-out vs node count",
		Paper: "Section 7 prices a counter in wakes per satisfied level and storage per distinct " +
			"level — nothing in the cost model is per-process or per-machine, and Section 6's " +
			"determinacy argument needs only monotonicity, which survives sharding names over " +
			"nodes because each name still lives behind exactly one server at a time. This " +
			"experiment measures what the reproduction's cluster layer (counter/cluster) buys: " +
			"the same increment batch and the same fan-out released through 1, 2, and 4 " +
			"counterd nodes, names placed by consistent hashing.",
		Notes: "Names shard by a consistent hash of the name over the member list, so the per-node " +
			"frame streams, waitlist engines, and wake fan-outs are independent — on multi-core " +
			"hosts the aggregate increment rate should grow with node count until cores run out. " +
			"On a single-CPU host every node shares the one core and the curve records " +
			"scheduling overhead instead of speedup (the report's num_cpu field says which " +
			"regime a row comes from; the GOMAXPROCS sweep in BENCH_9.json records the same " +
			"tables per proc count). The fan-out rows split one release wave over the members: " +
			"each node wakes only the waiters of its own names, so no single server's dispatch " +
			"loop carries the whole wave.",
		Run: func(cfg Config) []*harness.Table {
			const names = 64
			writers, perWriter := 8, 2500
			fanWaiters := 2000
			if cfg.Quick {
				writers, perWriter = 4, 250
				fanWaiters = 300
			}

			thr := harness.NewTable(
				fmt.Sprintf("Aggregate increment throughput: %d writers, %d names, %d increments, applied at the home before the clock stops",
					writers, names, writers*perWriter),
				"nodes", "wall", "increments/sec")
			fan := harness.NewTable(
				fmt.Sprintf("Cluster-wide wake fan-out: %d waiters over %d names, one releasing increment per name, time to last wake",
					fanWaiters, names),
				"nodes", "time to last wake")
			for _, nodes := range []int{1, 2, 4} {
				addrs, stop := startClusterNodes(nodes)
				d := clusterThroughput(addrs, names, writers, perWriter)
				rate := float64(writers*perWriter) / d.Seconds()
				thr.Add(harness.I(nodes), harness.Dur(d), harness.F(rate, 0))
				fd := clusterFanout(addrs, names, fanWaiters)
				fan.Add(harness.I(nodes), harness.Dur(fd))
				stop()
			}
			return []*harness.Table{thr, fan}
		},
	})
}
