package experiments

import (
	"monotonic/internal/harness"
	"monotonic/internal/stencil"
	"monotonic/internal/workload"
)

// E5: section 5.1 ragged barrier — the counter-array stencil vs the
// traditional barrier stencil, per-cell and blocked, with and without a
// straggler thread.
func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Section 5.1: ragged barrier (stencil boundary exchange)",
		Paper: "Section 5.1 replaces the two full barriers per time step of a 1-D boundary-exchange " +
			"simulation with an array of counters providing pairwise neighbour synchronization, " +
			"removing the N-way bottleneck and letting threads run ahead of stragglers.",
		Notes: "Both protocols produce bit-identical physics. With threads outnumbering real " +
			"cores, wall time tracks the barrier version closely (typically within ~10%; no " +
			"parallel overlap exists for raggedness to exploit — see E13 for the multiprocessor " +
			"makespan, where it wins); what this table establishes is that the counter protocol's much finer " +
			"synchronization costs little more than the barrier even when it cannot help.",
		Run: func(cfg Config) []*harness.Table {
			cells, steps, reps := 128, 200, 5
			if cfg.Quick {
				cells, steps, reps = 32, 40, 2
			}
			init := stencil.InitialRod(cells)
			want := stencil.RunSequential(init, steps, stencil.Heat)
			equal := func(got []float64) bool {
				for i := range got {
					if got[i] != want[i] {
						return false
					}
				}
				return true
			}

			perCell := harness.NewTable("Per-cell threads (paper's formulation): one thread and one counter per cell",
				"cells", "steps", "skew", "barrier", "counter (ragged)", "ragged vs barrier", "correct")
			for _, sk := range []workload.Skew{workload.Uniform{}, workload.OneSlow{Max: 8}} {
				sk := sk
				bar := harness.Measure(reps, func() { stencil.RunBarrier(init, steps, stencil.Heat, sk) })
				cnt := harness.Measure(reps, func() { stencil.RunCounter(init, steps, stencil.Heat, sk) })
				ok := equal(stencil.RunCounter(init, steps, stencil.Heat, sk)) &&
					equal(stencil.RunBarrier(init, steps, stencil.Heat, sk))
				perCell.Add(harness.I(cells), harness.I(steps), sk.Name(),
					harness.Dur(bar.Median()), harness.Dur(cnt.Median()),
					harness.Ratio(harness.Speedup(bar, cnt)), verdict(ok))
			}

			blocked := harness.NewTable("Blocked decomposition: one thread per block, pairwise counter sync",
				"cells", "steps", "threads", "skew", "barrier", "counter (ragged)", "ragged vs barrier", "correct")
			bigCells, bigSteps := 1024, 400
			if cfg.Quick {
				bigCells, bigSteps = 64, 40
			}
			bigInit := stencil.InitialRod(bigCells)
			bigWant := stencil.RunSequential(bigInit, bigSteps, stencil.Heat)
			bigEqual := func(got []float64) bool {
				for i := range got {
					if got[i] != bigWant[i] {
						return false
					}
				}
				return true
			}
			for _, nt := range []int{4, 8} {
				for _, sk := range []workload.Skew{workload.Uniform{}, workload.OneSlow{Max: 8}, workload.Alternating{Max: 4}} {
					nt, sk := nt, sk
					bar := harness.Measure(reps, func() {
						stencil.RunBarrierBlocked(bigInit, bigSteps, nt, stencil.Heat, sk)
					})
					cnt := harness.Measure(reps, func() {
						stencil.RunCounterBlocked(bigInit, bigSteps, nt, stencil.Heat, sk)
					})
					ok := bigEqual(stencil.RunCounterBlocked(bigInit, bigSteps, nt, stencil.Heat, sk))
					blocked.Add(harness.I(bigCells), harness.I(bigSteps), harness.I(nt), sk.Name(),
						harness.Dur(bar.Median()), harness.Dur(cnt.Median()),
						harness.Ratio(harness.Speedup(bar, cnt)), verdict(ok))
				}
			}
			return []*harness.Table{perCell, blocked}
		},
	})
}
