package experiments

import (
	"monotonic/internal/explore"
	"monotonic/internal/harness"
)

// E8: section 6 — exhaustive interleaving exploration of the paper's
// three programs (plus the split-access variant and the cyclic-wait
// deadlock program).
func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Section 6: determinacy by exhaustive interleaving",
		Paper: "Section 6 claims: the lock program {x=x+1}||{x=x*2} is nondeterministic (a race on " +
			"lock-acquisition order); the counter program with Check(0)/Check(1) is deterministic; " +
			"removing the guard (both Check(0)) restores nondeterminism through concurrent access.",
		Notes: "Exhaustive exploration (all schedules, not samples) proves each claim: the lock " +
			"program reaches exactly {7, 8}; the counter program reaches exactly {8}; the unguarded " +
			"program reaches {7, 8} with atomic statements and additionally loses updates ({4, 6}) " +
			"when the read-modify-write is split. The growth table shows the lock fold's outcome " +
			"set exploding with thread count while the counter fold stays at one.",
		Run: func(cfg Config) []*harness.Table {
			t := harness.NewTable("All schedules of the section 6 programs (x initially 3)",
				"program", "distinct outcomes", "outcomes", "deadlock", "states explored")
			cases := []struct {
				name string
				p    explore.Program
			}{
				{"lock: {x=x+1} || {x=x*2}", explore.LockProgram()},
				{"counter: Check(0);x=x+1;Inc || Check(1);x=x*2;Inc", explore.CounterProgram()},
				{"unguarded: both Check(0), atomic stmts", explore.UnguardedProgram()},
				{"unguarded, split load/store", explore.UnguardedSplitProgram()},
				{"cyclic Check/Inc (deadlocks sequentially)", explore.DeadlockProgram()},
			}
			for _, c := range cases {
				res := explore.MustExplore(c.p)
				outs := ""
				for i, o := range res.OutcomeList() {
					if i > 0 {
						outs += "; "
					}
					outs += o
				}
				if outs == "" {
					outs = "-"
				}
				t.Add(c.name, harness.I(len(res.Outcomes)), outs, verdictBool(res.Deadlock), harness.I(res.States))
			}

			growth := harness.NewTable("Ordered fold x=2x+i: outcome count vs thread count (lock reaches n! orders, counter reaches 1)",
				"threads", "lock outcomes", "counter outcomes")
			max := 5
			if cfg.Quick {
				max = 4
			}
			for n := 2; n <= max; n++ {
				lock := explore.MustExplore(explore.LockAccumulateProgram(n))
				cnt := explore.MustExplore(explore.OrderedAccumulateProgram(n))
				growth.Add(harness.I(n), harness.I(len(lock.Outcomes)), harness.I(len(cnt.Outcomes)))
			}
			return []*harness.Table{t, growth}
		},
	})
}

// E9: section 6 — sequential equivalence: for counter-only guarded
// programs whose sequential execution succeeds, the multithreaded outcome
// set is exactly the sequential outcome.
func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Section 6: sequential equivalence of counter programs",
		Paper: "Section 6: if a counter-only-synchronized program with guarded shared variables " +
			"does not deadlock when executed sequentially (ignoring the multithreaded keyword), " +
			"its multithreaded execution does not deadlock and produces the sequential results.",
		Notes: "For each program, the sequential schedule's outcome equals the complete " +
			"multithreaded outcome set (a singleton), with no reachable deadlock — the theorem's " +
			"conclusion verified over every schedule. The E8 cyclic program shows the " +
			"contrapositive: sequential deadlock predicts multithreaded deadlock.",
		Run: func(cfg Config) []*harness.Table {
			t := harness.NewTable("Sequential execution vs all multithreaded schedules",
				"program", "sequential outcome", "multithreaded outcomes", "equivalent")
			cases := []struct {
				name string
				p    explore.Program
			}{
				{"section 6 counter program", explore.CounterProgram()},
				{"ordered fold, 3 threads", explore.OrderedAccumulateProgram(3)},
				{"ordered fold, 4 threads", explore.OrderedAccumulateProgram(4)},
				{"broadcast skeleton (1 writer, 2 readers)", explore.BroadcastProgram()},
			}
			for _, c := range cases {
				seqVars, seqDeadlock := explore.SequentialOutcome(c.p)
				res := explore.MustExplore(c.p)
				seq := "deadlock"
				if !seqDeadlock {
					seq = renderInt64s(seqVars)
				}
				outs := ""
				for i, o := range res.OutcomeList() {
					if i > 0 {
						outs += "; "
					}
					outs += o
				}
				equiv := !seqDeadlock && !res.Deadlock && len(res.Outcomes) == 1
				if equiv {
					_, equiv = res.Outcomes[renderInt64s(seqVars)]
				}
				t.Add(c.name, seq, outs, verdictBool(equiv))
			}
			return []*harness.Table{t}
		},
	})
}

func renderInt64s(vars []int64) string {
	s := ""
	for i, v := range vars {
		if i > 0 {
			s += " "
		}
		s += "x" + harness.I(i) + "=" + harness.I(int(v))
	}
	return s
}
