package experiments

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"monotonic/counter/remote"
	"monotonic/internal/core"
	"monotonic/internal/harness"
	"monotonic/internal/server"
)

// remoteRTT measures reps Increment→Check round trips against a counter
// behind addr: each iteration publishes one increment and waits for the
// level it establishes, so one sample is one full pipeline-out/wake-back
// exchange.
func remoteRTT(addr string, reps int) harness.Timing {
	cl, err := remote.Dial(addr)
	if err != nil {
		panic("E22: " + err.Error())
	}
	defer cl.Close()
	c := cl.Counter(fmt.Sprintf("e22-rtt-%d", time.Now().UnixNano()))
	level := uint64(0)
	sample := func() {
		level++
		c.Increment(1)
		c.Check(level)
	}
	sample() // warm both sides
	return harness.Measure(reps, sample)
}

// localRTT is the same loop against the in-process sharded engine — the
// floor the wire's cost is compared to.
func localRTT(reps int) harness.Timing {
	c := core.NewSharded()
	level := uint64(0)
	sample := func() {
		level++
		c.Increment(1)
		c.Check(level)
	}
	sample()
	return harness.Measure(reps, sample)
}

// remoteFanout parks waiters remote waits — spread over conns
// connections, all on one level — then times the fan-out from the single
// satisfying Increment to the last wake delivered. It returns the
// fan-out duration plus the goroutine accounting: the process count with
// every wait parked, and the count before any wait was registered. The
// server and every client run in this process, so the delta covers both
// sides of the wire.
func remoteFanout(addr string, conns, waiters int) (d time.Duration, parked, before int) {
	clients := make([]*remote.Client, conns)
	for i := range clients {
		cl, err := remote.Dial(addr)
		if err != nil {
			panic("E22: " + err.Error())
		}
		defer cl.Close()
		clients[i] = cl
	}
	name := fmt.Sprintf("e22-fan-%d", time.Now().UnixNano())
	ctr0 := clients[0].Counter(name)
	ctr0.Increment(1)
	ctr0.Check(1) // settle all machinery into the baseline
	before = runtime.NumGoroutine()

	chans := make([]<-chan error, 0, waiters)
	for i := 0; i < waiters; i++ {
		chans = append(chans, clients[i%conns].Counter(name).CheckChan(2))
	}
	// Fence: a Stats round trip per client travels the same pipeline as
	// its checks, so a reply proves the server registered them all.
	for i := range clients {
		clients[i].Counter(name).Stats()
	}
	parked = runtime.NumGoroutine()

	start := time.Now()
	ctr0.Increment(1) // value 2: satisfies every parked wait at once
	for _, ch := range chans {
		if err := <-ch; err != nil {
			panic("E22: wait resolved with " + err.Error())
		}
	}
	return time.Since(start), parked, before
}

// E22: the counter service over the wire — what synchronization costs
// when the counter moves out of the process, and proof that the server
// keeps the engine's no-goroutine-per-wait discipline at scale.
func init() {
	register(Experiment{
		ID:    "E22",
		Title: "Remote counters: loopback RTT and 1→N wake fan-out without per-wait server goroutines",
		Paper: "Section 7's cost model prices a counter in wakes per satisfied level and storage per " +
			"distinct level, never per waiter. Section 6's determinacy argument rests only on " +
			"monotonicity, which holds just as well when the counter lives in another process — " +
			"and monotonicity is also what makes the wire protocol retry-safe (a re-sent Check " +
			"cannot observe a smaller value; sequence numbers dedup re-sent Increments). This " +
			"experiment prices the move: Increment→Check round trips against a loopback counterd " +
			"versus the in-process engine, and the time for one Increment to wake N waiters spread " +
			"over C connections.",
		Notes: "The server multiplexes every remote wait onto the shared waitlist engine: per " +
			"connection one reader and one writer goroutine, per busy counter one dispatcher " +
			"parked in a single CheckContext on the minimum pending level. The goroutine columns " +
			"assert the bound at run time — parking N waits adds no goroutines beyond that fixed " +
			"overhead (the experiment panics if the count with N waits parked exceeds the " +
			"pre-registration baseline plus a small constant), so a fan-out's cost is frames on " +
			"the wire, not goroutines in the server. RTT rows price the wire itself: a remote " +
			"exchange costs loopback-TCP microseconds against the engine's in-process " +
			"nanoseconds, which is the usual three-orders toll for crossing a socket, not a " +
			"property of the counter.",
		Run: func(cfg Config) []*harness.Table {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic("E22: " + err.Error())
			}
			srv := server.New()
			go srv.Serve(lis)
			defer srv.Close()
			addr := lis.Addr().String()

			rttReps := 3000
			fanouts := []struct{ conns, waiters int }{
				{1, 1000},
				{32, 1000},
				{32, 10000},
				{64, 10000},
			}
			if cfg.Quick {
				rttReps = 300
				fanouts = fanouts[:2]
			}

			rtt := harness.NewTable(
				"Increment→Check round trip, one counter, one session (reps="+harness.I(rttReps)+")",
				"path", "median", "min", "max")
			lt := localRTT(rttReps)
			rt := remoteRTT(addr, rttReps)
			rtt.Add("in-process sharded", harness.Dur(lt.Median()), harness.Dur(lt.Min()), harness.Dur(lt.Max()))
			rtt.Add("remote (loopback TCP)", harness.Dur(rt.Median()), harness.Dur(rt.Min()), harness.Dur(rt.Max()))

			fan := harness.NewTable(
				"1→N wake fan-out: N waits on one level across C connections, one Increment, time to last wake",
				"connections", "waiters", "time to last wake", "goroutines (baseline → N parked)", "added")
			for _, f := range fanouts {
				d, parked, before := remoteFanout(addr, f.conns, f.waiters)
				added := parked - before
				// The structural assertion: N parked waits may add at most
				// one dispatcher goroutine plus scheduler slack — never a
				// goroutine per wait, on either side of the wire.
				if added > 4 {
					panic(fmt.Sprintf(
						"E22: %d waits parked added %d goroutines (baseline %d → %d); per-wait goroutines leaked",
						f.waiters, added, before, parked))
				}
				fan.Add(harness.I(f.conns), harness.I(f.waiters), harness.Dur(d),
					fmt.Sprintf("%d → %d", before, parked), harness.I(added))
			}
			return []*harness.Table{rtt, fan}
		},
	})
}
