package experiments

import (
	"monotonic/internal/harness"
	"monotonic/internal/plate"
	"monotonic/internal/workload"
)

// E16: the ragged barrier in two dimensions ("physical systems in one or
// more dimensions", section 5.1): per-tile counters with four-neighbour
// pairwise synchronization on a heat plate, against the global-barrier
// version.
func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Extension: 2-D ragged barrier (tiled plate, four-neighbour counters)",
		Paper: "Section 5.1 notes the same boundary-exchange structure appears in simulations of " +
			"physical systems in one or more dimensions. This experiment lifts the per-cell " +
			"counter protocol to a tiled 2-D plate: each tile's counter reaching 2t-1/2t plays " +
			"the identical role, against at most four neighbours instead of two.",
		Notes: "Both protocols produce bit-identical fields for every tiling, with and without " +
			"skew. Without enough real cores for the tiles the ragged version costs roughly 2x " +
			"wall time: it pays for halo snapshots and eight counter operations per tile per " +
			"step while no parallel overlap exists to recoup them (the barrier version reads " +
			"neighbours in place). That " +
			"is the honest price of eliminating the global rendezvous; E13's multiprocessor model " +
			"shows where the trade pays off. The table's point here is 2-D protocol correctness " +
			"under every tiling and skew.",
		Run: func(cfg Config) []*harness.Table {
			rows, cols, steps, reps := 130, 130, 100, 5
			if cfg.Quick {
				rows, cols, steps, reps = 34, 34, 20, 2
			}
			init := plate.HotEdges(rows, cols)
			want := plate.RunSequential(init, steps, plate.Heat)

			t := harness.NewTable("Heat plate "+harness.I(rows)+"x"+harness.I(cols)+", "+harness.I(steps)+" steps",
				"tiles", "skew", "barrier", "counter (ragged)", "ragged vs barrier", "correct")
			for _, tiles := range [][2]int{{2, 2}, {4, 4}} {
				for _, sk := range []workload.Skew{workload.Uniform{}, workload.OneSlow{Max: 6}} {
					tiles, sk := tiles, sk
					bar := harness.Measure(reps, func() {
						plate.RunBarrier(init, steps, tiles[0], tiles[1], plate.Heat, sk)
					})
					cnt := harness.Measure(reps, func() {
						plate.RunCounter(init, steps, tiles[0], tiles[1], plate.Heat, sk)
					})
					ok := plate.RunCounter(init, steps, tiles[0], tiles[1], plate.Heat, sk).Equal(want)
					t.Add(harness.I(tiles[0])+"x"+harness.I(tiles[1]), sk.Name(),
						harness.Dur(bar.Median()), harness.Dur(cnt.Median()),
						harness.Ratio(harness.Speedup(bar, cnt)), verdict(ok))
				}
			}
			return []*harness.Table{t}
		},
	})
}
