package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"monotonic/internal/core"
	"monotonic/internal/harness"
)

// satisfiedZeroLocks drives a batch of already-satisfied operations —
// Check, CheckContext under a live and an expired context, zero-timeout
// WaitTimeout — at one implementation with the engine's lock-counting
// probe enabled. It returns the mutex acquisitions they cost and the
// ImmediateChecks delta they produced, asserting both bounds at run
// time: zero acquisitions (engine and stripe mutexes both), and one
// immediate check counted per operation — the fast path is exact, not
// merely fast.
func satisfiedZeroLocks(impl core.Impl, ops int) (locks, immediate, issued uint64) {
	c := core.NewImpl(impl)
	lc := c.(core.LockCounter)
	sp := c.(core.StatsProvider)
	c.Increment(5)
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	before := sp.Stats().ImmediateChecks
	core.SetLockCounting(true)
	defer core.SetLockCounting(false)
	base := lc.LockAcquires()
	for i := 0; i < ops; i++ {
		c.Check(3)
		_ = c.CheckContext(context.Background(), 5)
		_ = c.CheckContext(expired, 4) // satisfied beats cancelled, still lock-free
		core.WaitTimeout(c, 1, 0)
		issued += 4
	}
	locks = lc.LockAcquires() - base
	if locks != 0 {
		panic(fmt.Sprintf("experiments: E25 zero-lock bound violated: %s acquired %d mutexes for %d satisfied checks (want 0)",
			impl, locks, issued))
	}
	immediate = sp.Stats().ImmediateChecks - before
	if immediate != issued {
		panic(fmt.Sprintf("experiments: E25 immediate-check exactness violated: %s counted %d of %d satisfied checks",
			impl, immediate, issued))
	}
	return locks, immediate, issued
}

// registrationThroughput measures Check-registration pressure on one
// level index: workers goroutines each arm and immediately cancel a
// sentinel at a worker-unique never-satisfied level — Check's slow-path
// registration and cancellation drain, without the park. On the
// single-index engine every worker serializes on one mutex; on the
// striped index distinct levels hash to distinct stripes.
func registrationThroughput(c core.Sentineler, workers, opsPer int) float64 {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			level := uint64(1)<<40 + uint64(w+1)<<20
			<-start
			for i := 0; i < opsPer; i++ {
				cancel, armed := c.Sentinel(level, func() {})
				if armed {
					cancel()
				}
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return float64(workers*opsPer) / time.Since(t0).Seconds()
}

// pairedRegistrationThroughput takes the best of trials runs on fresh
// counters for each engine, interleaving the two sides trial by trial.
// Best-of (not mean) is the right statistic for an A/B bound on a
// shared host: scheduler noise only ever subtracts. The interleaving
// matters just as much: running one side's trials as a contiguous block
// lets a load burst that spans the block (another test binary under
// `go test ./...`, say) starve that side alone and skew the ratio,
// while alternating exposes both sides to every noise window so best-of
// can discard the same slow intervals from each.
func pairedRegistrationThroughput(workers, opsPer, trials int) (single, striped float64) {
	for i := 0; i < trials; i++ {
		if v := registrationThroughput(core.NewAtomicStripes(1), workers, opsPer); v > single {
			single = v
		}
		if v := registrationThroughput(core.NewAtomic(), workers, opsPer); v > striped {
			striped = v
		}
	}
	return single, striped
}

// E25: the read side's two bounds after the watermark + striped-index
// change. (1) A satisfied Check is one atomic load: zero mutex
// acquisitions, probe-counted on every registry implementation, with
// ImmediateChecks still exact. (2) Check registration no longer funnels
// through one engine mutex: at GOMAXPROCS=4 the striped index sustains
// at least collapseFloor of the single-index engine's throughput — on a
// multi-core host it should exceed it, but the floor is what a 1-CPU CI
// host can assert deterministically (striping must never cost the
// serialized case its performance; BENCH_8.json records the same A/B at
// full size).
func init() {
	const collapseFloor = 0.70
	register(Experiment{
		ID:    "E25",
		Title: "Read-side scaling: zero-lock satisfied checks and striped Check registration",
		Paper: "Section 7 prices check(C,v) at a suspension only when v exceeds the value; the " +
			"monotonicity argument (section 2) makes a stale read safe on the satisfied side, so a " +
			"satisfied check should cost one atomic load — no lock — and concurrent registrations at " +
			"distinct levels should not contend on a single structure lock.",
		Notes: "Both bounds are asserted at run time (the experiment panics on violation, and the " +
			"quick suite runs it in CI). Every registry implementation completes a satisfied " +
			"Check/CheckContext/WaitTimeout batch with zero probe-counted mutex acquisitions — " +
			"engine and stripe mutexes both — and ImmediateChecks counts exactly one per call, so " +
			"the lock-free path is invisible in the cost model, not just cheap. Registration " +
			"throughput compares the striped level index (NewAtomic) against a single-index engine " +
			"(NewAtomicStripes(1)) at 1, 2, and 4 Ps, best-of-N fresh-counter trials; the asserted " +
			"bound at 4 Ps is the collapse floor (striped >= 0.70x single-index) because this host " +
			"has one CPU — the sweep shape, not a speedup, is the reproducible claim here, and " +
			"BENCH_8.json carries the full-size numbers. The trade is priced honestly: " +
			"publishing the watermark costs the mutex-based impls one seq-cst store per " +
			"Increment (a same-day min-of-10 BenchmarkIncrement A/B put list/heap/broadcast " +
			"at ~16→~24ns; chan ~17→~20ns), while the write-optimized paths hold their " +
			"ground (sharded -2%, fc +2%, atomic +8% from the stripe-minimum sweep) and the " +
			"satisfied-Check side drops ~57% (E11's 1e6-satisfied-check table, ~18→~8ns per " +
			"call on list/heap/chan/broadcast). Counter patterns are Check-heavy, so the " +
			"read side is the right side to buy; write-heavy workloads were already routed " +
			"to sharded, which is unregressed.",
		Run: func(cfg Config) []*harness.Table {
			checkOps, regOps, trials := 5000, 20000, 10
			if cfg.Quick {
				checkOps, regOps, trials = 500, 2000, 5
			}

			t1 := harness.NewTable("Satisfied checks are lock-free and exactly counted",
				"impl", "satisfied checks", "mutex acquisitions", "immediate checks", "verdict")
			for _, impl := range core.Registry() {
				locks, immediate, issued := satisfiedZeroLocks(impl, checkOps)
				t1.Add(string(impl), harness.U(issued), harness.U(locks), harness.U(immediate),
					verdict(locks == 0 && immediate == issued))
			}

			t2 := harness.NewTable(
				fmt.Sprintf("Check-registration throughput: striped vs single-index engine (best of %d)", trials),
				"procs", "single-index ops/s", "striped ops/s", "striped/single", "bound")
			var ratioAt4 float64
			for _, procs := range []int{1, 2, 4} {
				prev := runtime.GOMAXPROCS(procs)
				single, striped := pairedRegistrationThroughput(procs, regOps/procs, trials)
				runtime.GOMAXPROCS(prev)
				ratio := striped / single
				bound := "-"
				if procs == 4 {
					ratioAt4 = ratio
					bound = verdict(ratio >= collapseFloor)
				}
				t2.Add(harness.I(procs), harness.F(single, 0), harness.F(striped, 0),
					fmt.Sprintf("%.2fx", ratio), bound)
			}
			if ratioAt4 < collapseFloor {
				panic(fmt.Sprintf("experiments: E25 registration-scaling bound violated: striped index at %.2fx of single-index throughput at 4 Ps (want >= %.2fx)",
					ratioAt4, collapseFloor))
			}
			return []*harness.Table{t1, t2}
		},
	})
}
