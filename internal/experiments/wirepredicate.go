package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"monotonic/counter"
	"monotonic/counter/remote"
	"monotonic/counter/wait"
	"monotonic/internal/harness"
	"monotonic/internal/server"
)

// startWireNode boots one loopback counterd for E27 and returns the
// server handle (for the dispatcher-entry census) with its address.
func startWireNode() (*server.Server, string, func()) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic("E27: " + err.Error())
	}
	srv := server.New()
	go srv.Serve(lis)
	return srv, lis.Addr().String(), func() { srv.Close() }
}

// quorumSessions parks `sessions` independent client sessions on 8-of-8
// quorums over the SAME eight hosted counters, asserts the server parks
// exactly one dispatcher entry per session (not one per watched
// counter), hammers one already-satisfied member with `churn`
// increments from a separate client — asserting every waiting session
// pays ZERO frames in either direction for them — and then completes
// the quorum, timing first completing increment to last waiter resumed.
func quorumSessions(s *server.Server, addr string, sessions, churn int) (entries int, waiterFrames uint64, release time.Duration) {
	const quorum = 8
	names := make([]string, quorum)
	for i := range names {
		names[i] = fmt.Sprintf("e27-q%d-%d-%d", sessions, time.Now().UnixNano(), i)
	}

	waiters := make([]*remote.Client, sessions)
	var wg sync.WaitGroup
	for w := range waiters {
		cl, err := remote.Dial(addr)
		if err != nil {
			panic("E27: " + err.Error())
		}
		waiters[w] = cl
		cs := make([]counter.Interface, quorum)
		for i, name := range names {
			cs[i] = cl.Counter(name)
		}
		cond := wait.KOfN(cs, quorum, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cond.Wait(context.Background()) // background ctx: never errs
		}()
	}
	defer func() {
		for _, cl := range waiters {
			cl.Close()
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for s.PredicateWaits() < sessions && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	entries = s.PredicateWaits()
	if entries != sessions {
		panic(fmt.Sprintf("experiments: E27 dispatcher-entry bound violated: %d parked entries for %d sessions watching %d counters each (want exactly 1 per session)",
			entries, sessions, quorum))
	}

	inc, err := remote.Dial(addr)
	if err != nil {
		panic("E27: " + err.Error())
	}
	defer inc.Close()

	type frames struct{ sent, recv uint64 }
	before := make([]frames, sessions)
	for w, cl := range waiters {
		before[w].sent, before[w].recv = cl.WireStats()
	}
	member0 := inc.Counter(names[0])
	for i := 0; i < churn; i++ {
		member0.Increment(1)
	}
	member0.Check(uint64(churn)) // fence: every increment applied at the server
	for w, cl := range waiters {
		sent, recv := cl.WireStats()
		waiterFrames += (sent - before[w].sent) + (recv - before[w].recv)
	}
	if waiterFrames != 0 {
		panic(fmt.Sprintf("experiments: E27 zero-round-trip bound violated: waiting sessions paid %d frames for %d non-flipping increments (want 0)",
			waiterFrames, churn))
	}

	// Complete the quorum: members 1..6 first, then time the 8th.
	for _, name := range names[1 : quorum-1] {
		inc.Counter(name).Increment(1)
	}
	settle(1)
	start := time.Now()
	inc.Counter(names[quorum-1]).Increment(1)
	wg.Wait()
	return entries, waiterFrames, time.Since(start)
}

// sumWireCost measures the waiter's frame bill for one sum predicate as
// a second client walks the sum toward the target: under wire v3 the
// predicate evaluates server-side (the walk costs the waiter nothing);
// under v2 every frontier crossing fires a sentinel whose wire-level
// wait the client must re-park. Returns frames paid during the walk,
// frames for the whole arm-to-wake lifecycle, and the release latency.
func sumWireCost(addr string, proto uint64, target, step uint64) (walkFrames, totalFrames uint64, release time.Duration) {
	waiter, err := remote.Dial(addr, remote.WithProtocol(proto))
	if err != nil {
		panic("E27: " + err.Error())
	}
	defer waiter.Close()
	inc, err := remote.Dial(addr)
	if err != nil {
		panic("E27: " + err.Error())
	}
	defer inc.Close()

	na := fmt.Sprintf("e27-s%d-%d-a", proto, time.Now().UnixNano())
	nb := fmt.Sprintf("e27-s%d-%d-b", proto, time.Now().UnixNano())
	base, baseRecv := waiter.WireStats()

	cond := wait.Sum(waiter.Counter(na), waiter.Counter(nb)).AtLeast(target)
	done := make(chan struct{})
	go func() {
		_ = cond.Wait(context.Background())
		close(done)
	}()
	// Let the registration (v3: one frame; v2: per-counter waits) land.
	settle(1)
	time.Sleep(50 * time.Millisecond)

	s0, r0 := waiter.WireStats()
	a := inc.Counter(na)
	for v := step; v < target; v += step {
		a.Increment(step)
	}
	a.Check(target - step) // fence: the walk is fully applied
	time.Sleep(50 * time.Millisecond)
	s1, r1 := waiter.WireStats()
	walkFrames = (s1 - s0) + (r1 - r0)
	if proto >= 3 && walkFrames != 0 {
		panic(fmt.Sprintf("experiments: E27 v3 walk bound violated: %d waiter frames while the sum walked to target-%d (want 0)",
			walkFrames, step))
	}

	start := time.Now()
	a.Increment(step) // sum reaches the target
	<-done
	release = time.Since(start)
	s2, r2 := waiter.WireStats()
	totalFrames = (s2 - base) + (r2 - baseRecv)
	return walkFrames, totalFrames, release
}

// E27: predicate waits over the wire — E24's storage and no-wake bounds
// pushed across the process boundary by the wire v3 OpWaitFor frame.
func init() {
	register(Experiment{
		ID:    "E27",
		Title: "Wire v3 predicate waits: one dispatcher entry per session, zero waiter frames per non-flipping increment",
		Paper: "Section 7 prices a counter in wakes per satisfied level and storage per distinct " +
			"level, and section 8's composite conditions extend the price to monotone " +
			"predicates: N waiters on one predicate over m counters share one sentinel per " +
			"counter (E24 pins it in-process). Across a process boundary the same argument " +
			"prices the *wire*: an increment that cannot flip a predicate should cost the " +
			"waiting client zero frames, and a session's whole predicate should park one " +
			"server-side entry, not one wait per watched counter. This experiment measures " +
			"both against a loopback counterd speaking wire v3.",
		Notes: "The dispatcher-entry census counts server-side predicate registrations across " +
			"all sessions (Server.PredicateWaits): sessions × one 8-counter quorum each must " +
			"park exactly sessions entries — a per-counter design would park 8× that. The " +
			"churn column is the frame bill every waiting session paid (sent + received, " +
			"summed) while a separate client drove 10^4 increments into an already-satisfied " +
			"member: monotone truth cannot regress, so the server's sentinels absorb every " +
			"one and the bill must be zero (asserted at run time, as is the entry census). " +
			"The v2-vs-v3 table walks a two-counter sum to just below its target and counts " +
			"the waiter's frames: under v2 each frontier crossing fires a client sentinel " +
			"that must re-park its wire-level wait (frames grow with crossings); under v3 " +
			"the walk is free and the whole lifecycle costs three frames (register, wake, " +
			"and the incrementer-side fence sharing the session is not counted). Release " +
			"latency is the flip-to-resume interval and should not differ materially — the " +
			"wake path is one frame either way.",
		Run: func(cfg Config) []*harness.Table {
			churn := 10_000
			sessionCounts := []int{1, 8, 32}
			var target, step uint64 = 100_000, 100
			if cfg.Quick {
				churn = 500
				sessionCounts = []int{1, 4}
				target, step = 5_000, 100
			}

			s, addr, stop := startWireNode()
			defer stop()

			ent := harness.NewTable(
				fmt.Sprintf("Server-side quorum census: 8-of-8 quorums, %d non-flipping increments, bounds asserted at run time", churn),
				"sessions", "parked entries", "entries/session", "waiter frames during churn", "release")
			for _, n := range sessionCounts {
				entries, frames, release := quorumSessions(s, addr, n, churn)
				ent.Add(harness.I(n), harness.I(entries), harness.F(float64(entries)/float64(n), 2),
					harness.U(frames), harness.Dur(release))
			}

			wc := harness.NewTable(
				fmt.Sprintf("Waiter wire cost, client-side (v2) vs server-side (v3) evaluation: sum over 2 counters to %d in steps of %d", target, step),
				"protocol", "frames during walk", "frames arm→wake", "release")
			for _, proto := range []uint64{2, 3} {
				walk, total, release := sumWireCost(addr, proto, target, step)
				wc.Add(fmt.Sprintf("v%d", proto), harness.U(walk), harness.U(total), harness.Dur(release))
			}
			return []*harness.Table{ent, wc}
		},
	})
}
