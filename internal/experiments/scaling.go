package experiments

import (
	"fmt"
	"runtime"
	"time"

	"monotonic/internal/core"
	"monotonic/internal/harness"
)

// E23: the GOMAXPROCS scaling matrix. E19 prices the contended increment
// storm at one proc count; this experiment sweeps the same storm across
// GOMAXPROCS ∈ {1, 2, 4} inside a single run, so one table carries each
// implementation's whole scaling curve and the flat-combining design can
// be judged on the regime it exists for — rival incrementers colliding
// on the engine mutex. The counterbench -procs sweep produces the same
// curves for every experiment; this one embeds the sweep so a plain
// single-proc -md run still records it.
func init() {
	register(Experiment{
		ID:    "E23",
		Title: "GOMAXPROCS scaling: contended increment storm across proc counts",
		Paper: "Not in the paper: the section 7 cost model is sequential. Every locked design " +
			"serializes Increment, so adding procs can only add mutex convoying; the sharded " +
			"design shards the update away, and the fc design keeps one value but lets the " +
			"current lock holder fold rival increments published in per-proc combining slots, " +
			"so a blocked rival costs one slot CAS instead of a scheduler round trip through " +
			"the mutex queue.",
		Notes: "Read each row left to right as a scaling curve; the last column is the " +
			"p=4-to-p=1 slowdown (cmd/benchdiff compares these curves between reports). On " +
			"the recording box — one real CPU — the matrix measures oversubscription, and " +
			"the honest result is that flat combining cannot show its win here: sharded " +
			"stays flattest (disjoint stripes), the blocking designs stay within ~1.1-2x " +
			"because parked rivals self-serialize into long uncontended runs, fc's curve sits " +
			"at the flat end of that band (its bounded publisher spin parks before burning a " +
			"timeslice), and the " +
			"share table reads ~0%: a publisher only exists while the lock HOLDER is " +
			"preempted mid-critical-section, which async preemption produces about once per " +
			"10ms on one core, so folds are vanishingly rare. A CPU profile of the p=4 " +
			"storm confirms it — the samples are sync.Mutex lock/unlock plus scheduler work " +
			"(runtime.casgstatus, runtime.schedule); the combining drain never gets hot. " +
			"What fc pays meanwhile is its constant overhead: BenchmarkIncrement puts the " +
			"uncontended locked path at ~27ns vs atomic's ~22ns (the slot-drain load and " +
			"combining tallies; it was 44ns until the steady-state path stopped calling " +
			"runtime.GOMAXPROCS, whose scheduler lock doubled every increment). Combining " +
			"pays exactly when rivals collide with a RUNNING holder, which needs two or " +
			"more real cores — on such a host the share moves off zero and this matrix is " +
			"the regression gate for it; on this one, the GOMAXPROCS=4 race legs keep the " +
			"claim/fold protocol correct while the curves gate the oversubscription cost. " +
			"The publisher spin budget is tunable per counter via SetSpin(active, yields), " +
			"re-tuned with BenchmarkFCSpinTune at -cpu 1,2,4 after the watermark/striping " +
			"change (best-of-3 ns/op for active/yields configs 0/0, 8/2, 32/4, 128/8, " +
			"512/16 — p=1: 24.81/24.73/24.50/24.46/26.06; p=2: 26.35/26.40/25.09/26.79/" +
			"26.14; p=4: 28.84/28.46/28.78/28.81/28.36): all configs sit within host noise " +
			"and the defaults (32, 4) stay — best at p=2, competitive elsewhere, and on one " +
			"CPU a longer spin only burns the timeslice the holder needs.",
		Run: func(cfg Config) []*harness.Table {
			workers, perWorker, reps := 8, 100000, 5
			if cfg.Quick {
				workers, perWorker, reps = 4, 10000, 3
			}
			procs := []int{1, 2, 4}

			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)

			headers := []string{"implementation"}
			for _, p := range procs {
				headers = append(headers, fmt.Sprintf("p=%d", p))
			}
			headers = append(headers, fmt.Sprintf("p=%d vs p=1", procs[len(procs)-1]))
			matrix := harness.NewTable(
				"Contended storm medians across GOMAXPROCS: "+harness.I(workers)+" goroutines x "+
					harness.I(perWorker)+" unit increments",
				headers...)
			for _, impl := range core.Registry() {
				impl := impl
				meds := make([]time.Duration, 0, len(procs))
				row := []string{string(impl)}
				for _, p := range procs {
					runtime.GOMAXPROCS(p)
					tm := harness.Measure(reps, func() {
						incrementStorm(core.NewImpl(impl), workers, perWorker)
					})
					meds = append(meds, tm.Median())
					row = append(row, harness.Dur(tm.Median()))
				}
				row = append(row, harness.Ratio(float64(meds[len(meds)-1])/float64(meds[0])))
				matrix.Add(row...)
			}

			share := harness.NewTable(
				"Mutex-avoidance share: increments that never queued on the engine mutex "+
					"(sharded: stripes; fc: folded from combining slots)",
				append([]string{"implementation"}, headers[1:len(headers)-1]...)...)
			for _, impl := range []core.Impl{core.ImplSharded, core.ImplFC} {
				row := []string{string(impl)}
				for _, p := range procs {
					runtime.GOMAXPROCS(p)
					c := core.NewImpl(impl)
					incrementStorm(c, workers, perWorker)
					s := c.(core.StatsProvider).Stats()
					row = append(row, fmt.Sprintf("%.1f%%", 100*float64(s.FastPathIncrements)/float64(s.Increments)))
				}
				share.Add(row...)
			}
			return []*harness.Table{matrix, share}
		},
	})
}
