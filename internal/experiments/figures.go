package experiments

import (
	"strings"

	"monotonic/internal/core"
	"monotonic/internal/graph"
	"monotonic/internal/harness"
	"monotonic/internal/sthreads"
)

// E1: Figure 1 — the 3-vertex all-pairs shortest-path example.
func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Figure 1: APSP input/output matrices",
		Paper: "Figure 1 gives a 3-vertex weighted digraph (edges 1, 2, 4, -3, one negative) " +
			"with its edge matrix and the path matrix the all-pairs shortest-path problem must produce.",
		Notes: "ShortestPaths1 (sequential Floyd-Warshall) and the counter variant reproduce the " +
			"figure's path matrix exactly, including the negative-weight shortcut path[0][1] = -1 " +
			"via V0->V2->V1.",
		Run: func(cfg Config) []*harness.Table {
			edge := graph.Figure1()
			want := graph.Figure1Paths()
			got := graph.ShortestPaths1(edge)

			t := harness.NewTable("Figure 1 reproduction", "matrix", "row 0", "row 1", "row 2", "verdict")
			addMatrix := func(name string, m graph.Matrix, check string) {
				rows := strings.Split(strings.TrimSpace(m.String()), "\n")
				t.Add(name, rows[0], rows[1], rows[2], check)
			}
			addMatrix("edge (paper input)", edge, "-")
			addMatrix("path (paper output)", want, "-")
			addMatrix("path (ShortestPaths1)", got, verdict(got.Equal(want)))
			cnt := graph.ShortestPaths3(edge, 3, sthreads.Concurrent, nil)
			addMatrix("path (counter, 3 threads)", cnt, verdict(cnt.Equal(want)))
			return []*harness.Table{t}
		},
	})
}

// E2: Figure 2 — the counter structure trace.
func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Figure 2: counter structure after each operation",
		Paper: "Figure 2 draws the internal structure of a counter (value + ordered waiting list of " +
			"{level, count, condition} nodes) after seven operations: construction, Check(5) by T1, " +
			"Check(9) by T2, Check(5) by T3, Increment(7) by T0, then T1 and T3 resuming.",
		Notes: "The reference implementation's Inspect() output matches the figure state-for-state: " +
			"two waiters coalesce on the level-5 node, Increment(7) sets that node's condition while " +
			"level 9 stays unset, and the node is unlinked when its last waiter drains.",
		Run: func(cfg Config) []*harness.Table {
			s := core.NewSim()
			t := harness.NewTable("Figure 2 trace (list implementation)", "step", "operation", "structure")
			snap := func(step, op string) {
				t.Add(step, op, s.Snapshot().String())
			}
			snap("(a)", "construction")
			s.Check(5)
			snap("(b)", "Check(5) by T1")
			s.Check(9)
			snap("(c)", "Check(9) by T2")
			s.Check(5)
			snap("(d)", "Check(5) by T3")
			s.Increment(7)
			snap("(e)", "Increment(7) by T0")
			s.Resume(5)
			snap("(f)", "T1 resumes execution")
			s.Resume(5)
			snap("(g)", "T3 resumes execution")
			return []*harness.Table{t}
		},
	})
}
