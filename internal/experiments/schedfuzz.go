package experiments

import (
	"fmt"

	"monotonic/internal/harness"
	"monotonic/internal/sched"
)

// E18: schedule fuzzing of executable programs. Where E8 explores a
// model's schedules exhaustively, this experiment runs real closures
// under a deterministic cooperative scheduler with seeded random
// schedules — the paper's section 6 development methodology as a testing
// tool: deterministic programs show one outcome across every seed,
// nondeterministic ones show their outcome spread, and cyclic waits are
// reported as deadlocks with reproducible seeds.
func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Section 6 methodology: schedule fuzzing of executable programs",
		Paper: "Section 6's practical payoff is that counter programs can be tested like " +
			"sequential programs. This experiment stress-tests that: each program runs under " +
			"many seeded schedules of a deterministic cooperative scheduler, and the set of " +
			"observed outcomes is tabulated.",
		Notes: "The counter program and the ordered fold produce one outcome across every " +
			"seed; the lock programs spread across their arrival orders; the unguarded program " +
			"exposes lost updates; the cyclic program deadlocks under every schedule, with a " +
			"reproducing seed. Any seed can be replayed exactly, which is the debugging story " +
			"the paper's determinacy argument promises.",
		Run: func(cfg Config) []*harness.Table {
			seeds := uint64(2000)
			if cfg.Quick {
				seeds = 200
			}
			t := harness.NewTable(fmt.Sprintf("Outcomes over %d seeded schedules (x initially 3)", seeds),
				"program", "distinct outcomes", "deadlocks", "example outcomes")
			for _, p := range fuzzPrograms() {
				outcomes := map[int]bool{}
				deadlocks := 0
				for seed := uint64(0); seed < seeds; seed++ {
					x, dl := p.run(seed)
					if dl {
						deadlocks++
						continue
					}
					outcomes[x] = true
				}
				examples := ""
				count := 0
				for x := range outcomes {
					if count > 0 {
						examples += " "
					}
					examples += harness.I(x)
					count++
					if count == 4 {
						examples += " ..."
						break
					}
				}
				if examples == "" {
					examples = "-"
				}
				t.Add(p.name, harness.I(len(outcomes)), harness.I(deadlocks), examples)
			}
			return []*harness.Table{t}
		},
	})
}

type fuzzProgram struct {
	name string
	run  func(seed uint64) (x int, deadlock bool)
}

func fuzzPrograms() []fuzzProgram {
	return []fuzzProgram{
		{"counter: Check(0);x+1;Inc || Check(1);x*2;Inc", func(seed uint64) (int, bool) {
			x := 3
			w := sched.NewWorld()
			c := w.Counter()
			out := w.Run(seed,
				func(t *sched.T) { w.C(c).Check(t, 0); x = x + 1; w.C(c).Increment(t, 1) },
				func(t *sched.T) { w.C(c).Check(t, 1); x = x * 2; w.C(c).Increment(t, 1) },
			)
			return x, out.Deadlock
		}},
		{"lock: {x+1} || {x*2}", func(seed uint64) (int, bool) {
			x := 3
			w := sched.NewWorld()
			m := w.Mutex()
			out := w.Run(seed,
				func(t *sched.T) { w.M(m).Lock(t); x = x + 1; w.M(m).Unlock(t) },
				func(t *sched.T) { w.M(m).Lock(t); x = x * 2; w.M(m).Unlock(t) },
			)
			return x, out.Deadlock
		}},
		{"unguarded split load/store", func(seed uint64) (int, bool) {
			x := 3
			body := func(f func(int) int) func(*sched.T) {
				return func(t *sched.T) {
					v := x
					t.Yield()
					x = f(v)
				}
			}
			out := sched.Run(seed,
				body(func(v int) int { return v + 1 }),
				body(func(v int) int { return v * 2 }),
			)
			return x, out.Deadlock
		}},
		{"ordered fold x=2x+i, 4 threads", func(seed uint64) (int, bool) {
			x := 0
			w := sched.NewWorld()
			c := w.Counter()
			bodies := make([]func(*sched.T), 4)
			for i := range bodies {
				i := i
				bodies[i] = func(t *sched.T) {
					w.C(c).Check(t, uint64(i))
					x = x*2 + i
					w.C(c).Increment(t, 1)
				}
			}
			out := w.Run(seed, bodies...)
			return x, out.Deadlock
		}},
		{"lock fold x=2x+i, 4 threads", func(seed uint64) (int, bool) {
			x := 0
			w := sched.NewWorld()
			m := w.Mutex()
			bodies := make([]func(*sched.T), 4)
			for i := range bodies {
				i := i
				bodies[i] = func(t *sched.T) {
					w.M(m).Lock(t)
					x = x*2 + i
					w.M(m).Unlock(t)
				}
			}
			out := w.Run(seed, bodies...)
			return x, out.Deadlock
		}},
		{"cyclic Check/Inc (always deadlocks)", func(seed uint64) (int, bool) {
			w := sched.NewWorld()
			a, b := w.Counter(), w.Counter()
			out := w.Run(seed,
				func(t *sched.T) { w.C(a).Check(t, 1); w.C(b).Increment(t, 1) },
				func(t *sched.T) { w.C(b).Check(t, 1); w.C(a).Increment(t, 1) },
			)
			return 0, out.Deadlock
		}},
	}
}
