package experiments

import (
	"fmt"

	"monotonic/internal/accumulate"
	"monotonic/internal/harness"
	"monotonic/internal/sthreads"
)

// E6: section 5.2 — mutual exclusion with sequential ordering. The lock
// program is nondeterministic over jittered runs; the counter program
// always produces the bit-exact sequential fold, at the cost of reduced
// concurrency.
func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Section 5.2: ordered accumulation (lock vs counter)",
		Paper: "Section 5.2: accumulating non-associative subresults (floating-point sums, list " +
			"appends) under a lock gives mutual exclusion but nondeterministic order and results; " +
			"replacing the lock pair with Check(i)/Increment(1) adds sequential ordering, trading " +
			"concurrency for determinacy.",
		Notes: "The lock engine returns many distinct sums across jittered runs and only " +
			"occasionally the sequential one; the counter engine returns exactly the sequential " +
			"fold every run. The cost table shows the tradeoff's price is modest here: the ordered " +
			"version is about as fast as the lock version on this workload.",
		Run: func(cfg Config) []*harness.Table {
			n, runs, reps := 48, 200, 5
			if cfg.Quick {
				n, runs, reps = 16, 40, 2
			}
			values := accumulate.SumValues(n, 7)
			want := accumulate.SumSeq(values)

			distinct := func(f func(trial uint64) float64) (int, bool) {
				seen := map[float64]bool{}
				sawSeq := false
				for trial := 0; trial < runs; trial++ {
					got := f(uint64(trial) + 1)
					seen[got] = true
					if got == want {
						sawSeq = true
					}
				}
				return len(seen), sawSeq
			}
			lockDistinct, lockSawSeq := distinct(func(s uint64) float64 {
				return accumulate.SumLock(values, s)
			})
			cntDistinct, cntSawSeq := distinct(func(s uint64) float64 {
				return accumulate.SumCounter(sthreads.Concurrent, values, s)
			})

			det := harness.NewTable(fmt.Sprintf("Float summation determinism (%d threads, %d jittered runs)", n, runs),
				"engine", "distinct results", "matches sequential fold", "deterministic")
			det.Add("lock (ticket)", harness.I(lockDistinct),
				map[bool]string{true: "sometimes", false: "never"}[lockSawSeq],
				verdictBool(lockDistinct == 1))
			det.Add("counter (ordered)", harness.I(cntDistinct),
				map[bool]string{true: "always", false: "never"}[cntSawSeq && cntDistinct == 1],
				verdictBool(cntDistinct == 1))

			perf := harness.NewTable("Accumulation cost (median over runs)",
				"engine", "median", "notes")
			lockT := harness.Measure(reps, func() { accumulate.SumLock(values, 3) })
			cntT := harness.Measure(reps, func() { accumulate.SumCounter(sthreads.Concurrent, values, 3) })
			seqT := harness.Measure(reps, func() { accumulate.SumSeq(values) })
			perf.Add("sequential", harness.Dur(seqT.Median()), "oracle")
			perf.Add("lock", harness.Dur(lockT.Median()), "max concurrency, arrival order")
			perf.Add("counter", harness.Dur(cntT.Median()), "serialized in index order (the determinacy/concurrency tradeoff)")
			return []*harness.Table{det, perf}
		},
	})
}

// verdictBool renders yes/no (distinct from match/MISMATCH used for
// result comparisons).
func verdictBool(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
