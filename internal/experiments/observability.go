package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"monotonic/internal/core"
	"monotonic/internal/harness"
)

// statsScenario drives one fixed workload against c — immediate checks,
// parked waiters spread over distinct levels, then a releasing increment
// storm — and returns once every waiter has resumed. The same scenario
// runs against every implementation so their Stats snapshots are
// directly comparable.
func statsScenario(c core.Interface, waiters, levels int) {
	for i := 0; i < 3; i++ {
		c.Check(0) // satisfied immediately: counted, never blocks
	}
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		lv := uint64(i%levels) + 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Check(lv)
		}()
	}
	// Engine-based implementations expose Suspends, so parking can be
	// awaited exactly instead of guessed with a sleep.
	if p, ok := c.(core.StatsProvider); ok {
		deadline := time.Now().Add(10 * time.Second)
		for p.Stats().Suspends < uint64(waiters) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	} else {
		time.Sleep(50 * time.Millisecond)
	}
	for i := 0; i < levels; i++ {
		c.Increment(1) // one satisfied level per step
	}
	wg.Wait()
}

// perOp converts a loop timing into a per-operation duration.
func perOp(t harness.Timing, iters int) time.Duration {
	return t.Median() / time.Duration(iters)
}

// E21: the unified observability surface — one Stats schema across all
// implementations, and the cost of carrying it on the hot paths.
func init() {
	register(Experiment{
		ID:    "E21",
		Title: "Instrumentation: one Stats schema for every implementation, and its hot-path cost",
		Paper: "Section 7 frames the counter's costs in terms of distinct waited-on levels. This " +
			"experiment checks that the cost model is observable in production at negligible " +
			"price: every implementation reports the same Stats schema, and the probe hook " +
			"costs nothing measurable while disabled.",
		Notes: "(BENCH_4.json; predates the fc design, which reports through the same schema.) " +
			"Table 1 runs one fixed scenario against every registered implementation " +
			"and prints their Stats verbatim: the six level-indexed designs agree on every " +
			"engine-side field (peak 8, satisfied 8, suspends 64, immediate 3, increments 8), " +
			"the chan design reports its 8 wake-ups as channel closes where the others report " +
			"broadcasts, and the broadcast baseline's columns read in its own currency — one " +
			"round node, one satisfied wake round for the whole storm — exactly the herd the " +
			"section 7 design removes. Table 2: with the probe disabled (one atomic pointer " +
			"load) the increment path costs 19ns on the locked designs, 25-26ns on " +
			"atomic/spin, 12ns on the sharded fast path — and benchdiff against BENCH_3 " +
			"(recorded before any of this instrumentation existed) shows every E19 " +
			"increment-storm median within 5% except spin's +5.8%, at this host's run-to-run " +
			"noise floor (a controlled A/B of BenchmarkIncrement between the two commits, " +
			"min-of-10, puts every implementation within +-5% and the sharded fast path at " +
			"parity: the packed residue+count cell makes the fast-path tallies ride the " +
			"existing CAS). A counting probe adds ~7ns per event (1.3-1.4x). Table 3 prices a " +
			"Stats() snapshot at 21-65ns: it takes the engine mutex once, so it is for scrape " +
			"intervals, not inner loops. E20's fan-out rows in the same diff swing +-30% both " +
			"directions between identical binaries — that table is scheduler-dominated whenever " +
			"waiters outnumber real cores, as its own notes record.",
		Run: func(cfg Config) []*harness.Table {
			waiters, levels := 64, 8
			incIters, reps := 200000, 9
			snapIters := 20000
			if cfg.Quick {
				waiters, levels = 24, 4
				incIters, reps = 20000, 3
				snapIters = 2000
			}

			schema := harness.NewTable(
				"Unified Stats after one fixed scenario ("+harness.I(waiters)+" waiters on "+
					harness.I(levels)+" levels, 3 immediate checks, "+harness.I(levels)+" increments)",
				"impl", "peak levels", "satisfied", "suspends", "immediate", "increments",
				"broadcasts", "chan closes")
			for _, impl := range core.Registry() {
				c := core.NewImpl(impl)
				statsScenario(c, waiters, levels)
				s := c.(core.StatsProvider).Stats()
				schema.Add(string(impl), harness.I(s.PeakLevels), harness.U(s.SatisfiedLevels),
					harness.U(s.Suspends), harness.U(s.ImmediateChecks), harness.U(s.Increments),
					harness.U(s.Broadcasts), harness.U(s.ChannelCloses))
			}

			overhead := harness.NewTable(
				"Increment path, no waiters: probe disabled vs counting probe installed ("+
					harness.I(incIters)+" increments/rep, median of "+harness.I(reps)+")",
				"impl", "probe off", "probe on", "on/off")
			for _, impl := range core.Registry() {
				c := core.NewImpl(impl)
				off := perOp(harness.Measure(reps, func() {
					for i := 0; i < incIters; i++ {
						c.Increment(1)
					}
				}), incIters)
				ps, hasProbe := c.(core.ProbeSetter)
				if !hasProbe {
					overhead.Add(string(impl), harness.Dur(off), "n/a", "n/a")
					continue
				}
				var sink atomic.Uint64
				ps.SetProbe(func(core.Event) { sink.Add(1) })
				on := perOp(harness.Measure(reps, func() {
					for i := 0; i < incIters; i++ {
						c.Increment(1)
					}
				}), incIters)
				ps.SetProbe(nil)
				overhead.Add(string(impl), harness.Dur(off), harness.Dur(on),
					harness.Ratio(float64(on)/float64(off)))
			}

			snap := harness.NewTable(
				"Stats() snapshot cost ("+harness.I(snapIters)+" snapshots/rep, median of "+
					harness.I(reps)+")",
				"impl", "per snapshot")
			for _, impl := range core.Registry() {
				c := core.NewImpl(impl)
				statsScenario(c, waiters, levels) // non-trivial internal state
				p := c.(core.StatsProvider)
				d := perOp(harness.Measure(reps, func() {
					for i := 0; i < snapIters; i++ {
						_ = p.Stats()
					}
				}), snapIters)
				snap.Add(string(impl), harness.Dur(d))
			}

			return []*harness.Table{schema, overhead, snap}
		},
	})
}
