package experiments

import (
	"monotonic/internal/core"
	"monotonic/internal/harness"
	"monotonic/internal/wavefront"
	"monotonic/internal/workload"
)

// E14: 2-D wavefront pipelining (extension): the multi-level broadcast —
// every level of one counter consumed in order by the successor band —
// on the canonical alignment kernel, sweeping the synchronization
// granularity like E7 does in one dimension.
func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Extension: 2-D wavefront (sequence alignment) over banded counters",
		Paper: "Not a paper experiment: this extends the section 5.3 broadcast to the classic " +
			"wavefront dependence (cell (i,j) needs (i-1,j), (i,j-1), (i-1,j-1)). One counter per " +
			"row band broadcasts column-block completion to the band below — every level of the " +
			"counter is consumed, in order, demonstrating the dynamically varying queue set at " +
			"application scale.",
		Notes: "All band/block configurations produce the sequential edit distance exactly. The " +
			"granularity sweep mirrors E7's shape in two dimensions: tiny blocks drown in counter " +
			"operations, large blocks amortize them, and the curve flattens once each block's " +
			"compute dominates a counter operation.",
		Run: func(cfg Config) []*harness.Table {
			an, bn, reps := 2000, 2000, 5
			if cfg.Quick {
				an, bn, reps = 300, 300, 2
			}
			rng := workload.NewRNG(17)
			a := randomDNA(rng, an)
			b := randomDNA(rng, bn)
			want := wavefront.EditDistanceSeq(a, b, wavefront.DefaultCosts)

			t := harness.NewTable("Edit distance of two random length-"+harness.I(an)+" sequences (4 bands)",
				"blockCols", "median", "correct")
			blockSet := []int{1, 8, 64, 256, 1024}
			if cfg.Quick {
				blockSet = []int{1, 16, 128}
			}
			for _, blk := range blockSet {
				blk := blk
				var got int
				tm := harness.Measure(reps, func() {
					got = wavefront.EditDistance(a, b, wavefront.DefaultCosts, 4, blk, core.ImplList)
				})
				t.Add(harness.I(blk), harness.Dur(tm.Median()), verdict(got == want))
			}

			bandsT := harness.NewTable("Band-count sweep (blockCols=64)",
				"bands", "median", "correct")
			bandSet := []int{1, 2, 4, 8, 16}
			if cfg.Quick {
				bandSet = []int{1, 4}
			}
			for _, bands := range bandSet {
				bands := bands
				var got int
				tm := harness.Measure(reps, func() {
					got = wavefront.EditDistance(a, b, wavefront.DefaultCosts, bands, 64, core.ImplList)
				})
				bandsT.Add(harness.I(bands), harness.Dur(tm.Median()), verdict(got == want))
			}
			return []*harness.Table{t, bandsT}
		},
	})
}

func randomDNA(rng *workload.RNG, n int) string {
	const alphabet = "acgt"
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = alphabet[rng.Intn(4)]
	}
	return string(buf)
}
