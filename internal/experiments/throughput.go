package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"monotonic/internal/core"
	"monotonic/internal/harness"
)

// incrementStorm runs workers goroutines, each issuing perWorker unit
// increments against c, and returns once all have finished.
func incrementStorm(c core.Interface, workers, perWorker int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Increment(1)
			}
		}()
	}
	wg.Wait()
}

// opsPerSec renders an increments-per-second cell.
func opsPerSec(ops int, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fM/s", float64(ops)/d.Seconds()/1e6)
}

// E19: increment throughput — the write-heavy regime. The section 7 cost
// model prices Check/Increment by distinct waited-on levels, but a
// single-mutex Increment still serializes every update even when nobody
// waits. The sharded design's waiter-gated striped fast path is the fix;
// this experiment is the benchmark trajectory's headline number
// (BENCH_2.json and the CI bench-smoke job record it).
func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Increment throughput: waiter-gated striped fast path vs locked designs",
		Paper: "Not in the paper: the section 7 cost model makes operation cost proportional to " +
			"distinct waited-on levels, yet every locked design serializes Increment even with no " +
			"waiters at all. The sharded implementation gates a GOMAXPROCS-striped lock-free " +
			"increment path on \"are there waiters?\", paying the exact locked path only while " +
			"someone waits.",
		Notes: "With no waiters the sharded counter's increments are one CAS on a private cache " +
			"line, so it leads every locked design at any proc count (no scheduler round trips), " +
			"and the gap widens as GOMAXPROCS grows — the per-proc curves live in the " +
			"counterbench/v2 sweep (BENCH_6.json) and E23. The fc design instead keeps the " +
			"single value but lets the lock holder fold rivals' published deltas, trading " +
			"sharded's flush cost for combining. With a waiter parked the gate forces the exact " +
			"locked path and sharded tracks the atomic/list cost — the fast path is bought only " +
			"when its absence of waiters makes it safe.",
		Run: func(cfg Config) []*harness.Table {
			workers, perWorker, reps := 8, 100000, 5
			if cfg.Quick {
				workers, perWorker, reps = 4, 10000, 3
			}
			ops := workers * perWorker

			noWait := harness.NewTable("No waiters: "+harness.I(workers)+" goroutines x "+
				harness.I(perWorker)+" unit increments",
				"implementation", "median", "increments/sec", "vs list")
			var base harness.Timing
			for _, impl := range core.Registry() {
				impl := impl
				tm := harness.Measure(reps, func() {
					incrementStorm(core.NewImpl(impl), workers, perWorker)
				})
				if impl == core.ImplList {
					base = tm
					noWait.Add(string(impl), harness.Dur(tm.Median()), opsPerSec(ops, tm.Median()), "1.00x")
					continue
				}
				noWait.Add(string(impl), harness.Dur(tm.Median()), opsPerSec(ops, tm.Median()),
					harness.Ratio(harness.Speedup(base, tm)))
			}

			gated := harness.NewTable("One parked waiter (sharded gate raised): same storm",
				"implementation", "median", "increments/sec", "vs list")
			var gatedBase harness.Timing
			for _, impl := range core.Registry() {
				impl := impl
				tm := harness.Measure(reps, func() {
					c := core.NewImpl(impl)
					ctx, cancel := context.WithCancel(context.Background())
					parked := make(chan struct{})
					done := make(chan struct{})
					go func() {
						close(parked)
						c.CheckContext(ctx, 1<<62)
						close(done)
					}()
					<-parked
					time.Sleep(time.Millisecond) // let the waiter suspend
					incrementStorm(c, workers, perWorker)
					cancel()
					<-done
				})
				if impl == core.ImplList {
					gatedBase = tm
					gated.Add(string(impl), harness.Dur(tm.Median()), opsPerSec(ops, tm.Median()), "1.00x")
					continue
				}
				gated.Add(string(impl), harness.Dur(tm.Median()), opsPerSec(ops, tm.Median()),
					harness.Ratio(harness.Speedup(gatedBase, tm)))
			}
			return []*harness.Table{noWait, gated}
		},
	})
}
