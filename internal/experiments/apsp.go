package experiments

import (
	"monotonic/internal/graph"
	"monotonic/internal/harness"
	"monotonic/internal/sthreads"
	"monotonic/internal/workload"
)

// E3: the four section 4 programs agree on random graphs.
func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Section 4: all APSP variants agree",
		Paper: "Sections 4.2-4.5 present four programs for the same problem: sequential " +
			"Floyd-Warshall, a barrier version, a condition-variable-array version, and the " +
			"counter version; all must compute the same path matrix.",
		Notes: "On random graphs with negative weights (and no negative cycles), every variant at " +
			"every thread count equals the sequential result, which in turn equals an independent " +
			"Bellman-Ford oracle.",
		Run: func(cfg Config) []*harness.Table {
			sizes := []int{32, 64, 128}
			threads := []int{1, 2, 4, 8}
			if cfg.Quick {
				sizes = []int{16, 32}
				threads = []int{1, 3}
			}
			t := harness.NewTable("Variant agreement on random negative-weight graphs",
				"N", "threads", "barrier", "condvar-array", "counter", "vs Bellman-Ford")
			for _, n := range sizes {
				edge := graph.RandomNegative(n, 0.35, 15, 6, uint64(n))
				want := graph.ShortestPaths1(edge)
				bf, _ := graph.AllPairsBellmanFord(edge)
				for _, nt := range threads {
					b := graph.ShortestPaths2(edge, nt, sthreads.Concurrent, nil)
					cv := graph.ShortestPaths3CV(edge, nt, sthreads.Concurrent, nil)
					cn := graph.ShortestPaths3(edge, nt, sthreads.Concurrent, nil)
					t.Add(harness.I(n), harness.I(nt),
						verdict(b.Equal(want)), verdict(cv.Equal(want)), verdict(cn.Equal(want)),
						verdict(want.Equal(bf)))
				}
			}
			return []*harness.Table{t}
		},
	})
}

// E4: section 4's performance claim — the ragged (condvar/counter)
// programs beat the barrier program, most visibly under load imbalance,
// and the single counter matches the N condition variables without
// allocating N objects.
func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Section 4: APSP synchronization cost (barrier vs condvar array vs counter)",
		Paper: "Section 4 argues the barrier program suffers an N-way synchronization bottleneck " +
			"and load-imbalance delays, the condvar-array program avoids them at the cost of N " +
			"synchronization objects, and the counter program matches the condvar program with a " +
			"single object.",
		Notes: "The counter variant tracks the condvar-array variant closely (within a few percent " +
			"in every row) while allocating one object instead of N — the paper's equivalence claim. " +
			"With fewer real cores than threads the parallel variants serialize to the same total work, so " +
			"barrier-vs-ragged wall time is near 1x here; the multiprocessor form of the claim is " +
			"measured in E13 on the makespan model, where the counter dataflow wins decisively.",
		Run: func(cfg Config) []*harness.Table {
			n := 192
			reps := 5
			threads := []int{2, 4, 8}
			if cfg.Quick {
				n = 48
				reps = 2
				threads = []int{4}
			}
			edge := graph.Random(n, 0.35, 20, 42)
			skews := []workload.Skew{workload.Uniform{}, workload.OneSlow{Max: 4}}

			t := harness.NewTable("APSP median wall time (N="+harness.I(n)+")",
				"threads", "skew", "sequential", "barrier", "condvar-array", "counter",
				"counter vs barrier")
			for _, nt := range threads {
				for _, sk := range skews {
					sk := sk
					seq := harness.Measure(reps, func() { graph.ShortestPaths1(edge) })
					bar := harness.Measure(reps, func() {
						graph.ShortestPaths2(edge, nt, sthreads.Concurrent, sk)
					})
					cv := harness.Measure(reps, func() {
						graph.ShortestPaths3CV(edge, nt, sthreads.Concurrent, sk)
					})
					cn := harness.Measure(reps, func() {
						graph.ShortestPaths3(edge, nt, sthreads.Concurrent, sk)
					})
					t.Add(harness.I(nt), sk.Name(),
						harness.Dur(seq.Median()), harness.Dur(bar.Median()),
						harness.Dur(cv.Median()), harness.Dur(cn.Median()),
						harness.Ratio(harness.Speedup(bar, cn)))
				}
			}
			return []*harness.Table{t}
		},
	})
}
