// Package experiments implements every reproduction experiment E1-E27
// from DESIGN.md as a named, runnable unit producing harness tables. The
// cmd/counterbench binary runs them; EXPERIMENTS.md records their output.
//
// The paper (IPPS 2000) reports no machine-measured numbers — its
// evaluation is worked examples, patterns, and complexity claims — so
// each experiment regenerates the corresponding figure, listing
// behaviour, or claim as a measured table whose *shape* must match the
// paper's argument.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"monotonic/internal/harness"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks problem sizes so the full suite runs in seconds
	// (used by tests); the default sizes are for reported runs.
	Quick bool
}

// Experiment is one reproducible unit.
type Experiment struct {
	ID    string // "E1".."E27"
	Title string
	// Paper states what the paper claims or shows (the target).
	Paper string
	// Notes interprets the measured tables against the claim.
	Notes string
	Run   func(cfg Config) []*harness.Table
}

// registry is populated by the per-experiment files' init functions.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID (E1, E2, ... E27).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAndPrint runs the experiment, writes its tables to w, and returns
// them (e.g. for CSV export).
func RunAndPrint(w io.Writer, e Experiment, cfg Config) []*harness.Table {
	fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
	tables := e.Run(cfg)
	for _, t := range tables {
		t.Fprint(w)
	}
	return tables
}

// RunAndPrintMarkdown runs the experiment and writes a full EXPERIMENTS.md
// section — the paper's claim, the measured tables, and the
// interpretation — returning the tables.
func RunAndPrintMarkdown(w io.Writer, e Experiment, cfg Config) []*harness.Table {
	fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
	if e.Paper != "" {
		fmt.Fprintf(w, "**Paper:** %s\n\n", e.Paper)
	}
	tables := e.Run(cfg)
	for _, t := range tables {
		t.Fprint(w)
	}
	if e.Notes != "" {
		fmt.Fprintf(w, "**Measured:** %s\n\n", e.Notes)
	}
	return tables
}

// verdict renders a pass/fail cell.
func verdict(ok bool) string {
	if ok {
		return "match"
	}
	return "MISMATCH"
}
