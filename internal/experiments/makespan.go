package experiments

import (
	"monotonic/internal/harness"
	"monotonic/internal/makespan"
	"monotonic/internal/workload"
)

// E13: multiprocessor makespan model. Wall-clock comparisons (E4, E5)
// can only show parallel overlap when the host has as many real cores as
// worker threads; below that the total work serializes under every
// discipline. This experiment substitutes
// a discrete-event model of P processors (DESIGN.md substitution table)
// and measures the paper's actual performance claim — under per-step work
// variation, a ragged barrier's local dependencies beat a full barrier's
// global ones, and the APSP counter dataflow beats per-iteration
// barriers.
func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Multiprocessor makespan model: ragged vs full barrier (simulated P CPUs)",
		Paper: "Sections 4 and 5.1 claim counters' local dependencies beat global barriers on a " +
			"multiprocessor: barriers serialize every step on the slowest thread, while ragged " +
			"synchronization lets delays average out. A host short of real cores cannot show the " +
			"overlap in wall time (raising GOMAXPROCS only oversubscribes), so this claim is " +
			"measured on a discrete-event model of P processors (DESIGN.md substitution).",
		Notes: "With no work variation the disciplines tie (nothing to exploit). Under per-task " +
			"noise, raggedness wins and the advantage grows with both thread count and variance " +
			"(Lubachevsky's classical result); the APSP counter dataflow stays near the ideal " +
			"critical path while the barrier pays the per-iteration maximum, reaching >1.6x at 16 " +
			"threads. A static straggler (one-slow skew) dominates both disciplines equally — " +
			"raggedness buys nothing there, as expected, since the critical path runs through the " +
			"slow thread either way.",
		Run: func(cfg Config) []*harness.Table {
			steps := 1000
			if cfg.Quick {
				steps = 100
			}

			stencilT := harness.NewTable("Stencil (section 5.1) makespan, mean task = 10 units",
				"threads", "noise", "skew", "barrier", "ragged counter", "ragged vs barrier")
			for _, threads := range []int{4, 16, 64} {
				for _, tc := range []struct {
					noise float64
					skew  workload.Skew
				}{
					{0.0, workload.Uniform{}},
					{0.5, workload.Uniform{}},
					{0.9, workload.Uniform{}},
					{0.5, workload.OneSlow{Max: 3}},
				} {
					w := makespan.NoisyWork(threads, steps, 10, tc.skew, tc.noise, uint64(threads)*7+1)
					b := makespan.Barrier(threads, steps, w)
					r := makespan.Ragged(threads, steps, w)
					stencilT.Add(harness.I(threads), harness.F(tc.noise, 1), tc.skew.Name(),
						harness.F(b, 0), harness.F(r, 0), harness.Ratio(b/r))
				}
			}

			apspT := harness.NewTable("APSP (section 4) makespan: barrier per iteration vs counter dataflow",
				"threads", "noise", "barrier", "counter dataflow", "dataflow vs barrier")
			for _, threads := range []int{4, 8, 16} {
				for _, noise := range []float64{0.0, 0.5, 0.9} {
					w := makespan.NoisyWork(threads, steps, 10, workload.Uniform{}, noise, uint64(threads)*13+3)
					b := makespan.APSPBarrier(threads, steps, w)
					d := makespan.APSPDataflow(threads, steps, w, makespan.BlockOwner(steps, threads))
					apspT.Add(harness.I(threads), harness.F(noise, 1),
						harness.F(b, 0), harness.F(d, 0), harness.Ratio(b/d))
				}
			}
			return []*harness.Table{stencilT, apspT}
		},
	})
}
