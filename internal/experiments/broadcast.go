package experiments

import (
	"monotonic/internal/broadcast"
	"monotonic/internal/harness"
)

// E7: section 5.3 — single-writer multiple-reader broadcast, sweeping the
// synchronization granularity (blockSize) for writer and readers. The
// paper's claim: per-item synchronization is too expensive when items are
// cheap, and blocking amortizes it; different threads may choose
// different granularities freely.
func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Section 5.3: single-writer multiple-reader broadcast, blockSize sweep",
		Paper: "Section 5.3: one counter synchronizes a writer with any number of independent " +
			"readers of the whole sequence; per-item synchronization may be too expensive for " +
			"cheap items, so writer and each reader can block at their own granularity, chosen " +
			"independently.",
		Notes: "Every reader sees the exact sequence at every granularity mix. The sweep shows the " +
			"paper's tuning claim: per-item synchronization costs several times more than blocked " +
			"synchronization, and the benefit saturates once the block amortizes the counter " +
			"operations (the increments column tracks cost almost perfectly).",
		Run: func(cfg Config) []*harness.Table {
			items, readers, reps := 20000, 4, 5
			blockSizes := []int{1, 4, 16, 64, 256, 1024}
			if cfg.Quick {
				items, readers, reps = 2000, 2, 2
				blockSizes = []int{1, 16, 256}
			}
			want := broadcast.ExpectedChecksum(items)

			sweep := harness.NewTable("Uniform blockSize sweep (items="+harness.I(items)+", readers="+harness.I(readers)+")",
				"blockSize", "median", "increments", "suspended checks", "correct")
			for _, bs := range blockSizes {
				bs := bs
				blocks := make([]int, readers)
				for i := range blocks {
					blocks[i] = bs
				}
				var last broadcast.Result
				tm := harness.Measure(reps, func() {
					last = broadcast.Run(broadcast.Config{
						Items: items, WriterBlock: bs, ReaderBlocks: blocks,
					})
				})
				ok := true
				for _, s := range last.ReaderSums {
					ok = ok && s == want
				}
				sweep.Add(harness.I(bs), harness.Dur(tm.Median()),
					harness.U(last.Stats.Increments), harness.U(last.Stats.Suspends), verdict(ok))
			}

			mixed := harness.NewTable("Per-thread granularities (writer and each reader choose independently)",
				"writerBlock", "readerBlocks", "median", "correct")
			mixes := []struct {
				wb  int
				rbs []int
			}{
				{1, []int{1, 32, 1024, 20000}},
				{64, []int{1, 7, 64, 512}},
				{1024, []int{1024, 1, 128, 16}},
			}
			if cfg.Quick {
				mixes = mixes[:1]
				mixes[0].rbs = []int{1, 32}
			}
			for _, mix := range mixes {
				mix := mix
				var last broadcast.Result
				tm := harness.Measure(reps, func() {
					last = broadcast.Run(broadcast.Config{
						Items: items, WriterBlock: mix.wb, ReaderBlocks: mix.rbs,
					})
				})
				ok := true
				for _, s := range last.ReaderSums {
					ok = ok && s == want
				}
				mixed.Add(harness.I(mix.wb), fmtInts(mix.rbs), harness.Dur(tm.Median()), verdict(ok))
			}
			return []*harness.Table{sweep, mixed}
		},
	})
}

func fmtInts(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "/"
		}
		s += harness.I(x)
	}
	return s
}
