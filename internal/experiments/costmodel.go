package experiments

import (
	"sync"
	"time"

	"monotonic/internal/core"
	"monotonic/internal/harness"
)

// suspendWaiters parks `waiters` goroutines on c spread over `levels`
// distinct levels and returns once all are suspended, with a releaser.
func suspendWaiters(c core.Interface, waiters, levels int) (release func(), wait func()) {
	var wg sync.WaitGroup
	started := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		lv := uint64(i%levels) + 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			c.Check(lv)
		}()
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	time.Sleep(20 * time.Millisecond)
	return func() { c.Increment(uint64(levels)) }, wg.Wait
}

// E10: section 7 cost claims — live structure and wake work scale with
// the number of distinct levels, not the number of waiting threads; the
// naive single-condvar baseline scales with waiters.
func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Section 7: storage and wake cost scale with distinct levels, not waiters",
		Paper: "Section 7: the counter's storage and the time complexity of its operations are " +
			"proportional to the number of different levels on which threads are waiting, not to " +
			"the total number of waiting threads.",
		Notes: "With 512 suspended goroutines, peak node count and broadcast count equal the " +
			"distinct-level count exactly at every point of the sweep. The baseline table " +
			"quantifies what the design avoids: a single-condvar counter performs waiters x " +
			"increments wakes (a thundering herd), growing linearly with waiters even though only " +
			"one level is in play.",
		Run: func(cfg Config) []*harness.Table {
			waiters := 512
			levelSet := []int{1, 4, 16, 64, 256}
			if cfg.Quick {
				waiters = 64
				levelSet = []int{1, 8, 32}
			}
			t := harness.NewTable("Reference (list) implementation with "+harness.I(waiters)+" waiting goroutines",
				"distinct levels", "peak list nodes", "condvar broadcasts", "suspended checks")
			for _, levels := range levelSet {
				c := core.New()
				release, wait := suspendWaiters(c, waiters, levels)
				release()
				wait()
				st := c.Stats()
				t.Add(harness.I(levels), harness.I(st.PeakLevels), harness.U(st.Broadcasts), harness.U(st.Suspends))
			}

			herd := harness.NewTable("Naive single-condvar baseline: wakes grow with waiters x increments",
				"waiters", "increments before satisfy", "total waiter wakes", "per-level design would wake")
			herdWaiters := []int{16, 64, 256}
			if cfg.Quick {
				herdWaiters = []int{8, 32}
			}
			for _, w := range herdWaiters {
				w := w
				c := core.NewBroadcast()
				var wg sync.WaitGroup
				started := make(chan struct{}, w)
				for i := 0; i < w; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						started <- struct{}{}
						c.Check(10)
					}()
				}
				for i := 0; i < w; i++ {
					<-started
				}
				time.Sleep(20 * time.Millisecond)
				for i := 0; i < 10; i++ {
					c.Increment(1)
					time.Sleep(2 * time.Millisecond) // let waiters recheck
				}
				wg.Wait()
				herd.Add(harness.I(w), "10", harness.U(c.Wakes()), harness.I(w))
			}
			return []*harness.Table{t, herd}
		},
	})
}

// E11: implementation ablation — list vs heap vs chan vs naive broadcast
// vs atomic fast path, on a mixed Check/Increment microworkload.
func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Ablation: counter implementations on a mixed workload",
		Paper: "Not in the paper: an ablation of the section 7 design decisions — sorted list vs " +
			"min-heap waiter index, condvar broadcast vs channel close, and a lock-free fast path " +
			"for already-satisfied Checks (plus a spin-then-block hybrid).",
		Notes: "The heap and list designs are equivalent at realistic level counts (the list's O(L) " +
			"insert does not bite until L is large); the channel design pays for allocation; the " +
			"naive broadcast baseline is slowest under many waiters. The fast-path table is the " +
			"decisive one: satisfied Checks — the overwhelmingly common case in dataflow code — are " +
			"severalfold (6-10x here) cheaper with one atomic load than with a mutex round trip.",
		Run: func(cfg Config) []*harness.Table {
			checkers, perChecker, incs, reps := 8, 400, 3200, 5
			if cfg.Quick {
				checkers, perChecker, incs, reps = 4, 60, 240, 2
			}
			run := func(impl core.Impl) func() {
				return func() {
					c := core.NewImpl(impl)
					var wg sync.WaitGroup
					for t := 0; t < checkers; t++ {
						wg.Add(1)
						go func(t int) {
							defer wg.Done()
							for i := 0; i < perChecker; i++ {
								// Staggered levels: each checker sweeps its own
								// residue class, creating many distinct levels.
								c.Check(uint64(i*checkers + t))
							}
						}(t)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < incs; i++ {
							c.Increment(1)
						}
					}()
					wg.Wait()
				}
			}
			t := harness.NewTable("Mixed workload: "+harness.I(checkers)+" checkers x "+harness.I(perChecker)+
				" staggered levels, "+harness.I(incs)+" unit increments",
				"implementation", "median", "vs list")
			base := harness.Measure(reps, run(core.ImplList))
			t.Add(string(core.ImplList), harness.Dur(base.Median()), "1.00x")
			for _, impl := range core.Impls[1:] {
				tm := harness.Measure(reps, run(impl))
				// >1.00x means this implementation is faster than list.
				t.Add(string(impl), harness.Dur(tm.Median()), harness.Ratio(harness.Speedup(base, tm)))
			}

			fast := harness.NewTable("Satisfied-Check fast path (level always already reached)",
				"implementation", "median for 1e6 satisfied checks")
			n := 1000000
			if cfg.Quick {
				n = 100000
			}
			for _, impl := range core.Impls {
				impl := impl
				c := core.NewImpl(impl)
				c.Increment(1 << 40)
				tm := harness.Measure(reps, func() {
					for i := 0; i < n; i++ {
						c.Check(uint64(i % 1000))
					}
				})
				fast.Add(string(impl), harness.Dur(tm.Median()))
			}
			return []*harness.Table{t, fast}
		},
	})
}
