package server

import (
	"fmt"

	"monotonic/internal/predicate"
	"monotonic/internal/wire"
)

// Server-side predicate waits: the wire v3 OpWaitFor frame mounts the
// internal/predicate sentinel engine directly on the hosted counters.
// One frame parks ONE entry per session predicate — a predicate.Cond
// armed via Arm (no goroutine) whose sentinels sit at pigeonhole
// frontiers on the counters' own waitlists, exactly as in-process waits
// park. A k-of-n quorum that used to cost the client one wire-level
// wait per watched counter per frontier move now costs one frame out,
// one wake back, and zero client round trips for every increment that
// cannot flip the predicate — the server's sentinels absorb them.

// predWait is one parked OpWaitFor registration.
type predWait struct {
	id   uint64
	cond *predicate.Cond // set before publication, read only by the reader goroutine
	// cancel tears down the armed Cond callback; nil until the handler
	// finishes arming. dead marks a teardown that raced the arming —
	// whoever sets cancel second runs it. Both guarded by conn.waitMu.
	cancel func() bool
	dead   bool
}

// handleWaitFor executes one OpWaitFor frame: validate, build the
// predicate over the hosted counters, and arm a callback that wakes the
// client when it flips. An already-satisfied predicate wakes
// immediately without parking anything.
func (c *conn) handleWaitFor(f *wire.Frame) error {
	if c.version < 3 {
		return fmt.Errorf("server: waitfor from protocol v%d client", c.version)
	}
	n := len(f.Watch)
	var pred predicate.Pred
	switch f.Pred {
	case wire.PredSum:
		pred = predicate.SumAtLeast(f.Target)
	case wire.PredThreshold:
		if f.K < 1 || f.K > uint64(n) {
			return fmt.Errorf("server: waitfor threshold k=%d over %d counters", f.K, n)
		}
		levels := make([]uint64, n)
		for i := range f.Watch {
			levels[i] = f.Watch[i].Level
		}
		pred = predicate.Thresholds(levels, int(f.K))
	default:
		return fmt.Errorf("server: unknown predicate kind %d", f.Pred)
	}
	cs := make([]predicate.Counter, n)
	for i := range f.Watch {
		h, err := c.hosted(f.Watch[i].Name)
		if err != nil {
			return err
		}
		cs[i] = h.c
	}

	// Publish the entry before arming so a racing teardown can see it;
	// the id is claimed across both wait tables.
	cond := predicate.NewCond(pred, cs...)
	pw := &predWait{id: f.ID, cond: cond}
	c.waitMu.Lock()
	_, dupW := c.waits[f.ID]
	_, dupP := c.predWaits[f.ID]
	if dupW || dupP {
		c.waitMu.Unlock()
		return fmt.Errorf("server: duplicate wait id %d", f.ID)
	}
	c.predWaits[f.ID] = pw
	c.waitMu.Unlock()

	id := f.ID
	cancel, armed := cond.Arm(func() {
		// Runs under the Cond's lock on the satisfying goroutine: drop
		// the entry and enqueue the wake — both leaf locks, no blocking.
		c.waitMu.Lock()
		delete(c.predWaits, id)
		c.waitMu.Unlock()
		c.send(&wire.Frame{Op: wire.OpWake, ID: id})
	})
	if !armed {
		// Already satisfied: answer straight away, nothing parks.
		c.waitMu.Lock()
		delete(c.predWaits, id)
		c.waitMu.Unlock()
		c.send(&wire.Frame{Op: wire.OpWake, ID: id})
		return nil
	}
	c.waitMu.Lock()
	if pw.dead {
		// Teardown swept the table between publish and arm: unwind.
		c.waitMu.Unlock()
		cancel()
		return nil
	}
	pw.cancel = cancel
	c.waitMu.Unlock()
	return nil
}

// handleWaitForCancel executes one OpWaitForCancel frame. Satisfied
// beats cancelled on the wire exactly as in-process: if the wake
// already fired (or fires while we race), the client gets OpWake, not
// OpCancelled, and treats its predicate as satisfied.
func (c *conn) handleWaitForCancel(f *wire.Frame) error {
	c.waitMu.Lock()
	pw := c.predWaits[f.ID]
	var cancel func() bool
	if pw != nil {
		cancel = pw.cancel
	}
	c.waitMu.Unlock()
	if pw == nil || cancel == nil {
		return nil // already resolved; the wake frame answers the race
	}
	// Satisfied beats cancelled, evaluated NOW: this connection's
	// increments are applied in frame order, so a pipelined
	// increment-then-cancel sees the flip here even while the sentinel
	// kick is still in flight. Poll settles the Cond, which runs the
	// armed callback and enqueues the wake.
	if pw.cond.Poll() {
		return nil
	}
	if cancel() {
		c.waitMu.Lock()
		delete(c.predWaits, f.ID)
		c.waitMu.Unlock()
		c.send(&wire.Frame{Op: wire.OpCancelled, ID: f.ID})
	}
	return nil
}

// dropPredWaits cancels every parked predicate wait during connection
// teardown. Called with no locks held; entries still mid-arming are
// marked dead so the arming handler unwinds them itself.
func (c *conn) dropPredWaits() {
	c.waitMu.Lock()
	pending := make([]*predWait, 0, len(c.predWaits))
	for _, pw := range c.predWaits {
		pw.dead = true
		pending = append(pending, pw)
	}
	c.predWaits = make(map[uint64]*predWait)
	c.waitMu.Unlock()
	for _, pw := range pending {
		if pw.cancel != nil {
			pw.cancel()
		}
	}
}

// PredicateWaits returns the number of predicate waits currently parked
// across all connections — the "one entry per session predicate" bound
// E27 and the countertest battery assert at run time.
func (s *Server) PredicateWaits() int {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	n := 0
	for _, c := range conns {
		c.waitMu.Lock()
		n += len(c.predWaits)
		c.waitMu.Unlock()
	}
	return n
}
