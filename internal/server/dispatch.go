package server

import (
	"container/heap"
	"context"

	"monotonic/internal/core"
)

// dispatcher multiplexes every remote wait on one hosted counter onto a
// single parked goroutine, mirroring PR 1's discipline one level up: the
// in-process engine refuses to spawn a goroutine per CheckContext call,
// and the server refuses to spawn one per wire-level wait. Pending waits
// live in a min-heap by level; at most one goroutine per counter runs
// run(), parked in CheckContext on the lowest pending level. When that
// level is satisfied the engine wakes it once (the paper's one-wake-per-
// level cost unit), and it drains every wait the new value covers in one
// pass — a wake storm of N remote waiters costs the server one resume
// plus N queued frames, not N goroutines.
//
// Registering a wait below the current minimum (or cancelling the
// minimum itself) interrupts the parked CheckContext through its context
// so the dispatcher can re-arm at the new minimum; the engine's
// cancellation path guarantees the abandoned park leaves nothing behind.
type dispatcher struct {
	c core.Interface

	mu      chan struct{} // 1-buffered mutex; see lock/unlock
	heap    waiterHeap
	running bool
	// interrupt cancels the context the run goroutine is currently (or
	// about to be) parked on; nil while not parked. Guarded by mu.
	interrupt context.CancelFunc
}

// A plain sync.Mutex would do, but a channel mutex keeps the lock
// acquisition pattern identical between add/remove/drain and makes the
// "never hold conn queue locks while taking d.mu" ordering auditable at
// the call sites: lock() is the only entry point.
func newDispatcher(c core.Interface) *dispatcher {
	d := &dispatcher{c: c, mu: make(chan struct{}, 1)}
	d.mu <- struct{}{}
	return d
}

func (d *dispatcher) lock()   { <-d.mu }
func (d *dispatcher) unlock() { d.mu <- struct{}{} }

// waiter is one outstanding remote Check. done flips exactly once, under
// the dispatcher lock, when the wait is resolved (woken, cancelled, or
// its connection torn down); the flip decides every wake/cancel race.
type waiter struct {
	level uint64
	id    uint64
	conn  *conn
	host  *hosted
	idx   int // heap slot, maintained by waiterHeap
	done  bool
}

// add registers w, resolving it immediately when the value already
// satisfies the level (the remote fast path: no dispatcher goroutine is
// started for an already-satisfied check). Value() is the counter's
// atomic watermark, so the satisfied branch holds only the dispatcher
// lock — the counter's engine mutex is never nested inside it (it used
// to be, for the mutex-guarded Value implementations).
func (d *dispatcher) add(w *waiter) {
	d.lock()
	if w.done {
		// Connection teardown raced the registration; nothing to resolve.
		d.unlock()
		return
	}
	if w.level <= d.c.Value() {
		w.done = true
		d.unlock()
		w.conn.resolveWake(w)
		return
	}
	heap.Push(&d.heap, w)
	if !d.running {
		d.running = true
		go d.run()
	} else if d.heap[0] == w && d.interrupt != nil {
		// New minimum below the parked level: re-arm.
		d.interrupt()
	}
	d.unlock()
}

// remove deregisters w (cancel frame or connection teardown) and
// reports whether the wait was still pending — false means a wake
// already resolved it and is on (or through) the wire.
func (d *dispatcher) remove(w *waiter) bool {
	d.lock()
	if w.done {
		d.unlock()
		return false
	}
	w.done = true
	if w.idx >= 0 { // idx -1: teardown raced the registration before add
		wasMin := w.idx == 0
		heap.Remove(&d.heap, w.idx)
		if wasMin && d.interrupt != nil {
			// The parked level may no longer be the minimum (or the heap
			// may be empty); wake the run goroutine so it re-arms or
			// retires.
			d.interrupt()
		}
	}
	d.unlock()
	return true
}

// run is the dispatcher goroutine: drain every wait the current value
// covers, then park on the minimum pending level. It exits when the
// heap empties, so an idle counter costs the server zero goroutines.
func (d *dispatcher) run() {
	for {
		d.lock()
		v := d.c.Value()
		for len(d.heap) > 0 && d.heap[0].level <= v {
			w := heap.Pop(&d.heap).(*waiter)
			w.done = true
			w.conn.resolveWake(w)
		}
		if len(d.heap) == 0 {
			d.running = false
			d.interrupt = nil
			d.unlock()
			return
		}
		min := d.heap[0].level
		ctx, cancel := context.WithCancel(context.Background())
		d.interrupt = cancel
		d.unlock()
		// Parks on min's stripe of the striped level index (or the
		// engine list, per implementation); an interrupt (new lower
		// minimum, cancelled minimum) returns early and the next loop
		// iteration re-arms — on the new minimum's stripe, so the
		// dispatcher's single park tracks the per-stripe minima without
		// ever scanning them. Either way no goroutine is left behind.
		_ = d.c.CheckContext(ctx, min)
		cancel()
	}
}

// pending reports the number of unresolved waits — the server half of
// Reset's misuse check.
func (d *dispatcher) pending() int {
	d.lock()
	n := len(d.heap)
	d.unlock()
	return n
}

// idle reports whether the run goroutine has fully retired; Reset
// requires it, since a parked dispatcher is a suspended goroutine the
// in-process Reset would panic on.
func (d *dispatcher) idle() bool {
	d.lock()
	ok := !d.running
	d.unlock()
	return ok
}

// waiterHeap is a min-heap of pending waits by level (ties broken by
// registration id so drain order is deterministic).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].level != h[j].level {
		return h[i].level < h[j].level
	}
	return h[i].id < h[j].id
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.idx = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	w.idx = -1
	return w
}
