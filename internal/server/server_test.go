package server

import (
	"bufio"
	"net"
	"runtime"
	"testing"
	"time"

	"monotonic/internal/wire"
)

// Protocol-level tests: a raw TCP client speaking wire frames, so the
// server's contract is pinned independently of the counter/remote
// client implementation.

type rawClient struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	go s.Serve(lis)
	t.Cleanup(func() { s.Close() })
	return s, lis.Addr().String()
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawClient{t: t, nc: nc, br: bufio.NewReader(nc)}
}

func (c *rawClient) send(frames ...*wire.Frame) {
	c.t.Helper()
	var buf []byte
	for _, f := range frames {
		buf = wire.Append(buf, f)
	}
	if _, err := c.nc.Write(buf); err != nil {
		c.t.Fatalf("write: %v", err)
	}
}

// recv reads one frame, failing the test after a 5s stall.
func (c *rawClient) recv() wire.Frame {
	c.t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := wire.Read(c.br)
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	return f
}

// recvOp skips frames until one with the wanted opcode arrives (acks and
// wakes interleave freely in the write batching).
func (c *rawClient) recvOp(op wire.Op) wire.Frame {
	c.t.Helper()
	for {
		f := c.recv()
		if f.Op == op {
			return f
		}
	}
}

// hello performs the handshake, resuming the given session (0 = fresh),
// and returns the welcome frame.
func (c *rawClient) hello(session uint64) wire.Frame {
	c.t.Helper()
	c.send(&wire.Frame{Op: wire.OpHello, Session: session, Seq: wire.Version})
	f := c.recv()
	if f.Op != wire.OpWelcome {
		c.t.Fatalf("handshake reply %s, want welcome", f.Op)
	}
	return f
}

func TestHandshakeIncrementWake(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)
	w := c.hello(0)
	if w.Session == 0 {
		t.Fatal("welcome carries session 0")
	}

	// A check below a value the same pipeline establishes resolves: the
	// server applies a session's frames in order.
	c.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "a", Seq: 1, Amount: 5},
		&wire.Frame{Op: wire.OpCheck, Name: "a", ID: 1, Level: 5},
		&wire.Frame{Op: wire.OpCheck, Name: "a", ID: 2, Level: 3},
	)
	got := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		f := c.recvOp(wire.OpWake)
		got[f.ID] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("wakes for ids %v, want 1 and 2", got)
	}

	// A blocked check resolves when a later increment satisfies it.
	c.send(&wire.Frame{Op: wire.OpCheck, Name: "a", ID: 3, Level: 8})
	c.send(&wire.Frame{Op: wire.OpIncrement, Name: "a", Seq: 2, Amount: 3})
	if f := c.recvOp(wire.OpWake); f.ID != 3 || f.Level != 8 {
		t.Fatalf("wake = id %d level %d, want id 3 level 8", f.ID, f.Level)
	}
}

func TestIncrementAckAndDedup(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)
	c.hello(0)
	c.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "d", Seq: 1, Amount: 1},
		&wire.Frame{Op: wire.OpIncrement, Name: "d", Seq: 2, Amount: 1},
	)
	if f := c.recvOp(wire.OpIncAck); f.Seq != 2 {
		t.Fatalf("ack seq = %d, want 2", f.Seq)
	}
	// Retransmits (seq <= lastSeq) must be dropped: after re-sending
	// both, a check at 3 must stay pending (cancel confirms) while a
	// fresh seq 3 then satisfies it.
	c.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "d", Seq: 1, Amount: 1},
		&wire.Frame{Op: wire.OpIncrement, Name: "d", Seq: 2, Amount: 1},
		&wire.Frame{Op: wire.OpCheck, Name: "d", ID: 1, Level: 3},
		&wire.Frame{Op: wire.OpCancel, ID: 1},
	)
	if f := c.recv(); f.Op != wire.OpCancelled || f.ID != 1 {
		t.Fatalf("got %s id %d, want cancelled id 1 (dup increments must not apply)", f.Op, f.ID)
	}
	c.send(
		&wire.Frame{Op: wire.OpCheck, Name: "d", ID: 2, Level: 3},
		&wire.Frame{Op: wire.OpIncrement, Name: "d", Seq: 3, Amount: 1},
	)
	if f := c.recvOp(wire.OpWake); f.ID != 2 {
		t.Fatalf("wake id = %d, want 2", f.ID)
	}
}

func TestSessionResume(t *testing.T) {
	_, addr := startServer(t)
	c1 := dialRaw(t, addr)
	w := c1.hello(0)
	c1.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "r", Seq: 1, Amount: 10},
		&wire.Frame{Op: wire.OpIncrement, Name: "r", Seq: 2, Amount: 10},
	)
	c1.recvOp(wire.OpIncAck)
	c1.nc.Close()

	// Resume: the welcome reports the applied watermark, and re-sent
	// tail frames below it are dropped.
	c2 := dialRaw(t, addr)
	w2 := c2.hello(w.Session)
	if w2.Session != w.Session {
		t.Fatalf("resumed session = %d, want %d", w2.Session, w.Session)
	}
	if w2.Seq != 2 {
		t.Fatalf("resumed lastSeq = %d, want 2", w2.Seq)
	}
	c2.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "r", Seq: 2, Amount: 10}, // retransmit: dropped
		&wire.Frame{Op: wire.OpIncrement, Name: "r", Seq: 3, Amount: 1},
		&wire.Frame{Op: wire.OpCheck, Name: "r", ID: 1, Level: 21},
		&wire.Frame{Op: wire.OpCheck, Name: "r", ID: 2, Level: 22}, // would pass had seq 2 double-applied
		&wire.Frame{Op: wire.OpCancel, ID: 2},
	)
	sawWake1 := false
	for i := 0; i < 2; i++ {
		switch f := c2.recv(); {
		case f.Op == wire.OpWake && f.ID == 1:
			sawWake1 = true
		case f.Op == wire.OpCancelled && f.ID == 2:
		case f.Op == wire.OpIncAck:
			i-- // ack frames interleave; not one of the two answers
		default:
			t.Fatalf("unexpected %s id %d", f.Op, f.ID)
		}
	}
	if !sawWake1 {
		t.Fatal("check at 21 never woke: retransmitted increment was lost instead of deduped")
	}
}

func TestResetRefusedUnderWaiters(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)
	c.hello(0)
	c.send(&wire.Frame{Op: wire.OpCheck, Name: "z", ID: 1, Level: 100})
	// The wait must be registered before Reset sees it; same pipeline, so
	// ordering is guaranteed by the reader loop.
	c.send(&wire.Frame{Op: wire.OpReset, Name: "z", ID: 2})
	if f := c.recv(); f.Op != wire.OpError || f.ID != 2 {
		t.Fatalf("reset under a waiter = %s, want error", f.Op)
	}
	c.send(&wire.Frame{Op: wire.OpCancel, ID: 1})
	if f := c.recv(); f.Op != wire.OpCancelled {
		t.Fatalf("cancel reply = %s", f.Op)
	}
	// The dispatcher may still be retiring; the server says retry, and a
	// retry loop must converge to ResetOK.
	deadline := time.Now().Add(5 * time.Second)
	for id := uint64(3); ; id++ {
		c.send(&wire.Frame{Op: wire.OpReset, Name: "z", ID: id})
		f := c.recv()
		if f.Op == wire.OpResetOK {
			break
		}
		if f.Op != wire.OpError {
			t.Fatalf("reset retry reply = %s", f.Op)
		}
		if time.Now().After(deadline) {
			t.Fatalf("reset never succeeded after cancel: %s", f.Msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIncrementOverflowReported(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)
	c.hello(0)
	c.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "o", Seq: 1, Amount: ^uint64(0) - 5},
		&wire.Frame{Op: wire.OpIncrement, Name: "o", Seq: 2, Amount: 100},
	)
	f := c.recvOp(wire.OpError)
	if f.ID != 2 {
		t.Fatalf("overflow reported on seq %d, want 2", f.ID)
	}
	// The connection survives a caller bug: the counter still answers.
	c.send(&wire.Frame{Op: wire.OpCheck, Name: "o", ID: 1, Level: 1})
	if f := c.recvOp(wire.OpWake); f.ID != 1 {
		t.Fatalf("wake id = %d", f.ID)
	}
}

func TestStatsReply(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)
	c.hello(0)
	c.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "s", Seq: 1, Amount: 4},
		&wire.Frame{Op: wire.OpCheck, Name: "s", ID: 1, Level: 4},
	)
	c.recvOp(wire.OpWake)
	c.send(&wire.Frame{Op: wire.OpStats, Name: "s", ID: 2})
	f := c.recvOp(wire.OpStatsReply)
	if f.ID != 2 {
		t.Fatalf("stats reply id = %d, want 2", f.ID)
	}
	if f.Stats.Increments != 1 {
		t.Fatalf("stats Increments = %d, want 1", f.Stats.Increments)
	}
}

func TestProtocolErrorsCloseConnection(t *testing.T) {
	for name, frames := range map[string][]*wire.Frame{
		"before-hello": {{Op: wire.OpIncrement, Name: "x", Seq: 1, Amount: 1}},
		"bad-version":  {{Op: wire.OpHello, Seq: wire.Version + 1}},
		"server-opcode": {
			{Op: wire.OpHello, Seq: wire.Version},
			{Op: wire.OpWake, ID: 1},
		},
		"dup-wait-id": {
			{Op: wire.OpHello, Seq: wire.Version},
			{Op: wire.OpCheck, Name: "x", ID: 7, Level: 100},
			{Op: wire.OpCheck, Name: "x", ID: 7, Level: 200},
		},
	} {
		t.Run(name, func(t *testing.T) {
			_, addr := startServer(t)
			c := dialRaw(t, addr)
			c.send(frames...)
			c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			for {
				if _, err := wire.Read(c.br); err != nil {
					return // connection closed, as required
				}
			}
		})
	}
}

// TestNoGoroutinePerWait pins the server's structural guarantee directly:
// hundreds of blocked waits on one connection may cost at most the
// connection pair plus one dispatcher goroutine per busy counter.
func TestNoGoroutinePerWait(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)
	c.hello(0)
	// Two counters busy at once, many pending waits on each.
	const waits = 300
	baseline := runtime.NumGoroutine()
	for i := 0; i < waits; i++ {
		name := "g1"
		if i%2 == 0 {
			name = "g2"
		}
		c.send(&wire.Frame{Op: wire.OpCheck, Name: name, ID: uint64(i + 1), Level: uint64(1000 + i)})
	}
	// Wait until both dispatchers have seen the registrations (send a
	// fence increment+check and await its wake: the reader is in-order).
	c.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "g1", Seq: 1, Amount: 1},
		&wire.Frame{Op: wire.OpCheck, Name: "g1", ID: waits + 1, Level: 1},
	)
	c.recvOp(wire.OpWake)
	if n := runtime.NumGoroutine(); n > baseline+4 {
		t.Fatalf("goroutines = %d with %d pending waits (baseline %d): per-wait goroutines leaked",
			n, waits, baseline)
	}
	// One increment wakes every entitled waiter.
	c.send(&wire.Frame{Op: wire.OpIncrement, Name: "g1", Seq: 2, Amount: 5000})
	c.send(&wire.Frame{Op: wire.OpIncrement, Name: "g2", Seq: 3, Amount: 5000})
	for got := 0; got < waits; {
		if f := c.recv(); f.Op == wire.OpWake && f.ID <= waits {
			got++
		}
	}
}
