package server

import (
	"testing"
	"time"

	"monotonic/internal/wire"
)

// helloV performs the handshake at an explicit protocol version.
func (c *rawClient) helloV(version, session uint64) wire.Frame {
	c.t.Helper()
	c.send(&wire.Frame{Op: wire.OpHello, Session: session, Seq: version})
	f := c.recv()
	if f.Op != wire.OpWelcome {
		c.t.Fatalf("handshake reply %s, want welcome", f.Op)
	}
	return f
}

func TestNegotiation(t *testing.T) {
	_, addr := startServer(t)

	// A v3 hello is welcomed with the feature bits.
	c3 := dialRaw(t, addr)
	if w := c3.helloV(3, 0); w.Features&wire.FeatureWaitFor == 0 {
		t.Fatalf("v3 welcome features = %#x, want FeatureWaitFor set", w.Features)
	}

	// A v2 hello is welcomed with a v2-shaped frame: no feature bits.
	c2 := dialRaw(t, addr)
	if w := c2.helloV(2, 0); w.Features != 0 {
		t.Fatalf("v2 welcome features = %#x, want 0", w.Features)
	}

	// A v2 session still does ordinary counter work against the v3 server.
	c2.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "neg", Seq: 1, Amount: 2},
		&wire.Frame{Op: wire.OpCheck, Name: "neg", ID: 1, Level: 2},
	)
	if f := c2.recvOp(wire.OpWake); f.ID != 1 {
		t.Fatalf("wake id = %d, want 1", f.ID)
	}

	// Out-of-range versions are rejected (connection closes).
	for _, v := range []uint64{1, wire.Version + 1} {
		bad := dialRaw(t, addr)
		bad.send(&wire.Frame{Op: wire.OpHello, Seq: v})
		bad.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := wire.Read(bad.br); err == nil {
			t.Fatalf("version %d accepted", v)
		}
	}
}

func TestWaitForQuorumParksOneEntry(t *testing.T) {
	s, addr := startServer(t)
	c := dialRaw(t, addr)
	c.helloV(3, 0)

	// 2-of-3 quorum at level 2. Nothing satisfied yet.
	c.send(&wire.Frame{Op: wire.OpWaitFor, ID: 7, Pred: wire.PredThreshold, K: 2, Watch: []wire.Watch{
		{Name: "q0", Level: 2}, {Name: "q1", Level: 2}, {Name: "q2", Level: 2},
	}})

	deadline := time.Now().Add(5 * time.Second)
	for s.PredicateWaits() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.PredicateWaits(); n != 1 {
		t.Fatalf("PredicateWaits = %d, want 1 (one entry per session predicate)", n)
	}

	// One counter reaching its level does not flip a 2-of-3 quorum.
	c.send(&wire.Frame{Op: wire.OpIncrement, Name: "q0", Seq: 1, Amount: 2})
	c.recvOp(wire.OpIncAck)
	if n := s.PredicateWaits(); n != 1 {
		t.Fatalf("PredicateWaits after first arrival = %d, want 1", n)
	}

	// The second arrival flips it: one wake, entry gone.
	c.send(&wire.Frame{Op: wire.OpIncrement, Name: "q2", Seq: 2, Amount: 5})
	if f := c.recvOp(wire.OpWake); f.ID != 7 {
		t.Fatalf("wake id = %d, want 7", f.ID)
	}
	for s.PredicateWaits() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.PredicateWaits(); n != 0 {
		t.Fatalf("PredicateWaits after wake = %d, want 0", n)
	}
}

func TestWaitForSumAlreadySatisfied(t *testing.T) {
	s, addr := startServer(t)
	c := dialRaw(t, addr)
	c.helloV(3, 0)
	c.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "s0", Seq: 1, Amount: 6},
		&wire.Frame{Op: wire.OpIncrement, Name: "s1", Seq: 2, Amount: 6},
		&wire.Frame{Op: wire.OpWaitFor, ID: 1, Pred: wire.PredSum, Target: 10, Watch: []wire.Watch{
			{Name: "s0"}, {Name: "s1"},
		}},
	)
	if f := c.recvOp(wire.OpWake); f.ID != 1 {
		t.Fatalf("wake id = %d, want 1", f.ID)
	}
	if n := s.PredicateWaits(); n != 0 {
		t.Fatalf("PredicateWaits = %d, want 0 (satisfied immediately)", n)
	}
}

func TestWaitForCancel(t *testing.T) {
	s, addr := startServer(t)
	c := dialRaw(t, addr)
	c.helloV(3, 0)
	c.send(&wire.Frame{Op: wire.OpWaitFor, ID: 9, Pred: wire.PredSum, Target: 100, Watch: []wire.Watch{
		{Name: "x"}, {Name: "y"},
	}})
	c.send(&wire.Frame{Op: wire.OpWaitForCancel, ID: 9})
	if f := c.recvOp(wire.OpCancelled); f.ID != 9 {
		t.Fatalf("cancelled id = %d, want 9", f.ID)
	}
	if n := s.PredicateWaits(); n != 0 {
		t.Fatalf("PredicateWaits after cancel = %d, want 0", n)
	}
	// The counters carry no leftover sentinels: Reset succeeds.
	c.send(&wire.Frame{Op: wire.OpReset, Name: "x", ID: 10})
	if f := c.recvOp(wire.OpResetOK); f.ID != 10 {
		t.Fatalf("reset reply id = %d", f.ID)
	}
}

func TestWaitForSatisfiedBeatsCancelled(t *testing.T) {
	// Satisfy and cancel in the same pipelined burst: the wake must win
	// and no OpCancelled may follow for that id.
	_, addr := startServer(t)
	c := dialRaw(t, addr)
	c.helloV(3, 0)
	c.send(&wire.Frame{Op: wire.OpWaitFor, ID: 4, Pred: wire.PredThreshold, K: 1, Watch: []wire.Watch{
		{Name: "race", Level: 1},
	}})
	c.send(
		&wire.Frame{Op: wire.OpIncrement, Name: "race", Seq: 1, Amount: 1},
		&wire.Frame{Op: wire.OpWaitForCancel, ID: 4},
		&wire.Frame{Op: wire.OpStats, Name: "race", ID: 5}, // fence: answered after the cancel
	)
	sawWake := false
	for {
		f := c.recv()
		switch f.Op {
		case wire.OpWake:
			sawWake = true
		case wire.OpCancelled:
			t.Fatal("cancelled frame for a satisfied predicate wait")
		case wire.OpStatsReply:
			if !sawWake {
				t.Fatal("no wake before the post-cancel fence")
			}
			return
		}
	}
}

func TestWaitForProtocolErrors(t *testing.T) {
	_, addr := startServer(t)

	// v2 sessions may not send WaitFor.
	c2 := dialRaw(t, addr)
	c2.helloV(2, 0)
	c2.send(&wire.Frame{Op: wire.OpWaitFor, ID: 1, Pred: wire.PredSum, Target: 1, Watch: []wire.Watch{{Name: "a"}}})
	c2.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.Read(c2.br); err == nil {
		t.Fatal("v2 waitfor accepted")
	}

	// Bad quorum size closes the connection.
	c3 := dialRaw(t, addr)
	c3.helloV(3, 0)
	c3.send(&wire.Frame{Op: wire.OpWaitFor, ID: 1, Pred: wire.PredThreshold, K: 3, Watch: []wire.Watch{
		{Name: "a", Level: 1}, {Name: "b", Level: 1},
	}})
	c3.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.Read(c3.br); err == nil {
		t.Fatal("k > n waitfor accepted")
	}

	// Unknown predicate kind closes the connection.
	c4 := dialRaw(t, addr)
	c4.helloV(3, 0)
	c4.send(&wire.Frame{Op: wire.OpWaitFor, ID: 1, Pred: 99, Watch: []wire.Watch{{Name: "a"}}})
	c4.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.Read(c4.br); err == nil {
		t.Fatal("unknown predicate kind accepted")
	}

	// Duplicate wait id (across check and predicate tables) closes.
	c5 := dialRaw(t, addr)
	c5.helloV(3, 0)
	c5.send(
		&wire.Frame{Op: wire.OpCheck, Name: "a", ID: 2, Level: 10},
		&wire.Frame{Op: wire.OpWaitFor, ID: 2, Pred: wire.PredSum, Target: 5, Watch: []wire.Watch{{Name: "a"}}},
	)
	c5.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := wire.Read(c5.br); err != nil {
			return // closed, as required
		}
	}
}

func TestWaitForTeardownUnparks(t *testing.T) {
	// A connection dying with a parked predicate wait must leave no
	// entry and no sentinels behind.
	s, addr := startServer(t)
	c := dialRaw(t, addr)
	c.helloV(3, 0)
	c.send(&wire.Frame{Op: wire.OpWaitFor, ID: 1, Pred: wire.PredSum, Target: 100, Watch: []wire.Watch{
		{Name: "td0"}, {Name: "td1"},
	}})
	deadline := time.Now().Add(5 * time.Second)
	for s.PredicateWaits() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.nc.Close()
	for s.PredicateWaits() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.PredicateWaits(); n != 0 {
		t.Fatalf("PredicateWaits after teardown = %d, want 0", n)
	}
	// Fresh connection can Reset the counters: nothing is parked on them.
	c2 := dialRaw(t, addr)
	c2.helloV(3, 0)
	deadline = time.Now().Add(5 * time.Second)
	for {
		c2.send(&wire.Frame{Op: wire.OpReset, Name: "td0", ID: 1})
		f := c2.recv()
		if f.Op == wire.OpResetOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reset after teardown kept failing: %+v", f)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
