// Package server implements counterd: a TCP server hosting named
// monotonic counters that any number of processes synchronize on over
// the internal/wire protocol. Counters are backed by the sharded engine
// (internal/core.ShardedCounter), so the in-process semantics —
// monotonicity, wake-by-level, satisfied-beats-cancelled, Reset's misuse
// panic — are the wire semantics; the server adds only sessions (for
// retry-safe increment dedup) and the goroutine discipline:
//
//   - one reader goroutine per connection, multiplexing any number of
//     outstanding Check waits onto the per-counter dispatcher
//     (dispatch.go) — never a goroutine per blocked wait;
//   - one writer goroutine per connection, coalescing every queued
//     frame (wakes, acks, replies) into batched flushes;
//   - one transient dispatcher goroutine per counter with pending
//     waits, parked in a single CheckContext on the minimum level.
//
// A fan-out of N remote waiters on C connections therefore costs the
// server 2C+1 long-lived goroutines plus at most one per busy counter,
// independent of N — experiment E22 asserts exactly this bound.
//
// Wire v3 adds server-side predicate waits (predwait.go): an OpWaitFor
// frame parks one predicate.Cond entry per session predicate, armed via
// the engine's goroutine-free callback hook, with sentinels at
// pigeonhole frontiers on the hosted counters — a quorum over N
// counters costs one parked entry and zero client round trips per
// non-flipping increment (experiment E27 asserts both bounds). v2
// clients still connect and evaluate predicates client-side.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"

	"monotonic/internal/core"
	"monotonic/internal/wire"
)

// ackEvery bounds how many increments a connection applies before the
// server acknowledges even if the read buffer never drains, so a
// client pipelining a long burst can trim its resend queue.
const ackEvery = 1024

// Server hosts named counters. The zero value is not usable; call New.
type Server struct {
	epoch    uint64 // boot identity, sent in every Welcome; see Epoch
	mu       sync.Mutex
	counters map[string]*hosted
	sessions map[uint64]*session
	nextSess uint64
	conns    map[*conn]struct{}
	lis      net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// hosted is one named counter plus its wait dispatcher.
type hosted struct {
	name string
	c    *core.ShardedCounter
	d    *dispatcher
}

// session carries the per-client state that survives reconnects: the
// highest applied increment sequence, which is what makes re-sending an
// unacknowledged tail safe (duplicates are dropped, monotonicity does
// the rest).
type session struct {
	mu      sync.Mutex
	lastSeq uint64
}

// New returns a server with no counters and no sessions. Each server
// instance draws a fresh nonzero boot epoch: hosted state (counter
// values, session dedup tables) lives and dies with the instance, so
// the epoch is the wire-visible name for "the state you resumed into".
func New() *Server {
	epoch := rand.Uint64()
	for epoch == 0 { // zero is the client's "never connected" sentinel
		epoch = rand.Uint64()
	}
	return &Server{
		epoch:    epoch,
		counters: make(map[string]*hosted),
		sessions: make(map[uint64]*session),
		conns:    make(map[*conn]struct{}),
	}
}

// Epoch returns the instance's boot epoch — the session-resume identity
// sent in every Welcome. A client that reconnects and receives a
// different epoch knows its acknowledged state is gone (the node
// restarted), not merely that the link flapped.
func (s *Server) Epoch() uint64 { return s.epoch }

// Serve accepts connections on lis until Close (or a fatal listener
// error), blocking. The listener is adopted: Close closes it.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("server: closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := &conn{srv: s, nc: nc}
		c.wcond = sync.NewCond(&c.wmu)
		c.waits = make(map[uint64]*waiter)
		c.predWaits = make(map[uint64]*predWait)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(2)
		s.mu.Unlock()
		go c.readLoop()
		go c.writeLoop()
	}
}

// Close stops accepting, tears down every connection, and waits for all
// connection goroutines to retire. Hosted counter state (and sessions)
// is discarded with the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	var conns []*conn
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.teardown()
	}
	s.wg.Wait()
	return nil
}

// counter returns the hosted counter with the given name, creating it on
// first reference.
func (s *Server) counter(name string) *hosted {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.counters[name]
	if !ok {
		c := core.NewSharded()
		h = &hosted{name: name, c: c, d: newDispatcher(c)}
		s.counters[name] = h
	}
	return h
}

// session resolves a Hello: id 0 opens a fresh session; a nonzero id
// resumes it, creating an empty one if the server has never seen it
// (e.g. the server restarted — the client's full resend then rebuilds
// what the restart lost).
func (s *Server) session(id uint64) (uint64, *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == 0 {
		s.nextSess++
		id = s.nextSess
	} else if id > s.nextSess {
		s.nextSess = id
	}
	sess, ok := s.sessions[id]
	if !ok {
		sess = &session{}
		s.sessions[id] = sess
	}
	return id, sess
}

// tryReset zeroes the hosted counter, or explains why not: pending
// remote waits (the wire analogue of the in-process "Reset with
// goroutines suspended" panic) or a dispatcher still retiring.
func (h *hosted) tryReset() (err error) {
	if n := h.d.pending(); n > 0 {
		return fmt.Errorf("counter %q: cannot Reset: %d waits suspended", h.name, n)
	}
	if !h.d.idle() {
		return fmt.Errorf("counter %q: cannot Reset: dispatcher retiring, retry", h.name)
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("counter %q: %v", h.name, p)
		}
	}()
	h.c.Reset()
	return nil
}

// conn is one client connection.
type conn struct {
	srv  *Server
	nc   net.Conn
	sess *session

	// Write side: frames queue under wmu and the writer goroutine
	// drains whatever has accumulated into one buffered write+flush, so
	// a wake storm or an ack burst becomes a handful of TCP segments.
	wmu     sync.Mutex
	wcond   *sync.Cond
	wq      []byte
	wclosed bool

	// version is the protocol dialect this connection negotiated at
	// Hello — the client's version, anywhere in [wire.MinVersion,
	// wire.Version]. Written once by the reader goroutine and only read
	// on frame-handling paths, so it needs no lock.
	version uint64

	// waits indexes this connection's unresolved waiters by client-
	// chosen id; predWaits does the same for parked OpWaitFor predicate
	// registrations (predwait.go). Both guarded by waitMu; never hold
	// waitMu while calling into a dispatcher (the dispatcher's drain
	// path locks in the other order).
	waitMu    sync.Mutex
	waits     map[uint64]*waiter
	predWaits map[uint64]*predWait

	ackedSeq  uint64 // highest seq this conn has acked
	unacked   int    // increments applied since the last ack
	closeOnce sync.Once
}

// send queues one frame for the writer goroutine.
func (c *conn) send(f *wire.Frame) {
	c.wmu.Lock()
	if !c.wclosed {
		c.wq = wire.Append(c.wq, f)
		c.wcond.Signal()
	}
	c.wmu.Unlock()
}

// resolveWake delivers a satisfied wait to the client and forgets it.
// Called by the dispatcher (which may hold its own lock — see the lock
// ordering note on waits).
func (c *conn) resolveWake(w *waiter) {
	c.waitMu.Lock()
	delete(c.waits, w.id)
	c.waitMu.Unlock()
	c.send(&wire.Frame{Op: wire.OpWake, ID: w.id, Level: w.level})
}

// writeLoop drains the frame queue into the socket, batching everything
// queued since the last flush into one write.
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	bw := bufio.NewWriter(c.nc)
	for {
		c.wmu.Lock()
		for len(c.wq) == 0 && !c.wclosed {
			c.wcond.Wait()
		}
		buf := c.wq
		c.wq = nil
		closed := c.wclosed
		c.wmu.Unlock()
		if len(buf) > 0 {
			_, err := bw.Write(buf)
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				c.teardown()
				return
			}
		}
		if closed {
			return
		}
	}
}

// readLoop parses and executes frames until the connection dies or
// misbehaves; protocol errors close the connection (the client's
// reconnect handshake restores its state).
func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	defer c.teardown()
	br := bufio.NewReader(c.nc)
	for {
		f, err := wire.Read(br)
		if err != nil {
			return
		}
		if err := c.handle(&f); err != nil {
			return
		}
		// Ack applied increments when the pipeline drains (or every
		// ackEvery of them), so one flush carries one ack for a whole
		// burst instead of an ack per increment.
		if c.unacked > 0 && (br.Buffered() == 0 || c.unacked >= ackEvery) {
			c.sess.mu.Lock()
			seq := c.sess.lastSeq
			c.sess.mu.Unlock()
			if seq > c.ackedSeq {
				c.ackedSeq = seq
				c.send(&wire.Frame{Op: wire.OpIncAck, Seq: seq})
			}
			c.unacked = 0
		}
	}
}

// handle executes one frame. A non-nil error means the connection is
// unrecoverable and must close.
func (c *conn) handle(f *wire.Frame) error {
	if c.sess == nil && f.Op != wire.OpHello {
		return fmt.Errorf("server: %s before hello", f.Op)
	}
	switch f.Op {
	case wire.OpHello:
		// Negotiation, not rejection: any dialect in [MinVersion,
		// Version] is served. The Welcome advertises feature bits only
		// to v3+ clients — a v2 Welcome stays byte-identical to what a
		// v2 server sends, so old decoders never see trailing bytes.
		if f.Seq < wire.MinVersion || f.Seq > wire.Version {
			return fmt.Errorf("server: protocol version %d, want %d..%d",
				f.Seq, wire.MinVersion, wire.Version)
		}
		c.version = f.Seq
		id, sess := c.srv.session(f.Session)
		c.sess = sess
		sess.mu.Lock()
		last := sess.lastSeq
		sess.mu.Unlock()
		c.ackedSeq = last
		var feat uint64
		if c.version >= 3 {
			feat = wire.FeatureWaitFor
		}
		c.send(&wire.Frame{Op: wire.OpWelcome, Session: id, Seq: last, Epoch: c.srv.epoch, Features: feat})

	case wire.OpIncrement:
		h, err := c.hosted(f.Name)
		if err != nil {
			return err
		}
		c.sess.mu.Lock()
		dup := f.Seq <= c.sess.lastSeq
		if !dup {
			c.sess.lastSeq = f.Seq
		}
		c.sess.mu.Unlock()
		if dup {
			return nil // retried increment: monotonic dedup, drop it
		}
		c.unacked++
		if err := apply(h, f.Amount); err != nil {
			// Overflow is a caller bug, not a connection fault: report it
			// on the increment's sequence number and keep serving.
			c.send(&wire.Frame{Op: wire.OpError, ID: f.Seq, Msg: err.Error()})
		}

	case wire.OpCheck:
		h, err := c.hosted(f.Name)
		if err != nil {
			return err
		}
		w := &waiter{level: f.Level, id: f.ID, conn: c, host: h, idx: -1}
		c.waitMu.Lock()
		if _, dup := c.waits[f.ID]; dup {
			c.waitMu.Unlock()
			return fmt.Errorf("server: duplicate wait id %d", f.ID)
		}
		c.waits[f.ID] = w
		c.waitMu.Unlock()
		h.d.add(w)

	case wire.OpCancel:
		c.waitMu.Lock()
		w := c.waits[f.ID]
		c.waitMu.Unlock()
		if w == nil {
			return nil // already resolved; the wake frame answers the race
		}
		if w.host.d.remove(w) {
			c.waitMu.Lock()
			delete(c.waits, f.ID)
			c.waitMu.Unlock()
			c.send(&wire.Frame{Op: wire.OpCancelled, ID: f.ID})
		}

	case wire.OpWaitFor:
		return c.handleWaitFor(f)

	case wire.OpWaitForCancel:
		return c.handleWaitForCancel(f)

	case wire.OpReset:
		h, err := c.hosted(f.Name)
		if err != nil {
			return err
		}
		if err := h.tryReset(); err != nil {
			c.send(&wire.Frame{Op: wire.OpError, ID: f.ID, Msg: err.Error()})
		} else {
			c.send(&wire.Frame{Op: wire.OpResetOK, ID: f.ID})
		}

	case wire.OpStats:
		h, err := c.hosted(f.Name)
		if err != nil {
			return err
		}
		st := h.c.Stats()
		c.send(&wire.Frame{Op: wire.OpStatsReply, ID: f.ID, Stats: wire.Stats{
			PeakLevels:         uint64(st.PeakLevels),
			SatisfiedLevels:    st.SatisfiedLevels,
			Broadcasts:         st.Broadcasts,
			ChannelCloses:      st.ChannelCloses,
			Suspends:           st.Suspends,
			ImmediateChecks:    st.ImmediateChecks,
			Increments:         st.Increments,
			SpinRounds:         st.SpinRounds,
			FastPathIncrements: st.FastPathIncrements,
			Flushes:            st.Flushes,
		}})

	default:
		return fmt.Errorf("server: unexpected %s frame from client", f.Op)
	}
	return nil
}

// hosted validates the counter name and resolves it.
func (c *conn) hosted(name string) (*hosted, error) {
	if name == "" || len(name) > wire.MaxName {
		return nil, fmt.Errorf("server: bad counter name %q", name)
	}
	return c.srv.counter(name), nil
}

// apply increments h, converting the overflow panic (a wrap would
// violate monotonicity) into an error for the wire.
func apply(h *hosted, amount uint64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("counter %q: %v", h.name, p)
		}
	}()
	h.c.Increment(amount)
	return nil
}

// teardown closes the connection once: the socket (unblocking the
// reader), the write queue (retiring the writer), and every pending
// wait this connection registered (so dispatcher heaps hold no dead
// entries).
func (c *conn) teardown() {
	c.closeOnce.Do(func() {
		c.nc.Close()
		c.wmu.Lock()
		c.wclosed = true
		c.wcond.Signal()
		c.wmu.Unlock()
		c.waitMu.Lock()
		pending := make([]*waiter, 0, len(c.waits))
		for _, w := range c.waits {
			pending = append(pending, w)
		}
		c.waits = make(map[uint64]*waiter)
		c.waitMu.Unlock()
		for _, w := range pending {
			w.host.d.remove(w)
		}
		c.dropPredWaits()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
	})
}
