// Package ring implements a bounded single-writer broadcast ring buffer
// whose only synchronization is monotonic counters — the flow-controlled
// variant of the paper's section 5.3 broadcast, and a counterpart to its
// remark that counters do not fit the classical bounded buffer.
//
// The paper's bounded-buffer caveat concerns the *multiple-writers,
// consuming-readers* buffer, where a slot's reuse depends on "some reader
// took the item" — an inherently nondeterministic event that suits
// semaphores. With a *fixed set of known readers*, each reading the whole
// sequence (broadcast semantics), slot reuse is a deterministic dataflow
// condition: slot i%capacity may be overwritten once every reader's
// position counter has passed i - capacity + 1. That condition is
// expressible with one monotonic counter per reader plus one for the
// writer — the same structure as the sequences of LMAX Disruptor-style
// rings, which this package deliberately mirrors.
//
// All blocking is counter Check calls; there are no locks or channels in
// the data path.
package ring

import (
	"monotonic/internal/core"
)

// Ring is a bounded broadcast ring for a single writer and a fixed set of
// readers. Every reader sees every item, in order.
type Ring[T any] struct {
	buf       []T
	capacity  uint64
	published *core.Counter   // writer's position: items [0, published) are readable
	consumed  []*core.Counter // per-reader position: items [0, consumed[r]) are done
}

// New returns a ring with the given capacity and reader count. It panics
// if capacity < 1 or readers < 1 (a broadcast needs someone to free
// slots; see the package comment for why dynamic readers are out of
// scope for counters).
func New[T any](capacity, readers int) *Ring[T] {
	if capacity < 1 {
		panic("ring: New requires capacity >= 1")
	}
	if readers < 1 {
		panic("ring: New requires readers >= 1")
	}
	r := &Ring[T]{
		buf:       make([]T, capacity),
		capacity:  uint64(capacity),
		published: core.New(),
		consumed:  make([]*core.Counter, readers),
	}
	for i := range r.consumed {
		r.consumed[i] = core.New()
	}
	return r
}

// Readers returns the number of registered readers.
func (r *Ring[T]) Readers() int { return len(r.consumed) }

// Capacity returns the ring capacity.
func (r *Ring[T]) Capacity() int { return int(r.capacity) }

// Publish writes item i (items must be published with consecutive i
// starting at 0; Writer handles this bookkeeping). It blocks until the
// slot is free: every reader must have consumed item i - capacity.
func (r *Ring[T]) publish(i uint64, item T) {
	if i >= r.capacity {
		need := i - r.capacity + 1
		for _, c := range r.consumed {
			c.Check(need)
		}
	}
	r.buf[i%r.capacity] = item
	r.published.Increment(1)
}

// get returns item i for reader rd, blocking until published, and marks
// it consumed.
func (r *Ring[T]) get(rd int, i uint64) T {
	r.published.Check(i + 1)
	item := r.buf[i%r.capacity]
	r.consumed[rd].Increment(1)
	return item
}

// Writer returns the ring's single writer handle. Call it exactly once.
type Writer[T any] struct {
	r    *Ring[T]
	next uint64
}

// Writer returns the write handle.
func (r *Ring[T]) Writer() *Writer[T] { return &Writer[T]{r: r} }

// Publish appends an item, blocking while the ring is full (i.e. until
// the slowest reader frees the slot).
func (w *Writer[T]) Publish(item T) {
	w.r.publish(w.next, item)
	w.next++
}

// Reader is one reader's cursor. Reader rd must be driven by exactly one
// goroutine.
type Reader[T any] struct {
	r    *Ring[T]
	id   int
	next uint64
}

// Reader returns the handle for reader rd in [0, Readers()).
func (r *Ring[T]) Reader(rd int) *Reader[T] {
	if rd < 0 || rd >= len(r.consumed) {
		panic("ring: reader index out of range")
	}
	return &Reader[T]{r: r, id: rd}
}

// Next returns the next item, blocking until the writer publishes it.
func (rd *Reader[T]) Next() T {
	item := rd.r.get(rd.id, rd.next)
	rd.next++
	return item
}
