package ring

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSingleReaderFIFO(t *testing.T) {
	r := New[int](4, 1)
	w := r.Writer()
	rd := r.Reader(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if got := rd.Next(); got != i {
				t.Errorf("item %d read as %d", i, got)
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		w.Publish(i)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reader never finished")
	}
}

func TestBroadcastAllReadersSeeAll(t *testing.T) {
	const items = 500
	const readers = 3
	r := New[int](8, readers)
	var wg sync.WaitGroup
	sums := make([]int, readers)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			cursor := r.Reader(rd)
			for i := 0; i < items; i++ {
				v := cursor.Next()
				if v != i {
					t.Errorf("reader %d item %d = %d", rd, i, v)
					return
				}
				sums[rd] += v
			}
		}(rd)
	}
	w := r.Writer()
	for i := 0; i < items; i++ {
		w.Publish(i)
	}
	wg.Wait()
	want := items * (items - 1) / 2
	for rd, s := range sums {
		if s != want {
			t.Errorf("reader %d sum %d, want %d", rd, s, want)
		}
	}
}

func TestWriterBlocksWhenFull(t *testing.T) {
	r := New[int](2, 1)
	w := r.Writer()
	w.Publish(0)
	w.Publish(1)
	third := make(chan struct{})
	go func() {
		w.Publish(2) // must block: reader has consumed nothing
		close(third)
	}()
	select {
	case <-third:
		t.Fatal("Publish succeeded on a full ring")
	case <-time.After(50 * time.Millisecond):
	}
	rd := r.Reader(0)
	if rd.Next() != 0 {
		t.Fatal("wrong first item")
	}
	select {
	case <-third:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish never unblocked after consumption")
	}
}

func TestSlowestReaderGovernsBackpressure(t *testing.T) {
	r := New[int](2, 2)
	w := r.Writer()
	fast := r.Reader(0)
	slow := r.Reader(1)
	w.Publish(10)
	w.Publish(11)
	if fast.Next() != 10 || fast.Next() != 11 {
		t.Fatal("fast reader wrong items")
	}
	blocked := make(chan struct{})
	go func() {
		w.Publish(12) // slot 0 still held by the slow reader
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("Publish ignored the slow reader")
	case <-time.After(50 * time.Millisecond):
	}
	if slow.Next() != 10 {
		t.Fatal("slow reader wrong item")
	}
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish never unblocked")
	}
}

func TestCapacityOne(t *testing.T) {
	r := New[string](1, 2)
	var wg sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			cursor := r.Reader(rd)
			for _, want := range []string{"a", "b", "c"} {
				if got := cursor.Next(); got != want {
					t.Errorf("reader %d got %q want %q", rd, got, want)
				}
			}
		}(rd)
	}
	w := r.Writer()
	for _, s := range []string{"a", "b", "c"} {
		w.Publish(s)
	}
	wg.Wait()
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New[int](0, 1) },
		func() { New[int](1, 0) },
		func() { New[int](4, 2).Reader(2) },
		func() { New[int](4, 2).Reader(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestQuickRingDeliversSequence: property test across capacities, reader
// counts, and item counts.
func TestQuickRingDeliversSequence(t *testing.T) {
	f := func(cap8, readers8, items8 uint8) bool {
		capacity := int(cap8%8) + 1
		readers := int(readers8%4) + 1
		items := int(items8%200) + 1
		r := New[int](capacity, readers)
		var wg sync.WaitGroup
		ok := make([]bool, readers)
		for rd := 0; rd < readers; rd++ {
			wg.Add(1)
			go func(rd int) {
				defer wg.Done()
				cursor := r.Reader(rd)
				for i := 0; i < items; i++ {
					if cursor.Next() != i*7 {
						return
					}
				}
				ok[rd] = true
			}(rd)
		}
		w := r.Writer()
		for i := 0; i < items; i++ {
			w.Publish(i * 7)
		}
		wg.Wait()
		for _, o := range ok {
			if !o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	r := New[int](5, 3)
	if r.Capacity() != 5 || r.Readers() != 3 {
		t.Fatalf("Capacity/Readers = %d/%d", r.Capacity(), r.Readers())
	}
}
