package stencil

import (
	"testing"
	"testing/quick"

	"monotonic/internal/core"
	"monotonic/internal/workload"
)

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSequentialConservesBoundary(t *testing.T) {
	s := RunSequential(InitialRod(32), 100, Heat)
	if s[0] != 100 || s[31] != 100 {
		t.Fatalf("boundary changed: %v %v", s[0], s[31])
	}
}

func TestSequentialConvergesTowardBoundary(t *testing.T) {
	s := RunSequential(InitialRod(16), 5000, Heat)
	for i, v := range s {
		if v < 49 || v > 101 {
			t.Fatalf("cell %d = %v after long diffusion, expected near 100", i, v)
		}
	}
}

func TestZeroStepsIsIdentity(t *testing.T) {
	init := InitialRod(10)
	for _, got := range [][]float64{
		RunSequential(init, 0, Heat),
		RunBarrier(init, 0, Heat, nil),
		RunCounter(init, 0, Heat, nil),
		RunBarrierBlocked(init, 0, 4, Heat, nil),
		RunCounterBlocked(init, 0, 4, Heat, nil),
	} {
		if !equal(got, init) {
			t.Fatalf("zero steps changed state: %v", got)
		}
	}
}

func TestTinyRodsAreNoOps(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		init := InitialRod(n)
		if got := RunCounter(init, 10, Heat, nil); !equal(got, init) {
			t.Fatalf("n=%d: interior-free rod changed: %v", n, got)
		}
		if got := RunBarrier(init, 10, Heat, nil); !equal(got, init) {
			t.Fatalf("n=%d: interior-free rod changed: %v", n, got)
		}
	}
}

// TestAllVariantsMatchSequential is the E5 correctness half: every
// parallel strategy produces bit-identical results to the reference.
func TestAllVariantsMatchSequential(t *testing.T) {
	for _, n := range []int{3, 4, 8, 33, 64} {
		for _, steps := range []int{1, 2, 7, 50} {
			init := InitialRod(n)
			want := RunSequential(init, steps, Heat)
			if got := RunBarrier(init, steps, Heat, nil); !equal(got, want) {
				t.Errorf("n=%d steps=%d: barrier variant diverged", n, steps)
			}
			if got := RunCounter(init, steps, Heat, nil); !equal(got, want) {
				t.Errorf("n=%d steps=%d: counter variant diverged", n, steps)
			}
			for _, nt := range []int{1, 2, 3, 8} {
				if got := RunBarrierBlocked(init, steps, nt, Heat, nil); !equal(got, want) {
					t.Errorf("n=%d steps=%d nt=%d: blocked barrier diverged", n, steps, nt)
				}
				if got := RunCounterBlocked(init, steps, nt, Heat, nil); !equal(got, want) {
					t.Errorf("n=%d steps=%d nt=%d: blocked counter diverged", n, steps, nt)
				}
			}
		}
	}
}

// TestVariantsMatchUnderSkew: injected load imbalance must not change
// results, only timing.
func TestVariantsMatchUnderSkew(t *testing.T) {
	init := InitialRod(24)
	want := RunSequential(init, 20, Heat)
	for _, sk := range []workload.Skew{workload.OneSlow{Max: 5}, workload.Alternating{Max: 3}} {
		if got := RunCounter(init, 20, Heat, sk); !equal(got, want) {
			t.Errorf("skew %s: counter variant diverged", sk.Name())
		}
		if got := RunBarrier(init, 20, Heat, sk); !equal(got, want) {
			t.Errorf("skew %s: barrier variant diverged", sk.Name())
		}
		if got := RunCounterBlocked(init, 20, 4, Heat, sk); !equal(got, want) {
			t.Errorf("skew %s: blocked counter diverged", sk.Name())
		}
	}
}

// TestCounterImplAblation: the ragged barrier works with every counter
// implementation.
func TestCounterImplAblation(t *testing.T) {
	init := InitialRod(20)
	want := RunSequential(init, 15, Heat)
	for _, impl := range core.Impls {
		if got := RunCounterImplNamed(init, 15, Heat, nil, impl); !equal(got, want) {
			t.Errorf("impl %s: diverged", impl)
		}
	}
}

// TestQuickRandomRods: property test over random initial states and
// custom update functions — parallel always equals sequential.
func TestQuickRandomRods(t *testing.T) {
	f := func(seed uint64, n8, steps8, nt8 uint8) bool {
		n := int(n8%40) + 3
		steps := int(steps8%20) + 1
		nt := int(nt8%6) + 1
		rng := workload.NewRNG(seed)
		init := make([]float64, n)
		for i := range init {
			init[i] = rng.Float64() * 100
		}
		avg := func(l, s, r float64) float64 { return (l + s + r) / 3 }
		want := RunSequential(init, steps, avg)
		return equal(RunCounter(init, steps, avg, nil), want) &&
			equal(RunCounterBlocked(init, steps, nt, avg, nil), want) &&
			equal(RunBarrierBlocked(init, steps, nt, avg, nil), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMoreThreadsThanCells: blocked variants clamp the thread count.
func TestMoreThreadsThanCells(t *testing.T) {
	init := InitialRod(5) // 3 interior cells
	want := RunSequential(init, 10, Heat)
	if got := RunCounterBlocked(init, 10, 16, Heat, nil); !equal(got, want) {
		t.Fatal("blocked counter wrong with threads > cells")
	}
	if got := RunBarrierBlocked(init, 10, 16, Heat, nil); !equal(got, want) {
		t.Fatal("blocked barrier wrong with threads > cells")
	}
}

func TestInitialRod(t *testing.T) {
	if got := InitialRod(0); len(got) != 0 {
		t.Fatal("InitialRod(0) nonempty")
	}
	r := InitialRod(12)
	if r[0] != 100 || r[11] != 100 || r[4] != 50 {
		t.Fatalf("fixture unexpected: %v", r)
	}
}
