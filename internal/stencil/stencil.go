// Package stencil implements the paper's section 5.1 example: a
// time-stepped simulation of a one-dimensional object (heat transfer along
// a metal rod) whose interior cell i at time t is a function of cells
// i-1, i, i+1 at time t-1, with constant boundary cells.
//
// Three synchronization strategies are provided at per-cell granularity
// (one thread per interior cell, the paper's formulation):
//
//   - RunSequential: double-buffered reference.
//   - RunBarrier: two traditional N-way barrier passes per time step.
//   - RunCounter: the paper's "ragged barrier" — an array of counters, one
//     per cell, synchronizing each thread only with its two neighbours, so
//     faster threads can run ahead of slower ones.
//
// Blocked variants (one thread per contiguous block of cells, the
// practical HPC decomposition) implement the same two protocols at thread
// granularity for the E5 benchmarks: RunBarrierBlocked and
// RunCounterBlocked.
package stencil

import (
	"monotonic/internal/core"
	"monotonic/internal/sthreads"
	"monotonic/internal/sync2"
	"monotonic/internal/workload"
)

// UpdateFunc computes a cell's next state from its left neighbour, itself,
// and its right neighbour at the previous time step.
type UpdateFunc func(l, s, r float64) float64

// Heat is the default update rule: explicit finite-difference heat
// diffusion with conduction coefficient 1/4.
func Heat(l, s, r float64) float64 {
	return s + 0.25*(l-2*s+r)
}

// RunSequential advances the simulation numSteps steps with a double
// buffer and returns the final state. It is the correctness oracle: all
// parallel variants must produce exactly this result (cell updates are
// independent, so floating-point evaluation order is identical).
func RunSequential(initial []float64, numSteps int, f UpdateFunc) []float64 {
	cur := append([]float64(nil), initial...)
	next := append([]float64(nil), initial...)
	for t := 0; t < numSteps; t++ {
		for i := 1; i < len(cur)-1; i++ {
			next[i] = f(cur[i-1], cur[i], cur[i+1])
		}
		cur, next = next, cur
	}
	return cur
}

// perStepWork injects skewed synthetic load for thread t of n, modelling
// the load imbalance ragged barriers exploit.
func perStepWork(skew workload.Skew, t, n int) {
	if skew != nil {
		workload.SpinSkewed(skew, t, n, 300)
	}
}

// RunBarrier is the paper's traditional program: one thread per interior
// cell, all threads crossing an N-way barrier before exchanging states and
// again before updating them.
func RunBarrier(initial []float64, numSteps int, f UpdateFunc, skew workload.Skew) []float64 {
	n := len(initial)
	state := append([]float64(nil), initial...)
	if n <= 2 || numSteps == 0 {
		return state
	}
	b := sync2.NewBarrier(n - 2)
	sthreads.For(sthreads.Concurrent, 1, n-1, 1, func(i int) {
		var lState, rState float64
		for t := 1; t <= numSteps; t++ {
			b.Pass()
			lState = state[i-1]
			rState = state[i+1]
			b.Pass()
			perStepWork(skew, i-1, n-2)
			state[i] = f(lState, state[i], rState)
		}
	})
	return state
}

// RunCounter is the paper's ragged-barrier program: one thread and one
// counter per cell; c[i] reaching 2t-1 means thread i has read both
// neighbour states for step t, and 2t means it has completed step t.
// Boundary counters are pre-incremented past the horizon since boundary
// cells never change.
func RunCounter(initial []float64, numSteps int, f UpdateFunc, skew workload.Skew) []float64 {
	return runCounter(initial, numSteps, f, skew, core.ImplList)
}

// RunCounterImpl is RunCounter parameterized by counter implementation.
func runCounter(initial []float64, numSteps int, f UpdateFunc, skew workload.Skew, impl core.Impl) []float64 {
	n := len(initial)
	state := append([]float64(nil), initial...)
	if n <= 2 || numSteps == 0 {
		return state
	}
	c := make([]core.Interface, n)
	for i := range c {
		c[i] = core.NewImpl(impl)
	}
	c[0].Increment(uint64(2 * numSteps))
	c[n-1].Increment(uint64(2 * numSteps))
	sthreads.For(sthreads.Concurrent, 1, n-1, 1, func(i int) {
		myState := state[i]
		var lState, rState float64
		for t := 1; t <= numSteps; t++ {
			tt := uint64(t)
			c[i-1].Check(2*tt - 2)
			lState = state[i-1]
			c[i+1].Check(2*tt - 2)
			rState = state[i+1]
			c[i].Increment(1)
			perStepWork(skew, i-1, n-2)
			myState = f(lState, myState, rState)
			c[i-1].Check(2*tt - 1)
			c[i+1].Check(2*tt - 1)
			state[i] = myState
			c[i].Increment(1)
		}
	})
	return state
}

// RunCounterImplNamed exposes the ablation entry point.
func RunCounterImplNamed(initial []float64, numSteps int, f UpdateFunc, skew workload.Skew, impl core.Impl) []float64 {
	return runCounter(initial, numSteps, f, skew, impl)
}

// blockBounds partitions the interior cells [1, n-1) among numThreads
// with the paper's block rule, returning thread t's [lo, hi).
func blockBounds(n, numThreads, t int) (lo, hi int) {
	interior := n - 2
	lo = 1 + t*interior/numThreads
	hi = 1 + (t+1)*interior/numThreads
	return lo, hi
}

// RunBarrierBlocked is the traditional strategy at thread granularity:
// numThreads threads each own a contiguous block of interior cells,
// compute the step into a private buffer, and cross a barrier between
// compute and write-back phases.
func RunBarrierBlocked(initial []float64, numSteps, numThreads int, f UpdateFunc, skew workload.Skew) []float64 {
	n := len(initial)
	state := append([]float64(nil), initial...)
	if n <= 2 || numSteps == 0 || numThreads < 1 {
		return state
	}
	if numThreads > n-2 {
		numThreads = n - 2
	}
	b := sync2.NewBarrier(numThreads)
	sthreads.ForN(sthreads.Concurrent, numThreads, func(t int) {
		lo, hi := blockBounds(n, numThreads, t)
		buf := make([]float64, hi-lo)
		for s := 1; s <= numSteps; s++ {
			for i := lo; i < hi; i++ {
				buf[i-lo] = f(state[i-1], state[i], state[i+1])
			}
			perStepWork(skew, t, numThreads)
			b.Pass()
			copy(state[lo:hi], buf)
			b.Pass()
		}
	})
	return state
}

// RunCounterBlocked is the ragged barrier at thread granularity: one
// counter per thread, with the paper's two-phase protocol applied between
// neighbouring blocks. ct[t] >= 2s-1 means thread t has read its halo
// cells for step s; ct[t] >= 2s means it has written step s back.
func RunCounterBlocked(initial []float64, numSteps, numThreads int, f UpdateFunc, skew workload.Skew) []float64 {
	n := len(initial)
	state := append([]float64(nil), initial...)
	if n <= 2 || numSteps == 0 || numThreads < 1 {
		return state
	}
	if numThreads > n-2 {
		numThreads = n - 2
	}
	// Virtual boundary "threads" at index 0 and numThreads+1 are
	// pre-satisfied, mirroring the paper's boundary counters.
	ct := make([]*core.Counter, numThreads+2)
	for i := range ct {
		ct[i] = core.New()
	}
	horizon := uint64(2 * numSteps)
	ct[0].Increment(horizon)
	ct[numThreads+1].Increment(horizon)
	sthreads.ForN(sthreads.Concurrent, numThreads, func(t int) {
		me := t + 1
		lo, hi := blockBounds(n, numThreads, t)
		buf := make([]float64, hi-lo)
		for s := 1; s <= numSteps; s++ {
			ss := uint64(s)
			// Read halos once both neighbours have finished step s-1.
			ct[me-1].Check(2*ss - 2)
			left := state[lo-1]
			ct[me+1].Check(2*ss - 2)
			right := state[hi]
			// Halos read: neighbours may overwrite their edge cells
			// while we compute (the paper increments before the
			// update for exactly this overlap).
			ct[me].Increment(1)
			// Compute the step from own cells plus saved halos. Only
			// owned cells may be touched here: once ct[me] reached
			// 2s-1 the neighbours are free to overwrite their edges,
			// so even a dead read of state[lo-1] or state[hi] would
			// be a race.
			for i := lo; i < hi; i++ {
				l, r := left, right
				if i > lo {
					l = state[i-1]
				}
				if i < hi-1 {
					r = state[i+1]
				}
				buf[i-lo] = f(l, state[i], r)
			}
			perStepWork(skew, t, numThreads)
			// Write back once both neighbours have read our edges.
			ct[me-1].Check(2*ss - 1)
			ct[me+1].Check(2*ss - 1)
			copy(state[lo:hi], buf)
			ct[me].Increment(1) // step s published
		}
	})
	return state
}

// InitialRod returns the canonical test fixture: a rod of n cells at
// temperature 0 with hot ends (boundary 100), plus an optional interior
// spike to break symmetry.
func InitialRod(n int) []float64 {
	s := make([]float64, n)
	if n == 0 {
		return s
	}
	s[0] = 100
	s[n-1] = 100
	if n > 4 {
		s[n/3] = 50
	}
	return s
}
