// Package broadcast implements the paper's section 5.3 pattern:
// single-writer multiple-reader broadcast of a sequence of items through a
// shared array, synchronized by one monotonic counter. Reading does not
// consume: every reader independently sees the entire sequence, and the
// writer's Increment broadcasts availability to all readers at once.
//
// Both of the paper's granularities are provided: per-item
// synchronization, and blocked synchronization where the writer and each
// reader choose their own block size (they need not agree).
//
// For contrast, BoundedBuffer is the multiple-writers multiple-readers
// bounded buffer of Morenoff and McLean, solved classically with
// semaphores — the problem the paper says semaphores fit and counters do
// not (and vice versa): a buffer *distributes* items (each consumed once
// by somebody), a broadcast *replicates* them (each seen by everybody).
package broadcast

import (
	"monotonic/internal/core"
	"monotonic/internal/sthreads"
	"monotonic/internal/sync2"
	"monotonic/internal/workload"
)

// GenerateItem produces item i deterministically, so readers can verify
// integrity end-to-end.
func GenerateItem(i int) uint64 {
	return workload.NewRNG(uint64(i) + 1).Uint64()
}

// Checksum folds a sequence of items order-sensitively; readers that saw
// exactly items 0..n-1 in order produce the same value.
func Checksum(acc, item uint64) uint64 {
	return acc*1099511628211 + item
}

// ExpectedChecksum returns the checksum of the full n-item sequence.
func ExpectedChecksum(n int) uint64 {
	var acc uint64
	for i := 0; i < n; i++ {
		acc = Checksum(acc, GenerateItem(i))
	}
	return acc
}

// Config describes one broadcast run.
type Config struct {
	Items        int       // sequence length
	WriterBlock  int       // writer publishes in blocks of this size (1 = per-item)
	ReaderBlocks []int     // one entry per reader: that reader's granularity
	Impl         core.Impl // counter implementation ("" = reference list)
	WorkUnits    int       // synthetic per-item work in writer and readers
	Mode         sthreads.Mode
}

// Result reports what each participant observed.
type Result struct {
	ReaderSums []uint64 // order-sensitive checksum per reader
	Stats      core.Stats
}

// Run executes the broadcast: one writer goroutine, len(ReaderBlocks)
// reader goroutines, one shared counter. It is the paper's listing with
// both granularities; the writer uses WriterBlock and reader r uses
// ReaderBlocks[r].
func Run(cfg Config) Result {
	n := cfg.Items
	impl := cfg.Impl
	if impl == "" {
		impl = core.ImplList
	}
	if cfg.WriterBlock < 1 {
		cfg.WriterBlock = 1
	}
	data := make([]uint64, n)
	dataCount := core.NewImpl(impl)
	numReaders := len(cfg.ReaderBlocks)
	sums := make([]uint64, numReaders)

	writer := func() {
		bs := cfg.WriterBlock
		for i := 0; i < n; i++ {
			data[i] = GenerateItem(i)
			if cfg.WorkUnits > 0 {
				workload.Spin(cfg.WorkUnits)
			}
			if (i+1)%bs == 0 {
				dataCount.Increment(uint64(bs))
			}
		}
		dataCount.Increment(uint64(n % bs))
	}
	reader := func(r int) {
		bs := cfg.ReaderBlocks[r]
		if bs < 1 {
			bs = 1
		}
		var acc uint64
		for i := 0; i < n; i++ {
			if i%bs == 0 {
				level := i + bs
				if level > n {
					level = n
				}
				dataCount.Check(uint64(level))
			}
			acc = Checksum(acc, data[i])
			if cfg.WorkUnits > 0 {
				workload.Spin(cfg.WorkUnits)
			}
		}
		sums[r] = acc
	}

	fns := make([]func(), 0, numReaders+1)
	fns = append(fns, writer)
	for r := 0; r < numReaders; r++ {
		r := r
		fns = append(fns, func() { reader(r) })
	}
	sthreads.Block(cfg.Mode, fns...)

	res := Result{ReaderSums: sums}
	if p, ok := dataCount.(core.StatsProvider); ok {
		res.Stats = p.Stats()
	}
	return res
}

// BoundedBuffer is the classical semaphore-based multiple-writers
// multiple-readers bounded buffer: Put blocks while the buffer is full,
// Get blocks while it is empty, and each item is consumed by exactly one
// getter.
type BoundedBuffer[T any] struct {
	items []T
	head  int
	tail  int
	lock  *sync2.Semaphore // binary, guards indices
	empty *sync2.Semaphore
	full  *sync2.Semaphore
}

// NewBoundedBuffer returns a buffer with the given capacity.
func NewBoundedBuffer[T any](capacity int) *BoundedBuffer[T] {
	if capacity < 1 {
		panic("broadcast: NewBoundedBuffer requires capacity >= 1")
	}
	return &BoundedBuffer[T]{
		items: make([]T, capacity),
		lock:  sync2.NewSemaphore(1),
		empty: sync2.NewSemaphore(capacity),
		full:  sync2.NewSemaphore(0),
	}
}

// Put inserts an item, blocking while the buffer is full.
func (b *BoundedBuffer[T]) Put(item T) {
	b.empty.P()
	b.lock.P()
	b.items[b.tail] = item
	b.tail = (b.tail + 1) % len(b.items)
	b.lock.V()
	b.full.V()
}

// Get removes and returns an item, blocking while the buffer is empty.
func (b *BoundedBuffer[T]) Get() T {
	b.full.P()
	b.lock.P()
	item := b.items[b.head]
	b.head = (b.head + 1) % len(b.items)
	b.lock.V()
	b.empty.V()
	return item
}
