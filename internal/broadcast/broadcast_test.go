package broadcast

import (
	"sync"
	"testing"
	"testing/quick"

	"monotonic/internal/core"
	"monotonic/internal/sthreads"
)

// TestPerItemBroadcast is the paper's first listing: synchronization on
// every item, several readers, all seeing the exact sequence (E7
// correctness).
func TestPerItemBroadcast(t *testing.T) {
	const n = 500
	want := ExpectedChecksum(n)
	res := Run(Config{Items: n, WriterBlock: 1, ReaderBlocks: []int{1, 1, 1, 1}})
	for r, sum := range res.ReaderSums {
		if sum != want {
			t.Errorf("reader %d checksum %x, want %x", r, sum, want)
		}
	}
}

// TestBlockedBroadcastMixedGranularity is the paper's second listing:
// writer and each reader choose their own block size, including sizes that
// do not divide the item count.
func TestBlockedBroadcastMixedGranularity(t *testing.T) {
	const n = 1000
	want := ExpectedChecksum(n)
	cfgs := []Config{
		{Items: n, WriterBlock: 7, ReaderBlocks: []int{1, 3, 64, 1000}},
		{Items: n, WriterBlock: 1000, ReaderBlocks: []int{1, 999}},
		{Items: n, WriterBlock: 1, ReaderBlocks: []int{128}},
		{Items: n, WriterBlock: 13, ReaderBlocks: []int{17, 19, 23}},
	}
	for _, cfg := range cfgs {
		res := Run(cfg)
		for r, sum := range res.ReaderSums {
			if sum != want {
				t.Errorf("writerBlock=%d readerBlock=%d: checksum %x, want %x",
					cfg.WriterBlock, cfg.ReaderBlocks[r], sum, want)
			}
		}
	}
}

// TestBroadcastSequentialEquivalence: the broadcast program is one of the
// two the paper singles out as sequentially equivalent (E9): running the
// writer to completion and then each reader gives the same checksums.
func TestBroadcastSequentialEquivalence(t *testing.T) {
	const n = 200
	for _, mode := range sthreads.Modes {
		res := Run(Config{Items: n, WriterBlock: 3, ReaderBlocks: []int{1, 5}, Mode: mode})
		want := ExpectedChecksum(n)
		for r, sum := range res.ReaderSums {
			t.Logf("mode=%v reader=%d", mode, r)
			if sum != want {
				t.Errorf("mode %v reader %d checksum mismatch", mode, r)
			}
		}
	}
}

// TestBroadcastAllImpls: every counter implementation carries the pattern
// (E11).
func TestBroadcastAllImpls(t *testing.T) {
	const n = 300
	want := ExpectedChecksum(n)
	for _, impl := range core.Impls {
		res := Run(Config{Items: n, WriterBlock: 4, ReaderBlocks: []int{1, 9}, Impl: impl})
		for r, sum := range res.ReaderSums {
			if sum != want {
				t.Errorf("impl %s reader %d checksum mismatch", impl, r)
			}
		}
	}
}

// TestQuickBroadcastBlockSizes: property test over arbitrary block sizes.
func TestQuickBroadcastBlockSizes(t *testing.T) {
	f := func(n8, wb8 uint8, rbs []uint8) bool {
		n := int(n8%200) + 1
		wb := int(wb8)%n + 1
		if len(rbs) > 4 {
			rbs = rbs[:4]
		}
		if len(rbs) == 0 {
			rbs = []uint8{1}
		}
		blocks := make([]int, len(rbs))
		for i, b := range rbs {
			blocks[i] = int(b)%(n+4) + 1 // may exceed n: Check clamps to n
		}
		res := Run(Config{Items: n, WriterBlock: wb, ReaderBlocks: blocks})
		want := ExpectedChecksum(n)
		for _, sum := range res.ReaderSums {
			if sum != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroItems: an empty sequence deadlock-free for all participants.
func TestZeroItems(t *testing.T) {
	res := Run(Config{Items: 0, WriterBlock: 5, ReaderBlocks: []int{1, 2}})
	for r, sum := range res.ReaderSums {
		if sum != 0 {
			t.Errorf("reader %d nonzero checksum on empty sequence", r)
		}
	}
}

// TestSingleCounterManyQueues demonstrates the section 5.3 point that one
// counter serves readers waiting at many distinct levels: with per-item
// readers at staggered positions the reference counter's peak level count
// exceeds one.
func TestSingleCounterManyQueues(t *testing.T) {
	res := Run(Config{
		Items:        400,
		WriterBlock:  1,
		ReaderBlocks: []int{1, 2, 3, 5, 8},
		WorkUnits:    50,
	})
	if res.Stats.Increments == 0 {
		t.Fatal("stats not collected")
	}
	want := ExpectedChecksum(400)
	for r, sum := range res.ReaderSums {
		if sum != want {
			t.Errorf("reader %d checksum mismatch", r)
		}
	}
}

// TestBoundedBufferDistributes: the semaphore buffer hands each item to
// exactly one consumer — the opposite of broadcast replication.
func TestBoundedBufferDistributes(t *testing.T) {
	const n = 500
	const consumers = 4
	b := NewBoundedBuffer[int](8)
	var mu sync.Mutex
	seen := make(map[int]int)
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := b.Get()
				if v < 0 {
					return
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		b.Put(i)
	}
	for c := 0; c < consumers; c++ {
		b.Put(-1) // poison pill per consumer
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("consumed %d distinct items, want %d", len(seen), n)
	}
	for v, count := range seen {
		if count != 1 {
			t.Fatalf("item %d consumed %d times", v, count)
		}
	}
}

// TestBoundedBufferBlocksWhenFull: a producer cannot overrun capacity.
func TestBoundedBufferBlocksWhenFull(t *testing.T) {
	b := NewBoundedBuffer[int](2)
	b.Put(1)
	b.Put(2)
	done := make(chan struct{})
	go func() {
		b.Put(3) // must block until a Get
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Put succeeded on a full buffer")
	default:
	}
	if got := b.Get(); got != 1 {
		t.Fatalf("Get = %d, want 1 (FIFO)", got)
	}
	<-done
	if got := b.Get(); got != 2 {
		t.Fatalf("Get = %d, want 2", got)
	}
	if got := b.Get(); got != 3 {
		t.Fatalf("Get = %d, want 3", got)
	}
}

func TestNewBoundedBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewBoundedBuffer[int](0)
}
