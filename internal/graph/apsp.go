package graph

import (
	"monotonic/internal/core"
	"monotonic/internal/sthreads"
	"monotonic/internal/sync2"
	"monotonic/internal/workload"
)

// This file contains the four ShortestPaths programs of the paper's
// section 4, transliterated from its pseudo-code. Each takes the edge
// matrix and returns the path matrix. The multithreaded variants
// additionally take the thread count, the execution mode (Concurrent for
// real threading, Sequential for the section 6 equivalence experiments),
// and an optional per-thread Skew that injects artificial load imbalance
// for the E4 performance experiments (skew == nil means no extra work).
//
// All variants partition the rows among threads with the paper's
// t*N/numThreads block rule.

// perRowWork burns skewed synthetic work attributed to one row update, so
// load imbalance between threads is controllable in benchmarks.
func perRowWork(skew workload.Skew, t, numThreads int) {
	if skew != nil {
		workload.SpinSkewed(skew, t, numThreads, 200)
	}
}

// ShortestPaths1 is the sequential Floyd-Warshall algorithm (section 4.2).
func ShortestPaths1(edge Matrix) Matrix {
	n := edge.N()
	path := edge.Clone()
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if newPath := addSat(path[i][k], path[k][j]); newPath < path[i][j] {
					path[i][j] = newPath
				}
			}
		}
	}
	return path
}

// ShortestPaths2 is the multithreaded Floyd-Warshall algorithm with an
// N-way barrier keeping iterations in lockstep (section 4.3).
func ShortestPaths2(edge Matrix, numThreads int, mode sthreads.Mode, skew workload.Skew) Matrix {
	n := edge.N()
	path := edge.Clone()
	b := sync2.NewBarrier(numThreads)
	if mode == sthreads.Sequential {
		// A barrier program is not sequentially executable for
		// numThreads > 1 (the first Pass would deadlock); this is the
		// structural weakness sections 4.5 and 6 point out. Run the
		// plain sequential algorithm instead so callers can still
		// cross-check results.
		if numThreads > 1 {
			return ShortestPaths1(edge)
		}
	}
	sthreads.For(mode, 0, numThreads, 1, func(t int) {
		lo, hi := t*n/numThreads, (t+1)*n/numThreads
		for k := 0; k < n; k++ {
			for i := lo; i < hi; i++ {
				row, krow := path[i], path[k]
				pik := row[k]
				for j := 0; j < n; j++ {
					if newPath := addSat(pik, krow[j]); newPath < row[j] {
						row[j] = newPath
					}
				}
				perRowWork(skew, t, numThreads)
			}
			b.Pass()
		}
	})
	return path
}

// ShortestPaths3CV is the more efficient multithreaded algorithm of
// section 4.4: threads proceed independently, gated per iteration by an
// array of N condition variables (manual-reset events), with row k of
// iteration k-1 staged in kRow[k].
func ShortestPaths3CV(edge Matrix, numThreads int, mode sthreads.Mode, skew workload.Skew) Matrix {
	n := edge.N()
	path := edge.Clone()
	kDone := make([]sync2.Event, n+1)
	kRow := make(Matrix, n+1)
	kRow[0] = append([]int(nil), path[0]...)
	kDone[0].Set()
	sthreads.For(mode, 0, numThreads, 1, func(t int) {
		lo, hi := t*n/numThreads, (t+1)*n/numThreads
		for k := 0; k < n; k++ {
			kDone[k].Check()
			krow := kRow[k]
			for i := lo; i < hi; i++ {
				row := path[i]
				pik := row[k]
				for j := 0; j < n; j++ {
					if newPath := addSat(pik, krow[j]); newPath < row[j] {
						row[j] = newPath
					}
				}
				perRowWork(skew, t, numThreads)
				if i == k+1 {
					kRow[k+1] = append([]int(nil), path[k+1]...)
					kDone[k+1].Set()
				}
			}
		}
	})
	return path
}

// ShortestPaths3 is the paper's headline program (section 4.5): the
// condition-variable array of ShortestPaths3CV replaced by a single
// monotonic counter, whose value k means "rows for iterations 0..k are
// published".
func ShortestPaths3(edge Matrix, numThreads int, mode sthreads.Mode, skew workload.Skew) Matrix {
	return shortestPathsCounter(edge, numThreads, mode, skew, core.New())
}

// ShortestPaths3Impl is ShortestPaths3 parameterized by counter
// implementation, for the E11 ablation.
func ShortestPaths3Impl(edge Matrix, numThreads int, mode sthreads.Mode, skew workload.Skew, impl core.Impl) Matrix {
	return shortestPathsCounter(edge, numThreads, mode, skew, core.NewImpl(impl))
}

func shortestPathsCounter(edge Matrix, numThreads int, mode sthreads.Mode, skew workload.Skew, kCount core.Interface) Matrix {
	n := edge.N()
	path := edge.Clone()
	kRow := make(Matrix, n+1)
	kRow[0] = append([]int(nil), path[0]...)
	sthreads.For(mode, 0, numThreads, 1, func(t int) {
		lo, hi := t*n/numThreads, (t+1)*n/numThreads
		for k := 0; k < n; k++ {
			kCount.Check(uint64(k))
			krow := kRow[k]
			for i := lo; i < hi; i++ {
				row := path[i]
				pik := row[k]
				for j := 0; j < n; j++ {
					if newPath := addSat(pik, krow[j]); newPath < row[j] {
						row[j] = newPath
					}
				}
				perRowWork(skew, t, numThreads)
				if i == k+1 {
					kRow[k+1] = append([]int(nil), path[k+1]...)
					kCount.Increment(1)
				}
			}
		}
	})
	return path
}
