package graph

import (
	"testing"
	"testing/quick"

	"monotonic/internal/core"
	"monotonic/internal/sthreads"
	"monotonic/internal/workload"
)

// TestFigure1 reproduces the paper's Figure 1 (experiment E1): running
// Floyd-Warshall on the figure's edge matrix yields the figure's path
// matrix, and every multithreaded variant agrees.
func TestFigure1(t *testing.T) {
	edge := Figure1()
	want := Figure1Paths()
	if got := ShortestPaths1(edge); !got.Equal(want) {
		t.Fatalf("ShortestPaths1(Figure1):\n%v\nwant:\n%v", got, want)
	}
	for _, nt := range []int{1, 2, 3} {
		if got := ShortestPaths2(edge, nt, sthreads.Concurrent, nil); !got.Equal(want) {
			t.Errorf("ShortestPaths2 nt=%d wrong:\n%v", nt, got)
		}
		if got := ShortestPaths3CV(edge, nt, sthreads.Concurrent, nil); !got.Equal(want) {
			t.Errorf("ShortestPaths3CV nt=%d wrong:\n%v", nt, got)
		}
		if got := ShortestPaths3(edge, nt, sthreads.Concurrent, nil); !got.Equal(want) {
			t.Errorf("ShortestPaths3 nt=%d wrong:\n%v", nt, got)
		}
	}
}

func TestFigure1HasNoNegativeCycle(t *testing.T) {
	if HasNegativeCycle(Figure1()) {
		t.Fatal("Figure 1 graph reported a negative cycle")
	}
}

func TestNewMatrix(t *testing.T) {
	m := NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := Inf
			if i == j {
				want = 0
			}
			if m[i][j] != want {
				t.Fatalf("m[%d][%d] = %d", i, j, m[i][j])
			}
		}
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := Figure1()
	c := m.Clone()
	c[0][1] = 99
	if m[0][1] == 99 {
		t.Fatal("Clone shares storage with original")
	}
	if !m.Clone().Equal(m) {
		t.Fatal("Clone not equal to original")
	}
}

func TestMatrixEqualShapes(t *testing.T) {
	if NewMatrix(3).Equal(NewMatrix(4)) {
		t.Fatal("different sizes reported equal")
	}
}

func TestMatrixStringInf(t *testing.T) {
	s := NewMatrix(2).String()
	if s != "0 ∞\n∞ 0\n" {
		t.Fatalf("String() = %q", s)
	}
}

// TestSequentialAgreesWithBellmanFord cross-checks Floyd-Warshall against
// the independent Bellman-Ford oracle on random graphs, with and without
// negative weights.
func TestSequentialAgreesWithBellmanFord(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		edge := Random(40, 0.3, 20, seed)
		want, ok := AllPairsBellmanFord(edge)
		if !ok {
			t.Fatal("nonnegative graph reported negative cycle")
		}
		if got := ShortestPaths1(edge); !got.Equal(want) {
			t.Fatalf("seed %d: FW disagrees with Bellman-Ford", seed)
		}

		negEdge := RandomNegative(40, 0.3, 12, 6, seed)
		want, ok = AllPairsBellmanFord(negEdge)
		if !ok {
			t.Fatalf("seed %d: RandomNegative produced a negative cycle", seed)
		}
		if got := ShortestPaths1(negEdge); !got.Equal(want) {
			t.Fatalf("seed %d: FW disagrees with Bellman-Ford on negative weights", seed)
		}
	}
}

// TestRandomNegativeNeverHasNegativeCycle verifies the potential-based
// construction over many seeds (property test).
func TestRandomNegativeNeverHasNegativeCycle(t *testing.T) {
	f := func(seed uint64) bool {
		edge := RandomNegative(24, 0.4, 10, 8, seed)
		return !HasNegativeCycle(edge)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShortestPathsVariantsAgree is experiment E3: on random graphs all
// four programs produce identical path matrices for every thread count.
func TestShortestPathsVariantsAgree(t *testing.T) {
	for _, n := range []int{1, 2, 7, 32, 64} {
		for _, nt := range []int{1, 2, 3, 8} {
			edge := RandomNegative(n, 0.35, 15, 5, uint64(n*100+nt))
			want := ShortestPaths1(edge)
			if got := ShortestPaths2(edge, nt, sthreads.Concurrent, nil); !got.Equal(want) {
				t.Errorf("n=%d nt=%d: barrier variant disagrees", n, nt)
			}
			if got := ShortestPaths3CV(edge, nt, sthreads.Concurrent, nil); !got.Equal(want) {
				t.Errorf("n=%d nt=%d: condvar variant disagrees", n, nt)
			}
			if got := ShortestPaths3(edge, nt, sthreads.Concurrent, nil); !got.Equal(want) {
				t.Errorf("n=%d nt=%d: counter variant disagrees", n, nt)
			}
		}
	}
}

// TestShortestPathsUnderSkew: correctness is unaffected by injected load
// imbalance (only timing should change).
func TestShortestPathsUnderSkew(t *testing.T) {
	edge := Random(48, 0.3, 25, 99)
	want := ShortestPaths1(edge)
	skews := []workload.Skew{workload.Uniform{}, workload.OneSlow{Max: 4}, workload.Linear{Max: 3}}
	for _, sk := range skews {
		if got := ShortestPaths2(edge, 4, sthreads.Concurrent, sk); !got.Equal(want) {
			t.Errorf("skew %s: barrier variant disagrees", sk.Name())
		}
		if got := ShortestPaths3(edge, 4, sthreads.Concurrent, sk); !got.Equal(want) {
			t.Errorf("skew %s: counter variant disagrees", sk.Name())
		}
	}
}

// TestShortestPathsCounterImpls: every counter implementation drives the
// counter variant to the right answer (part of E11).
func TestShortestPathsCounterImpls(t *testing.T) {
	edge := RandomNegative(48, 0.35, 15, 5, 7)
	want := ShortestPaths1(edge)
	for _, impl := range core.Impls {
		if got := ShortestPaths3Impl(edge, 4, sthreads.Concurrent, nil, impl); !got.Equal(want) {
			t.Errorf("impl %s: counter variant disagrees", impl)
		}
	}
}

// TestSingleThreadSequentialMode: with one thread the counter and condvar
// programs are sequentially executable (each row k+1 is published before
// iteration k+1 needs it), so Sequential mode must work and agree — the
// boundary case of the section 6 equivalence property.
func TestSingleThreadSequentialMode(t *testing.T) {
	edge := RandomNegative(32, 0.35, 15, 5, 11)
	want := ShortestPaths1(edge)
	if got := ShortestPaths3(edge, 1, sthreads.Sequential, nil); !got.Equal(want) {
		t.Error("counter variant wrong in sequential mode")
	}
	if got := ShortestPaths3CV(edge, 1, sthreads.Sequential, nil); !got.Equal(want) {
		t.Error("condvar variant wrong in sequential mode")
	}
	if got := ShortestPaths2(edge, 1, sthreads.Sequential, nil); !got.Equal(want) {
		t.Error("barrier variant wrong in sequential mode")
	}
}

func TestBellmanFordDetectsNegativeCycle(t *testing.T) {
	edge := NewMatrix(3)
	edge[0][1] = 1
	edge[1][2] = -5
	edge[2][0] = 1 // cycle length -3
	if _, ok := AllPairsBellmanFord(edge); ok {
		t.Fatal("negative cycle not detected by Bellman-Ford")
	}
	if !HasNegativeCycle(edge) {
		t.Fatal("negative cycle not detected by Floyd-Warshall diagonal")
	}
}

func TestRandomDensity(t *testing.T) {
	edge := Random(50, 0, 10, 1)
	for i := range edge {
		for j := range edge[i] {
			if i != j && edge[i][j] != Inf {
				t.Fatal("density 0 produced an edge")
			}
		}
	}
	edge = Random(50, 1, 10, 1)
	for i := range edge {
		for j := range edge[i] {
			if i != j && edge[i][j] == Inf {
				t.Fatal("density 1 missing an edge")
			}
			if i == j && edge[i][j] != 0 {
				t.Fatal("self-edge weight nonzero")
			}
		}
	}
}
