package graph_test

import (
	"fmt"

	"monotonic/internal/graph"
	"monotonic/internal/sthreads"
)

// The paper's Figure 1 example, solved with the counter variant.
func ExampleShortestPaths3() {
	edge := graph.Figure1()
	path := graph.ShortestPaths3(edge, 3, sthreads.Concurrent, nil)
	fmt.Print(path)
	// Output:
	// 0 -1 2
	// 4 0 6
	// 1 -3 0
}
