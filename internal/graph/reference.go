package graph

// BellmanFord computes single-source shortest paths from src by edge
// relaxation, an algorithm wholly independent of Floyd-Warshall; it is the
// cross-check oracle for the APSP variants. It reports ok=false if a
// negative cycle is reachable (the generators never produce one, but the
// oracle checks rather than assumes).
func BellmanFord(edge Matrix, src int) (dist []int, ok bool) {
	n := edge.N()
	dist = make([]int, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	for round := 0; round < n-1; round++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] >= Inf {
				continue
			}
			for v := 0; v < n; v++ {
				if w := edge[u][v]; w < Inf {
					if d := dist[u] + w; d < dist[v] {
						dist[v] = d
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	// One more sweep: any further improvement means a negative cycle.
	for u := 0; u < n; u++ {
		if dist[u] >= Inf {
			continue
		}
		for v := 0; v < n; v++ {
			if w := edge[u][v]; w < Inf && dist[u]+w < dist[v] {
				return nil, false
			}
		}
	}
	return dist, true
}

// AllPairsBellmanFord runs BellmanFord from every source, producing a path
// matrix to compare against the Floyd-Warshall variants. ok=false reports
// a negative cycle.
func AllPairsBellmanFord(edge Matrix) (Matrix, bool) {
	n := edge.N()
	out := make(Matrix, n)
	for s := 0; s < n; s++ {
		dist, ok := BellmanFord(edge, s)
		if !ok {
			return nil, false
		}
		out[s] = dist
	}
	return out, true
}

// HasNegativeCycle reports whether the graph contains a negative-length
// cycle, by checking the diagonal of the Floyd-Warshall closure.
func HasNegativeCycle(edge Matrix) bool {
	path := ShortestPaths1(edge)
	for i := range path {
		if path[i][i] < 0 {
			return true
		}
	}
	return false
}
