// Package graph provides the all-pairs shortest-path substrate for the
// paper's section 4 experiments: weighted-digraph generation (including
// negative edge weights without negative cycles), the sequential
// Floyd-Warshall algorithm, the three multithreaded variants from the
// paper (barrier, condition-variable array, single counter), and an
// independent Bellman-Ford reference for cross-checking.
package graph

import (
	"fmt"
	"strings"

	"monotonic/internal/workload"
)

// Inf is the edge weight meaning "no edge". It is chosen so that
// Inf + Inf still fits in an int without overflow on 64-bit platforms and
// comparisons behave as +infinity for every realistic path length.
const Inf = int(1) << 40

// Matrix is a square edge-weight or path-length matrix.
type Matrix [][]int

// NewMatrix returns an n x n matrix with zero diagonal and Inf elsewhere.
func NewMatrix(n int) Matrix {
	m := make(Matrix, n)
	cells := make([]int, n*n)
	for i := range m {
		m[i], cells = cells[:n], cells[n:]
		for j := range m[i] {
			if i != j {
				m[i][j] = Inf
			}
		}
	}
	return m
}

// N returns the dimension of the matrix.
func (m Matrix) N() int { return len(m) }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	n := len(m)
	out := make(Matrix, n)
	cells := make([]int, n*n)
	for i := range out {
		out[i], cells = cells[:n], cells[n:]
		copy(out[i], m[i])
	}
	return out
}

// Equal reports whether two matrices are identical.
func (m Matrix) Equal(o Matrix) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if len(m[i]) != len(o[i]) {
			return false
		}
		for j := range m[i] {
			if m[i][j] != o[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders the matrix with Inf drawn as the paper's "∞".
func (m Matrix) String() string {
	var b strings.Builder
	for _, row := range m {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			if v >= Inf {
				b.WriteString("∞")
			} else {
				fmt.Fprintf(&b, "%d", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// addSat adds path lengths, saturating at Inf so "no path" propagates.
func addSat(a, b int) int {
	if a >= Inf || b >= Inf {
		return Inf
	}
	return a + b
}

// Random generates the edge matrix of a random weighted digraph with n
// vertices. Each ordered pair (u != v) receives an edge with probability
// density; weights are nonnegative in [0, maxWeight]. Self-edges have
// weight zero, as the problem requires.
func Random(n int, density float64, maxWeight int, seed uint64) Matrix {
	rng := workload.NewRNG(seed)
	m := NewMatrix(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < density {
				m[u][v] = rng.Intn(maxWeight + 1)
			}
		}
	}
	return m
}

// RandomNegative generates a random digraph that contains negative edge
// weights but no negative-length cycles. It assigns each vertex a
// potential p(v) and sets w(u,v) = c(u,v) + p(u) - p(v) with c >= 0;
// every cycle's potential terms telescope to zero, so all cycle lengths
// stay nonnegative (the inverse of Johnson's reweighting). Self-edges have
// weight zero.
func RandomNegative(n int, density float64, maxWeight, maxPotential int, seed uint64) Matrix {
	rng := workload.NewRNG(seed)
	pot := make([]int, n)
	for v := range pot {
		pot[v] = rng.Intn(2*maxPotential+1) - maxPotential
	}
	m := NewMatrix(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < density {
				m[u][v] = rng.Intn(maxWeight+1) + pot[u] - pot[v]
			}
		}
	}
	return m
}

// Figure1 returns the 3-vertex input (edge) matrix of the paper's
// Figure 1: edges V0->V1 (weight 1), V0->V2 (2), V1->V0 (4), V2->V1 (-3).
func Figure1() Matrix {
	return Matrix{
		{0, 1, 2},
		{4, 0, Inf},
		{Inf, -3, 0},
	}
}

// Figure1Paths returns the output (path) matrix the paper's Figure 1
// gives for that graph: e.g. the shortest V0->V1 path is V0->V2->V1 with
// length 2 + (-3) = -1.
func Figure1Paths() Matrix {
	return Matrix{
		{0, -1, 2},
		{4, 0, 6},
		{1, -3, 0},
	}
}
