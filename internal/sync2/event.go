package sync2

import "sync"

// Event is a manual-reset event in the Win32 style: the "Condition"
// objects of the paper's ShortestPaths3 program (section 4.4). An event is
// initially unset. Set releases every goroutine suspended in Check and
// makes all future Checks pass immediately; an event, once set, stays set.
//
// Unlike a monotonic counter, an event distinguishes only two states, so
// synchronizing N phases takes an array of N events where a single counter
// suffices — that is the storage cost section 4.5 eliminates.
//
// The zero value is a valid unset event.
type Event struct {
	mu   sync.Mutex
	cond sync.Cond
	set  bool
	init sync.Once
}

// NewEvent returns an unset event. Equivalent to new(Event).
func NewEvent() *Event { return new(Event) }

func (e *Event) lazyInit() {
	e.init.Do(func() { e.cond.L = &e.mu })
}

// Set marks the event signaled, waking all current waiters. Setting an
// already-set event is a no-op.
func (e *Event) Set() {
	e.lazyInit()
	e.mu.Lock()
	if !e.set {
		e.set = true
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Check suspends the caller until the event is set. If the event is
// already set, Check returns immediately.
func (e *Event) Check() {
	e.lazyInit()
	e.mu.Lock()
	for !e.set {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// IsSet reports whether the event is set. For testing and tracing only —
// the same instantaneous-value caveat as a counter's Value applies.
func (e *Event) IsSet() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.set
}
