package sync2

import "sync"

// Barrier is an N-way cyclic barrier: each of n parties calls Pass, and no
// call returns until all n have arrived. The barrier then resets for the
// next cycle, so it can synchronize the iterations of a time-stepped loop
// (the paper's ShortestPaths2 and the traditional stencil program).
//
// The implementation is the central condition-variable design with a
// generation count: arrivals of one cycle cannot be confused with arrivals
// of the next even if a fast thread laps a slow one.
type Barrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	n       int
	arrived int
	gen     uint64
}

// NewBarrier returns a barrier for n parties. It panics if n < 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sync2: NewBarrier requires n >= 1")
	}
	b := &Barrier{n: n}
	b.cond.L = &b.mu
	return b
}

// Pass blocks until all n parties have called Pass for the current cycle.
// The returned value is the index of the caller's arrival in this cycle
// (0-based); the last arriver gets n-1. The index is useful for electing a
// per-cycle leader.
func (b *Barrier) Pass() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	order := b.arrived
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return order
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
	}
	return order
}

// N returns the party count the barrier was created with.
func (b *Barrier) N() int { return b.n }

// SenseBarrier is the classic sense-reversing barrier: a shared arrival
// counter plus a flag whose polarity flips each cycle. Each party carries
// its own local sense (returned by Register), so the hot path is one
// atomic decrement and a spin-free wait on the condition variable. It is
// behaviourally identical to Barrier and exists as the second traditional
// implementation for the E4/E5 comparisons.
type SenseBarrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	sense bool
}

// NewSenseBarrier returns a sense-reversing barrier for n parties.
func NewSenseBarrier(n int) *SenseBarrier {
	if n < 1 {
		panic("sync2: NewSenseBarrier requires n >= 1")
	}
	b := &SenseBarrier{n: n, count: n}
	b.cond.L = &b.mu
	return b
}

// Sense is one party's registration with a SenseBarrier.
type Sense struct {
	b     *SenseBarrier
	local bool
}

// Register returns a per-party handle. Each party must use its own handle
// for all its Pass calls.
func (b *SenseBarrier) Register() *Sense {
	return &Sense{b: b, local: true}
}

// Pass blocks until all n parties have called Pass in this cycle.
func (s *Sense) Pass() {
	b := s.b
	local := s.local
	s.local = !s.local
	b.mu.Lock()
	b.count--
	if b.count == 0 {
		b.count = b.n
		b.sense = local
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.sense != local {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
