package sync2

import "sync"

// SingleAssignment is a single-assignment ("sync") variable in the
// CC++/PCN tradition discussed in section 8: it may be written exactly
// once, and reads suspend until the write has happened. It couples
// synchronization with data transfer — the coupling counters deliberately
// separate (section 8, point (i)).
type SingleAssignment[T any] struct {
	mu    sync.Mutex
	cond  sync.Cond
	init  sync.Once
	set   bool
	value T
}

func (v *SingleAssignment[T]) lazyInit() {
	v.init.Do(func() { v.cond.L = &v.mu })
}

// Assign writes the value. A second Assign panics: single-assignment
// variables are written exactly once.
func (v *SingleAssignment[T]) Assign(value T) {
	v.lazyInit()
	v.mu.Lock()
	if v.set {
		v.mu.Unlock()
		panic("sync2: SingleAssignment assigned twice")
	}
	v.value = value
	v.set = true
	v.cond.Broadcast()
	v.mu.Unlock()
}

// Read suspends until the variable has been assigned, then returns its
// value.
func (v *SingleAssignment[T]) Read() T {
	v.lazyInit()
	v.mu.Lock()
	for !v.set {
		v.cond.Wait()
	}
	value := v.value
	v.mu.Unlock()
	return value
}

// TryRead returns the value and true if assigned, the zero value and
// false otherwise, without suspending.
func (v *SingleAssignment[T]) TryRead() (T, bool) {
	v.lazyInit()
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.value, v.set
}
