package sync2

import "sync"

// Semaphore is a counting semaphore with Dijkstra's P (acquire) and V
// (release) operations, built on a mutex and condition variable. It is the
// classical mechanism for the multiple-writers multiple-readers bounded
// buffer that section 5.3 contrasts with the counter's single-writer
// multiple-reader broadcast: a semaphore transfers permits (each V wakes
// one P), whereas a counter broadcasts a monotone level to everyone.
type Semaphore struct {
	mu    sync.Mutex
	cond  sync.Cond
	value int
}

// NewSemaphore returns a semaphore with the given initial permit count.
// It panics if initial is negative.
func NewSemaphore(initial int) *Semaphore {
	if initial < 0 {
		panic("sync2: NewSemaphore requires initial >= 0")
	}
	s := &Semaphore{value: initial}
	s.cond.L = &s.mu
	return s
}

// P acquires one permit, suspending until one is available.
func (s *Semaphore) P() {
	s.mu.Lock()
	for s.value == 0 {
		s.cond.Wait()
	}
	s.value--
	s.mu.Unlock()
}

// V releases one permit, waking one suspended P if any.
func (s *Semaphore) V() {
	s.mu.Lock()
	s.value++
	s.cond.Signal()
	s.mu.Unlock()
}

// TryP acquires a permit without suspending, reporting success.
func (s *Semaphore) TryP() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.value == 0 {
		return false
	}
	s.value--
	return true
}
