package sync2

import "sync"

// Monitor is a Mesa-style monitor (Hoare's structuring concept, with
// signal-and-continue semantics as implemented by every modern system): a
// mutual-exclusion region plus any number of named condition queues
// declared up front. Section 8 of the paper contrasts monitors with
// counters precisely here — a monitor has a *statically bounded* number
// of suspension queues (one per declared condition), while a counter
// grows and shrinks queues per waited-on level at run time.
type Monitor struct {
	mu sync.Mutex
}

// Enter acquires the monitor.
func (m *Monitor) Enter() { m.mu.Lock() }

// Leave releases the monitor.
func (m *Monitor) Leave() { m.mu.Unlock() }

// Do runs f inside the monitor.
func (m *Monitor) Do(f func()) {
	m.Enter()
	defer m.Leave()
	f()
}

// Condition is one of a monitor's suspension queues.
type Condition struct {
	m    *Monitor
	cond sync.Cond
}

// NewCondition declares a condition queue of this monitor.
func (m *Monitor) NewCondition() *Condition {
	c := &Condition{m: m}
	c.cond.L = &m.mu
	return c
}

// Wait atomically releases the monitor and suspends until signalled;
// the monitor is re-acquired before returning. As with all Mesa monitors
// the guarded predicate must be re-checked in a loop by the caller.
// Wait must be called with the monitor entered.
func (c *Condition) Wait() { c.cond.Wait() }

// Signal wakes one waiter, if any. Must be called with the monitor
// entered.
func (c *Condition) Signal() { c.cond.Signal() }

// Broadcast wakes every waiter. Must be called with the monitor entered.
func (c *Condition) Broadcast() { c.cond.Broadcast() }
