package sync2

import "sync"

// TicketLock is a FIFO mutual-exclusion lock: acquirers take strictly
// increasing tickets and are served in ticket order. It exists for the
// section 5.2 comparison — even a perfectly fair lock orders critical
// sections by *arrival time*, which varies run to run, whereas a pair of
// counter operations orders them by *thread index*, which does not. The
// dispenser/serving structure also shows how close a lock is to a counter:
// serving is a monotonic counter whose levels are consumed one at a time.
//
// The zero value is a valid unlocked TicketLock.
type TicketLock struct {
	mu      sync.Mutex
	cond    sync.Cond
	init    sync.Once
	next    uint64 // next ticket to hand out
	serving uint64 // ticket currently allowed in
}

func (l *TicketLock) lazyInit() {
	l.init.Do(func() { l.cond.L = &l.mu })
}

// Lock acquires the lock, suspending until the caller's ticket is served.
func (l *TicketLock) Lock() {
	l.lazyInit()
	l.mu.Lock()
	ticket := l.next
	l.next++
	for l.serving != ticket {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// Unlock releases the lock, admitting the next ticket holder. It panics if
// the lock is not held.
func (l *TicketLock) Unlock() {
	l.lazyInit()
	l.mu.Lock()
	if l.serving == l.next {
		l.mu.Unlock()
		panic("sync2: Unlock of unlocked TicketLock")
	}
	l.serving++
	l.cond.Broadcast()
	l.mu.Unlock()
}
