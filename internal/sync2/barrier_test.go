package sync2

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// passer abstracts the two barrier designs so they share tests.
type passer interface{ pass() }

type centralPasser struct{ b *Barrier }

func (p centralPasser) pass() { p.b.Pass() }

type sensePasser struct{ s *Sense }

func (p sensePasser) pass() { p.s.Pass() }

// makeParties returns per-party passers for each design.
func makeParties(design string, n int) []passer {
	out := make([]passer, n)
	switch design {
	case "central":
		b := NewBarrier(n)
		for i := range out {
			out[i] = centralPasser{b}
		}
	case "sense":
		b := NewSenseBarrier(n)
		for i := range out {
			out[i] = sensePasser{b.Register()}
		}
	default:
		panic("unknown design " + design)
	}
	return out
}

func forEachBarrier(t *testing.T, f func(t *testing.T, design string)) {
	for _, design := range []string{"central", "sense"} {
		design := design
		t.Run(design, func(t *testing.T) {
			t.Parallel()
			f(t, design)
		})
	}
}

func TestBarrierSingleParty(t *testing.T) {
	forEachBarrier(t, func(t *testing.T, design string) {
		parties := makeParties(design, 1)
		done := make(chan struct{})
		go func() {
			for i := 0; i < 100; i++ {
				parties[0].pass()
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("single-party barrier blocked")
		}
	})
}

// TestBarrierLockstep: with n parties each incrementing a shared step
// counter between passes, no party may ever observe another party more
// than one step away.
func TestBarrierLockstep(t *testing.T) {
	forEachBarrier(t, func(t *testing.T, design string) {
		const n = 8
		const steps = 200
		parties := makeParties(design, n)
		var stepOf [n]atomic.Int64
		var bad atomic.Bool
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for s := 1; s <= steps; s++ {
					stepOf[p].Store(int64(s))
					parties[p].pass()
					// After the pass, every party must have reached
					// step s (they may already be at s+1).
					for q := 0; q < n; q++ {
						v := stepOf[q].Load()
						if v < int64(s) || v > int64(s+1) {
							bad.Store(true)
						}
					}
				}
			}(p)
		}
		wg.Wait()
		if bad.Load() {
			t.Fatal("barrier failed to keep parties in lockstep")
		}
	})
}

func TestBarrierManyCycles(t *testing.T) {
	forEachBarrier(t, func(t *testing.T, design string) {
		const n = 4
		const cycles = 1000
		parties := makeParties(design, n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for c := 0; c < cycles; c++ {
					parties[p].pass()
				}
			}(p)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("barrier deadlocked across cycles")
		}
	})
}

func TestBarrierArrivalIndex(t *testing.T) {
	const n = 6
	b := NewBarrier(n)
	var wg sync.WaitGroup
	seen := make([]atomic.Bool, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idx := b.Pass()
			if idx < 0 || idx >= n {
				t.Errorf("arrival index %d out of range", idx)
				return
			}
			if seen[idx].Swap(true) {
				t.Errorf("duplicate arrival index %d", idx)
			}
		}()
	}
	wg.Wait()
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("arrival index %d never assigned", i)
		}
	}
}

func TestNewBarrierPanicsOnBadN(t *testing.T) {
	for _, ctor := range []func(){
		func() { NewBarrier(0) },
		func() { NewSenseBarrier(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor with n=0 did not panic")
				}
			}()
			ctor()
		}()
	}
}
