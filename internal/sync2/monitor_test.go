package sync2

import (
	"sync"
	"testing"
	"time"
)

// TestMonitorBoundedBuffer implements the textbook two-condition bounded
// buffer on the monitor and checks FIFO delivery under concurrency.
func TestMonitorBoundedBuffer(t *testing.T) {
	const capacity = 4
	const items = 200

	var m Monitor
	notFull := m.NewCondition()
	notEmpty := m.NewCondition()
	var buf []int

	put := func(v int) {
		m.Enter()
		for len(buf) == capacity {
			notFull.Wait()
		}
		buf = append(buf, v)
		notEmpty.Signal()
		m.Leave()
	}
	get := func() int {
		m.Enter()
		for len(buf) == 0 {
			notEmpty.Wait()
		}
		v := buf[0]
		buf = buf[1:]
		notFull.Signal()
		m.Leave()
		return v
	}

	var wg sync.WaitGroup
	wg.Add(1)
	received := make([]int, 0, items)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			received = append(received, get())
		}
	}()
	for i := 0; i < items; i++ {
		put(i)
	}
	wg.Wait()
	for i, v := range received {
		if v != i {
			t.Fatalf("received[%d] = %d; single-producer FIFO violated", i, v)
		}
	}
}

func TestMonitorMutualExclusion(t *testing.T) {
	var m Monitor
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				m.Do(func() { counter++ })
			}
		}()
	}
	wg.Wait()
	if counter != 8*500 {
		t.Fatalf("counter = %d, want %d", counter, 8*500)
	}
}

func TestMonitorBroadcastWakesAll(t *testing.T) {
	var m Monitor
	ready := m.NewCondition()
	go_ := false
	var wg sync.WaitGroup
	const n = 10
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Enter()
			for !go_ {
				ready.Wait()
			}
			m.Leave()
		}()
	}
	time.Sleep(20 * time.Millisecond)
	m.Enter()
	go_ = true
	ready.Broadcast()
	m.Leave()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast did not wake all waiters")
	}
}

func TestMonitorTwoConditionsIndependent(t *testing.T) {
	var m Monitor
	a := m.NewCondition()
	b := m.NewCondition()
	var aWoke, bWoke bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		m.Enter()
		for !aWoke {
			a.Wait()
		}
		m.Leave()
	}()
	go func() {
		defer wg.Done()
		m.Enter()
		for !bWoke {
			b.Wait()
		}
		m.Leave()
	}()
	time.Sleep(20 * time.Millisecond)
	// Signalling a must not release the b-waiter.
	m.Enter()
	aWoke = true
	a.Signal()
	m.Leave()
	time.Sleep(20 * time.Millisecond)
	m.Enter()
	bWoke = true
	b.Signal()
	m.Leave()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("condition waiters never released")
	}
}
