package sync2

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEventZeroValueUnset(t *testing.T) {
	var e Event
	if e.IsSet() {
		t.Fatal("zero-value event is set")
	}
}

func TestEventSetReleasesWaiters(t *testing.T) {
	e := NewEvent()
	const n = 16
	var wg sync.WaitGroup
	var passed atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Check()
			passed.Add(1)
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if passed.Load() != 0 {
		t.Fatal("Check passed before Set")
	}
	e.Set()
	wg.Wait()
	if passed.Load() != n {
		t.Fatalf("passed=%d, want %d", passed.Load(), n)
	}
}

func TestEventStaysSet(t *testing.T) {
	var e Event
	e.Set()
	e.Set() // idempotent
	done := make(chan struct{})
	go func() {
		e.Check() // must pass immediately
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Check blocked on a set event")
	}
	if !e.IsSet() {
		t.Fatal("event not set")
	}
}

func TestSemaphorePermits(t *testing.T) {
	s := NewSemaphore(2)
	s.P()
	s.P()
	if s.TryP() {
		t.Fatal("TryP succeeded with no permits")
	}
	s.V()
	if !s.TryP() {
		t.Fatal("TryP failed with a permit available")
	}
}

func TestSemaphoreBlocksAtZero(t *testing.T) {
	s := NewSemaphore(0)
	acquired := make(chan struct{})
	go func() {
		s.P()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("P returned with zero permits")
	case <-time.After(20 * time.Millisecond):
	}
	s.V()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("P never woke after V")
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	s := NewSemaphore(1)
	var inside atomic.Int32
	var maxInside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.P()
				cur := inside.Add(1)
				for {
					m := maxInside.Load()
					if cur <= m || maxInside.CompareAndSwap(m, cur) {
						break
					}
				}
				inside.Add(-1)
				s.V()
			}
		}()
	}
	wg.Wait()
	if maxInside.Load() != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside.Load())
	}
}

func TestSemaphoreNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSemaphore(-1) did not panic")
		}
	}()
	NewSemaphore(-1)
}

func TestTicketLockMutualExclusion(t *testing.T) {
	var l TicketLock
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8*500 {
		t.Fatalf("counter=%d, want %d (lost updates => no mutual exclusion)", counter, 8*500)
	}
}

func TestTicketLockFIFO(t *testing.T) {
	var l TicketLock
	l.Lock()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Lock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Unlock()
		}(i)
		time.Sleep(20 * time.Millisecond) // serialize ticket acquisition
	}
	l.Unlock()
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v, want FIFO", order)
		}
	}
}

func TestTicketLockUnlockUnlockedPanics(t *testing.T) {
	var l TicketLock
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked TicketLock did not panic")
		}
	}()
	l.Unlock()
}

func TestSingleAssignment(t *testing.T) {
	var v SingleAssignment[string]
	if _, ok := v.TryRead(); ok {
		t.Fatal("TryRead succeeded before Assign")
	}
	results := make(chan string, 3)
	for i := 0; i < 3; i++ {
		go func() { results <- v.Read() }()
	}
	time.Sleep(20 * time.Millisecond)
	v.Assign("hello")
	for i := 0; i < 3; i++ {
		select {
		case got := <-results:
			if got != "hello" {
				t.Fatalf("Read = %q, want hello", got)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Read never returned after Assign")
		}
	}
	if got, ok := v.TryRead(); !ok || got != "hello" {
		t.Fatalf("TryRead = %q,%v", got, ok)
	}
}

func TestSingleAssignmentDoubleAssignPanics(t *testing.T) {
	var v SingleAssignment[int]
	v.Assign(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Assign did not panic")
		}
	}()
	v.Assign(2)
}
