// Package sync2 implements the traditional synchronization mechanisms the
// paper compares monotonic counters against, built from scratch on
// sync.Mutex, sync.Cond, and atomics:
//
//   - Barrier: N-way cyclic barrier (the comparator in ShortestPaths2 and
//     the traditional stencil program), in both a central condition-variable
//     form and a sense-reversing form.
//   - Event: a Win32-style manual-reset event with the Set/Check interface
//     the paper's "Condition" objects use in ShortestPaths3 (section 4.4).
//     Once set it stays set, releasing all present and future Checks.
//   - Semaphore: a counting semaphore (Dijkstra's P/V), the classical
//     solution to the bounded-buffer problem contrasted in section 5.3.
//   - TicketLock: a FIFO mutual-exclusion lock, used to show that even a
//     fair lock does not provide the *sequential ordering* counters give
//     (section 5.2) — fairness orders by arrival, not by thread index.
//   - SingleAssignment: a single-assignment (sync) variable in the CC++ /
//     PCN tradition discussed in section 8.
//
// Each mechanism has exactly one thread-suspension queue (or, for the
// barrier, one per generation), which is the structural property section 8
// contrasts with the counter's dynamically varying number of queues.
package sync2
