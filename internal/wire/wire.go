// Package wire defines the binary protocol spoken between the counterd
// server (internal/server) and the remote counter client
// (counter/remote). It is deliberately tiny and stdlib-only: every
// message is one length-prefixed frame, and the whole vocabulary is the
// counter interface itself (Increment/Check/Cancel/Reset/Stats) plus the
// session handshake that makes reconnects retry-safe.
//
// # Framing
//
// A frame is a 4-byte big-endian payload length followed by the payload.
// The payload is one opcode byte followed by the opcode's fields, each
// encoded as a uvarint (integers) or a uvarint byte count followed by the
// bytes (strings). Frames are self-contained: a reader that knows the
// length can skip an unknown frame, and a writer can batch any number of
// frames into one TCP segment — both sides do (the server's per
// connection writer and the client's flusher coalesce whatever is queued
// into a single write).
//
// # Idempotency
//
// The protocol leans on the paper's monotonicity argument (section 6):
// because a counter's value only grows, Check frames are naturally
// idempotent — re-sending "wake me at level L" after a reconnect cannot
// observe a smaller value — and the only retry hazard in the whole
// vocabulary is applying an Increment twice. Increments therefore carry a
// per-session sequence number; the server remembers the highest applied
// sequence per session and drops duplicates, so a client that re-sends
// its unacknowledged tail after a reconnect cannot double-apply (see
// docs/PATTERNS.md, "Counters across processes").
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version carried in Hello; the server rejects
// frames it cannot parse rather than negotiating, so bumping this is a
// breaking change. Version 2 added the boot Epoch to Welcome (node
// identity for the cluster layer's restart detection).
const Version = 2

// MaxFrame bounds a frame's payload, protecting both sides from a
// corrupt or hostile length prefix. Counter names are the only variable
// sized field, so frames are tiny; 64 KiB is generous.
const MaxFrame = 64 << 10

// MaxName bounds a counter name.
const MaxName = 256

// Op identifies a frame's meaning.
type Op uint8

// Client-to-server opcodes.
const (
	// OpHello opens (Session==0) or resumes a session; the server
	// replies with OpWelcome. Fields: Session, Seq (client protocol
	// version — see Version).
	OpHello Op = 0x01
	// OpIncrement applies Amount to the named counter, deduplicated by
	// the per-session Seq. No per-frame reply; the server acknowledges
	// the highest applied Seq with OpIncAck when its read buffer drains.
	OpIncrement Op = 0x02
	// OpCheck registers a wait: the server replies OpWake{ID} once the
	// named counter's value reaches Level. IDs are chosen by the client
	// and must be unique among its outstanding waits.
	OpCheck Op = 0x03
	// OpCancel deregisters the wait with ID. The server replies
	// OpCancelled{ID} if the wait was still pending; if the wake
	// already happened (or is in flight) it stays silent — the client
	// resolves the race by whichever reply arrives.
	OpCancel Op = 0x04
	// OpReset zeroes the named counter; reply is OpResetOK{ID} or
	// OpError{ID} (e.g. goroutines are suspended on the counter —
	// the same misuse the in-process Reset panics on).
	OpReset Op = 0x05
	// OpStats requests the named counter's engine stats; reply is
	// OpStatsReply{ID, Stats}.
	OpStats Op = 0x06
)

// Server-to-client opcodes.
const (
	// OpWelcome answers OpHello. Session is the (new or resumed)
	// session id; Seq is the highest Increment sequence the server has
	// applied for it, so the client re-sends only its unacknowledged
	// tail. Epoch identifies this server *instance*: it is drawn at
	// boot and never changes while the process lives, so a client that
	// reconnects and sees a different epoch knows the node restarted —
	// its hosted values and sessions are gone — and can re-resume
	// beyond the unacked tail (the cluster layer replays its full
	// per-name contribution ledger; see counter/cluster).
	OpWelcome Op = 0x81
	// OpWake resolves the wait with ID: the level is satisfied. Level
	// echoes the satisfied level so the client can advance its local
	// known-satisfied watermark.
	OpWake Op = 0x82
	// OpCancelled resolves the wait with ID as cancelled.
	OpCancelled Op = 0x83
	// OpIncAck acknowledges every Increment with sequence <= Seq.
	OpIncAck Op = 0x84
	// OpResetOK acknowledges a reset.
	OpResetOK Op = 0x85
	// OpError is the failure reply to the request with ID.
	OpError Op = 0x86
	// OpStatsReply carries a Stats snapshot.
	OpStatsReply Op = 0x87
)

// String returns the opcode's wire name.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpIncrement:
		return "increment"
	case OpCheck:
		return "check"
	case OpCancel:
		return "cancel"
	case OpReset:
		return "reset"
	case OpStats:
		return "stats"
	case OpWelcome:
		return "welcome"
	case OpWake:
		return "wake"
	case OpCancelled:
		return "cancelled"
	case OpIncAck:
		return "incack"
	case OpResetOK:
		return "resetok"
	case OpError:
		return "error"
	case OpStatsReply:
		return "statsreply"
	}
	return fmt.Sprintf("op(0x%02x)", uint8(o))
}

// Stats mirrors the engine's unified Stats schema (internal/core) field
// for field, as transported by OpStatsReply. wire keeps its own copy so
// the protocol package depends on nothing but the stdlib.
type Stats struct {
	PeakLevels         uint64
	SatisfiedLevels    uint64
	Broadcasts         uint64
	ChannelCloses      uint64
	Suspends           uint64
	ImmediateChecks    uint64
	Increments         uint64
	SpinRounds         uint64
	FastPathIncrements uint64
	Flushes            uint64
}

// fields returns the stats' wire order, shared by encode and decode.
func (s *Stats) fields() [10]*uint64 {
	return [10]*uint64{
		&s.PeakLevels, &s.SatisfiedLevels, &s.Broadcasts, &s.ChannelCloses,
		&s.Suspends, &s.ImmediateChecks, &s.Increments, &s.SpinRounds,
		&s.FastPathIncrements, &s.Flushes,
	}
}

// Frame is one decoded protocol message. Only the fields meaningful for
// Op are set; see the opcode docs for which those are. Using one struct
// for the whole vocabulary keeps the reader loops a single switch.
type Frame struct {
	Op      Op
	Name    string // counter name (Increment, Check, Reset, Stats)
	Session uint64 // Hello, Welcome
	Epoch   uint64 // Welcome: the server instance's boot epoch (node identity)
	Seq     uint64 // Increment/IncAck sequence; Hello version; Welcome last applied seq
	ID      uint64 // wait id (Check/Cancel/Wake/Cancelled) or request id (Reset/Stats and replies)
	Level   uint64 // Check level; Wake satisfied level
	Amount  uint64 // Increment amount
	Msg     string // Error message
	Stats   Stats  // StatsReply
}

// ErrFrameTooLarge is returned for length prefixes beyond MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// Append encodes f as one complete frame (length prefix included) onto
// buf and returns the extended slice.
func Append(buf []byte, f *Frame) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length backfilled below
	buf = append(buf, byte(f.Op))
	switch f.Op {
	case OpHello:
		buf = appendUint(buf, f.Session)
		buf = appendUint(buf, f.Seq)
	case OpIncrement:
		buf = appendString(buf, f.Name)
		buf = appendUint(buf, f.Seq)
		buf = appendUint(buf, f.Amount)
	case OpCheck:
		buf = appendString(buf, f.Name)
		buf = appendUint(buf, f.ID)
		buf = appendUint(buf, f.Level)
	case OpCancel:
		buf = appendUint(buf, f.ID)
	case OpReset, OpStats:
		buf = appendString(buf, f.Name)
		buf = appendUint(buf, f.ID)
	case OpWelcome:
		buf = appendUint(buf, f.Session)
		buf = appendUint(buf, f.Seq)
		buf = appendUint(buf, f.Epoch)
	case OpWake:
		buf = appendUint(buf, f.ID)
		buf = appendUint(buf, f.Level)
	case OpCancelled, OpResetOK:
		buf = appendUint(buf, f.ID)
	case OpIncAck:
		buf = appendUint(buf, f.Seq)
	case OpError:
		buf = appendUint(buf, f.ID)
		buf = appendString(buf, f.Msg)
	case OpStatsReply:
		buf = appendUint(buf, f.ID)
		for _, p := range f.Stats.fields() {
			buf = appendUint(buf, *p)
		}
	default:
		panic("wire: Append on unknown op " + f.Op.String())
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// Read reads and decodes one frame from br. It returns io.EOF only on a
// clean boundary (no partial frame read); a frame cut short surfaces as
// io.ErrUnexpectedEOF.
func Read(br *bufio.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF stays io.EOF
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return Frame{}, unexpected(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Frame{}, unexpected(err)
	}
	return Decode(payload)
}

// Decode parses one frame payload (opcode byte onward, no length
// prefix).
func Decode(payload []byte) (Frame, error) {
	d := decoder{buf: payload}
	var f Frame
	f.Op = Op(d.byte())
	switch f.Op {
	case OpHello:
		f.Session, f.Seq = d.uint(), d.uint()
	case OpIncrement:
		f.Name, f.Seq, f.Amount = d.string(), d.uint(), d.uint()
	case OpCheck:
		f.Name, f.ID, f.Level = d.string(), d.uint(), d.uint()
	case OpCancel:
		f.ID = d.uint()
	case OpReset, OpStats:
		f.Name, f.ID = d.string(), d.uint()
	case OpWelcome:
		f.Session, f.Seq, f.Epoch = d.uint(), d.uint(), d.uint()
	case OpWake:
		f.ID, f.Level = d.uint(), d.uint()
	case OpCancelled, OpResetOK:
		f.ID = d.uint()
	case OpIncAck:
		f.Seq = d.uint()
	case OpError:
		f.ID, f.Msg = d.uint(), d.string()
	case OpStatsReply:
		f.ID = d.uint()
		for _, p := range f.Stats.fields() {
			*p = d.uint()
		}
	default:
		return Frame{}, fmt.Errorf("wire: unknown opcode 0x%02x", byte(f.Op))
	}
	if d.err != nil {
		return Frame{}, fmt.Errorf("wire: bad %s frame: %w", f.Op, d.err)
	}
	if len(d.buf) != 0 {
		return Frame{}, fmt.Errorf("wire: %s frame has %d trailing bytes", f.Op, len(d.buf))
	}
	return f, nil
}

func appendUint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder consumes payload fields, latching the first error so the
// per-opcode switches read straight through.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) == 0 {
		d.fail("truncated")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if n > MaxName || n > uint64(len(d.buf)) {
		d.fail("bad string length")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = errors.New(msg)
		d.buf = nil
	}
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
