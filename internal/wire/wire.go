// Package wire defines the binary protocol spoken between the counterd
// server (internal/server) and the remote counter client
// (counter/remote). It is deliberately tiny and stdlib-only: every
// message is one length-prefixed frame, and the whole vocabulary is the
// counter interface itself (Increment/Check/Cancel/Reset/Stats), the
// multi-counter predicate waits the v3 dialect adds (WaitFor /
// WaitForCancel — see counter/wait for the predicate model), and the
// session handshake that makes reconnects retry-safe.
//
// # Framing
//
// A frame is a 4-byte big-endian payload length followed by the payload.
// The payload is one opcode byte followed by the opcode's fields, each
// encoded as a uvarint (integers) or a uvarint byte count followed by the
// bytes (strings). Frames are self-contained: a reader that knows the
// length can skip an unknown frame, and a writer can batch any number of
// frames into one TCP segment — both sides do (the server's per
// connection writer and the client's flusher coalesce whatever is queued
// into a single write).
//
// # Idempotency
//
// The protocol leans on the paper's monotonicity argument (section 6):
// because a counter's value only grows, Check frames are naturally
// idempotent — re-sending "wake me at level L" after a reconnect cannot
// observe a smaller value — and the only retry hazard in the whole
// vocabulary is applying an Increment twice. Increments therefore carry a
// per-session sequence number; the server remembers the highest applied
// sequence per session and drops duplicates, so a client that re-sends
// its unacknowledged tail after a reconnect cannot double-apply (see
// docs/PATTERNS.md, "Counters across processes").
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version this package speaks natively, carried
// in Hello. Version 2 added the boot Epoch to Welcome (node identity for
// the cluster layer's restart detection). Version 3 added version
// NEGOTIATION in place of version rejection — the server accepts any
// version in [MinVersion, Version] and answers in the client's dialect —
// plus the Features bits in the v3 Welcome and the multi-counter
// predicate wait frames (OpWaitFor / OpWaitForCancel).
const Version = 3

// MinVersion is the oldest client dialect a v3 server still serves: a
// v2 client gets a v2-shaped Welcome (no Features field) and simply
// never sends the v3 opcodes — its predicate waits stay client-side.
const MinVersion = 2

// Feature bits carried in the v3 Welcome. A client uses a capability
// only when the serving instance advertised it, so a mixed-version
// deployment degrades to the v2 behavior instead of desynchronizing.
const (
	// FeatureWaitFor: the server evaluates monotone multi-counter
	// predicates in-process (OpWaitFor / OpWaitForCancel).
	FeatureWaitFor uint64 = 1 << 0
)

// MaxFrame bounds a frame's payload, protecting both sides from a
// corrupt or hostile length prefix. Counter names are the only variable
// sized field, so frames are tiny; 64 KiB is generous (a maximal
// OpWaitFor — MaxWatch names of MaxName bytes — still fits in a third
// of it).
const MaxFrame = 64 << 10

// MaxName bounds a counter name.
const MaxName = 256

// MaxWatch bounds the number of counters one OpWaitFor frame may watch.
const MaxWatch = 64

// Predicate kinds carried by OpWaitFor. They mirror the two predicate
// shapes internal/predicate exposes — every counter/wait combinator
// lowers to one of them.
const (
	// PredSum: the watched counters' values sum to at least Target.
	// Watch levels are unused (zero).
	PredSum uint64 = 1
	// PredThreshold: at least K of the watched counters have reached
	// their own Watch level — min (K = n), any (K = 1), and quorum in
	// one shape. Target is unused (zero).
	PredThreshold uint64 = 2
)

// Op identifies a frame's meaning.
type Op uint8

// Client-to-server opcodes.
const (
	// OpHello opens (Session==0) or resumes a session; the server
	// replies with OpWelcome. Fields: Session, Seq (client protocol
	// version — see Version).
	OpHello Op = 0x01
	// OpIncrement applies Amount to the named counter, deduplicated by
	// the per-session Seq. No per-frame reply; the server acknowledges
	// the highest applied Seq with OpIncAck when its read buffer drains.
	OpIncrement Op = 0x02
	// OpCheck registers a wait: the server replies OpWake{ID} once the
	// named counter's value reaches Level. IDs are chosen by the client
	// and must be unique among its outstanding waits.
	OpCheck Op = 0x03
	// OpCancel deregisters the wait with ID. The server replies
	// OpCancelled{ID} if the wait was still pending; if the wake
	// already happened (or is in flight) it stays silent — the client
	// resolves the race by whichever reply arrives.
	OpCancel Op = 0x04
	// OpReset zeroes the named counter; reply is OpResetOK{ID} or
	// OpError{ID} (e.g. goroutines are suspended on the counter —
	// the same misuse the in-process Reset panics on).
	OpReset Op = 0x05
	// OpStats requests the named counter's engine stats; reply is
	// OpStatsReply{ID, Stats}.
	OpStats Op = 0x06
	// OpWaitFor (v3) registers a multi-counter predicate wait: the
	// server evaluates the monotone predicate (Pred kind, K/Target,
	// Watch set) against its hosted counters and replies OpWake{ID}
	// once — and only once — it holds. One frame parks one server-side
	// entry regardless of how many goroutines share the client-side
	// condition, and a hosted increment that cannot flip the predicate
	// sends the client nothing.
	OpWaitFor Op = 0x07
	// OpWaitForCancel (v3) deregisters the predicate wait with ID. The
	// server replies OpCancelled{ID} if the wait was still pending; if
	// the wake is already in flight it stays silent — same race rule as
	// OpCancel.
	OpWaitForCancel Op = 0x08
)

// Server-to-client opcodes.
const (
	// OpWelcome answers OpHello. Session is the (new or resumed)
	// session id; Seq is the highest Increment sequence the server has
	// applied for it, so the client re-sends only its unacknowledged
	// tail. Epoch identifies this server *instance*: it is drawn at
	// boot and never changes while the process lives, so a client that
	// reconnects and sees a different epoch knows the node restarted —
	// its hosted values and sessions are gone — and can re-resume
	// beyond the unacked tail (the cluster layer replays its full
	// per-name contribution ledger; see counter/cluster).
	OpWelcome Op = 0x81
	// OpWake resolves the wait with ID: the level is satisfied. Level
	// echoes the satisfied level so the client can advance its local
	// known-satisfied watermark.
	OpWake Op = 0x82
	// OpCancelled resolves the wait with ID as cancelled.
	OpCancelled Op = 0x83
	// OpIncAck acknowledges every Increment with sequence <= Seq.
	OpIncAck Op = 0x84
	// OpResetOK acknowledges a reset.
	OpResetOK Op = 0x85
	// OpError is the failure reply to the request with ID.
	OpError Op = 0x86
	// OpStatsReply carries a Stats snapshot.
	OpStatsReply Op = 0x87
)

// String returns the opcode's wire name.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpIncrement:
		return "increment"
	case OpCheck:
		return "check"
	case OpCancel:
		return "cancel"
	case OpReset:
		return "reset"
	case OpStats:
		return "stats"
	case OpWaitFor:
		return "waitfor"
	case OpWaitForCancel:
		return "waitforcancel"
	case OpWelcome:
		return "welcome"
	case OpWake:
		return "wake"
	case OpCancelled:
		return "cancelled"
	case OpIncAck:
		return "incack"
	case OpResetOK:
		return "resetok"
	case OpError:
		return "error"
	case OpStatsReply:
		return "statsreply"
	}
	return fmt.Sprintf("op(0x%02x)", uint8(o))
}

// Stats mirrors the engine's unified Stats schema (internal/core) field
// for field, as transported by OpStatsReply. wire keeps its own copy so
// the protocol package depends on nothing but the stdlib.
type Stats struct {
	PeakLevels         uint64
	SatisfiedLevels    uint64
	Broadcasts         uint64
	ChannelCloses      uint64
	Suspends           uint64
	ImmediateChecks    uint64
	Increments         uint64
	SpinRounds         uint64
	FastPathIncrements uint64
	Flushes            uint64
}

// fields returns the stats' wire order, shared by encode and decode.
func (s *Stats) fields() [10]*uint64 {
	return [10]*uint64{
		&s.PeakLevels, &s.SatisfiedLevels, &s.Broadcasts, &s.ChannelCloses,
		&s.Suspends, &s.ImmediateChecks, &s.Increments, &s.SpinRounds,
		&s.FastPathIncrements, &s.Flushes,
	}
}

// Watch is one watched coordinate of an OpWaitFor predicate: a hosted
// counter name plus its per-counter level (the threshold for
// PredThreshold; unused for PredSum).
type Watch struct {
	Name  string
	Level uint64
}

// Frame is one decoded protocol message. Only the fields meaningful for
// Op are set; see the opcode docs for which those are. Using one struct
// for the whole vocabulary keeps the reader loops a single switch.
type Frame struct {
	Op       Op
	Name     string  // counter name (Increment, Check, Reset, Stats)
	Session  uint64  // Hello, Welcome
	Epoch    uint64  // Welcome: the server instance's boot epoch (node identity)
	Seq      uint64  // Increment/IncAck sequence; Hello version; Welcome last applied seq
	ID       uint64  // wait id (Check/Cancel/WaitFor*/Wake/Cancelled) or request id (Reset/Stats and replies)
	Level    uint64  // Check level; Wake satisfied level (zero for predicate wakes)
	Amount   uint64  // Increment amount
	Msg      string  // Error message
	Stats    Stats   // StatsReply
	Features uint64  // Welcome (v3 only): the server's feature bits
	Pred     uint64  // WaitFor: predicate kind (PredSum, PredThreshold)
	K        uint64  // WaitFor: quorum count (PredThreshold)
	Target   uint64  // WaitFor: sum target (PredSum)
	Watch    []Watch // WaitFor: the watched counters, in coordinate order
}

// ErrFrameTooLarge is returned for length prefixes beyond MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// Append encodes f as one complete frame (length prefix included) onto
// buf and returns the extended slice.
func Append(buf []byte, f *Frame) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length backfilled below
	buf = append(buf, byte(f.Op))
	switch f.Op {
	case OpHello:
		buf = appendUint(buf, f.Session)
		buf = appendUint(buf, f.Seq)
	case OpIncrement:
		buf = appendString(buf, f.Name)
		buf = appendUint(buf, f.Seq)
		buf = appendUint(buf, f.Amount)
	case OpCheck:
		buf = appendString(buf, f.Name)
		buf = appendUint(buf, f.ID)
		buf = appendUint(buf, f.Level)
	case OpCancel:
		buf = appendUint(buf, f.ID)
	case OpReset, OpStats:
		buf = appendString(buf, f.Name)
		buf = appendUint(buf, f.ID)
	case OpWelcome:
		buf = appendUint(buf, f.Session)
		buf = appendUint(buf, f.Seq)
		buf = appendUint(buf, f.Epoch)
		// The Features field exists only in the v3 dialect. The server
		// answers a v2 Hello with Features == 0, which elides the field
		// and yields exactly the v2 frame a v2 decoder expects (it would
		// reject trailing bytes); a v3 server always advertises at least
		// one bit, so v3 clients always see the field.
		if f.Features != 0 {
			buf = appendUint(buf, f.Features)
		}
	case OpWaitFor:
		buf = appendUint(buf, f.ID)
		buf = appendUint(buf, f.Pred)
		buf = appendUint(buf, f.K)
		buf = appendUint(buf, f.Target)
		buf = appendUint(buf, uint64(len(f.Watch)))
		for _, w := range f.Watch {
			buf = appendString(buf, w.Name)
			buf = appendUint(buf, w.Level)
		}
	case OpWaitForCancel:
		buf = appendUint(buf, f.ID)
	case OpWake:
		buf = appendUint(buf, f.ID)
		buf = appendUint(buf, f.Level)
	case OpCancelled, OpResetOK:
		buf = appendUint(buf, f.ID)
	case OpIncAck:
		buf = appendUint(buf, f.Seq)
	case OpError:
		buf = appendUint(buf, f.ID)
		buf = appendString(buf, f.Msg)
	case OpStatsReply:
		buf = appendUint(buf, f.ID)
		for _, p := range f.Stats.fields() {
			buf = appendUint(buf, *p)
		}
	default:
		panic("wire: Append on unknown op " + f.Op.String())
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// Read reads and decodes one frame from br. It returns io.EOF only on a
// clean boundary (no partial frame read); a frame cut short surfaces as
// io.ErrUnexpectedEOF.
func Read(br *bufio.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF stays io.EOF
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return Frame{}, unexpected(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Frame{}, unexpected(err)
	}
	return Decode(payload)
}

// Decode parses one frame payload (opcode byte onward, no length
// prefix).
func Decode(payload []byte) (Frame, error) {
	d := decoder{buf: payload}
	var f Frame
	f.Op = Op(d.byte())
	switch f.Op {
	case OpHello:
		f.Session, f.Seq = d.uint(), d.uint()
	case OpIncrement:
		f.Name, f.Seq, f.Amount = d.string(), d.uint(), d.uint()
	case OpCheck:
		f.Name, f.ID, f.Level = d.string(), d.uint(), d.uint()
	case OpCancel:
		f.ID = d.uint()
	case OpReset, OpStats:
		f.Name, f.ID = d.string(), d.uint()
	case OpWelcome:
		f.Session, f.Seq, f.Epoch = d.uint(), d.uint(), d.uint()
		// Features is optional: a v2 server's Welcome ends at Epoch, a
		// v3 server's carries the bits. One decoder serves both dialects.
		if len(d.buf) != 0 {
			f.Features = d.uint()
		}
	case OpWaitFor:
		f.ID, f.Pred, f.K, f.Target = d.uint(), d.uint(), d.uint(), d.uint()
		n := d.uint()
		if d.err == nil && (n == 0 || n > MaxWatch) {
			return Frame{}, fmt.Errorf("wire: waitfor frame watches %d counters (want 1..%d)", n, MaxWatch)
		}
		if d.err == nil {
			f.Watch = make([]Watch, n)
			for i := range f.Watch {
				f.Watch[i].Name, f.Watch[i].Level = d.string(), d.uint()
			}
		}
	case OpWaitForCancel:
		f.ID = d.uint()
	case OpWake:
		f.ID, f.Level = d.uint(), d.uint()
	case OpCancelled, OpResetOK:
		f.ID = d.uint()
	case OpIncAck:
		f.Seq = d.uint()
	case OpError:
		f.ID, f.Msg = d.uint(), d.string()
	case OpStatsReply:
		f.ID = d.uint()
		for _, p := range f.Stats.fields() {
			*p = d.uint()
		}
	default:
		return Frame{}, fmt.Errorf("wire: unknown opcode 0x%02x", byte(f.Op))
	}
	if d.err != nil {
		return Frame{}, fmt.Errorf("wire: bad %s frame: %w", f.Op, d.err)
	}
	if len(d.buf) != 0 {
		return Frame{}, fmt.Errorf("wire: %s frame has %d trailing bytes", f.Op, len(d.buf))
	}
	return f, nil
}

func appendUint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder consumes payload fields, latching the first error so the
// per-opcode switches read straight through.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) == 0 {
		d.fail("truncated")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if n > MaxName || n > uint64(len(d.buf)) {
		d.fail("bad string length")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = errors.New(msg)
		d.buf = nil
	}
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
