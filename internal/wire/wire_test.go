package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// frames covering every opcode and every field, including zero values
// and maximal uvarints.
func sampleFrames() []Frame {
	return []Frame{
		{Op: OpHello, Session: 0, Seq: Version},
		{Op: OpHello, Session: ^uint64(0), Seq: 7},
		{Op: OpIncrement, Name: "jobs", Seq: 42, Amount: 3},
		{Op: OpIncrement, Name: "", Seq: 0, Amount: ^uint64(0)},
		{Op: OpCheck, Name: "jobs", ID: 9, Level: 1 << 40},
		{Op: OpCancel, ID: 9},
		{Op: OpReset, Name: "phase", ID: 11},
		{Op: OpStats, Name: "phase", ID: 12},
		{Op: OpWelcome, Session: 5, Seq: 40, Epoch: 0xdeadbeef},
		{Op: OpWelcome, Session: 5, Seq: 40, Epoch: 0},
		{Op: OpWake, ID: 9, Level: 1 << 40},
		{Op: OpCancelled, ID: 9},
		{Op: OpIncAck, Seq: 42},
		{Op: OpResetOK, ID: 11},
		{Op: OpError, ID: 11, Msg: "counter busy: goroutines suspended"},
		{Op: OpStatsReply, ID: 12, Stats: Stats{
			PeakLevels: 1, SatisfiedLevels: 2, Broadcasts: 3, ChannelCloses: 4,
			Suspends: 5, ImmediateChecks: 6, Increments: 7, SpinRounds: 8,
			FastPathIncrements: 9, Flushes: 10,
		}},
	}
}

func TestRoundTripEveryOpcode(t *testing.T) {
	for _, f := range sampleFrames() {
		buf := Append(nil, &f)
		got, err := Read(bufio.NewReader(bytes.NewReader(buf)))
		if err != nil {
			t.Fatalf("%s: Read: %v", f.Op, err)
		}
		if got != f {
			t.Errorf("%s: round trip = %+v, want %+v", f.Op, got, f)
		}
	}
}

// TestBatchedFrames writes every sample frame into one buffer — the
// shape both sides' write batching produces — and reads them back in
// order, ending on a clean io.EOF.
func TestBatchedFrames(t *testing.T) {
	var buf []byte
	frames := sampleFrames()
	for i := range frames {
		buf = Append(buf, &frames[i])
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range frames {
		got, err := Read(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := Read(br); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestTruncatedFrame cuts a valid frame at every byte boundary: a cut
// inside a frame must surface as io.ErrUnexpectedEOF or a decode error,
// never a silent success or a clean EOF.
func TestTruncatedFrame(t *testing.T) {
	f := Frame{Op: OpCheck, Name: "jobs", ID: 9, Level: 300}
	buf := Append(nil, &f)
	for cut := 1; cut < len(buf); cut++ {
		_, err := Read(bufio.NewReader(bytes.NewReader(buf[:cut])))
		if err == nil {
			t.Fatalf("cut at %d/%d decoded successfully", cut, len(buf))
		}
		if err == io.EOF {
			t.Fatalf("cut at %d/%d reported clean EOF", cut, len(buf))
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	_, err := Read(bufio.NewReader(bytes.NewReader(hdr)))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestUnknownOpcodeRejected(t *testing.T) {
	if _, err := Decode([]byte{0x7f}); err == nil {
		t.Fatal("unknown opcode decoded successfully")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	buf := Append(nil, &Frame{Op: OpCancel, ID: 1})
	payload := append(buf[4:], 0x00)
	if _, err := Decode(payload); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v, want trailing-bytes error", err)
	}
}

func TestOverlongNameRejected(t *testing.T) {
	f := Frame{Op: OpCheck, Name: strings.Repeat("x", MaxName+1), ID: 1, Level: 1}
	buf := Append(nil, &f)
	if _, err := Decode(buf[4:]); err == nil {
		t.Fatal("overlong name decoded successfully")
	}
}
