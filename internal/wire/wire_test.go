package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// frames covering every opcode and every field, including zero values
// and maximal uvarints.
func sampleFrames() []Frame {
	return []Frame{
		{Op: OpHello, Session: 0, Seq: Version},
		{Op: OpHello, Session: ^uint64(0), Seq: 7},
		{Op: OpIncrement, Name: "jobs", Seq: 42, Amount: 3},
		{Op: OpIncrement, Name: "", Seq: 0, Amount: ^uint64(0)},
		{Op: OpCheck, Name: "jobs", ID: 9, Level: 1 << 40},
		{Op: OpCancel, ID: 9},
		{Op: OpReset, Name: "phase", ID: 11},
		{Op: OpStats, Name: "phase", ID: 12},
		{Op: OpWelcome, Session: 5, Seq: 40, Epoch: 0xdeadbeef},
		{Op: OpWelcome, Session: 5, Seq: 40, Epoch: 0},
		{Op: OpWelcome, Session: 5, Seq: 40, Epoch: 0xdeadbeef, Features: FeatureWaitFor},
		{Op: OpWaitFor, ID: 13, Pred: PredSum, Target: 1 << 50, Watch: []Watch{
			{Name: "a"}, {Name: "b"},
		}},
		{Op: OpWaitFor, ID: 14, Pred: PredThreshold, K: 3, Watch: []Watch{
			{Name: "q0", Level: 7}, {Name: "q1", Level: 7}, {Name: "q2", Level: 9},
			{Name: "q3", Level: ^uint64(0)}, {Name: "q4", Level: 1},
		}},
		{Op: OpWaitForCancel, ID: 14},
		{Op: OpWake, ID: 9, Level: 1 << 40},
		{Op: OpCancelled, ID: 9},
		{Op: OpIncAck, Seq: 42},
		{Op: OpResetOK, ID: 11},
		{Op: OpError, ID: 11, Msg: "counter busy: goroutines suspended"},
		{Op: OpStatsReply, ID: 12, Stats: Stats{
			PeakLevels: 1, SatisfiedLevels: 2, Broadcasts: 3, ChannelCloses: 4,
			Suspends: 5, ImmediateChecks: 6, Increments: 7, SpinRounds: 8,
			FastPathIncrements: 9, Flushes: 10,
		}},
	}
}

func TestRoundTripEveryOpcode(t *testing.T) {
	for _, f := range sampleFrames() {
		buf := Append(nil, &f)
		got, err := Read(bufio.NewReader(bytes.NewReader(buf)))
		if err != nil {
			t.Fatalf("%s: Read: %v", f.Op, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("%s: round trip = %+v, want %+v", f.Op, got, f)
		}
	}
}

// TestBatchedFrames writes every sample frame into one buffer — the
// shape both sides' write batching produces — and reads them back in
// order, ending on a clean io.EOF.
func TestBatchedFrames(t *testing.T) {
	var buf []byte
	frames := sampleFrames()
	for i := range frames {
		buf = Append(buf, &frames[i])
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range frames {
		got, err := Read(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := Read(br); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestTruncatedFrame cuts a valid frame at every byte boundary: a cut
// inside a frame must surface as io.ErrUnexpectedEOF or a decode error,
// never a silent success or a clean EOF.
func TestTruncatedFrame(t *testing.T) {
	f := Frame{Op: OpCheck, Name: "jobs", ID: 9, Level: 300}
	buf := Append(nil, &f)
	for cut := 1; cut < len(buf); cut++ {
		_, err := Read(bufio.NewReader(bytes.NewReader(buf[:cut])))
		if err == nil {
			t.Fatalf("cut at %d/%d decoded successfully", cut, len(buf))
		}
		if err == io.EOF {
			t.Fatalf("cut at %d/%d reported clean EOF", cut, len(buf))
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	_, err := Read(bufio.NewReader(bytes.NewReader(hdr)))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestUnknownOpcodeRejected(t *testing.T) {
	if _, err := Decode([]byte{0x7f}); err == nil {
		t.Fatal("unknown opcode decoded successfully")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	buf := Append(nil, &Frame{Op: OpCancel, ID: 1})
	payload := append(buf[4:], 0x00)
	if _, err := Decode(payload); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v, want trailing-bytes error", err)
	}
}

func TestOverlongNameRejected(t *testing.T) {
	f := Frame{Op: OpCheck, Name: strings.Repeat("x", MaxName+1), ID: 1, Level: 1}
	buf := Append(nil, &f)
	if _, err := Decode(buf[4:]); err == nil {
		t.Fatal("overlong name decoded successfully")
	}
}

// TestWelcomeDialects pins the negotiation contract at the byte level:
// a Welcome with Features == 0 is byte-identical to the v2 frame (so a
// true v2 decoder, which rejects trailing bytes, accepts it), and a v3
// Welcome's Features survive the round trip while a v2 one's decode to
// zero.
func TestWelcomeDialects(t *testing.T) {
	v2 := Append(nil, &Frame{Op: OpWelcome, Session: 5, Seq: 40, Epoch: 99})
	v3 := Append(nil, &Frame{Op: OpWelcome, Session: 5, Seq: 40, Epoch: 99, Features: FeatureWaitFor})
	if !bytes.Equal(v2[4:], v3[4:len(v3)-1]) {
		t.Fatalf("v3 welcome payload is not the v2 payload plus one feature byte:\nv2 %x\nv3 %x", v2, v3)
	}
	got, err := Decode(v2[4:])
	if err != nil {
		t.Fatalf("v2 welcome: %v", err)
	}
	if got.Features != 0 {
		t.Fatalf("v2 welcome decoded Features = %d, want 0", got.Features)
	}
	got, err = Decode(v3[4:])
	if err != nil {
		t.Fatalf("v3 welcome: %v", err)
	}
	if got.Features != FeatureWaitFor {
		t.Fatalf("v3 welcome decoded Features = %d, want %d", got.Features, FeatureWaitFor)
	}
}

// TestWaitForWatchBounds rejects empty and oversized watch sets at the
// decode boundary, before any server logic sees them.
func TestWaitForWatchBounds(t *testing.T) {
	over := make([]Watch, MaxWatch+1)
	for i := range over {
		over[i] = Watch{Name: "c", Level: 1}
	}
	f := Frame{Op: OpWaitFor, ID: 1, Pred: PredThreshold, K: 1, Watch: over}
	if _, err := Decode(Append(nil, &f)[4:]); err == nil {
		t.Fatalf("waitfor watching %d counters decoded successfully", len(over))
	}
	f.Watch = nil
	if _, err := Decode(Append(nil, &f)[4:]); err == nil {
		t.Fatal("waitfor watching zero counters decoded successfully")
	}
}

// TestWaitForTruncation cuts a maximal predicate frame at every byte.
func TestWaitForTruncation(t *testing.T) {
	f := Frame{Op: OpWaitFor, ID: 1 << 40, Pred: PredThreshold, K: 2, Watch: []Watch{
		{Name: "alpha", Level: 300}, {Name: "beta", Level: 1 << 33}, {Name: "gamma", Level: 1},
	}}
	buf := Append(nil, &f)
	for cut := 1; cut < len(buf); cut++ {
		_, err := Read(bufio.NewReader(bytes.NewReader(buf[:cut])))
		if err == nil {
			t.Fatalf("cut at %d/%d decoded successfully", cut, len(buf))
		}
		if err == io.EOF {
			t.Fatalf("cut at %d/%d reported clean EOF", cut, len(buf))
		}
	}
}
