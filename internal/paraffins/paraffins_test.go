package paraffins

import (
	"reflect"
	"testing"

	"monotonic/internal/core"
	"monotonic/internal/sthreads"
)

// radicalCounts is OEIS A000598 (rooted trees, out-degree <= 3), the
// number of alkyl radicals CnH2n+1 for n = 1..10.
var radicalCounts = []int{1, 1, 2, 4, 8, 17, 39, 89, 211, 507}

// paraffinCounts is OEIS A000602 (n-carbon alkanes) for n = 1..12.
var paraffinCounts = []int{1, 1, 1, 2, 3, 5, 9, 18, 35, 75, 159, 355}

func TestRadicalCountsMatchOEIS(t *testing.T) {
	pools := GenerateRadicalsSeq(10)
	for s := 1; s <= 10; s++ {
		if got := len(pools[s]); got != radicalCounts[s-1] {
			t.Errorf("R(%d) = %d, want %d", s, got, radicalCounts[s-1])
		}
	}
}

func TestParaffinCountsMatchOEIS(t *testing.T) {
	pools := GenerateRadicalsSeq(6)
	for n := 1; n <= 12; n++ {
		if got := CountParaffins(pools, n); got != paraffinCounts[n-1] {
			t.Errorf("P(%d) = %d, want %d", n, got, paraffinCounts[n-1])
		}
	}
}

// TestParallelMatchesSequential: the counter-pipelined generator produces
// exactly the sequential pools, for every counter implementation and in
// both execution modes (this program is sequentially equivalent: stage s
// publishes before stage s+1 starts, even run in program order).
func TestParallelMatchesSequential(t *testing.T) {
	want := GenerateRadicalsSeq(9)
	for _, impl := range core.Impls {
		for _, mode := range sthreads.Modes {
			got := GenerateRadicals(9, mode, impl)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("impl=%s mode=%v: pools differ from sequential", impl, mode)
			}
		}
	}
}

func TestCountAll(t *testing.T) {
	got := CountAll(12, sthreads.Concurrent, core.ImplList)
	for n := 1; n <= 12; n++ {
		if got[n] != paraffinCounts[n-1] {
			t.Errorf("CountAll[%d] = %d, want %d", n, got[n], paraffinCounts[n-1])
		}
	}
}

func TestEnumerationMatchesCount(t *testing.T) {
	pools := GenerateRadicalsSeq(5)
	for n := 1; n <= 10; n++ {
		forms := EnumerateParaffins(pools, n)
		if len(forms) != paraffinCounts[n-1] {
			t.Errorf("enumerated %d paraffins of size %d, want %d", len(forms), n, paraffinCounts[n-1])
		}
		seen := map[string]bool{}
		for _, f := range forms {
			if seen[f] {
				t.Errorf("duplicate canonical form %q at n=%d", f, n)
			}
			seen[f] = true
		}
	}
}

func TestKnownSmallMolecules(t *testing.T) {
	pools := GenerateRadicalsSeq(3)
	// Butane (n=4): n-butane (edge-centered) and isobutane
	// (vertex-centered with three methyl branches).
	forms := EnumerateParaffins(pools, 4)
	if len(forms) != 2 {
		t.Fatalf("butane isomers = %v", forms)
	}
	// Methane and ethane are unique.
	if got := EnumerateParaffins(pools, 1); len(got) != 1 || got[0] != "C()" {
		t.Fatalf("methane = %v", got)
	}
	if got := EnumerateParaffins(pools, 2); len(got) != 1 {
		t.Fatalf("ethane = %v", got)
	}
}

func TestRadicalCanonicalization(t *testing.T) {
	// The same multiset of children in different orders produces the
	// same repr.
	a := makeRadical(3, []string{"C()", "C(C())"})
	b := makeRadical(3, []string{"C(C())", "C()"})
	if a.Repr != b.Repr {
		t.Fatalf("canonical forms differ: %q vs %q", a.Repr, b.Repr)
	}
}

func TestZeroAndNegative(t *testing.T) {
	pools := GenerateRadicalsSeq(2)
	if CountParaffins(pools, 0) != 0 || CountParaffins(pools, -3) != 0 {
		t.Fatal("nonpositive n must count zero molecules")
	}
	if EnumerateParaffins(pools, 0) != nil {
		t.Fatal("enumeration of n=0 must be empty")
	}
}
