// Package paraffins implements the Paraffins Problem (Salishan problem 1,
// the application the paper's section 5.3 cites for the single-writer
// multiple-reader broadcast pattern): enumerate the paraffin molecules —
// acyclic alkanes CnH2n+2 — of each size up to a bound.
//
// The enumeration is the classical centroid decomposition. A *radical*
// (CnH2n+1-) is a rooted tree of carbon atoms in which every node has at
// most three children (the fourth bond attaches the parent or the root's
// host). Radicals of size s are built from multisets of smaller radicals.
// A paraffin of n carbons is either vertex-centered — a carbon whose at
// most four radicals each have size <= floor((n-1)/2) and sum to n-1 — or,
// for even n, edge-centered — an unordered pair of radicals of size n/2.
// Every alkane is counted exactly once.
//
// The parallel generator is the paper's pattern verbatim: one thread per
// radical size, all stages stored in a shared array, with a single
// monotonic counter broadcasting "stages 0..s are published" to every
// larger stage's generator. Stage s+1 calls Check(s+1) before reading
// stages 0..s; the writer of stage s calls Increment(1) after publishing.
package paraffins

import (
	"sort"
	"strings"

	"monotonic/internal/core"
	"monotonic/internal/sthreads"
)

// Radical is a canonical-form rooted carbon tree. Two radicals are
// structurally identical iff their Repr strings are equal.
type Radical struct {
	Size int    // number of carbon atoms
	Repr string // canonical form: "C(" + sorted child reprs + ")"
}

// makeRadical assembles a radical from child reprs (already canonical).
func makeRadical(size int, children []string) Radical {
	sorted := append([]string(nil), children...)
	sort.Strings(sorted)
	return Radical{Size: size, Repr: "C(" + strings.Join(sorted, "") + ")"}
}

// Pools holds, for each size 1..MaxSize, the canonical radicals of that
// size. Pools[0] is the empty stage (there is exactly one size-0 radical,
// hydrogen, represented implicitly).
type Pools [][]Radical

// GenerateRadicalsSeq enumerates all radicals of sizes 1..maxSize
// sequentially — the oracle for the parallel generator.
func GenerateRadicalsSeq(maxSize int) Pools {
	pools := make(Pools, maxSize+1)
	for s := 1; s <= maxSize; s++ {
		pools[s] = generateStage(pools, s)
	}
	return pools
}

// GenerateRadicals enumerates radicals with one thread per size,
// synchronized by a single monotonic counter in the section 5.3 broadcast
// pattern. The result is identical to GenerateRadicalsSeq.
func GenerateRadicals(maxSize int, mode sthreads.Mode, impl core.Impl) Pools {
	if impl == "" {
		impl = core.ImplList
	}
	pools := make(Pools, maxSize+1)
	stageCount := core.NewImpl(impl)
	stageCount.Increment(1) // stage 0 (hydrogen) is implicitly published
	sthreads.For(mode, 1, maxSize+1, 1, func(s int) {
		// Wait until stages 0..s-1 are published, then read them all.
		stageCount.Check(uint64(s))
		pools[s] = generateStage(pools, s)
		stageCount.Increment(1)
	})
	return pools
}

// generateStage builds all radicals of size s from the smaller stages: a
// root carbon plus a multiset of at most three radicals whose sizes sum to
// s-1. Multisets are enumerated as non-decreasing sequences over the
// combined smaller pools, so each canonical form appears exactly once.
func generateStage(pools Pools, s int) []Radical {
	// Flatten the smaller stages into one indexable pool.
	var pool []Radical
	for sz := 1; sz < s; sz++ {
		pool = append(pool, pools[sz]...)
	}
	var out []Radical
	children := make([]string, 0, 3)
	var rec func(minIdx, remaining, slots int)
	rec = func(minIdx, remaining, slots int) {
		if remaining == 0 {
			out = append(out, makeRadical(s, children))
			return
		}
		if slots == 0 {
			return
		}
		for idx := minIdx; idx < len(pool); idx++ {
			r := pool[idx]
			if r.Size > remaining {
				continue
			}
			children = append(children, r.Repr)
			rec(idx, remaining-r.Size, slots-1)
			children = children[:len(children)-1]
		}
	}
	rec(0, s-1, 3)
	return out
}

// CountParaffins returns the number of distinct paraffins (alkanes) with
// exactly n carbons, given radical pools covering sizes up to n/2.
// CountParaffins(0) is 0 by convention (no carbons, no molecule).
func CountParaffins(pools Pools, n int) int {
	if n <= 0 {
		return 0
	}
	if n == 1 {
		return 1 // methane: a carbon with four hydrogens
	}
	total := countVertexCentered(pools, n)
	if n%2 == 0 {
		// Edge-centered: an unordered pair (with repetition) of
		// radicals of size n/2.
		r := len(pools[n/2])
		total += r * (r + 1) / 2
	}
	return total
}

// countVertexCentered counts multisets of at most four radicals, each of
// size <= floor((n-1)/2), with sizes summing to n-1 — the trees whose
// unique centroid is the central carbon.
func countVertexCentered(pools Pools, n int) int {
	maxBranch := (n - 1) / 2
	var pool []Radical
	for sz := 1; sz <= maxBranch && sz < len(pools); sz++ {
		pool = append(pool, pools[sz]...)
	}
	count := 0
	var rec func(minIdx, remaining, slots int)
	rec = func(minIdx, remaining, slots int) {
		if remaining == 0 {
			count++
			return
		}
		if slots == 0 {
			return
		}
		for idx := minIdx; idx < len(pool); idx++ {
			if pool[idx].Size > remaining {
				continue
			}
			rec(idx, remaining-pool[idx].Size, slots-1)
		}
	}
	rec(0, n-1, 4)
	return count
}

// EnumerateParaffins returns the canonical forms of all paraffins of
// exactly n carbons (for tests on small n; counting does not require
// materialization).
func EnumerateParaffins(pools Pools, n int) []string {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []string{"C()"}
	}
	var out []string
	maxBranch := (n - 1) / 2
	var pool []Radical
	for sz := 1; sz <= maxBranch && sz < len(pools); sz++ {
		pool = append(pool, pools[sz]...)
	}
	children := make([]string, 0, 4)
	var rec func(minIdx, remaining, slots int)
	rec = func(minIdx, remaining, slots int) {
		if remaining == 0 {
			sorted := append([]string(nil), children...)
			sort.Strings(sorted)
			out = append(out, "C("+strings.Join(sorted, "")+")")
			return
		}
		if slots == 0 {
			return
		}
		for idx := minIdx; idx < len(pool); idx++ {
			if pool[idx].Size > remaining {
				continue
			}
			children = append(children, pool[idx].Repr)
			rec(idx, remaining-pool[idx].Size, slots-1)
			children = children[:len(children)-1]
		}
	}
	rec(0, n-1, 4)
	if n%2 == 0 {
		half := pools[n/2]
		for i := 0; i < len(half); i++ {
			for j := i; j < len(half); j++ {
				pair := []string{half[i].Repr, half[j].Repr}
				sort.Strings(pair)
				out = append(out, "E("+pair[0]+pair[1]+")")
			}
		}
	}
	return out
}

// CountAll returns CountParaffins for every n in 1..maxN, generating the
// radical pools with the parallel pipeline.
func CountAll(maxN int, mode sthreads.Mode, impl core.Impl) []int {
	pools := GenerateRadicals(maxN/2, mode, impl)
	out := make([]int, maxN+1)
	for n := 1; n <= maxN; n++ {
		out[n] = CountParaffins(pools, n)
	}
	return out
}
