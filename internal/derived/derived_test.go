package derived

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEventSetReleases(t *testing.T) {
	e := NewEvent()
	released := make(chan struct{})
	go func() {
		e.Check()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("Check passed before Set")
	case <-time.After(20 * time.Millisecond):
	}
	e.Set()
	e.Set() // idempotent in effect
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("Check never released")
	}
	e.Check() // already set: immediate
}

func TestLatchOpensAtN(t *testing.T) {
	l := NewLatch(3)
	opened := make(chan struct{})
	go func() {
		l.Wait()
		close(opened)
	}()
	for i := 0; i < 2; i++ {
		l.Done()
	}
	select {
	case <-opened:
		t.Fatal("latch opened early")
	case <-time.After(20 * time.Millisecond):
	}
	l.Done()
	select {
	case <-opened:
	case <-time.After(5 * time.Second):
		t.Fatal("latch never opened")
	}
}

func TestLatchZero(t *testing.T) {
	done := make(chan struct{})
	go func() {
		NewLatch(0).Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("zero latch blocked")
	}
}

func TestLatchNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLatch(-1) did not panic")
		}
	}()
	NewLatch(-1)
}

func TestBarrierLockstep(t *testing.T) {
	const n = 6
	const rounds = 100
	b := NewBarrier(n)
	var stepOf [n]atomic.Int64
	var bad atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			party := b.Register()
			for r := 1; r <= rounds; r++ {
				stepOf[p].Store(int64(r))
				party.Pass()
				for q := 0; q < n; q++ {
					v := stepOf[q].Load()
					if v < int64(r) || v > int64(r+1) {
						bad.Store(true)
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if bad.Load() {
		t.Fatal("counter-based barrier failed lockstep")
	}
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	p := b.Register()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			p.Pass()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("single-party barrier blocked")
	}
}

func TestBarrierPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestSequencerOrders(t *testing.T) {
	s := NewSequencer()
	var order []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	const n = 32
	// Reserve tickets in a deterministic order, then complete them from
	// goroutines started in reverse: execution must still follow ticket
	// order.
	tickets := make([]uint64, n)
	for i := range tickets {
		tickets[i] = s.Next()
	}
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(ticket uint64) {
			defer wg.Done()
			s.Await(ticket)
			mu.Lock()
			order = append(order, ticket)
			mu.Unlock()
			s.Complete()
		}(tickets[i])
	}
	wg.Wait()
	for i, v := range order {
		if v != uint64(i) {
			t.Fatalf("execution order %v, want ticket order", order)
		}
	}
}

func TestSequencerDo(t *testing.T) {
	s := NewSequencer()
	var result []int
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(func() {
				result = append(result, len(result))
			})
		}()
	}
	wg.Wait()
	if len(result) != 16 {
		t.Fatalf("result = %v", result)
	}
	for i, v := range result {
		if v != i {
			t.Fatalf("result = %v, want in-order appends", result)
		}
	}
}

// TestSequencerDoTicketsReservedInCallOrder: with Do, a goroutine's place
// is its Next() call order; racing goroutines get *some* total order with
// no lost or duplicated slots.
func TestSequencerDoRace(t *testing.T) {
	s := NewSequencer()
	var count atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(func() { count.Add(1) })
		}()
	}
	wg.Wait()
	if count.Load() != 64 {
		t.Fatalf("count = %d", count.Load())
	}
}
