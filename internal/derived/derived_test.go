package derived

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEventSetReleases(t *testing.T) {
	e := NewEvent()
	released := make(chan struct{})
	go func() {
		e.Check()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("Check passed before Set")
	case <-time.After(20 * time.Millisecond):
	}
	e.Set()
	e.Set() // idempotent in effect
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("Check never released")
	}
	e.Check() // already set: immediate
}

func TestLatchOpensAtN(t *testing.T) {
	l := NewLatch(3)
	opened := make(chan struct{})
	go func() {
		l.Wait()
		close(opened)
	}()
	for i := 0; i < 2; i++ {
		l.Done()
	}
	select {
	case <-opened:
		t.Fatal("latch opened early")
	case <-time.After(20 * time.Millisecond):
	}
	l.Done()
	select {
	case <-opened:
	case <-time.After(5 * time.Second):
		t.Fatal("latch never opened")
	}
}

func TestLatchZero(t *testing.T) {
	done := make(chan struct{})
	go func() {
		NewLatch(0).Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("zero latch blocked")
	}
}

func TestLatchNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLatch(-1) did not panic")
		}
	}()
	NewLatch(-1)
}

func TestBarrierLockstep(t *testing.T) {
	const n = 6
	const rounds = 100
	b := NewBarrier(n)
	var stepOf [n]atomic.Int64
	var bad atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			party := b.Register()
			for r := 1; r <= rounds; r++ {
				stepOf[p].Store(int64(r))
				party.Pass()
				for q := 0; q < n; q++ {
					v := stepOf[q].Load()
					if v < int64(r) || v > int64(r+1) {
						bad.Store(true)
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if bad.Load() {
		t.Fatal("counter-based barrier failed lockstep")
	}
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	p := b.Register()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			p.Pass()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("single-party barrier blocked")
	}
}

func TestBarrierPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestSequencerOrders(t *testing.T) {
	s := NewSequencer()
	var order []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	const n = 32
	// Reserve tickets in a deterministic order, then complete them from
	// goroutines started in reverse: execution must still follow ticket
	// order.
	tickets := make([]uint64, n)
	for i := range tickets {
		tickets[i] = s.Next()
	}
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(ticket uint64) {
			defer wg.Done()
			s.Await(ticket)
			mu.Lock()
			order = append(order, ticket)
			mu.Unlock()
			s.Complete()
		}(tickets[i])
	}
	wg.Wait()
	for i, v := range order {
		if v != uint64(i) {
			t.Fatalf("execution order %v, want ticket order", order)
		}
	}
}

func TestSequencerDo(t *testing.T) {
	s := NewSequencer()
	var result []int
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(func() {
				result = append(result, len(result))
			})
		}()
	}
	wg.Wait()
	if len(result) != 16 {
		t.Fatalf("result = %v", result)
	}
	for i, v := range result {
		if v != i {
			t.Fatalf("result = %v, want in-order appends", result)
		}
	}
}

// TestSequencerDoTicketsReservedInCallOrder: with Do, a goroutine's place
// is its Next() call order; racing goroutines get *some* total order with
// no lost or duplicated slots.
func TestSequencerDoRace(t *testing.T) {
	s := NewSequencer()
	var count atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(func() { count.Add(1) })
		}()
	}
	wg.Wait()
	if count.Load() != 64 {
		t.Fatalf("count = %d", count.Load())
	}
}

// TestBarrierPassOverflowPanics forces the n*round product past 2^64:
// before the checkedMul guard, the level wrapped to 0 and Pass waved the
// party through a barrier nobody else had reached; now it panics.
func TestBarrierPassOverflowPanics(t *testing.T) {
	b := NewBarrier(4)
	p := b.Register()
	p.round = (1 << 62) - 1 // the next Pass computes 4 * 2^62 == 2^64
	defer func() {
		if recover() == nil {
			t.Fatal("Pass with a wrapping n*round did not panic")
		}
	}()
	p.Pass()
}

// TestBarrierReached pins the observer view: a Reached condition opens
// exactly when the round completes, without registering a party.
func TestBarrierReached(t *testing.T) {
	const n = 3
	b := NewBarrier(n)
	r1 := b.Reached(1)
	if r1.Poll() {
		t.Fatal("Reached(1) holds before anyone passed")
	}
	if !b.Reached(0).Poll() {
		t.Fatal("Reached(0) does not hold trivially")
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Register().Pass()
		}()
	}
	wg.Wait()
	if !r1.Poll() {
		t.Fatal("Reached(1) does not hold after all parties passed")
	}
	if b.Reached(2).Poll() {
		t.Fatal("Reached(2) holds after one round")
	}
}

// TestSequencerDoPanicSafe pins the defer fix: a panic inside f must
// propagate to the caller AND still complete the ticket, so the next
// ticket gets its turn instead of waiting forever.
func TestSequencerDoPanicSafe(t *testing.T) {
	s := NewSequencer()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic in Do's f did not propagate")
			}
		}()
		s.Do(func() { panic("f failed") })
	}()
	done := make(chan struct{})
	go func() {
		s.Do(func() {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sequencer wedged after a panicking Do")
	}
}

func TestQuorumOpensAtK(t *testing.T) {
	q := NewQuorum(5, 3, 2)
	opened := make(chan struct{})
	go func() {
		q.Wait()
		close(opened)
	}()
	q.Add(0, 2)
	q.Arrive(2) // one unit: below the threshold, must not count
	q.Add(4, 2)
	select {
	case <-opened:
		t.Fatal("quorum opened with 2 of 3 members at threshold")
	case <-time.After(20 * time.Millisecond):
	}
	if q.Reached() {
		t.Fatal("Reached true with 2 of 3 members at threshold")
	}
	q.Arrive(2) // second unit completes the third member
	select {
	case <-opened:
	case <-time.After(5 * time.Second):
		t.Fatal("quorum never opened")
	}
	if !q.Reached() {
		t.Fatal("Reached false after opening")
	}
}

func TestQuorumWaitContext(t *testing.T) {
	q := NewQuorum(3, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q.WaitContext(ctx); err != context.Canceled {
		t.Fatalf("WaitContext(cancelled) = %v, want Canceled", err)
	}
	q.Arrive(0)
	q.Arrive(2)
	// Open quorum beats the cancelled context.
	if err := q.WaitContext(ctx); err != nil {
		t.Fatalf("WaitContext(cancelled, open) = %v, want nil", err)
	}
}

// TestQuorumSharedSentinels pins the storage bound at the derived tier:
// many waiters on one quorum arm sentinels proportional to members and
// frontier moves, never to the waiter count.
func TestQuorumSharedSentinels(t *testing.T) {
	const members, k, waiters = 4, 3, 50
	q := NewQuorum(members, k, 1)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Wait()
		}()
	}
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < k; i++ {
		q.Arrive(i)
	}
	wg.Wait()
	s := q.Cond().Stats()
	if !s.Satisfied || s.Armed != 0 {
		t.Fatalf("stats = %+v after opening", s)
	}
	if s.Arms > uint64(members*(k+1)) {
		t.Fatalf("Arms = %d for %d members — scaling with the %d waiters?", s.Arms, members, waiters)
	}
}

func TestQuorumBadArgsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewQuorum(0, 1, 1) },
		func() { NewQuorum(3, 0, 1) },
		func() { NewQuorum(3, 4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad quorum shape did not panic")
				}
			}()
			f()
		}()
	}
}

func TestLatchWaitContextAndOpened(t *testing.T) {
	l := NewLatch(2)
	if l.Opened() {
		t.Fatal("Opened true on a fresh latch")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.WaitContext(ctx); err != context.Canceled {
		t.Fatalf("WaitContext(cancelled) = %v, want Canceled", err)
	}
	l.Done()
	l.Done()
	if err := l.WaitContext(ctx); err != nil {
		t.Fatalf("WaitContext(cancelled, opened) = %v, want nil", err)
	}
	if !l.Opened() {
		t.Fatal("Opened false after n Dones")
	}
}

func TestAllAnyOpened(t *testing.T) {
	a, b := NewLatch(1), NewLatch(2)
	all := AllOpened(a, b)
	any := AnyOpened(a, b)
	if all.Poll() || any.Poll() {
		t.Fatal("conditions hold over fresh latches")
	}
	a.Done()
	if !any.Poll() {
		t.Fatal("AnyOpened does not hold with one latch open")
	}
	if all.Poll() {
		t.Fatal("AllOpened holds with one latch still closed")
	}
	allDone := make(chan error, 1)
	go func() { allDone <- all.Wait(context.Background()) }()
	b.Done()
	b.Done()
	select {
	case err := <-allDone:
		if err != nil {
			t.Fatalf("AllOpened Wait = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AllOpened never released")
	}
}
