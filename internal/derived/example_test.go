package derived_test

import (
	"fmt"
	"sync"

	"monotonic/internal/derived"
)

// A sequencer runs critical sections in ticket order regardless of
// scheduling.
func ExampleSequencer() {
	s := derived.NewSequencer()
	var wg sync.WaitGroup
	out := make([]int, 0, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(func() { out = append(out, len(out)) })
		}()
	}
	wg.Wait()
	fmt.Println(out)
	// Output: [0 1 2 3 4]
}

// A latch is a counter checked at its target.
func ExampleLatch() {
	l := derived.NewLatch(3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Done()
		}()
	}
	l.Wait()
	wg.Wait()
	fmt.Println("all three done")
	// Output: all three done
}
