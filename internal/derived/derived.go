// Package derived implements traditional synchronization mechanisms ON
// TOP of monotonic counters, demonstrating the paper's section 8 point
// that one counter operation often corresponds to many traditional
// synchronization operations, and that counters integrate with (indeed,
// subsume much of) the traditional repertoire:
//
//   - Event: a manual-reset event is a counter used at level 1.
//   - Latch: a count-down latch (java.util.concurrent's CountDownLatch)
//     is a counter checked at its target.
//   - Barrier: a cyclic barrier is a counter incremented once per arrival
//     and checked at n*round — the counter's multiple suspension queues
//     let threads from different rounds coexist without the generation
//     bookkeeping a condvar barrier needs.
//   - Sequencer: admission in ticket order (the Disruptor-style pattern),
//     a counter checked at each ticket.
//
// None of these exhaust the counter: they all use it at a single level or
// a fixed stride, whereas dataflow programs (sections 4-5) exploit
// arbitrary level sets.
package derived

import (
	"sync/atomic"

	"monotonic/internal/core"
)

// Event is a one-shot manual-reset event built on a counter: Set is
// Increment(1), Check is Check(1). Once set it stays set — exactly the
// monotonicity an event needs.
type Event struct {
	c core.Counter
}

// NewEvent returns an unset event.
func NewEvent() *Event { return new(Event) }

// Set signals the event; extra Sets are harmless (the level only needs
// reaching once).
func (e *Event) Set() {
	// An event may be Set many times; guard the counter against
	// unbounded growth is unnecessary (uint64), but keep Set idempotent
	// in effect: any value >= 1 means "set".
	e.c.Increment(1)
}

// Check suspends until the event is set.
func (e *Event) Check() { e.c.Check(1) }

// Latch is a count-down latch for n parties: each Done is an Increment,
// Wait is a Check at n. (The paper's counter counts up; a "count-down"
// latch is the same object viewed from the other end.)
type Latch struct {
	c core.Counter
	n uint64
}

// NewLatch returns a latch that opens after n Done calls. n may be zero,
// in which case Wait never suspends.
func NewLatch(n int) *Latch {
	if n < 0 {
		panic("derived: NewLatch requires n >= 0")
	}
	return &Latch{n: uint64(n)}
}

// Done records one completion.
func (l *Latch) Done() { l.c.Increment(1) }

// Wait suspends until n completions have been recorded.
func (l *Latch) Wait() { l.c.Check(l.n) }

// Barrier is a cyclic barrier for n parties built on one counter: the
// r-th crossing completes when the counter reaches n*r. Each party tracks
// its own round locally, so no generation flag or reset is needed — the
// counter's per-level queues do that bookkeeping for free.
type Barrier struct {
	c core.Counter
	n uint64
}

// NewBarrier returns a counter-based barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("derived: NewBarrier requires n >= 1")
	}
	return &Barrier{n: uint64(n)}
}

// Party is one participant's handle; each party must use its own.
type Party struct {
	b     *Barrier
	round uint64
}

// Register returns a participant handle.
func (b *Barrier) Register() *Party { return &Party{b: b} }

// Pass blocks until all n parties have passed this round.
func (p *Party) Pass() {
	p.round++
	p.b.c.Increment(1)
	p.b.c.Check(p.b.n * p.round)
}

// Sequencer admits goroutines in ticket order: Next hands out tickets,
// Awaitadmits when the predecessor completes. It is the section 5.2
// ordering pattern packaged as an object.
type Sequencer struct {
	c    core.Counter
	next atomic.Uint64
}

// NewSequencer returns a sequencer whose first ticket is 0.
func NewSequencer() *Sequencer { return new(Sequencer) }

// Next reserves and returns the caller's ticket.
func (s *Sequencer) Next() uint64 {
	return s.next.Add(1) - 1
}

// Await suspends until every ticket before `ticket` has completed.
func (s *Sequencer) Await(ticket uint64) { s.c.Check(ticket) }

// Complete marks the caller's ticket done, admitting the next one. It
// must be called exactly once per ticket, in possession of that ticket's
// turn (i.e. after Await returned).
func (s *Sequencer) Complete() { s.c.Increment(1) }

// Do runs f in ticket order: it reserves a ticket, awaits its turn, runs
// f, and completes.
func (s *Sequencer) Do(f func()) {
	t := s.Next()
	s.Await(t)
	f()
	s.Complete()
}
