// Package derived implements traditional synchronization mechanisms ON
// TOP of monotonic counters, demonstrating the paper's section 8 point
// that one counter operation often corresponds to many traditional
// synchronization operations, and that counters integrate with (indeed,
// subsume much of) the traditional repertoire:
//
//   - Event: a manual-reset event is a counter used at level 1.
//   - Latch: a count-down latch (java.util.concurrent's CountDownLatch)
//     is a counter checked at its target.
//   - Barrier: a cyclic barrier is a counter incremented once per arrival
//     and checked at n*round — the counter's multiple suspension queues
//     let threads from different rounds coexist without the generation
//     bookkeeping a condvar barrier needs.
//   - Sequencer: admission in ticket order (the Disruptor-style pattern),
//     a counter checked at each ticket.
//   - Quorum: a k-of-n wait — open once any k of n members reach a
//     threshold — built on the predicate layer (internal/predicate),
//     which no single-counter Check can express.
//
// None of these exhaust the counter: they all use it at a single level or
// a fixed stride, whereas dataflow programs (sections 4-5) exploit
// arbitrary level sets. The multi-counter composites (Quorum, AllOpened,
// AnyOpened, Barrier.Reached) park one shared sentinel per watched
// counter, so any number of waiters cost O(counters) nodes.
package derived

import (
	"context"
	"sync"
	"sync/atomic"

	"monotonic/internal/core"
	"monotonic/internal/predicate"
)

// checkedMul returns a*b, panicking on uint64 overflow. Like core's
// checkedAdd, a wrapped product would silently break monotonicity — a
// barrier level computed modulo 2^64 could sit BELOW the counter and
// admit every party instantly — so overflow is a programming error, not
// a wraparound.
func checkedMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/a != b {
		panic("derived: barrier level overflow")
	}
	return p
}

// Event is a one-shot manual-reset event built on a counter: Set is
// Increment(1), Check is Check(1). Once set it stays set — exactly the
// monotonicity an event needs.
type Event struct {
	c core.Counter
}

// NewEvent returns an unset event.
func NewEvent() *Event { return new(Event) }

// Set signals the event; extra Sets are harmless (the level only needs
// reaching once).
func (e *Event) Set() {
	// An event may be Set many times; guard the counter against
	// unbounded growth is unnecessary (uint64), but keep Set idempotent
	// in effect: any value >= 1 means "set".
	e.c.Increment(1)
}

// Check suspends until the event is set.
func (e *Event) Check() { e.c.Check(1) }

// Latch is a count-down latch for n parties: each Done is an Increment,
// opening is the counter reaching n. (The paper's counter counts up; a
// "count-down" latch is the same object viewed from the other end.)
// Waiting goes through a shared predicate condition rather than a bare
// Check so latches compose: AllOpened and AnyOpened wait on several
// latches at once, and WaitContext cancels like any predicate wait.
type Latch struct {
	c core.Counter
	n uint64

	once sync.Once
	cond *predicate.Cond
}

// NewLatch returns a latch that opens after n Done calls. n may be zero,
// in which case Wait never suspends.
func NewLatch(n int) *Latch {
	if n < 0 {
		panic("derived: NewLatch requires n >= 0")
	}
	return &Latch{n: uint64(n)}
}

// Done records one completion.
func (l *Latch) Done() { l.c.Increment(1) }

// opened lazily builds the latch's shared condition — a latch nobody
// waits on never arms a sentinel.
func (l *Latch) opened() *predicate.Cond {
	l.once.Do(func() {
		l.cond = predicate.NewCond(predicate.Thresholds([]uint64{l.n}, 1), &l.c)
	})
	return l.cond
}

// Wait suspends until n completions have been recorded. All waiters
// share one condition, so they cost one parked sentinel, not one node
// each.
func (l *Latch) Wait() {
	if err := l.opened().Wait(context.Background()); err != nil {
		panic("derived: latch wait failed: " + err.Error()) // unreachable: background ctx
	}
}

// WaitContext is Wait with cancellation; an opened latch beats a
// cancelled context.
func (l *Latch) WaitContext(ctx context.Context) error {
	return l.opened().Wait(ctx)
}

// Opened reports whether the latch has opened, without blocking.
func (l *Latch) Opened() bool { return l.opened().Poll() }

// AllOpened returns a condition that holds once every given latch has
// opened — a barrier over latches. The condition parks one sentinel per
// still-closed latch, shared by all its waiters; wait on it with Wait
// (blocking) or Poll.
func AllOpened(latches ...*Latch) *predicate.Cond {
	return latchCond(latches, len(latches))
}

// AnyOpened returns a condition that holds once at least one of the
// given latches has opened.
func AnyOpened(latches ...*Latch) *predicate.Cond {
	return latchCond(latches, 1)
}

func latchCond(latches []*Latch, k int) *predicate.Cond {
	if len(latches) == 0 {
		panic("derived: no latches to wait on")
	}
	levels := make([]uint64, len(latches))
	cs := make([]predicate.Counter, len(latches))
	for i, l := range latches {
		levels[i] = l.n
		cs[i] = &l.c
	}
	return predicate.NewCond(predicate.Thresholds(levels, k), cs...)
}

// Barrier is a cyclic barrier for n parties built on one counter: the
// r-th crossing completes when the counter reaches n*r. Each party tracks
// its own round locally, so no generation flag or reset is needed — the
// counter's per-level queues do that bookkeeping for free.
type Barrier struct {
	c core.Counter
	n uint64
}

// NewBarrier returns a counter-based barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("derived: NewBarrier requires n >= 1")
	}
	return &Barrier{n: uint64(n)}
}

// Party is one participant's handle; each party must use its own.
type Party struct {
	b     *Barrier
	round uint64
}

// Register returns a participant handle.
func (b *Barrier) Register() *Party { return &Party{b: b} }

// Pass blocks until all n parties have passed this round.
func (p *Party) Pass() {
	p.round++
	p.b.c.Increment(1)
	// The level must be computed overflow-checked: n*round wrapping
	// modulo 2^64 could land BELOW the counter's value and wave the
	// party through a barrier nobody else reached. (The counter itself
	// would overflow first in any run that actually gets there — this
	// guards the computed level, which overflows n times sooner.)
	p.b.c.Check(checkedMul(p.b.n, p.round))
}

// Reached returns a condition that holds once round has completed (the
// counter has reached n*round) — an observer's view of the barrier,
// shared by any number of waiters without registering a party. Round
// numbers start at 1; round 0 trivially holds.
func (b *Barrier) Reached(round uint64) *predicate.Cond {
	return predicate.NewCond(
		predicate.Thresholds([]uint64{checkedMul(b.n, round)}, 1), &b.c)
}

// Sequencer admits goroutines in ticket order: Next hands out tickets,
// Await admits when the predecessor completes. It is the section 5.2
// ordering pattern packaged as an object.
type Sequencer struct {
	c    core.Counter
	next atomic.Uint64
}

// NewSequencer returns a sequencer whose first ticket is 0.
func NewSequencer() *Sequencer { return new(Sequencer) }

// Next reserves and returns the caller's ticket.
func (s *Sequencer) Next() uint64 {
	return s.next.Add(1) - 1
}

// Await suspends until every ticket before `ticket` has completed.
func (s *Sequencer) Await(ticket uint64) { s.c.Check(ticket) }

// Complete marks the caller's ticket done, admitting the next one. It
// must be called exactly once per ticket, in possession of that ticket's
// turn (i.e. after Await returned).
func (s *Sequencer) Complete() { s.c.Increment(1) }

// Do runs f in ticket order: it reserves a ticket, awaits its turn, runs
// f, and completes. Completion is deferred, so a panic in f propagates
// to the caller but does NOT wedge the sequencer: later tickets still
// get their turn. (Without the defer, one panicking f would leave its
// ticket forever incomplete and every later Await suspended.)
func (s *Sequencer) Do(f func()) {
	t := s.Next()
	s.Await(t)
	defer s.Complete()
	f()
}

// Quorum is a k-of-n wait built on the predicate layer: n member
// counters, open once at least k of them reach a threshold. It is the
// derived-object face of the paper's storage argument lifted one tier:
// any number of goroutines waiting on one Quorum park one shared
// sentinel per member, not one node per waiter per member.
type Quorum struct {
	members []core.Counter
	cond    *predicate.Cond
}

// NewQuorum returns a quorum over n member counters that opens once at
// least k members have reached threshold. 1 <= k <= n is required;
// k = n is a join (all members), k = 1 an any-of wait.
func NewQuorum(n, k int, threshold uint64) *Quorum {
	if n < 1 {
		panic("derived: NewQuorum requires n >= 1")
	}
	// Thresholds validates 1 <= k <= n.
	members := make([]core.Counter, n)
	levels := make([]uint64, n)
	cs := make([]predicate.Counter, n)
	for i := range members {
		levels[i] = threshold
		cs[i] = &members[i]
	}
	q := &Quorum{members: members}
	q.cond = predicate.NewCond(predicate.Thresholds(levels, k), cs...)
	return q
}

// Arrive records one unit of progress by member i.
func (q *Quorum) Arrive(i int) { q.members[i].Increment(1) }

// Add records amount units of progress by member i.
func (q *Quorum) Add(i int, amount uint64) { q.members[i].Increment(amount) }

// Wait suspends until the quorum opens.
func (q *Quorum) Wait() {
	if err := q.cond.Wait(context.Background()); err != nil {
		panic("derived: quorum wait failed: " + err.Error()) // unreachable: background ctx
	}
}

// WaitContext is Wait with cancellation; an open quorum beats a
// cancelled context.
func (q *Quorum) WaitContext(ctx context.Context) error {
	return q.cond.Wait(ctx)
}

// Reached reports whether the quorum has opened, without blocking.
func (q *Quorum) Reached() bool { return q.cond.Poll() }

// Cond exposes the quorum's underlying condition for composition and
// for mechanism accounting (Stats) in tests and experiments.
func (q *Quorum) Cond() *predicate.Cond { return q.cond }
