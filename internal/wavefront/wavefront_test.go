package wavefront

import (
	"strings"
	"testing"
	"testing/quick"

	"monotonic/internal/core"
	"monotonic/internal/workload"
)

func TestKnownDistances(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"intention", "execution", 5},
		{"a", "b", 1},
	}
	for _, tc := range cases {
		if got := EditDistanceSeq(tc.a, tc.b, DefaultCosts); got != tc.want {
			t.Errorf("seq(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := EditDistance(tc.a, tc.b, DefaultCosts, 3, 2, ""); got != tc.want {
			t.Errorf("parallel(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCustomCosts(t *testing.T) {
	c := Costs{Match: 0, Mismatch: 3, Gap: 2}
	// "ab" -> "ba": either two substitutions (6) or insert+delete (4).
	if got := EditDistanceSeq("ab", "ba", c); got != 4 {
		t.Fatalf("weighted distance = %d, want 4", got)
	}
	if got := EditDistance("ab", "ba", c, 2, 1, ""); got != 4 {
		t.Fatalf("parallel weighted distance = %d, want 4", got)
	}
}

func randomString(rng *workload.RNG, n int, alphabet string) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

// TestQuickParallelMatchesSequential: property test over random strings,
// band counts, block sizes, and counter implementations.
func TestQuickParallelMatchesSequential(t *testing.T) {
	f := func(seed uint64, an, bn, bands8, block8 uint8) bool {
		rng := workload.NewRNG(seed)
		a := randomString(rng, int(an%60), "acgt")
		b := randomString(rng, int(bn%60), "acgt")
		bands := int(bands8%6) + 1
		block := int(block8%9) + 1
		want := EditDistanceSeq(a, b, DefaultCosts)
		impl := core.Impls[seed%uint64(len(core.Impls))]
		return EditDistance(a, b, DefaultCosts, bands, block, impl) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllImpls(t *testing.T) {
	rng := workload.NewRNG(3)
	a := randomString(rng, 80, "abcdefgh")
	b := randomString(rng, 90, "abcdefgh")
	want := EditDistanceSeq(a, b, DefaultCosts)
	for _, impl := range core.Impls {
		if got := EditDistance(a, b, DefaultCosts, 4, 8, impl); got != want {
			t.Errorf("impl %s: %d, want %d", impl, got, want)
		}
	}
}

func TestBandClamping(t *testing.T) {
	// More bands than rows, zero/negative parameters.
	if got := EditDistance("ab", "xy", DefaultCosts, 16, 4, ""); got != 2 {
		t.Fatalf("clamped bands = %d, want 2", got)
	}
	if got := EditDistance("ab", "xy", DefaultCosts, 0, 0, ""); got != 2 {
		t.Fatalf("degenerate params = %d, want 2", got)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	// Edit distance is a metric; spot-check the triangle inequality on
	// random triples via the parallel implementation.
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		a := randomString(rng, 10+rng.Intn(20), "ab")
		b := randomString(rng, 10+rng.Intn(20), "ab")
		c := randomString(rng, 10+rng.Intn(20), "ab")
		dab := EditDistance(a, b, DefaultCosts, 3, 4, "")
		dbc := EditDistance(b, c, DefaultCosts, 3, 4, "")
		dac := EditDistance(a, c, DefaultCosts, 3, 4, "")
		return dac <= dab+dbc && dab <= dac+dbc && dbc <= dab+dac
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetry(t *testing.T) {
	rng := workload.NewRNG(9)
	for i := 0; i < 20; i++ {
		a := randomString(rng, rng.Intn(40), "xyz")
		b := randomString(rng, rng.Intn(40), "xyz")
		if EditDistance(a, b, DefaultCosts, 2, 3, "") != EditDistance(b, a, DefaultCosts, 2, 3, "") {
			t.Fatalf("distance not symmetric for %q, %q", a, b)
		}
	}
}

func TestEmptyA(t *testing.T) {
	// n == 0 takes the sequential fallback inside EditDistance.
	if got := EditDistance("", "abc", DefaultCosts, 4, 2, ""); got != 3 {
		t.Fatalf("empty-a distance = %d", got)
	}
}
