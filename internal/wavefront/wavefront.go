// Package wavefront implements two-dimensional wavefront computations —
// dynamic-programming tables where cell (i,j) depends on (i-1,j),
// (i,j-1), and (i-1,j-1) — parallelized with monotonic counters in the
// paper's dataflow style: one thread per row band, one counter per band,
// each band's counter value broadcasting "columns up to value are done"
// to the band below. This is the multi-level generalization of the
// section 5.3 broadcast: every level of one counter is consumed, in
// order, by the successor band.
//
// The concrete instance is global sequence alignment (Needleman-Wunsch
// edit distance), the canonical wavefront kernel.
package wavefront

import (
	"monotonic/internal/core"
	"monotonic/internal/sthreads"
)

// Costs parameterizes the alignment.
type Costs struct {
	Match    int // added when characters match (usually 0)
	Mismatch int // substitution cost
	Gap      int // insertion/deletion cost
}

// DefaultCosts is unit edit distance.
var DefaultCosts = Costs{Match: 0, Mismatch: 1, Gap: 1}

// EditDistanceSeq fills the full (len(a)+1) x (len(b)+1) DP table
// sequentially and returns the alignment cost of a vs b. It is the
// oracle for the parallel variants.
func EditDistanceSeq(a, b string, c Costs) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j * c.Gap
	}
	for i := 1; i <= n; i++ {
		cur[0] = i * c.Gap
		for j := 1; j <= m; j++ {
			cur[j] = cellCost(prev[j-1], prev[j], cur[j-1], a[i-1], b[j-1], c)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

func cellCost(diag, up, left int, ca, cb byte, c Costs) int {
	sub := diag + c.Mismatch
	if ca == cb {
		sub = diag + c.Match
	}
	if v := up + c.Gap; v < sub {
		sub = v
	}
	if v := left + c.Gap; v < sub {
		sub = v
	}
	return sub
}

// EditDistance computes the same cost with the rows partitioned into
// `bands` horizontal bands, one thread per band, pipelined column-block
// by column-block: band t may fill columns [0, k*blockCols) of its rows
// only after band t-1's counter reaches k. Each band publishes its last
// row to the band below through the shared table. impl selects the
// counter implementation ("" = reference list).
func EditDistance(a, b string, c Costs, bands, blockCols int, impl core.Impl) int {
	n, m := len(a), len(b)
	if bands < 1 {
		bands = 1
	}
	if bands > n {
		bands = n
	}
	if blockCols < 1 {
		blockCols = 1
	}
	if impl == "" {
		impl = core.ImplList
	}
	if n == 0 || bands == 0 {
		return EditDistanceSeq(a, b, c)
	}

	// Band t owns rows (bandLo(t), bandHi(t)] of the DP table (1-based
	// DP rows). Each band keeps its own working rows but writes its
	// final row into boundary[t] for the band below; boundary[-1] is
	// the DP top row.
	bandLo := func(t int) int { return t * n / bands }
	bandHi := func(t int) int { return (t + 1) * n / bands }

	boundary := make([][]int, bands+1)
	boundary[0] = make([]int, m+1)
	for j := 0; j <= m; j++ {
		boundary[0][j] = j * c.Gap
	}
	for t := 1; t <= bands; t++ {
		boundary[t] = make([]int, m+1)
		// Column 0 of each boundary is the DP base case for the last
		// row of band t-1; it is fixed up front since the publishing
		// loop only covers columns >= 1.
		boundary[t][0] = bandHi(t-1) * c.Gap
	}

	// done[t] counts the column blocks of band t's last row that have
	// been published into boundary[t+1]; band t+1 checks it before
	// reading those columns.
	done := make([]core.Interface, bands)
	for t := range done {
		done[t] = core.NewImpl(impl)
	}
	blocks := (m + blockCols - 1) / blockCols

	sthreads.ForN(sthreads.Concurrent, bands, func(t int) {
		lo, hi := bandLo(t), bandHi(t)
		rows := hi - lo
		if rows == 0 {
			// Unreachable while bands <= n, but kept correct: an
			// empty band forwards its predecessor's row block by
			// block, preserving the synchronization protocol.
			for blk := 0; blk < blocks; blk++ {
				jStart := blk*blockCols + 1
				jEnd := (blk + 1) * blockCols
				if jEnd > m {
					jEnd = m
				}
				if t > 0 {
					done[t-1].Check(uint64(blk) + 1)
				}
				copy(boundary[t+1][jStart:jEnd+1], boundary[t][jStart:jEnd+1])
				done[t].Increment(1)
			}
			return
		}
		// Working storage: one row per owned row, plus the incoming
		// boundary as row 0. work[r][j] is DP row lo+r+1.
		work := make([][]int, rows)
		for r := range work {
			work[r] = make([]int, m+1)
			work[r][0] = (lo + r + 1) * c.Gap
		}
		top := boundary[t] // owned by band t-1; read block-by-block
		for blk := 0; blk < blocks; blk++ {
			jStart := blk*blockCols + 1
			jEnd := (blk + 1) * blockCols
			if jEnd > m {
				jEnd = m
			}
			if t > 0 {
				done[t-1].Check(uint64(blk) + 1)
			}
			for r := 0; r < rows; r++ {
				above := top
				if r > 0 {
					above = work[r-1]
				}
				row := work[r]
				ai := a[lo+r]
				for j := jStart; j <= jEnd; j++ {
					row[j] = cellCost(above[j-1], above[j], row[j-1], ai, b[j-1], c)
				}
			}
			// Publish this block of the band's last row, then
			// broadcast.
			copy(boundary[t+1][jStart:jEnd+1], work[rows-1][jStart:jEnd+1])
			done[t].Increment(1)
		}
	})
	return boundary[bands][m]
}
