// Package predicate generalizes Check(level) — the monotone predicate
// "value >= L" over one counter — to waits on monotone predicates over
// several counters: a + b >= L, min(a, b) >= L, k of n counters at a
// threshold. It is the engine behind the public counter/wait package
// and the derived-layer composites (Quorum, latch combinators).
//
// The mechanism reuses the counters' own per-level waitlists instead of
// polling or per-waiter bookkeeping: a Cond arms one *sentinel* hook
// (core's Sentineler surface) per watched counter, parked at that
// counter's frontier — the lowest level at which the predicate could
// possibly flip given everything known about the other counters. When a
// sentinel fires, the Cond re-evaluates, re-parks sentinels at the new
// frontiers, and releases its waiters only once the predicate holds. N
// goroutines waiting on one Cond therefore cost O(watched counters)
// parked nodes — one per counter, shared by all N — not O(N × counters),
// which is the paper's storage argument carried up one tier (AutoSynch's
// wake-exactly-the-right-waiters property, with the waitlist node as the
// predicate tag).
//
// Frontier correctness is the heart of it. For a sum a+b >= L it is NOT
// enough to park b's sentinel at L - value(a): if both counters then
// advance partway (a to 3 and b to 7 with L = 10), the sum flips with
// neither frontier reached and every waiter sleeps forever. Sum
// frontiers instead share the remaining gap g = L - sum by pigeonhole:
// every counter's sentinel parks at value(i) + ceil(g/n). If the
// predicate flips, the total gain is at least g, so some counter gained
// at least ceil(g/n) and that sentinel fires — no increment pattern can
// flip the predicate silently.
// Threshold predicates (min, k-of-n) have exact frontiers: the
// unsatisfied counters' own threshold levels.
//
// Re-evaluation happens OFF the signaller's critical path: a sentinel
// fire only records a kick and spawns a short-lived evaluator goroutine
// (ActiveMonitor's discipline), so an Increment that satisfies a
// predicate pays one hook call, not a predicate evaluation, under no
// lock. Between fires a Cond holds zero goroutines.
//
// Monotonicity does the rest of the safety argument: every Counter
// value only grows, so Holds can never flip back, frontiers only move
// up, and a stale Value read only under-estimates — exactly the
// properties that make Check race-free make WaitFor race-free.
package predicate

// Counter is the view of a monotonic counter the predicate engine
// needs: a monotone lower bound on the value and the sentinel hook
// surface. Every implementation in internal/core satisfies it directly
// (Value, Sentinel); the public counter facade satisfies it through
// counter/wait's adapter (Watermark is its lower bound).
type Counter interface {
	// Value returns a monotone lower bound on the counter's value: it
	// may lag the true value, but must never exceed it and must never
	// decrease. (For in-process counters it is exact; for remote
	// counters it is the client's satisfied watermark.)
	Value() uint64
	// Sentinel arms a one-shot hook at level; see core.Sentineler for
	// the full contract (spurious early fires allowed, fn must not
	// block, cancel reports whether fn was prevented).
	Sentinel(level uint64, fn func()) (cancel func() bool, armed bool)
}

// Pred is a monotone predicate over an ordered set of counters: if it
// holds for values v it must hold for any pointwise-greater values.
// Implementations must be stateless and cheap — Holds and Frontiers run
// under the Cond's lock.
type Pred interface {
	// Holds reports whether the predicate is satisfied at vals.
	Holds(vals []uint64) bool
	// Frontiers fills out[i] with the level counter i's sentinel should
	// park at, given the bounds vals (for which Holds returned false).
	// Contract: out[i] <= some future value at which re-evaluation is
	// safe; out[i] <= vals[i] means counter i needs no sentinel; and for
	// any pointwise advance of vals that makes Holds true, at least one
	// i must have advanced to out[i] — the no-lost-wake property.
	Frontiers(vals, out []uint64)
}

// sum is the predicate sum(values) >= target, with pigeonhole
// gap-sharing frontiers (see the package comment for why the naive
// "L minus the others" frontier deadlocks).
type sum struct{ target uint64 }

// SumAtLeast returns the predicate "the values of all watched counters
// sum to at least target". The sum saturates at the uint64 maximum, so
// overflow can only make the predicate hold earlier, never wrap.
func SumAtLeast(target uint64) Pred { return sum{target: target} }

func satSum(vals []uint64) uint64 {
	var s uint64
	for _, v := range vals {
		if s+v < s {
			return ^uint64(0)
		}
		s += v
	}
	return s
}

func (p sum) Holds(vals []uint64) bool { return satSum(vals) >= p.target }

func (p sum) Frontiers(vals, out []uint64) {
	// Holds is false, so the sum is exact (no saturation) and below
	// target. Every counter's frontier is its value plus ceil(g/n): if
	// the sum flips, the total gain is at least g, and n gains all below
	// ceil(g/n) would total at most n*(ceil(g/n)-1) < g — so at least
	// one counter reaches its frontier and its sentinel fires. (A floor
	// share would break this: a counter with share zero gets no sentinel
	// yet can absorb the entire gap by itself.) Since ceil(g/n) <= g <=
	// target - vals[i] for every i, no frontier can exceed target, hence
	// no overflow.
	g := p.target - satSum(vals)
	n := uint64(len(vals))
	share := g / n
	if g%n != 0 {
		share++
	}
	for i := range vals {
		out[i] = vals[i] + share
	}
}

// thresholds is the predicate "at least k of the counters have reached
// their own level" — min (k = n), any (k = 1), and quorum in one shape.
type thresholds struct {
	levels []uint64
	k      int
}

// Thresholds returns the predicate "at least k of the watched counters
// have reached their respective levels[i]". k must be between 1 and
// len(levels); the Cond pairing it with counters must watch exactly
// len(levels) of them. AllAtLeast / min-style waits are k = len(levels);
// any-style waits are k = 1.
func Thresholds(levels []uint64, k int) Pred {
	if len(levels) == 0 {
		panic("predicate: Thresholds requires at least one level")
	}
	if k < 1 || k > len(levels) {
		panic("predicate: Thresholds requires 1 <= k <= len(levels)")
	}
	return thresholds{levels: append([]uint64(nil), levels...), k: k}
}

func (p thresholds) Holds(vals []uint64) bool {
	reached := 0
	for i, v := range vals {
		if v >= p.levels[i] {
			reached++
			if reached >= p.k {
				return true
			}
		}
	}
	return false
}

func (p thresholds) Frontiers(vals, out []uint64) {
	// Exact frontiers: an unsatisfied counter flips its own coordinate
	// precisely at its threshold; a satisfied one can never need to
	// move again (out[i] = vals[i] marks it sentinel-free). Fewer than
	// k coordinates are satisfied when this runs, so at least one
	// sentinel is always armed — the k-th arrival must cross one.
	for i, v := range vals {
		if v >= p.levels[i] {
			out[i] = v
		} else {
			out[i] = p.levels[i]
		}
	}
}
