package predicate_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"monotonic/internal/core"
	"monotonic/internal/predicate"
)

// Every core implementation presents the engine's Counter view.
var _ predicate.Counter = (*core.Counter)(nil)
var _ predicate.Counter = (*core.ShardedCounter)(nil)

func waitNil(t *testing.T, errc <-chan error) {
	t.Helper()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Wait = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait never returned")
	}
}

func mustBlock(t *testing.T, errc <-chan error) {
	t.Helper()
	select {
	case err := <-errc:
		t.Fatalf("Wait returned early with %v", err)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSumAcrossImpls(t *testing.T) {
	for _, impl := range core.Registry() {
		t.Run(string(impl), func(t *testing.T) {
			a := core.NewImpl(impl).(predicate.Counter)
			b := core.NewImpl(impl).(predicate.Counter)
			cond := predicate.NewCond(predicate.SumAtLeast(10), a, b)
			errc := make(chan error, 1)
			go func() { errc <- cond.Wait(context.Background()) }()
			mustBlock(t, errc)
			a.(core.Interface).Increment(4)
			b.(core.Interface).Increment(5)
			mustBlock(t, errc) // 9 < 10
			a.(core.Interface).Increment(1)
			waitNil(t, errc)
		})
	}
}

// TestSumSplitAdvance is the regression for the naive frontier scheme:
// with a = 3, b = 7 and target 10, "park b's sentinel at 10 - 3" style
// frontiers are never reached by either counter, yet the sum flips.
// The pigeonhole gap-sharing frontiers must release the waiter.
func TestSumSplitAdvance(t *testing.T) {
	a, b := core.New(), core.New()
	cond := predicate.NewCond(predicate.SumAtLeast(10), a, b)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	mustBlock(t, errc)
	a.Increment(3)
	b.Increment(7)
	waitNil(t, errc)
}

// TestSumAdversarialDribble drives the sum up one unit at a time,
// alternating counters — the worst case for frontier re-parking: the
// predicate must still flip exactly at the target.
func TestSumAdversarialDribble(t *testing.T) {
	a, b := core.New(), core.New()
	const target = 64
	cond := predicate.NewCond(predicate.SumAtLeast(target), a, b)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	for i := 0; i < target-1; i++ {
		if i%2 == 0 {
			a.Increment(1)
		} else {
			b.Increment(1)
		}
	}
	mustBlock(t, errc) // 63 < 64
	b.Increment(1)
	waitNil(t, errc)
}

func TestThresholdsMin(t *testing.T) {
	a, b := core.New(), core.New()
	// min(a, b) >= 5 is Thresholds([5 5], k=2).
	cond := predicate.NewCond(predicate.Thresholds([]uint64{5, 5}, 2), a, b)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	a.Increment(100)
	mustBlock(t, errc)
	b.Increment(5)
	waitNil(t, errc)
}

func TestThresholdsKOfN(t *testing.T) {
	const n, k = 5, 3
	counters := make([]*core.Counter, n)
	cs := make([]predicate.Counter, n)
	levels := make([]uint64, n)
	for i := range counters {
		counters[i] = core.New()
		cs[i] = counters[i]
		levels[i] = 2
	}
	cond := predicate.NewCond(predicate.Thresholds(levels, k), cs...)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	counters[0].Increment(2)
	counters[3].Increment(2)
	counters[1].Increment(1) // below its threshold: must not count
	mustBlock(t, errc)
	counters[4].Increment(2) // third member reaches: quorum
	waitNil(t, errc)
}

func TestSatisfiedBeatsCancelled(t *testing.T) {
	a, b := core.New(), core.New()
	a.Increment(6)
	b.Increment(6)
	cond := predicate.NewCond(predicate.SumAtLeast(10), a, b)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cond.Wait(ctx); err != nil {
		t.Fatalf("Wait(cancelled ctx) on a satisfied predicate = %v, want nil", err)
	}
	unsat := predicate.NewCond(predicate.SumAtLeast(100), core.New())
	if err := unsat.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait(cancelled ctx) on an unsatisfied predicate = %v, want Canceled", err)
	}
}

func TestPoll(t *testing.T) {
	a := core.New()
	cond := predicate.NewCond(predicate.SumAtLeast(3), a)
	if cond.Poll() {
		t.Fatal("Poll true on a zero counter")
	}
	a.Increment(3)
	if !cond.Poll() {
		t.Fatal("Poll false with the predicate satisfied")
	}
	select {
	case <-cond.Done():
	default:
		t.Fatal("Done not closed after a satisfying Poll")
	}
}

// TestCancelDisarms pins the no-trace property: once every waiter has
// cancelled, the watched counters carry no sentinel, so Reset succeeds.
func TestCancelDisarms(t *testing.T) {
	for _, impl := range core.Registry() {
		t.Run(string(impl), func(t *testing.T) {
			a := core.NewImpl(impl)
			b := core.NewImpl(impl)
			cond := predicate.NewCond(predicate.SumAtLeast(50),
				a.(predicate.Counter), b.(predicate.Counter))
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 2)
			go func() { errc <- cond.Wait(ctx) }()
			go func() { errc <- cond.Wait(ctx) }()
			time.Sleep(20 * time.Millisecond) // let them arm and park
			cancel()
			for i := 0; i < 2; i++ {
				if err := <-errc; err != context.Canceled {
					t.Fatalf("Wait = %v, want Canceled", err)
				}
			}
			// The chan ablation releases its sentinel gate from a
			// goroutine; allow the disarm to settle.
			deadline := time.After(5 * time.Second)
			for {
				if ok := func() (ok bool) {
					defer func() { ok = recover() == nil }()
					a.Reset()
					b.Reset()
					return
				}(); ok {
					return
				}
				select {
				case <-deadline:
					t.Fatal("Reset still panics after all predicate waiters cancelled")
				default:
					time.Sleep(time.Millisecond)
				}
			}
		})
	}
}

// TestSharedCondFanOut releases many waiters from one Cond with one
// flipping increment, and checks the mechanism bill: sentinel arms
// scale with watched counters and frontier moves, not with waiters.
func TestSharedCondFanOut(t *testing.T) {
	a, b := core.New(), core.New()
	const waiters = 100
	cond := predicate.NewCond(predicate.SumAtLeast(1000), a, b)
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cond.Wait(context.Background())
		}(i)
	}
	a.Increment(999)
	time.Sleep(20 * time.Millisecond)
	b.Increment(1)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fan-out waiters still blocked")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	s := cond.Stats()
	if !s.Satisfied {
		t.Fatal("Stats.Satisfied false after release")
	}
	if s.Armed != 0 {
		t.Fatalf("%d sentinels still armed after satisfaction", s.Armed)
	}
	// Arms is bounded by evaluation passes × counters, independent of
	// the 100 waiters; give re-park slack but catch O(waiters) blowups.
	if s.Arms > 40 {
		t.Fatalf("Arms = %d for 2 counters and a handful of frontier moves — scaling with waiters?", s.Arms)
	}
}

// TestNonFlippingIncrementsWakeNothing pins the no-thundering-herd
// claim at the unit level: increments that cannot flip the predicate
// fire no sentinel and wake no waiter.
func TestNonFlippingIncrementsWakeNothing(t *testing.T) {
	a, b := core.New(), core.New()
	cond := predicate.NewCond(predicate.SumAtLeast(1_000_000), a, b)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	time.Sleep(10 * time.Millisecond) // let it arm
	// Frontiers sit at 500_000 each; stay far below.
	for i := 0; i < 1000; i++ {
		a.Increment(1)
	}
	mustBlock(t, errc)
	if fires := cond.Stats().Fires; fires != 0 {
		t.Fatalf("Fires = %d after 1000 sub-frontier increments, want 0", fires)
	}
	a.Increment(1_000_000)
	waitNil(t, errc)
}

// TestConcurrentWaitersAndIncrementers is the -race workout: many
// waiters joining while increments run, plus cancellations mid-flight.
func TestConcurrentWaitersAndIncrementers(t *testing.T) {
	a, b, c := core.New(), core.New(), core.New()
	cond := predicate.NewCond(predicate.SumAtLeast(3000), a, b, c)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 0 {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*time.Millisecond)
				defer cancel()
				_ = cond.Wait(ctx)
				_ = cond.Wait(context.Background())
				return
			}
			if err := cond.Wait(context.Background()); err != nil {
				t.Errorf("Wait = %v", err)
			}
		}(i)
	}
	for _, ctr := range []*core.Counter{a, b, c} {
		wg.Add(1)
		go func(ctr *core.Counter) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ctr.Increment(1)
			}
		}(ctr)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress run wedged")
	}
}
